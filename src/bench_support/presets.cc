#include "bench_support/presets.h"

#include "core/env.h"

namespace mhbench::bench_support {

BenchPreset BenchPreset::FromEnv() {
  BenchPreset p;
  p.rounds = EnvInt("MHB_ROUNDS", 20);
  p.clients = EnvInt("MHB_CLIENTS", 10);
  p.train_samples = EnvInt("MHB_TRAIN", 400);
  p.test_samples = EnvInt("MHB_TEST", 160);
  p.sample_fraction = EnvDouble("MHB_SAMPLE_FRACTION", 0.3);
  p.eval_every = EnvInt("MHB_EVAL_EVERY", 4);
  p.eval_max_samples = EnvInt("MHB_EVAL_SAMPLES", 200);
  p.stability_max_samples = EnvInt("MHB_STABILITY_SAMPLES", 96);
  p.seed = static_cast<std::uint64_t>(EnvInt("MHB_SEED", 1));
  p.threads = EnvInt("MHB_THREADS", 1);
  p.threaded_gemm = EnvInt("MHB_THREADED_GEMM", 0);
  p.eval_precision = EnvString("MHB_EVAL_PRECISION", "f32");
  return p;
}

}  // namespace mhbench::bench_support
