// Benchmark presets: fast defaults overridable through MHB_* environment
// variables so the bench suite scales from smoke-test to paper-scale runs
// without recompiling.
#pragma once

#include <cstdint>
#include <string>

namespace mhbench::bench_support {

struct BenchPreset {
  int rounds;
  int clients;
  int train_samples;
  int test_samples;
  double sample_fraction;
  int eval_every;
  int eval_max_samples;
  int stability_max_samples;
  std::uint64_t seed;
  // Threads for client dispatch / stability evaluation (1 = serial; any
  // value yields bit-identical results — see fl::FlConfig::num_threads).
  int threads;
  // Non-zero routes kernel macro-tile parallelism to the engine pool in
  // serial phases (fl::FlConfig::threaded_gemm; bit-identical either way).
  int threaded_gemm;
  // Eval-side matmul precision: "f32", "bf16" or "int8"
  // (fl::FlConfig::eval_precision).
  std::string eval_precision;

  // Reads MHB_ROUNDS, MHB_CLIENTS, MHB_TRAIN, MHB_TEST,
  // MHB_SAMPLE_FRACTION, MHB_EVAL_EVERY, MHB_SEED, MHB_THREADS,
  // MHB_THREADED_GEMM, MHB_EVAL_PRECISION over the fast defaults.
  static BenchPreset FromEnv();
};

}  // namespace mhbench::bench_support
