#include "bench_support/experiment.h"

#include <algorithm>

#include "algorithms/registry.h"
#include "constraints/combined.h"
#include "constraints/communication_limited.h"
#include "constraints/computation_limited.h"
#include "constraints/memory_limited.h"
#include "core/env.h"
#include "core/error.h"
#include "core/logging.h"
#include "data/tasks.h"
#include "device/calibration.h"
#include "device/cost_model.h"
#include "device/tier.h"
#include "fl/engine.h"
#include "models/zoo.h"

namespace mhbench::bench_support {
namespace {

// Assignments for the "none" constraint: the literature's proportional
// splitting — cycle the ratio ladder over clients blind to the device.
// Execution still happens on the client's real hardware, so system costs
// are charged at each client's own speed/bandwidth (this is exactly the
// unfairness the paper's constraint cases eliminate).
constraints::BuiltAssignments ProportionalAssignments(
    const std::string& algorithm, const std::string& task,
    const device::Fleet& fleet, const std::vector<double>& ladder) {
  const device::PaperTaskDescs descs = device::PaperDescsForTask(task);

  constraints::BuiltAssignments out;
  out.assignments.reserve(fleet.size());
  const bool topology =
      device::AxisOf(algorithm) == device::ScaleAxis::kFull;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    device::DeviceProfile own;
    own.name = "fleet-client";
    own.gflops = fleet[i].gflops;
    own.bandwidth_mbps = fleet[i].bandwidth_mbps;
    own.memory_mb = fleet[i].memory_mb;
    own.has_gpu = fleet[i].has_gpu;

    fl::ClientAssignment a;
    if (topology) {
      a.capacity = 1.0;
      a.arch_index = static_cast<int>(i % descs.topology.size());
      device::CostModel cm(
          descs.topology[static_cast<std::size_t>(a.arch_index)]);
      const auto cost = cm.Cost(algorithm, 1.0, own);
      a.system.compute_time_s = cost.train_time_s;
      a.system.comm_time_s = cost.comm_time_s;
      a.system.memory_mb = cost.memory_mb;
      a.system.comm_mb = cost.comm_mb;
      a.system.train_gflops = cost.gflops_fwd;
    } else {
      a.capacity = ladder[i % ladder.size()];
      device::CostModel cm(descs.primary);
      const auto cost = cm.Cost(algorithm, a.capacity, own);
      a.system.compute_time_s = cost.train_time_s;
      a.system.comm_time_s = cost.comm_time_s;
      a.system.memory_mb = cost.memory_mb;
      a.system.comm_mb = cost.comm_mb;
      a.system.train_gflops = cost.gflops_fwd;
    }
    a.system.device_tier =
        device::DeviceTierName(fleet[i].memory_mb, fleet[i].has_gpu);
    out.assignments.push_back(a);
  }
  return out;
}

constraints::BuiltAssignments BuildAssignments(
    const std::string& algorithm, const SuiteOptions& options,
    const device::Fleet& fleet, const std::vector<double>& ladder) {
  constraints::ConstraintOptions copts;
  copts.ratio_ladder = ladder;
  const std::string& c = options.constraint;
  if (c == "none") {
    return ProportionalAssignments(algorithm, options.task, fleet, ladder);
  }
  if (c == "computation") {
    return constraints::BuildComputationLimited(algorithm, options.task,
                                                fleet, copts);
  }
  if (c == "communication") {
    return constraints::BuildCommunicationLimited(algorithm, options.task,
                                                  fleet, copts);
  }
  if (c == "memory") {
    return constraints::BuildMemoryLimited(algorithm, options.task, fleet,
                                           copts);
  }
  if (c == "comm+mem") {
    return constraints::BuildCommMemLimited(algorithm, options.task, fleet,
                                            copts);
  }
  if (c == "comp+comm+mem") {
    return constraints::BuildCompCommMemLimited(algorithm, options.task,
                                                fleet, copts);
  }
  throw Error("unknown constraint case: " + c);
}

metrics::MetricBundle RunWith(const std::string& algorithm,
                              const SuiteOptions& options,
                              const std::vector<double>& ladder,
                              double fedavg_ratio, bool allow_checkpoint) {
  const BenchPreset& p = options.preset;
  const int repeats = std::max(1, EnvInt("MHB_REPEATS", 1));
  const bool checkpointing =
      allow_checkpoint &&
      (options.checkpoint_every > 0 || !options.resume_path.empty());
  if (checkpointing) {
    MHB_CHECK_EQ(repeats, 1)
        << "checkpoint/resume requires MHB_REPEATS=1 (a snapshot names one "
           "engine run)";
  }

  metrics::MetricBundle bundle;
  bundle.algorithm = algorithm;
  bundle.task = options.task;
  bundle.constraint = options.constraint;

  for (int rep = 0; rep < repeats; ++rep) {
    data::TaskConfig tcfg;
    tcfg.train_samples = p.train_samples;
    tcfg.test_samples = p.test_samples;
    tcfg.num_clients = p.clients;
    tcfg.seed = p.seed + static_cast<std::uint64_t>(rep);
    const data::Task task = data::MakeTask(options.task, tcfg);

    device::FleetConfig fcfg;
    fcfg.num_clients = p.clients;
    fcfg.seed = options.fleet_seed + static_cast<std::uint64_t>(rep);
    const device::Fleet fleet = device::SampleFleet(fcfg);

    constraints::BuiltAssignments built =
        BuildAssignments(algorithm, options, fleet, ladder);

    const models::TaskModels tm = models::MakeTaskModels(options.task);
    algorithms::AlgorithmOptions aopts;
    aopts.fedavg_ratio = fedavg_ratio;
    aopts.seed = p.seed + static_cast<std::uint64_t>(rep) * 31;
    auto alg = algorithms::MakeAlgorithm(algorithm, tm, aopts);

    fl::FlConfig fcfg2;
    fcfg2.rounds = p.rounds;
    fcfg2.sample_fraction = p.sample_fraction;
    fcfg2.eval_every = p.eval_every;
    fcfg2.eval_max_samples = p.eval_max_samples;
    fcfg2.stability_max_samples = p.stability_max_samples;
    fcfg2.seed = p.seed + static_cast<std::uint64_t>(rep) * 17;
    fcfg2.num_threads = p.threads;
    fcfg2.threaded_gemm = p.threaded_gemm != 0;
    kernels::EvalPrecision ep = kernels::EvalPrecision::kF32;
    MHB_CHECK(kernels::ParseEvalPrecision(p.eval_precision.c_str(), &ep))
        << "unknown eval precision:" << p.eval_precision
        << "(want f32|bf16|int8)";
    fcfg2.eval_precision = ep;
    if (options.dirichlet_alpha > 0) {
      fcfg2.partition = fl::PartitionKind::kDirichlet;
      fcfg2.dirichlet_alpha = options.dirichlet_alpha;
    }
    fcfg2.round_deadline_s = options.round_deadline_s;
    fcfg2.obs = options.obs;
    if (!allow_checkpoint) {
      // The det-audit ledger names one engine run (its header carries that
      // run's algorithm/seed/rounds); the hidden FedAvg reference run must
      // not interleave rows into it.
      fcfg2.obs.det_audit = nullptr;
    }
    if (fcfg2.obs.det_audit != nullptr) {
      MHB_CHECK_EQ(repeats, 1)
          << "--det-audit requires MHB_REPEATS=1 (the ledger chains one "
             "engine run's round barriers)";
    }
    if (checkpointing) {
      fcfg2.checkpoint_every = options.checkpoint_every;
      fcfg2.checkpoint_dir = options.checkpoint_dir;
      fcfg2.resume_path = options.resume_path;
    }

    fl::FlEngine engine(task, fcfg2, built.assignments, *alg);
    const fl::RunResult run = engine.Run();

    bundle.global_accuracy += run.final_accuracy / repeats;
    bundle.stability_variance += run.StabilityVariance() / repeats;
    bundle.total_sim_time_s += run.total_sim_time_s / repeats;
    bundle.mean_client_accuracy += run.MeanClientAccuracy() / repeats;
    // Raw straggler provenance: the counters sum over rounds and repeats;
    // the drop *rate* is derived at report time (metrics/report.cc).
    bundle.clients_dropped += run.straggler_drops;
    bundle.clients_selected += run.total_participations;
    if (rep == 0) {
      for (const auto& r : run.curve) {
        bundle.curve_time_s.push_back(r.sim_time_s);
        bundle.curve_accuracy.push_back(r.global_acc);
      }
    }
  }
  MHB_LOG_INFO << options.constraint << "/" << options.task << "/"
               << algorithm << ": acc=" << bundle.global_accuracy
               << " stability=" << bundle.stability_variance;
  return bundle;
}

}  // namespace

metrics::MetricBundle RunOne(const std::string& algorithm,
                             const SuiteOptions& options) {
  return RunWith(algorithm, options, algorithms::RatioLadder(),
                 /*fedavg_ratio=*/1.0, /*allow_checkpoint=*/true);
}

std::vector<metrics::MetricBundle> RunSuite(
    const std::vector<std::string>& algorithms_list,
    const SuiteOptions& options) {
  // Effectiveness baseline: the smallest model any device would be given
  // under this constraint, trained homogeneously everywhere (FedAvg).
  const double min_ratio = [&] {
    device::FleetConfig fcfg;
    fcfg.num_clients = options.preset.clients;
    fcfg.seed = options.fleet_seed;
    const device::Fleet fleet = device::SampleFleet(fcfg);
    const auto built = BuildAssignments("fedavg", options, fleet,
                                        algorithms::RatioLadder());
    double m = 1.0;
    for (const auto& a : built.assignments) m = std::min(m, a.capacity);
    return m;
  }();

  std::vector<metrics::MetricBundle> bundles;
  {
    metrics::MetricBundle baseline =
        RunWith("fedavg", options, {min_ratio}, min_ratio,
                /*allow_checkpoint=*/false);
    baseline.algorithm = "fedavg-small";
    bundles.push_back(std::move(baseline));
  }
  for (const auto& name : algorithms_list) {
    bundles.push_back(RunOne(name, options));
  }

  const double target = metrics::CommonTarget(bundles, options.target_fraction);
  const double baseline_acc = bundles.front().global_accuracy;
  for (auto& b : bundles) {
    b.target_accuracy = target;
    b.time_to_accuracy_s = b.TimeTo(target);
    b.effectiveness = b.global_accuracy - baseline_acc;
  }
  return bundles;
}

}  // namespace mhbench::bench_support
