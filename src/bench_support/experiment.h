// Shared experiment driver: (constraint, task, algorithm set) -> metric
// bundles, with the effectiveness baseline and common time-to-accuracy
// target handled per the paper's methodology.
#pragma once

#include <string>
#include <vector>

#include "bench_support/presets.h"
#include "metrics/recorder.h"
#include "obs/obs_config.h"

namespace mhbench::bench_support {

// Constraint case names accepted by RunSuite/RunOne: "none",
// "computation", "communication", "memory", "comm+mem", "comp+comm+mem".
struct SuiteOptions {
  std::string constraint = "computation";
  std::string task = "cifar100";
  BenchPreset preset = BenchPreset::FromEnv();
  // Dirichlet alpha for non-IID partitioning of IID tasks; 0 keeps IID.
  double dirichlet_alpha = 0.0;
  // Synchronous round deadline in simulated seconds (0 disables): sampled
  // clients slower than this are dropped as stragglers.
  double round_deadline_s = 0.0;
  // Fraction of the best final accuracy used as the common
  // time-to-accuracy target.
  double target_fraction = 0.7;
  std::uint64_t fleet_seed = 11;
  // Observability hooks threaded into every engine run of the suite
  // (tracer / registry / profiler / live-exporter pointers; all-null
  // disables collection).  The live exporter (obs/live.h) rides along
  // here: every engine run of the suite — baseline included — notifies it
  // at round barriers, so the watchdog and /status.json cover the whole
  // suite, not just the requested algorithm.  Exception: obs.det_audit
  // (obs/det_audit.h) reaches only the requested algorithm's run — its
  // ledger header names one run, so the FedAvg reference run is excluded —
  // and requires MHB_REPEATS=1.
  obs::ObsConfig obs;
  // Checkpoint/resume, forwarded into the engine config of the *requested*
  // algorithm's run only — never the fedavg-small effectiveness baseline.
  // Requires MHB_REPEATS=1: a snapshot names exactly one engine run, and
  // averaging repeats would silently mix resumed and fresh runs.
  int checkpoint_every = 0;
  std::string checkpoint_dir = "checkpoints";
  std::string resume_path;
};

// Runs one algorithm under the options (no effectiveness/TTA filled).
metrics::MetricBundle RunOne(const std::string& algorithm,
                             const SuiteOptions& options);

// Runs the named algorithms plus the smallest-homogeneous FedAvg baseline,
// fills effectiveness and the common-target time-to-accuracy, and returns
// the bundles in input order (baseline first under name "fedavg-small").
std::vector<metrics::MetricBundle> RunSuite(
    const std::vector<std::string>& algorithms, const SuiteOptions& options);

}  // namespace mhbench::bench_support
