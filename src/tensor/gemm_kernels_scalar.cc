// Scalar micro-kernel TU: the portable baseline every build has.  Compiled
// -O3 with the project's default ISA, so the compiler may auto-vectorize it
// for the baseline target, but the per-element contraction order is fixed
// (gemm_kernels.h) and results stay bit-deterministic per build.
#include "tensor/gemm_kernels.h"

namespace mhbench::kernels::detail {

void MicroKernelScalar(int kc, const float* ap, const float* bp, float* acc) {
  MicroKernelScalarImpl(kc, ap, bp, acc);
}

}  // namespace mhbench::kernels::detail
