// AVX2+FMA micro-kernel TU.  Built with -mavx2 -mfma when the compiler
// supports them; runtime dispatch (gemm.cc) only selects this variant when
// __builtin_cpu_supports confirms both features, so the binary stays safe on
// older hosts.  Under sanitizers (uniform flags) the TU compiles the scalar
// fallback and Avx2TileCompiled() reports false.
#include "tensor/gemm_kernels.h"

namespace mhbench::kernels::detail {

#if defined(__AVX2__) && defined(__FMA__) && defined(__GNUC__)

namespace {

using V8 = float __attribute__((vector_size(32)));

inline V8 LoadV8(const float* p) {
  V8 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Splat via an explicit all-lanes initializer: compiles to one
// vbroadcastss.  (`V8{} + x` would emit an extra dependent vaddss — GCC
// cannot fold 0.0f + x without fast-math because of signed zeros.)
inline V8 Splat8(float x) { return V8{x, x, x, x, x, x, x, x}; }

}  // namespace

// The 6 x 16 tile as 12 ymm accumulators.  `c += a * b` is written so the
// compiler contracts it into vfmadd (-mfma): rounding differs from the
// naive reference, but the contraction order is fixed, so results are
// bit-identical across runs and thread counts for this variant.
void MicroKernelAvx2(int kc, const float* ap, const float* bp, float* acc) {
  static_assert(kMR == 6 && kNR == 16, "tile hard-wired to 6x16");
  V8 c00{}, c01{}, c10{}, c11{}, c20{}, c21{};
  V8 c30{}, c31{}, c40{}, c41{}, c50{}, c51{};
  for (int p = 0; p < kc; ++p) {
    const float* arow = ap + static_cast<std::size_t>(p) * kMR;
    const float* brow = bp + static_cast<std::size_t>(p) * kNR;
    const V8 b0 = LoadV8(brow);
    const V8 b1 = LoadV8(brow + 8);
    V8 a;
    a = Splat8(arow[0]); c00 += a * b0; c01 += a * b1;
    a = Splat8(arow[1]); c10 += a * b0; c11 += a * b1;
    a = Splat8(arow[2]); c20 += a * b0; c21 += a * b1;
    a = Splat8(arow[3]); c30 += a * b0; c31 += a * b1;
    a = Splat8(arow[4]); c40 += a * b0; c41 += a * b1;
    a = Splat8(arow[5]); c50 += a * b0; c51 += a * b1;
  }
  const V8 rows[kMR][2] = {{c00, c01}, {c10, c11}, {c20, c21},
                           {c30, c31}, {c40, c41}, {c50, c51}};
  for (int i = 0; i < kMR; ++i) {
    std::memcpy(acc + i * kNR, &rows[i][0], sizeof(V8));
    std::memcpy(acc + i * kNR + 8, &rows[i][1], sizeof(V8));
  }
}

bool Avx2TileCompiled() { return true; }

#else  // built without -mavx2/-mfma: unreachable via dispatch

void MicroKernelAvx2(int kc, const float* ap, const float* bp, float* acc) {
  MicroKernelScalarImpl(kc, ap, bp, acc);
}

bool Avx2TileCompiled() { return false; }

#endif

}  // namespace mhbench::kernels::detail
