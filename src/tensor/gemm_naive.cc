// The naive GEMM reference, in its own translation unit so it keeps the
// project's default optimization flags while gemm.cc gets the kernel flags
// (see src/CMakeLists.txt).  Loop orders mirror the pre-kernel-layer
// Matmul/MatmulTransA/MatmulTransB code, minus the data-dependent zero-skip
// branches; every path accumulates k in ascending order.  (The fast kernel
// shares that ascending order but blocks k and may fuse multiply-adds, so
// the two backends agree only to rounding — see gemm.h.)
#include <cstddef>

#include "tensor/gemm.h"

namespace mhbench::kernels::internal {
namespace {

// op(A)(i, p) for a row-major buffer with leading dimension lda.
inline float At(const float* a, int lda, bool trans, int i, int p) {
  return trans ? a[static_cast<std::size_t>(p) * lda + i]
               : a[static_cast<std::size_t>(i) * lda + p];
}

}  // namespace

void NaiveGemmImpl(bool trans_a, bool trans_b, int m, int n, int k,
                   const float* a, int lda, const float* b, int ldb,
                   float beta, float* c, int ldc, const float* bias) {
  if (!trans_a && trans_b) {
    // Row-dot-row order (the original MatmulTransB).
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * lda;
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<std::size_t>(j) * ldb;
        float s = 0.0f;
        for (int p = 0; p < k; ++p) s += arow[p] * brow[p];
        float v = s;
        if (beta != 0.0f) v += beta * crow[j];
        if (bias != nullptr) v += bias[j];
        crow[j] = v;
      }
    }
    return;
  }
  // Streaming accumulation orders (the original Matmul / MatmulTransA):
  // prepare C, rank-1 update per contraction step, bias last.
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    if (beta == 0.0f) {
      for (int j = 0; j < n; ++j) crow[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (int j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  for (int p = 0; p < k; ++p) {
    for (int i = 0; i < m; ++i) {
      const float aip = At(a, lda, trans_a, i, p);
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      if (!trans_b) {
        const float* brow = b + static_cast<std::size_t>(p) * ldb;
        for (int j = 0; j < n; ++j) crow[j] += aip * brow[j];
      } else {
        for (int j = 0; j < n; ++j) {
          crow[j] += aip * b[static_cast<std::size_t>(j) * ldb + p];
        }
      }
    }
  }
  if (bias != nullptr) {
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < n; ++j) crow[j] += bias[j];
    }
  }
}

}  // namespace mhbench::kernels::internal
