// Reduced-precision GEMM variants for the evaluation paths (gemm.h).
//
// bf16: both operands are rounded to bf16 (round-to-nearest-even on the
// stored f32 bits) into scratch copies, then the regular dispatched fast
// kernel accumulates in f32 — so the bf16 path inherits the ISA dispatch,
// the threaded macro-tile map, and their determinism contract for free.
//
// int8: per-tensor symmetric quantization (scale = max|x| / 127, fixed-order
// scan) with deterministic index-seeded stochastic rounding, int32
// accumulation over k ascending, and a single dequantize in the f32
// epilogue.  Stochastic rounding keeps the coarse int8 grid unbiased (plain
// nearest rounding biases activation statistics); seeding it by (fixed
// constant, element index) keeps it a pure function of the input, so
// repeated calls and any thread count are bit-identical.
//
// Both variants are eval-only: training gradients always run the f32 paths.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "core/error.h"
#include "tensor/gemm.h"
#include "tensor/scratch.h"

namespace mhbench::kernels {
namespace {

// Round-to-nearest-even truncation of an f32 to the nearest bf16 value,
// returned widened back to f32.  (NaN payloads are not preserved exactly;
// kernel inputs are finite by contract.)
inline float RoundToBf16(float x) {
  std::uint32_t u;
  std::memcpy(&u, &x, sizeof(u));
  const std::uint32_t lsb = (u >> 16) & 1u;
  u += 0x7fffu + lsb;
  u &= 0xffff0000u;
  float r;
  std::memcpy(&r, &u, sizeof(r));
  return r;
}

// SplitMix64 — the project's seeded hash (core::Rng uses the same mixer);
// here it turns (seed, element index) into the rounding draw for int8
// quantization.
inline std::uint64_t SplitMix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kQuantSeedA = 0xA11CE5EEDull;
constexpr std::uint64_t kQuantSeedB = 0xB0B5EEDull;

// op(X)(i, p) for a row-major buffer with leading dimension ld.
inline float At(const float* x, int ld, bool trans, int i, int p) {
  return trans ? x[static_cast<std::size_t>(p) * ld + i]
               : x[static_cast<std::size_t>(i) * ld + p];
}

// Quantizes the rows x cols logical matrix op(X) into `q` (row-major,
// k-contiguous) with per-tensor symmetric scale; returns the scale.  The
// max-abs scan and the per-element rounding both run in a fixed row-major
// order over logical indices, so the result is independent of callers'
// threading.
float QuantizeInt8(const float* x, int ld, bool trans, int rows, int cols,
                   std::uint64_t seed, std::int8_t* q) {
  float amax = 0.0f;
  for (int i = 0; i < rows; ++i) {
    for (int p = 0; p < cols; ++p) {
      amax = std::max(amax, std::fabs(At(x, ld, trans, i, p)));
    }
  }
  const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
  const float inv = 1.0f / scale;
  for (int i = 0; i < rows; ++i) {
    for (int p = 0; p < cols; ++p) {
      const std::uint64_t idx =
          static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(cols) +
          static_cast<std::uint64_t>(p);
      const float r = At(x, ld, trans, i, p) * inv;
      const float f = std::floor(r);
      // 24-bit uniform draw in [0, 1): round up iff the fractional part
      // exceeds it (deterministic stochastic rounding).
      const float u = static_cast<float>(SplitMix64(seed ^ idx) >> 40) *
                      0x1p-24f;
      int v = static_cast<int>(f) + (r - f > u ? 1 : 0);
      v = std::min(127, std::max(-127, v));
      q[static_cast<std::size_t>(i) * cols + p] =
          static_cast<std::int8_t>(v);
    }
  }
  return scale;
}

}  // namespace

void GemmBf16(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
              int lda, const float* b, int ldb, float beta, float* c, int ldc,
              const float* bias) {
  MHB_CHECK(m >= 0 && n >= 0 && k >= 0)
      << "gemm dims" << m << n << k << "must be non-negative";
  if (m == 0 || n == 0) return;
  if (k == 0) {
    internal::ScaleBiasEpilogue(m, n, beta, c, ldc, bias);
    return;
  }
  internal::CountGemmFlops(m, n, k, EvalPrecision::kBf16);
  ScratchScope scratch;
  const int arows = trans_a ? k : m;
  const int acols = trans_a ? m : k;
  const int brows = trans_b ? n : k;
  const int bcols = trans_b ? k : n;
  // Rounded copies of the stored buffer extents (leading dimensions kept,
  // inter-row gaps rounded harmlessly) so GemmRaw sees the same layout.
  const std::size_t ea =
      static_cast<std::size_t>(arows - 1) * lda + static_cast<std::size_t>(acols);
  const std::size_t eb =
      static_cast<std::size_t>(brows - 1) * ldb + static_cast<std::size_t>(bcols);
  float* const ar = scratch.Alloc(ea);
  float* const br = scratch.Alloc(eb);
  for (std::size_t i = 0; i < ea; ++i) ar[i] = RoundToBf16(a[i]);
  for (std::size_t i = 0; i < eb; ++i) br[i] = RoundToBf16(b[i]);
  internal::GemmRaw(trans_a, trans_b, m, n, k, ar, lda, br, ldb, beta, c,
                    ldc, bias);
}

void GemmInt8(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
              int lda, const float* b, int ldb, float beta, float* c, int ldc,
              const float* bias) {
  MHB_CHECK(m >= 0 && n >= 0 && k >= 0)
      << "gemm dims" << m << n << k << "must be non-negative";
  // 127*127*k must stay well inside int32; generous for every eval shape.
  MHB_CHECK_LE(k, 1 << 17) << "int8 gemm k too large for int32 accumulation";
  if (m == 0 || n == 0) return;
  if (k == 0) {
    internal::ScaleBiasEpilogue(m, n, beta, c, ldc, bias);
    return;
  }
  internal::CountGemmFlops(m, n, k, EvalPrecision::kInt8);
  ScratchScope scratch;
  // int8 matrices live in the float arena: 4 lanes per float slot.  op(A)
  // is materialized m x k and op(B) transposed to n x k, so the inner dot
  // product streams both operands k-contiguously.
  const std::size_t na = static_cast<std::size_t>(m) * k;
  const std::size_t nb = static_cast<std::size_t>(n) * k;
  std::int8_t* const qa =
      reinterpret_cast<std::int8_t*>(scratch.Alloc((na + 3) / 4));
  std::int8_t* const qb =
      reinterpret_cast<std::int8_t*>(scratch.Alloc((nb + 3) / 4));
  const float sa = QuantizeInt8(a, lda, trans_a, m, k, kQuantSeedA, qa);
  // op(B) is k x n; op(B)^T is n x k, i.e. op(B)(p, j) read with roles of
  // (row, col) swapped — exactly At(b, ldb, !trans_b, j, p).
  const float sb = QuantizeInt8(b, ldb, !trans_b, n, k, kQuantSeedB, qb);
  const float scale = sa * sb;
  for (int i = 0; i < m; ++i) {
    const std::int8_t* arow = qa + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    for (int j = 0; j < n; ++j) {
      const std::int8_t* brow = qb + static_cast<std::size_t>(j) * k;
      std::int32_t acc = 0;
      for (int p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(arow[p]) *
               static_cast<std::int32_t>(brow[p]);
      }
      // Same epilogue order as the fast path: (acc [+ beta*C]) then bias.
      float v = static_cast<float>(acc) * scale;
      if (beta != 0.0f) v += beta * crow[j];
      if (bias != nullptr) v += bias[j];
      crow[j] = v;
    }
  }
}

}  // namespace mhbench::kernels
