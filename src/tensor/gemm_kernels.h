// Micro-kernel surface for the runtime-dispatched GEMM (tensor/gemm.h).
//
// Each ISA variant lives in its own TU (gemm_kernels_{scalar,avx2,avx512}.cc)
// compiled with that ISA's -m flags; gemm.cc selects one function pointer at
// startup from CPU features (or the MHB_KERNELS override) and never calls a
// variant the running CPU cannot execute.  The *TileCompiled() predicates
// report whether a TU actually got its ISA at build time — under sanitizers
// (uniform flags) or on non-x86 targets every variant compiles as the scalar
// fallback and reports false, so dispatch degrades to scalar honestly.
//
// Contract shared by every variant: compute the kMR x kNR register tile
// acc = sum_{p<kc} apanel[p] (x) bpanel[p], accumulating p in ascending
// order with a fixed contraction shape, so one chosen variant is
// bit-deterministic across runs and thread counts (gemm.h).
#pragma once

#include <cstring>

#include "tensor/gemm.h"

namespace mhbench::kernels::detail {

// One packed register tile: ap holds kc rows of kMR A-values, bp holds kc
// rows of kNR B-values, acc receives the kMR x kNR products (overwritten).
using MicroKernelFn = void (*)(int kc, const float* ap, const float* bp,
                               float* acc);

void MicroKernelScalar(int kc, const float* ap, const float* bp, float* acc);
void MicroKernelAvx2(int kc, const float* ap, const float* bp, float* acc);
void MicroKernelAvx512(int kc, const float* ap, const float* bp, float* acc);

// Whether the TU was built with the ISA it is named after (false means it
// fell back to the scalar body and must not be selected).
bool Avx2TileCompiled();
bool Avx512TileCompiled();

// Reference tile body, inlined so each TU's fallback compiles with that
// TU's own flags.  Same per-element arithmetic order as the vector
// variants (p ascending, separate mul/add unless the build contracts).
inline void MicroKernelScalarImpl(int kc, const float* ap, const float* bp,
                                  float* acc) {
  std::memset(acc, 0, sizeof(float) * kMR * kNR);
  for (int p = 0; p < kc; ++p) {
    const float* arow = ap + static_cast<std::size_t>(p) * kMR;
    const float* brow = bp + static_cast<std::size_t>(p) * kNR;
    for (int i = 0; i < kMR; ++i) {
      const float ai = arow[i];
      float* accrow = acc + i * kNR;
      for (int j = 0; j < kNR; ++j) accrow[j] += ai * brow[j];
    }
  }
}

}  // namespace mhbench::kernels::detail
