#include "tensor/serialize.h"

#include <bit>
#include <cstring>

namespace mhbench {

static_assert(std::endian::native == std::endian::little,
              "serialization assumes a little-endian host");

std::vector<std::uint8_t> SerializeTensor(const Tensor& t) {
  std::vector<std::uint8_t> out;
  out.reserve(SerializedTensorBytes(t));
  auto push = [&](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out.insert(out.end(), b, b + n);
  };
  const std::int32_t nd = t.ndim();
  push(&nd, sizeof(nd));
  for (int d : t.shape()) {
    const std::int32_t v = d;
    push(&v, sizeof(v));
  }
  push(t.data().data(), t.numel() * sizeof(Scalar));
  return out;
}

Tensor DeserializeTensor(const std::vector<std::uint8_t>& bytes,
                         std::size_t& offset) {
  auto read = [&](void* p, std::size_t n) {
    MHB_CHECK_LE(offset + n, bytes.size()) << "truncated tensor buffer";
    std::memcpy(p, bytes.data() + offset, n);
    offset += n;
  };
  std::int32_t nd = 0;
  read(&nd, sizeof(nd));
  MHB_CHECK(nd >= 0 && nd <= 8) << "implausible tensor rank" << nd;
  Shape shape(static_cast<std::size_t>(nd));
  for (auto& d : shape) {
    std::int32_t v = 0;
    read(&v, sizeof(v));
    MHB_CHECK_GT(v, 0) << "non-positive extent in serialized tensor";
    d = v;
  }
  std::vector<Scalar> data(ShapeNumel(shape));
  read(data.data(), data.size() * sizeof(Scalar));
  return Tensor(std::move(shape), std::move(data));
}

std::size_t SerializedTensorBytes(const Tensor& t) {
  return sizeof(std::int32_t) * (1 + t.shape().size()) +
         t.numel() * sizeof(Scalar);
}

}  // namespace mhbench
