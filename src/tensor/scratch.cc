#include "tensor/scratch.h"

#include <algorithm>
#include <cstdlib>

#include "core/error.h"
#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace mhbench::kernels {
namespace {

// Chunks are sized so a typical conv/GEMM working set (packing panels plus
// one im2col block) fits in the first chunk; growth beyond it is geometric
// via max(min, requested).
constexpr std::size_t kMinChunkFloats = std::size_t{1} << 20;  // 4 MiB
constexpr std::size_t kAlignFloats = 16;                       // 64 bytes

std::atomic<std::uint64_t> g_chunk_allocs{0};

// Live-arena registry so serial phases can compute a fleet-wide peak.
struct ArenaRegistry {
  core::Mutex mu;
  std::vector<ScratchArena*> arenas MHB_GUARDED_BY(mu);
};
ArenaRegistry& TheArenaRegistry() {
  static ArenaRegistry registry;
  return registry;
}

std::size_t AlignUp(std::size_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

}  // namespace

ScratchArena::ScratchArena() {
  ArenaRegistry& registry = TheArenaRegistry();
  core::MutexLock lock(registry.mu);
  // mhb-lint: allow(no-heap-in-hotpath) -- once per thread at arena birth
  registry.arenas.push_back(this);
}

ScratchArena::~ScratchArena() {
  {
    ArenaRegistry& registry = TheArenaRegistry();
    core::MutexLock lock(registry.mu);
    auto& arenas = registry.arenas;
    arenas.erase(std::remove(arenas.begin(), arenas.end(), this),
                 arenas.end());
  }
  for (auto& c : chunks_) std::free(c.data);
}

void ScratchArena::AddChunk(std::size_t min_floats) {
  Chunk c;
  c.cap = std::max(kMinChunkFloats, AlignUp(min_floats));
  // Cold path: chunks grow only while a thread's high-water mark rises,
  // a handful of times per run.
  c.data = static_cast<float*>(
      // mhb-lint: allow(no-heap-in-hotpath) -- cold path, see comment above
      std::aligned_alloc(kAlignFloats * sizeof(float), c.cap * sizeof(float)));
  MHB_CHECK(c.data != nullptr) << "scratch chunk allocation failed";
  // mhb-lint: allow(no-heap-in-hotpath) -- same cold path as the chunk alloc
  chunks_.push_back(c);
  g_chunk_allocs.fetch_add(1, std::memory_order_relaxed);
}

float* ScratchArena::Alloc(std::size_t n) {
  const std::size_t need = AlignUp(std::max<std::size_t>(n, 1));
  // Advance to the first chunk (from the active one) with room; chunks
  // passed over stay empty until the next Restore/Reset rewinds below them.
  while (active_ < chunks_.size() &&
         chunks_[active_].used + need > chunks_[active_].cap) {
    ++active_;
  }
  if (active_ == chunks_.size()) AddChunk(need);
  Chunk& c = chunks_[active_];
  float* p = c.data + c.used;
  c.used += need;
  in_use_ += need;
  if (in_use_ > hwm_) hwm_ = in_use_;
  const std::uint64_t bytes = static_cast<std::uint64_t>(in_use_) * sizeof(float);
  if (bytes > peak_bytes_.load(std::memory_order_relaxed)) {
    peak_bytes_.store(bytes, std::memory_order_relaxed);
  }
  return p;
}

ScratchArena::Mark ScratchArena::Save() const {
  Mark m;
  m.chunk = active_;
  m.used = active_ < chunks_.size() ? chunks_[active_].used : 0;
  m.in_use = in_use_;
  return m;
}

void ScratchArena::Restore(const Mark& mark) {
  for (std::size_t i = mark.chunk + 1; i < chunks_.size(); ++i) {
    chunks_[i].used = 0;
  }
  if (mark.chunk < chunks_.size()) chunks_[mark.chunk].used = mark.used;
  active_ = mark.chunk;
  in_use_ = mark.in_use;
}

void ScratchArena::Reset() { Restore(Mark{}); }

std::size_t ScratchArena::peak_bytes() const {
  return static_cast<std::size_t>(peak_bytes_.load(std::memory_order_relaxed));
}

ScratchArena& ThreadScratch() {
  static thread_local ScratchArena arena;
  return arena;
}

void ResetThreadScratch() { ThreadScratch().Reset(); }

std::size_t ScratchPeakBytesAllThreads() {
  ArenaRegistry& registry = TheArenaRegistry();
  core::MutexLock lock(registry.mu);
  std::size_t peak = 0;
  for (const ScratchArena* a : registry.arenas) {
    peak = std::max(peak, a->peak_bytes());
  }
  return peak;
}

std::uint64_t ScratchChunkAllocs() {
  return g_chunk_allocs.load(std::memory_order_relaxed);
}

}  // namespace mhbench::kernels
