// mhbench::kernels — the high-performance GEMM layer.
//
// One kernel covers the whole Matmul/MatmulTransA/MatmulTransB family plus
// the fused epilogues the layers need (beta-accumulate into an existing
// gradient, bias broadcast), over strided row-major operands so callers
// never materialize transposes or reshapes.  The fast path is a classic
// cache-blocked, panel-packed, register-tiled design (fixed MC/KC/NC
// blocking with an MR x NR microkernel), with two orthogonal runtime axes:
//
//   ISA dispatch — the microkernel variant (avx512 / avx2 / scalar) is
//   picked once at startup from CPU features, overridable via MHB_KERNELS
//   or SetIsa().  Every variant the compiler could build is present in the
//   binary; dispatch never selects one the running CPU lacks.
//
//   Threading — when a pool is installed via SetGemmThreadPool(), calls
//   large enough to amortize dispatch fan the (jc, pc) macro-slab's output
//   tiles across workers.  Ownership is by output tile: packing is done
//   once by the calling thread, each (MC row-block x NR-column stripe) tile
//   is computed whole by exactly one task with the same packed panels and
//   the same k-ascending contraction the serial path uses, and no two tasks
//   share an output element.  There is no cross-thread reduction, so the
//   threaded result is bit-identical to the serial fast result at any
//   worker count — including zero (pool absent).
//
// Determinism: for a fixed build and chosen ISA variant, every code path
// accumulates the k dimension in ascending order with no data-dependent
// branching, so repeated calls are bit-identical regardless of --threads.
// The fast kernel is NOT bit-equal to the naive reference: it blocks the k
// dimension (partial sums associate as sum_block0 + sum_block1 instead of
// one running sum) and its vector variants fuse multiply-adds, which rounds
// differently from the separately-rounded mul-then-add the default flags
// produce.  Different ISA variants likewise agree only to rounding.  Tests
// therefore compare variants with a tight relative tolerance and reserve
// exact equality for run-to-run / cross-thread-count checks within one
// variant.
//
// Reduced precision (eval paths): GemmBf16 rounds both operands to bf16
// (round-to-nearest-even) and accumulates in f32 through the same dispatched
// fast kernel; GemmInt8 quantizes per-tensor symmetric int8 with
// deterministic index-seeded stochastic rounding and accumulates in int32.
// An EvalPrecisionGuard reroutes every Gemm() on the current thread for its
// scope — the seam the FL engine uses to run evaluation (accuracy-tolerant
// by design) at reduced precision without touching training.
#pragma once

#include <cstdint>

namespace mhbench::core {
class ThreadPool;
}  // namespace mhbench::core

namespace mhbench::kernels {

// Blocking constants, exposed for tests (shapes straddling these are the
// adversarial cases).
inline constexpr int kMR = 6;
inline constexpr int kNR = 16;
inline constexpr int kMC = 96;    // multiple of kMR
inline constexpr int kKC = 256;   // k slab; also the threaded packing depth
inline constexpr int kNC = 1024;  // multiple of kNR
// Column stripe one threaded task owns (multiple of kNR); with the kMC
// row-blocks this yields ceil(m/kMC) * ceil(nc/kJRB) tasks per macro-slab.
inline constexpr int kJRB = 4 * kNR;

// Runtime backend switch so benchmarks (and debugging) can route every
// consumer — conv, linear, attention — through the retained naive kernels.
enum class Backend { kFast, kNaive };
void SetBackend(Backend b);
Backend CurrentBackend();

// Micro-kernel ISA variants for the fast path, selected at startup from CPU
// features (best available wins) and overridable via MHB_KERNELS=
// naive|scalar|avx2|avx512|fast ("fast" = auto, "naive" flips the Backend
// instead).  An unavailable override falls back to the best available
// variant with a warning rather than crashing.
enum class Isa { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

// Compiled into this binary AND supported by the running CPU.
bool IsaAvailable(Isa isa);
// Selects `isa` for subsequent fast-path calls; false (no change) when
// unavailable.  For tests and benchmarks; not thread-safe against in-flight
// Gemm calls.
bool SetIsa(Isa isa);
Isa CurrentIsa();
const char* IsaName(Isa isa);
// "naive" when the naive backend is selected, else the current ISA name —
// what manifests and bench reports record so diffs refuse to compare
// apples to oranges.
const char* KernelBackendName();

// Installs the pool used for macro-tile parallelism (null restores serial
// execution); returns the previous pool.  Results are bit-identical with or
// without a pool and at any worker count, so this only trades wall time.
// Calls from inside a pool worker always run serially (nested-submit
// guard), keeping per-client training single-threaded under the FL
// engine's client dispatch.
core::ThreadPool* SetGemmThreadPool(core::ThreadPool* pool);
core::ThreadPool* GemmThreadPool();

// Per-thread evaluation precision, installed scope-wise by
// EvalPrecisionGuard.  kF32 (the default) leaves Gemm untouched; kBf16 /
// kInt8 reroute it to the reduced-precision variants below.
enum class EvalPrecision { kF32 = 0, kBf16 = 1, kInt8 = 2 };
const char* EvalPrecisionName(EvalPrecision p);
// Parses "f32" / "bf16" / "int8"; false leaves *out untouched.
bool ParseEvalPrecision(const char* text, EvalPrecision* out);
EvalPrecision ActiveEvalPrecision();

class EvalPrecisionGuard {
 public:
  explicit EvalPrecisionGuard(EvalPrecision p);
  ~EvalPrecisionGuard();

  EvalPrecisionGuard(const EvalPrecisionGuard&) = delete;
  EvalPrecisionGuard& operator=(const EvalPrecisionGuard&) = delete;

 private:
  EvalPrecision prev_;
};

// C[m,n] = op(A)·op(B) + beta·C + bias.
//
//   op(A) is m x k: element (i,p) is a[i*lda + p], or a[p*lda + i] when
//   trans_a (i.e. A is stored k x m with leading dimension lda).  op(B) is
//   k x n, analogously with trans_b.  C is m x n with leading dimension
//   ldc.  When beta == 0, C is treated as write-only (it may be
//   uninitialized).  `bias`, when non-null, points at n floats broadcast
//   over rows — the fused replacement for the layers' per-element bias
//   loops.
//
// Degenerate dimensions are accepted: m == 0 or n == 0 is a no-op, k == 0
// computes the pure epilogue C = beta·C + bias (the empty contraction).
void Gemm(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
          int lda, const float* b, int ldb, float beta, float* c, int ldc,
          const float* bias = nullptr);

// Same contract as Gemm, with both operands rounded to bf16
// (round-to-nearest-even on the stored f32 bits) before the f32-accumulate
// fast kernel runs.  Deterministic: the rounding is a pure function of each
// element.  Eval-only precision — training gradients stay f32.
void GemmBf16(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
              int lda, const float* b, int ldb, float beta, float* c, int ldc,
              const float* bias = nullptr);

// Same contract as Gemm over per-tensor symmetric int8 quantized operands
// (scale = max|x| / 127, fixed-order scan) with int32 accumulation and a
// deterministic index-seeded stochastic rounding of each quantized value —
// seeded rounding keeps the coarse int8 grid unbiased while staying a pure
// function of (value, element index).  k is capped so the int32 accumulator
// cannot overflow.
void GemmInt8(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
              int lda, const float* b, int ldb, float beta, float* c, int ldc,
              const float* bias = nullptr);

// The naive reference (triple loop, no packing, no blocking — and no
// data-dependent zero-skip branches: the old `if (a == 0) continue` made
// timing input-dependent and blocked vectorization, and no caller relied on
// its 0*inf/NaN masking).  Same contraction order as the fast path; retained
// for tests and for the --naive benchmark baseline.  Never rerouted by
// EvalPrecisionGuard.
void NaiveGemm(bool trans_a, bool trans_b, int m, int n, int k,
               const float* a, int lda, const float* b, int ldb, float beta,
               float* c, int ldc, const float* bias = nullptr);

// out[j] += sum_i rows[i*ld + j] — the column reduction behind every bias
// gradient (one pass, row-major streaming, auto-vectorizable).
void ColSumAcc(const float* rows, int nrows, int ncols, int ld, float* out);

// Process-wide count of multiply-add FLOPs executed by the f32 Gemm paths
// (2*m*n*k per call, both backends).  Monotone; the engine publishes round
// deltas as the `gemm_flops` counter.  The reduced-precision variants count
// into their own totals below, so per-precision work is separable in the
// obs registry.
std::uint64_t TotalGemmFlops();
std::uint64_t TotalGemmFlopsBf16();
std::uint64_t TotalGemmFlopsInt8();

// Calling thread's share of all GEMM FLOPs, every precision (monotone, no
// synchronization).  The per-op profiler differences it around a scope;
// using the global total there would attribute other threads' concurrent
// GEMMs to this scope.
std::uint64_t ThreadGemmFlops();

namespace internal {
// Uncounted naive implementation.  Lives in gemm_naive.cc, which is built
// with the project's default flags (no per-file -O3/-mavx512f/-mfma): the
// benchmark baseline stays what the pre-kernel-layer code compiled to.
void NaiveGemmImpl(bool trans_a, bool trans_b, int m, int n, int k,
                   const float* a, int lda, const float* b, int ldb,
                   float beta, float* c, int ldc, const float* bias);

// Uncounted backend-routed f32 implementation (fast dispatch or naive),
// with no precision rerouting and no degenerate-dim handling: m, n, k must
// be positive.  The reduced-precision TU calls this on its rounded
// operands so bf16 rides the same dispatched/threaded kernel as f32.
void GemmRaw(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
             int lda, const float* b, int ldb, float beta, float* c, int ldc,
             const float* bias);

// The k == 0 epilogue shared by every entry point: C = beta·C + bias.
void ScaleBiasEpilogue(int m, int n, float beta, float* c, int ldc,
                       const float* bias);

// Counts 2*m*n*k into the per-precision global total and the calling
// thread's total.
void CountGemmFlops(int m, int n, int k, EvalPrecision p);
}  // namespace internal

}  // namespace mhbench::kernels
