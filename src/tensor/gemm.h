// mhbench::kernels — the high-performance GEMM layer.
//
// One kernel covers the whole Matmul/MatmulTransA/MatmulTransB family plus
// the fused epilogues the layers need (beta-accumulate into an existing
// gradient, bias broadcast), over strided row-major operands so callers
// never materialize transposes or reshapes.  The fast path is a classic
// cache-blocked, panel-packed, register-tiled design (fixed MC/KC/NC
// blocking with an MR x NR microkernel the compiler auto-vectorizes).  It is
// deliberately single-threaded: per-client work stays on one thread, so
// results are bit-identical for every --threads setting.
//
// Determinism: for a fixed build, every code path accumulates the k
// dimension in ascending order with no data-dependent branching, so repeated
// calls are bit-identical — and because the kernel never splits one output
// across threads, metrics are bit-identical for every --threads setting.
// The fast kernel is NOT bit-equal to the naive reference: it blocks the k
// dimension (partial sums associate as sum_block0 + sum_block1 instead of
// one running sum) and its build may fuse multiply-adds (-mfma), which
// rounds differently from the separately-rounded mul-then-add the default
// flags produce.  Tests therefore compare backends with a tight relative
// tolerance and reserve exact equality for run-to-run / cross-thread-count
// checks within one backend.
#pragma once

#include <cstdint>

namespace mhbench::kernels {

// Blocking constants, exposed for tests (shapes straddling these are the
// adversarial cases).
inline constexpr int kMR = 6;
inline constexpr int kNR = 16;
inline constexpr int kMC = 96;    // multiple of kMR
inline constexpr int kKC = 256;
inline constexpr int kNC = 1024;  // multiple of kNR

// Runtime backend switch so benchmarks (and debugging) can route every
// consumer — conv, linear, attention — through the retained naive kernels.
enum class Backend { kFast, kNaive };
void SetBackend(Backend b);
Backend CurrentBackend();

// C[m,n] = op(A)·op(B) + beta·C + bias.
//
//   op(A) is m x k: element (i,p) is a[i*lda + p], or a[p*lda + i] when
//   trans_a (i.e. A is stored k x m with leading dimension lda).  op(B) is
//   k x n, analogously with trans_b.  C is m x n with leading dimension
//   ldc.  When beta == 0, C is treated as write-only (it may be
//   uninitialized).  `bias`, when non-null, points at n floats broadcast
//   over rows — the fused replacement for the layers' per-element bias
//   loops.
void Gemm(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
          int lda, const float* b, int ldb, float beta, float* c, int ldc,
          const float* bias = nullptr);

// The naive reference (triple loop, no packing, no blocking — and no
// data-dependent zero-skip branches: the old `if (a == 0) continue` made
// timing input-dependent and blocked vectorization, and no caller relied on
// its 0*inf/NaN masking).  Same contraction order as the fast path; retained
// for tests and for the --naive benchmark baseline.
void NaiveGemm(bool trans_a, bool trans_b, int m, int n, int k,
               const float* a, int lda, const float* b, int ldb, float beta,
               float* c, int ldc, const float* bias = nullptr);

// out[j] += sum_i rows[i*ld + j] — the column reduction behind every bias
// gradient (one pass, row-major streaming, auto-vectorizable).
void ColSumAcc(const float* rows, int nrows, int ncols, int ld, float* out);

// Process-wide count of multiply-add FLOPs executed by Gemm (2*m*n*k per
// call, both backends).  Monotone; the engine publishes round deltas as the
// `gemm_flops` counter.
std::uint64_t TotalGemmFlops();

// Calling thread's share of TotalGemmFlops (monotone, no synchronization).
// The per-op profiler differences it around a scope; using the global total
// there would attribute other threads' concurrent GEMMs to this scope.
std::uint64_t ThreadGemmFlops();

namespace internal {
// Uncounted naive implementation.  Lives in gemm_naive.cc, which is built
// with the project's default flags (no per-file -O3/-mavx512f/-mfma): the
// benchmark baseline stays what the pre-kernel-layer code compiled to.
void NaiveGemmImpl(bool trans_a, bool trans_b, int m, int n, int k,
                   const float* a, int lda, const float* b, int ldb,
                   float beta, float* c, int ldc, const float* bias);
}  // namespace internal

}  // namespace mhbench::kernels
