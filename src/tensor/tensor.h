// Dense float32 tensor with value semantics.
//
// Tensors are row-major and own their storage (copy = deep copy).  This is
// the only numeric container in the library; all layer parameters,
// activations and gradients are `Tensor`s.  Shape arithmetic is checked with
// MHB_CHECK at API boundaries.
//
// Storage comes from a per-thread buffer pool: destroying a tensor recycles
// its buffer into the destroying thread's free list and constructing one
// reuses a pooled buffer of sufficient capacity when available.  Training
// loops allocate the same handful of shapes every step, so after a warmup
// step the hot path performs no data-buffer heap allocations at all (see
// DESIGN.md §5d and Tensor::ThreadAllocStats).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "core/error.h"

namespace mhbench {

class Rng;

using Scalar = float;
using Shape = std::vector<int>;

// Number of elements implied by a shape (product of extents).
std::size_t ShapeNumel(const Shape& shape);

// "[2, 3, 4]" - for error messages.
std::string ShapeToString(const Shape& shape);

class Tensor {
 public:
  // Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  // Zero-initialized tensor of the given shape.  Extents must be positive.
  explicit Tensor(Shape shape);
  Tensor(Shape shape, Scalar fill);

  // Copies `values` into pooled storage; size must match the shape.
  Tensor(Shape shape, std::vector<Scalar> values);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  static Tensor FromVector(std::vector<Scalar> values);  // rank-1
  static Tensor Scalar1(Scalar v);                       // shape [1]

  // Pooled storage with *unspecified contents* — for kernel outputs that
  // are fully overwritten before being read.
  static Tensor Uninitialized(Shape shape);

  // Gaussian-initialized tensor (used by parameter initializers and tests).
  static Tensor Randn(Shape shape, Rng& rng, Scalar stddev = 1.0f);

  const Shape& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const;
  std::size_t numel() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::span<Scalar> data() { return {ptr_, size_}; }
  std::span<const Scalar> data() const { return {ptr_, size_}; }

  Scalar& operator[](std::size_t i) { return ptr_[i]; }
  Scalar operator[](std::size_t i) const { return ptr_[i]; }

  // Multi-index access (size must equal ndim()); bounds-checked in debug.
  Scalar& at(std::initializer_list<int> idx);
  Scalar at(std::initializer_list<int> idx) const;

  // Linear offset of a multi-index.
  std::size_t Offset(std::span<const int> idx) const;

  // Returns a tensor sharing no storage with this one, with a new shape of
  // equal element count.
  Tensor Reshape(Shape new_shape) const;

  // Reshapes in place without touching the data, reusing the existing
  // buffer whenever its capacity suffices.  Contents are unspecified when
  // the element count changes; callers must fully overwrite them.  This is
  // the zero-allocation workhorse for per-step layer caches.
  void ResizeUninitialized(std::span<const int> new_shape);

  // In-place fill.
  void Fill(Scalar v);

  // Elementwise in-place ops (shapes must match exactly).
  void AddInPlace(const Tensor& other);
  void SubInPlace(const Tensor& other);
  void MulInPlace(const Tensor& other);
  void AxpyInPlace(Scalar alpha, const Tensor& other);  // this += alpha*other
  void Scale(Scalar alpha);

  // Elementwise binary (returns new tensor; shapes must match).
  Tensor Add(const Tensor& other) const;
  Tensor Sub(const Tensor& other) const;
  Tensor Mul(const Tensor& other) const;

  // Reductions.
  double Sum() const;
  double Mean() const;
  Scalar MaxAbs() const;
  double SquaredL2() const;

  // True iff shapes are equal and all elements differ by at most `tol`.
  bool AllClose(const Tensor& other, Scalar tol = 1e-5f) const;

  // Per-thread data-buffer allocation statistics.  `heap_allocs` counts
  // buffers that had to come from the heap, `pool_hits` buffers recycled
  // from the thread's pool.  The zero-allocation tests assert heap_allocs
  // stays flat across warmed-up training steps.
  struct AllocStats {
    std::uint64_t heap_allocs = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t pool_returns = 0;
    std::uint64_t heap_frees = 0;
  };
  static AllocStats ThreadAllocStats();

 private:
  void AcquireBuffer(std::size_t n);  // sets ptr_/size_/cap_
  void ReleaseBuffer();

  Shape shape_;
  Scalar* ptr_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace mhbench
