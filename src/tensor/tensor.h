// Dense float32 tensor with value semantics.
//
// Tensors are row-major and own their storage (copy = deep copy).  This is
// the only numeric container in the library; all layer parameters,
// activations and gradients are `Tensor`s.  Shape arithmetic is checked with
// MHB_CHECK at API boundaries.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "core/error.h"

namespace mhbench {

class Rng;

using Scalar = float;
using Shape = std::vector<int>;

// Number of elements implied by a shape (product of extents).
std::size_t ShapeNumel(const Shape& shape);

// "[2, 3, 4]" - for error messages.
std::string ShapeToString(const Shape& shape);

class Tensor {
 public:
  // Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  // Zero-initialized tensor of the given shape.  Extents must be positive.
  explicit Tensor(Shape shape);
  Tensor(Shape shape, Scalar fill);

  // Takes ownership of `values`; size must match the shape.
  Tensor(Shape shape, std::vector<Scalar> values);

  static Tensor FromVector(std::vector<Scalar> values);  // rank-1
  static Tensor Scalar1(Scalar v);                       // shape [1]

  // Gaussian-initialized tensor (used by parameter initializers and tests).
  static Tensor Randn(Shape shape, Rng& rng, Scalar stddev = 1.0f);

  const Shape& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const;
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  std::span<Scalar> data() { return data_; }
  std::span<const Scalar> data() const { return data_; }

  Scalar& operator[](std::size_t i) { return data_[i]; }
  Scalar operator[](std::size_t i) const { return data_[i]; }

  // Multi-index access (size must equal ndim()); bounds-checked in debug.
  Scalar& at(std::initializer_list<int> idx);
  Scalar at(std::initializer_list<int> idx) const;

  // Linear offset of a multi-index.
  std::size_t Offset(std::span<const int> idx) const;

  // Returns a tensor sharing no storage with this one, with a new shape of
  // equal element count.
  Tensor Reshape(Shape new_shape) const;

  // In-place fill.
  void Fill(Scalar v);

  // Elementwise in-place ops (shapes must match exactly).
  void AddInPlace(const Tensor& other);
  void SubInPlace(const Tensor& other);
  void MulInPlace(const Tensor& other);
  void AxpyInPlace(Scalar alpha, const Tensor& other);  // this += alpha*other
  void Scale(Scalar alpha);

  // Elementwise binary (returns new tensor; shapes must match).
  Tensor Add(const Tensor& other) const;
  Tensor Sub(const Tensor& other) const;
  Tensor Mul(const Tensor& other) const;

  // Reductions.
  double Sum() const;
  double Mean() const;
  Scalar MaxAbs() const;
  double SquaredL2() const;

  // True iff shapes are equal and all elements differ by at most `tol`.
  bool AllClose(const Tensor& other, Scalar tol = 1e-5f) const;

 private:
  Shape shape_;
  std::vector<Scalar> data_;
};

}  // namespace mhbench
