#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/gemm.h"

namespace mhbench::ops {
namespace {

// Iterates over every combination of the given per-dimension index lists in
// contiguous blocks.  The longest suffix of unindexed dimensions is folded
// into one block of `block` elements that is contiguous in both the small
// and the large tensor, so the gather/scatter family runs a bulk
// memcpy/vector loop per block instead of a lambda call per element.  The
// callback receives (small_off, large_off, block).
template <typename Fn>
void ForEachSelectedBlock(const Shape& full_shape, const DimIndices& index,
                          Fn&& fn) {
  const int nd = static_cast<int>(full_shape.size());
  MHB_CHECK_EQ(static_cast<int>(index.size()), nd);
  if (ShapeNumel(full_shape) == 0) return;

  // Contiguous tail: trailing dims kept whole.
  int lead = nd;
  std::size_t block = 1;
  while (lead > 0 && !index[static_cast<std::size_t>(lead - 1)].has_value()) {
    --lead;
    block *= static_cast<std::size_t>(full_shape[static_cast<std::size_t>(lead)]);
  }

  // Effective per-dimension index lists for the leading dims (identity when
  // absent), validated against the large tensor's extents.
  std::vector<std::vector<int>> idx(static_cast<std::size_t>(lead));
  for (int d = 0; d < lead; ++d) {
    const auto du = static_cast<std::size_t>(d);
    if (index[du].has_value()) {
      idx[du] = *index[du];
      for (int i : idx[du]) {
        MHB_CHECK(i >= 0 && i < full_shape[du])
            << "index" << i << "out of range for dim" << d << "of"
            << ShapeToString(full_shape);
      }
    } else {
      idx[du].resize(static_cast<std::size_t>(full_shape[du]));
      for (int i = 0; i < full_shape[du]; ++i) {
        idx[du][static_cast<std::size_t>(i)] = i;
      }
    }
  }

  // Strides of the large tensor over the leading dims, in units of `block`.
  std::vector<std::size_t> stride(static_cast<std::size_t>(lead), 1);
  for (int d = lead - 2; d >= 0; --d) {
    const auto du = static_cast<std::size_t>(d);
    stride[du] = stride[du + 1] * static_cast<std::size_t>(full_shape[du + 1]);
  }

  if (lead == 0) {
    fn(std::size_t{0}, std::size_t{0}, block);
    return;
  }

  // Odometer over the small tensor's leading coordinates.
  std::vector<std::size_t> pos(static_cast<std::size_t>(lead), 0);
  std::size_t small_off = 0;
  for (;;) {
    std::size_t large_off = 0;
    for (int d = 0; d < lead; ++d) {
      const auto du = static_cast<std::size_t>(d);
      large_off += stride[du] * static_cast<std::size_t>(idx[du][pos[du]]);
    }
    fn(small_off, large_off * block, block);
    small_off += block;
    int d = lead - 1;
    for (; d >= 0; --d) {
      const auto du = static_cast<std::size_t>(d);
      if (++pos[du] < idx[du].size()) break;
      pos[du] = 0;
    }
    if (d < 0) break;
  }
}

Shape SelectedShape(const Shape& full_shape, const DimIndices& index) {
  Shape out = full_shape;
  for (std::size_t d = 0; d < index.size(); ++d) {
    if (index[d].has_value()) {
      MHB_CHECK(!index[d]->empty()) << "empty index list for dim" << d;
      out[d] = static_cast<int>(index[d]->size());
    }
  }
  return out;
}

}  // namespace

Tensor Matmul(const Tensor& a, const Tensor& b) {
  MHB_CHECK_EQ(a.ndim(), 2);
  MHB_CHECK_EQ(b.ndim(), 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  MHB_CHECK_EQ(k, b.dim(0));
  Tensor c = Tensor::Uninitialized({m, n});
  kernels::Gemm(false, false, m, n, k, a.data().data(), k, b.data().data(),
                n, 0.0f, c.data().data(), n);
  return c;
}

Tensor MatmulTransB(const Tensor& a, const Tensor& b) {
  MHB_CHECK_EQ(a.ndim(), 2);
  MHB_CHECK_EQ(b.ndim(), 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  MHB_CHECK_EQ(k, b.dim(1));
  Tensor c = Tensor::Uninitialized({m, n});
  kernels::Gemm(false, true, m, n, k, a.data().data(), k, b.data().data(), k,
                0.0f, c.data().data(), n);
  return c;
}

Tensor MatmulTransA(const Tensor& a, const Tensor& b) {
  MHB_CHECK_EQ(a.ndim(), 2);
  MHB_CHECK_EQ(b.ndim(), 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  MHB_CHECK_EQ(m, b.dim(0));
  Tensor c = Tensor::Uninitialized({k, n});
  kernels::Gemm(true, false, k, n, m, a.data().data(), k, b.data().data(), n,
                0.0f, c.data().data(), n);
  return c;
}

Tensor Transpose2d(const Tensor& a) {
  MHB_CHECK_EQ(a.ndim(), 2);
  const int m = a.dim(0), n = a.dim(1);
  Tensor out = Tensor::Uninitialized({n, m});
  const Scalar* in = a.data().data();
  Scalar* o = out.data().data();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      o[static_cast<std::size_t>(j) * m + i] =
          in[static_cast<std::size_t>(i) * n + j];
    }
  }
  return out;
}

Tensor SoftmaxRows(const Tensor& logits) {
  MHB_CHECK_EQ(logits.ndim(), 2);
  const int n = logits.dim(0), c = logits.dim(1);
  Tensor out = Tensor::Uninitialized({n, c});
  for (int i = 0; i < n; ++i) {
    const Scalar* row = logits.data().data() + static_cast<std::size_t>(i) * c;
    Scalar* orow = out.data().data() + static_cast<std::size_t>(i) * c;
    Scalar mx = row[0];
    for (int j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (int j = 0; j < c; ++j) {
      orow[j] = std::exp(row[j] - mx);
      sum += orow[j];
    }
    const Scalar inv = static_cast<Scalar>(1.0 / sum);
    for (int j = 0; j < c; ++j) orow[j] *= inv;
  }
  return out;
}

Tensor LogSoftmaxRows(const Tensor& logits) {
  MHB_CHECK_EQ(logits.ndim(), 2);
  const int n = logits.dim(0), c = logits.dim(1);
  Tensor out = Tensor::Uninitialized({n, c});
  for (int i = 0; i < n; ++i) {
    const Scalar* row = logits.data().data() + static_cast<std::size_t>(i) * c;
    Scalar* orow = out.data().data() + static_cast<std::size_t>(i) * c;
    Scalar mx = row[0];
    for (int j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (int j = 0; j < c; ++j) sum += std::exp(row[j] - mx);
    const Scalar lse = mx + static_cast<Scalar>(std::log(sum));
    for (int j = 0; j < c; ++j) orow[j] = row[j] - lse;
  }
  return out;
}

std::vector<int> ArgmaxRows(const Tensor& t) {
  MHB_CHECK_EQ(t.ndim(), 2);
  const int n = t.dim(0), c = t.dim(1);
  std::vector<int> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Scalar* row = t.data().data() + static_cast<std::size_t>(i) * c;
    int best = 0;
    for (int j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

void Im2ColInto(const Tensor& input, int kh, int kw, int stride, int pad_h,
                int pad_w, float* out) {
  MHB_CHECK_EQ(input.ndim(), 4);
  MHB_CHECK_GT(stride, 0);
  MHB_CHECK_GE(pad_h, 0);
  MHB_CHECK_GE(pad_w, 0);
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  const int oh = (h + 2 * pad_h - kh) / stride + 1;
  const int ow = (w + 2 * pad_w - kw) / stride + 1;
  MHB_CHECK_GT(oh, 0);
  MHB_CHECK_GT(ow, 0);
  const Scalar* in = input.data().data();
  const std::size_t in_cs = static_cast<std::size_t>(h) * w;
  const std::size_t in_ns = static_cast<std::size_t>(c) * in_cs;
  std::size_t row = 0;
  for (int b = 0; b < n; ++b) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox, ++row) {
        Scalar* orow = out + row * static_cast<std::size_t>(c) * kh * kw;
        std::size_t col = 0;
        for (int ch = 0; ch < c; ++ch) {
          const Scalar* plane = in + static_cast<std::size_t>(b) * in_ns +
                                static_cast<std::size_t>(ch) * in_cs;
          for (int ky = 0; ky < kh; ++ky) {
            const int iy = oy * stride + ky - pad_h;
            if (iy < 0 || iy >= h) {
              for (int kx = 0; kx < kw; ++kx, ++col) orow[col] = 0.0f;
              continue;
            }
            const Scalar* line = plane + static_cast<std::size_t>(iy) * w;
            const int ix0 = ox * stride - pad_w;
            if (ix0 >= 0 && ix0 + kw <= w) {
              // Fully interior: one contiguous copy per kernel row.
              std::memcpy(orow + col, line + ix0,
                          static_cast<std::size_t>(kw) * sizeof(Scalar));
              col += static_cast<std::size_t>(kw);
              continue;
            }
            for (int kx = 0; kx < kw; ++kx, ++col) {
              const int ix = ix0 + kx;
              orow[col] = (ix >= 0 && ix < w) ? line[ix] : 0.0f;
            }
          }
        }
      }
    }
  }
}

Tensor Im2Col(const Tensor& input, int kh, int kw, int stride, int pad_h,
              int pad_w) {
  MHB_CHECK_EQ(input.ndim(), 4);
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  const int oh = (h + 2 * pad_h - kh) / stride + 1;
  const int ow = (w + 2 * pad_w - kw) / stride + 1;
  MHB_CHECK_GT(oh, 0);
  MHB_CHECK_GT(ow, 0);
  Tensor cols = Tensor::Uninitialized({n * oh * ow, c * kh * kw});
  Im2ColInto(input, kh, kw, stride, pad_h, pad_w, cols.data().data());
  return cols;
}

void Col2ImAcc(const float* cols, const Shape& input_shape, int kh, int kw,
               int stride, int pad_h, int pad_w, float* out) {
  MHB_CHECK_EQ(static_cast<int>(input_shape.size()), 4);
  const int n = input_shape[0], c = input_shape[1], h = input_shape[2],
            w = input_shape[3];
  const int oh = (h + 2 * pad_h - kh) / stride + 1;
  const int ow = (w + 2 * pad_w - kw) / stride + 1;
  const std::size_t out_cs = static_cast<std::size_t>(h) * w;
  const std::size_t out_ns = static_cast<std::size_t>(c) * out_cs;
  std::size_t row = 0;
  for (int b = 0; b < n; ++b) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox, ++row) {
        const Scalar* irow = cols + row * static_cast<std::size_t>(c) * kh * kw;
        std::size_t col = 0;
        for (int ch = 0; ch < c; ++ch) {
          Scalar* plane = out + static_cast<std::size_t>(b) * out_ns +
                          static_cast<std::size_t>(ch) * out_cs;
          for (int ky = 0; ky < kh; ++ky) {
            const int iy = oy * stride + ky - pad_h;
            if (iy < 0 || iy >= h) {
              col += static_cast<std::size_t>(kw);
              continue;
            }
            Scalar* line = plane + static_cast<std::size_t>(iy) * w;
            const int ix0 = ox * stride - pad_w;
            for (int kx = 0; kx < kw; ++kx, ++col) {
              const int ix = ix0 + kx;
              if (ix >= 0 && ix < w) line[ix] += irow[col];
            }
          }
        }
      }
    }
  }
}

Tensor Col2Im(const Tensor& cols, const Shape& input_shape, int kh, int kw,
              int stride, int pad_h, int pad_w) {
  MHB_CHECK_EQ(cols.ndim(), 2);
  MHB_CHECK_EQ(static_cast<int>(input_shape.size()), 4);
  const int n = input_shape[0], c = input_shape[1], h = input_shape[2],
            w = input_shape[3];
  const int oh = (h + 2 * pad_h - kh) / stride + 1;
  const int ow = (w + 2 * pad_w - kw) / stride + 1;
  MHB_CHECK_EQ(cols.dim(0), n * oh * ow);
  MHB_CHECK_EQ(cols.dim(1), c * kh * kw);
  Tensor grad(input_shape);
  Col2ImAcc(cols.data().data(), input_shape, kh, kw, stride, pad_h, pad_w,
            grad.data().data());
  return grad;
}

Tensor GatherDims(const Tensor& src, const DimIndices& index) {
  Tensor out = Tensor::Uninitialized(SelectedShape(src.shape(), index));
  const Scalar* ps = src.data().data();
  Scalar* po = out.data().data();
  ForEachSelectedBlock(
      src.shape(), index,
      [&](std::size_t small_off, std::size_t large_off, std::size_t block) {
        std::memcpy(po + small_off, ps + large_off, block * sizeof(Scalar));
      });
  return out;
}

void ScatterAddDims(Tensor& dst, const Tensor& src, const DimIndices& index) {
  const Shape expect = SelectedShape(dst.shape(), index);
  MHB_CHECK(src.shape() == expect)
      << "scatter source" << ShapeToString(src.shape()) << "expected"
      << ShapeToString(expect);
  const Scalar* ps = src.data().data();
  Scalar* pd = dst.data().data();
  ForEachSelectedBlock(
      dst.shape(), index,
      [&](std::size_t small_off, std::size_t large_off, std::size_t block) {
        const Scalar* s = ps + small_off;
        Scalar* d = pd + large_off;
        for (std::size_t i = 0; i < block; ++i) d[i] += s[i];
      });
}

void ScatterAxpyDims(Tensor& dst, Scalar alpha, const Tensor& src,
                     const DimIndices& index) {
  const Shape expect = SelectedShape(dst.shape(), index);
  MHB_CHECK(src.shape() == expect)
      << "scatter source" << ShapeToString(src.shape()) << "expected"
      << ShapeToString(expect);
  const Scalar* ps = src.data().data();
  Scalar* pd = dst.data().data();
  ForEachSelectedBlock(
      dst.shape(), index,
      [&](std::size_t small_off, std::size_t large_off, std::size_t block) {
        const Scalar* s = ps + small_off;
        Scalar* d = pd + large_off;
        for (std::size_t i = 0; i < block; ++i) d[i] += alpha * s[i];
      });
}

void ScatterAddScalarDims(Tensor& dst, Scalar value, const DimIndices& index) {
  Scalar* pd = dst.data().data();
  ForEachSelectedBlock(
      dst.shape(), index,
      [&](std::size_t, std::size_t large_off, std::size_t block) {
        Scalar* d = pd + large_off;
        for (std::size_t i = 0; i < block; ++i) d[i] += value;
      });
}

void ScatterAssignDims(Tensor& dst, const Tensor& src,
                       const DimIndices& index) {
  const Shape expect = SelectedShape(dst.shape(), index);
  MHB_CHECK(src.shape() == expect)
      << "scatter source" << ShapeToString(src.shape()) << "expected"
      << ShapeToString(expect);
  const Scalar* ps = src.data().data();
  Scalar* pd = dst.data().data();
  ForEachSelectedBlock(
      dst.shape(), index,
      [&](std::size_t small_off, std::size_t large_off, std::size_t block) {
        std::memcpy(pd + large_off, ps + small_off, block * sizeof(Scalar));
      });
}

void ScatterCountDims(Tensor& counts, const DimIndices& index) {
  ScatterAddScalarDims(counts, 1.0f, index);
}

}  // namespace mhbench::ops
