#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace mhbench::ops {
namespace {

// Iterates over every combination of the given per-dimension index lists,
// yielding (src_linear_offset_into_selected, dst_multi_index).  Shared by the
// gather/scatter family.
//
// `full_shape` is the shape of the large tensor; `index` selects positions
// in it.  The callback receives the linear offset in the *small* tensor and
// the linear offset in the *large* tensor.
void ForEachSelected(const Shape& full_shape, const DimIndices& index,
                     const std::function<void(std::size_t small_off,
                                              std::size_t large_off)>& fn) {
  const int nd = static_cast<int>(full_shape.size());
  MHB_CHECK_EQ(static_cast<int>(index.size()), nd);

  // Effective per-dimension index lists (identity when absent).
  std::vector<std::vector<int>> idx(static_cast<std::size_t>(nd));
  for (int d = 0; d < nd; ++d) {
    const auto du = static_cast<std::size_t>(d);
    if (index[du].has_value()) {
      idx[du] = *index[du];
      for (int i : idx[du]) {
        MHB_CHECK(i >= 0 && i < full_shape[du])
            << "index" << i << "out of range for dim" << d << "of"
            << ShapeToString(full_shape);
      }
    } else {
      idx[du].resize(static_cast<std::size_t>(full_shape[du]));
      for (int i = 0; i < full_shape[du]; ++i) idx[du][static_cast<std::size_t>(i)] = i;
    }
  }

  // Strides of the large tensor.
  std::vector<std::size_t> stride(static_cast<std::size_t>(nd), 1);
  for (int d = nd - 2; d >= 0; --d) {
    const auto du = static_cast<std::size_t>(d);
    stride[du] = stride[du + 1] * static_cast<std::size_t>(full_shape[du + 1]);
  }

  // Odometer over the small tensor's coordinates.
  std::vector<std::size_t> pos(static_cast<std::size_t>(nd), 0);
  std::size_t small_off = 0;
  for (;;) {
    std::size_t large_off = 0;
    for (int d = 0; d < nd; ++d) {
      const auto du = static_cast<std::size_t>(d);
      large_off += stride[du] * static_cast<std::size_t>(idx[du][pos[du]]);
    }
    fn(small_off, large_off);
    ++small_off;
    int d = nd - 1;
    for (; d >= 0; --d) {
      const auto du = static_cast<std::size_t>(d);
      if (++pos[du] < idx[du].size()) break;
      pos[du] = 0;
    }
    if (d < 0) break;
  }
}

Shape SelectedShape(const Shape& full_shape, const DimIndices& index) {
  Shape out = full_shape;
  for (std::size_t d = 0; d < index.size(); ++d) {
    if (index[d].has_value()) {
      MHB_CHECK(!index[d]->empty()) << "empty index list for dim" << d;
      out[d] = static_cast<int>(index[d]->size());
    }
  }
  return out;
}

}  // namespace

Tensor Matmul(const Tensor& a, const Tensor& b) {
  MHB_CHECK_EQ(a.ndim(), 2);
  MHB_CHECK_EQ(b.ndim(), 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  MHB_CHECK_EQ(k, b.dim(0));
  Tensor c({m, n});
  const Scalar* pa = a.data().data();
  const Scalar* pb = b.data().data();
  Scalar* pc = c.data().data();
  // ikj loop order: streams through B and C rows for cache friendliness.
  for (int i = 0; i < m; ++i) {
    Scalar* crow = pc + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const Scalar aik = pa[static_cast<std::size_t>(i) * k + kk];
      if (aik == 0.0f) continue;
      const Scalar* brow = pb + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor MatmulTransB(const Tensor& a, const Tensor& b) {
  MHB_CHECK_EQ(a.ndim(), 2);
  MHB_CHECK_EQ(b.ndim(), 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  MHB_CHECK_EQ(k, b.dim(1));
  Tensor c({m, n});
  const Scalar* pa = a.data().data();
  const Scalar* pb = b.data().data();
  Scalar* pc = c.data().data();
  for (int i = 0; i < m; ++i) {
    const Scalar* arow = pa + static_cast<std::size_t>(i) * k;
    Scalar* crow = pc + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const Scalar* brow = pb + static_cast<std::size_t>(j) * k;
      Scalar acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
  return c;
}

Tensor MatmulTransA(const Tensor& a, const Tensor& b) {
  MHB_CHECK_EQ(a.ndim(), 2);
  MHB_CHECK_EQ(b.ndim(), 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  MHB_CHECK_EQ(m, b.dim(0));
  Tensor c({k, n});
  const Scalar* pa = a.data().data();
  const Scalar* pb = b.data().data();
  Scalar* pc = c.data().data();
  for (int i = 0; i < m; ++i) {
    const Scalar* arow = pa + static_cast<std::size_t>(i) * k;
    const Scalar* brow = pb + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const Scalar av = arow[kk];
      if (av == 0.0f) continue;
      Scalar* crow = pc + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor Transpose2d(const Tensor& a) {
  MHB_CHECK_EQ(a.ndim(), 2);
  const int m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      out[static_cast<std::size_t>(j) * m + i] =
          a[static_cast<std::size_t>(i) * n + j];
    }
  }
  return out;
}

Tensor SoftmaxRows(const Tensor& logits) {
  MHB_CHECK_EQ(logits.ndim(), 2);
  const int n = logits.dim(0), c = logits.dim(1);
  Tensor out({n, c});
  for (int i = 0; i < n; ++i) {
    const Scalar* row = logits.data().data() + static_cast<std::size_t>(i) * c;
    Scalar* orow = out.data().data() + static_cast<std::size_t>(i) * c;
    Scalar mx = row[0];
    for (int j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (int j = 0; j < c; ++j) {
      orow[j] = std::exp(row[j] - mx);
      sum += orow[j];
    }
    const Scalar inv = static_cast<Scalar>(1.0 / sum);
    for (int j = 0; j < c; ++j) orow[j] *= inv;
  }
  return out;
}

Tensor LogSoftmaxRows(const Tensor& logits) {
  MHB_CHECK_EQ(logits.ndim(), 2);
  const int n = logits.dim(0), c = logits.dim(1);
  Tensor out({n, c});
  for (int i = 0; i < n; ++i) {
    const Scalar* row = logits.data().data() + static_cast<std::size_t>(i) * c;
    Scalar* orow = out.data().data() + static_cast<std::size_t>(i) * c;
    Scalar mx = row[0];
    for (int j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (int j = 0; j < c; ++j) sum += std::exp(row[j] - mx);
    const Scalar lse = mx + static_cast<Scalar>(std::log(sum));
    for (int j = 0; j < c; ++j) orow[j] = row[j] - lse;
  }
  return out;
}

std::vector<int> ArgmaxRows(const Tensor& t) {
  MHB_CHECK_EQ(t.ndim(), 2);
  const int n = t.dim(0), c = t.dim(1);
  std::vector<int> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Scalar* row = t.data().data() + static_cast<std::size_t>(i) * c;
    int best = 0;
    for (int j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

Tensor Im2Col(const Tensor& input, int kh, int kw, int stride, int pad_h,
              int pad_w) {
  MHB_CHECK_EQ(input.ndim(), 4);
  MHB_CHECK_GT(stride, 0);
  MHB_CHECK_GE(pad_h, 0);
  MHB_CHECK_GE(pad_w, 0);
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  const int oh = (h + 2 * pad_h - kh) / stride + 1;
  const int ow = (w + 2 * pad_w - kw) / stride + 1;
  MHB_CHECK_GT(oh, 0);
  MHB_CHECK_GT(ow, 0);
  Tensor cols({n * oh * ow, c * kh * kw});
  const Scalar* in = input.data().data();
  Scalar* out = cols.data().data();
  const std::size_t in_cs = static_cast<std::size_t>(h) * w;
  const std::size_t in_ns = static_cast<std::size_t>(c) * in_cs;
  std::size_t row = 0;
  for (int b = 0; b < n; ++b) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox, ++row) {
        Scalar* orow = out + row * static_cast<std::size_t>(c) * kh * kw;
        std::size_t col = 0;
        for (int ch = 0; ch < c; ++ch) {
          const Scalar* plane = in + static_cast<std::size_t>(b) * in_ns +
                                static_cast<std::size_t>(ch) * in_cs;
          for (int ky = 0; ky < kh; ++ky) {
            const int iy = oy * stride + ky - pad_h;
            for (int kx = 0; kx < kw; ++kx, ++col) {
              const int ix = ox * stride + kx - pad_w;
              orow[col] = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                              ? plane[static_cast<std::size_t>(iy) * w + ix]
                              : 0.0f;
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor Col2Im(const Tensor& cols, const Shape& input_shape, int kh, int kw,
              int stride, int pad_h, int pad_w) {
  MHB_CHECK_EQ(cols.ndim(), 2);
  MHB_CHECK_EQ(static_cast<int>(input_shape.size()), 4);
  const int n = input_shape[0], c = input_shape[1], h = input_shape[2],
            w = input_shape[3];
  const int oh = (h + 2 * pad_h - kh) / stride + 1;
  const int ow = (w + 2 * pad_w - kw) / stride + 1;
  MHB_CHECK_EQ(cols.dim(0), n * oh * ow);
  MHB_CHECK_EQ(cols.dim(1), c * kh * kw);
  Tensor grad(input_shape);
  const Scalar* in = cols.data().data();
  Scalar* out = grad.data().data();
  const std::size_t out_cs = static_cast<std::size_t>(h) * w;
  const std::size_t out_ns = static_cast<std::size_t>(c) * out_cs;
  std::size_t row = 0;
  for (int b = 0; b < n; ++b) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox, ++row) {
        const Scalar* irow = in + row * static_cast<std::size_t>(c) * kh * kw;
        std::size_t col = 0;
        for (int ch = 0; ch < c; ++ch) {
          Scalar* plane = out + static_cast<std::size_t>(b) * out_ns +
                          static_cast<std::size_t>(ch) * out_cs;
          for (int ky = 0; ky < kh; ++ky) {
            const int iy = oy * stride + ky - pad_h;
            for (int kx = 0; kx < kw; ++kx, ++col) {
              const int ix = ox * stride + kx - pad_w;
              if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
                plane[static_cast<std::size_t>(iy) * w + ix] += irow[col];
              }
            }
          }
        }
      }
    }
  }
  return grad;
}

Tensor GatherDims(const Tensor& src, const DimIndices& index) {
  Tensor out(SelectedShape(src.shape(), index));
  const Scalar* ps = src.data().data();
  Scalar* po = out.data().data();
  ForEachSelected(src.shape(), index,
                  [&](std::size_t small_off, std::size_t large_off) {
                    po[small_off] = ps[large_off];
                  });
  return out;
}

void ScatterAddDims(Tensor& dst, const Tensor& src, const DimIndices& index) {
  const Shape expect = SelectedShape(dst.shape(), index);
  MHB_CHECK(src.shape() == expect)
      << "scatter source" << ShapeToString(src.shape()) << "expected"
      << ShapeToString(expect);
  const Scalar* ps = src.data().data();
  Scalar* pd = dst.data().data();
  ForEachSelected(dst.shape(), index,
                  [&](std::size_t small_off, std::size_t large_off) {
                    pd[large_off] += ps[small_off];
                  });
}

void ScatterAssignDims(Tensor& dst, const Tensor& src,
                       const DimIndices& index) {
  const Shape expect = SelectedShape(dst.shape(), index);
  MHB_CHECK(src.shape() == expect)
      << "scatter source" << ShapeToString(src.shape()) << "expected"
      << ShapeToString(expect);
  const Scalar* ps = src.data().data();
  Scalar* pd = dst.data().data();
  ForEachSelected(dst.shape(), index,
                  [&](std::size_t small_off, std::size_t large_off) {
                    pd[large_off] = ps[small_off];
                  });
}

void ScatterCountDims(Tensor& counts, const DimIndices& index) {
  Scalar* pd = counts.data().data();
  ForEachSelected(counts.shape(), index,
                  [&](std::size_t, std::size_t large_off) {
                    pd[large_off] += 1.0f;
                  });
}

}  // namespace mhbench::ops
