// AVX-512F micro-kernel TU.  Built with -mavx512f when the compiler supports
// it; runtime dispatch (gemm.cc) only selects this variant when
// __builtin_cpu_supports("avx512f") confirms the feature.  FMA on zmm
// registers is part of AVX-512F itself, so the compiler may contract
// `c += a * b` without a separate -mfma.  Under sanitizers (uniform flags)
// the TU compiles the scalar fallback and Avx512TileCompiled() reports
// false.
#include "tensor/gemm_kernels.h"

namespace mhbench::kernels::detail {

#if defined(__AVX512F__) && defined(__GNUC__)

namespace {

using V16 = float __attribute__((vector_size(64)));

inline V16 LoadV16(const float* p) {
  V16 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Splat via an explicit all-lanes initializer: compiles to one
// vbroadcastss (see gemm_kernels_avx2.cc for why not `V16{} + x`).
inline V16 Splat16(float x) {
  return V16{x, x, x, x, x, x, x, x, x, x, x, x, x, x, x, x};
}

}  // namespace

// The 6 x 16 tile as exactly 6 zmm accumulators.  Contraction order is
// fixed (p ascending), so results are bit-identical across runs and thread
// counts for this variant.
void MicroKernelAvx512(int kc, const float* ap, const float* bp, float* acc) {
  static_assert(kMR == 6 && kNR == 16, "tile hard-wired to 6x16");
  V16 c0{}, c1{}, c2{}, c3{}, c4{}, c5{};
  for (int p = 0; p < kc; ++p) {
    const float* arow = ap + static_cast<std::size_t>(p) * kMR;
    const V16 b = LoadV16(bp + static_cast<std::size_t>(p) * kNR);
    c0 += Splat16(arow[0]) * b;
    c1 += Splat16(arow[1]) * b;
    c2 += Splat16(arow[2]) * b;
    c3 += Splat16(arow[3]) * b;
    c4 += Splat16(arow[4]) * b;
    c5 += Splat16(arow[5]) * b;
  }
  const V16 rows[kMR] = {c0, c1, c2, c3, c4, c5};
  for (int i = 0; i < kMR; ++i) {
    std::memcpy(acc + i * kNR, &rows[i], sizeof(V16));
  }
}

bool Avx512TileCompiled() { return true; }

#else  // built without -mavx512f: unreachable via dispatch

void MicroKernelAvx512(int kc, const float* ap, const float* bp, float* acc) {
  MicroKernelScalarImpl(kc, ap, bp, acc);
}

bool Avx512TileCompiled() { return false; }

#endif

}  // namespace mhbench::kernels::detail
