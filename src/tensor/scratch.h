// Per-thread scratch memory for the kernel layer.
//
// A ScratchArena is a bump allocator over a small list of large chunks:
// Alloc() hands out 64-byte-aligned float spans in O(1), and a saved Mark
// rewinds the arena to a previous state without freeing anything.  Kernels
// (GEMM packing buffers, im2col temporaries, layout transposes) allocate
// through the calling thread's arena inside a ScratchScope, so every kernel
// call is balanced: storage is reused across calls instead of hitting the
// heap per minibatch.  Chunks are only ever malloc'd when a thread's
// high-water mark grows, which happens a handful of times per run.
//
// Lifetime rules (see DESIGN.md §5d):
//   - Arena memory is strictly call-scoped: a kernel may not return arena
//     pointers to its caller.  Anything that must survive the call (layer
//     caches, outputs) lives in a Tensor.
//   - Each thread owns exactly one arena; nothing is shared, so arenas are
//     trivially race-free and thread-count changes cannot affect results.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mhbench::kernels {

class ScratchArena {
 public:
  ScratchArena();
  ~ScratchArena();

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  // 64-byte-aligned, uninitialized storage for `n` floats.  Valid until the
  // enclosing mark is restored (or Reset).  n == 0 returns a non-null
  // sentinel usable as an empty span.
  float* Alloc(std::size_t n);

  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;      // floats used in that chunk
    std::size_t in_use = 0;    // total floats live across chunks
  };
  Mark Save() const;
  void Restore(const Mark& mark);

  // Rewinds everything (keeps the chunks).
  void Reset();

  // Bytes currently handed out / high-water mark for this arena.
  std::size_t in_use_bytes() const { return in_use_ * sizeof(float); }
  std::size_t peak_bytes() const;

  // Resettable in-scope watermark for per-op attribution (owner thread
  // only).  Alloc raises it alongside in_use_; the profiler exchanges it on
  // scope entry (to the current in_use_) and folds the scope's peak back
  // into the saved value on exit, so nested scopes each see their own max.
  std::size_t watermark_floats() const { return hwm_; }
  std::size_t ExchangeWatermark(std::size_t floats) {
    const std::size_t prev = hwm_;
    hwm_ = floats;
    return prev;
  }

 private:
  struct Chunk {
    float* data = nullptr;
    std::size_t cap = 0;   // floats
    std::size_t used = 0;  // floats
  };

  void AddChunk(std::size_t min_floats);

  std::vector<Chunk> chunks_;  // touched only by the owning thread
  std::size_t active_ = 0;     // index of the chunk currently bumping
  std::size_t in_use_ = 0;     // floats
  std::size_t hwm_ = 0;        // floats; see watermark_floats()
  // Written only by the owner, sampled by serial phases on other threads.
  std::atomic<std::uint64_t> peak_bytes_{0};
};

// The calling thread's arena (created on first use).
ScratchArena& ThreadScratch();

// Rewinds the calling thread's arena to empty.  Called between client
// training steps as a hygiene barrier; kernels are already balanced via
// ScratchScope, so this is a no-op in steady state.
void ResetThreadScratch();

// RAII mark/restore over the calling thread's arena.
class ScratchScope {
 public:
  ScratchScope() : arena_(ThreadScratch()), mark_(arena_.Save()) {}
  ~ScratchScope() { arena_.Restore(mark_); }

  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

  float* Alloc(std::size_t n) { return arena_.Alloc(n); }

 private:
  ScratchArena& arena_;
  ScratchArena::Mark mark_;
};

// Max peak_bytes over every live thread arena (serial phases only; the
// engine samples it at round barriers for the scratch_bytes_peak gauge).
std::size_t ScratchPeakBytesAllThreads();

// Process-wide count of chunk allocations (monotone).  The zero-allocation
// tests assert this stays flat across warmed-up training steps.
std::uint64_t ScratchChunkAllocs();

}  // namespace mhbench::kernels
