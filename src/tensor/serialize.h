// Byte-level tensor serialization.
//
// Used by the FL layer to measure payload sizes (communication cost) and by
// tests to round-trip parameter states.  Format: int32 ndim, int32 extents,
// float32 data, little-endian (asserted at compile time for this platform).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace mhbench {

// Serializes a tensor to bytes.
std::vector<std::uint8_t> SerializeTensor(const Tensor& t);

// Parses a tensor serialized by SerializeTensor.  `offset` is advanced past
// the consumed bytes.  Throws Error on malformed input.
Tensor DeserializeTensor(const std::vector<std::uint8_t>& bytes,
                         std::size_t& offset);

// Serialized size in bytes without materializing the buffer.
std::size_t SerializedTensorBytes(const Tensor& t);

}  // namespace mhbench
