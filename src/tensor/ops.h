// Free-function tensor operations: GEMM variants, im2col for convolutions,
// softmax, and the gather/scatter primitives that sub-model extraction and
// masked federated aggregation are built on.
//
// The GEMM family routes through the packed kernel layer in
// tensor/gemm.h; the raw `*Into` / `*Acc` variants let layers stage
// temporaries in the per-thread scratch arena (tensor/scratch.h) instead of
// allocating fresh tensors every minibatch.
#pragma once

#include <optional>
#include <vector>

#include "tensor/tensor.h"

namespace mhbench::ops {

// C[m,n] = A[m,k] * B[k,n].
Tensor Matmul(const Tensor& a, const Tensor& b);

// C[m,n] = A[m,k] * B[n,k]^T.
Tensor MatmulTransB(const Tensor& a, const Tensor& b);

// C[k,n] = A[m,k]^T * B[m,n].
Tensor MatmulTransA(const Tensor& a, const Tensor& b);

// Transpose of a rank-2 tensor.
Tensor Transpose2d(const Tensor& a);

// Row-wise softmax of logits [n, c].
Tensor SoftmaxRows(const Tensor& logits);

// Row-wise log-softmax of logits [n, c].
Tensor LogSoftmaxRows(const Tensor& logits);

// Index of the max element in each row of [n, c].
std::vector<int> ArgmaxRows(const Tensor& t);

// im2col for 2-D convolution.  Input [N, C, H, W]; returns
// [N*OH*OW, C*KH*KW] with zero padding (pad_h, pad_w) and stride `stride`.
Tensor Im2Col(const Tensor& input, int kh, int kw, int stride, int pad_h,
              int pad_w);
inline Tensor Im2Col(const Tensor& input, int kh, int kw, int stride,
                     int pad) {
  return Im2Col(input, kh, kw, stride, pad, pad);
}

// Allocation-free im2col: writes the [N*OH*OW, C*KH*KW] column matrix into
// `out` (fully overwritten, padding included).  `out` must hold
// N*OH*OW * C*KH*KW floats.
void Im2ColInto(const Tensor& input, int kh, int kw, int stride, int pad_h,
                int pad_w, float* out);

// Adjoint of Im2Col: scatters columns [N*OH*OW, C*KH*KW] back into an
// input-shaped gradient [N, C, H, W].
Tensor Col2Im(const Tensor& cols, const Shape& input_shape, int kh, int kw,
              int stride, int pad_h, int pad_w);
inline Tensor Col2Im(const Tensor& cols, const Shape& input_shape, int kh,
                     int kw, int stride, int pad) {
  return Col2Im(cols, input_shape, kh, kw, stride, pad, pad);
}

// Accumulating raw-pointer adjoint: `out` (an input-shaped gradient,
// already initialized) receives `cols` scattered back; `cols` holds
// N*OH*OW * C*KH*KW floats.
void Col2ImAcc(const float* cols, const Shape& input_shape, int kh, int kw,
               int stride, int pad_h, int pad_w, float* out);

// Per-dimension index selection.  `index[d]`, when present, lists the kept
// indices along dimension d (in order, duplicates allowed); absent means
// keep the whole dimension.  This is the sub-model *extraction* primitive.
// Trailing unindexed dimensions form contiguous blocks, which the whole
// family processes with bulk memcpy/vector loops rather than per-element
// calls.
using DimIndices = std::vector<std::optional<std::vector<int>>>;
Tensor GatherDims(const Tensor& src, const DimIndices& index);

// Adjoint of GatherDims: adds `src` values into `dst` at the positions the
// index selects.  `dst` retains its shape.  This is the server-side
// *aggregation* primitive (scatter-add of client updates).
void ScatterAddDims(Tensor& dst, const Tensor& src, const DimIndices& index);

// Fused scaled scatter-add: dst[sel] += alpha * src.  Saves the aggregator
// a full weighted copy of every client tensor.
void ScatterAxpyDims(Tensor& dst, Scalar alpha, const Tensor& src,
                     const DimIndices& index);

// Adds the constant `value` at every selected position (the aggregation
// weight mass; generalizes ScatterCountDims).
void ScatterAddScalarDims(Tensor& dst, Scalar value, const DimIndices& index);

// Scatter-assign variant (overwrites instead of accumulating).
void ScatterAssignDims(Tensor& dst, const Tensor& src, const DimIndices& index);

// Adds 1 to `counts` at every position the index selects (for computing
// per-coordinate contribution counts during aggregation).
void ScatterCountDims(Tensor& counts, const DimIndices& index);

}  // namespace mhbench::ops
