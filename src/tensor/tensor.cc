#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

#include "core/rng.h"

namespace mhbench {

std::size_t ShapeNumel(const Shape& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    MHB_CHECK_GT(d, 0) << "in shape" << ShapeToString(shape);
    n *= static_cast<std::size_t>(d);
  }
  return shape.empty() ? 0 : n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream s;
  s << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) s << ", ";
    s << shape[i];
  }
  s << "]";
  return s.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(ShapeNumel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, Scalar fill)
    : shape_(std::move(shape)), data_(ShapeNumel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<Scalar> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  MHB_CHECK_EQ(data_.size(), ShapeNumel(shape_))
      << "for shape" << ShapeToString(shape_);
}

Tensor Tensor::FromVector(std::vector<Scalar> values) {
  const int n = static_cast<int>(values.size());
  MHB_CHECK_GT(n, 0);
  return Tensor({n}, std::move(values));
}

Tensor Tensor::Scalar1(Scalar v) { return Tensor({1}, std::vector<Scalar>{v}); }

Tensor Tensor::Randn(Shape shape, Rng& rng, Scalar stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<Scalar>(rng.Gaussian(0.0, stddev));
  }
  return t;
}

int Tensor::dim(int i) const {
  MHB_CHECK_GE(i, 0);
  MHB_CHECK_LT(i, ndim());
  return shape_[static_cast<std::size_t>(i)];
}

std::size_t Tensor::Offset(std::span<const int> idx) const {
  MHB_CHECK_EQ(static_cast<int>(idx.size()), ndim());
  std::size_t off = 0;
  for (std::size_t d = 0; d < idx.size(); ++d) {
    MHB_DCHECK(idx[d] >= 0 && idx[d] < shape_[d]);
    off = off * static_cast<std::size_t>(shape_[d]) +
          static_cast<std::size_t>(idx[d]);
  }
  return off;
}

Scalar& Tensor::at(std::initializer_list<int> idx) {
  return data_[Offset(std::span<const int>(idx.begin(), idx.size()))];
}

Scalar Tensor::at(std::initializer_list<int> idx) const {
  return data_[Offset(std::span<const int>(idx.begin(), idx.size()))];
}

Tensor Tensor::Reshape(Shape new_shape) const {
  MHB_CHECK_EQ(ShapeNumel(new_shape), numel())
      << ShapeToString(shape_) << "->" << ShapeToString(new_shape);
  return Tensor(std::move(new_shape), data_);
}

void Tensor::Fill(Scalar v) {
  for (auto& x : data_) x = v;
}

void Tensor::AddInPlace(const Tensor& other) {
  MHB_CHECK(shape_ == other.shape_)
      << ShapeToString(shape_) << "vs" << ShapeToString(other.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::SubInPlace(const Tensor& other) {
  MHB_CHECK(shape_ == other.shape_)
      << ShapeToString(shape_) << "vs" << ShapeToString(other.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Tensor::MulInPlace(const Tensor& other) {
  MHB_CHECK(shape_ == other.shape_)
      << ShapeToString(shape_) << "vs" << ShapeToString(other.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Tensor::AxpyInPlace(Scalar alpha, const Tensor& other) {
  MHB_CHECK(shape_ == other.shape_)
      << ShapeToString(shape_) << "vs" << ShapeToString(other.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Tensor::Scale(Scalar alpha) {
  for (auto& x : data_) x *= alpha;
}

Tensor Tensor::Add(const Tensor& other) const {
  Tensor out = *this;
  out.AddInPlace(other);
  return out;
}

Tensor Tensor::Sub(const Tensor& other) const {
  Tensor out = *this;
  out.SubInPlace(other);
  return out;
}

Tensor Tensor::Mul(const Tensor& other) const {
  Tensor out = *this;
  out.MulInPlace(other);
  return out;
}

double Tensor::Sum() const {
  double s = 0.0;
  for (Scalar v : data_) s += v;
  return s;
}

double Tensor::Mean() const {
  MHB_CHECK_GT(numel(), 0u);
  return Sum() / static_cast<double>(numel());
}

Scalar Tensor::MaxAbs() const {
  Scalar m = 0.0f;
  for (Scalar v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Tensor::SquaredL2() const {
  double s = 0.0;
  for (Scalar v : data_) s += static_cast<double>(v) * v;
  return s;
}

bool Tensor::AllClose(const Tensor& other, Scalar tol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace mhbench
