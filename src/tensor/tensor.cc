#include "tensor/tensor.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "core/rng.h"

namespace mhbench {
namespace {

// Per-thread free lists of data buffers, bucketed by power-of-two capacity.
// A tensor destroyed on any thread returns its buffer to that thread's pool;
// the next construction of a same-bucket tensor on the thread reuses it.
// Retention is capped so a burst of huge tensors cannot pin memory forever.
class BufferPool {
 public:
  ~BufferPool() {
    for (auto& [cap, list] : free_) {
      (void)cap;
      for (Scalar* p : list) delete[] p;
    }
  }

  Scalar* Acquire(std::size_t cap) {
    auto it = free_.find(cap);
    if (it != free_.end() && !it->second.empty()) {
      Scalar* p = it->second.back();
      it->second.pop_back();
      retained_ -= cap;
      ++stats_.pool_hits;
      return p;
    }
    ++stats_.heap_allocs;
    return new Scalar[cap];
  }

  void Release(Scalar* p, std::size_t cap) {
    if (retained_ + cap > kMaxRetainedFloats) {
      ++stats_.heap_frees;
      delete[] p;
      return;
    }
    free_[cap].push_back(p);
    retained_ += cap;
    ++stats_.pool_returns;
  }

  const Tensor::AllocStats& stats() const { return stats_; }

 private:
  // 32 Mi floats = 128 MiB per thread; far above any single model's working
  // set here, so steady-state training never spills past the pool.
  static constexpr std::size_t kMaxRetainedFloats = std::size_t{1} << 25;

  std::unordered_map<std::size_t, std::vector<Scalar*>> free_;
  std::size_t retained_ = 0;
  Tensor::AllocStats stats_;
};

// Thread-exit safety: the pool is reached through a raw thread_local
// pointer that is nulled when the pool is destroyed, so tensors outliving
// the pool (static-duration objects during shutdown) fall back to plain
// new/delete instead of touching a dead pool.
thread_local BufferPool* tl_pool = nullptr;

struct PoolOwner {
  BufferPool pool;
  PoolOwner() { tl_pool = &pool; }
  ~PoolOwner() { tl_pool = nullptr; }
};

BufferPool* ThreadPool() {
  static thread_local PoolOwner owner;
  return tl_pool;
}

std::size_t BucketCapacity(std::size_t n) {
  return std::bit_ceil(std::max<std::size_t>(n, 64));
}

}  // namespace

std::size_t ShapeNumel(const Shape& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    MHB_CHECK_GT(d, 0) << "in shape" << ShapeToString(shape);
    n *= static_cast<std::size_t>(d);
  }
  return shape.empty() ? 0 : n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream s;
  s << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) s << ", ";
    s << shape[i];
  }
  s << "]";
  return s.str();
}

void Tensor::AcquireBuffer(std::size_t n) {
  size_ = n;
  if (n == 0) {
    ptr_ = nullptr;
    cap_ = 0;
    return;
  }
  cap_ = BucketCapacity(n);
  if (BufferPool* pool = ThreadPool()) {
    ptr_ = pool->Acquire(cap_);
  } else {
    ptr_ = new Scalar[cap_];
  }
}

void Tensor::ReleaseBuffer() {
  if (ptr_ == nullptr) return;
  if (BufferPool* pool = tl_pool) {
    pool->Release(ptr_, cap_);
  } else {
    delete[] ptr_;
  }
  ptr_ = nullptr;
  size_ = 0;
  cap_ = 0;
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  AcquireBuffer(ShapeNumel(shape_));
  std::fill(ptr_, ptr_ + size_, 0.0f);
}

Tensor::Tensor(Shape shape, Scalar fill) : shape_(std::move(shape)) {
  AcquireBuffer(ShapeNumel(shape_));
  std::fill(ptr_, ptr_ + size_, fill);
}

Tensor::Tensor(Shape shape, std::vector<Scalar> values)
    : shape_(std::move(shape)) {
  MHB_CHECK_EQ(values.size(), ShapeNumel(shape_))
      << "for shape" << ShapeToString(shape_);
  AcquireBuffer(values.size());
  std::copy(values.begin(), values.end(), ptr_);
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  AcquireBuffer(other.size_);
  if (size_ > 0) std::memcpy(ptr_, other.ptr_, size_ * sizeof(Scalar));
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  if (cap_ < other.size_ || (other.size_ == 0 && size_ > 0)) {
    ReleaseBuffer();
    AcquireBuffer(other.size_);
  } else {
    size_ = other.size_;
  }
  if (size_ > 0) std::memcpy(ptr_, other.ptr_, size_ * sizeof(Scalar));
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)),
      ptr_(other.ptr_),
      size_(other.size_),
      cap_(other.cap_) {
  other.shape_.clear();
  other.ptr_ = nullptr;
  other.size_ = 0;
  other.cap_ = 0;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  ReleaseBuffer();
  shape_ = std::move(other.shape_);
  ptr_ = other.ptr_;
  size_ = other.size_;
  cap_ = other.cap_;
  other.shape_.clear();
  other.ptr_ = nullptr;
  other.size_ = 0;
  other.cap_ = 0;
  return *this;
}

Tensor::~Tensor() { ReleaseBuffer(); }

Tensor Tensor::FromVector(std::vector<Scalar> values) {
  const int n = static_cast<int>(values.size());
  MHB_CHECK_GT(n, 0);
  return Tensor({n}, std::move(values));
}

Tensor Tensor::Scalar1(Scalar v) { return Tensor({1}, std::vector<Scalar>{v}); }

Tensor Tensor::Uninitialized(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.AcquireBuffer(ShapeNumel(t.shape_));
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng& rng, Scalar stddev) {
  Tensor t = Uninitialized(std::move(shape));
  for (Scalar& v : t.data()) {
    v = static_cast<Scalar>(rng.Gaussian(0.0, stddev));
  }
  return t;
}

int Tensor::dim(int i) const {
  MHB_CHECK_GE(i, 0);
  MHB_CHECK_LT(i, ndim());
  return shape_[static_cast<std::size_t>(i)];
}

std::size_t Tensor::Offset(std::span<const int> idx) const {
  MHB_CHECK_EQ(static_cast<int>(idx.size()), ndim());
  std::size_t off = 0;
  for (std::size_t d = 0; d < idx.size(); ++d) {
    MHB_DCHECK(idx[d] >= 0 && idx[d] < shape_[d]);
    off = off * static_cast<std::size_t>(shape_[d]) +
          static_cast<std::size_t>(idx[d]);
  }
  return off;
}

Scalar& Tensor::at(std::initializer_list<int> idx) {
  return ptr_[Offset(std::span<const int>(idx.begin(), idx.size()))];
}

Scalar Tensor::at(std::initializer_list<int> idx) const {
  return ptr_[Offset(std::span<const int>(idx.begin(), idx.size()))];
}

Tensor Tensor::Reshape(Shape new_shape) const {
  MHB_CHECK_EQ(ShapeNumel(new_shape), numel())
      << ShapeToString(shape_) << "->" << ShapeToString(new_shape);
  Tensor t = Uninitialized(std::move(new_shape));
  if (size_ > 0) std::memcpy(t.ptr_, ptr_, size_ * sizeof(Scalar));
  return t;
}

void Tensor::ResizeUninitialized(std::span<const int> new_shape) {
  if (shape_.size() == new_shape.size() &&
      std::equal(new_shape.begin(), new_shape.end(), shape_.begin())) {
    return;
  }
  shape_.assign(new_shape.begin(), new_shape.end());
  const std::size_t n = ShapeNumel(shape_);
  if (n > cap_) {
    ReleaseBuffer();
    AcquireBuffer(n);
  } else {
    size_ = n;
  }
}

void Tensor::Fill(Scalar v) { std::fill(ptr_, ptr_ + size_, v); }

void Tensor::AddInPlace(const Tensor& other) {
  MHB_CHECK(shape_ == other.shape_)
      << ShapeToString(shape_) << "vs" << ShapeToString(other.shape_);
  for (std::size_t i = 0; i < size_; ++i) ptr_[i] += other.ptr_[i];
}

void Tensor::SubInPlace(const Tensor& other) {
  MHB_CHECK(shape_ == other.shape_)
      << ShapeToString(shape_) << "vs" << ShapeToString(other.shape_);
  for (std::size_t i = 0; i < size_; ++i) ptr_[i] -= other.ptr_[i];
}

void Tensor::MulInPlace(const Tensor& other) {
  MHB_CHECK(shape_ == other.shape_)
      << ShapeToString(shape_) << "vs" << ShapeToString(other.shape_);
  for (std::size_t i = 0; i < size_; ++i) ptr_[i] *= other.ptr_[i];
}

void Tensor::AxpyInPlace(Scalar alpha, const Tensor& other) {
  MHB_CHECK(shape_ == other.shape_)
      << ShapeToString(shape_) << "vs" << ShapeToString(other.shape_);
  for (std::size_t i = 0; i < size_; ++i) ptr_[i] += alpha * other.ptr_[i];
}

void Tensor::Scale(Scalar alpha) {
  for (std::size_t i = 0; i < size_; ++i) ptr_[i] *= alpha;
}

Tensor Tensor::Add(const Tensor& other) const {
  Tensor out = *this;
  out.AddInPlace(other);
  return out;
}

Tensor Tensor::Sub(const Tensor& other) const {
  Tensor out = *this;
  out.SubInPlace(other);
  return out;
}

Tensor Tensor::Mul(const Tensor& other) const {
  Tensor out = *this;
  out.MulInPlace(other);
  return out;
}

double Tensor::Sum() const {
  double s = 0.0;
  for (std::size_t i = 0; i < size_; ++i) s += ptr_[i];
  return s;
}

double Tensor::Mean() const {
  MHB_CHECK_GT(numel(), 0u);
  return Sum() / static_cast<double>(numel());
}

Scalar Tensor::MaxAbs() const {
  Scalar m = 0.0f;
  for (std::size_t i = 0; i < size_; ++i) m = std::max(m, std::abs(ptr_[i]));
  return m;
}

double Tensor::SquaredL2() const {
  double s = 0.0;
  for (std::size_t i = 0; i < size_; ++i) {
    s += static_cast<double>(ptr_[i]) * ptr_[i];
  }
  return s;
}

bool Tensor::AllClose(const Tensor& other, Scalar tol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < size_; ++i) {
    if (std::abs(ptr_[i] - other.ptr_[i]) > tol) return false;
  }
  return true;
}

Tensor::AllocStats Tensor::ThreadAllocStats() {
  if (BufferPool* pool = ThreadPool()) return pool->stats();
  return {};
}

}  // namespace mhbench
