#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "core/error.h"
#include "tensor/scratch.h"

namespace mhbench::kernels {
namespace {

std::atomic<std::uint64_t> g_flops{0};
thread_local std::uint64_t tl_flops = 0;

Backend InitialBackend() {
  const char* env = std::getenv("MHB_KERNELS");
  if (env != nullptr && std::strcmp(env, "naive") == 0) return Backend::kNaive;
  return Backend::kFast;
}

std::atomic<Backend> g_backend{InitialBackend()};

// op(A)(i, p) for a row-major buffer with leading dimension lda.
inline float At(const float* a, int lda, bool trans, int i, int p) {
  return trans ? a[static_cast<std::size_t>(p) * lda + i]
               : a[static_cast<std::size_t>(i) * lda + p];
}

// Packs the mc x kc block of op(A) at (ic, pc) into row panels of kMR:
// panel r holds, for each p in [0, kc), kMR consecutive elements of column
// p (zero-padded past mc) so the microkernel streams it linearly.
void PackA(bool trans, const float* a, int lda, int ic, int pc, int mc,
           int kc, float* ap) {
  for (int i0 = 0; i0 < mc; i0 += kMR) {
    const int mr = std::min(kMR, mc - i0);
    for (int p = 0; p < kc; ++p) {
      for (int r = 0; r < mr; ++r) {
        *ap++ = At(a, lda, trans, ic + i0 + r, pc + p);
      }
      for (int r = mr; r < kMR; ++r) *ap++ = 0.0f;
    }
  }
}

// Packs the kc x nc block of op(B) at (pc, jc) into column panels of kNR.
void PackB(bool trans, const float* b, int ldb, int pc, int jc, int kc,
           int nc, float* bp) {
  for (int j0 = 0; j0 < nc; j0 += kNR) {
    const int nr = std::min(kNR, nc - j0);
    if (!trans) {
      // op(B)(p, j) = b[p*ldb + j]: each panel row is a contiguous copy.
      for (int p = 0; p < kc; ++p) {
        const float* src =
            b + static_cast<std::size_t>(pc + p) * ldb + jc + j0;
        std::memcpy(bp, src, static_cast<std::size_t>(nr) * sizeof(float));
        for (int q = nr; q < kNR; ++q) bp[q] = 0.0f;
        bp += kNR;
      }
    } else {
      // op(B)(p, j) = b[j*ldb + p]: strided gather.
      for (int p = 0; p < kc; ++p) {
        for (int q = 0; q < nr; ++q) {
          bp[q] = b[static_cast<std::size_t>(jc + j0 + q) * ldb + pc + p];
        }
        for (int q = nr; q < kNR; ++q) bp[q] = 0.0f;
        bp += kNR;
      }
    }
  }
}

// kMR x kNR register tile over one packed A panel and one packed B panel.
//
// The accumulators must live in vector registers across the whole p loop —
// left as a plain float array, GCC keeps them in memory and the kernel runs
// at scalar speed.  With vector-extension types the 6 x 16 tile is exactly
// 6 zmm (or 12 ymm) registers.  `c += a * b` is written so the compiler may
// contract it into a fused multiply-add when the TU is built with -mfma:
// rounding then differs from the naive reference, but the contraction order
// is fixed, so results stay bit-identical across runs and thread counts for
// a given build (the determinism contract in gemm.h).
#if defined(__AVX512F__) && defined(__GNUC__)

using V16 = float __attribute__((vector_size(64)));

inline V16 LoadV16(const float* p) {
  V16 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Splat via an explicit all-lanes initializer: compiles to one
// vbroadcastss.  (`V16{} + x` would emit an extra dependent vaddss — GCC
// cannot fold 0.0f + x without fast-math because of signed zeros.)
inline V16 Splat16(float x) {
  return V16{x, x, x, x, x, x, x, x, x, x, x, x, x, x, x, x};
}

inline void MicroKernel(int kc, const float* ap, const float* bp,
                        float* acc) {
  static_assert(kMR == 6 && kNR == 16, "tile hard-wired to 6x16");
  V16 c0{}, c1{}, c2{}, c3{}, c4{}, c5{};
  for (int p = 0; p < kc; ++p) {
    const float* arow = ap + static_cast<std::size_t>(p) * kMR;
    const V16 b = LoadV16(bp + static_cast<std::size_t>(p) * kNR);
    c0 += Splat16(arow[0]) * b;
    c1 += Splat16(arow[1]) * b;
    c2 += Splat16(arow[2]) * b;
    c3 += Splat16(arow[3]) * b;
    c4 += Splat16(arow[4]) * b;
    c5 += Splat16(arow[5]) * b;
  }
  const V16 rows[kMR] = {c0, c1, c2, c3, c4, c5};
  for (int i = 0; i < kMR; ++i) {
    std::memcpy(acc + i * kNR, &rows[i], sizeof(V16));
  }
}

#elif defined(__AVX2__) && defined(__GNUC__)

using V8 = float __attribute__((vector_size(32)));

inline V8 LoadV8(const float* p) {
  V8 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// One vbroadcastss; see Splat16.
inline V8 Splat8(float x) { return V8{x, x, x, x, x, x, x, x}; }

inline void MicroKernel(int kc, const float* ap, const float* bp,
                        float* acc) {
  static_assert(kMR == 6 && kNR == 16, "tile hard-wired to 6x16");
  V8 c00{}, c01{}, c10{}, c11{}, c20{}, c21{};
  V8 c30{}, c31{}, c40{}, c41{}, c50{}, c51{};
  for (int p = 0; p < kc; ++p) {
    const float* arow = ap + static_cast<std::size_t>(p) * kMR;
    const float* brow = bp + static_cast<std::size_t>(p) * kNR;
    const V8 b0 = LoadV8(brow);
    const V8 b1 = LoadV8(brow + 8);
    V8 a;
    a = Splat8(arow[0]); c00 += a * b0; c01 += a * b1;
    a = Splat8(arow[1]); c10 += a * b0; c11 += a * b1;
    a = Splat8(arow[2]); c20 += a * b0; c21 += a * b1;
    a = Splat8(arow[3]); c30 += a * b0; c31 += a * b1;
    a = Splat8(arow[4]); c40 += a * b0; c41 += a * b1;
    a = Splat8(arow[5]); c50 += a * b0; c51 += a * b1;
  }
  const V8 rows[kMR][2] = {{c00, c01}, {c10, c11}, {c20, c21},
                           {c30, c31}, {c40, c41}, {c50, c51}};
  for (int i = 0; i < kMR; ++i) {
    std::memcpy(acc + i * kNR, &rows[i][0], sizeof(V8));
    std::memcpy(acc + i * kNR + 8, &rows[i][1], sizeof(V8));
  }
}

#else  // scalar fallback, same arithmetic order per element

inline void MicroKernel(int kc, const float* ap, const float* bp,
                        float* acc) {
  std::memset(acc, 0, sizeof(float) * kMR * kNR);
  for (int p = 0; p < kc; ++p) {
    const float* arow = ap + static_cast<std::size_t>(p) * kMR;
    const float* brow = bp + static_cast<std::size_t>(p) * kNR;
    for (int i = 0; i < kMR; ++i) {
      const float ai = arow[i];
      float* accrow = acc + i * kNR;
      for (int j = 0; j < kNR; ++j) accrow[j] += ai * brow[j];
    }
  }
}

#endif

void FastGemm(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
              int lda, const float* b, int ldb, float beta, float* c, int ldc,
              const float* bias) {
  ScratchScope scratch;
  float* const ap = scratch.Alloc(static_cast<std::size_t>(kMC) * kKC);
  float* const bp = scratch.Alloc(static_cast<std::size_t>(kKC) * kNC);
  alignas(64) float acc[kMR * kNR];

  for (int jc = 0; jc < n; jc += kNC) {
    const int nc = std::min(kNC, n - jc);
    for (int pc = 0; pc < k; pc += kKC) {
      const int kc = std::min(kKC, k - pc);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      PackB(trans_b, b, ldb, pc, jc, kc, nc, bp);
      for (int ic = 0; ic < m; ic += kMC) {
        const int mc = std::min(kMC, m - ic);
        PackA(trans_a, a, lda, ic, pc, mc, kc, ap);
        for (int jr = 0; jr < nc; jr += kNR) {
          const int nr = std::min(kNR, nc - jr);
          const float* bpanel =
              bp + static_cast<std::size_t>(jr / kNR) * kc * kNR;
          for (int ir = 0; ir < mc; ir += kMR) {
            const int mr = std::min(kMR, mc - ir);
            const float* apanel =
                ap + static_cast<std::size_t>(ir / kMR) * kc * kMR;
            MicroKernel(kc, apanel, bpanel, acc);

            // Tile writeback.  The first/beta/bias decisions are
            // tile-constant, so each branch body is a plain vectorizable
            // loop; the arithmetic order per element matches the fused
            // form: (acc [+ C]) first, bias last.
            float* cd = c + static_cast<std::size_t>(ic + ir) * ldc + jc + jr;
            for (int r = 0; r < mr; ++r) {
              float* crow = cd + static_cast<std::size_t>(r) * ldc;
              const float* accrow = acc + r * kNR;
              if (!first) {
                for (int q = 0; q < nr; ++q) crow[q] = accrow[q] + crow[q];
              } else if (beta != 0.0f) {
                for (int q = 0; q < nr; ++q) {
                  crow[q] = accrow[q] + beta * crow[q];
                }
              } else {
                for (int q = 0; q < nr; ++q) crow[q] = accrow[q];
              }
            }
            if (last && bias != nullptr) {
              const float* bias_j = bias + jc + jr;
              for (int r = 0; r < mr; ++r) {
                float* crow = cd + static_cast<std::size_t>(r) * ldc;
                for (int q = 0; q < nr; ++q) crow[q] += bias_j[q];
              }
            }
          }
        }
      }
    }
  }
}

void CountFlops(int m, int n, int k) {
  const std::uint64_t flops = 2ull * static_cast<std::uint64_t>(m) *
                              static_cast<std::uint64_t>(n) *
                              static_cast<std::uint64_t>(k);
  g_flops.fetch_add(flops, std::memory_order_relaxed);
  tl_flops += flops;
}

}  // namespace

void SetBackend(Backend b) { g_backend.store(b, std::memory_order_relaxed); }

Backend CurrentBackend() { return g_backend.load(std::memory_order_relaxed); }

void Gemm(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
          int lda, const float* b, int ldb, float beta, float* c, int ldc,
          const float* bias) {
  MHB_CHECK(m > 0 && n > 0 && k > 0)
      << "gemm dims" << m << n << k << "must be positive";
  CountFlops(m, n, k);
  if (CurrentBackend() == Backend::kNaive) {
    internal::NaiveGemmImpl(trans_a, trans_b, m, n, k, a, lda, b, ldb, beta,
                            c, ldc, bias);
  } else {
    FastGemm(trans_a, trans_b, m, n, k, a, lda, b, ldb, beta, c, ldc, bias);
  }
}

void NaiveGemm(bool trans_a, bool trans_b, int m, int n, int k,
               const float* a, int lda, const float* b, int ldb, float beta,
               float* c, int ldc, const float* bias) {
  MHB_CHECK(m > 0 && n > 0 && k > 0)
      << "gemm dims" << m << n << k << "must be positive";
  CountFlops(m, n, k);
  internal::NaiveGemmImpl(trans_a, trans_b, m, n, k, a, lda, b, ldb, beta, c,
                          ldc, bias);
}

void ColSumAcc(const float* rows, int nrows, int ncols, int ld, float* out) {
  for (int i = 0; i < nrows; ++i) {
    const float* row = rows + static_cast<std::size_t>(i) * ld;
    for (int j = 0; j < ncols; ++j) out[j] += row[j];
  }
}

std::uint64_t TotalGemmFlops() {
  return g_flops.load(std::memory_order_relaxed);
}

std::uint64_t ThreadGemmFlops() { return tl_flops; }

}  // namespace mhbench::kernels
