#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "core/error.h"
#include "core/logging.h"
#include "core/thread_pool.h"
#include "tensor/gemm_kernels.h"
#include "tensor/scratch.h"

namespace mhbench::kernels {
namespace {

std::atomic<std::uint64_t> g_flops{0};
std::atomic<std::uint64_t> g_flops_bf16{0};
std::atomic<std::uint64_t> g_flops_int8{0};
thread_local std::uint64_t tl_flops = 0;

thread_local EvalPrecision tl_eval_precision = EvalPrecision::kF32;

std::atomic<core::ThreadPool*> g_gemm_pool{nullptr};

// Threaded macro-tile path engages only at or above this many flops
// (2*m*n*k ≈ a 128^3 matmul): below it, ParallelFor dispatch overhead beats
// the parallel win.  Engagement never changes results (gemm.h), only wall
// time, so the threshold needs no cross-machine tuning.
constexpr std::uint64_t kThreadedMinFlops = 4ull << 20;

// __builtin_cpu_supports requires a literal argument, hence one wrapper
// per feature rather than a CpuHas(const char*) helper.
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
bool CpuHasAvx2() { return __builtin_cpu_supports("avx2"); }
bool CpuHasFma() { return __builtin_cpu_supports("fma"); }
bool CpuHasAvx512f() { return __builtin_cpu_supports("avx512f"); }
#else
bool CpuHasAvx2() { return false; }
bool CpuHasFma() { return false; }
bool CpuHasAvx512f() { return false; }
#endif

bool TileAvailable(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      // The TU is compiled -mavx2 -mfma as a unit (src/CMakeLists.txt), so
      // runtime eligibility requires both features.
      return detail::Avx2TileCompiled() && CpuHasAvx2() && CpuHasFma();
    case Isa::kAvx512:
      return detail::Avx512TileCompiled() && CpuHasAvx512f();
  }
  return false;
}

Isa BestIsa() {
  if (TileAvailable(Isa::kAvx512)) return Isa::kAvx512;
  if (TileAvailable(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

detail::MicroKernelFn TileFor(Isa isa) {
  switch (isa) {
    case Isa::kAvx512:
      return detail::MicroKernelAvx512;
    case Isa::kAvx2:
      return detail::MicroKernelAvx2;
    case Isa::kScalar:
      break;
  }
  return detail::MicroKernelScalar;
}

bool ParseIsaName(const char* text, Isa* out) {
  if (std::strcmp(text, "scalar") == 0) {
    *out = Isa::kScalar;
  } else if (std::strcmp(text, "avx2") == 0) {
    *out = Isa::kAvx2;
  } else if (std::strcmp(text, "avx512") == 0) {
    *out = Isa::kAvx512;
  } else {
    return false;
  }
  return true;
}

struct KernelChoice {
  Backend backend;
  Isa isa;
};

// Resolves MHB_KERNELS once at startup (cold path — a process makes this
// decision exactly once, before any kernel runs).
KernelChoice InitialChoice() {
  KernelChoice choice{Backend::kFast, BestIsa()};
  const char* env = std::getenv("MHB_KERNELS");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "fast") == 0) {
    return choice;
  }
  if (std::strcmp(env, "naive") == 0) {
    choice.backend = Backend::kNaive;
    return choice;
  }
  Isa want;
  if (!ParseIsaName(env, &want)) {
    MHB_LOG_WARN << "MHB_KERNELS=" << env
                 << " not recognized (naive|scalar|avx2|avx512|fast); "
                    "using fast/"
                 << IsaName(choice.isa);
    return choice;
  }
  if (!TileAvailable(want)) {
    MHB_LOG_WARN << "MHB_KERNELS=" << env
                 << " unavailable on this host/build; using "
                 << IsaName(choice.isa);
    return choice;
  }
  choice.isa = want;
  return choice;
}

// Function-local statics, not namespace-scope globals: InitialChoice()
// logs when MHB_KERNELS is invalid, and a namespace-scope initializer
// could run before the logger's own cross-TU static state (the warning
// would be silently dropped).  First touch is the first kernel/query
// call, which is always after main() has started.
const KernelChoice& ResolvedChoice() {
  static const KernelChoice choice = InitialChoice();
  return choice;
}

std::atomic<Backend>& BackendAtomic() {
  static std::atomic<Backend> backend{ResolvedChoice().backend};
  return backend;
}

std::atomic<Isa>& IsaAtomic() {
  static std::atomic<Isa> isa{ResolvedChoice().isa};
  return isa;
}

// op(A)(i, p) for a row-major buffer with leading dimension lda.
inline float At(const float* a, int lda, bool trans, int i, int p) {
  return trans ? a[static_cast<std::size_t>(p) * lda + i]
               : a[static_cast<std::size_t>(i) * lda + p];
}

// Packs the mc x kc block of op(A) at (ic, pc) into row panels of kMR:
// panel r holds, for each p in [0, kc), kMR consecutive elements of column
// p (zero-padded past mc) so the microkernel streams it linearly.  Because
// kMC is a multiple of kMR, packing the whole m range at once (threaded
// path) produces byte-identical panels to packing each MC block separately
// (serial path).
void PackA(bool trans, const float* a, int lda, int ic, int pc, int mc,
           int kc, float* ap) {
  for (int i0 = 0; i0 < mc; i0 += kMR) {
    const int mr = std::min(kMR, mc - i0);
    for (int p = 0; p < kc; ++p) {
      for (int r = 0; r < mr; ++r) {
        *ap++ = At(a, lda, trans, ic + i0 + r, pc + p);
      }
      for (int r = mr; r < kMR; ++r) *ap++ = 0.0f;
    }
  }
}

// Packs the kc x nc block of op(B) at (pc, jc) into column panels of kNR.
void PackB(bool trans, const float* b, int ldb, int pc, int jc, int kc,
           int nc, float* bp) {
  for (int j0 = 0; j0 < nc; j0 += kNR) {
    const int nr = std::min(kNR, nc - j0);
    if (!trans) {
      // op(B)(p, j) = b[p*ldb + j]: each panel row is a contiguous copy.
      for (int p = 0; p < kc; ++p) {
        const float* src =
            b + static_cast<std::size_t>(pc + p) * ldb + jc + j0;
        std::memcpy(bp, src, static_cast<std::size_t>(nr) * sizeof(float));
        for (int q = nr; q < kNR; ++q) bp[q] = 0.0f;
        bp += kNR;
      }
    } else {
      // op(B)(p, j) = b[j*ldb + p]: strided gather.
      for (int p = 0; p < kc; ++p) {
        for (int q = 0; q < nr; ++q) {
          bp[q] = b[static_cast<std::size_t>(jc + j0 + q) * ldb + pc + p];
        }
        for (int q = nr; q < kNR; ++q) bp[q] = 0.0f;
        bp += kNR;
      }
    }
  }
}

// One register tile's writeback.  The first/beta/bias decisions are
// tile-constant, so each branch body is a plain vectorizable loop; the
// arithmetic order per element matches the fused form: (acc [+ C]) first,
// bias last.
inline void StoreTile(const float* acc, float* cd, int ldc, int mr, int nr,
                      bool first, bool last, float beta,
                      const float* bias_j) {
  for (int r = 0; r < mr; ++r) {
    float* crow = cd + static_cast<std::size_t>(r) * ldc;
    const float* accrow = acc + r * kNR;
    if (!first) {
      for (int q = 0; q < nr; ++q) crow[q] = accrow[q] + crow[q];
    } else if (beta != 0.0f) {
      for (int q = 0; q < nr; ++q) crow[q] = accrow[q] + beta * crow[q];
    } else {
      for (int q = 0; q < nr; ++q) crow[q] = accrow[q];
    }
  }
  if (last && bias_j != nullptr) {
    for (int r = 0; r < mr; ++r) {
      float* crow = cd + static_cast<std::size_t>(r) * ldc;
      for (int q = 0; q < nr; ++q) crow[q] += bias_j[q];
    }
  }
}

// Computes the output tiles of one packed row-block against the column
// stripe [jr0, jr1) of the current macro-slab.  `ap` points at the kMR row
// panels for rows [ic, ic+mc); `bp` at the kNR column panels for columns
// [jc, jc+nc).  Shared verbatim by the serial path (jr0 = 0, jr1 = nc) and
// each threaded task, so both produce byte-identical tiles.
void ComputeTiles(detail::MicroKernelFn tile, const float* ap,
                  const float* bp, int kc, int ic, int mc, int jc, int jr0,
                  int jr1, bool first, bool last, float beta,
                  const float* bias, float* c, int ldc) {
  alignas(64) float acc[kMR * kNR];
  for (int jr = jr0; jr < jr1; jr += kNR) {
    const int nr = std::min(kNR, jr1 - jr);
    const float* bpanel = bp + static_cast<std::size_t>(jr / kNR) * kc * kNR;
    for (int ir = 0; ir < mc; ir += kMR) {
      const int mr = std::min(kMR, mc - ir);
      const float* apanel =
          ap + static_cast<std::size_t>(ir / kMR) * kc * kMR;
      tile(kc, apanel, bpanel, acc);
      float* cd = c + static_cast<std::size_t>(ic + ir) * ldc + jc + jr;
      StoreTile(acc, cd, ldc, mr, nr, first, last, beta,
                bias != nullptr ? bias + jc + jr : nullptr);
    }
  }
}

void FastGemmSerial(bool trans_a, bool trans_b, int m, int n, int k,
                    const float* a, int lda, const float* b, int ldb,
                    float beta, float* c, int ldc, const float* bias) {
  const detail::MicroKernelFn tile = TileFor(CurrentIsa());
  ScratchScope scratch;
  float* const ap = scratch.Alloc(static_cast<std::size_t>(kMC) * kKC);
  float* const bp = scratch.Alloc(static_cast<std::size_t>(kKC) * kNC);

  for (int jc = 0; jc < n; jc += kNC) {
    const int nc = std::min(kNC, n - jc);
    for (int pc = 0; pc < k; pc += kKC) {
      const int kc = std::min(kKC, k - pc);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      PackB(trans_b, b, ldb, pc, jc, kc, nc, bp);
      for (int ic = 0; ic < m; ic += kMC) {
        const int mc = std::min(kMC, m - ic);
        PackA(trans_a, a, lda, ic, pc, mc, kc, ap);
        ComputeTiles(tile, ap, bp, kc, ic, mc, jc, 0, nc, first, last, beta,
                     bias, c, ldc);
      }
    }
  }
}

// Fixed tile→task ownership map: within each (jc, pc) macro-slab the
// calling thread packs A (all row panels) and B (the whole column slab)
// once, then the ceil(m/kMC) x ceil(nc/kJRB) grid of output tiles is
// distributed over the pool.  Each tile is computed whole by exactly one
// task from the same packed panels with the same k-ascending contraction
// the serial path uses, and no two tasks write the same output element —
// so which worker runs which task (ParallelFor hands out indices
// dynamically) cannot affect any value, only wall time.
void FastGemmThreaded(core::ThreadPool* pool, bool trans_a, bool trans_b,
                      int m, int n, int k, const float* a, int lda,
                      const float* b, int ldb, float beta, float* c, int ldc,
                      const float* bias) {
  const detail::MicroKernelFn tile = TileFor(CurrentIsa());
  ScratchScope scratch;
  const std::size_t num_panels =
      static_cast<std::size_t>((m + kMR - 1) / kMR);
  float* const ap = scratch.Alloc(num_panels * kMR * kKC);
  float* const bp = scratch.Alloc(static_cast<std::size_t>(kKC) * kNC);

  for (int jc = 0; jc < n; jc += kNC) {
    const int nc = std::min(kNC, n - jc);
    for (int pc = 0; pc < k; pc += kKC) {
      const int kc = std::min(kKC, k - pc);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      PackB(trans_b, b, ldb, pc, jc, kc, nc, bp);
      PackA(trans_a, a, lda, 0, pc, m, kc, ap);
      const int n_ic = (m + kMC - 1) / kMC;
      const int n_stripes = (nc + kJRB - 1) / kJRB;
      core::ParallelFor(
          pool, static_cast<std::size_t>(n_ic) * n_stripes,
          [&](std::size_t t) {
            const int ic = static_cast<int>(t / n_stripes) * kMC;
            const int mc = std::min(kMC, m - ic);
            const int jr0 = static_cast<int>(t % n_stripes) * kJRB;
            const int jr1 = std::min(jr0 + kJRB, nc);
            ComputeTiles(tile,
                         ap + static_cast<std::size_t>(ic / kMR) * kc * kMR,
                         bp, kc, ic, mc, jc, jr0, jr1, first, last, beta,
                         bias, c, ldc);
          });
    }
  }
}

void FastGemm(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
              int lda, const float* b, int ldb, float beta, float* c, int ldc,
              const float* bias) {
  core::ThreadPool* const pool = g_gemm_pool.load(std::memory_order_relaxed);
  const std::uint64_t flops = 2ull * static_cast<std::uint64_t>(m) *
                              static_cast<std::uint64_t>(n) *
                              static_cast<std::uint64_t>(k);
  // More than one tile task must exist for threading to buy anything.
  const bool multi_tile = m > kMC || std::min(n, kNC) > kJRB;
  if (pool != nullptr && pool->num_workers() > 0 &&
      !core::ThreadPool::InWorker() && flops >= kThreadedMinFlops &&
      multi_tile) {
    FastGemmThreaded(pool, trans_a, trans_b, m, n, k, a, lda, b, ldb, beta,
                     c, ldc, bias);
  } else {
    FastGemmSerial(trans_a, trans_b, m, n, k, a, lda, b, ldb, beta, c, ldc,
                   bias);
  }
}

}  // namespace

void SetBackend(Backend b) { BackendAtomic().store(b, std::memory_order_relaxed); }

Backend CurrentBackend() { return BackendAtomic().load(std::memory_order_relaxed); }

bool IsaAvailable(Isa isa) { return TileAvailable(isa); }

bool SetIsa(Isa isa) {
  if (!TileAvailable(isa)) return false;
  IsaAtomic().store(isa, std::memory_order_relaxed);
  return true;
}

Isa CurrentIsa() { return IsaAtomic().load(std::memory_order_relaxed); }

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kAvx512:
      return "avx512";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kScalar:
      break;
  }
  return "scalar";
}

const char* KernelBackendName() {
  return CurrentBackend() == Backend::kNaive ? "naive" : IsaName(CurrentIsa());
}

core::ThreadPool* SetGemmThreadPool(core::ThreadPool* pool) {
  return g_gemm_pool.exchange(pool, std::memory_order_relaxed);
}

core::ThreadPool* GemmThreadPool() {
  return g_gemm_pool.load(std::memory_order_relaxed);
}

const char* EvalPrecisionName(EvalPrecision p) {
  switch (p) {
    case EvalPrecision::kBf16:
      return "bf16";
    case EvalPrecision::kInt8:
      return "int8";
    case EvalPrecision::kF32:
      break;
  }
  return "f32";
}

bool ParseEvalPrecision(const char* text, EvalPrecision* out) {
  if (std::strcmp(text, "f32") == 0 || std::strcmp(text, "fp32") == 0) {
    *out = EvalPrecision::kF32;
  } else if (std::strcmp(text, "bf16") == 0) {
    *out = EvalPrecision::kBf16;
  } else if (std::strcmp(text, "int8") == 0) {
    *out = EvalPrecision::kInt8;
  } else {
    return false;
  }
  return true;
}

EvalPrecision ActiveEvalPrecision() { return tl_eval_precision; }

EvalPrecisionGuard::EvalPrecisionGuard(EvalPrecision p)
    : prev_(tl_eval_precision) {
  tl_eval_precision = p;
}

EvalPrecisionGuard::~EvalPrecisionGuard() { tl_eval_precision = prev_; }

void Gemm(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
          int lda, const float* b, int ldb, float beta, float* c, int ldc,
          const float* bias) {
  MHB_CHECK(m >= 0 && n >= 0 && k >= 0)
      << "gemm dims" << m << n << k << "must be non-negative";
  if (m == 0 || n == 0) return;
  switch (tl_eval_precision) {
    case EvalPrecision::kBf16:
      GemmBf16(trans_a, trans_b, m, n, k, a, lda, b, ldb, beta, c, ldc, bias);
      return;
    case EvalPrecision::kInt8:
      GemmInt8(trans_a, trans_b, m, n, k, a, lda, b, ldb, beta, c, ldc, bias);
      return;
    case EvalPrecision::kF32:
      break;
  }
  if (k == 0) {
    internal::ScaleBiasEpilogue(m, n, beta, c, ldc, bias);
    return;
  }
  internal::CountGemmFlops(m, n, k, EvalPrecision::kF32);
  internal::GemmRaw(trans_a, trans_b, m, n, k, a, lda, b, ldb, beta, c, ldc,
                    bias);
}

void NaiveGemm(bool trans_a, bool trans_b, int m, int n, int k,
               const float* a, int lda, const float* b, int ldb, float beta,
               float* c, int ldc, const float* bias) {
  MHB_CHECK(m >= 0 && n >= 0 && k >= 0)
      << "gemm dims" << m << n << k << "must be non-negative";
  if (m == 0 || n == 0) return;
  if (k == 0) {
    internal::ScaleBiasEpilogue(m, n, beta, c, ldc, bias);
    return;
  }
  internal::CountGemmFlops(m, n, k, EvalPrecision::kF32);
  internal::NaiveGemmImpl(trans_a, trans_b, m, n, k, a, lda, b, ldb, beta, c,
                          ldc, bias);
}

void ColSumAcc(const float* rows, int nrows, int ncols, int ld, float* out) {
  for (int i = 0; i < nrows; ++i) {
    const float* row = rows + static_cast<std::size_t>(i) * ld;
    for (int j = 0; j < ncols; ++j) out[j] += row[j];
  }
}

std::uint64_t TotalGemmFlops() {
  return g_flops.load(std::memory_order_relaxed);
}

std::uint64_t TotalGemmFlopsBf16() {
  return g_flops_bf16.load(std::memory_order_relaxed);
}

std::uint64_t TotalGemmFlopsInt8() {
  return g_flops_int8.load(std::memory_order_relaxed);
}

std::uint64_t ThreadGemmFlops() { return tl_flops; }

namespace internal {

void GemmRaw(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
             int lda, const float* b, int ldb, float beta, float* c, int ldc,
             const float* bias) {
  if (CurrentBackend() == Backend::kNaive) {
    NaiveGemmImpl(trans_a, trans_b, m, n, k, a, lda, b, ldb, beta, c, ldc,
                  bias);
  } else {
    FastGemm(trans_a, trans_b, m, n, k, a, lda, b, ldb, beta, c, ldc, bias);
  }
}

void ScaleBiasEpilogue(int m, int n, float beta, float* c, int ldc,
                       const float* bias) {
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    if (beta == 0.0f) {
      for (int j = 0; j < n; ++j) crow[j] = 0.0f;
    } else {
      for (int j = 0; j < n; ++j) crow[j] = beta * crow[j];
    }
    if (bias != nullptr) {
      for (int j = 0; j < n; ++j) crow[j] += bias[j];
    }
  }
}

void CountGemmFlops(int m, int n, int k, EvalPrecision p) {
  const std::uint64_t flops = 2ull * static_cast<std::uint64_t>(m) *
                              static_cast<std::uint64_t>(n) *
                              static_cast<std::uint64_t>(k);
  switch (p) {
    case EvalPrecision::kBf16:
      g_flops_bf16.fetch_add(flops, std::memory_order_relaxed);
      break;
    case EvalPrecision::kInt8:
      g_flops_int8.fetch_add(flops, std::memory_order_relaxed);
      break;
    case EvalPrecision::kF32:
      g_flops.fetch_add(flops, std::memory_order_relaxed);
      break;
  }
  tl_flops += flops;
}

}  // namespace internal

}  // namespace mhbench::kernels
