#include "data/synthetic_vision.h"

#include <cmath>

#include "core/error.h"

namespace mhbench::data {
namespace {

Dataset Generate(const SyntheticVisionConfig& cfg,
                 const std::vector<Tensor>& templates, int n, Rng& rng) {
  Dataset ds;
  ds.num_classes = cfg.num_classes;
  ds.features = Tensor({n, cfg.channels, cfg.image_size, cfg.image_size});
  ds.labels.resize(static_cast<std::size_t>(n));
  const std::size_t elems = static_cast<std::size_t>(cfg.channels) *
                            cfg.image_size * cfg.image_size;
  for (int i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.UniformInt(
        static_cast<std::uint64_t>(cfg.num_classes)));
    const int mode = static_cast<int>(rng.UniformInt(
        static_cast<std::uint64_t>(cfg.modes_per_class)));
    ds.labels[static_cast<std::size_t>(i)] = cls;
    const Tensor& tpl = templates[static_cast<std::size_t>(
        cls * cfg.modes_per_class + mode)];
    const auto scale = static_cast<Scalar>(rng.Uniform(0.8, 1.2));
    Scalar* dst = ds.features.data().data() + static_cast<std::size_t>(i) * elems;
    const Scalar* src = tpl.data().data();
    for (std::size_t e = 0; e < elems; ++e) {
      const double v =
          scale * src[e] + cfg.noise * rng.Gaussian();
      dst[e] = static_cast<Scalar>(std::tanh(v));
    }
  }
  return ds;
}

}  // namespace

TrainTest MakeSyntheticVision(const SyntheticVisionConfig& cfg) {
  MHB_CHECK_GT(cfg.num_classes, 0);
  MHB_CHECK_GT(cfg.modes_per_class, 0);
  MHB_CHECK_GT(cfg.train_samples, 0);
  MHB_CHECK_GT(cfg.test_samples, 0);
  Rng rng(cfg.seed ^ 0x5EED0001ULL);
  // Fixed class templates shared by train and test.
  std::vector<Tensor> templates;
  templates.reserve(
      static_cast<std::size_t>(cfg.num_classes) * cfg.modes_per_class);
  for (int c = 0; c < cfg.num_classes * cfg.modes_per_class; ++c) {
    templates.push_back(Tensor::Randn(
        {cfg.channels, cfg.image_size, cfg.image_size}, rng, 1.0f));
  }
  TrainTest out;
  Rng train_rng = rng.Fork(1);
  Rng test_rng = rng.Fork(2);
  out.train = Generate(cfg, templates, cfg.train_samples, train_rng);
  out.test = Generate(cfg, templates, cfg.test_samples, test_rng);
  out.train.Validate();
  out.test.Validate();
  return out;
}

}  // namespace mhbench::data
