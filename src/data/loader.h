// Mini-batch iteration over a dataset.
#pragma once

#include <vector>

#include "core/rng.h"
#include "data/dataset.h"

namespace mhbench::data {

// Iterates one epoch of shuffled mini-batches.  The final partial batch is
// yielded (never dropped).
class BatchIterator {
 public:
  BatchIterator(const Dataset& dataset, int batch_size, Rng& rng,
                bool shuffle = true);

  // Fills the next batch; returns false at epoch end.
  bool Next(Tensor& features, std::vector<int>& labels);

  int num_batches() const;

 private:
  const Dataset& dataset_;
  int batch_size_;
  std::vector<int> order_;
  std::size_t cursor_ = 0;
};

}  // namespace mhbench::data
