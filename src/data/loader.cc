#include "data/loader.h"

#include <numeric>

#include "core/error.h"

namespace mhbench::data {

BatchIterator::BatchIterator(const Dataset& dataset, int batch_size, Rng& rng,
                             bool shuffle)
    : dataset_(dataset), batch_size_(batch_size) {
  MHB_CHECK_GT(batch_size, 0);
  MHB_CHECK(!dataset.empty());
  if (shuffle) {
    order_ = rng.Permutation(static_cast<int>(dataset.size()));
  } else {
    order_.resize(dataset.size());
    std::iota(order_.begin(), order_.end(), 0);
  }
}

bool BatchIterator::Next(Tensor& features, std::vector<int>& labels) {
  if (cursor_ >= order_.size()) return false;
  const std::size_t end =
      std::min(order_.size(), cursor_ + static_cast<std::size_t>(batch_size_));
  const std::span<const int> idx(order_.data() + cursor_, end - cursor_);
  features = dataset_.GatherFeatures(idx);
  labels = dataset_.GatherLabels(idx);
  cursor_ = end;
  return true;
}

int BatchIterator::num_batches() const {
  return static_cast<int>((order_.size() + batch_size_ - 1) /
                          static_cast<std::size_t>(batch_size_));
}

}  // namespace mhbench::data
