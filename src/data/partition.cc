#include "data/partition.h"

#include <algorithm>

#include "core/error.h"

namespace mhbench::data {

Partition IidPartition(int n, int num_clients, Rng& rng) {
  MHB_CHECK_GT(n, 0);
  MHB_CHECK_GT(num_clients, 0);
  MHB_CHECK_GE(n, num_clients) << "fewer samples than clients";
  const std::vector<int> perm = rng.Permutation(n);
  Partition out(static_cast<std::size_t>(num_clients));
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i % num_clients)].push_back(
        perm[static_cast<std::size_t>(i)]);
  }
  return out;
}

Partition DirichletPartition(const std::vector<int>& labels, int num_classes,
                             int num_clients, double alpha, Rng& rng) {
  MHB_CHECK(!labels.empty());
  MHB_CHECK_GT(num_classes, 0);
  MHB_CHECK_GT(num_clients, 0);
  MHB_CHECK_GT(alpha, 0.0);

  // Bucket sample indices per class, shuffled.
  std::vector<std::vector<int>> by_class(
      static_cast<std::size_t>(num_classes));
  {
    const std::vector<int> perm =
        rng.Permutation(static_cast<int>(labels.size()));
    for (int i : perm) {
      const int y = labels[static_cast<std::size_t>(i)];
      MHB_CHECK(y >= 0 && y < num_classes);
      by_class[static_cast<std::size_t>(y)].push_back(i);
    }
  }

  Partition out(static_cast<std::size_t>(num_clients));
  for (auto& bucket : by_class) {
    if (bucket.empty()) continue;
    const std::vector<double> props = rng.Dirichlet(alpha, num_clients);
    // Convert proportions to cumulative cut points over the bucket.
    std::size_t start = 0;
    double cum = 0.0;
    for (int c = 0; c < num_clients; ++c) {
      cum += props[static_cast<std::size_t>(c)];
      const std::size_t end =
          (c + 1 == num_clients)
              ? bucket.size()
              : std::min(bucket.size(),
                         static_cast<std::size_t>(cum * bucket.size()));
      for (std::size_t i = start; i < end; ++i) {
        out[static_cast<std::size_t>(c)].push_back(bucket[i]);
      }
      start = std::max(start, end);
    }
  }

  // Guarantee non-empty shards: steal one sample from the largest shard.
  for (auto& shard : out) {
    if (!shard.empty()) continue;
    auto largest = std::max_element(
        out.begin(), out.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    MHB_CHECK(largest->size() > 1u)
        << "cannot balance partition: too few samples for"
        << static_cast<int>(out.size()) << "clients";
    shard.push_back(largest->back());
    largest->pop_back();
  }
  return out;
}

Partition NaturalPartition(const Dataset& dataset, int num_users) {
  MHB_CHECK(!dataset.user_ids.empty())
      << "dataset has no user ids for a natural partition";
  MHB_CHECK_GT(num_users, 0);
  Partition out(static_cast<std::size_t>(num_users));
  for (std::size_t i = 0; i < dataset.user_ids.size(); ++i) {
    const int u = dataset.user_ids[i];
    MHB_CHECK(u >= 0 && u < num_users) << "user id" << u << "out of range";
    out[static_cast<std::size_t>(u)].push_back(static_cast<int>(i));
  }
  // Remove users that received no samples.
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const auto& v) { return v.empty(); }),
            out.end());
  return out;
}

void ValidatePartition(const Partition& partition, int n) {
  std::vector<int> seen(static_cast<std::size_t>(n), 0);
  for (const auto& shard : partition) {
    for (int i : shard) {
      MHB_CHECK(i >= 0 && i < n) << "index out of range in partition";
      ++seen[static_cast<std::size_t>(i)];
    }
  }
  for (int i = 0; i < n; ++i) {
    MHB_CHECK_EQ(seen[static_cast<std::size_t>(i)], 1)
        << "sample" << i << "appears wrong number of times";
  }
}

}  // namespace mhbench::data
