#include "data/dataset.h"

#include "core/error.h"

namespace mhbench::data {

Shape Dataset::sample_shape() const {
  MHB_CHECK_GE(features.ndim(), 2);
  Shape s = features.shape();
  s.erase(s.begin());
  return s;
}

Dataset Dataset::Subset(std::span<const int> indices) const {
  Dataset out;
  out.num_classes = num_classes;
  out.features = GatherFeatures(indices);
  out.labels = GatherLabels(indices);
  if (!user_ids.empty()) {
    out.user_ids.reserve(indices.size());
    for (int i : indices) {
      out.user_ids.push_back(user_ids.at(static_cast<std::size_t>(i)));
    }
  }
  return out;
}

Tensor Dataset::GatherFeatures(std::span<const int> indices) const {
  MHB_CHECK(!indices.empty());
  const std::size_t sample_elems = features.numel() / size();
  Shape out_shape = features.shape();
  out_shape[0] = static_cast<int>(indices.size());
  Tensor out(out_shape);
  const Scalar* src = features.data().data();
  Scalar* dst = out.data().data();
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const auto i = static_cast<std::size_t>(indices[k]);
    MHB_CHECK_LT(i, size()) << "sample index out of range";
    for (std::size_t e = 0; e < sample_elems; ++e) {
      dst[k * sample_elems + e] = src[i * sample_elems + e];
    }
  }
  return out;
}

std::vector<int> Dataset::GatherLabels(std::span<const int> indices) const {
  std::vector<int> out;
  out.reserve(indices.size());
  for (int i : indices) {
    out.push_back(labels.at(static_cast<std::size_t>(i)));
  }
  return out;
}

void Dataset::Validate() const {
  MHB_CHECK_GT(num_classes, 0);
  MHB_CHECK(!labels.empty());
  MHB_CHECK_EQ(static_cast<std::size_t>(features.dim(0)), labels.size());
  if (!user_ids.empty()) {
    MHB_CHECK_EQ(user_ids.size(), labels.size());
  }
  for (int y : labels) {
    MHB_CHECK(y >= 0 && y < num_classes) << "label" << y << "out of range";
  }
}

}  // namespace mhbench::data
