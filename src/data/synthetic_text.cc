#include "data/synthetic_text.h"

#include "core/error.h"

namespace mhbench::data {
namespace {

struct ClassVocab {
  std::vector<std::vector<int>> tokens;  // per class
};

Dataset Generate(const SyntheticTextConfig& cfg, const ClassVocab& cv, int n,
                 Rng& rng) {
  Dataset ds;
  ds.num_classes = cfg.num_classes;
  ds.features = Tensor({n, cfg.seq_len});
  ds.labels.resize(static_cast<std::size_t>(n));
  if (cfg.num_users > 0) ds.user_ids.resize(static_cast<std::size_t>(n));

  // Per-user dominant class for the natural partition.
  std::vector<int> user_main;
  if (cfg.num_users > 0) {
    Rng urng(cfg.seed ^ 0x5E7DULL);
    user_main.resize(static_cast<std::size_t>(cfg.num_users));
    for (auto& c : user_main) {
      c = static_cast<int>(urng.UniformInt(
          static_cast<std::uint64_t>(cfg.num_classes)));
    }
  }

  for (int i = 0; i < n; ++i) {
    int cls;
    if (cfg.num_users > 0) {
      const int user = static_cast<int>(
          rng.UniformInt(static_cast<std::uint64_t>(cfg.num_users)));
      ds.user_ids[static_cast<std::size_t>(i)] = user;
      if (rng.Uniform() < cfg.user_skew) {
        cls = user_main[static_cast<std::size_t>(user)];
      } else {
        cls = static_cast<int>(
            rng.UniformInt(static_cast<std::uint64_t>(cfg.num_classes)));
      }
    } else {
      cls = static_cast<int>(
          rng.UniformInt(static_cast<std::uint64_t>(cfg.num_classes)));
    }
    ds.labels[static_cast<std::size_t>(i)] = cls;
    const auto& toks = cv.tokens[static_cast<std::size_t>(cls)];
    Scalar* row =
        ds.features.data().data() + static_cast<std::size_t>(i) * cfg.seq_len;
    for (int t = 0; t < cfg.seq_len; ++t) {
      int id;
      if (rng.Uniform() < cfg.class_token_p) {
        id = toks[rng.UniformInt(toks.size())];
      } else {
        id = static_cast<int>(
            rng.UniformInt(static_cast<std::uint64_t>(cfg.vocab_size)));
      }
      row[t] = static_cast<Scalar>(id);
    }
  }
  return ds;
}

}  // namespace

TextTrainTest MakeSyntheticText(const SyntheticTextConfig& cfg) {
  MHB_CHECK_GT(cfg.num_classes, 0);
  MHB_CHECK_GT(cfg.vocab_size, 0);
  MHB_CHECK_GE(cfg.class_tokens, 1);
  MHB_CHECK_LE(cfg.class_tokens, cfg.vocab_size);
  Rng rng(cfg.seed ^ 0x5EED0002ULL);
  ClassVocab cv;
  cv.tokens.resize(static_cast<std::size_t>(cfg.num_classes));
  for (auto& toks : cv.tokens) {
    const auto pick =
        rng.SampleWithoutReplacement(cfg.vocab_size, cfg.class_tokens);
    toks.assign(pick.begin(), pick.end());
  }
  TextTrainTest out;
  Rng train_rng = rng.Fork(1);
  Rng test_rng = rng.Fork(2);
  out.train = Generate(cfg, cv, cfg.train_samples, train_rng);
  out.test = Generate(cfg, cv, cfg.test_samples, test_rng);
  out.train.Validate();
  out.test.Validate();
  return out;
}

}  // namespace mhbench::data
