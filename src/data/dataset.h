// In-memory classification dataset.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace mhbench::data {

struct Dataset {
  Tensor features;          // [n, ...sample dims]
  std::vector<int> labels;  // size n, values in [0, num_classes)
  int num_classes = 0;
  // Optional per-sample user id (natural non-IID partitions); empty if none.
  std::vector<int> user_ids;

  std::size_t size() const { return labels.size(); }
  bool empty() const { return labels.empty(); }

  // Shape of one sample (no batch dim).
  Shape sample_shape() const;

  // Materializes the subset selected by `indices` (user ids preserved).
  Dataset Subset(std::span<const int> indices) const;

  // Gathers a feature batch / label batch for the given sample indices.
  Tensor GatherFeatures(std::span<const int> indices) const;
  std::vector<int> GatherLabels(std::span<const int> indices) const;

  // Validates internal consistency (sizes, label range); throws on error.
  void Validate() const;
};

}  // namespace mhbench::data
