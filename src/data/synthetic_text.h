// Synthetic text classification tasks (AG-News / Stack Overflow analogues).
//
// Each class owns a preferred token subset; a sample draws each of its
// `seq_len` token ids from the class subset with probability `class_token_p`
// and uniformly otherwise.  When `num_users > 0` every sample carries a user
// id whose class distribution is skewed (Stack Overflow style natural
// non-IID).
#pragma once

#include "core/rng.h"
#include "data/dataset.h"

namespace mhbench::data {

struct SyntheticTextConfig {
  int num_classes = 4;
  int vocab_size = 64;
  int seq_len = 12;
  int class_tokens = 8;       // size of each class's preferred subset
  float class_token_p = 0.6f;
  int train_samples = 2000;
  int test_samples = 500;
  int num_users = 0;          // 0 = no user ids
  float user_skew = 0.7f;     // probability a user's sample is its main class
  std::uint64_t seed = 1;
};

struct TextTrainTest {
  Dataset train;
  Dataset test;
};

TextTrainTest MakeSyntheticText(const SyntheticTextConfig& config);

}  // namespace mhbench::data
