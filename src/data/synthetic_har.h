// Synthetic human-activity-recognition tasks (HAR-BOX / UCI-HAR analogues).
//
// Each (class, sensor-axis) pair owns a fixed frequency/amplitude; a sample
// is a window of the class's harmonic signal with a random phase and
// Gaussian noise.  Samples carry user ids with per-user amplitude bias so
// the natural per-user partition is non-IID, as in the real datasets.
#pragma once

#include "core/rng.h"
#include "data/dataset.h"

namespace mhbench::data {

struct SyntheticHarConfig {
  int num_classes = 6;
  int channels = 3;    // sensor axes
  int window = 32;
  int train_samples = 2000;
  int test_samples = 500;
  int num_users = 30;
  float noise = 0.4f;
  float user_bias = 0.3f;  // per-user amplitude perturbation scale
  std::uint64_t seed = 1;
};

struct HarTrainTest {
  Dataset train;
  Dataset test;
};

HarTrainTest MakeSyntheticHar(const SyntheticHarConfig& config);

}  // namespace mhbench::data
