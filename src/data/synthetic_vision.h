// Synthetic image classification tasks (CIFAR-10 / CIFAR-100 analogues).
//
// Each class owns `modes_per_class` fixed random template images; a sample
// is a randomly scaled template plus Gaussian pixel noise passed through a
// tanh squash.  The task is learnable by small CNNs but not linearly
// trivial, and is fully determined by the seed.
#pragma once

#include "core/rng.h"
#include "data/dataset.h"

namespace mhbench::data {

struct SyntheticVisionConfig {
  int num_classes = 10;
  int channels = 3;
  int image_size = 8;
  int train_samples = 2000;
  int test_samples = 500;
  int modes_per_class = 2;
  float noise = 0.7f;
  std::uint64_t seed = 1;
};

struct TrainTest {
  Dataset train;
  Dataset test;
};

TrainTest MakeSyntheticVision(const SyntheticVisionConfig& config);

}  // namespace mhbench::data
