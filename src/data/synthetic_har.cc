#include "data/synthetic_har.h"

#include <cmath>

#include "core/error.h"

namespace mhbench::data {
namespace {

struct HarParams {
  // [class][axis] frequency and amplitude.
  std::vector<std::vector<double>> freq, amp;
  // [user] multiplicative amplitude bias.
  std::vector<double> user_gain;
};

Dataset Generate(const SyntheticHarConfig& cfg, const HarParams& hp, int n,
                 Rng& rng) {
  Dataset ds;
  ds.num_classes = cfg.num_classes;
  ds.features = Tensor({n, cfg.channels, cfg.window});
  ds.labels.resize(static_cast<std::size_t>(n));
  ds.user_ids.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int cls = static_cast<int>(
        rng.UniformInt(static_cast<std::uint64_t>(cfg.num_classes)));
    const int user = static_cast<int>(
        rng.UniformInt(static_cast<std::uint64_t>(cfg.num_users)));
    ds.labels[static_cast<std::size_t>(i)] = cls;
    ds.user_ids[static_cast<std::size_t>(i)] = user;
    const double phase = rng.Uniform(0.0, 2.0 * M_PI);
    const double gain = hp.user_gain[static_cast<std::size_t>(user)];
    for (int a = 0; a < cfg.channels; ++a) {
      const double f = hp.freq[static_cast<std::size_t>(cls)]
                              [static_cast<std::size_t>(a)];
      const double amp = hp.amp[static_cast<std::size_t>(cls)]
                               [static_cast<std::size_t>(a)] *
                         gain;
      Scalar* row = ds.features.data().data() +
                    (static_cast<std::size_t>(i) * cfg.channels + a) *
                        cfg.window;
      for (int t = 0; t < cfg.window; ++t) {
        const double v =
            amp * std::sin(f * t + phase) + cfg.noise * rng.Gaussian();
        row[t] = static_cast<Scalar>(v);
      }
    }
  }
  return ds;
}

}  // namespace

HarTrainTest MakeSyntheticHar(const SyntheticHarConfig& cfg) {
  MHB_CHECK_GT(cfg.num_classes, 0);
  MHB_CHECK_GT(cfg.num_users, 0);
  MHB_CHECK_GT(cfg.window, 0);
  Rng rng(cfg.seed ^ 0x5EED0003ULL);
  HarParams hp;
  hp.freq.resize(static_cast<std::size_t>(cfg.num_classes));
  hp.amp.resize(static_cast<std::size_t>(cfg.num_classes));
  for (int c = 0; c < cfg.num_classes; ++c) {
    const auto cu = static_cast<std::size_t>(c);
    hp.freq[cu].resize(static_cast<std::size_t>(cfg.channels));
    hp.amp[cu].resize(static_cast<std::size_t>(cfg.channels));
    for (int a = 0; a < cfg.channels; ++a) {
      const auto au = static_cast<std::size_t>(a);
      // Distinct frequency bands per class keep classes separable.
      hp.freq[cu][au] = 0.3 + 0.25 * c + 0.1 * rng.Uniform();
      hp.amp[cu][au] = rng.Uniform(0.6, 1.4);
    }
  }
  hp.user_gain.resize(static_cast<std::size_t>(cfg.num_users));
  for (auto& g : hp.user_gain) {
    g = 1.0 + cfg.user_bias * rng.Gaussian();
    g = std::max(0.3, g);
  }
  HarTrainTest out;
  Rng train_rng = rng.Fork(1);
  Rng test_rng = rng.Fork(2);
  out.train = Generate(cfg, hp, cfg.train_samples, train_rng);
  out.test = Generate(cfg, hp, cfg.test_samples, test_rng);
  out.train.Validate();
  out.test.Validate();
  return out;
}

}  // namespace mhbench::data
