// Canonical benchmark tasks (the paper's six datasets, sim scale).
//
// Input geometry (image size, vocab, sequence length, sensor window) matches
// the sim-scale model families in models/zoo.cc; the integration tests
// assert this coupling.
#pragma once

#include <string>

#include "data/dataset.h"

namespace mhbench::data {

struct TaskConfig {
  std::uint64_t seed = 1;
  // 0 = per-task default.
  int train_samples = 0;
  int test_samples = 0;
  int num_clients = 0;
};

struct Task {
  std::string name;
  Dataset train;
  Dataset test;
  // True for tasks whose partition follows sample user ids (Stack Overflow,
  // HAR-BOX, UCI-HAR); false = IID/Dirichlet partitioning over samples.
  bool natural = false;
  // Default federated population (for natural tasks this is the user count).
  int num_clients = 0;
};

// Known names: "cifar10", "cifar100", "agnews", "stackoverflow", "harbox",
// "ucihar".  Throws Error for unknown names.
Task MakeTask(const std::string& name, const TaskConfig& config = {});

}  // namespace mhbench::data
