// Client data partitioners: IID, Dirichlet non-IID, and natural per-user.
#pragma once

#include <vector>

#include "core/rng.h"
#include "data/dataset.h"

namespace mhbench::data {

// One index list per client.
using Partition = std::vector<std::vector<int>>;

// Shuffles [0, n) and deals it into `num_clients` near-equal shards.
Partition IidPartition(int n, int num_clients, Rng& rng);

// Label-based Dirichlet(alpha) partition: for each class, sample client
// proportions from Dir(alpha) and deal that class's samples accordingly.
// Small alpha -> highly skewed shards.  Every client is guaranteed at least
// one sample (singletons are stolen from the largest shard).
Partition DirichletPartition(const std::vector<int>& labels, int num_classes,
                             int num_clients, double alpha, Rng& rng);

// Groups samples by `dataset.user_ids`, one client per user id appearing in
// the dataset (ids must be in [0, num_users)); users with no samples get
// empty shards removed.
Partition NaturalPartition(const Dataset& dataset, int num_users);

// Validation helper: each index appears in exactly one shard, all in range.
void ValidatePartition(const Partition& partition, int n);

}  // namespace mhbench::data
