#include "data/tasks.h"

#include "core/error.h"
#include "data/synthetic_har.h"
#include "data/synthetic_text.h"
#include "data/synthetic_vision.h"

namespace mhbench::data {
namespace {

struct Defaults {
  int train, test, clients;
};

Defaults DefaultsFor(const std::string& name) {
  // Client counts keep the paper's relative population ordering
  // (CIFAR/HAR-BOX 100, AG-News 50, Stack Overflow 500, UCI-HAR 30) at sim
  // scale.
  if (name == "cifar10" || name == "cifar100") return {1200, 400, 20};
  if (name == "agnews") return {1000, 300, 10};
  if (name == "stackoverflow") return {1500, 400, 40};
  if (name == "harbox") return {1200, 400, 20};
  if (name == "ucihar") return {1000, 300, 10};
  throw Error("unknown task: " + name);
}

}  // namespace

Task MakeTask(const std::string& name, const TaskConfig& config) {
  const Defaults d = DefaultsFor(name);
  const int train = config.train_samples > 0 ? config.train_samples : d.train;
  const int test = config.test_samples > 0 ? config.test_samples : d.test;
  const int clients = config.num_clients > 0 ? config.num_clients : d.clients;

  Task task;
  task.name = name;
  task.num_clients = clients;

  if (name == "cifar10" || name == "cifar100") {
    SyntheticVisionConfig cfg;
    cfg.num_classes = name == "cifar10" ? 10 : 20;
    cfg.train_samples = train;
    cfg.test_samples = test;
    cfg.seed = config.seed;
    auto tt = MakeSyntheticVision(cfg);
    task.train = std::move(tt.train);
    task.test = std::move(tt.test);
    task.natural = false;
  } else if (name == "agnews") {
    SyntheticTextConfig cfg;
    cfg.num_classes = 4;
    cfg.train_samples = train;
    cfg.test_samples = test;
    cfg.seed = config.seed;
    auto tt = MakeSyntheticText(cfg);
    task.train = std::move(tt.train);
    task.test = std::move(tt.test);
    task.natural = false;
  } else if (name == "stackoverflow") {
    SyntheticTextConfig cfg;
    cfg.num_classes = 5;
    cfg.train_samples = train;
    cfg.test_samples = test;
    cfg.num_users = clients;
    cfg.seed = config.seed;
    auto tt = MakeSyntheticText(cfg);
    task.train = std::move(tt.train);
    task.test = std::move(tt.test);
    task.natural = true;
  } else if (name == "harbox" || name == "ucihar") {
    SyntheticHarConfig cfg;
    cfg.num_classes = name == "harbox" ? 5 : 6;
    cfg.train_samples = train;
    cfg.test_samples = test;
    cfg.num_users = clients;
    cfg.seed = config.seed;
    auto tt = MakeSyntheticHar(cfg);
    task.train = std::move(tt.train);
    task.test = std::move(tt.test);
    task.natural = true;
  } else {
    throw Error("unknown task: " + name);
  }
  return task;
}

}  // namespace mhbench::data
