// Client-side types: per-client assignments (model capacity + system costs)
// and the shared local-training routine.
#pragma once

#include <string>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"
#include "nn/module.h"
#include "nn/optimizer.h"

namespace mhbench::fl {

// System costs of one federated round for a client, produced by the
// constraint builders from the device cost model.  The engine's simulated
// clock advances by max over sampled clients of (compute + comm).
struct ClientSystemProfile {
  double compute_time_s = 1.0;
  double comm_time_s = 0.0;
  double memory_mb = 0.0;
  // Round payload (upload + download) and per-round training GFLOPs, from
  // the cost model; consumed by the observability layer (bytes/FLOPs
  // counters), not by the simulated clock.
  double comm_mb = 0.0;
  double train_gflops = 0.0;
  // Probability of being online when sampled (1 = always available).
  double availability = 1.0;
  // Device-tier label for cohort observability (device::DeviceTierName —
  // "cpu" / "mem4g" / "mem16g").  Telemetry-only: consumed by the obs
  // layer's tier-keyed rollups, never by the simulated clock.  Empty means
  // untiered (synthetic/test assignments); the engine reports those under
  // the "untiered" cohort.
  std::string device_tier;
};

// What model a client runs and what it costs.
struct ClientAssignment {
  // Model-size ratio the heterogeneity algorithm applies (width or depth,
  // depending on the algorithm's level).
  double capacity = 1.0;
  // Architecture index into the task's topology family list (topology-level
  // algorithms only).
  int arch_index = 0;
  ClientSystemProfile system;
};

// Uniformly cycles the given capacities over `num_clients` clients
// (the literature's proportional-splitting setup; used by examples/tests
// and as the fallback when no device constraint is active).
std::vector<ClientAssignment> UniformCapacityAssignments(
    int num_clients, const std::vector<double>& capacities);

struct LocalTrainOptions {
  nn::OptimizerKind optimizer = nn::OptimizerKind::kSgd;
  int epochs = 1;
  int batch_size = 16;
  double lr = 0.05;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  double grad_clip = 5.0;
};

// Runs standard supervised local training; returns the mean training loss
// of the last epoch.
double TrainLocal(nn::Module& model, const data::Dataset& shard,
                  const LocalTrainOptions& options, Rng& rng);

}  // namespace mhbench::fl
