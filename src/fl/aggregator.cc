#include "fl/aggregator.h"

#include "core/error.h"
#include "obs/profile.h"
#include "tensor/ops.h"

namespace mhbench::fl {

ClientUpdate ExtractUpdate(nn::Module& model,
                           const models::ParamMapping& mapping,
                           double weight) {
  MHB_CHECK_GT(weight, 0.0);
  obs::ProfileScope profile_scope("extract_update");
  std::vector<nn::NamedParam> params;
  model.CollectParams("", params);
  MHB_CHECK_EQ(params.size(), mapping.size());
  ClientUpdate update;
  update.mapping = mapping;
  update.weight = weight;
  update.values.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    MHB_CHECK_EQ(params[i].name, mapping[i].name) << "mapping order mismatch";
    update.values.push_back(params[i].param->value);
  }
  return update;
}

void MaskedAverager::Accumulate(nn::Module& model,
                                const models::ParamMapping& mapping,
                                double weight, const ParamStore& reference) {
  Accumulate(ExtractUpdate(model, mapping, weight), reference);
}

void MaskedAverager::Accumulate(const ClientUpdate& update,
                                const ParamStore& reference) {
  MHB_CHECK_GT(update.weight, 0.0);
  obs::ProfileScope profile_scope("aggregate_accumulate");
  MHB_CHECK_EQ(update.values.size(), update.mapping.size());
  for (std::size_t i = 0; i < update.values.size(); ++i) {
    const auto& slice = update.mapping[i];
    const Tensor& global_ref = reference.Get(slice.name);
    auto [sit, inserted] = sum_.try_emplace(slice.name, global_ref.shape());
    if (inserted) weight_.emplace(slice.name, Tensor(global_ref.shape()));

    // Fused: sum[sel] += w * values and weight[sel] += w, without
    // materializing a weighted copy or a constant-filled tensor per slice.
    const auto w = static_cast<Scalar>(update.weight);
    ops::ScatterAxpyDims(sit->second, w, update.values[i], slice.index);
    ops::ScatterAddScalarDims(weight_.at(slice.name), w, slice.index);
  }
}

void MaskedAverager::ApplyTo(ParamStore& store) {
  MHB_CHECK(!empty()) << "no accumulated updates";
  obs::ProfileScope profile_scope("aggregate_apply");
  for (auto& [name, acc] : sum_) {
    Tensor& target = store.GetMutable(name);
    const Tensor& w = weight_.at(name);
    MHB_CHECK(acc.shape() == target.shape());
    for (std::size_t i = 0; i < acc.numel(); ++i) {
      if (w[i] > 0) target[i] = acc[i] / w[i];
    }
  }
  sum_.clear();
  weight_.clear();
}

}  // namespace mhbench::fl
