#include "fl/aggregator.h"

#include "core/error.h"
#include "tensor/ops.h"

namespace mhbench::fl {

void MaskedAverager::Accumulate(nn::Module& model,
                                const models::ParamMapping& mapping,
                                double weight, const ParamStore& reference) {
  MHB_CHECK_GT(weight, 0.0);
  std::vector<nn::NamedParam> params;
  model.CollectParams("", params);
  MHB_CHECK_EQ(params.size(), mapping.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto& slice = mapping[i];
    MHB_CHECK_EQ(params[i].name, slice.name) << "mapping order mismatch";
    const Tensor& global_ref = reference.Get(slice.name);
    auto [sit, inserted] = sum_.try_emplace(slice.name, global_ref.shape());
    if (inserted) weight_.emplace(slice.name, Tensor(global_ref.shape()));

    Tensor weighted = params[i].param->value;
    weighted.Scale(static_cast<Scalar>(weight));
    ops::ScatterAddDims(sit->second, weighted, slice.index);
    const Tensor w(params[i].param->value.shape(),
                   static_cast<Scalar>(weight));
    ops::ScatterAddDims(weight_.at(slice.name), w, slice.index);
  }
}

void MaskedAverager::ApplyTo(ParamStore& store) {
  MHB_CHECK(!empty()) << "no accumulated updates";
  for (auto& [name, acc] : sum_) {
    Tensor& target = store.GetMutable(name);
    const Tensor& w = weight_.at(name);
    MHB_CHECK(acc.shape() == target.shape());
    for (std::size_t i = 0; i < acc.numel(); ++i) {
      if (w[i] > 0) target[i] = acc[i] / w[i];
    }
  }
  sum_.clear();
  weight_.clear();
}

}  // namespace mhbench::fl
