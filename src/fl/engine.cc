#include "fl/engine.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/logging.h"
#include "data/partition.h"
#include "fl/evaluation.h"
#include "nn/lr_schedule.h"

namespace mhbench::fl {

double FlContext::LrMultiplier(int round) const {
  if (round < 0) return 1.0;
  switch (config->lr_schedule) {
    case LrScheduleKind::kConstant:
      return 1.0;
    case LrScheduleKind::kStepDecay:
      return nn::StepDecayLr(config->lr_step, config->lr_gamma)
          .Multiplier(round, config->rounds);
    case LrScheduleKind::kCosine:
      return nn::CosineLr(config->lr_cosine_floor)
          .Multiplier(round, config->rounds);
  }
  return 1.0;
}

LocalTrainOptions FlContext::local_options(int round) const {
  LocalTrainOptions opts;
  opts.optimizer = config->optimizer;
  opts.epochs = config->local_epochs;
  opts.batch_size = config->batch_size;
  opts.lr = config->lr * LrMultiplier(round);
  opts.momentum = config->momentum;
  opts.weight_decay = config->weight_decay;
  opts.grad_clip = config->grad_clip;
  return opts;
}

double RunResult::TimeToAccuracy(double target) const {
  for (const auto& r : curve) {
    if (r.global_acc >= target) return r.sim_time_s;
  }
  return std::numeric_limits<double>::infinity();
}

double RunResult::StabilityVariance() const {
  if (client_accuracies.empty()) return 0.0;
  double mean = 0.0;
  for (double a : client_accuracies) mean += a;
  mean /= static_cast<double>(client_accuracies.size());
  double var = 0.0;
  for (double a : client_accuracies) var += (a - mean) * (a - mean);
  return var / static_cast<double>(client_accuracies.size());
}

double RunResult::MeanClientAccuracy() const {
  if (client_accuracies.empty()) return 0.0;
  double mean = 0.0;
  for (double a : client_accuracies) mean += a;
  return mean / static_cast<double>(client_accuracies.size());
}

void MhflAlgorithm::BeginRound(int /*round*/,
                               const std::vector<int>& /*participants*/) {}

void MhflAlgorithm::PrepareEvaluation() {}

FlEngine::FlEngine(const data::Task& task, FlConfig config,
                   std::vector<ClientAssignment> assignments,
                   MhflAlgorithm& algorithm)
    : config_(config), algorithm_(algorithm), rng_(config.seed) {
  ctx_.task = &task;
  ctx_.config = &config_;
  if (config_.num_threads > 1) {
    // The calling thread participates in every ParallelFor, so num_threads
    // total threads execute client work.
    pool_ = std::make_unique<core::ThreadPool>(config_.num_threads - 1);
  }

  // Partition the training data into client shards.
  data::Partition partition;
  Rng prng = rng_.Fork(0xDA7A);
  if (task.natural) {
    partition = data::NaturalPartition(task.train, task.num_clients);
  } else if (config_.partition == PartitionKind::kDirichlet) {
    partition = data::DirichletPartition(
        task.train.labels, task.train.num_classes, task.num_clients,
        config_.dirichlet_alpha, prng);
  } else {
    partition = data::IidPartition(static_cast<int>(task.train.size()),
                                   task.num_clients, prng);
  }
  ctx_.shards.reserve(partition.size());
  for (const auto& idx : partition) {
    ctx_.shards.push_back(task.train.Subset(idx));
  }

  if (assignments.empty()) {
    ctx_.assignments.assign(ctx_.shards.size(), ClientAssignment{});
  } else {
    // Natural partitions can drop empty users; tolerate a longer assignment
    // list by truncating.
    MHB_CHECK_GE(assignments.size(), ctx_.shards.size())
        << "need one assignment per client";
    assignments.resize(ctx_.shards.size());
    ctx_.assignments = std::move(assignments);
  }
}

RunResult FlEngine::Run() {
  Rng setup_rng = rng_.Fork(1);
  algorithm_.Setup(ctx_, setup_rng);

  RunResult result;
  double sim_time = 0.0;
  const int num_clients = ctx_.num_clients();
  const int sample_count = std::max(
      config_.min_sampled,
      static_cast<int>(std::lround(config_.sample_fraction * num_clients)));

  auto evaluate_global = [&]() {
    return EvaluateAccuracy(
        [&](const Tensor& x) { return algorithm_.GlobalLogits(x); },
        ctx_.task->test, config_.eval_max_samples);
  };

  for (int round = 0; round < config_.rounds; ++round) {
    Rng round_rng = rng_.Fork(static_cast<std::uint64_t>(round) + 100);
    const std::vector<int> sampled = round_rng.SampleWithoutReplacement(
        num_clients, std::min(sample_count, num_clients));

    // Phase 1 (serial): every order-sensitive random decision — availability
    // draws, straggler drops, per-client Rng forks — is made here, in the
    // sampled order, consuming round_rng exactly as the serial engine does.
    // Only after the full stream is fixed may clients run concurrently.
    std::vector<Participant> participants;
    participants.reserve(sampled.size());
    double round_time = 0.0;
    for (int c : sampled) {
      const auto& sys = ctx_.assignments[static_cast<std::size_t>(c)].system;
      const double client_time = sys.compute_time_s + sys.comm_time_s;
      ++result.total_participations;
      if (sys.availability < 1.0 &&
          round_rng.Uniform() >= sys.availability) {
        // State heterogeneity: the device is offline this round.
        ++result.offline_skips;
        continue;
      }
      if (config_.round_deadline_s > 0 &&
          client_time > config_.round_deadline_s) {
        // Straggler: the synchronous round closes without this client.
        ++result.straggler_drops;
        continue;
      }
      participants.push_back(
          {c, round_rng.Fork(static_cast<std::uint64_t>(c))});
      round_time = std::max(round_time, client_time);
    }
    if (config_.round_deadline_s > 0) {
      // The server waits until the deadline regardless of who made it.
      round_time = config_.round_deadline_s;
    }

    std::vector<int> participant_ids;
    participant_ids.reserve(participants.size());
    for (const auto& p : participants) participant_ids.push_back(p.client_id);
    algorithm_.BeginRound(round, participant_ids);

    // Phase 2: dispatch.  Each participant trains with the Rng fixed above;
    // algorithms stage uploads per client and merge them in participant
    // order inside FinishRound.
    core::ParallelFor(pool_.get(), participants.size(), [&](std::size_t i) {
      algorithm_.RunClient(participants[i].client_id, round,
                           participants[i].rng);
    });

    algorithm_.FinishRound(round, round_rng);
    sim_time += round_time;

    if ((round + 1) % config_.eval_every == 0 ||
        round + 1 == config_.rounds) {
      const double acc = evaluate_global();
      result.curve.push_back({round, sim_time, acc});
      MHB_LOG_DEBUG << algorithm_.name() << " round " << round
                    << " acc=" << acc << " t=" << sim_time;
    }
  }

  result.total_sim_time_s = sim_time;
  result.final_accuracy =
      result.curve.empty() ? evaluate_global() : result.curve.back().global_acc;

  // Stability: every client's personalized model on the shared test set.
  // Clients are independent given the final global state, so the loop
  // parallelizes; each client writes only its own slot.
  algorithm_.PrepareEvaluation();
  result.client_accuracies.assign(static_cast<std::size_t>(num_clients), 0.0);
  core::ParallelFor(
      pool_.get(), static_cast<std::size_t>(num_clients), [&](std::size_t c) {
        result.client_accuracies[c] = EvaluateAccuracy(
            [&](const Tensor& x) {
              return algorithm_.ClientLogits(static_cast<int>(c), x);
            },
            ctx_.task->test, config_.stability_max_samples);
      });
  return result;
}

}  // namespace mhbench::fl
