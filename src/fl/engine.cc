#include "fl/engine.h"

#include <algorithm>
#include <cmath>

#include <chrono>

#include "core/error.h"
#include "core/logging.h"
#include "data/partition.h"
#include "fl/evaluation.h"
#include "nn/lr_schedule.h"
#include "obs/profile.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/gemm.h"
#include "tensor/scratch.h"

namespace mhbench::fl {

double FlContext::LrMultiplier(int round) const {
  if (round < 0) return 1.0;
  switch (config->lr_schedule) {
    case LrScheduleKind::kConstant:
      return 1.0;
    case LrScheduleKind::kStepDecay:
      return nn::StepDecayLr(config->lr_step, config->lr_gamma)
          .Multiplier(round, config->rounds);
    case LrScheduleKind::kCosine:
      return nn::CosineLr(config->lr_cosine_floor)
          .Multiplier(round, config->rounds);
  }
  return 1.0;
}

LocalTrainOptions FlContext::local_options(int round) const {
  LocalTrainOptions opts;
  opts.optimizer = config->optimizer;
  opts.epochs = config->local_epochs;
  opts.batch_size = config->batch_size;
  opts.lr = config->lr * LrMultiplier(round);
  opts.momentum = config->momentum;
  opts.weight_decay = config->weight_decay;
  opts.grad_clip = config->grad_clip;
  return opts;
}

double RunResult::TimeToAccuracy(double target) const {
  for (const auto& r : curve) {
    if (r.global_acc >= target) return r.sim_time_s;
  }
  return std::numeric_limits<double>::infinity();
}

double RunResult::StabilityVariance() const {
  if (client_accuracies.empty()) return 0.0;
  double mean = 0.0;
  for (double a : client_accuracies) mean += a;
  mean /= static_cast<double>(client_accuracies.size());
  double var = 0.0;
  for (double a : client_accuracies) var += (a - mean) * (a - mean);
  return var / static_cast<double>(client_accuracies.size());
}

double RunResult::MeanClientAccuracy() const {
  if (client_accuracies.empty()) return 0.0;
  double mean = 0.0;
  for (double a : client_accuracies) mean += a;
  return mean / static_cast<double>(client_accuracies.size());
}

void MhflAlgorithm::BeginRound(int /*round*/,
                               const std::vector<int>& /*participants*/) {}

void MhflAlgorithm::PrepareEvaluation() {}

FlEngine::FlEngine(const data::Task& task, FlConfig config,
                   std::vector<ClientAssignment> assignments,
                   MhflAlgorithm& algorithm)
    : config_(config), algorithm_(algorithm), rng_(config.seed) {
  ctx_.task = &task;
  ctx_.config = &config_;
  if (config_.num_threads > 1) {
    // The calling thread participates in every ParallelFor, so num_threads
    // total threads execute client work.
    pool_ = std::make_unique<core::ThreadPool>(config_.num_threads - 1);
  }

  // Partition the training data into client shards.
  data::Partition partition;
  Rng prng = rng_.Fork(0xDA7A);
  if (task.natural) {
    partition = data::NaturalPartition(task.train, task.num_clients);
  } else if (config_.partition == PartitionKind::kDirichlet) {
    partition = data::DirichletPartition(
        task.train.labels, task.train.num_classes, task.num_clients,
        config_.dirichlet_alpha, prng);
  } else {
    partition = data::IidPartition(static_cast<int>(task.train.size()),
                                   task.num_clients, prng);
  }
  ctx_.shards.reserve(partition.size());
  for (const auto& idx : partition) {
    ctx_.shards.push_back(task.train.Subset(idx));
  }

  if (assignments.empty()) {
    ctx_.assignments.assign(ctx_.shards.size(), ClientAssignment{});
  } else {
    // Natural partitions can drop empty users; tolerate a longer assignment
    // list by truncating.
    MHB_CHECK_GE(assignments.size(), ctx_.shards.size())
        << "need one assignment per client";
    assignments.resize(ctx_.shards.size());
    ctx_.assignments = std::move(assignments);
  }
}

RunResult FlEngine::Run() {
  obs::Tracer* const tracer = config_.obs.tracer;
  obs::Registry* const reg = config_.obs.registry;
  obs::Profiler* const prof = config_.obs.profiler;
  const bool sim_spans = config_.obs.sim_spans && tracer != nullptr;
  // Serial phases (setup, merge, aggregation) profile on this thread; the
  // dispatch and eval lambdas install their own guards because pool workers
  // have no profiler context of their own.
  obs::ProfilerThreadGuard main_profiler_guard(prof);

  // All counters are registered serially up front so concurrent Add calls
  // from the dispatch phase only ever touch pre-sized per-thread sinks.
  struct CounterIds {
    obs::Registry::CounterId selected{}, offline{}, dropped{}, trained{},
        bytes_up{}, bytes_down{}, train_mflops{}, pool_tasks{}, gemm_flops{};
  } ids;
  // Histograms follow the same rule: registered serially, observed from
  // any thread, merged at the barrier.  client_wall_us is wall-clock (its
  // quantiles vary run to run); bytes_up / train_mflops distributions are
  // pure functions of the cost model and stay thread-count independent.
  struct HistIds {
    obs::Registry::HistogramId client_wall_us{}, client_bytes_up{},
        client_train_mflops{};
  } hids;
  if (reg != nullptr) {
    ids.selected = reg->Counter("clients_selected");
    ids.offline = reg->Counter("clients_offline");
    ids.dropped = reg->Counter("clients_dropped");
    ids.trained = reg->Counter("clients_trained");
    ids.bytes_up = reg->Counter("bytes_up");
    ids.bytes_down = reg->Counter("bytes_down");
    ids.train_mflops = reg->Counter("train_mflops");
    ids.pool_tasks = reg->Counter("pool_tasks");
    ids.gemm_flops = reg->Counter("gemm_flops");
    hids.client_wall_us = reg->Histogram("client_wall_us");
    hids.client_bytes_up = reg->Histogram("client_bytes_up");
    hids.client_train_mflops = reg->Histogram("client_train_mflops");
  }
  core::ThreadPool::Stats pool_base =
      pool_ != nullptr ? pool_->stats() : core::ThreadPool::Stats{};
  // Kernel-layer observability: the GEMM flop count is an exact integer
  // independent of thread count (published as per-round counter deltas);
  // the scratch high-water mark is a gauge because it does depend on how
  // many arenas are live.
  std::uint64_t gemm_base = kernels::TotalGemmFlops();

  Rng setup_rng = rng_.Fork(1);
  {
    obs::Span span(tracer, "setup", "fl");
    algorithm_.Setup(ctx_, setup_rng);
  }

  RunResult result;
  double sim_time = 0.0;
  const int num_clients = ctx_.num_clients();
  const int sample_count = std::max(
      config_.min_sampled,
      static_cast<int>(std::lround(config_.sample_fraction * num_clients)));

  auto evaluate_global = [&]() {
    obs::Span span(tracer, "eval_global", "eval");
    obs::ProfileScope profile_scope("eval_global");
    return EvaluateAccuracy(
        [&](const Tensor& x) { return algorithm_.GlobalLogits(x); },
        ctx_.task->test, config_.eval_max_samples);
  };

  for (int round = 0; round < config_.rounds; ++round) {
    const auto round_wall_start = std::chrono::steady_clock::now();
    const double round_sim_start = sim_time;
    obs::Span round_span(tracer, "round", "fl");
    round_span.Arg("round", static_cast<std::int64_t>(round));

    Rng round_rng = rng_.Fork(static_cast<std::uint64_t>(round) + 100);
    const std::vector<int> sampled = round_rng.SampleWithoutReplacement(
        num_clients, std::min(sample_count, num_clients));

    // Phase 1 (serial): every order-sensitive random decision — availability
    // draws, straggler drops, per-client Rng forks — is made here, in the
    // sampled order, consuming round_rng exactly as the serial engine does.
    // Only after the full stream is fixed may clients run concurrently.
    obs::Span select_span(tracer, "select", "fl");
    std::vector<Participant> participants;
    participants.reserve(sampled.size());
    // Per-client timeline rows, built serially for every sampled client
    // (dropped ones included, with their drop reason).  Each participant
    // remembers its row index so the dispatch lambda can write the measured
    // wall time into its own slot without synchronization.
    std::vector<obs::Registry::ClientRow> client_rows;
    std::vector<std::size_t> participant_row;
    double round_time = 0.0;
    int round_offline = 0;
    int round_dropped = 0;
    for (int c : sampled) {
      const auto& sys = ctx_.assignments[static_cast<std::size_t>(c)].system;
      const double client_time = sys.compute_time_s + sys.comm_time_s;
      ++result.total_participations;
      std::size_t row_idx = 0;
      if (reg != nullptr) {
        row_idx = client_rows.size();
        obs::Registry::ClientRow row;
        row.run = algorithm_.name();
        row.round = round;
        row.client = c;
        row.sim_compute_s = sys.compute_time_s;
        row.sim_comm_s = sys.comm_time_s;
        row.memory_mb = sys.memory_mb;
        client_rows.push_back(std::move(row));
      }
      if (sys.availability < 1.0 &&
          round_rng.Uniform() >= sys.availability) {
        // State heterogeneity: the device is offline this round.
        ++result.offline_skips;
        ++round_offline;
        if (reg != nullptr) client_rows[row_idx].drop_reason = "offline";
        continue;
      }
      if (config_.round_deadline_s > 0 &&
          client_time > config_.round_deadline_s) {
        // Straggler: the synchronous round closes without this client.
        ++result.straggler_drops;
        ++round_dropped;
        if (reg != nullptr) client_rows[row_idx].drop_reason = "straggler";
        continue;
      }
      if (reg != nullptr) {
        auto& row = client_rows[row_idx];
        row.bytes_up = static_cast<std::int64_t>(sys.comm_mb * 5e5);
        row.bytes_down = static_cast<std::int64_t>(sys.comm_mb * 5e5);
        row.train_mflops = static_cast<std::int64_t>(sys.train_gflops * 1e3);
        participant_row.push_back(row_idx);
      }
      participants.push_back(
          {c, round_rng.Fork(static_cast<std::uint64_t>(c))});
      round_time = std::max(round_time, client_time);
    }
    if (config_.round_deadline_s > 0) {
      // The server waits until the deadline regardless of who made it.
      round_time = config_.round_deadline_s;
    }
    select_span.End();
    if (reg != nullptr) {
      reg->Add(ids.selected, static_cast<std::int64_t>(sampled.size()));
      reg->Add(ids.offline, round_offline);
      reg->Add(ids.dropped, round_dropped);
    }

    std::vector<int> participant_ids;
    participant_ids.reserve(participants.size());
    for (const auto& p : participants) participant_ids.push_back(p.client_id);
    algorithm_.BeginRound(round, participant_ids);

    // Phase 2: dispatch.  Each participant trains with the Rng fixed above;
    // algorithms stage uploads per client and merge them in participant
    // order inside FinishRound.  Counter increments land in per-thread
    // sinks; integer addition commutes, so totals match the serial run.
    obs::Span dispatch_span(tracer, "dispatch", "fl");
    dispatch_span.Arg("participants",
                      static_cast<std::int64_t>(participants.size()));
    core::ParallelFor(pool_.get(), participants.size(), [&](std::size_t i) {
      const int client_id = participants[i].client_id;
      const auto& sys =
          ctx_.assignments[static_cast<std::size_t>(client_id)].system;
      obs::Span client_span(tracer, "client", "client");
      client_span.Arg("client", static_cast<std::int64_t>(client_id));
      client_span.Arg("bytes_up", sys.comm_mb * 5e5);
      client_span.Arg("bytes_down", sys.comm_mb * 5e5);
      client_span.Arg("train_gflops", sys.train_gflops);
      const auto client_wall_start = std::chrono::steady_clock::now();
      {
        // Pool workers have no profiler installed; the guard scopes it to
        // this task so each client's op tree lands in the worker's sink.
        obs::ProfilerThreadGuard profiler_guard(prof);
        obs::ProfileScope profile_scope("client");
        algorithm_.RunClient(client_id, round, participants[i].rng);
      }
      const double client_wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - client_wall_start)
              .count();
      if (reg != nullptr) {
        // The cost model charges comm_mb for the full up+down payload.
        const auto bytes = static_cast<std::int64_t>(sys.comm_mb * 5e5);
        const auto mflops =
            static_cast<std::int64_t>(sys.train_gflops * 1e3);
        reg->Add(ids.bytes_up, bytes);
        reg->Add(ids.bytes_down, bytes);
        reg->Add(ids.train_mflops, mflops);
        reg->Add(ids.trained, 1);
        reg->Observe(hids.client_wall_us,
                     static_cast<std::int64_t>(client_wall_ms * 1e3));
        reg->Observe(hids.client_bytes_up, bytes);
        reg->Observe(hids.client_train_mflops, mflops);
        client_rows[participant_row[i]].wall_ms = client_wall_ms;
      }
    });
    dispatch_span.End();

    {
      obs::Span merge_span(tracer, "merge", "fl");
      algorithm_.FinishRound(round, round_rng);
    }
    sim_time += round_time;

    if (sim_spans) {
      // Simulated-clock track: one lane per client, timestamps in simulated
      // seconds.  Lane -1 carries the round envelope.
      tracer->RecordSim("round " + std::to_string(round), "sim",
                        round_sim_start, round_time, -1);
      for (const auto& p : participants) {
        const auto& sys =
            ctx_.assignments[static_cast<std::size_t>(p.client_id)].system;
        tracer->RecordSim(
            "compute", "sim", round_sim_start, sys.compute_time_s,
            p.client_id, {{"round", std::to_string(round)}});
        tracer->RecordSim(
            "comm", "sim", round_sim_start + sys.compute_time_s,
            sys.comm_time_s, p.client_id,
            {{"round", std::to_string(round)}});
      }
    }

    bool evaluated = false;
    double eval_acc = 0.0;
    if ((round + 1) % config_.eval_every == 0 ||
        round + 1 == config_.rounds) {
      eval_acc = evaluate_global();
      evaluated = true;
      result.curve.push_back({round, sim_time, eval_acc});
      MHB_LOG_DEBUG << algorithm_.name() << " round " << round
                    << " acc=" << eval_acc << " t=" << sim_time;
    }
    round_span.End();

    if (reg != nullptr) {
      // Round barrier: merge per-thread sinks and snapshot this round's
      // counter deltas + gauges into a manifest row.
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - round_wall_start)
              .count();
      reg->SetGauge("wall_ms", wall_ms);
      reg->SetGauge("round_time_s", round_time);
      reg->SetGauge("sim_time_s", sim_time);
      if (evaluated) reg->SetGauge("global_acc", eval_acc);
      const std::uint64_t gemm_now = kernels::TotalGemmFlops();
      reg->Add(ids.gemm_flops,
               static_cast<std::int64_t>(gemm_now - gemm_base));
      gemm_base = gemm_now;
      reg->SetGauge("scratch_bytes_peak",
                    static_cast<double>(kernels::ScratchPeakBytesAllThreads()));
      if (pool_ != nullptr) {
        const core::ThreadPool::Stats now = pool_->stats();
        reg->Add(ids.pool_tasks, static_cast<std::int64_t>(
                                     now.tasks_executed -
                                     pool_base.tasks_executed));
        reg->SetGauge("pool_idle_ms",
                      static_cast<double>(now.idle_ns - pool_base.idle_ns) /
                          1e6);
        pool_base = now;
      }
      for (auto& row : client_rows) reg->AddClientRow(std::move(row));
      reg->EndRound(algorithm_.name(), round);
      MHB_LOG_TRACE << algorithm_.name() << " round " << round
                    << " participants=" << participants.size()
                    << " offline=" << round_offline
                    << " dropped=" << round_dropped << " wall_ms=" << wall_ms;
    }
  }

  result.total_sim_time_s = sim_time;
  result.final_accuracy =
      result.curve.empty() ? evaluate_global() : result.curve.back().global_acc;

  // Stability: every client's personalized model on the shared test set.
  // Clients are independent given the final global state, so the loop
  // parallelizes; each client writes only its own slot.
  obs::Span stability_span(tracer, "stability_eval", "eval");
  algorithm_.PrepareEvaluation();
  result.client_accuracies.assign(static_cast<std::size_t>(num_clients), 0.0);
  core::ParallelFor(
      pool_.get(), static_cast<std::size_t>(num_clients), [&](std::size_t c) {
        obs::Span span(tracer, "client_eval", "eval");
        span.Arg("client", static_cast<std::int64_t>(c));
        obs::ProfilerThreadGuard profiler_guard(prof);
        obs::ProfileScope profile_scope("client_eval");
        result.client_accuracies[c] = EvaluateAccuracy(
            [&](const Tensor& x) {
              return algorithm_.ClientLogits(static_cast<int>(c), x);
            },
            ctx_.task->test, config_.stability_max_samples);
      });
  stability_span.End();
  if (reg != nullptr) reg->FlushThreadSinks();
  return result;
}

}  // namespace mhbench::fl
