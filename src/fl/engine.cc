#include "fl/engine.h"

#include <algorithm>
#include <cmath>

#include <chrono>
#include <filesystem>
#include <utility>

#include "core/error.h"
#include "core/logging.h"
#include "data/partition.h"
#include "fl/checkpoint.h"
#include "fl/evaluation.h"
#include "nn/lr_schedule.h"
#include "obs/det_audit.h"
#include "obs/live.h"
#include "obs/profile.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/gemm.h"
#include "tensor/scratch.h"

namespace mhbench::fl {

double FlContext::LrMultiplier(int round) const {
  if (round < 0) return 1.0;
  switch (config->lr_schedule) {
    case LrScheduleKind::kConstant:
      return 1.0;
    case LrScheduleKind::kStepDecay:
      return nn::StepDecayLr(config->lr_step, config->lr_gamma)
          .Multiplier(round, config->rounds);
    case LrScheduleKind::kCosine:
      return nn::CosineLr(config->lr_cosine_floor)
          .Multiplier(round, config->rounds);
  }
  return 1.0;
}

LocalTrainOptions FlContext::local_options(int round) const {
  LocalTrainOptions opts;
  opts.optimizer = config->optimizer;
  opts.epochs = config->local_epochs;
  opts.batch_size = config->batch_size;
  opts.lr = config->lr * LrMultiplier(round);
  opts.momentum = config->momentum;
  opts.weight_decay = config->weight_decay;
  opts.grad_clip = config->grad_clip;
  return opts;
}

double RunResult::TimeToAccuracy(double target) const {
  for (const auto& r : curve) {
    if (r.global_acc >= target) return r.sim_time_s;
  }
  return std::numeric_limits<double>::infinity();
}

double RunResult::StabilityVariance() const {
  if (client_accuracies.empty()) return 0.0;
  double mean = 0.0;
  for (double a : client_accuracies) mean += a;
  mean /= static_cast<double>(client_accuracies.size());
  double var = 0.0;
  for (double a : client_accuracies) var += (a - mean) * (a - mean);
  return var / static_cast<double>(client_accuracies.size());
}

double RunResult::MeanClientAccuracy() const {
  if (client_accuracies.empty()) return 0.0;
  double mean = 0.0;
  for (double a : client_accuracies) mean += a;
  return mean / static_cast<double>(client_accuracies.size());
}

void MhflAlgorithm::BeginRound(int /*round*/,
                               const std::vector<int>& /*participants*/) {}

void MhflAlgorithm::PrepareEvaluation() {}

void MhflAlgorithm::SaveState(SnapshotWriter& /*writer*/) const {
  throw Error("algorithm '" + name() +
              "' does not implement checkpoint SaveState");
}

void MhflAlgorithm::LoadState(SnapshotReader& /*reader*/) {
  throw Error("algorithm '" + name() +
              "' does not implement checkpoint LoadState");
}

FlEngine::FlEngine(const data::Task& task, FlConfig config,
                   std::vector<ClientAssignment> assignments,
                   MhflAlgorithm& algorithm)
    : config_(config), algorithm_(algorithm), rng_(config.seed) {
  ctx_.task = &task;
  ctx_.config = &config_;
  if (config_.num_threads > 1) {
    // The calling thread participates in every ParallelFor, so num_threads
    // total threads execute client work.
    pool_ = std::make_unique<core::ThreadPool>(config_.num_threads - 1);
  }

  // Partition the training data into client shards.
  data::Partition partition;
  Rng prng = rng_.Fork(0xDA7A);
  if (task.natural) {
    partition = data::NaturalPartition(task.train, task.num_clients);
  } else if (config_.partition == PartitionKind::kDirichlet) {
    partition = data::DirichletPartition(
        task.train.labels, task.train.num_classes, task.num_clients,
        config_.dirichlet_alpha, prng);
  } else {
    partition = data::IidPartition(static_cast<int>(task.train.size()),
                                   task.num_clients, prng);
  }
  ctx_.shards.reserve(partition.size());
  for (const auto& idx : partition) {
    ctx_.shards.push_back(task.train.Subset(idx));
  }

  if (assignments.empty()) {
    ctx_.assignments.assign(ctx_.shards.size(), ClientAssignment{});
  } else {
    // Natural partitions can drop empty users; tolerate a longer assignment
    // list by truncating.
    MHB_CHECK_GE(assignments.size(), ctx_.shards.size())
        << "need one assignment per client";
    assignments.resize(ctx_.shards.size());
    ctx_.assignments = std::move(assignments);
  }
}

RunResult FlEngine::Run() {
  obs::Tracer* const tracer = config_.obs.tracer;
  obs::Registry* const reg = config_.obs.registry;
  obs::Profiler* const prof = config_.obs.profiler;
  const bool sim_spans = config_.obs.sim_spans && tracer != nullptr;
  // Serial phases (setup, merge, aggregation) profile on this thread; the
  // dispatch and eval lambdas install their own guards because pool workers
  // have no profiler context of their own.
  obs::ProfilerThreadGuard main_profiler_guard(prof);

  // Routes kernel-layer macro-tile parallelism to the engine pool for this
  // run's serial phases (FlConfig::threaded_gemm).  Client dispatch is
  // unaffected: GEMMs issued from pool workers always run serially
  // (tensor/gemm.h), so per-client training keeps its one-thread contract.
  struct GemmPoolScope {
    bool active;
    core::ThreadPool* prev;
    explicit GemmPoolScope(core::ThreadPool* pool)
        : active(pool != nullptr),
          prev(active ? kernels::SetGemmThreadPool(pool) : nullptr) {}
    ~GemmPoolScope() {
      if (active) kernels::SetGemmThreadPool(prev);
    }
  } gemm_pool_scope(config_.threaded_gemm ? pool_.get() : nullptr);

  // All counters are registered serially up front so concurrent Add calls
  // from the dispatch phase only ever touch pre-sized per-thread sinks.
  struct CounterIds {
    obs::Registry::CounterId selected{}, offline{}, dropped{}, trained{},
        bytes_up{}, bytes_down{}, train_mflops{}, pool_tasks{}, gemm_flops{},
        gemm_flops_bf16{}, gemm_flops_int8{};
  } ids;
  // Histograms follow the same rule: registered serially, observed from
  // any thread, merged at the barrier.  client_wall_us is wall-clock (its
  // quantiles vary run to run); bytes_up / train_mflops distributions are
  // pure functions of the cost model and stay thread-count independent.
  struct HistIds {
    obs::Registry::HistogramId client_wall_us{}, client_bytes_up{},
        client_train_mflops{};
  } hids;
  // Tier-keyed rollups (DESIGN.md §5j): every client-scoped counter and
  // histogram also accumulates into a `<base>@<tier>` twin keyed by the
  // client's device tier.  Tiers and ids are fixed serially here from the
  // assignment table, so the dispatch phase only ever touches pre-registered
  // ids; per-thread sinks + barrier merge keep the per-tier totals exactly
  // as thread-count independent as the untiered ones.
  struct TierIds {
    std::string name;
    obs::Registry::CounterId selected{}, offline{}, dropped{}, trained{},
        bytes_up{}, bytes_down{}, train_mflops{};
    obs::Registry::HistogramId client_wall_us{}, client_bytes_up{},
        client_train_mflops{};
  };
  std::vector<TierIds> tiers;
  // Per client: index into `tiers`, and the tier's name for ClientRow.
  std::vector<std::size_t> client_tier;
  // mhb-obs-phase: serial — pre-dispatch registration and phase-1 counting.
  if (reg != nullptr) {
    ids.selected = reg->Counter("clients_selected");
    ids.offline = reg->Counter("clients_offline");
    ids.dropped = reg->Counter("clients_dropped");
    ids.trained = reg->Counter("clients_trained");
    ids.bytes_up = reg->Counter("bytes_up");
    ids.bytes_down = reg->Counter("bytes_down");
    ids.train_mflops = reg->Counter("train_mflops");
    ids.pool_tasks = reg->Counter("pool_tasks");
    ids.gemm_flops = reg->Counter("gemm_flops");
    // Per-precision kernel work (tensor/gemm.h): reduced-precision eval
    // flops count into their own totals, so the registry separates f32
    // training work from bf16/int8 eval work.  Zero when eval_precision
    // is f32.
    ids.gemm_flops_bf16 = reg->Counter("gemm_flops_bf16");
    ids.gemm_flops_int8 = reg->Counter("gemm_flops_int8");
    hids.client_wall_us = reg->Histogram("client_wall_us");
    hids.client_bytes_up = reg->Histogram("client_bytes_up");
    hids.client_train_mflops = reg->Histogram("client_train_mflops");
    client_tier.reserve(ctx_.assignments.size());
    for (const auto& a : ctx_.assignments) {
      const std::string tier =
          a.system.device_tier.empty() ? "untiered" : a.system.device_tier;
      std::size_t t = 0;
      for (; t < tiers.size(); ++t) {
        if (tiers[t].name == tier) break;
      }
      if (t == tiers.size()) {
        TierIds ti;
        ti.name = tier;
        ti.selected = reg->Counter("clients_selected@" + tier);
        ti.offline = reg->Counter("clients_offline@" + tier);
        ti.dropped = reg->Counter("clients_dropped@" + tier);
        ti.trained = reg->Counter("clients_trained@" + tier);
        ti.bytes_up = reg->Counter("bytes_up@" + tier);
        ti.bytes_down = reg->Counter("bytes_down@" + tier);
        ti.train_mflops = reg->Counter("train_mflops@" + tier);
        ti.client_wall_us = reg->Histogram("client_wall_us@" + tier);
        ti.client_bytes_up = reg->Histogram("client_bytes_up@" + tier);
        ti.client_train_mflops =
            reg->Histogram("client_train_mflops@" + tier);
        tiers.push_back(std::move(ti));
      }
      client_tier.push_back(t);
    }
  }
  core::ThreadPool::Stats pool_base =
      pool_ != nullptr ? pool_->stats() : core::ThreadPool::Stats{};
  // Totals at Run() entry: snapshots export per-run deltas relative to
  // these so registries shared across runs never double-count on resume.
  if (reg != nullptr) {
    obs_base_counters_ = reg->Totals();
    obs_base_hists_ = reg->Histograms();
  }

  Rng setup_rng = rng_.Fork(1);
  {
    obs::Span span(tracer, "setup", "fl");
    algorithm_.Setup(ctx_, setup_rng);
  }

  RunResult result;
  double sim_time = 0.0;
  int start_round = 0;
  if (!config_.resume_path.empty()) {
    obs::Span span(tracer, "restore", "fl");
    start_round = RestoreCheckpoint(result, sim_time);
  }
  // Kernel-layer observability: the GEMM flop count is an exact integer
  // independent of thread count (published as per-round counter deltas);
  // the scratch high-water mark is a gauge because it does depend on how
  // many arenas are live.  Captured after Setup + restore: restore-time
  // shape probes must not count — their flops already live in the
  // snapshot's imported counter deltas.
  std::uint64_t gemm_base = kernels::TotalGemmFlops();
  std::uint64_t gemm_bf16_base = kernels::TotalGemmFlopsBf16();
  std::uint64_t gemm_int8_base = kernels::TotalGemmFlopsInt8();
  const int num_clients = ctx_.num_clients();
  const int sample_count = std::max(
      config_.min_sampled,
      static_cast<int>(std::lround(config_.sample_fraction * num_clients)));

  auto evaluate_global = [&]() {
    obs::Span span(tracer, "eval_global", "eval");
    obs::ProfileScope profile_scope("eval_global");
    // Eval-side matmuls may run reduced-precision (FlConfig::eval_precision);
    // the guard is thread-local and scope-bound, so training is untouched.
    kernels::EvalPrecisionGuard precision(config_.eval_precision);
    return EvaluateAccuracy(
        [&](const Tensor& x) { return algorithm_.GlobalLogits(x); },
        ctx_.task->test, config_.eval_max_samples);
  };

  for (int round = start_round; round < config_.rounds; ++round) {
    const auto round_wall_start = std::chrono::steady_clock::now();
    const double round_sim_start = sim_time;
    obs::Span round_span(tracer, "round", "fl");
    round_span.Arg("round", static_cast<std::int64_t>(round));

    Rng round_rng = rng_.Fork(static_cast<std::uint64_t>(round) + 100);
    const std::vector<int> sampled = round_rng.SampleWithoutReplacement(
        num_clients, std::min(sample_count, num_clients));

    // Phase 1 (serial): every order-sensitive random decision — availability
    // draws, straggler drops, per-client Rng forks — is made here, in the
    // sampled order, consuming round_rng exactly as the serial engine does.
    // Only after the full stream is fixed may clients run concurrently.
    obs::Span select_span(tracer, "select", "fl");
    std::vector<Participant> participants;
    participants.reserve(sampled.size());
    // Per-client timeline rows, built serially for every sampled client
    // (dropped ones included, with their drop reason).  Each participant
    // remembers its row index so the dispatch lambda can write the measured
    // wall time into its own slot without synchronization.
    std::vector<obs::Registry::ClientRow> client_rows;
    std::vector<std::size_t> participant_row;
    // Per participant: index into `tiers`, for the dispatch lambda's
    // tier-keyed increments (pre-registered ids, no locks on the hot path).
    std::vector<std::size_t> participant_tier;
    // Per-tier selected/offline/dropped tallies for this round, added once
    // after the loop (serial, like the untiered bulk Adds below).
    std::vector<std::int64_t> tier_selected(tiers.size(), 0);
    std::vector<std::int64_t> tier_offline(tiers.size(), 0);
    std::vector<std::int64_t> tier_dropped(tiers.size(), 0);
    double round_time = 0.0;
    int round_offline = 0;
    int round_dropped = 0;
    for (int c : sampled) {
      const auto& sys = ctx_.assignments[static_cast<std::size_t>(c)].system;
      const double client_time = sys.compute_time_s + sys.comm_time_s;
      ++result.total_participations;
      std::size_t row_idx = 0;
      std::size_t tier_idx = 0;
      if (reg != nullptr) {
        tier_idx = client_tier[static_cast<std::size_t>(c)];
        ++tier_selected[tier_idx];
        row_idx = client_rows.size();
        obs::Registry::ClientRow row;
        row.run = algorithm_.name();
        row.round = round;
        row.client = c;
        row.device_tier = tiers[tier_idx].name;
        row.sim_compute_s = sys.compute_time_s;
        row.sim_comm_s = sys.comm_time_s;
        row.memory_mb = sys.memory_mb;
        client_rows.push_back(std::move(row));
      }
      if (sys.availability < 1.0 &&
          round_rng.Uniform() >= sys.availability) {
        // State heterogeneity: the device is offline this round.
        ++result.offline_skips;
        ++round_offline;
        if (reg != nullptr) {
          client_rows[row_idx].drop_reason = "offline";
          ++tier_offline[tier_idx];
        }
        continue;
      }
      if (config_.round_deadline_s > 0 &&
          client_time > config_.round_deadline_s) {
        // Straggler: the synchronous round closes without this client.
        ++result.straggler_drops;
        ++round_dropped;
        if (reg != nullptr) {
          client_rows[row_idx].drop_reason = "straggler";
          ++tier_dropped[tier_idx];
        }
        continue;
      }
      if (reg != nullptr) {
        auto& row = client_rows[row_idx];
        row.bytes_up = static_cast<std::int64_t>(sys.comm_mb * 5e5);
        row.bytes_down = static_cast<std::int64_t>(sys.comm_mb * 5e5);
        row.train_mflops = static_cast<std::int64_t>(sys.train_gflops * 1e3);
        participant_row.push_back(row_idx);
        participant_tier.push_back(tier_idx);
      }
      participants.push_back(
          {c, round_rng.Fork(static_cast<std::uint64_t>(c))});
      round_time = std::max(round_time, client_time);
    }
    if (config_.round_deadline_s > 0) {
      // The server waits until the deadline regardless of who made it.
      round_time = config_.round_deadline_s;
    }
    select_span.End();
    if (reg != nullptr) {
      reg->Add(ids.selected, static_cast<std::int64_t>(sampled.size()));
      reg->Add(ids.offline, round_offline);
      reg->Add(ids.dropped, round_dropped);
      for (std::size_t t = 0; t < tiers.size(); ++t) {
        if (tier_selected[t] != 0) reg->Add(tiers[t].selected, tier_selected[t]);
        if (tier_offline[t] != 0) reg->Add(tiers[t].offline, tier_offline[t]);
        if (tier_dropped[t] != 0) reg->Add(tiers[t].dropped, tier_dropped[t]);
      }
    }

    std::vector<int> participant_ids;
    participant_ids.reserve(participants.size());
    for (const auto& p : participants) participant_ids.push_back(p.client_id);
    algorithm_.BeginRound(round, participant_ids);

    // Phase 2: dispatch.  Each participant trains with the Rng fixed above;
    // algorithms stage uploads per client and merge them in participant
    // order inside FinishRound.  Counter increments land in per-thread
    // sinks; integer addition commutes, so totals match the serial run.
    obs::Span dispatch_span(tracer, "dispatch", "fl");
    dispatch_span.Arg("participants",
                      static_cast<std::int64_t>(participants.size()));
    // mhb-obs-phase: parallel — per-thread sinks only inside the dispatch.
    core::ParallelFor(pool_.get(), participants.size(), [&](std::size_t i) {
      const int client_id = participants[i].client_id;
      const auto& sys =
          ctx_.assignments[static_cast<std::size_t>(client_id)].system;
      obs::Span client_span(tracer, "client", "client");
      client_span.Arg("client", static_cast<std::int64_t>(client_id));
      client_span.Arg("bytes_up", sys.comm_mb * 5e5);
      client_span.Arg("bytes_down", sys.comm_mb * 5e5);
      client_span.Arg("train_gflops", sys.train_gflops);
      const auto client_wall_start = std::chrono::steady_clock::now();
      {
        // Pool workers have no profiler installed; the guard scopes it to
        // this task so each client's op tree lands in the worker's sink.
        obs::ProfilerThreadGuard profiler_guard(prof);
        obs::ProfileScope profile_scope("client");
        algorithm_.RunClient(client_id, round, participants[i].rng);
      }
      const double client_wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - client_wall_start)
              .count();
      if (reg != nullptr) {
        // The cost model charges comm_mb for the full up+down payload.
        const auto bytes = static_cast<std::int64_t>(sys.comm_mb * 5e5);
        const auto mflops =
            static_cast<std::int64_t>(sys.train_gflops * 1e3);
        const auto wall_us =
            static_cast<std::int64_t>(client_wall_ms * 1e3);
        reg->Add(ids.bytes_up, bytes);
        reg->Add(ids.bytes_down, bytes);
        reg->Add(ids.train_mflops, mflops);
        reg->Add(ids.trained, 1);
        reg->Observe(hids.client_wall_us, wall_us);
        reg->Observe(hids.client_bytes_up, bytes);
        reg->Observe(hids.client_train_mflops, mflops);
        const TierIds& tier = tiers[participant_tier[i]];
        reg->Add(tier.bytes_up, bytes);
        reg->Add(tier.bytes_down, bytes);
        reg->Add(tier.train_mflops, mflops);
        reg->Add(tier.trained, 1);
        reg->Observe(tier.client_wall_us, wall_us);
        reg->Observe(tier.client_bytes_up, bytes);
        reg->Observe(tier.client_train_mflops, mflops);
        client_rows[participant_row[i]].wall_ms = client_wall_ms;
      }
    });
    dispatch_span.End();
    // mhb-obs-phase: serial — dispatch joined; barrier merge and gauges.

    {
      obs::Span merge_span(tracer, "merge", "fl");
      algorithm_.FinishRound(round, round_rng);
    }
    sim_time += round_time;

    if (sim_spans) {
      // Simulated-clock track: one lane per client, timestamps in simulated
      // seconds.  Lane -1 carries the round envelope.
      tracer->RecordSim("round " + std::to_string(round), "sim",
                        round_sim_start, round_time, -1);
      for (const auto& p : participants) {
        const auto& sys =
            ctx_.assignments[static_cast<std::size_t>(p.client_id)].system;
        tracer->RecordSim(
            "compute", "sim", round_sim_start, sys.compute_time_s,
            p.client_id, {{"round", std::to_string(round)}});
        tracer->RecordSim(
            "comm", "sim", round_sim_start + sys.compute_time_s,
            sys.comm_time_s, p.client_id,
            {{"round", std::to_string(round)}});
      }
    }

    bool evaluated = false;
    double eval_acc = 0.0;
    if ((round + 1) % config_.eval_every == 0 ||
        round + 1 == config_.rounds) {
      eval_acc = evaluate_global();
      evaluated = true;
      result.curve.push_back({round, sim_time, eval_acc});
      MHB_LOG_DEBUG << algorithm_.name() << " round " << round
                    << " acc=" << eval_acc << " t=" << sim_time;
    }
    round_span.End();

    if (reg != nullptr) {
      // Round barrier: merge per-thread sinks and snapshot this round's
      // counter deltas + gauges into a manifest row.
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - round_wall_start)
              .count();
      reg->SetGauge("wall_ms", wall_ms);
      reg->SetGauge("round_time_s", round_time);
      reg->SetGauge("sim_time_s", sim_time);
      if (evaluated) reg->SetGauge("global_acc", eval_acc);
      const std::uint64_t gemm_now = kernels::TotalGemmFlops();
      reg->Add(ids.gemm_flops,
               static_cast<std::int64_t>(gemm_now - gemm_base));
      gemm_base = gemm_now;
      const std::uint64_t gemm_bf16_now = kernels::TotalGemmFlopsBf16();
      reg->Add(ids.gemm_flops_bf16,
               static_cast<std::int64_t>(gemm_bf16_now - gemm_bf16_base));
      gemm_bf16_base = gemm_bf16_now;
      const std::uint64_t gemm_int8_now = kernels::TotalGemmFlopsInt8();
      reg->Add(ids.gemm_flops_int8,
               static_cast<std::int64_t>(gemm_int8_now - gemm_int8_base));
      gemm_int8_base = gemm_int8_now;
      reg->SetGauge("scratch_bytes_peak",
                    static_cast<double>(kernels::ScratchPeakBytesAllThreads()));
      if (pool_ != nullptr) {
        const core::ThreadPool::Stats now = pool_->stats();
        reg->Add(ids.pool_tasks, static_cast<std::int64_t>(
                                     now.tasks_executed -
                                     pool_base.tasks_executed));
        reg->SetGauge("pool_idle_ms",
                      static_cast<double>(now.idle_ns - pool_base.idle_ns) /
                          1e6);
        pool_base = now;
      }
      for (auto& row : client_rows) reg->AddClientRow(std::move(row));
      reg->EndRound(algorithm_.name(), round);
      MHB_LOG_TRACE << algorithm_.name() << " round " << round
                    << " participants=" << participants.size()
                    << " offline=" << round_offline
                    << " dropped=" << round_dropped << " wall_ms=" << wall_ms;
    }

    // Divergence ledger, also after EndRound: the counter component must
    // hash the merged totals, not a mid-round per-thread view.  Read-only
    // over engine state, so auditing cannot perturb the run it audits.
    if (config_.obs.det_audit != nullptr) {
      AuditRound(round);
    }

    // Live telemetry heartbeat, after EndRound so a poller that sees round
    // N in /status.json also sees round N's published totals.  Strictly
    // one-way: the exporter records progress, nothing flows back.
    if (config_.obs.live != nullptr) {
      config_.obs.live->NotifyProgress(round, sim_time);
    }

    if (config_.checkpoint_every > 0 &&
        (round + 1) % config_.checkpoint_every == 0) {
      // After the round barrier: all sinks merged (EndRound above when a
      // registry is attached), no client work in flight.
      obs::Span ckpt_span(tracer, "checkpoint", "fl");
      WriteCheckpoint(round + 1, sim_time, result);
    }
  }

  result.total_sim_time_s = sim_time;
  result.final_accuracy =
      result.curve.empty() ? evaluate_global() : result.curve.back().global_acc;

  // Stability: every client's personalized model on the shared test set.
  // Clients are independent given the final global state, so the loop
  // parallelizes; each client writes only its own slot.
  obs::Span stability_span(tracer, "stability_eval", "eval");
  algorithm_.PrepareEvaluation();
  result.client_accuracies.assign(static_cast<std::size_t>(num_clients), 0.0);
  core::ParallelFor(
      pool_.get(), static_cast<std::size_t>(num_clients), [&](std::size_t c) {
        obs::Span span(tracer, "client_eval", "eval");
        span.Arg("client", static_cast<std::int64_t>(c));
        obs::ProfilerThreadGuard profiler_guard(prof);
        obs::ProfileScope profile_scope("client_eval");
        kernels::EvalPrecisionGuard precision(config_.eval_precision);
        result.client_accuracies[c] = EvaluateAccuracy(
            [&](const Tensor& x) {
              return algorithm_.ClientLogits(static_cast<int>(c), x);
            },
            ctx_.task->test, config_.stability_max_samples);
      });
  stability_span.End();
  if (reg != nullptr) reg->FlushThreadSinks();
  return result;
}

void FlEngine::WriteCheckpoint(int next_round, double sim_time,
                               const RunResult& partial) const {
  SnapshotWriter w;

  // "meta": the config identity the snapshot was produced under.  Restore
  // hard-checks the fields that change the partition / RNG stream / local
  // objective and warns on the rest (see RestoreCheckpoint).
  w.BeginSection("meta");
  w.WriteString(algorithm_.name());
  w.WriteU64(config_.seed);
  w.WriteI32(ctx_.num_clients());
  w.WriteI32(config_.rounds);
  w.WriteF64(config_.sample_fraction);
  w.WriteI32(config_.min_sampled);
  w.WriteI32(config_.local_epochs);
  w.WriteI32(config_.batch_size);
  w.WriteF64(config_.lr);
  w.WriteF64(config_.momentum);
  w.WriteF64(config_.weight_decay);
  w.WriteF64(config_.grad_clip);
  w.WriteU8(static_cast<std::uint8_t>(config_.optimizer));
  w.WriteU8(static_cast<std::uint8_t>(config_.lr_schedule));
  w.WriteI32(config_.lr_step);
  w.WriteF64(config_.lr_gamma);
  w.WriteF64(config_.lr_cosine_floor);
  w.WriteF64(config_.round_deadline_s);
  w.WriteI32(config_.eval_every);
  w.WriteI32(config_.eval_max_samples);
  w.WriteI32(config_.stability_max_samples);
  w.WriteU8(static_cast<std::uint8_t>(config_.partition));
  w.WriteF64(config_.dirichlet_alpha);
  w.EndSection();

  // "engine": round position, simulated clock, the partial result, and the
  // engine RNG stream (restoring it replays every later Fork identically).
  w.BeginSection("engine");
  w.WriteI32(next_round);
  w.WriteF64(sim_time);
  w.WriteI64(partial.straggler_drops);
  w.WriteI64(partial.offline_skips);
  w.WriteI64(partial.total_participations);
  w.WriteU32(static_cast<std::uint32_t>(partial.curve.size()));
  for (const auto& rec : partial.curve) {
    w.WriteI32(rec.round);
    w.WriteF64(rec.sim_time_s);
    w.WriteF64(rec.global_acc);
  }
  const Rng::State rng_state = rng_.SaveState();
  w.WriteU64(rng_state.state);
  w.WriteU8(rng_state.have_cached_gaussian ? 1 : 0);
  w.WriteF64(rng_state.cached_gaussian);
  w.EndSection();

  w.BeginSection("algorithm");
  algorithm_.SaveState(w);
  w.EndSection();

  // "obs": this run's counter/histogram contributions so far, as deltas
  // against the totals captured at Run() entry (the registry may be shared
  // with earlier runs).  Histogram bucket counts and sums subtract exactly;
  // min/max are taken from the merged totals, which is exact for the
  // resume contract because min/max are idempotent over set unions.
  obs::Registry* const reg = config_.obs.registry;
  if (reg != nullptr) {
    w.BeginSection("obs");
    const auto counters = reg->Totals();
    std::map<std::string, std::int64_t> counter_deltas;
    for (const auto& [name, total] : counters) {
      auto it = obs_base_counters_.find(name);
      const std::int64_t base = it == obs_base_counters_.end() ? 0 : it->second;
      // Zero deltas are written too: the registered-name set is fixed
      // serially, so including them keeps the section size — and therefore
      // the checkpoint_bytes counter — independent of --threads (a serial
      // run's pool_tasks delta is 0, a pooled run's is not).  Importing a
      // zero delta is a no-op.
      counter_deltas[name] = total - base;
    }
    w.WriteU32(static_cast<std::uint32_t>(counter_deltas.size()));
    for (const auto& [name, delta] : counter_deltas) {
      w.WriteString(name);
      w.WriteI64(delta);
    }
    const auto hists = reg->Histograms();
    std::map<std::string, obs::Registry::HistogramData> hist_deltas;
    for (const auto& [name, data] : hists) {
      obs::Registry::HistogramData delta = data;
      auto it = obs_base_hists_.find(name);
      if (it != obs_base_hists_.end()) {
        for (std::size_t b = 0; b < delta.buckets.size(); ++b) {
          delta.buckets[b] -= it->second.buckets[b];
        }
        delta.sum -= it->second.sum;
      }
      if (delta.count() != 0) hist_deltas[name] = delta;
    }
    w.WriteU32(static_cast<std::uint32_t>(hist_deltas.size()));
    for (const auto& [name, delta] : hist_deltas) {
      w.WriteString(name);
      for (const std::int64_t b : delta.buckets) w.WriteI64(b);
      w.WriteI64(delta.sum);
      w.WriteI64(delta.min);
      w.WriteI64(delta.max);
    }
    w.EndSection();
  }

  std::filesystem::create_directories(config_.checkpoint_dir);
  std::string num = std::to_string(next_round);
  if (num.size() < 6) num.insert(0, 6 - num.size(), '0');
  const std::string path =
      config_.checkpoint_dir + "/round_" + num + ".mhbsnap";
  w.WriteFile(path, &config_.obs);
  if (config_.obs.live != nullptr) {
    config_.obs.live->NotifyCheckpoint(next_round, path);
  }
  MHB_LOG_INFO << algorithm_.name() << " checkpoint @round " << next_round
               << " -> " << path;
}

void FlEngine::AuditRound(int round) const {
  obs::DetAuditor* const audit = config_.obs.det_audit;
  std::vector<std::pair<std::string, std::uint64_t>> components;
  {
    // Root RNG stream: every later serial Fork (sampling, per-client
    // streams) depends on it, so it diverges first when a draw leaks into
    // the parallel phase.
    obs::DetHash h;
    const Rng::State s = rng_.SaveState();
    h.UpdateU64(s.state);
    h.UpdateU64(s.have_cached_gaussian ? 1 : 0);
    h.UpdateF64(s.cached_gaussian);
    components.emplace_back("rng", h.value());
  }
  {
    // Model parameters + algorithm server state: SaveState serializes the
    // global store bytes per parameter store plus each algorithm's extra
    // state, so this is the "did aggregation produce the same bits"
    // component.
    SnapshotWriter w;
    w.BeginSection("algorithm");
    algorithm_.SaveState(w);
    w.EndSection();
    const std::vector<std::uint8_t> bytes = w.Finish();
    obs::DetHash h;
    h.Update(bytes.data(), bytes.size());
    components.emplace_back("model", h.value());
  }
  // Counter / histogram totals after the barrier merge, minus the metrics
  // that are run-dependent by design (wall times, pool scheduling,
  // checkpoint I/O) — the same subset the determinism sweeps compare.
  obs::DetHash hc;
  obs::DetHash hh;
  obs::Registry* const reg = config_.obs.registry;
  if (reg != nullptr) {
    for (const auto& [name, total] : reg->Totals()) {
      if (!obs::DetAuditor::AuditableMetric(name)) continue;
      hc.UpdateString(name);
      hc.UpdateI64(total);
    }
    for (const auto& [name, data] : reg->Histograms()) {
      if (!obs::DetAuditor::AuditableMetric(name)) continue;
      hh.UpdateString(name);
      for (const std::int64_t b : data.buckets) hh.UpdateI64(b);
      hh.UpdateI64(data.sum);
      hh.UpdateI64(data.min);
      hh.UpdateI64(data.max);
    }
  }
  components.emplace_back("counters", hc.value());
  components.emplace_back("hists", hh.value());
  audit->RecordRound(round, std::move(components));
}

int FlEngine::RestoreCheckpoint(RunResult& result, double& sim_time) {
  SnapshotReader r =
      SnapshotReader::FromFile(config_.resume_path, &config_.obs);

  r.EnterSection("meta");
  // Hard identity checks: anything that changes the data partition, the
  // RNG stream consumption pattern, or the local objective makes the saved
  // state meaningless to resume from.
  const std::string saved_algorithm = r.ReadString();
  MHB_CHECK_EQ(saved_algorithm, algorithm_.name())
      << "snapshot was written by a different algorithm";
  const std::uint64_t saved_seed = r.ReadU64();
  MHB_CHECK_EQ(saved_seed, config_.seed) << "snapshot seed mismatch";
  const int saved_clients = r.ReadI32();
  MHB_CHECK_EQ(saved_clients, ctx_.num_clients())
      << "snapshot client-count mismatch";
  const int saved_rounds = r.ReadI32();
  const double saved_sample_fraction = r.ReadF64();
  const int saved_min_sampled = r.ReadI32();
  const int saved_local_epochs = r.ReadI32();
  MHB_CHECK_EQ(saved_local_epochs, config_.local_epochs)
      << "snapshot local_epochs mismatch";
  const int saved_batch = r.ReadI32();
  MHB_CHECK_EQ(saved_batch, config_.batch_size)
      << "snapshot batch_size mismatch";
  const double saved_lr = r.ReadF64();
  const double saved_momentum = r.ReadF64();
  const double saved_weight_decay = r.ReadF64();
  const double saved_grad_clip = r.ReadF64();
  const auto saved_optimizer = static_cast<nn::OptimizerKind>(r.ReadU8());
  MHB_CHECK(saved_optimizer == config_.optimizer)
      << "snapshot optimizer mismatch";
  const auto saved_schedule = static_cast<LrScheduleKind>(r.ReadU8());
  const int saved_lr_step = r.ReadI32();
  const double saved_lr_gamma = r.ReadF64();
  const double saved_lr_floor = r.ReadF64();
  const double saved_deadline = r.ReadF64();
  const int saved_eval_every = r.ReadI32();
  const int saved_eval_max = r.ReadI32();
  const int saved_stability_max = r.ReadI32();
  const auto saved_partition = static_cast<PartitionKind>(r.ReadU8());
  MHB_CHECK(saved_partition == config_.partition)
      << "snapshot partition kind mismatch";
  const double saved_alpha = r.ReadF64();
  MHB_CHECK_EQ(saved_alpha, config_.dirichlet_alpha)
      << "snapshot dirichlet_alpha mismatch";
  r.ExpectSectionEnd();
  // Soft checks: these may legitimately change mid-campaign (warm starts,
  // constraint-switch studies) — the resumed run is then a new experiment,
  // not a bit-identical continuation, so say so loudly.
  if (saved_rounds != config_.rounds) {
    MHB_LOG_WARN << "resume: rounds changed (" << saved_rounds << " -> "
                 << config_.rounds << ")";
  }
  if (config_.lr_schedule == LrScheduleKind::kCosine) {
    // Cosine multipliers depend on the horizon; a changed horizon silently
    // re-shapes every remaining round's learning rate.
    MHB_CHECK_EQ(saved_rounds, config_.rounds)
        << "cosine schedule: cannot resume with a changed round count";
  }
  if (saved_sample_fraction != config_.sample_fraction ||
      saved_min_sampled != config_.min_sampled) {
    MHB_LOG_WARN << "resume: sampling config changed";
  }
  if (saved_lr != config_.lr || saved_momentum != config_.momentum ||
      saved_weight_decay != config_.weight_decay ||
      saved_grad_clip != config_.grad_clip ||
      saved_schedule != config_.lr_schedule ||
      saved_lr_step != config_.lr_step ||
      saved_lr_gamma != config_.lr_gamma ||
      saved_lr_floor != config_.lr_cosine_floor) {
    MHB_LOG_WARN << "resume: optimizer/schedule hyperparameters changed";
  }
  if (saved_deadline != config_.round_deadline_s) {
    MHB_LOG_WARN << "resume: round deadline changed (" << saved_deadline
                 << " -> " << config_.round_deadline_s << ")";
  }
  if (saved_eval_every != config_.eval_every ||
      saved_eval_max != config_.eval_max_samples ||
      saved_stability_max != config_.stability_max_samples) {
    MHB_LOG_WARN << "resume: evaluation config changed";
  }

  r.EnterSection("engine");
  const int next_round = r.ReadI32();
  MHB_CHECK_LE(next_round, config_.rounds)
      << "snapshot is past the configured round count";
  sim_time = r.ReadF64();
  result.straggler_drops = static_cast<int>(r.ReadI64());
  result.offline_skips = static_cast<int>(r.ReadI64());
  result.total_participations = static_cast<int>(r.ReadI64());
  const std::uint32_t curve_len = r.ReadU32();
  result.curve.clear();
  result.curve.reserve(curve_len);
  for (std::uint32_t i = 0; i < curve_len; ++i) {
    RoundRecord rec;
    rec.round = r.ReadI32();
    rec.sim_time_s = r.ReadF64();
    rec.global_acc = r.ReadF64();
    result.curve.push_back(rec);
  }
  Rng::State rng_state;
  rng_state.state = r.ReadU64();
  rng_state.have_cached_gaussian = r.ReadU8() != 0;
  rng_state.cached_gaussian = r.ReadF64();
  rng_.RestoreState(rng_state);
  r.ExpectSectionEnd();

  r.EnterSection("algorithm");
  algorithm_.LoadState(r);
  r.ExpectSectionEnd();

  obs::Registry* const reg = config_.obs.registry;
  if (r.HasSection("obs") && reg != nullptr) {
    r.EnterSection("obs");
    std::map<std::string, std::int64_t> counters;
    const std::uint32_t ncounters = r.ReadU32();
    for (std::uint32_t i = 0; i < ncounters; ++i) {
      const std::string name = r.ReadString();
      counters[name] = r.ReadI64();
    }
    std::map<std::string, obs::Registry::HistogramData> hists;
    const std::uint32_t nhists = r.ReadU32();
    for (std::uint32_t i = 0; i < nhists; ++i) {
      const std::string name = r.ReadString();
      obs::Registry::HistogramData data;
      for (std::size_t b = 0; b < data.buckets.size(); ++b) {
        data.buckets[b] = r.ReadI64();
      }
      data.sum = r.ReadI64();
      data.min = r.ReadI64();
      data.max = r.ReadI64();
      hists[name] = data;
    }
    r.ExpectSectionEnd();
    reg->ImportTotals(counters, hists);
  }

  MHB_LOG_INFO << algorithm_.name() << " resumed from " << config_.resume_path
               << " @round " << next_round;
  return next_round;
}

}  // namespace mhbench::fl
