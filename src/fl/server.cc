#include "fl/server.h"

namespace mhbench::fl {

GlobalModel::GlobalModel(models::FamilyPtr family, Rng& init_rng)
    : family_(std::move(family)) {
  MHB_CHECK(family_ != nullptr);
  models::BuildSpec spec;
  spec.multi_head = true;  // the store must hold every head any client uses
  built_ = family_->Build(spec, init_rng);
  store_ = ParamStore::FromModule(*built_.net);
}

void GlobalModel::Sync() { store_.LoadInto(*built_.net, built_.mapping); }

Tensor GlobalModel::Logits(const Tensor& x) {
  Sync();
  return built_.net->Forward(x, false);
}

Tensor GlobalModel::EnsembleLogits(const Tensor& x) {
  Sync();
  auto logits = built_.trunk().ForwardHeads(x, false);
  Tensor mean = logits.front();
  for (std::size_t h = 1; h < logits.size(); ++h) {
    mean.AddInPlace(logits[h]);
  }
  mean.Scale(1.0f / static_cast<Scalar>(logits.size()));
  return mean;
}

models::TrunkModel& GlobalModel::SyncedTrunk() {
  Sync();
  return built_.trunk();
}

}  // namespace mhbench::fl
