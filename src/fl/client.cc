#include "fl/client.h"

#include "core/error.h"
#include "data/loader.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/profile.h"
#include "tensor/scratch.h"

namespace mhbench::fl {

std::vector<ClientAssignment> UniformCapacityAssignments(
    int num_clients, const std::vector<double>& capacities) {
  MHB_CHECK_GT(num_clients, 0);
  MHB_CHECK(!capacities.empty());
  std::vector<ClientAssignment> out(static_cast<std::size_t>(num_clients));
  for (int i = 0; i < num_clients; ++i) {
    out[static_cast<std::size_t>(i)].capacity =
        capacities[static_cast<std::size_t>(i) % capacities.size()];
  }
  return out;
}

double TrainLocal(nn::Module& model, const data::Dataset& shard,
                  const LocalTrainOptions& options, Rng& rng) {
  MHB_CHECK(!shard.empty());
  obs::ProfileScope train_scope("local_train");
  nn::OptimizerOptions opt_opts;
  opt_opts.kind = options.optimizer;
  opt_opts.lr = options.lr;
  opt_opts.momentum = options.momentum;
  opt_opts.weight_decay = options.weight_decay;
  const std::unique_ptr<nn::Optimizer> opt = nn::MakeOptimizer(model, opt_opts);

  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    data::BatchIterator batches(shard, options.batch_size, rng);
    Tensor x;
    std::vector<int> y;
    double loss_sum = 0.0;
    int batch_count = 0;
    while (batches.Next(x, y)) {
      // Rewind this thread's scratch arena: every kernel temporary from the
      // previous step is dead here, so the step reuses the same storage.
      kernels::ResetThreadScratch();
      opt->ZeroGrad();
      Tensor grad;
      {
        obs::ProfileScope fwd_scope("forward");
        const Tensor logits = model.Forward(x, true);
        loss_sum += nn::SoftmaxCrossEntropy(logits, y, grad);
      }
      {
        obs::ProfileScope bwd_scope("backward");
        model.Backward(grad);
      }
      {
        obs::ProfileScope opt_scope("opt_step");
        if (options.grad_clip > 0) opt->ClipGradNorm(options.grad_clip);
        opt->Step();
      }
      ++batch_count;
    }
    last_epoch_loss = loss_sum / std::max(1, batch_count);
  }
  return last_epoch_loss;
}

}  // namespace mhbench::fl
