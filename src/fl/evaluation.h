// Model evaluation helpers.
#pragma once

#include <functional>

#include "data/dataset.h"

namespace mhbench::fl {

// Signature: logits for a feature batch (eval mode).
using LogitsFn = std::function<Tensor(const Tensor&)>;

// Accuracy of `logits_fn` on up to `max_samples` of `dataset` (deterministic
// prefix; the generators already shuffle), evaluated in batches.
double EvaluateAccuracy(const LogitsFn& logits_fn,
                        const data::Dataset& dataset, int max_samples = 0,
                        int batch_size = 64);

}  // namespace mhbench::fl
