#include "fl/param_store.h"

#include <cstring>
#include <fstream>
#include <iterator>

#include "core/error.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"

namespace mhbench::fl {

ParamStore ParamStore::FromModule(nn::Module& module) {
  ParamStore store;
  std::vector<nn::NamedParam> params;
  module.CollectParams("", params);
  for (auto& p : params) {
    MHB_CHECK(!store.Has(p.name)) << "duplicate parameter name" << p.name;
    store.params_[p.name] = p.param->value;
  }
  return store;
}

bool ParamStore::Has(const std::string& name) const {
  return params_.count(name) > 0;
}

const Tensor& ParamStore::Get(const std::string& name) const {
  auto it = params_.find(name);
  MHB_CHECK(it != params_.end()) << "unknown parameter" << name;
  return it->second;
}

Tensor& ParamStore::GetMutable(const std::string& name) {
  auto it = params_.find(name);
  MHB_CHECK(it != params_.end()) << "unknown parameter" << name;
  return it->second;
}

void ParamStore::Set(const std::string& name, Tensor value) {
  params_[name] = std::move(value);
}

std::vector<std::string> ParamStore::Names() const {
  std::vector<std::string> names;
  names.reserve(params_.size());
  for (const auto& [name, t] : params_) names.push_back(name);
  return names;
}

std::size_t ParamStore::TotalParams() const {
  std::size_t n = 0;
  for (const auto& [name, t] : params_) n += t.numel();
  return n;
}

std::size_t ParamStore::TotalBytes() const {
  return TotalParams() * sizeof(Scalar);
}

void ParamStore::LoadInto(nn::Module& module,
                          const models::ParamMapping& mapping) const {
  std::vector<nn::NamedParam> params;
  module.CollectParams("", params);
  MHB_CHECK_EQ(params.size(), mapping.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto& slice = mapping[i];
    MHB_CHECK_EQ(params[i].name, slice.name) << "mapping order mismatch";
    const Tensor gathered = ops::GatherDims(Get(slice.name), slice.index);
    MHB_CHECK(gathered.shape() == params[i].param->value.shape())
        << "gathered shape mismatch for" << slice.name;
    params[i].param->value = gathered;
  }
}

void ParamStore::StoreFrom(nn::Module& module) {
  std::vector<nn::NamedParam> params;
  module.CollectParams("", params);
  for (auto& p : params) {
    params_[p.name] = p.param->value;
  }
}

void ParamStore::LoadAll(nn::Module& module) const {
  std::vector<nn::NamedParam> params;
  module.CollectParams("", params);
  for (auto& p : params) {
    const Tensor& value = Get(p.name);  // throws on a missing name
    MHB_CHECK(value.shape() == p.param->value.shape())
        << "restored shape mismatch for" << p.name;
    p.param->value = value;
  }
}

// Checkpoint format: uint32 entry count, then per entry uint32 name length,
// raw name bytes, and a SerializeTensor blob.
std::vector<std::uint8_t> ParamStore::Serialize() const {
  std::vector<std::uint8_t> out;
  auto push = [&](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out.insert(out.end(), b, b + n);
  };
  const std::uint32_t count = static_cast<std::uint32_t>(params_.size());
  push(&count, sizeof(count));
  for (const auto& [name, tensor] : params_) {
    const std::uint32_t len = static_cast<std::uint32_t>(name.size());
    push(&len, sizeof(len));
    push(name.data(), name.size());
    const auto blob = SerializeTensor(tensor);
    out.insert(out.end(), blob.begin(), blob.end());
  }
  return out;
}

ParamStore ParamStore::Deserialize(const std::vector<std::uint8_t>& bytes) {
  std::size_t offset = 0;
  auto read = [&](void* p, std::size_t n) {
    MHB_CHECK_LE(offset + n, bytes.size()) << "truncated checkpoint";
    std::memcpy(p, bytes.data() + offset, n);
    offset += n;
  };
  std::uint32_t count = 0;
  read(&count, sizeof(count));
  ParamStore store;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t len = 0;
    read(&len, sizeof(len));
    MHB_CHECK_LE(len, 4096u) << "implausible parameter name length";
    std::string name(len, '\0');
    read(name.data(), len);
    store.params_[name] = DeserializeTensor(bytes, offset);
  }
  MHB_CHECK_EQ(offset, bytes.size()) << "trailing bytes in checkpoint";
  return store;
}

void ParamStore::SaveFile(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  MHB_CHECK(f.good()) << "cannot open" << path;
  const auto bytes = Serialize();
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  MHB_CHECK(f.good()) << "write failed for" << path;
}

ParamStore ParamStore::LoadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  MHB_CHECK(f.good()) << "cannot open" << path;
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  return Deserialize(bytes);
}

std::size_t ModuleParamBytes(nn::Module& module) {
  return module.NumParams() * sizeof(Scalar);
}

}  // namespace mhbench::fl
