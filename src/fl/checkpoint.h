// Engine-level snapshot subsystem (DESIGN.md §5g).
//
// A snapshot is a versioned little-endian binary file with CRC-checked
// named sections:
//
//   [0]  magic   "MHBSNAP1"                      (8 bytes)
//   [8]  version uint32                          (kSnapshotVersion)
//   [12] count   uint32                          (number of sections)
//   then per section, in write order:
//        uint32 name length, raw name bytes,
//        uint64 payload length, uint32 CRC-32 of the payload,
//        payload bytes
//
// Section payloads are flat streams of the primitives below; every multi-
// byte value is little-endian (the platform already static_asserts a
// little-endian host in tensor/serialize.cc).  The reader validates magic,
// version, section bounds and every CRC up front, and every typed read is
// bounds-checked, so truncated or corrupted snapshots throw `Error`
// instead of resuming from garbage.
//
// Version policy: kSnapshotVersion is bumped on ANY wire-format change —
// there is no in-place migration; a reader rejects every version other
// than its own.  Bit-identical resume across versions is not a supported
// contract, so rejecting loudly beats decoding approximately.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace mhbench::obs {
struct ObsConfig;
}

namespace mhbench::fl {

inline constexpr char kSnapshotMagic[8] = {'M', 'H', 'B', 'S',
                                           'N', 'A', 'P', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum each
// section payload is gated by.
std::uint32_t Crc32(const std::uint8_t* data, std::size_t size);

// Serializes named sections of primitive values into the snapshot wire
// format.  Usage: BeginSection, primitive writes, EndSection (repeat),
// then Finish() or WriteFile().
class SnapshotWriter {
 public:
  void BeginSection(const std::string& name);
  void EndSection();

  void WriteU8(std::uint8_t v);
  void WriteU32(std::uint32_t v);
  void WriteI32(std::int32_t v);
  void WriteU64(std::uint64_t v);
  void WriteI64(std::int64_t v);
  void WriteF64(double v);
  // uint32 length prefix + raw bytes.
  void WriteString(const std::string& s);
  void WriteBytes(const std::vector<std::uint8_t>& bytes);
  // SerializeTensor blob (self-describing; no extra prefix).
  void WriteTensor(const Tensor& t);

  // Assembles header + all finished sections.  The writer stays usable
  // (Finish is const), so tests can snapshot intermediate states.
  std::vector<std::uint8_t> Finish() const;
  // Finish() to `path` via a temp file + rename, so an interrupted write
  // never leaves a half-snapshot under the final name.  With a non-null
  // `obs`, the write is wrapped in a "snapshot_write" tracer span and
  // publishes `checkpoint_writes` / `checkpoint_bytes` /
  // `checkpoint_write_us` counters to the registry (serial barrier phases
  // only — the counters land in the calling thread's sink).  Bytes and
  // write counts are thread-count independent (the resume determinism test
  // asserts it); write_us is wall time and is only asserted non-zero.
  void WriteFile(const std::string& path,
                 const obs::ObsConfig* obs = nullptr) const;

 private:
  void Append(const void* p, std::size_t n);

  bool in_section_ = false;
  std::string section_name_;
  std::vector<std::uint8_t> payload_;  // the open section's payload
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> sections_;
};

// Parses and validates a snapshot, then serves bounds-checked typed reads
// from one section at a time (EnterSection sets the cursor).
class SnapshotReader {
 public:
  // Validates magic, version, section framing and every CRC; throws
  // `Error` on any inconsistency.
  explicit SnapshotReader(std::vector<std::uint8_t> bytes);
  // With a non-null `obs`, the load is wrapped in a "snapshot_read" tracer
  // span and publishes a `checkpoint_read_bytes` counter (serial restore
  // phase only).
  static SnapshotReader FromFile(const std::string& path,
                                 const obs::ObsConfig* obs = nullptr);

  std::uint32_t version() const { return version_; }
  std::vector<std::string> SectionNames() const;  // write order
  bool HasSection(const std::string& name) const;

  // Positions the read cursor at the start of `name` (throws if absent).
  void EnterSection(const std::string& name);
  // Throws unless the entered section was consumed exactly.
  void ExpectSectionEnd() const;

  std::uint8_t ReadU8();
  std::uint32_t ReadU32();
  std::int32_t ReadI32();
  std::uint64_t ReadU64();
  std::int64_t ReadI64();
  double ReadF64();
  std::string ReadString();
  std::vector<std::uint8_t> ReadBytes();
  Tensor ReadTensor();

  // Raw payload of a section (bit-identity comparisons in tests).
  const std::vector<std::uint8_t>& SectionPayload(
      const std::string& name) const;

 private:
  void ReadRaw(void* p, std::size_t n);

  std::uint32_t version_ = 0;
  std::vector<std::string> order_;
  std::map<std::string, std::vector<std::uint8_t>> sections_;
  const std::vector<std::uint8_t>* current_ = nullptr;
  std::size_t cursor_ = 0;
};

}  // namespace mhbench::fl
