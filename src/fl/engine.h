// The federated execution engine: client sampling, local-training dispatch,
// simulated wall clock, and metric collection.  Algorithm behaviour is
// injected through the MhflAlgorithm interface.
#pragma once

#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "data/tasks.h"
#include "fl/client.h"
#include "obs/obs_config.h"
#include "obs/registry.h"
#include "tensor/gemm.h"

namespace mhbench::fl {

class SnapshotWriter;  // fl/checkpoint.h
class SnapshotReader;

enum class PartitionKind { kIid, kDirichlet };

enum class LrScheduleKind { kConstant, kStepDecay, kCosine };

struct FlConfig {
  int rounds = 40;
  double sample_fraction = 0.25;
  int min_sampled = 2;
  int local_epochs = 1;
  int batch_size = 16;
  double lr = 0.05;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  double grad_clip = 5.0;
  // Local optimizer (SGD for the CNN recipes, Adam for transformer tasks).
  nn::OptimizerKind optimizer = nn::OptimizerKind::kSgd;
  // Learning-rate schedule over rounds (applied to `lr`).
  LrScheduleKind lr_schedule = LrScheduleKind::kConstant;
  int lr_step = 50;          // step-decay period (rounds)
  double lr_gamma = 0.5;     // step-decay factor
  double lr_cosine_floor = 0.05;
  // Synchronous-round deadline in simulated seconds: sampled clients whose
  // compute+comm time exceeds it are stragglers — they are dropped from the
  // round and contribute no update (0 disables).  This is the failure mode
  // the paper's constraint cases are designed to prevent.
  double round_deadline_s = 0.0;
  int eval_every = 5;
  int eval_max_samples = 400;
  int stability_max_samples = 200;
  // Used only when the task is not naturally partitioned.
  PartitionKind partition = PartitionKind::kIid;
  double dirichlet_alpha = 0.5;
  std::uint64_t seed = 1;
  // Threads executing client work (local training, stability evaluation).
  // 1 = fully serial (the reference execution).  Any value produces
  // bit-identical RunResults: all order-sensitive randomness is drawn
  // serially before dispatch and updates are merged in dispatch order.
  int num_threads = 1;
  // Routes kernel-layer macro-tile parallelism (tensor/gemm.h) to the
  // engine's worker pool for the run's serial phases — aggregation, global
  // eval — where the single-threaded GEMM otherwise leaves workers idle.
  // Bit-identical on or off and at any thread count: the threaded GEMM's
  // tile ownership map never splits or reorders an accumulation.  No-op
  // when num_threads <= 1 (no pool exists).
  bool threaded_gemm = false;
  // Numeric precision for evaluation-side matmuls (global accuracy +
  // stability eval), installed thread-locally around the eval calls only —
  // training always runs f32.  Reduced precision changes eval *results*
  // (deterministically), so resumed runs must keep the setting; it does
  // not enter the snapshot format.
  kernels::EvalPrecision eval_precision = kernels::EvalPrecision::kF32;
  // Observability hooks (tracer / counter registry); all-null by default,
  // in which case instrumentation reduces to untaken branches.  Collection
  // never feeds back into execution, so enabling it cannot change results.
  obs::ObsConfig obs;
  // Checkpoint/resume (fl/checkpoint.h, DESIGN.md §5g).  checkpoint_every
  // > 0 writes <checkpoint_dir>/round_NNNNNN.mhbsnap after every N-th
  // round barrier, capturing the global store, all per-algorithm state,
  // the engine RNG stream, the round index/curve and the run's obs totals.
  // resume_path restores one such snapshot before the first round; with an
  // otherwise identical config the continued run is bit-identical to the
  // uninterrupted one at any thread count.
  int checkpoint_every = 0;
  std::string checkpoint_dir = "checkpoints";
  std::string resume_path;
};

// Everything an algorithm can see.  Owned by the engine; stable for the
// run's lifetime.
struct FlContext {
  const data::Task* task = nullptr;
  const FlConfig* config = nullptr;
  std::vector<data::Dataset> shards;           // per client
  std::vector<ClientAssignment> assignments;   // per client
  int num_clients() const { return static_cast<int>(shards.size()); }
  // Local training options; the learning rate carries the round's schedule
  // multiplier when `round` is given.
  LocalTrainOptions local_options(int round = -1) const;
  // Schedule multiplier for a round (1.0 for kConstant).
  double LrMultiplier(int round) const;
};

// Algorithm plug-in interface.  One instance per run.
//
// Threading contract: the engine runs each round in two phases.  Phase 1
// (serial) draws every order-sensitive random decision and calls BeginRound
// with the surviving participants in dispatch order.  Phase 2 may invoke
// RunClient concurrently, once per participant, each with a private Rng
// forked serially in phase 1.  Implementations must therefore stage each
// client's upload into a per-client buffer during RunClient and merge the
// buffers in the BeginRound participant order inside FinishRound (serial
// again) — merging in that fixed order is what keeps multi-threaded runs
// bit-identical to serial ones.  RunClient must not mutate state shared
// across clients; lazily-created per-client state must be created in
// BeginRound (or PrepareEvaluation for evaluation-only state).
class MhflAlgorithm {
 public:
  virtual ~MhflAlgorithm() = default;

  virtual std::string name() const = 0;

  // Called once before round 0.  `ctx` outlives the run.
  virtual void Setup(const FlContext& ctx, Rng& rng) = 0;

  // Called serially before a round's RunClient dispatches.  `participants`
  // holds the sampled clients that survived availability/straggler filtering,
  // in dispatch order (the order FinishRound must merge staged updates in).
  virtual void BeginRound(int round, const std::vector<int>& participants);

  // Local training for one sampled client.  May run concurrently with other
  // participants of the same round; see the class comment.
  virtual void RunClient(int client_id, int round, Rng& rng) = 0;

  // Server aggregation for the round (serial).
  virtual void FinishRound(int round, Rng& rng) = 0;

  // Called serially once before the engine evaluates ClientLogits for every
  // client, possibly concurrently.  Pre-create lazily-built eval state here.
  virtual void PrepareEvaluation();

  // Global-model logits (eval mode) for the global-accuracy metric.
  virtual Tensor GlobalLogits(const Tensor& x) = 0;

  // Personalized logits for one client (stability metric).  May be called
  // concurrently for distinct clients after PrepareEvaluation.
  virtual Tensor ClientLogits(int client_id, const Tensor& x) = 0;

  // Checkpoint hooks (fl/checkpoint.h).  SaveState serializes every field
  // that persists across round boundaries into the writer's open section;
  // LoadState restores it into a freshly Setup() instance (both called
  // only at round barriers, serially).  The defaults throw: an algorithm
  // without the hooks must fail a checkpointed run loudly rather than
  // resume with silently missing state.
  virtual void SaveState(SnapshotWriter& writer) const;
  virtual void LoadState(SnapshotReader& reader);
};

struct RoundRecord {
  int round = 0;
  double sim_time_s = 0.0;  // cumulative simulated time at evaluation
  double global_acc = 0.0;
};

struct RunResult {
  std::vector<RoundRecord> curve;
  double final_accuracy = 0.0;
  double total_sim_time_s = 0.0;
  // Sampled client-rounds dropped for exceeding the round deadline.
  int straggler_drops = 0;
  // Sampled client-rounds skipped because the device was offline.
  int offline_skips = 0;
  int total_participations = 0;
  std::vector<double> client_accuracies;  // per client, end of run

  // First cumulative simulated time at which accuracy reached `target`;
  // +inf when never reached.
  double TimeToAccuracy(double target) const;
  // Variance of client_accuracies (the paper's stability metric; lower is
  // more stable).
  double StabilityVariance() const;
  double MeanClientAccuracy() const;
};

class FlEngine {
 public:
  // `assignments` must be empty (defaults to full capacity) or have one
  // entry per client.
  FlEngine(const data::Task& task, FlConfig config,
           std::vector<ClientAssignment> assignments, MhflAlgorithm& algorithm);

  RunResult Run();

  const FlContext& context() const { return ctx_; }

 private:
  // One surviving sampled client of a round with its serially-forked Rng.
  struct Participant {
    int client_id;
    Rng rng;
  };

  // Serializes engine + algorithm + RNG + obs state after round
  // `next_round - 1`'s barrier into checkpoint_dir.
  void WriteCheckpoint(int next_round, double sim_time,
                       const RunResult& partial) const;
  // Records round `round`'s component hashes (RNG stream, auditable
  // counter/histogram totals, algorithm SaveState bytes) into
  // config_.obs.det_audit.  Called at the serial round barrier, after
  // EndRound merged the per-thread sinks (obs/det_audit.h).
  void AuditRound(int round) const;
  // Restores config_.resume_path into the freshly-Setup engine; fills the
  // partial result and simulated clock and returns the round to resume at.
  int RestoreCheckpoint(RunResult& result, double& sim_time);

  FlConfig config_;
  FlContext ctx_;
  MhflAlgorithm& algorithm_;
  Rng rng_;
  // Worker pool for client dispatch and stability evaluation; null when
  // config_.num_threads <= 1 (serial reference execution).
  std::unique_ptr<core::ThreadPool> pool_;
  // Obs totals at Run() entry.  Snapshots store per-run *deltas* relative
  // to these, so a registry shared across runs (the bench suites run a
  // baseline first) never double-counts on resume.
  std::map<std::string, std::int64_t> obs_base_counters_;
  std::map<std::string, obs::Registry::HistogramData> obs_base_hists_;
};

}  // namespace mhbench::fl
