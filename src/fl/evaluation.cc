#include "fl/evaluation.h"

#include <numeric>

#include "core/error.h"
#include "nn/loss.h"

namespace mhbench::fl {

double EvaluateAccuracy(const LogitsFn& logits_fn,
                        const data::Dataset& dataset, int max_samples,
                        int batch_size) {
  MHB_CHECK(!dataset.empty());
  MHB_CHECK_GT(batch_size, 0);
  const int n = max_samples > 0
                    ? std::min<int>(max_samples,
                                    static_cast<int>(dataset.size()))
                    : static_cast<int>(dataset.size());
  int correct = 0;
  for (int start = 0; start < n; start += batch_size) {
    const int end = std::min(n, start + batch_size);
    std::vector<int> idx(static_cast<std::size_t>(end - start));
    std::iota(idx.begin(), idx.end(), start);
    const Tensor x = dataset.GatherFeatures(idx);
    const std::vector<int> y = dataset.GatherLabels(idx);
    const Tensor logits = logits_fn(x);
    correct += static_cast<int>(nn::Accuracy(logits, y) *
                                    static_cast<double>(y.size()) +
                                0.5);
  }
  return static_cast<double>(correct) / n;
}

}  // namespace mhbench::fl
