// Coordinate-wise masked federated averaging.
//
// Clients hold different sub-tensors of the global parameters; the server
// averages each coordinate over exactly the clients that trained it
// (HeteroFL-style) and leaves untouched coordinates at their previous
// value.  This one primitive implements the aggregation of FedAvg, Fjord,
// SHeteroFL, FedRolex, DepthFL, InclusiveFL and FeDepth.
#pragma once

#include <map>

#include "fl/param_store.h"

namespace mhbench::fl {

class MaskedAverager {
 public:
  MaskedAverager() = default;

  // Adds one client's trained parameters.  `weight` is typically the
  // client's sample count.  Tensor shapes come from the reference store at
  // ApplyTo time; accumulation buffers are sized lazily from it.
  void Accumulate(nn::Module& model, const models::ParamMapping& mapping,
                  double weight, const ParamStore& reference);

  // Writes averaged coordinates into `store`; coordinates no client touched
  // keep their previous values.  Clears the accumulator.
  void ApplyTo(ParamStore& store);

  bool empty() const { return sum_.empty(); }

 private:
  std::map<std::string, Tensor> sum_;
  std::map<std::string, Tensor> weight_;
};

}  // namespace mhbench::fl
