// Coordinate-wise masked federated averaging.
//
// Clients hold different sub-tensors of the global parameters; the server
// averages each coordinate over exactly the clients that trained it
// (HeteroFL-style) and leaves untouched coordinates at their previous
// value.  This one primitive implements the aggregation of FedAvg, Fjord,
// SHeteroFL, FedRolex, DepthFL, InclusiveFL and FeDepth.
#pragma once

#include <map>

#include "fl/param_store.h"

namespace mhbench::fl {

// One client's staged upload: the trained parameter values, the slices of
// the global tensors they cover, and the aggregation weight.  Extracted on
// the client's (possibly concurrent) thread; accumulated serially.
struct ClientUpdate {
  models::ParamMapping mapping;
  std::vector<Tensor> values;  // one per mapping entry, client-shaped
  double weight = 0.0;

  bool empty() const { return values.empty(); }
};

// Copies a trained model's parameters into a staged update.  Touches only
// `model`, so concurrent extraction across distinct models is safe.
ClientUpdate ExtractUpdate(nn::Module& model,
                           const models::ParamMapping& mapping, double weight);

class MaskedAverager {
 public:
  MaskedAverager() = default;

  // Adds one client's trained parameters.  `weight` is typically the
  // client's sample count.  Tensor shapes come from the reference store at
  // ApplyTo time; accumulation buffers are sized lazily from it.
  // NOT thread-safe: the accumulator is shared across clients.  Concurrent
  // callers must stage with ExtractUpdate and accumulate serially.
  void Accumulate(nn::Module& model, const models::ParamMapping& mapping,
                  double weight, const ParamStore& reference);

  // Same accumulation from a staged update.  Performs the identical
  // floating-point operations in the identical order as the Module
  // overload, so deferring accumulation to a serial merge phase leaves
  // results bit-identical.
  void Accumulate(const ClientUpdate& update, const ParamStore& reference);

  // Writes averaged coordinates into `store`; coordinates no client touched
  // keep their previous values.  Clears the accumulator.
  void ApplyTo(ParamStore& store);

  bool empty() const { return sum_.empty(); }

 private:
  std::map<std::string, Tensor> sum_;
  std::map<std::string, Tensor> weight_;
};

}  // namespace mhbench::fl
