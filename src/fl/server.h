// Server-side global model holder for weight-sharing algorithms.
//
// Owns the full-size multi-head model of a family plus the authoritative
// ParamStore.  Sub-model dispatch gathers from the store; evaluation syncs
// the store back into the full model.
#pragma once

#include "fl/param_store.h"
#include "models/model_spec.h"

namespace mhbench::fl {

class GlobalModel {
 public:
  // Builds the family's full model (all heads) and seeds the store from it.
  GlobalModel(models::FamilyPtr family, Rng& init_rng);

  ParamStore& store() { return store_; }
  const ParamStore& store() const { return store_; }
  const models::ModelFamily& family() const { return *family_; }

  // Logits of the deepest head (eval mode); store values are synced into
  // the model first.
  Tensor Logits(const Tensor& x);

  // Mean of all heads' logits (DepthFL's ensemble inference).
  Tensor EnsembleLogits(const Tensor& x);

  // Direct access to the synced full model (syncs first).
  models::TrunkModel& SyncedTrunk();

 private:
  void Sync();

  models::FamilyPtr family_;
  models::BuiltModel built_;
  ParamStore store_;
};

}  // namespace mhbench::fl
