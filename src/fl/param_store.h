// Server-side parameter store: named global tensors plus gather/scatter
// plumbing between the store and (sub-)models.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "models/index_map.h"
#include "nn/module.h"

namespace mhbench::fl {

class ParamStore {
 public:
  ParamStore() = default;

  // Snapshots every parameter of `module` (values only).
  static ParamStore FromModule(nn::Module& module);

  bool Has(const std::string& name) const;
  const Tensor& Get(const std::string& name) const;
  Tensor& GetMutable(const std::string& name);
  void Set(const std::string& name, Tensor value);

  std::vector<std::string> Names() const;  // sorted
  std::size_t size() const { return params_.size(); }
  std::size_t TotalParams() const;
  std::size_t TotalBytes() const;  // float32 payload bytes

  // Writes gathered global values into the module's parameters according to
  // the mapping (model dispatch direction).
  void LoadInto(nn::Module& module, const models::ParamMapping& mapping) const;

  // Copies every same-named parameter from `module` into the store
  // (full-model writeback; mapping-free).
  void StoreFrom(nn::Module& module);

  // Writes every parameter of `module` from the same-named store entry
  // (full-tensor, mapping-free restore — the checkpoint direction; shapes
  // must match exactly and every parameter must be present).
  void LoadAll(nn::Module& module) const;

  // Checkpointing: byte-serializes every named tensor (little-endian;
  // format documented in param_store.cc) and restores it.
  std::vector<std::uint8_t> Serialize() const;
  static ParamStore Deserialize(const std::vector<std::uint8_t>& bytes);
  void SaveFile(const std::string& path) const;
  static ParamStore LoadFile(const std::string& path);

 private:
  std::map<std::string, Tensor> params_;
};

// Total float32 bytes of a module's parameters (communication payload of
// shipping this model).
std::size_t ModuleParamBytes(nn::Module& module);

}  // namespace mhbench::fl
