#include "fl/checkpoint.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "core/error.h"
#include "obs/obs_config.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/serialize.h"

namespace mhbench::fl {

// mhb-obs-phase: serial — snapshots are written/read only at round
// barriers (and before round 0), never with client work in flight.

static_assert(std::endian::native == std::endian::little,
              "snapshot format assumes a little-endian host");

namespace {

// Section names and parameter names share the same plausibility bound as
// ParamStore's (param_store.cc); anything longer is corruption.
constexpr std::uint32_t kMaxNameLen = 4096;

struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

}  // namespace

std::uint32_t Crc32(const std::uint8_t* data, std::size_t size) {
  static const Crc32Table table;
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table.entries[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// SnapshotWriter

void SnapshotWriter::Append(const void* p, std::size_t n) {
  MHB_CHECK(in_section_) << "snapshot write outside BeginSection/EndSection";
  const auto* b = static_cast<const std::uint8_t*>(p);
  payload_.insert(payload_.end(), b, b + n);
}

void SnapshotWriter::BeginSection(const std::string& name) {
  MHB_CHECK(!in_section_) << "BeginSection inside an open section" << name;
  MHB_CHECK(!name.empty() && name.size() <= kMaxNameLen)
      << "bad section name length" << name.size();
  for (const auto& [existing, payload] : sections_) {
    MHB_CHECK(existing != name) << "duplicate snapshot section" << name;
  }
  in_section_ = true;
  section_name_ = name;
  payload_.clear();
}

void SnapshotWriter::EndSection() {
  MHB_CHECK(in_section_) << "EndSection without BeginSection";
  sections_.emplace_back(section_name_, std::move(payload_));
  payload_ = {};
  in_section_ = false;
}

void SnapshotWriter::WriteU8(std::uint8_t v) { Append(&v, sizeof(v)); }
void SnapshotWriter::WriteU32(std::uint32_t v) { Append(&v, sizeof(v)); }
void SnapshotWriter::WriteI32(std::int32_t v) { Append(&v, sizeof(v)); }
void SnapshotWriter::WriteU64(std::uint64_t v) { Append(&v, sizeof(v)); }
void SnapshotWriter::WriteI64(std::int64_t v) { Append(&v, sizeof(v)); }
void SnapshotWriter::WriteF64(double v) { Append(&v, sizeof(v)); }

void SnapshotWriter::WriteString(const std::string& s) {
  MHB_CHECK_LE(s.size(), kMaxNameLen) << "snapshot string too long";
  WriteU32(static_cast<std::uint32_t>(s.size()));
  Append(s.data(), s.size());
}

void SnapshotWriter::WriteBytes(const std::vector<std::uint8_t>& bytes) {
  WriteU64(static_cast<std::uint64_t>(bytes.size()));
  Append(bytes.data(), bytes.size());
}

void SnapshotWriter::WriteTensor(const Tensor& t) {
  const auto blob = SerializeTensor(t);
  Append(blob.data(), blob.size());
}

std::vector<std::uint8_t> SnapshotWriter::Finish() const {
  MHB_CHECK(!in_section_) << "Finish with an open section" << section_name_;
  std::vector<std::uint8_t> out;
  auto push = [&](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out.insert(out.end(), b, b + n);
  };
  push(kSnapshotMagic, sizeof(kSnapshotMagic));
  const std::uint32_t version = kSnapshotVersion;
  push(&version, sizeof(version));
  const std::uint32_t count = static_cast<std::uint32_t>(sections_.size());
  push(&count, sizeof(count));
  for (const auto& [name, payload] : sections_) {
    const std::uint32_t name_len = static_cast<std::uint32_t>(name.size());
    push(&name_len, sizeof(name_len));
    push(name.data(), name.size());
    const std::uint64_t payload_len =
        static_cast<std::uint64_t>(payload.size());
    push(&payload_len, sizeof(payload_len));
    const std::uint32_t crc = Crc32(payload.data(), payload.size());
    push(&crc, sizeof(crc));
    push(payload.data(), payload.size());
  }
  return out;
}

void SnapshotWriter::WriteFile(const std::string& path,
                               const obs::ObsConfig* obs) const {
  obs::Tracer* const tracer = obs != nullptr ? obs->tracer : nullptr;
  obs::Registry* const reg = obs != nullptr ? obs->registry : nullptr;
  const auto t0 = std::chrono::steady_clock::now();
  obs::Span span(tracer, "snapshot_write", "checkpoint");
  const auto bytes = Finish();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    MHB_CHECK(f.good()) << "cannot open" << tmp;
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    MHB_CHECK(f.good()) << "write failed for" << tmp;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  MHB_CHECK(!ec) << "cannot move snapshot into place:" << ec.message();
  span.Arg("bytes", static_cast<std::int64_t>(bytes.size()));
  if (reg != nullptr) {
    const auto write_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    // Serial barrier phase: AddNamed registers lazily, which is safe here
    // because no client work is in flight during a checkpoint write.
    reg->AddNamed("checkpoint_writes", 1);
    reg->AddNamed("checkpoint_bytes",
                  static_cast<std::int64_t>(bytes.size()));
    // Wall time: lands in totals but is excluded from bit-identity
    // comparisons, like client_wall_us.
    reg->AddNamed("checkpoint_write_us",
                  std::max<std::int64_t>(1, write_us));
  }
}

// ---------------------------------------------------------------------------
// SnapshotReader

SnapshotReader::SnapshotReader(std::vector<std::uint8_t> bytes) {
  std::size_t offset = 0;
  auto read = [&](void* p, std::size_t n) {
    MHB_CHECK_LE(n, bytes.size() - offset) << "truncated snapshot";
    std::memcpy(p, bytes.data() + offset, n);
    offset += n;
  };
  char magic[sizeof(kSnapshotMagic)];
  MHB_CHECK_GE(bytes.size(), sizeof(magic)) << "truncated snapshot";
  read(magic, sizeof(magic));
  MHB_CHECK(std::memcmp(magic, kSnapshotMagic, sizeof(magic)) == 0)
      << "not an mhbench snapshot (bad magic)";
  read(&version_, sizeof(version_));
  MHB_CHECK_EQ(version_, kSnapshotVersion)
      << "unsupported snapshot version (no cross-version resume)";
  std::uint32_t count = 0;
  read(&count, sizeof(count));
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t name_len = 0;
    read(&name_len, sizeof(name_len));
    MHB_CHECK(name_len > 0 && name_len <= kMaxNameLen)
        << "implausible snapshot section name length" << name_len;
    std::string name(name_len, '\0');
    read(name.data(), name.size());
    std::uint64_t payload_len = 0;
    read(&payload_len, sizeof(payload_len));
    std::uint32_t crc = 0;
    read(&crc, sizeof(crc));
    // Bounds-check against the cursor AFTER the CRC word: checking before
    // it would admit a payload_len up to 4 bytes past the end of the file.
    MHB_CHECK_LE(payload_len, bytes.size() - offset)
        << "snapshot section" << name << "overruns the file";
    std::vector<std::uint8_t> payload(
        bytes.begin() + static_cast<std::ptrdiff_t>(offset),
        bytes.begin() + static_cast<std::ptrdiff_t>(offset + payload_len));
    offset += payload_len;
    MHB_CHECK_EQ(Crc32(payload.data(), payload.size()), crc)
        << "CRC mismatch in snapshot section" << name;
    MHB_CHECK(sections_.find(name) == sections_.end())
        << "duplicate snapshot section" << name;
    order_.push_back(name);
    sections_.emplace(name, std::move(payload));
  }
  MHB_CHECK_EQ(offset, bytes.size()) << "trailing bytes in snapshot";
}

SnapshotReader SnapshotReader::FromFile(const std::string& path,
                                        const obs::ObsConfig* obs) {
  obs::Span span(obs != nullptr ? obs->tracer : nullptr, "snapshot_read",
                 "checkpoint");
  std::ifstream f(path, std::ios::binary);
  MHB_CHECK(f.good()) << "cannot open snapshot" << path;
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  if (obs != nullptr && obs->registry != nullptr) {
    // Serial restore phase, before any client dispatch.
    obs->registry->AddNamed("checkpoint_read_bytes",
                            static_cast<std::int64_t>(bytes.size()));
  }
  span.Arg("bytes", static_cast<std::int64_t>(bytes.size()));
  return SnapshotReader(std::move(bytes));
}

std::vector<std::string> SnapshotReader::SectionNames() const {
  return order_;
}

bool SnapshotReader::HasSection(const std::string& name) const {
  return sections_.find(name) != sections_.end();
}

const std::vector<std::uint8_t>& SnapshotReader::SectionPayload(
    const std::string& name) const {
  auto it = sections_.find(name);
  MHB_CHECK(it != sections_.end()) << "snapshot has no section" << name;
  return it->second;
}

void SnapshotReader::EnterSection(const std::string& name) {
  auto it = sections_.find(name);
  MHB_CHECK(it != sections_.end()) << "snapshot has no section" << name;
  current_ = &it->second;
  cursor_ = 0;
}

void SnapshotReader::ExpectSectionEnd() const {
  MHB_CHECK(current_ != nullptr) << "no section entered";
  MHB_CHECK_EQ(cursor_, current_->size())
      << "trailing bytes in snapshot section";
}

void SnapshotReader::ReadRaw(void* p, std::size_t n) {
  MHB_CHECK(current_ != nullptr) << "read before EnterSection";
  MHB_CHECK_LE(n, current_->size() - cursor_)
      << "truncated snapshot section";
  std::memcpy(p, current_->data() + cursor_, n);
  cursor_ += n;
}

std::uint8_t SnapshotReader::ReadU8() {
  std::uint8_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}
std::uint32_t SnapshotReader::ReadU32() {
  std::uint32_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}
std::int32_t SnapshotReader::ReadI32() {
  std::int32_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}
std::uint64_t SnapshotReader::ReadU64() {
  std::uint64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}
std::int64_t SnapshotReader::ReadI64() {
  std::int64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}
double SnapshotReader::ReadF64() {
  double v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::string SnapshotReader::ReadString() {
  const std::uint32_t len = ReadU32();
  MHB_CHECK_LE(len, kMaxNameLen) << "implausible snapshot string length";
  std::string s(len, '\0');
  ReadRaw(s.data(), s.size());
  return s;
}

std::vector<std::uint8_t> SnapshotReader::ReadBytes() {
  const std::uint64_t len = ReadU64();
  MHB_CHECK(current_ != nullptr) << "read before EnterSection";
  MHB_CHECK_LE(len, current_->size() - cursor_)
      << "truncated snapshot byte blob";
  std::vector<std::uint8_t> out(
      current_->begin() + static_cast<std::ptrdiff_t>(cursor_),
      current_->begin() + static_cast<std::ptrdiff_t>(cursor_ + len));
  cursor_ += len;
  return out;
}

Tensor SnapshotReader::ReadTensor() {
  MHB_CHECK(current_ != nullptr) << "read before EnterSection";
  // DeserializeTensor bounds-checks against the section payload and
  // advances the cursor past the blob.
  return DeserializeTensor(*current_, cursor_);
}

}  // namespace mhbench::fl
