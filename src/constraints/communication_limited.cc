#include "constraints/communication_limited.h"

namespace mhbench::constraints {

BuiltAssignments BuildCommunicationLimited(const std::string& algorithm,
                                           const std::string& task_name,
                                           const device::Fleet& fleet,
                                           const ConstraintOptions& options) {
  ConstraintFlags flags;
  flags.communication = true;
  return BuildConstrained(algorithm, task_name, fleet, flags, options);
}

}  // namespace mhbench::constraints
