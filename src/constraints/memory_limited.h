// Case III: Memory-Limited MHFL (Definition IV.3) — every device runs the
// largest model variant whose training memory fits its RAM tier.
#pragma once

#include "constraints/assignment.h"

namespace mhbench::constraints {

BuiltAssignments BuildMemoryLimited(const std::string& algorithm,
                                    const std::string& task_name,
                                    const device::Fleet& fleet,
                                    const ConstraintOptions& options = {});

}  // namespace mhbench::constraints
