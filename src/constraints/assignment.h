// Constraint cases: map a device fleet to per-client model assignments for
// a given MHFL algorithm, under the paper's computation- / communication- /
// memory-limited definitions (Section IV) and their combinations.
//
// Selection follows the paper's model-pool principle: per client, pick the
// largest candidate (ratio for width/depth methods, architecture for
// topology methods) whose cost fits the client's budget; the budget itself
// is held identical across methods for fairness.
#pragma once

#include <string>
#include <vector>

#include "device/cost_model.h"
#include "device/ima_fleet.h"
#include "fl/client.h"

namespace mhbench::constraints {

struct ConstraintFlags {
  bool computation = false;
  bool communication = false;
  bool memory = false;
};

struct ConstraintOptions {
  std::vector<double> ratio_ladder = {0.25, 0.5, 0.75, 1.0};
  // Computation deadline: the full model's training time on the fleet's
  // q-quantile fastest device (clients faster than that run the full
  // model; slower clients shrink theirs).
  double deadline_quantile = 0.25;
  // Communication budget per round (the paper's example setting: 200 s).
  double comm_budget_s = 200.0;
  // Bandwidth / compute used for the resources a case holds "identical".
  double fixed_bandwidth_mbps = 20.0;
  double fixed_gflops_scale = 1.0;  // x Jetson Nano
};

struct BuiltAssignments {
  std::vector<fl::ClientAssignment> assignments;
  // The equalized budget levels actually used.
  double compute_deadline_s = 0.0;
  double comm_budget_s = 0.0;
};

// Core builder; the per-case headers wrap it.
BuiltAssignments BuildConstrained(const std::string& algorithm,
                                  const std::string& task_name,
                                  const device::Fleet& fleet,
                                  const ConstraintFlags& flags,
                                  const ConstraintOptions& options = {});

}  // namespace mhbench::constraints
