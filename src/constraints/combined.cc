#include "constraints/combined.h"

namespace mhbench::constraints {

BuiltAssignments BuildCommMemLimited(const std::string& algorithm,
                                     const std::string& task_name,
                                     const device::Fleet& fleet,
                                     const ConstraintOptions& options) {
  ConstraintFlags flags;
  flags.communication = true;
  flags.memory = true;
  return BuildConstrained(algorithm, task_name, fleet, flags, options);
}

BuiltAssignments BuildCompCommMemLimited(const std::string& algorithm,
                                         const std::string& task_name,
                                         const device::Fleet& fleet,
                                         const ConstraintOptions& options) {
  ConstraintFlags flags;
  flags.computation = true;
  flags.communication = true;
  flags.memory = true;
  return BuildConstrained(algorithm, task_name, fleet, flags, options);
}

}  // namespace mhbench::constraints
