// Case II: Communication-Limited MHFL (Definition IV.2) — adapt model sizes
// so every device's up/download fits a shared per-round budget.
#pragma once

#include "constraints/assignment.h"

namespace mhbench::constraints {

BuiltAssignments BuildCommunicationLimited(
    const std::string& algorithm, const std::string& task_name,
    const device::Fleet& fleet, const ConstraintOptions& options = {});

}  // namespace mhbench::constraints
