#include "constraints/computation_limited.h"

namespace mhbench::constraints {

BuiltAssignments BuildComputationLimited(const std::string& algorithm,
                                         const std::string& task_name,
                                         const device::Fleet& fleet,
                                         const ConstraintOptions& options) {
  ConstraintFlags flags;
  flags.computation = true;
  return BuildConstrained(algorithm, task_name, fleet, flags, options);
}

}  // namespace mhbench::constraints
