#include "constraints/assignment.h"

#include <algorithm>

#include "core/error.h"
#include "device/calibration.h"
#include "device/tier.h"

namespace mhbench::constraints {
namespace {

device::DeviceProfile ProfileFor(const device::ClientDevice& dev) {
  device::DeviceProfile p;
  p.name = "fleet-client";
  p.gflops = dev.gflops;
  p.bandwidth_mbps = dev.bandwidth_mbps;
  p.memory_mb = dev.memory_mb;
  p.has_gpu = dev.has_gpu;
  return p;
}

// Candidate variants for the algorithm (ratios for width/depth methods,
// architectures for topology methods), ascending by parameter count.
struct Candidate {
  double ratio = 1.0;
  int arch_index = 0;
  const device::PaperModelDesc* desc = nullptr;
};

std::vector<Candidate> Candidates(const std::string& algorithm,
                                  const device::PaperTaskDescs& descs,
                                  const std::vector<double>& ladder) {
  std::vector<Candidate> out;
  if (device::AxisOf(algorithm) == device::ScaleAxis::kFull) {
    for (std::size_t a = 0; a < descs.topology.size(); ++a) {
      out.push_back({1.0, static_cast<int>(a), &descs.topology[a]});
    }
  } else {
    std::vector<double> sorted = ladder;
    std::sort(sorted.begin(), sorted.end());
    for (double r : sorted) {
      out.push_back({r, 0, &descs.primary});
    }
  }
  return out;
}

}  // namespace

BuiltAssignments BuildConstrained(const std::string& algorithm,
                                  const std::string& task_name,
                                  const device::Fleet& fleet,
                                  const ConstraintFlags& flags,
                                  const ConstraintOptions& options) {
  MHB_CHECK(!fleet.empty());
  MHB_CHECK(flags.computation || flags.communication || flags.memory)
      << "at least one constraint must be active";
  const device::PaperTaskDescs descs = device::PaperDescsForTask(task_name);
  const std::vector<Candidate> candidates =
      Candidates(algorithm, descs, options.ratio_ladder);
  MHB_CHECK(!candidates.empty());

  // Resources a case does not constrain are held identical across clients.
  device::DeviceProfile fixed;
  fixed.name = "fixed-reference";
  fixed.gflops =
      device::DeviceGflops("jetson-nano") * options.fixed_gflops_scale;
  fixed.bandwidth_mbps = options.fixed_bandwidth_mbps;

  BuiltAssignments out;
  out.comm_budget_s = flags.communication ? options.comm_budget_s : 0.0;

  // Computation deadline: full-model time on the q-quantile fastest device.
  if (flags.computation) {
    const Candidate& largest = candidates.back();
    device::CostModel cm(*largest.desc);
    std::vector<double> times;
    times.reserve(fleet.size());
    for (const auto& dev : fleet) {
      times.push_back(
          cm.Cost(algorithm, largest.ratio, ProfileFor(dev)).train_time_s);
    }
    std::sort(times.begin(), times.end());
    const auto q = static_cast<std::size_t>(
        options.deadline_quantile * static_cast<double>(times.size() - 1));
    out.compute_deadline_s = times[q];
  }

  out.assignments.reserve(fleet.size());
  for (const auto& dev : fleet) {
    const device::DeviceProfile own = ProfileFor(dev);
    // Effective profile per resource: constrained resources use the
    // client's real capability, unconstrained ones the fixed reference.
    device::DeviceProfile eff = fixed;
    if (flags.computation) eff.gflops = own.gflops;
    if (flags.communication) eff.bandwidth_mbps = own.bandwidth_mbps;
    const double mem_budget = flags.memory ? own.memory_mb : 1e12;

    const Candidate* chosen = nullptr;
    device::RoundCost chosen_cost;
    for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
      device::CostModel cm(*it->desc);
      const device::RoundCost cost = cm.Cost(algorithm, it->ratio, eff);
      const bool comp_ok =
          !flags.computation || cost.train_time_s <= out.compute_deadline_s;
      const bool comm_ok =
          !flags.communication || cost.comm_time_s <= options.comm_budget_s;
      const bool mem_ok = cost.memory_mb <= mem_budget;
      if (comp_ok && comm_ok && mem_ok) {
        chosen = &*it;
        chosen_cost = cost;
        break;
      }
    }
    if (chosen == nullptr) {
      // Nothing fits: fall back to the smallest candidate (the device
      // participates with the minimum model, as real deployments do).
      chosen = &candidates.front();
      device::CostModel cm(*chosen->desc);
      chosen_cost = cm.Cost(algorithm, chosen->ratio, eff);
    }

    fl::ClientAssignment a;
    a.capacity = chosen->ratio;
    a.arch_index = chosen->arch_index;
    a.system.compute_time_s = chosen_cost.train_time_s;
    a.system.comm_time_s = chosen_cost.comm_time_s;
    a.system.memory_mb = chosen_cost.memory_mb;
    a.system.comm_mb = chosen_cost.comm_mb;
    a.system.train_gflops = chosen_cost.gflops_fwd;
    a.system.availability = dev.availability;
    a.system.device_tier = device::DeviceTierName(dev.memory_mb, dev.has_gpu);
    out.assignments.push_back(a);
  }
  return out;
}

}  // namespace mhbench::constraints
