// Case I: Computation-Limited MHFL (Definition IV.1) — adapt model sizes so
// every device trains within a shared deadline for synchronous aggregation.
#pragma once

#include "constraints/assignment.h"

namespace mhbench::constraints {

BuiltAssignments BuildComputationLimited(const std::string& algorithm,
                                         const std::string& task_name,
                                         const device::Fleet& fleet,
                                         const ConstraintOptions& options = {});

}  // namespace mhbench::constraints
