// Constraint combinations (paper Figure 7): communication+memory and
// computation+communication+memory limited MHFL.
#pragma once

#include "constraints/assignment.h"

namespace mhbench::constraints {

BuiltAssignments BuildCommMemLimited(const std::string& algorithm,
                                     const std::string& task_name,
                                     const device::Fleet& fleet,
                                     const ConstraintOptions& options = {});

BuiltAssignments BuildCompCommMemLimited(
    const std::string& algorithm, const std::string& task_name,
    const device::Fleet& fleet, const ConstraintOptions& options = {});

}  // namespace mhbench::constraints
