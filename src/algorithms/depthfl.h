// DepthFL (Kim et al. ICLR'23): depth-level heterogeneity with deep
// supervision and mutual self-distillation.
//
// A client keeps the block prefix matching its capacity and trains *all*
// classifier heads up to its depth: each head gets a cross-entropy loss and
// additionally distills from the averaged soft predictions of the other
// heads.  Inference ensembles the heads, which is also how the global model
// is evaluated.
#pragma once

#include "algorithms/algorithm.h"

namespace mhbench::algorithms {

class DepthFl : public WeightSharingAlgorithm {
 public:
  DepthFl(models::FamilyPtr family, double distill_weight, double temperature,
          std::uint64_t seed);

  std::string name() const override { return "depthfl"; }

 protected:
  models::BuildSpec ClientSpec(int client_id, int /*round*/,
                               Rng& /*rng*/) override;
  models::BuildSpec GlobalEvalSpec() override;
  double TrainClientModel(models::BuiltModel& built, int client_id,
                          const data::Dataset& shard, Rng& rng) override;
  bool UseEnsembleEval() const override { return true; }

 private:
  double distill_weight_;
  double temperature_;
};

}  // namespace mhbench::algorithms
