// Fjord (Horvath et al. NeurIPS'21): ordered dropout.  Each training pass a
// client samples a width p uniformly from the allowed ratios no larger than
// its own capacity and trains the nested prefix sub-model of width p; the
// aggregation is the same masked average as HeteroFL.
//
// We sample p once per round per client (our local_epochs default is 1, so
// per-round sampling equals Fjord's per-iteration sampling granularity at
// sim scale).
#pragma once

#include "algorithms/algorithm.h"

namespace mhbench::algorithms {

class Fjord : public WeightSharingAlgorithm {
 public:
  Fjord(models::FamilyPtr family, std::vector<double> ratio_ladder,
        std::uint64_t seed);

  std::string name() const override { return "fjord"; }

 protected:
  models::BuildSpec ClientSpec(int client_id, int round, Rng& rng) override;
  models::BuildSpec EvalSpec(int client_id) override;
  models::BuildSpec GlobalEvalSpec() override;

 private:
  std::vector<double> ladder_;  // ascending allowed ratios
};

}  // namespace mhbench::algorithms
