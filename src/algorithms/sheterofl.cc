#include "algorithms/sheterofl.h"

// Header-only behaviour; this translation unit anchors the vtable.
namespace mhbench::algorithms {}  // namespace mhbench::algorithms
