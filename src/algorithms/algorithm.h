// Shared base for weight-sharing MHFL algorithms (FedAvg, Fjord, SHeteroFL,
// FedRolex, DepthFL, InclusiveFL, FeDepth).
//
// These algorithms differ only in (a) which sub-model a client receives
// each round (ClientSpec), (b) how the client trains it (TrainClientModel),
// and (c) small server-side post-processing hooks.  Everything else —
// dispatch, masked aggregation, evaluation — lives here.
#pragma once

#include "fl/aggregator.h"
#include "fl/engine.h"
#include "fl/server.h"

namespace mhbench::algorithms {

class WeightSharingAlgorithm : public fl::MhflAlgorithm {
 public:
  WeightSharingAlgorithm(models::FamilyPtr family, std::uint64_t seed);

  void Setup(const fl::FlContext& ctx, Rng& rng) override;
  void BeginRound(int round, const std::vector<int>& participants) override;
  // Trains the client's sub-model and stages the upload into the client's
  // private buffer; safe to run concurrently for distinct participants.
  void RunClient(int client_id, int round, Rng& rng) override;
  // Merges staged uploads in participant order (bit-identical to eager
  // serial accumulation), applies the masked average, then PostAggregate.
  void FinishRound(int round, Rng& rng) override;
  Tensor GlobalLogits(const Tensor& x) override;
  Tensor ClientLogits(int client_id, const Tensor& x) override;

  // Checkpoint hooks: the persistent state of every weight-sharing
  // algorithm at a round barrier is the global store plus the last trained
  // round (EvalSpec / local LR lookups); subclasses with extra server
  // state add it through {Save,Load}ExtraState.
  void SaveState(fl::SnapshotWriter& writer) const override;
  void LoadState(fl::SnapshotReader& reader) override;

 protected:
  // Appends / restores subclass state after the shared fields; the default
  // is stateless.  Reads must mirror writes exactly (the engine calls
  // ExpectSectionEnd after LoadState).
  virtual void SaveExtraState(fl::SnapshotWriter& writer) const;
  virtual void LoadExtraState(fl::SnapshotReader& reader);

  // The sub-model this client trains in this round.
  virtual models::BuildSpec ClientSpec(int client_id, int round,
                                       Rng& rng) = 0;
  // The model evaluated for the global-accuracy metric.  Defaults to the
  // full model; algorithms whose largest trained sub-model is smaller
  // (e.g. under memory limits no client holds ratio 1.0) override this to
  // the maximum trained capacity, matching how HeteroFL-style systems
  // report the global model.
  virtual models::BuildSpec GlobalEvalSpec();
  // The sub-model used when evaluating the client's personalized accuracy;
  // defaults to ClientSpec at the last completed round with a fixed stream.
  virtual models::BuildSpec EvalSpec(int client_id);
  // Local training; default is plain supervised SGD on the deepest head.
  // Returns the final training loss.
  virtual double TrainClientModel(models::BuiltModel& built, int client_id,
                                  const data::Dataset& shard, Rng& rng);
  // Evaluate the global model with the ensemble of heads (DepthFL).
  virtual bool UseEnsembleEval() const { return false; }
  // Server-side hook after the masked average is applied.
  virtual void PostAggregate(int round, Rng& rng);

  double ClientCapacity(int client_id) const;
  // Largest capacity over all clients (available after Setup).
  double MaxCapacity() const;

 public:
  // Ablation knobs ---------------------------------------------------------
  // Static-batch-norm evaluation (default on).  With it off, evaluation
  // uses the aggregated running statistics, which are inconsistent across
  // different-width sub-networks; bench_ablation quantifies the gap.
  void set_sbn_eval(bool v) { sbn_eval_ = v; }
  // Weight client updates by their sample count (default) or uniformly.
  enum class AggregationWeighting { kDataSize, kUniform };
  void set_aggregation_weighting(AggregationWeighting w) { weighting_ = w; }

 protected:
  // Staging slot for `client_id` in the current round, fixed by BeginRound.
  std::size_t SlotOf(int client_id) const;

  const fl::FlContext* ctx_ = nullptr;
  models::FamilyPtr family_;
  std::unique_ptr<fl::GlobalModel> global_;
  fl::MaskedAverager averager_;
  std::uint64_t seed_;
  int last_round_ = 0;
  bool sbn_eval_ = true;
  AggregationWeighting weighting_ = AggregationWeighting::kDataSize;
  // Current round's participants (dispatch order) and their staged uploads;
  // RunClient writes only its own slot.
  std::vector<int> round_participants_;
  std::vector<fl::ClientUpdate> staged_;
  std::vector<std::size_t> slot_of_client_;  // client id -> staging slot
  // Observability counter ids, pre-registered serially in BeginRound so the
  // concurrent RunClient only touches per-thread sinks (0 = unregistered).
  std::size_t obs_upload_params_id_ = 0;
  bool obs_ids_ready_ = false;
};

}  // namespace mhbench::algorithms
