#include "algorithms/registry.h"

#include "algorithms/depthfl.h"
#include "algorithms/fedavg.h"
#include "algorithms/fedepth.h"
#include "algorithms/fedet.h"
#include "algorithms/fedproto.h"
#include "algorithms/fedrolex.h"
#include "algorithms/fjord.h"
#include "algorithms/inclusivefl.h"
#include "algorithms/sheterofl.h"
#include "core/error.h"

namespace mhbench::algorithms {

const std::vector<AlgorithmInfo>& AllAlgorithms() {
  static const std::vector<AlgorithmInfo> kAll = {
      {"fedavg", HeteroLevel::kHomogeneous},
      {"fjord", HeteroLevel::kWidth},
      {"sheterofl", HeteroLevel::kWidth},
      {"fedrolex", HeteroLevel::kWidth},
      {"fedepth", HeteroLevel::kDepth},
      {"inclusivefl", HeteroLevel::kDepth},
      {"depthfl", HeteroLevel::kDepth},
      {"fedproto", HeteroLevel::kTopology},
      {"fedet", HeteroLevel::kTopology},
  };
  return kAll;
}

const std::vector<double>& RatioLadder() {
  static const std::vector<double> kLadder = {0.25, 0.5, 0.75, 1.0};
  return kLadder;
}

HeteroLevel LevelOf(const std::string& name) {
  for (const auto& info : AllAlgorithms()) {
    if (info.name == name) return info.level;
  }
  throw Error("unknown algorithm: " + name);
}

std::unique_ptr<fl::MhflAlgorithm> MakeAlgorithm(
    const std::string& name, const models::TaskModels& task_models,
    const AlgorithmOptions& options) {
  MHB_CHECK(task_models.primary != nullptr);
  if (name == "fedavg") {
    return std::make_unique<FedAvg>(task_models.primary, options.fedavg_ratio,
                                    options.seed);
  }
  if (name == "fjord") {
    return std::make_unique<Fjord>(task_models.primary, RatioLadder(),
                                   options.seed);
  }
  if (name == "sheterofl") {
    return std::make_unique<SHeteroFl>(task_models.primary, options.seed);
  }
  if (name == "fedrolex") {
    return std::make_unique<FedRolex>(task_models.primary, options.seed);
  }
  if (name == "depthfl") {
    return std::make_unique<DepthFl>(task_models.primary,
                                     options.distill_weight,
                                     options.distill_temperature,
                                     options.seed);
  }
  if (name == "inclusivefl") {
    return std::make_unique<InclusiveFl>(task_models.primary,
                                         options.inclusive_momentum,
                                         options.seed);
  }
  if (name == "fedepth") {
    return std::make_unique<FeDepth>(task_models.primary, options.seed);
  }
  if (name == "fedproto") {
    MHB_CHECK(!task_models.topology.empty());
    return std::make_unique<FedProto>(task_models.topology,
                                      options.proto_lambda, options.proto_dim,
                                      options.seed);
  }
  if (name == "fedet") {
    MHB_CHECK(!task_models.topology.empty());
    FedEt::Options fo;
    fo.temperature = options.distill_temperature;
    return std::make_unique<FedEt>(task_models.topology, fo, options.seed);
  }
  throw Error("unknown algorithm: " + name);
}

}  // namespace mhbench::algorithms
