// SHeteroFL (static HeteroFL, Diao et al. ICLR'21): every client trains the
// nested prefix sub-model matching its capacity; the server averages each
// coordinate over the clients that hold it.
#pragma once

#include "algorithms/algorithm.h"

namespace mhbench::algorithms {

class SHeteroFl : public WeightSharingAlgorithm {
 public:
  SHeteroFl(models::FamilyPtr family, std::uint64_t seed)
      : WeightSharingAlgorithm(std::move(family), seed) {}

  std::string name() const override { return "sheterofl"; }

 protected:
  models::BuildSpec ClientSpec(int client_id, int /*round*/,
                               Rng& /*rng*/) override {
    models::BuildSpec spec;
    spec.width_ratio = ClientCapacity(client_id);
    return spec;
  }

  models::BuildSpec GlobalEvalSpec() override {
    models::BuildSpec spec;
    spec.width_ratio = MaxCapacity();
    return spec;
  }
};

}  // namespace mhbench::algorithms
