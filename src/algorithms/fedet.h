// Fed-ET (Cho et al. IJCAI'22): heterogeneous ensemble knowledge transfer.
//
// Clients are grouped by architecture; within a group updates are FedAvg'd.
// The server holds a large model trained by confidence-weighted ensemble
// distillation from the group models on an unlabeled public dataset, which
// is what the global-accuracy metric evaluates.  Our public set is a fixed
// unlabeled slice of the training pool (labels unused); Fed-ET's diversity
// regularization term is omitted at sim scale (see DESIGN.md).
#pragma once

#include <memory>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "fl/aggregator.h"
#include "fl/engine.h"
#include "fl/server.h"

namespace mhbench::algorithms {

class FedEt : public fl::MhflAlgorithm {
 public:
  struct Options {
    double temperature = 2.0;
    int distill_batches = 10;
    int public_samples = 128;
    double server_lr = 0.1;
  };

  FedEt(std::vector<models::FamilyPtr> families, Options options,
        std::uint64_t seed);

  std::string name() const override { return "fedet"; }

  void Setup(const fl::FlContext& ctx, Rng& rng) override;
  void BeginRound(int round, const std::vector<int>& participants) override;
  void RunClient(int client_id, int round, Rng& rng) override;
  void FinishRound(int round, Rng& rng) override;
  Tensor GlobalLogits(const Tensor& x) override;
  Tensor ClientLogits(int client_id, const Tensor& x) override;

  // Checkpoint hooks: the persistent state is the per-group stores and the
  // distilled server model.  The public distillation slice, averagers and
  // round counters are rebuilt by Setup / empty at round barriers.
  void SaveState(fl::SnapshotWriter& writer) const override;
  void LoadState(fl::SnapshotReader& reader) override;

 private:
  int ArchOf(int client_id) const;
  // Syncs and forwards through the shared group models.  Callers hold
  // eval_mu_ — serial phases too, so the invariant is uniform and clang's
  // thread-safety analysis can check it (the serial acquisition is
  // uncontended and per distill batch, not per sample).
  Tensor GroupLogits(int arch, const Tensor& x) MHB_REQUIRES(eval_mu_);

  std::vector<models::FamilyPtr> families_;
  Options options_;
  std::uint64_t seed_;
  const fl::FlContext* ctx_ = nullptr;

  // Per-architecture group state.
  std::vector<std::unique_ptr<fl::GlobalModel>> group_models_;
  std::vector<fl::MaskedAverager> group_averagers_;
  std::vector<int> group_round_clients_;  // sampled clients per group

  // Current round's participants (dispatch order) and their staged uploads;
  // RunClient fills only its own slot, FinishRound merges in order.
  std::vector<int> round_participants_;
  std::vector<fl::ClientUpdate> staged_;
  std::vector<std::size_t> slot_of_client_;

  // GroupLogits syncs and forwards through the shared group models; the
  // engine may evaluate ClientLogits concurrently, so serialize access.
  // Results are independent of acquisition order (sync + eval-mode forward
  // is a pure function of store contents), preserving determinism.
  core::Mutex eval_mu_;

  // Server (large) model, trained by distillation.
  models::BuiltModel server_model_;

  Tensor public_features_;  // unlabeled distillation set
};

}  // namespace mhbench::algorithms
