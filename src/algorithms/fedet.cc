#include "algorithms/fedet.h"

#include <numeric>

#include "fl/checkpoint.h"
#include "fl/client.h"
#include "fl/param_store.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace mhbench::algorithms {

FedEt::FedEt(std::vector<models::FamilyPtr> families, Options options,
             std::uint64_t seed)
    : families_(std::move(families)), options_(options), seed_(seed) {
  MHB_CHECK(!families_.empty());
  MHB_CHECK_GT(options_.temperature, 0.0);
  MHB_CHECK_GT(options_.distill_batches, 0);
  MHB_CHECK_GT(options_.public_samples, 0);
}

void FedEt::Setup(const fl::FlContext& ctx, Rng& rng) {
  ctx_ = &ctx;
  group_models_.clear();
  group_averagers_.assign(families_.size(), fl::MaskedAverager());
  group_round_clients_.assign(families_.size(), 0);
  for (std::size_t a = 0; a < families_.size(); ++a) {
    Rng init = rng.Fork(a + 1);
    group_models_.push_back(
        std::make_unique<fl::GlobalModel>(families_[a], init));
  }
  // Server model: the largest architecture in the pool.
  Rng server_init = rng.Fork(0x5E57);
  server_model_ = families_.back()->Build(models::BuildSpec{}, server_init);

  // Public unlabeled slice of the training pool.
  const int n = std::min<int>(options_.public_samples,
                              static_cast<int>(ctx.task->train.size()));
  std::vector<int> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  public_features_ = ctx.task->train.GatherFeatures(idx);
}

int FedEt::ArchOf(int client_id) const {
  const int hint =
      ctx_->assignments.at(static_cast<std::size_t>(client_id)).arch_index;
  return hint % static_cast<int>(families_.size());
}

void FedEt::BeginRound(int /*round*/, const std::vector<int>& participants) {
  MHB_CHECK(ctx_ != nullptr);
  round_participants_ = participants;
  staged_.assign(participants.size(), fl::ClientUpdate{});
  slot_of_client_.assign(static_cast<std::size_t>(ctx_->num_clients()), 0);
  for (std::size_t i = 0; i < participants.size(); ++i) {
    slot_of_client_[static_cast<std::size_t>(participants[i])] = i;
  }
}

void FedEt::RunClient(int client_id, int round, Rng& rng) {
  MHB_CHECK(ctx_ != nullptr);
  const int arch = ArchOf(client_id);
  const auto au = static_cast<std::size_t>(arch);
  Rng build_rng = rng.Fork(0xB1D);
  models::BuiltModel built =
      families_[au]->Build(models::BuildSpec{}, build_rng);
  group_models_[au]->store().LoadInto(*built.net, built.mapping);
  const data::Dataset& shard =
      ctx_->shards.at(static_cast<std::size_t>(client_id));
  fl::TrainLocal(*built.net, shard, ctx_->local_options(round), rng);
  // Stage the upload; the per-group averagers and counters are shared, so
  // they are only touched in the serial merge below.
  staged_[slot_of_client_[static_cast<std::size_t>(client_id)]] =
      fl::ExtractUpdate(*built.net, built.mapping,
                        static_cast<double>(shard.size()));
}

Tensor FedEt::GroupLogits(int arch, const Tensor& x) {
  return group_models_[static_cast<std::size_t>(arch)]->Logits(x);
}

void FedEt::FinishRound(int /*round*/, Rng& rng) {
  // Merge staged uploads into the per-group averagers in participant order
  // (the order eager serial accumulation used).
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    if (staged_[i].empty()) continue;
    const auto au = static_cast<std::size_t>(ArchOf(round_participants_[i]));
    group_averagers_[au].Accumulate(staged_[i], group_models_[au]->store());
    group_round_clients_[au] += 1;
  }
  staged_.clear();

  // Within-group FedAvg.
  for (std::size_t a = 0; a < families_.size(); ++a) {
    if (!group_averagers_[a].empty()) {
      group_averagers_[a].ApplyTo(group_models_[a]->store());
    }
  }

  // Confidence-weighted ensemble distillation into the server model.
  // Group weight = number of clients that participated this round.
  std::vector<double> group_weight(families_.size(), 0.0);
  double total = 0.0;
  for (std::size_t a = 0; a < families_.size(); ++a) {
    group_weight[a] = group_round_clients_[a];
    total += group_weight[a];
  }
  group_round_clients_.assign(families_.size(), 0);
  if (total <= 0) return;

  nn::SgdOptions sgd_opts;
  sgd_opts.lr = options_.server_lr;
  sgd_opts.momentum = 0.9;
  nn::Sgd sgd(*server_model_.net, sgd_opts);

  const int n_public = public_features_.dim(0);
  const int batch = std::max(
      1, n_public / options_.distill_batches);
  for (int step = 0; step < options_.distill_batches; ++step) {
    // Random public batch.
    std::vector<int> idx(static_cast<std::size_t>(batch));
    for (auto& i : idx) {
      i = static_cast<int>(
          rng.UniformInt(static_cast<std::uint64_t>(n_public)));
    }
    Shape bshape = public_features_.shape();
    bshape[0] = batch;
    Tensor x(bshape);
    const std::size_t elems = x.numel() / static_cast<std::size_t>(batch);
    for (int i = 0; i < batch; ++i) {
      const Scalar* src =
          public_features_.data().data() +
          static_cast<std::size_t>(idx[static_cast<std::size_t>(i)]) * elems;
      Scalar* dst = x.data().data() + static_cast<std::size_t>(i) * elems;
      for (std::size_t e = 0; e < elems; ++e) dst[e] = src[e];
    }

    // Weighted consensus teacher.  FinishRound is a serial phase, but
    // GroupLogits requires eval_mu_ unconditionally (see fedet.h); the
    // acquisition is uncontended here.
    Tensor teacher;
    core::MutexLock lock(eval_mu_);
    for (std::size_t a = 0; a < families_.size(); ++a) {
      if (group_weight[a] <= 0) continue;
      Tensor probs = nn::SoftmaxWithTemperature(GroupLogits(static_cast<int>(a), x),
                                                options_.temperature);
      probs.Scale(static_cast<Scalar>(group_weight[a] / total));
      if (teacher.empty()) {
        teacher = std::move(probs);
      } else {
        teacher.AddInPlace(probs);
      }
    }

    // Per-sample confidence weighting (Fed-ET's weighted consensus): scale
    // each sample's soft target toward one-hot confidence by re-weighting
    // the KD gradient with the teacher's max probability.
    const int classes = teacher.dim(1);
    sgd.ZeroGrad();
    const Tensor student = server_model_.net->Forward(x, true);
    Tensor kd_grad;
    nn::DistillationKL(student, teacher, options_.temperature, kd_grad);
    for (int i = 0; i < batch; ++i) {
      Scalar conf = 0;
      for (int c = 0; c < classes; ++c) {
        conf = std::max(conf,
                        teacher[static_cast<std::size_t>(i) * classes + c]);
      }
      for (int c = 0; c < classes; ++c) {
        kd_grad[static_cast<std::size_t>(i) * classes + c] *= conf;
      }
    }
    server_model_.net->Backward(kd_grad);
    sgd.Step();
  }
}

Tensor FedEt::GlobalLogits(const Tensor& x) {
  return server_model_.net->Forward(x, false);
}

Tensor FedEt::ClientLogits(int client_id, const Tensor& x) {
  // Shared group models; see eval_mu_ in the header.
  core::MutexLock lock(eval_mu_);
  return GroupLogits(ArchOf(client_id), x);
}

void FedEt::SaveState(fl::SnapshotWriter& writer) const {
  MHB_CHECK(!group_models_.empty()) << "Setup not called";
  writer.WriteString(name());
  writer.WriteU32(static_cast<std::uint32_t>(group_models_.size()));
  for (const auto& group : group_models_) {
    writer.WriteBytes(group->store().Serialize());
  }
  writer.WriteBytes(
      fl::ParamStore::FromModule(*server_model_.net).Serialize());
}

void FedEt::LoadState(fl::SnapshotReader& reader) {
  MHB_CHECK(!group_models_.empty()) << "Setup not called";
  const std::string saved = reader.ReadString();
  MHB_CHECK_EQ(saved, name()) << "algorithm state belongs to" << saved;
  const std::uint32_t groups = reader.ReadU32();
  MHB_CHECK_EQ(groups, group_models_.size())
      << "restored group count mismatch";
  for (auto& group : group_models_) {
    group->store() = fl::ParamStore::Deserialize(reader.ReadBytes());
  }
  fl::ParamStore::Deserialize(reader.ReadBytes()).LoadAll(*server_model_.net);
}

}  // namespace mhbench::algorithms
