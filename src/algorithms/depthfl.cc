#include "algorithms/depthfl.h"

#include "data/loader.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace mhbench::algorithms {

DepthFl::DepthFl(models::FamilyPtr family, double distill_weight,
                 double temperature, std::uint64_t seed)
    : WeightSharingAlgorithm(std::move(family), seed),
      distill_weight_(distill_weight),
      temperature_(temperature) {
  MHB_CHECK_GE(distill_weight, 0.0);
  MHB_CHECK_GT(temperature, 0.0);
}

models::BuildSpec DepthFl::ClientSpec(int client_id, int /*round*/,
                                      Rng& /*rng*/) {
  models::BuildSpec spec;
  spec.depth_ratio = ClientCapacity(client_id);
  spec.multi_head = true;
  return spec;
}

models::BuildSpec DepthFl::GlobalEvalSpec() {
  models::BuildSpec spec;
  spec.depth_ratio = MaxCapacity();
  return spec;
}

double DepthFl::TrainClientModel(models::BuiltModel& built, int /*client_id*/,
                                 const data::Dataset& shard, Rng& rng) {
  auto& trunk = built.trunk();
  const auto opts = ctx_->local_options(last_round_);
  nn::OptimizerOptions opt_opts;
  opt_opts.kind = opts.optimizer;
  opt_opts.lr = opts.lr;
  opt_opts.momentum = opts.momentum;
  opt_opts.weight_decay = opts.weight_decay;
  const auto sgd_ptr = nn::MakeOptimizer(trunk, opt_opts);
  nn::Optimizer& sgd = *sgd_ptr;

  const int num_heads = trunk.num_heads();
  double last_loss = 0.0;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    data::BatchIterator batches(shard, opts.batch_size, rng);
    Tensor x;
    std::vector<int> y;
    double loss_sum = 0.0;
    int batch_count = 0;
    while (batches.Next(x, y)) {
      sgd.ZeroGrad();
      auto logits = trunk.ForwardHeads(x, true);
      std::vector<Tensor> grads(logits.size());

      // Consensus soft target: mean of all heads' tempered probabilities.
      Tensor consensus;
      if (num_heads > 1 && distill_weight_ > 0) {
        consensus = nn::SoftmaxWithTemperature(logits[0], temperature_);
        for (int h = 1; h < num_heads; ++h) {
          consensus.AddInPlace(nn::SoftmaxWithTemperature(
              logits[static_cast<std::size_t>(h)], temperature_));
        }
        consensus.Scale(1.0f / static_cast<Scalar>(num_heads));
      }

      double batch_loss = 0.0;
      for (int h = 0; h < num_heads; ++h) {
        const auto hu = static_cast<std::size_t>(h);
        Tensor ce_grad;
        batch_loss += nn::SoftmaxCrossEntropy(logits[hu], y, ce_grad);
        grads[hu] = std::move(ce_grad);
        if (num_heads > 1 && distill_weight_ > 0) {
          Tensor kd_grad;
          batch_loss += distill_weight_ *
                        nn::DistillationKL(logits[hu], consensus,
                                           temperature_, kd_grad);
          kd_grad.Scale(static_cast<Scalar>(distill_weight_));
          grads[hu].AddInPlace(kd_grad);
        }
      }
      trunk.BackwardHeads(grads);
      if (opts.grad_clip > 0) sgd.ClipGradNorm(opts.grad_clip);
      sgd.Step();
      loss_sum += batch_loss;
      ++batch_count;
    }
    last_loss = loss_sum / std::max(1, batch_count);
  }
  return last_loss;
}

}  // namespace mhbench::algorithms
