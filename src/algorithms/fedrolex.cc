#include "algorithms/fedrolex.h"

// Header-only behaviour; this translation unit anchors the vtable.
namespace mhbench::algorithms {}  // namespace mhbench::algorithms
