#include "algorithms/fedepth.h"

#include "data/loader.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace mhbench::algorithms {

double FeDepth::TrainClientModel(models::BuiltModel& built, int /*client_id*/,
                                 const data::Dataset& shard, Rng& rng) {
  auto& trunk = built.trunk();
  const auto opts = ctx_->local_options(last_round_);
  const int total = trunk.num_blocks();
  // Segment-wise training: roughly half the kept blocks update per epoch
  // (FeDepth fits backward memory by splitting the net into segments).
  const int active = std::max(1, (total + 1) / 2);

  nn::OptimizerOptions opt_opts;
  opt_opts.kind = opts.optimizer;
  opt_opts.lr = opts.lr;
  opt_opts.momentum = opts.momentum;
  opt_opts.weight_decay = opts.weight_decay;
  const auto sgd_ptr = nn::MakeOptimizer(trunk, opt_opts);
  nn::Optimizer& sgd = *sgd_ptr;

  // Stem and head always train; block windows rotate.
  auto in_window = [&](const std::string& name, int start) {
    if (name.rfind("stem/", 0) == 0) return true;
    if (name.rfind("head", 0) == 0) return true;
    for (int k = 0; k < active; ++k) {
      const int b = (start + k) % total;
      if (name.rfind(trunk.block_name(b) + "/", 0) == 0) return true;
    }
    return false;
  };

  std::vector<nn::NamedParam> params;
  trunk.CollectParams("", params);

  double last_loss = 0.0;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    // The active segment rotates per batch, so every segment is trained
    // each epoch while only one segment's activations need gradients at a
    // time (the memory saving).
    int start =
        static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(total)));
    data::BatchIterator batches(shard, opts.batch_size, rng);
    Tensor x;
    std::vector<int> y;
    double loss_sum = 0.0;
    int batch_count = 0;
    while (batches.Next(x, y)) {
      sgd.ZeroGrad();
      const Tensor logits = trunk.Forward(x, true);
      Tensor grad;
      loss_sum += nn::SoftmaxCrossEntropy(logits, y, grad);
      trunk.Backward(grad);
      // Freeze blocks outside the active segment by clearing gradients.
      for (auto& p : params) {
        if (!in_window(p.name, start)) p.param->ZeroGrad();
      }
      if (opts.grad_clip > 0) sgd.ClipGradNorm(opts.grad_clip);
      sgd.Step();
      start = (start + active) % total;
      ++batch_count;
    }
    last_loss = loss_sum / std::max(1, batch_count);
  }
  return last_loss;
}

}  // namespace mhbench::algorithms
