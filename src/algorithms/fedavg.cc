#include "algorithms/fedavg.h"

namespace mhbench::algorithms {

FedAvg::FedAvg(models::FamilyPtr family, double ratio, std::uint64_t seed)
    : WeightSharingAlgorithm(std::move(family), seed), ratio_(ratio) {
  MHB_CHECK_GT(ratio, 0.0);
  MHB_CHECK_LE(ratio, 1.0);
}

models::BuildSpec FedAvg::ClientSpec(int /*client_id*/, int /*round*/,
                                     Rng& /*rng*/) {
  models::BuildSpec spec;
  spec.width_ratio = ratio_;
  return spec;
}

models::BuildSpec FedAvg::GlobalEvalSpec() {
  models::BuildSpec spec;
  spec.width_ratio = ratio_;
  return spec;
}

}  // namespace mhbench::algorithms
