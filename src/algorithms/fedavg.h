// FedAvg with a homogeneous model at a fixed capacity ratio.
//
// With ratio = min over clients this is the paper's resource-aware
// homogeneous baseline ("train the smallest model everywhere") against
// which effectiveness is measured; with ratio = 1 it is classic FedAvg.
#pragma once

#include "algorithms/algorithm.h"

namespace mhbench::algorithms {

class FedAvg : public WeightSharingAlgorithm {
 public:
  FedAvg(models::FamilyPtr family, double ratio, std::uint64_t seed);

  std::string name() const override { return "fedavg"; }

 protected:
  models::BuildSpec ClientSpec(int client_id, int round, Rng& rng) override;
  models::BuildSpec GlobalEvalSpec() override;

 private:
  double ratio_;
};

}  // namespace mhbench::algorithms
