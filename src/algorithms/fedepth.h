// FeDepth (Zhang et al. 2023): memory-adaptive depth-wise training.
//
// A client instantiates the depth prefix matching its capacity (like other
// depth-level methods) but trains it *segment-wise*: each epoch only a
// rotating window of blocks receives gradient updates, so at most a
// fraction of the activations must be kept for backward.  That is FeDepth's
// signature trade-off — its training-memory footprint is far below
// DepthFL's (cf. Table I: 631 MB vs 1220 MB at x0.5), which under memory
// limits lets it host larger models than its competitors.
#pragma once

#include "algorithms/algorithm.h"

namespace mhbench::algorithms {

class FeDepth : public WeightSharingAlgorithm {
 public:
  FeDepth(models::FamilyPtr family, std::uint64_t seed)
      : WeightSharingAlgorithm(std::move(family), seed) {}

  std::string name() const override { return "fedepth"; }

 protected:
  models::BuildSpec ClientSpec(int client_id, int /*round*/,
                               Rng& /*rng*/) override {
    models::BuildSpec spec;
    spec.depth_ratio = ClientCapacity(client_id);
    return spec;
  }

  models::BuildSpec GlobalEvalSpec() override {
    models::BuildSpec spec;
    spec.depth_ratio = MaxCapacity();
    return spec;
  }

  double TrainClientModel(models::BuiltModel& built, int client_id,
                          const data::Dataset& shard, Rng& rng) override;
};

}  // namespace mhbench::algorithms
