#include "algorithms/algorithm.h"

#include <algorithm>

#include "fl/checkpoint.h"
#include "fl/client.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace mhbench::algorithms {

WeightSharingAlgorithm::WeightSharingAlgorithm(models::FamilyPtr family,
                                               std::uint64_t seed)
    : family_(std::move(family)), seed_(seed) {
  MHB_CHECK(family_ != nullptr);
}

void WeightSharingAlgorithm::Setup(const fl::FlContext& ctx, Rng& rng) {
  ctx_ = &ctx;
  Rng init = rng.Fork(seed_);
  global_ = std::make_unique<fl::GlobalModel>(family_, init);
}

double WeightSharingAlgorithm::ClientCapacity(int client_id) const {
  MHB_CHECK(ctx_ != nullptr);
  return ctx_->assignments.at(static_cast<std::size_t>(client_id)).capacity;
}

// mhb-obs-phase: serial — BeginRound runs before the round's dispatch.
void WeightSharingAlgorithm::BeginRound(int round,
                                        const std::vector<int>& participants) {
  MHB_CHECK(ctx_ != nullptr) << "Setup not called";
  if (!participants.empty()) last_round_ = round;
  if (!obs_ids_ready_ && ctx_->config->obs.registry != nullptr) {
    obs_upload_params_id_ =
        ctx_->config->obs.registry->Counter("upload_params");
    obs_ids_ready_ = true;
  }
  round_participants_ = participants;
  staged_.assign(participants.size(), fl::ClientUpdate{});
  slot_of_client_.assign(static_cast<std::size_t>(ctx_->num_clients()), 0);
  for (std::size_t i = 0; i < participants.size(); ++i) {
    slot_of_client_[static_cast<std::size_t>(participants[i])] = i;
  }
}

std::size_t WeightSharingAlgorithm::SlotOf(int client_id) const {
  MHB_CHECK_LT(static_cast<std::size_t>(client_id), slot_of_client_.size())
      << "RunClient outside BeginRound participants";
  return slot_of_client_[static_cast<std::size_t>(client_id)];
}

// mhb-obs-phase: parallel — RunClient may execute concurrently; only
// pre-registered per-thread-sink calls (Add/Observe) are legal here.
void WeightSharingAlgorithm::RunClient(int client_id, int round, Rng& rng) {
  MHB_CHECK(ctx_ != nullptr) << "Setup not called";
  obs::Tracer* const tracer = ctx_->config->obs.tracer;
  const models::BuildSpec spec = ClientSpec(client_id, round, rng);
  Rng build_rng = rng.Fork(0xB1D);
  obs::Span build_span(tracer, "build_submodel", "client");
  build_span.Arg("client", static_cast<std::int64_t>(client_id));
  models::BuiltModel built = family_->Build(spec, build_rng);
  global_->store().LoadInto(*built.net, built.mapping);
  build_span.End();
  const data::Dataset& shard =
      ctx_->shards.at(static_cast<std::size_t>(client_id));
  {
    obs::Span train_span(tracer, "local_train", "client");
    train_span.Arg("client", static_cast<std::int64_t>(client_id));
    train_span.Arg("samples", static_cast<std::int64_t>(shard.size()));
    TrainClientModel(built, client_id, shard, rng);
  }
  const double weight = weighting_ == AggregationWeighting::kDataSize
                            ? static_cast<double>(shard.size())
                            : 1.0;
  // Stage the upload; accumulation is deferred to FinishRound so concurrent
  // participants never touch the shared averager.
  obs::Span extract_span(tracer, "extract_update", "client");
  extract_span.Arg("client", static_cast<std::int64_t>(client_id));
  fl::ClientUpdate update =
      fl::ExtractUpdate(*built.net, built.mapping, weight);
  if (obs_ids_ready_) {
    std::int64_t params = 0;
    for (const auto& v : update.values) {
      params += static_cast<std::int64_t>(v.numel());
    }
    extract_span.Arg("params", params);
    ctx_->config->obs.registry->Add(obs_upload_params_id_, params);
  }
  staged_[SlotOf(client_id)] = std::move(update);
}

// mhb-obs-phase: serial — FinishRound merges at the round barrier.
void WeightSharingAlgorithm::FinishRound(int round, Rng& rng) {
  obs::Registry* const reg = ctx_ != nullptr ? ctx_->config->obs.registry
                                             : nullptr;
  obs::Span merge_span(ctx_ != nullptr ? ctx_->config->obs.tracer : nullptr,
                       "aggregate", "server");
  std::int64_t merged = 0;
  for (const auto& update : staged_) {
    if (!update.empty()) {
      averager_.Accumulate(update, global_->store());
      ++merged;
    }
  }
  staged_.clear();
  if (!averager_.empty()) {
    averager_.ApplyTo(global_->store());
  }
  merge_span.Arg("updates", merged);
  merge_span.End();
  if (reg != nullptr) reg->AddNamed("agg_updates", merged);
  PostAggregate(round, rng);
}

void WeightSharingAlgorithm::PostAggregate(int /*round*/, Rng& /*rng*/) {}

void WeightSharingAlgorithm::SaveState(fl::SnapshotWriter& writer) const {
  MHB_CHECK(global_ != nullptr) << "Setup not called";
  writer.WriteString(name());
  writer.WriteI32(last_round_);
  writer.WriteBytes(global_->store().Serialize());
  SaveExtraState(writer);
}

void WeightSharingAlgorithm::LoadState(fl::SnapshotReader& reader) {
  MHB_CHECK(global_ != nullptr) << "Setup not called";
  const std::string saved = reader.ReadString();
  MHB_CHECK_EQ(saved, name()) << "algorithm state belongs to" << saved;
  last_round_ = reader.ReadI32();
  global_->store() = fl::ParamStore::Deserialize(reader.ReadBytes());
  LoadExtraState(reader);
}

void WeightSharingAlgorithm::SaveExtraState(
    fl::SnapshotWriter& /*writer*/) const {}

void WeightSharingAlgorithm::LoadExtraState(fl::SnapshotReader& /*reader*/) {}

double WeightSharingAlgorithm::MaxCapacity() const {
  MHB_CHECK(ctx_ != nullptr);
  double m = 0.0;
  for (const auto& a : ctx_->assignments) m = std::max(m, a.capacity);
  return m > 0 ? m : 1.0;
}

models::BuildSpec WeightSharingAlgorithm::GlobalEvalSpec() {
  return models::BuildSpec{};
}

Tensor WeightSharingAlgorithm::GlobalLogits(const Tensor& x) {
  // Evaluation defaults to batch statistics (HeteroFL's static batch
  // norm): running BN statistics averaged over *different-width*
  // sub-networks are mutually inconsistent, so eval-mode normalization
  // collapses.  Batch statistics over the evaluation batch are the sBN
  // equivalent; set_sbn_eval(false) exposes the collapse for ablation.
  models::BuildSpec spec = GlobalEvalSpec();
  if (UseEnsembleEval()) spec.multi_head = true;
  Rng build_rng(seed_ ^ 0x6E0BULL);
  models::BuiltModel built = family_->Build(spec, build_rng);
  global_->store().LoadInto(*built.net, built.mapping);
  if (!UseEnsembleEval()) return built.net->Forward(x, sbn_eval_);
  auto logits = built.trunk().ForwardHeads(x, sbn_eval_);
  Tensor mean = logits.front();
  for (std::size_t h = 1; h < logits.size(); ++h) mean.AddInPlace(logits[h]);
  mean.Scale(1.0f / static_cast<Scalar>(logits.size()));
  return mean;
}

models::BuildSpec WeightSharingAlgorithm::EvalSpec(int client_id) {
  Rng fixed(seed_ ^ (static_cast<std::uint64_t>(client_id) + 0xE7A1));
  return ClientSpec(client_id, last_round_, fixed);
}

Tensor WeightSharingAlgorithm::ClientLogits(int client_id, const Tensor& x) {
  const models::BuildSpec spec = EvalSpec(client_id);
  Rng build_rng(seed_ ^ 0xC11E);
  models::BuiltModel built = family_->Build(spec, build_rng);
  global_->store().LoadInto(*built.net, built.mapping);
  return built.net->Forward(x, sbn_eval_);  // sBN, see GlobalLogits
}

double WeightSharingAlgorithm::TrainClientModel(models::BuiltModel& built,
                                                int /*client_id*/,
                                                const data::Dataset& shard,
                                                Rng& rng) {
  return fl::TrainLocal(*built.net, shard, ctx_->local_options(last_round_), rng);
}

}  // namespace mhbench::algorithms
