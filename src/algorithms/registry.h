// Name -> algorithm factory, mirroring the paper's Table II.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fl/engine.h"
#include "models/zoo.h"

namespace mhbench::algorithms {

enum class HeteroLevel { kHomogeneous, kWidth, kDepth, kTopology };

struct AlgorithmInfo {
  std::string name;
  HeteroLevel level;
};

// The eight MHFL algorithms plus the homogeneous FedAvg baseline, in the
// paper's presentation order.
const std::vector<AlgorithmInfo>& AllAlgorithms();

// The paper's ratio ladder for width/depth scaling (100%, 75%, 50%, 25%).
const std::vector<double>& RatioLadder();

struct AlgorithmOptions {
  // FedAvg: model ratio of the homogeneous baseline (the effectiveness
  // baseline uses the minimum client capacity).
  double fedavg_ratio = 1.0;
  double distill_weight = 0.5;       // DepthFL self-distillation
  double distill_temperature = 2.0;  // DepthFL / Fed-ET
  double inclusive_momentum = 0.3;   // InclusiveFL layer-knowledge transfer
  double proto_lambda = 1.0;         // FedProto regularization
  int proto_dim = 16;
  std::uint64_t seed = 7;
};

// Creates the named algorithm for a task's model set.  Width/depth
// algorithms use `task_models.primary`; topology algorithms use
// `task_models.topology`.  Throws Error for unknown names.
std::unique_ptr<fl::MhflAlgorithm> MakeAlgorithm(
    const std::string& name, const models::TaskModels& task_models,
    const AlgorithmOptions& options = {});

// Level of a named algorithm (throws for unknown names).
HeteroLevel LevelOf(const std::string& name);

}  // namespace mhbench::algorithms
