#include "algorithms/inclusivefl.h"

#include "fl/checkpoint.h"

namespace mhbench::algorithms {

InclusiveFl::InclusiveFl(models::FamilyPtr family, double momentum,
                         std::uint64_t seed)
    : WeightSharingAlgorithm(std::move(family), seed), momentum_(momentum) {
  MHB_CHECK_GE(momentum, 0.0);
  MHB_CHECK_LE(momentum, 1.0);
}

models::BuildSpec InclusiveFl::ClientSpec(int client_id, int /*round*/,
                                          Rng& /*rng*/) {
  models::BuildSpec spec;
  spec.depth_ratio = ClientCapacity(client_id);
  return spec;
}

models::BuildSpec InclusiveFl::GlobalEvalSpec() {
  models::BuildSpec spec;
  spec.depth_ratio = MaxCapacity();
  return spec;
}

void InclusiveFl::BeginRound(int round, const std::vector<int>& participants) {
  WeightSharingAlgorithm::BeginRound(round, participants);
  // Snapshot the store once per participating round (serial phase) so
  // PostAggregate can compute per-block updates; taking it here rather than
  // lazily in RunClient keeps the concurrent dispatch phase read-only.
  if (!participants.empty()) {
    pre_round_.clear();
    for (const auto& name : global_->store().Names()) {
      pre_round_[name] = global_->store().Get(name);
    }
  }
}

void InclusiveFl::PostAggregate(int /*round*/, Rng& /*rng*/) {
  if (momentum_ <= 0 || pre_round_.empty()) return;
  // Ordered block names from the full model.
  auto& trunk = global_->SyncedTrunk();
  for (int b = 0; b + 1 < trunk.num_blocks(); ++b) {
    const std::string from = trunk.block_name(b + 1) + "/";
    const std::string to = trunk.block_name(b) + "/";
    for (const auto& name : global_->store().Names()) {
      if (name.rfind(from, 0) != 0) continue;
      if (name.find("running_") != std::string::npos) continue;
      const std::string suffix = name.substr(from.size());
      const std::string target = to + suffix;
      if (!global_->store().Has(target)) continue;
      const Tensor& now = global_->store().Get(name);
      const Tensor& before = pre_round_.at(name);
      Tensor& dst = global_->store().GetMutable(target);
      if (now.shape() != before.shape() || now.shape() != dst.shape()) {
        continue;  // shape-incompatible neighbours (stage boundaries)
      }
      // dst += momentum * (now - before)
      Tensor delta = now;
      delta.SubInPlace(before);
      dst.AxpyInPlace(static_cast<Scalar>(momentum_), delta);
    }
  }
  pre_round_.clear();
}

void InclusiveFl::SaveExtraState(fl::SnapshotWriter& writer) const {
  writer.WriteU32(static_cast<std::uint32_t>(pre_round_.size()));
  for (const auto& [name, t] : pre_round_) {
    writer.WriteString(name);
    writer.WriteTensor(t);
  }
}

void InclusiveFl::LoadExtraState(fl::SnapshotReader& reader) {
  pre_round_.clear();
  const std::uint32_t count = reader.ReadU32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = reader.ReadString();
    pre_round_[name] = reader.ReadTensor();
  }
}

}  // namespace mhbench::algorithms
