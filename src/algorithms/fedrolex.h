// FedRolex (Alam et al. NeurIPS'22): rolling sub-model extraction.  A
// client's kept channels form a window that advances by one channel every
// round and wraps around, so every global coordinate is trained over time
// even by small clients.
#pragma once

#include "algorithms/algorithm.h"

namespace mhbench::algorithms {

class FedRolex : public WeightSharingAlgorithm {
 public:
  FedRolex(models::FamilyPtr family, std::uint64_t seed)
      : WeightSharingAlgorithm(std::move(family), seed) {}

  std::string name() const override { return "fedrolex"; }

 protected:
  models::BuildSpec ClientSpec(int client_id, int round,
                               Rng& /*rng*/) override {
    models::BuildSpec spec;
    spec.width_ratio = ClientCapacity(client_id);
    spec.rolling = true;
    spec.width_offset = round;
    return spec;
  }

  models::BuildSpec EvalSpec(int client_id) override {
    // Serve the prefix sub-model: after enough rounds all coordinates are
    // trained, so the prefix is as good as any window and is deterministic.
    models::BuildSpec spec;
    spec.width_ratio = ClientCapacity(client_id);
    return spec;
  }

  // FedRolex trains every coordinate of the full model (the window wraps),
  // so the global model is evaluated at full width regardless of client
  // capacities -- its signature advantage.  (Base default is full.)
};

}  // namespace mhbench::algorithms
