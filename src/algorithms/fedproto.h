// FedProto (Tan et al. AAAI'22): federated prototype learning across
// heterogeneous architectures.
//
// Clients keep fully personal models (no weight aggregation).  Each client
// trains with CE plus a prototype-regularization term pulling its projected
// class-mean embeddings toward the global prototypes; the server only
// aggregates per-class prototype vectors.  Since architectures embed into
// different dimensions, every client owns a small projection head into the
// shared prototype space (a standard FedProto deployment detail).
//
// Global accuracy is measured with a committee: one representative client
// model per architecture, classifying by distance to the global prototypes
// (the paper's prototype-based inference), averaged over the committee.
#pragma once

#include <map>

#include "fl/engine.h"
#include "models/model_spec.h"
#include "nn/linear.h"

namespace mhbench::algorithms {

class FedProto : public fl::MhflAlgorithm {
 public:
  FedProto(std::vector<models::FamilyPtr> families, double lambda,
           int proto_dim, std::uint64_t seed);

  std::string name() const override { return "fedproto"; }

  void Setup(const fl::FlContext& ctx, Rng& rng) override;
  void RunClient(int client_id, int round, Rng& rng) override;
  void FinishRound(int round, Rng& rng) override;
  Tensor GlobalLogits(const Tensor& x) override;
  Tensor ClientLogits(int client_id, const Tensor& x) override;

 private:
  struct ClientState {
    int arch = 0;
    models::BuiltModel model;
    std::unique_ptr<nn::Linear> proj;  // embedding -> prototype space
  };

  ClientState& GetOrCreateState(int client_id);
  int ArchOf(int client_id) const;
  // Projected pooled embedding [n, proto_dim] plus logits of the deepest
  // head [n, classes] (eval mode).
  void EmbedAndLogits(ClientState& state, const Tensor& x, Tensor& proto_emb,
                      Tensor& logits);
  Tensor DistanceLogits(const Tensor& proto_emb) const;

  std::vector<models::FamilyPtr> families_;
  double lambda_;
  int proto_dim_;
  std::uint64_t seed_;
  const fl::FlContext* ctx_ = nullptr;
  int num_classes_ = 0;

  std::map<int, ClientState> states_;
  // Global prototypes [classes, proto_dim]; empty until the first round
  // completes.
  Tensor global_protos_;
  // Staged uploads for the current round.
  Tensor proto_sum_;
  std::vector<double> proto_count_;
};

}  // namespace mhbench::algorithms
