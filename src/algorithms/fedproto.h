// FedProto (Tan et al. AAAI'22): federated prototype learning across
// heterogeneous architectures.
//
// Clients keep fully personal models (no weight aggregation).  Each client
// trains with CE plus a prototype-regularization term pulling its projected
// class-mean embeddings toward the global prototypes; the server only
// aggregates per-class prototype vectors.  Since architectures embed into
// different dimensions, every client owns a small projection head into the
// shared prototype space (a standard FedProto deployment detail).
//
// Global accuracy is measured with a committee: one representative client
// model per architecture, classifying by distance to the global prototypes
// (the paper's prototype-based inference), averaged over the committee.
#pragma once

#include <map>

#include "fl/engine.h"
#include "models/model_spec.h"
#include "nn/linear.h"

namespace mhbench::algorithms {

class FedProto : public fl::MhflAlgorithm {
 public:
  FedProto(std::vector<models::FamilyPtr> families, double lambda,
           int proto_dim, std::uint64_t seed);

  std::string name() const override { return "fedproto"; }

  void Setup(const fl::FlContext& ctx, Rng& rng) override;
  // Pre-creates participant states (lazily built otherwise) so RunClient
  // never mutates the shared state map.
  void BeginRound(int round, const std::vector<int>& participants) override;
  void RunClient(int client_id, int round, Rng& rng) override;
  void FinishRound(int round, Rng& rng) override;
  // Pre-creates every client's state for the concurrent stability loop.
  void PrepareEvaluation() override;
  Tensor GlobalLogits(const Tensor& x) override;
  Tensor ClientLogits(int client_id, const Tensor& x) override;

  // Checkpoint hooks: the persistent state is the global prototypes plus
  // every created client's personal model + projection head.  LoadState
  // recreates each saved client's state deterministically (same seed path
  // as a live run) and then overwrites its parameters.
  void SaveState(fl::SnapshotWriter& writer) const override;
  void LoadState(fl::SnapshotReader& reader) override;

 private:
  struct ClientState {
    int arch = 0;
    models::BuiltModel model;
    std::unique_ptr<nn::Linear> proj;  // embedding -> prototype space
  };

  // One round's staged prototype uploads from one client: per observed
  // sample its class and projected embedding, in observation order.
  // FinishRound replays these into proto_sum_/proto_count_ in participant
  // then sample order — the exact floating-point op sequence the eager
  // serial accumulation performed, keeping parallel runs bit-identical.
  struct ProtoStage {
    std::vector<int> classes;       // one per sample
    std::vector<Scalar> embeddings; // proto_dim_ values per sample
  };

  ClientState& GetOrCreateState(int client_id);
  int ArchOf(int client_id) const;
  // Projected pooled embedding [n, proto_dim] plus logits of the deepest
  // head [n, classes] (eval mode).
  void EmbedAndLogits(ClientState& state, const Tensor& x, Tensor& proto_emb,
                      Tensor& logits);
  Tensor DistanceLogits(const Tensor& proto_emb) const;

  std::vector<models::FamilyPtr> families_;
  double lambda_;
  int proto_dim_;
  std::uint64_t seed_;
  const fl::FlContext* ctx_ = nullptr;
  int num_classes_ = 0;

  std::map<int, ClientState> states_;
  // Global prototypes [classes, proto_dim]; empty until the first round
  // completes.
  Tensor global_protos_;
  // Per-round accumulators, filled serially in FinishRound from staged_.
  Tensor proto_sum_;
  std::vector<double> proto_count_;
  // Current round's participants (dispatch order) and their staged uploads.
  std::vector<int> round_participants_;
  std::vector<ProtoStage> staged_;
  std::vector<std::size_t> slot_of_client_;
};

}  // namespace mhbench::algorithms
