// InclusiveFL (Liu et al. KDD'22): depth-level heterogeneity with momentum
// knowledge transfer.
//
// Clients train the block prefix matching their capacity with a single head
// at their depth.  After the masked average, the server transfers a
// momentum-scaled fraction of each deeper block's round update onto the
// preceding block (only between shape-compatible neighbours at sim scale),
// approximating the paper's momentum distillation that lets shallow models
// benefit from layers they never train.
#pragma once

#include <map>

#include "algorithms/algorithm.h"

namespace mhbench::algorithms {

class InclusiveFl : public WeightSharingAlgorithm {
 public:
  InclusiveFl(models::FamilyPtr family, double momentum, std::uint64_t seed);

  std::string name() const override { return "inclusivefl"; }

 protected:
  models::BuildSpec ClientSpec(int client_id, int /*round*/,
                               Rng& /*rng*/) override;
  models::BuildSpec GlobalEvalSpec() override;
  void PostAggregate(int round, Rng& rng) override;

 public:
  // Snapshots the pre-round store (serial phase) for PostAggregate.
  void BeginRound(int round, const std::vector<int>& participants) override;

 protected:
  // pre_round_ persists across the round barrier (BeginRound only refreshes
  // it when the round has participants), so checkpoints must carry it.
  void SaveExtraState(fl::SnapshotWriter& writer) const override;
  void LoadExtraState(fl::SnapshotReader& reader) override;

 private:
  double momentum_;
  // Snapshot of block parameters taken before the round's aggregation, for
  // computing per-block updates.
  std::map<std::string, Tensor> pre_round_;
};

}  // namespace mhbench::algorithms
