#include "algorithms/fedproto.h"

#include "data/loader.h"
#include "fl/checkpoint.h"
#include "fl/param_store.h"
#include "nn/init.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace mhbench::algorithms {
namespace {

using models::TrunkModel;

// Pools an embedding to [N, F]: channels-first means averaging all trailing
// spatial dims; sequence-first means averaging the sequence axis.
Tensor PoolEmbedding(const Tensor& emb, TrunkModel::EmbeddingLayout layout) {
  MHB_CHECK_GE(emb.ndim(), 2);
  const int n = emb.dim(0);
  if (emb.ndim() == 2) return emb;
  if (layout == TrunkModel::EmbeddingLayout::kSeqFirst) {
    MHB_CHECK_EQ(emb.ndim(), 3);  // [N, L, D]
    const int l = emb.dim(1), d = emb.dim(2);
    Tensor out({n, d});
    for (int b = 0; b < n; ++b) {
      for (int t = 0; t < l; ++t) {
        for (int j = 0; j < d; ++j) {
          out[static_cast<std::size_t>(b) * d + j] +=
              emb[(static_cast<std::size_t>(b) * l + t) * d + j];
        }
      }
    }
    out.Scale(1.0f / static_cast<Scalar>(l));
    return out;
  }
  // Channels-first: [N, C, ...spatial].
  const int c = emb.dim(1);
  const std::size_t spatial = emb.numel() / (static_cast<std::size_t>(n) * c);
  Tensor out({n, c});
  const Scalar* p = emb.data().data();
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      Scalar acc = 0;
      const Scalar* plane =
          p + (static_cast<std::size_t>(b) * c + ch) * spatial;
      for (std::size_t i = 0; i < spatial; ++i) acc += plane[i];
      out[static_cast<std::size_t>(b) * c + ch] =
          acc / static_cast<Scalar>(spatial);
    }
  }
  return out;
}

// Adjoint of PoolEmbedding.
Tensor UnpoolGrad(const Tensor& grad_pooled, const Shape& emb_shape,
                  TrunkModel::EmbeddingLayout layout) {
  if (static_cast<int>(emb_shape.size()) == 2) return grad_pooled;
  Tensor out(emb_shape);
  const int n = emb_shape[0];
  if (layout == TrunkModel::EmbeddingLayout::kSeqFirst) {
    const int l = emb_shape[1], d = emb_shape[2];
    const Scalar inv = 1.0f / static_cast<Scalar>(l);
    for (int b = 0; b < n; ++b) {
      for (int t = 0; t < l; ++t) {
        for (int j = 0; j < d; ++j) {
          out[(static_cast<std::size_t>(b) * l + t) * d + j] =
              grad_pooled[static_cast<std::size_t>(b) * d + j] * inv;
        }
      }
    }
    return out;
  }
  const int c = emb_shape[1];
  const std::size_t spatial = out.numel() / (static_cast<std::size_t>(n) * c);
  const Scalar inv = 1.0f / static_cast<Scalar>(spatial);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const Scalar g =
          grad_pooled[static_cast<std::size_t>(b) * c + ch] * inv;
      Scalar* plane = out.data().data() +
                      (static_cast<std::size_t>(b) * c + ch) * spatial;
      for (std::size_t i = 0; i < spatial; ++i) plane[i] = g;
    }
  }
  return out;
}

}  // namespace

FedProto::FedProto(std::vector<models::FamilyPtr> families, double lambda,
                   int proto_dim, std::uint64_t seed)
    : families_(std::move(families)),
      lambda_(lambda),
      proto_dim_(proto_dim),
      seed_(seed) {
  MHB_CHECK(!families_.empty());
  MHB_CHECK_GE(lambda_, 0.0);
  MHB_CHECK_GT(proto_dim_, 0);
}

void FedProto::Setup(const fl::FlContext& ctx, Rng& /*rng*/) {
  ctx_ = &ctx;
  num_classes_ = ctx.task->train.num_classes;
  proto_sum_ = Tensor({num_classes_, proto_dim_});
  proto_count_.assign(static_cast<std::size_t>(num_classes_), 0.0);
}

int FedProto::ArchOf(int client_id) const {
  const int hint =
      ctx_->assignments.at(static_cast<std::size_t>(client_id)).arch_index;
  return hint % static_cast<int>(families_.size());
}

FedProto::ClientState& FedProto::GetOrCreateState(int client_id) {
  auto it = states_.find(client_id);
  if (it != states_.end()) return it->second;
  ClientState state;
  state.arch = ArchOf(client_id);
  Rng rng(seed_ ^ (static_cast<std::uint64_t>(client_id) * 0x9E37ULL + 1));
  models::BuildSpec spec;
  state.model = families_[static_cast<std::size_t>(state.arch)]->Build(spec, rng);
  state.model.trunk().set_capture_embedding(true);
  // Projection from the family's embedding width into prototype space.
  const Tensor x_probe = [&] {
    Shape s = families_[static_cast<std::size_t>(state.arch)]->sample_shape();
    s.insert(s.begin(), 1);
    return Tensor(s);  // zeros are fine for a shape probe
  }();
  state.model.trunk().ForwardHeads(x_probe, false);
  const Tensor pooled = PoolEmbedding(state.model.trunk().last_embedding(),
                                      state.model.trunk().embedding_layout());
  const int emb_dim = pooled.dim(1);
  state.proj = std::make_unique<nn::Linear>(
      nn::KaimingNormal({proto_dim_, emb_dim}, emb_dim, rng),
      Tensor({proto_dim_}));
  return states_.emplace(client_id, std::move(state)).first->second;
}

void FedProto::EmbedAndLogits(ClientState& state, const Tensor& x,
                              Tensor& proto_emb, Tensor& logits) {
  auto& trunk = state.model.trunk();
  logits = trunk.ForwardHeads(x, false).back();
  const Tensor pooled =
      PoolEmbedding(trunk.last_embedding(), trunk.embedding_layout());
  proto_emb = state.proj->Forward(pooled, false);
}

Tensor FedProto::DistanceLogits(const Tensor& proto_emb) const {
  MHB_CHECK(!global_protos_.empty());
  const int n = proto_emb.dim(0);
  Tensor logits({n, num_classes_});
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < num_classes_; ++c) {
      double d2 = 0.0;
      for (int j = 0; j < proto_dim_; ++j) {
        const double d =
            proto_emb[static_cast<std::size_t>(i) * proto_dim_ + j] -
            global_protos_[static_cast<std::size_t>(c) * proto_dim_ + j];
        d2 += d * d;
      }
      logits[static_cast<std::size_t>(i) * num_classes_ + c] =
          static_cast<Scalar>(-d2);
    }
  }
  return logits;
}

void FedProto::BeginRound(int /*round*/, const std::vector<int>& participants) {
  MHB_CHECK(ctx_ != nullptr);
  round_participants_ = participants;
  staged_.assign(participants.size(), ProtoStage{});
  slot_of_client_.assign(static_cast<std::size_t>(ctx_->num_clients()), 0);
  for (std::size_t i = 0; i < participants.size(); ++i) {
    slot_of_client_[static_cast<std::size_t>(participants[i])] = i;
    // Create states serially; client state construction is seeded purely by
    // the client id, so early creation leaves contents unchanged.
    GetOrCreateState(participants[i]);
  }
}

void FedProto::PrepareEvaluation() {
  MHB_CHECK(ctx_ != nullptr);
  for (int c = 0; c < ctx_->num_clients(); ++c) GetOrCreateState(c);
}

void FedProto::RunClient(int client_id, int round, Rng& rng) {
  MHB_CHECK(ctx_ != nullptr);
  ClientState& state = GetOrCreateState(client_id);
  auto& trunk = state.model.trunk();
  const data::Dataset& shard =
      ctx_->shards.at(static_cast<std::size_t>(client_id));
  const auto opts = ctx_->local_options(round);

  nn::OptimizerOptions opt_opts;
  opt_opts.kind = opts.optimizer;
  opt_opts.lr = opts.lr;
  opt_opts.momentum = opts.momentum;
  opt_opts.weight_decay = opts.weight_decay;
  const auto model_opt = nn::MakeOptimizer(trunk, opt_opts);
  const auto proj_opt = nn::MakeOptimizer(*state.proj, opt_opts);
  nn::Optimizer& sgd_model = *model_opt;
  nn::Optimizer& sgd_proj = *proj_opt;

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    data::BatchIterator batches(shard, opts.batch_size, rng);
    Tensor x;
    std::vector<int> y;
    while (batches.Next(x, y)) {
      sgd_model.ZeroGrad();
      sgd_proj.ZeroGrad();
      auto logits = trunk.ForwardHeads(x, true);
      std::vector<Tensor> grads(logits.size());
      Tensor ce_grad;
      nn::SoftmaxCrossEntropy(logits.back(), y, ce_grad);
      grads.back() = std::move(ce_grad);

      Tensor emb_grad;
      if (!global_protos_.empty() && lambda_ > 0) {
        const Tensor& emb = trunk.last_embedding();
        const Tensor pooled = PoolEmbedding(emb, trunk.embedding_layout());
        const Tensor proto_emb = state.proj->Forward(pooled, true);
        // Targets: each sample's class prototype.
        Tensor target({proto_emb.dim(0), proto_dim_});
        for (int i = 0; i < proto_emb.dim(0); ++i) {
          const int cls = y[static_cast<std::size_t>(i)];
          for (int j = 0; j < proto_dim_; ++j) {
            target[static_cast<std::size_t>(i) * proto_dim_ + j] =
                global_protos_[static_cast<std::size_t>(cls) * proto_dim_ + j];
          }
        }
        Tensor mse_grad;
        nn::MeanSquaredError(proto_emb, target, mse_grad);
        mse_grad.Scale(static_cast<Scalar>(lambda_));
        const Tensor pooled_grad = state.proj->Backward(mse_grad);
        emb_grad =
            UnpoolGrad(pooled_grad, emb.shape(), trunk.embedding_layout());
      }
      trunk.BackwardHeads(grads, emb_grad);
      if (opts.grad_clip > 0) sgd_model.ClipGradNorm(opts.grad_clip);
      sgd_model.Step();
      sgd_proj.Step();
    }
  }

  // Stage prototype uploads into this client's private buffer: the class
  // and projected embedding of every sample, in observation order.  The
  // shared accumulators are only touched in FinishRound (serial).
  ProtoStage& stage = staged_[slot_of_client_[static_cast<std::size_t>(
      client_id)]];
  data::BatchIterator batches(shard, opts.batch_size, rng, /*shuffle=*/false);
  Tensor x;
  std::vector<int> y;
  while (batches.Next(x, y)) {
    Tensor proto_emb, logits;
    EmbedAndLogits(state, x, proto_emb, logits);
    for (int i = 0; i < proto_emb.dim(0); ++i) {
      stage.classes.push_back(y[static_cast<std::size_t>(i)]);
      for (int j = 0; j < proto_dim_; ++j) {
        stage.embeddings.push_back(
            proto_emb[static_cast<std::size_t>(i) * proto_dim_ + j]);
      }
    }
  }
}

void FedProto::FinishRound(int /*round*/, Rng& /*rng*/) {
  // Replay staged uploads in participant order, sample order — the same
  // float additions, in the same order, as eager serial accumulation.
  for (const ProtoStage& stage : staged_) {
    for (std::size_t s = 0; s < stage.classes.size(); ++s) {
      const int cls = stage.classes[s];
      for (int j = 0; j < proto_dim_; ++j) {
        proto_sum_[static_cast<std::size_t>(cls) * proto_dim_ + j] +=
            stage.embeddings[s * static_cast<std::size_t>(proto_dim_) +
                             static_cast<std::size_t>(j)];
      }
      proto_count_[static_cast<std::size_t>(cls)] += 1.0;
    }
  }
  staged_.clear();

  bool any = false;
  for (double c : proto_count_) {
    if (c > 0) any = true;
  }
  if (!any) return;
  if (global_protos_.empty()) {
    global_protos_ = Tensor({num_classes_, proto_dim_});
  }
  for (int c = 0; c < num_classes_; ++c) {
    const double count = proto_count_[static_cast<std::size_t>(c)];
    if (count <= 0) continue;  // keep previous prototype
    for (int j = 0; j < proto_dim_; ++j) {
      global_protos_[static_cast<std::size_t>(c) * proto_dim_ + j] =
          static_cast<Scalar>(
              proto_sum_[static_cast<std::size_t>(c) * proto_dim_ + j] /
              count);
    }
  }
  proto_sum_.Fill(0.0f);
  proto_count_.assign(static_cast<std::size_t>(num_classes_), 0.0);
}

Tensor FedProto::GlobalLogits(const Tensor& x) {
  // Committee: the first client of each architecture.
  std::vector<int> committee;
  std::vector<bool> seen(families_.size(), false);
  for (int c = 0; c < ctx_->num_clients(); ++c) {
    const auto a = static_cast<std::size_t>(ArchOf(c));
    if (!seen[a]) {
      seen[a] = true;
      committee.push_back(c);
    }
  }
  Tensor mean;
  for (int c : committee) {
    ClientState& state = GetOrCreateState(c);
    Tensor proto_emb, logits;
    EmbedAndLogits(state, x, proto_emb, logits);
    Tensor member = global_protos_.empty() ? logits
                                           : DistanceLogits(proto_emb);
    if (mean.empty()) {
      mean = std::move(member);
    } else {
      mean.AddInPlace(member);
    }
  }
  mean.Scale(1.0f / static_cast<Scalar>(committee.size()));
  return mean;
}

Tensor FedProto::ClientLogits(int client_id, const Tensor& x) {
  ClientState& state = GetOrCreateState(client_id);
  Tensor proto_emb, logits;
  EmbedAndLogits(state, x, proto_emb, logits);
  if (global_protos_.empty()) return logits;
  return DistanceLogits(proto_emb);
}

void FedProto::SaveState(fl::SnapshotWriter& writer) const {
  writer.WriteString(name());
  // global_protos_ is empty until the first participating round; an empty
  // tensor is not round-trippable through the tensor serializer, so gate
  // it behind a presence flag.
  writer.WriteU8(global_protos_.empty() ? 0 : 1);
  if (!global_protos_.empty()) writer.WriteTensor(global_protos_);
  // proto_sum_ / proto_count_ / staged_ are empty at every round barrier
  // (FinishRound drains them), so only the per-client personal models and
  // projection heads persist.
  writer.WriteU32(static_cast<std::uint32_t>(states_.size()));
  for (const auto& [client_id, state] : states_) {
    writer.WriteI32(client_id);
    writer.WriteI32(state.arch);
    writer.WriteBytes(fl::ParamStore::FromModule(*state.model.net).Serialize());
    writer.WriteBytes(fl::ParamStore::FromModule(*state.proj).Serialize());
  }
}

void FedProto::LoadState(fl::SnapshotReader& reader) {
  MHB_CHECK(ctx_ != nullptr) << "Setup not called";
  const std::string saved = reader.ReadString();
  MHB_CHECK_EQ(saved, name()) << "algorithm state belongs to" << saved;
  if (reader.ReadU8() != 0) {
    global_protos_ = reader.ReadTensor();
    MHB_CHECK(global_protos_.shape() == Shape({num_classes_, proto_dim_}))
        << "restored prototype shape mismatch";
  } else {
    global_protos_ = Tensor();
  }
  const std::uint32_t count = reader.ReadU32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const int client_id = reader.ReadI32();
    const int arch = reader.ReadI32();
    // Recreate the state along the same deterministic path as a live run,
    // then overwrite the trained parameters.
    ClientState& state = GetOrCreateState(client_id);
    MHB_CHECK_EQ(state.arch, arch)
        << "restored arch mismatch for client" << client_id;
    fl::ParamStore::Deserialize(reader.ReadBytes()).LoadAll(*state.model.net);
    fl::ParamStore::Deserialize(reader.ReadBytes()).LoadAll(*state.proj);
  }
}

}  // namespace mhbench::algorithms
