#include "algorithms/fjord.h"

#include <algorithm>

namespace mhbench::algorithms {

Fjord::Fjord(models::FamilyPtr family, std::vector<double> ratio_ladder,
             std::uint64_t seed)
    : WeightSharingAlgorithm(std::move(family), seed),
      ladder_(std::move(ratio_ladder)) {
  MHB_CHECK(!ladder_.empty());
  MHB_CHECK(std::is_sorted(ladder_.begin(), ladder_.end()));
  for (double r : ladder_) {
    MHB_CHECK(r > 0.0 && r <= 1.0);
  }
}

models::BuildSpec Fjord::ClientSpec(int client_id, int /*round*/, Rng& rng) {
  const double cap = ClientCapacity(client_id);
  // Allowed widths: every ladder entry the device can hold.
  std::vector<double> allowed;
  for (double r : ladder_) {
    if (r <= cap + 1e-9) allowed.push_back(r);
  }
  if (allowed.empty()) allowed.push_back(cap);
  models::BuildSpec spec;
  spec.width_ratio = allowed[rng.UniformInt(allowed.size())];
  return spec;
}

models::BuildSpec Fjord::EvalSpec(int client_id) {
  // Devices serve at their maximum supported width.
  models::BuildSpec spec;
  spec.width_ratio = ClientCapacity(client_id);
  return spec;
}

models::BuildSpec Fjord::GlobalEvalSpec() {
  models::BuildSpec spec;
  spec.width_ratio = MaxCapacity();
  return spec;
}

}  // namespace mhbench::algorithms
