// Transformer encoder classifier family (stands in for the paper's
// customized transformer on AG-News).
//
// Stem: token embedding + learned positional embedding.  Blocks: pre-norm
// self-attention and pre-norm FFN, both with identity residuals.  Heads:
// LayerNorm + mean-pool + linear, attachable at every block exit.
//
// Width heterogeneity slices the FFN hidden width (d_model stays fixed so
// attention is never cut mid-head); depth heterogeneity drops trailing
// blocks.  This mirrors how HeteroFL-style slicing is applied to
// transformers in practice.
#pragma once

#include "models/model_spec.h"

namespace mhbench::models {

struct TransformerLiteConfig {
  std::string name = "transformer-lite";
  int vocab_size = 64;
  int seq_len = 12;
  int d_model = 16;
  int num_heads = 2;
  int ffn_hidden = 32;
  int num_blocks = 4;
  int num_classes = 4;
  // ALBERT-style factorized embedding: tokens embed into `embed_dim` and are
  // projected up to d_model.  0 disables factorization (plain transformer).
  int factorized_embed_dim = 0;
};

class TransformerLite : public ModelFamily {
 public:
  explicit TransformerLite(TransformerLiteConfig config);

  std::string name() const override { return config_.name; }
  int num_classes() const override { return config_.num_classes; }
  Shape sample_shape() const override;  // [seq_len] of token ids
  int total_blocks() const override { return config_.num_blocks; }
  BuiltModel Build(const BuildSpec& spec, Rng& init_rng) const override;

  const TransformerLiteConfig& config() const { return config_; }

 private:
  TransformerLiteConfig config_;
};

}  // namespace mhbench::models
