// 1-D CNN family for human-activity-recognition tasks (stands in for the
// customized CNNs of Ek et al. used by the paper's HAR experiments).
//
// Structure: conv1d-bn-relu stem over [channels, window] sensor input, then
// residual conv1d blocks per stage, GAP head(s).
#pragma once

#include "models/model_spec.h"

namespace mhbench::models {

struct HarCnnConfig {
  std::string name = "har-cnn";
  int in_channels = 3;   // accelerometer axes
  int window = 32;       // samples per window
  int num_classes = 6;
  std::vector<int> stage_channels = {8, 16};
  std::vector<int> stage_blocks = {1, 1};
};

class HarCnn : public ModelFamily {
 public:
  explicit HarCnn(HarCnnConfig config);

  std::string name() const override { return config_.name; }
  int num_classes() const override { return config_.num_classes; }
  Shape sample_shape() const override;
  int total_blocks() const override;
  BuiltModel Build(const BuildSpec& spec, Rng& init_rng) const override;

  const HarCnnConfig& config() const { return config_; }

 private:
  HarCnnConfig config_;
};

}  // namespace mhbench::models
