#include "models/model_spec.h"

#include <cmath>

namespace mhbench::models {

std::vector<int> BuildSpec::ChannelIndices(int full) const {
  const int keep = ScaledCount(full, width_ratio);
  if (rolling) return RollingIndices(full, keep, width_offset % full);
  return PrefixIndices(full, keep);
}

int BuildSpec::KeptBlocks(int total) const {
  MHB_CHECK_GT(total, 0);
  MHB_CHECK_GT(depth_ratio, 0.0);
  MHB_CHECK_LE(depth_ratio, 1.0);
  const int keep = static_cast<int>(std::ceil(depth_ratio * total));
  return std::max(1, std::min(total, keep));
}

TrunkModel& BuiltModel::trunk() const {
  auto* t = dynamic_cast<TrunkModel*>(net.get());
  MHB_CHECK(t != nullptr) << "BuiltModel does not hold a TrunkModel";
  return *t;
}

TrunkModel::TrunkModel(nn::ModulePtr stem, std::vector<nn::ModulePtr> blocks,
                       std::vector<int> exit_blocks,
                       std::vector<nn::ModulePtr> heads,
                       std::vector<std::string> block_names,
                       std::vector<std::string> head_names)
    : stem_(std::move(stem)),
      blocks_(std::move(blocks)),
      exit_blocks_(std::move(exit_blocks)),
      heads_(std::move(heads)),
      block_names_(std::move(block_names)),
      head_names_(std::move(head_names)) {
  MHB_CHECK(stem_ != nullptr);
  MHB_CHECK(!heads_.empty());
  MHB_CHECK_EQ(heads_.size(), exit_blocks_.size());
  MHB_CHECK_EQ(blocks_.size(), block_names_.size());
  MHB_CHECK_EQ(heads_.size(), head_names_.size());
  for (std::size_t i = 0; i < exit_blocks_.size(); ++i) {
    MHB_CHECK_GE(exit_blocks_[i], 0);
    MHB_CHECK_LT(exit_blocks_[i], num_blocks());
    if (i > 0) MHB_CHECK_GT(exit_blocks_[i], exit_blocks_[i - 1]);
  }
  MHB_CHECK_EQ(exit_blocks_.back(), num_blocks() - 1)
      << "deepest exit must be after the last block";
}

obs::Profiler* TrunkModel::ProfilerScopeNames() {
  obs::Profiler* const prof = obs::Profiler::Current();
  if (prof != nullptr && interned_for_ != prof) {
    // Per-round sub-models die before the profiler does, so scope names
    // must not point into this model's strings — intern them instead.
    block_scope_names_.clear();
    block_scope_names_.reserve(block_names_.size());
    for (const auto& name : block_names_) {
      block_scope_names_.push_back(prof->Intern(name));
    }
    interned_for_ = prof;
  }
  return prof;
}

std::vector<Tensor> TrunkModel::ForwardHeads(const Tensor& x, bool train) {
  obs::Profiler* const prof = ProfilerScopeNames();
  std::vector<Tensor> logits;
  logits.reserve(heads_.size());
  Tensor h;
  {
    obs::ProfileScope stem_scope("stem");
    h = stem_->Forward(x, train);
  }
  std::size_t next_exit = 0;
  for (int b = 0; b < num_blocks(); ++b) {
    {
      obs::ProfileScope block_scope(
          prof != nullptr ? block_scope_names_[static_cast<std::size_t>(b)]
                          : "block");
      h = blocks_[static_cast<std::size_t>(b)]->Forward(h, train);
    }
    if (next_exit < exit_blocks_.size() && exit_blocks_[next_exit] == b) {
      if (capture_embedding_ && next_exit + 1 == exit_blocks_.size()) {
        last_embedding_ = h;
      }
      obs::ProfileScope head_scope("head");
      logits.push_back(
          heads_[next_exit]->Forward(h, train));
      ++next_exit;
    }
  }
  MHB_CHECK_EQ(next_exit, heads_.size());
  return logits;
}

Tensor TrunkModel::BackwardHeads(const std::vector<Tensor>& head_grads,
                                 const Tensor& embedding_grad) {
  MHB_CHECK_EQ(head_grads.size(), heads_.size());
  Tensor g;  // gradient flowing backwards through the trunk
  auto merge = [&g](Tensor extra) {
    if (g.empty()) {
      g = std::move(extra);
    } else {
      g.AddInPlace(extra);
    }
  };
  obs::Profiler* const prof = ProfilerScopeNames();
  int next_exit = static_cast<int>(exit_blocks_.size()) - 1;
  for (int b = num_blocks() - 1; b >= 0; --b) {
    if (next_exit >= 0 && exit_blocks_[static_cast<std::size_t>(next_exit)] == b) {
      if (!embedding_grad.empty() &&
          next_exit + 1 == static_cast<int>(exit_blocks_.size())) {
        merge(embedding_grad);
      }
      const Tensor& hg = head_grads[static_cast<std::size_t>(next_exit)];
      if (!hg.empty()) {
        obs::ProfileScope head_scope("head");
        merge(heads_[static_cast<std::size_t>(next_exit)]->Backward(hg));
      }
      --next_exit;
    }
    if (!g.empty()) {
      obs::ProfileScope block_scope(
          prof != nullptr ? block_scope_names_[static_cast<std::size_t>(b)]
                          : "block");
      g = blocks_[static_cast<std::size_t>(b)]->Backward(g);
    }
  }
  MHB_CHECK(!g.empty()) << "BackwardHeads called with no head gradients";
  obs::ProfileScope stem_scope("stem");
  return stem_->Backward(g);
}

Tensor TrunkModel::Forward(const Tensor& x, bool train) {
  return ForwardHeads(x, train).back();
}

Tensor TrunkModel::Backward(const Tensor& grad_out) {
  std::vector<Tensor> grads(heads_.size());
  grads.back() = grad_out;
  return BackwardHeads(grads);
}

void TrunkModel::CollectParams(const std::string& prefix,
                               std::vector<nn::NamedParam>& out) {
  stem_->CollectParams(nn::JoinName(prefix, "stem"), out);
  for (int b = 0; b < num_blocks(); ++b) {
    blocks_[static_cast<std::size_t>(b)]->CollectParams(
        nn::JoinName(prefix, block_names_[static_cast<std::size_t>(b)]), out);
  }
  for (std::size_t i = 0; i < heads_.size(); ++i) {
    heads_[i]->CollectParams(nn::JoinName(prefix, head_names_[i]), out);
  }
}

Tokenwise::Tokenwise(nn::ModulePtr inner) : inner_(std::move(inner)) {
  MHB_CHECK(inner_ != nullptr);
}

Tensor Tokenwise::Forward(const Tensor& x, bool train) {
  MHB_CHECK_EQ(x.ndim(), 3);
  cached_n_ = x.dim(0);
  cached_l_ = x.dim(1);
  const Tensor x2 = x.Reshape({cached_n_ * cached_l_, x.dim(2)});
  Tensor y2 = inner_->Forward(x2, train);
  return y2.Reshape({cached_n_, cached_l_, y2.dim(1)});
}

Tensor Tokenwise::Backward(const Tensor& grad_out) {
  MHB_CHECK_EQ(grad_out.ndim(), 3);
  const Tensor g2 =
      grad_out.Reshape({cached_n_ * cached_l_, grad_out.dim(2)});
  Tensor gx2 = inner_->Backward(g2);
  return gx2.Reshape({cached_n_, cached_l_, gx2.dim(1)});
}

void Tokenwise::CollectParams(const std::string& prefix,
                              std::vector<nn::NamedParam>& out) {
  inner_->CollectParams(prefix, out);
}

PositionalEmbedding::PositionalEmbedding(int seq_len, int dim, Rng& rng)
    : table_(Tensor::Randn({seq_len, dim}, rng, 0.02f)) {
  MHB_CHECK_GT(seq_len, 0);
  MHB_CHECK_GT(dim, 0);
}

Tensor PositionalEmbedding::Forward(const Tensor& x, bool /*train*/) {
  MHB_CHECK_EQ(x.ndim(), 3);
  MHB_CHECK_EQ(x.dim(1), table_.value.dim(0));
  MHB_CHECK_EQ(x.dim(2), table_.value.dim(1));
  Tensor y = x;
  const int n = x.dim(0);
  const std::size_t ld = table_.value.numel();
  for (int b = 0; b < n; ++b) {
    Scalar* row = y.data().data() + static_cast<std::size_t>(b) * ld;
    const Scalar* pos = table_.value.data().data();
    for (std::size_t i = 0; i < ld; ++i) row[i] += pos[i];
  }
  return y;
}

Tensor PositionalEmbedding::Backward(const Tensor& grad_out) {
  MHB_CHECK_EQ(grad_out.ndim(), 3);
  const int n = grad_out.dim(0);
  const std::size_t ld = table_.value.numel();
  for (int b = 0; b < n; ++b) {
    const Scalar* row =
        grad_out.data().data() + static_cast<std::size_t>(b) * ld;
    Scalar* g = table_.grad.data().data();
    for (std::size_t i = 0; i < ld; ++i) g[i] += row[i];
  }
  return grad_out;
}

void PositionalEmbedding::CollectParams(const std::string& prefix,
                                        std::vector<nn::NamedParam>& out) {
  out.push_back({nn::JoinName(prefix, "table"), &table_});
}

}  // namespace mhbench::models
