#include "models/zoo.h"

#include "core/error.h"
#include "models/albert_lite.h"
#include "models/efficientnet_like.h"
#include "models/googlenet_like.h"
#include "models/har_cnn.h"
#include "models/mobilenet_like.h"
#include "models/resnet_like.h"
#include "models/transformer_lite.h"

namespace mhbench::models {
namespace {

FamilyPtr ResNet(const std::string& name, std::vector<int> channels,
                 std::vector<int> blocks, int classes) {
  ResNetLikeConfig c;
  c.name = name;
  c.num_classes = classes;
  c.stage_channels = std::move(channels);
  c.stage_blocks = std::move(blocks);
  return std::make_shared<ResNetLike>(c);
}

FamilyPtr MobileNet(const std::string& name, std::vector<int> channels,
                    std::vector<int> blocks, int classes) {
  MobileNetLikeConfig c;
  c.name = name;
  c.num_classes = classes;
  c.stage_channels = std::move(channels);
  c.stage_blocks = std::move(blocks);
  return std::make_shared<MobileNetLike>(c);
}

FamilyPtr Transformer(const std::string& name, int blocks, int classes) {
  TransformerLiteConfig c;
  c.name = name;
  c.num_blocks = blocks;
  c.num_classes = classes;
  return std::make_shared<TransformerLite>(c);
}

FamilyPtr Albert(const std::string& name, int d_model, int ffn, int blocks,
                 int classes) {
  AlbertLiteConfig c;
  c.name = name;
  c.d_model = d_model;
  c.ffn_hidden = ffn;
  c.num_blocks = blocks;
  c.num_classes = classes;
  return std::make_shared<AlbertLite>(c);
}

FamilyPtr Har(const std::string& name, std::vector<int> channels,
              std::vector<int> blocks, int classes) {
  HarCnnConfig c;
  c.name = name;
  c.num_classes = classes;
  c.stage_channels = std::move(channels);
  c.stage_blocks = std::move(blocks);
  return std::make_shared<HarCnn>(c);
}

}  // namespace

int TaskNumClasses(const std::string& task_name) {
  // CIFAR-100 is scaled to 20 (coarse-label analogue) so the sim-scale
  // models remain trainable on CPU; see DESIGN.md.
  if (task_name == "cifar10") return 10;
  if (task_name == "cifar100") return 20;
  if (task_name == "agnews") return 4;
  if (task_name == "stackoverflow") return 5;
  if (task_name == "harbox") return 5;
  if (task_name == "ucihar") return 6;
  throw Error("unknown task: " + task_name);
}

const std::vector<std::string>& AllTaskNames() {
  static const std::vector<std::string> kNames = {
      "cifar10", "cifar100", "agnews", "stackoverflow", "harbox", "ucihar"};
  return kNames;
}

std::vector<FamilyPtr> MakeMixedCvFamilies(int num_classes) {
  std::vector<FamilyPtr> out;
  {
    GoogleNetLikeConfig c;  // 1x1-dominated Inception blocks: the smallest
    c.num_classes = num_classes;
    out.push_back(std::make_shared<GoogleNetLike>(c));
  }
  out.push_back(MobileNet("mobilenetv2-like", {8, 16}, {1, 1}, num_classes));
  out.push_back(ResNet("resnet-like", {12, 24}, {2, 2}, num_classes));
  {
    EfficientNetLikeConfig c;  // expansion-4 MBConv: the largest
    c.num_classes = num_classes;
    c.compound = 1;
    out.push_back(std::make_shared<EfficientNetLike>(c));
  }
  return out;
}

TaskModels MakeTaskModels(const std::string& task_name) {
  TaskModels out;
  if (task_name == "cifar100") {
    const int classes = TaskNumClasses(task_name);
    // Primary: ResNet-101 analogue (deepest of the family).
    out.primary = ResNet("resnet101-like", {8, 16}, {2, 2}, classes);
    // Topology: ResNet family 18/34/50/101 analogues.
    out.topology = {
        ResNet("resnet18-like", {8, 16}, {1, 1}, classes),
        ResNet("resnet34-like", {8, 16}, {2, 1}, classes),
        ResNet("resnet50-like", {8, 16}, {2, 2}, classes),
        ResNet("resnet101-like", {12, 24}, {2, 2}, classes),
    };
  } else if (task_name == "cifar10") {
    const int classes = TaskNumClasses(task_name);
    // Primary: MobileNetV2 analogue.
    out.primary = MobileNet("mobilenetv2-like", {8, 16}, {2, 2}, classes);
    // Topology: MobileNet family (V3-small / V2 / V3-large analogues).
    out.topology = {
        MobileNet("mobilenetv3s-like", {8, 16}, {1, 1}, classes),
        MobileNet("mobilenetv2-like", {8, 16}, {2, 2}, classes),
        MobileNet("mobilenetv3l-like", {12, 24}, {2, 2}, classes),
    };
  } else if (task_name == "agnews") {
    const int classes = TaskNumClasses(task_name);
    out.primary = Transformer("transformer-lite", 4, classes);
    // The paper omits topology heterogeneity on AG-News; provide a small
    // transformer family anyway for completeness.
    out.topology = {
        Transformer("transformer-small", 2, classes),
        Transformer("transformer-base", 4, classes),
    };
  } else if (task_name == "stackoverflow") {
    const int classes = TaskNumClasses(task_name);
    out.primary = Albert("albert-base-like", 16, 32, 4, classes);
    // ALBERT family: base / large / xxlarge analogues.
    out.topology = {
        Albert("albert-base-like", 16, 32, 4, classes),
        Albert("albert-large-like", 16, 48, 6, classes),
        Albert("albert-xxlarge-like", 32, 64, 6, classes),
    };
  } else if (task_name == "harbox") {
    const int classes = TaskNumClasses(task_name);
    out.primary = Har("har-cnn", {8, 16}, {2, 2}, classes);
    out.topology = {
        Har("har-cnn-small", {8, 16}, {1, 1}, classes),
        Har("har-cnn", {8, 16}, {2, 2}, classes),
        Har("har-cnn-large", {12, 24}, {2, 2}, classes),
    };
  } else if (task_name == "ucihar") {
    const int classes = TaskNumClasses(task_name);
    out.primary = Har("har-cnn", {8, 16}, {2, 2}, classes);
    out.topology = {
        Har("har-cnn-small", {8, 16}, {1, 1}, classes),
        Har("har-cnn", {8, 16}, {2, 2}, classes),
        Har("har-cnn-large", {12, 24}, {2, 2}, classes),
    };
  } else {
    throw Error("unknown task: " + task_name);
  }
  return out;
}

}  // namespace mhbench::models
