// Parameter mappings between client sub-models and the global model.
//
// A client model's parameter tensors are *views* (materialized gathers) of
// the global model's tensors.  Sub-models share the global model's module
// structure (blocks and heads carry stable semantic names), so a local
// parameter and its global source have the same hierarchical name; the
// mapping only records the per-dimension kept-index lists.  The FL layer
// uses it in both directions: gather (model dispatch) and scatter-average
// (aggregation).
#pragma once

#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"

namespace mhbench::models {

struct ParamSlice {
  std::string name;        // hierarchical name (same locally and globally)
  ops::DimIndices index;   // per-dim kept indices into the global tensor
};

using ParamMapping = std::vector<ParamSlice>;

// Kept-channel index helpers -------------------------------------------------

// ceil(ratio * full), clamped to [1, full].
int ScaledCount(int full, double ratio);

// Prefix selection {0, 1, ..., keep-1} (Fjord / HeteroFL nested sub-models).
std::vector<int> PrefixIndices(int full, int keep);

// Rolling-window selection {(offset + i) mod full : i < keep} (FedRolex).
std::vector<int> RollingIndices(int full, int keep, int offset);

// Records one DimIndices slot per parameter tensor in construction order and
// zips them with the module's CollectParams traversal afterwards.  Families
// call Add* while assembling layers; the slot order must equal the
// traversal order (which it is when slots are added as layers are added:
// stem, then blocks, then heads).
class MappingBuilder {
 public:
  void Add(ops::DimIndices index);

  // Convenience for common layer shapes.  A null index pointer means the
  // dimension is kept in full.
  void AddLinear(const std::vector<int>* out_idx,
                 const std::vector<int>* in_idx, bool bias);
  void AddConv2d(const std::vector<int>* out_idx,
                 const std::vector<int>* in_idx, bool bias);
  void AddConv1d(const std::vector<int>* out_idx,
                 const std::vector<int>* in_idx, bool bias);
  void AddBatchNorm(const std::vector<int>* ch_idx);  // 4 tensors
  void AddLayerNorm(const std::vector<int>* ch_idx);  // gamma/beta
  void AddEmbedding();                                // full table
  void AddPositional();                               // full table
  void AddAttention();                                // 4 full projections

  // Verifies the slot count matches the module's parameters and returns the
  // mapping with names filled in from the module traversal.
  ParamMapping Finalize(nn::Module& module) const;

 private:
  std::vector<ops::DimIndices> slots_;
};

// Converts an optional index-list pointer into a DimIndices entry.
inline std::optional<std::vector<int>> MaybeIdx(const std::vector<int>* idx) {
  if (idx == nullptr) return std::nullopt;
  return *idx;
}

}  // namespace mhbench::models
