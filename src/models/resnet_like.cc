#include "models/resnet_like.h"

#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "nn/pool.h"

namespace mhbench::models {
namespace {

// Builds conv weights of the sliced shape directly.
nn::ModulePtr MakeConv(int in_c, int out_c, int k, int stride, int pad,
                       Rng& rng) {
  return std::make_unique<nn::Conv2d>(
      nn::KaimingNormal({out_c, in_c, k, k}, in_c * k * k, rng), Tensor(),
      stride, pad);
}

}  // namespace

ResNetLike::ResNetLike(ResNetLikeConfig config) : config_(std::move(config)) {
  MHB_CHECK_GT(config_.in_channels, 0);
  MHB_CHECK_GT(config_.num_classes, 0);
  MHB_CHECK_EQ(config_.stage_channels.size(), config_.stage_blocks.size());
  MHB_CHECK(!config_.stage_channels.empty());
  for (std::size_t s = 0; s < config_.stage_channels.size(); ++s) {
    MHB_CHECK_GT(config_.stage_channels[s], 0);
    MHB_CHECK_GT(config_.stage_blocks[s], 0);
  }
}

Shape ResNetLike::sample_shape() const {
  return {config_.in_channels, config_.image_size, config_.image_size};
}

int ResNetLike::total_blocks() const {
  int n = 0;
  for (int b : config_.stage_blocks) n += b;
  return n;
}

BuiltModel ResNetLike::Build(const BuildSpec& spec, Rng& init_rng) const {
  const int num_stages = static_cast<int>(config_.stage_channels.size());
  // Kept-channel indices per stage.
  std::vector<std::vector<int>> ch(static_cast<std::size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    ch[static_cast<std::size_t>(s)] =
        spec.ChannelIndices(config_.stage_channels[static_cast<std::size_t>(s)]);
  }
  const int kept_blocks = spec.KeptBlocks(total_blocks());

  MappingBuilder mb;

  // Stem: conv3x3 (full input channels -> stage-0 subset) + BN + ReLU.
  auto stem = std::make_unique<nn::Sequential>();
  {
    const int c0 = static_cast<int>(ch[0].size());
    stem->Add(MakeConv(config_.in_channels, c0, 3, 1, 1, init_rng));
    mb.AddConv2d(&ch[0], nullptr, /*bias=*/false);
    stem->Add(std::make_unique<nn::BatchNorm>(c0));
    mb.AddBatchNorm(&ch[0]);
    stem->Add(std::make_unique<nn::ReLU>());
  }

  std::vector<nn::ModulePtr> blocks;
  std::vector<std::string> block_names;
  std::vector<int> block_stage;  // stage of each kept block

  int flat = 0;
  for (int s = 0; s < num_stages && flat < kept_blocks; ++s) {
    const auto su = static_cast<std::size_t>(s);
    for (int b = 0; b < config_.stage_blocks[su] && flat < kept_blocks;
         ++b, ++flat) {
      const bool first_of_stage = (b == 0);
      const bool downsample = first_of_stage && s > 0;
      const std::vector<int>& in_idx =
          (first_of_stage && s > 0) ? ch[su - 1] : ch[su];
      const std::vector<int>& out_idx = ch[su];
      const int in_c = static_cast<int>(in_idx.size());
      const int out_c = static_cast<int>(out_idx.size());
      const int stride = downsample ? 2 : 1;
      // Projection shortcuts are decided by the *full-scale* structure so
      // that sub-models always mirror the global model's module tree (a
      // ratio that happens to collapse two stages to equal widths must not
      // silently drop the projection).
      const bool need_projection = first_of_stage && s > 0;
      if (!need_projection) MHB_CHECK_EQ(in_c, out_c);

      auto body = std::make_unique<nn::Sequential>();
      body->Add(MakeConv(in_c, out_c, 3, stride, 1, init_rng));
      mb.AddConv2d(&out_idx, &in_idx, false);
      body->Add(std::make_unique<nn::BatchNorm>(out_c));
      mb.AddBatchNorm(&out_idx);
      body->Add(std::make_unique<nn::ReLU>());
      body->Add(MakeConv(out_c, out_c, 3, 1, 1, init_rng));
      mb.AddConv2d(&out_idx, &out_idx, false);
      body->Add(std::make_unique<nn::BatchNorm>(out_c));
      mb.AddBatchNorm(&out_idx);

      nn::ModulePtr shortcut;
      if (need_projection) {
        auto proj = std::make_unique<nn::Sequential>();
        proj->Add(MakeConv(in_c, out_c, 1, stride, 0, init_rng));
        mb.AddConv2d(&out_idx, &in_idx, false);
        proj->Add(std::make_unique<nn::BatchNorm>(out_c));
        mb.AddBatchNorm(&out_idx);
        shortcut = std::move(proj);
      }

      auto block = std::make_unique<nn::Sequential>();
      block->Add(
          std::make_unique<nn::Residual>(std::move(body), std::move(shortcut)));
      block->Add(std::make_unique<nn::ReLU>());
      blocks.push_back(std::move(block));
      block_names.push_back("s" + std::to_string(s) + "b" + std::to_string(b));
      block_stage.push_back(s);
    }
  }

  // Heads: GAP + linear at every kept exit (multi_head) or only the deepest.
  std::vector<int> exits;
  if (spec.multi_head) {
    for (int b = 0; b < kept_blocks; ++b) exits.push_back(b);
  } else {
    exits.push_back(kept_blocks - 1);
  }
  std::vector<nn::ModulePtr> heads;
  std::vector<std::string> head_names;
  for (int e : exits) {
    const auto stage = static_cast<std::size_t>(block_stage[static_cast<std::size_t>(e)]);
    const int feat = static_cast<int>(ch[stage].size());
    auto head = std::make_unique<nn::Sequential>();
    head->Add(std::make_unique<nn::GlobalAvgPool2d>());
    head->Add(std::make_unique<nn::Linear>(
        nn::KaimingNormal({config_.num_classes, feat}, feat, init_rng),
        Tensor({config_.num_classes})));
    mb.AddLinear(nullptr, &ch[stage], true);
    heads.push_back(std::move(head));
    head_names.push_back("head" + std::to_string(e));
  }

  BuiltModel built;
  built.net = std::make_unique<TrunkModel>(
      std::move(stem), std::move(blocks), std::move(exits), std::move(heads),
      std::move(block_names), std::move(head_names));
  built.mapping = mb.Finalize(*built.net);
  return built;
}

}  // namespace mhbench::models
