#include "models/har_cnn.h"

#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "nn/pool.h"

namespace mhbench::models {
namespace {

nn::ModulePtr MakeConv1d(int in_c, int out_c, int k, int stride, int pad,
                         Rng& rng) {
  return std::make_unique<nn::Conv1d>(
      nn::KaimingNormal({out_c, in_c, k}, in_c * k, rng), Tensor(), stride,
      pad);
}

}  // namespace

HarCnn::HarCnn(HarCnnConfig config) : config_(std::move(config)) {
  MHB_CHECK_GT(config_.in_channels, 0);
  MHB_CHECK_GT(config_.num_classes, 0);
  MHB_CHECK_EQ(config_.stage_channels.size(), config_.stage_blocks.size());
  MHB_CHECK(!config_.stage_channels.empty());
}

Shape HarCnn::sample_shape() const {
  return {config_.in_channels, config_.window};
}

int HarCnn::total_blocks() const {
  int n = 0;
  for (int b : config_.stage_blocks) n += b;
  return n;
}

BuiltModel HarCnn::Build(const BuildSpec& spec, Rng& init_rng) const {
  const int num_stages = static_cast<int>(config_.stage_channels.size());
  std::vector<std::vector<int>> ch(static_cast<std::size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    const auto su = static_cast<std::size_t>(s);
    ch[su] = spec.ChannelIndices(config_.stage_channels[su]);
  }
  const int kept_blocks = spec.KeptBlocks(total_blocks());

  MappingBuilder mb;

  auto stem = std::make_unique<nn::Sequential>();
  {
    const int c0 = static_cast<int>(ch[0].size());
    stem->Add(MakeConv1d(config_.in_channels, c0, 5, 1, 2, init_rng));
    mb.AddConv1d(&ch[0], nullptr, false);
    stem->Add(std::make_unique<nn::BatchNorm>(c0));
    mb.AddBatchNorm(&ch[0]);
    stem->Add(std::make_unique<nn::ReLU>());
  }

  std::vector<nn::ModulePtr> blocks;
  std::vector<std::string> block_names;
  std::vector<int> block_stage;

  int flat = 0;
  for (int s = 0; s < num_stages && flat < kept_blocks; ++s) {
    const auto su = static_cast<std::size_t>(s);
    for (int b = 0; b < config_.stage_blocks[su] && flat < kept_blocks;
         ++b, ++flat) {
      const bool first_of_stage = (b == 0);
      const bool downsample = first_of_stage && s > 0;
      const std::vector<int>& in_idx = downsample ? ch[su - 1] : ch[su];
      const std::vector<int>& out_idx = ch[su];
      const int in_c = static_cast<int>(in_idx.size());
      const int out_c = static_cast<int>(out_idx.size());
      const int stride = downsample ? 2 : 1;

      auto body = std::make_unique<nn::Sequential>();
      body->Add(MakeConv1d(in_c, out_c, 3, stride, 1, init_rng));
      mb.AddConv1d(&out_idx, &in_idx, false);
      body->Add(std::make_unique<nn::BatchNorm>(out_c));
      mb.AddBatchNorm(&out_idx);
      body->Add(std::make_unique<nn::ReLU>());
      body->Add(MakeConv1d(out_c, out_c, 3, 1, 1, init_rng));
      mb.AddConv1d(&out_idx, &out_idx, false);
      body->Add(std::make_unique<nn::BatchNorm>(out_c));
      mb.AddBatchNorm(&out_idx);

      nn::ModulePtr shortcut;
      if (downsample) {
        auto proj = std::make_unique<nn::Sequential>();
        proj->Add(MakeConv1d(in_c, out_c, 1, stride, 0, init_rng));
        mb.AddConv1d(&out_idx, &in_idx, false);
        proj->Add(std::make_unique<nn::BatchNorm>(out_c));
        mb.AddBatchNorm(&out_idx);
        shortcut = std::move(proj);
      } else {
        MHB_CHECK_EQ(in_c, out_c);
      }
      auto block = std::make_unique<nn::Sequential>();
      block->Add(
          std::make_unique<nn::Residual>(std::move(body), std::move(shortcut)));
      block->Add(std::make_unique<nn::ReLU>());
      blocks.push_back(std::move(block));
      block_names.push_back("s" + std::to_string(s) + "b" + std::to_string(b));
      block_stage.push_back(s);
    }
  }

  std::vector<int> exits;
  if (spec.multi_head) {
    for (int b = 0; b < kept_blocks; ++b) exits.push_back(b);
  } else {
    exits.push_back(kept_blocks - 1);
  }
  std::vector<nn::ModulePtr> heads;
  std::vector<std::string> head_names;
  for (int e : exits) {
    const auto stage =
        static_cast<std::size_t>(block_stage[static_cast<std::size_t>(e)]);
    const int feat = static_cast<int>(ch[stage].size());
    auto head = std::make_unique<nn::Sequential>();
    head->Add(std::make_unique<nn::GlobalAvgPool1d>());
    head->Add(std::make_unique<nn::Linear>(
        nn::KaimingNormal({config_.num_classes, feat}, feat, init_rng),
        Tensor({config_.num_classes})));
    mb.AddLinear(nullptr, &ch[stage], true);
    heads.push_back(std::move(head));
    head_names.push_back("head" + std::to_string(e));
  }

  BuiltModel built;
  built.net = std::make_unique<TrunkModel>(
      std::move(stem), std::move(blocks), std::move(exits), std::move(heads),
      std::move(block_names), std::move(head_names));
  built.mapping = mb.Finalize(*built.net);
  return built;
}

}  // namespace mhbench::models
