// GoogLeNet-style Inception CNN family (the fourth architecture the paper
// names for topology heterogeneity, Section III).
//
// Each block is a simplified Inception module with three parallel branches
// — 1x1, 1x1 -> 3x3, and a second 1x1 (standing in for the pooled branch;
// overlapping 3x3 average pooling is omitted at sim scale) — concatenated
// along channels.  Stages downsample with a stride-2 reduction conv.
// Width slicing keeps a subset of every branch; the consumer-side channel
// set is the offset concatenation of the branch subsets.
#pragma once

#include "models/model_spec.h"

namespace mhbench::models {

struct GoogleNetLikeConfig {
  std::string name = "googlenet-like";
  int in_channels = 3;
  int image_size = 8;
  int num_classes = 10;
  std::vector<int> stage_channels = {8, 16};  // concat width per stage
  std::vector<int> stage_blocks = {2, 2};
};

class GoogleNetLike : public ModelFamily {
 public:
  explicit GoogleNetLike(GoogleNetLikeConfig config);

  std::string name() const override { return config_.name; }
  int num_classes() const override { return config_.num_classes; }
  Shape sample_shape() const override;
  int total_blocks() const override;
  BuiltModel Build(const BuildSpec& spec, Rng& init_rng) const override;

  const GoogleNetLikeConfig& config() const { return config_; }

  // Branch split of a stage's concat width (b1 + b2 + b3 == stage width).
  static void SplitBranches(int stage_channels, int& b1, int& b2, int& b3);

 private:
  GoogleNetLikeConfig config_;
};

}  // namespace mhbench::models
