// Model abstractions shared by all architecture families.
//
// Every family builds a `TrunkModel`: stem -> blocks[0..k) with classifier
// heads attached at chosen block exits.  Width heterogeneity slices channel
// groups; depth heterogeneity truncates the block list and picks the head at
// the truncation point; topology heterogeneity swaps the family entirely.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "models/index_map.h"
#include "nn/composite.h"
#include "nn/module.h"
#include "obs/profile.h"

namespace mhbench::models {

// How to build one (sub-)model instance.
struct BuildSpec {
  double width_ratio = 1.0;
  double depth_ratio = 1.0;
  // FedRolex rolling-window offset (in channels); used when `rolling`.
  int width_offset = 0;
  bool rolling = false;
  // Attach classifier heads at *all* exits up to the kept depth (DepthFL);
  // otherwise only the deepest kept exit has a head.
  bool multi_head = false;

  // Kept-channel indices for a group of `full` channels.
  std::vector<int> ChannelIndices(int full) const;
  // Number of blocks kept out of `total` (>= 1).
  int KeptBlocks(int total) const;
};

// A constructed model together with its mapping into the global store.
struct BuiltModel {
  nn::ModulePtr net;  // actually a TrunkModel
  ParamMapping mapping;

  // Convenience accessor (checked downcast).
  class TrunkModel& trunk() const;
};

// Sequential trunk with multiple classifier exits.
//
// ForwardHeads returns logits for every attached head in exit order (the
// last entry is the deepest head).  Backward accepts per-head logit
// gradients; missing heads get zero gradient.
class TrunkModel : public nn::Module {
 public:
  TrunkModel(nn::ModulePtr stem, std::vector<nn::ModulePtr> blocks,
             std::vector<int> exit_blocks, std::vector<nn::ModulePtr> heads,
             std::vector<std::string> block_names,
             std::vector<std::string> head_names);

  std::vector<Tensor> ForwardHeads(const Tensor& x, bool train);
  // `embedding_grad`, when non-empty, is an extra gradient on the deepest
  // block's output (shape of `last_embedding()`); prototype-regularized
  // algorithms use it to train the trunk through the embedding.
  Tensor BackwardHeads(const std::vector<Tensor>& head_grads,
                       const Tensor& embedding_grad = Tensor());

  // Module interface: forward/backward through the deepest head only.
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string& prefix,
                     std::vector<nn::NamedParam>& out) override;

  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  int num_heads() const { return static_cast<int>(heads_.size()); }
  const std::vector<int>& exit_blocks() const { return exit_blocks_; }
  nn::Module& block(int i) { return *blocks_.at(static_cast<std::size_t>(i)); }
  nn::Module& head(int i) { return *heads_.at(static_cast<std::size_t>(i)); }
  nn::Module& stem() { return *stem_; }
  const std::string& block_name(int i) const {
    return block_names_.at(static_cast<std::size_t>(i));
  }

  // Embedding of the deepest head's input (output of the last block);
  // used by prototype-based algorithms.  Computed during ForwardHeads when
  // `capture_embedding` was set.
  void set_capture_embedding(bool v) { capture_embedding_ = v; }
  const Tensor& last_embedding() const { return last_embedding_; }

  // Axis layout of the captured embedding: channels-first ([N, C, ...],
  // CNNs) or sequence-first ([N, L, D], transformers).  Families set this
  // at construction; prototype pooling depends on it.
  enum class EmbeddingLayout { kChannelsFirst, kSeqFirst };
  void set_embedding_layout(EmbeddingLayout l) { embedding_layout_ = l; }
  EmbeddingLayout embedding_layout() const { return embedding_layout_; }

 private:
  // Block names interned into the active profiler so the per-op scopes can
  // outlive this (per-round) model; re-interned when the profiler changes.
  // Returns null when profiling is off this thread.
  obs::Profiler* ProfilerScopeNames();

  nn::ModulePtr stem_;
  std::vector<nn::ModulePtr> blocks_;
  std::vector<int> exit_blocks_;  // ascending; one per head
  std::vector<nn::ModulePtr> heads_;
  std::vector<std::string> block_names_;
  std::vector<std::string> head_names_;
  const obs::Profiler* interned_for_ = nullptr;
  std::vector<const char*> block_scope_names_;
  bool capture_embedding_ = false;
  Tensor last_embedding_;
  EmbeddingLayout embedding_layout_ = EmbeddingLayout::kChannelsFirst;
};

// Applies an inner module tokenwise: [N, L, D] -> flatten -> inner -> [N, L, D'].
class Tokenwise : public nn::Module {
 public:
  explicit Tokenwise(nn::ModulePtr inner);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string& prefix,
                     std::vector<nn::NamedParam>& out) override;

 private:
  nn::ModulePtr inner_;
  int cached_n_ = 0, cached_l_ = 0;
};

// Adds a learned positional embedding [L, D] to [N, L, D] inputs.
class PositionalEmbedding : public nn::Module {
 public:
  PositionalEmbedding(int seq_len, int dim, Rng& rng);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string& prefix,
                     std::vector<nn::NamedParam>& out) override;

  nn::Parameter& table() { return table_; }

 private:
  nn::Parameter table_;  // [L, D]
};

// An architecture family that can produce scaled sub-models.
class ModelFamily {
 public:
  virtual ~ModelFamily() = default;

  virtual std::string name() const = 0;
  virtual int num_classes() const = 0;
  // Shape of one input sample (no batch dim).
  virtual Shape sample_shape() const = 0;

  // Builds a model per `spec`.  `init_rng` seeds fresh-parameter
  // initialization (the FL layer overwrites values from the global store for
  // weight-sharing algorithms, so the init only matters for the global model
  // and for stateful topology algorithms).
  virtual BuiltModel Build(const BuildSpec& spec, Rng& init_rng) const = 0;

  // Total number of depth units (blocks); depth ratios quantize onto these.
  virtual int total_blocks() const = 0;
};

using FamilyPtr = std::shared_ptr<const ModelFamily>;

}  // namespace mhbench::models
