// Task -> model family registry (sim scale).
//
// Mirrors Table II of the paper: each data task has a primary family used by
// width/depth heterogeneity and a list of distinct architectures used by
// topology heterogeneity.
#pragma once

#include <string>
#include <vector>

#include "models/model_spec.h"

namespace mhbench::models {

struct TaskModels {
  // Family used by width- and depth-level algorithms (built at ratios).
  FamilyPtr primary;
  // Distinct architectures for topology-level algorithms, smallest first
  // (MobileNet family / ResNet family / ALBERT family analogues).
  std::vector<FamilyPtr> topology;
};

// Known task names: "cifar10", "cifar100", "agnews", "stackoverflow",
// "harbox", "ucihar".  Throws Error for unknown names.
TaskModels MakeTaskModels(const std::string& task_name);

// Number of classes each sim-scale task uses.
int TaskNumClasses(const std::string& task_name);

// All task names in canonical order.
const std::vector<std::string>& AllTaskNames();

// The mixed-architecture CV pool the paper's Section III motivates
// ("ResNet, EfficientNet, MobileNet, and GoogleLeNet"): one member per
// family, smallest first.  Used by the mixed-topology example and tests;
// the benchmark grid itself follows Table II (MakeTaskModels).
std::vector<FamilyPtr> MakeMixedCvFamilies(int num_classes);

}  // namespace mhbench::models
