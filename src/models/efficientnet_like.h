// EfficientNet-style family (the third CV architecture the paper names for
// topology heterogeneity, Section III).
//
// EfficientNets are MBConv (inverted-residual) networks under compound
// scaling, so the family reuses the MobileNetLike block structure with
// EfficientNet's higher expansion factor and a deeper/wider compound
// configuration; the compound coefficient picks the preset.
#pragma once

#include "models/mobilenet_like.h"

namespace mhbench::models {

struct EfficientNetLikeConfig {
  std::string name = "efficientnet-like";
  int num_classes = 10;
  // Compound scaling coefficient: 0 = B0 analogue, each step widens by
  // ~1.1x and deepens by one block per stage.
  int compound = 0;
};

class EfficientNetLike : public ModelFamily {
 public:
  explicit EfficientNetLike(EfficientNetLikeConfig config);

  std::string name() const override { return config_.name; }
  int num_classes() const override { return inner_->num_classes(); }
  Shape sample_shape() const override { return inner_->sample_shape(); }
  int total_blocks() const override { return inner_->total_blocks(); }
  BuiltModel Build(const BuildSpec& spec, Rng& init_rng) const override {
    return inner_->Build(spec, init_rng);
  }

  const EfficientNetLikeConfig& config() const { return config_; }

 private:
  EfficientNetLikeConfig config_;
  std::unique_ptr<MobileNetLike> inner_;
};

}  // namespace mhbench::models
