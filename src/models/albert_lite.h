// ALBERT-style transformer family (stands in for ALBERT base/large/xxlarge
// on Stack Overflow).
//
// Implemented as a TransformerLite with ALBERT's factorized embedding
// (tokens embed into a small dimension and are projected up to d_model).
// ALBERT's cross-layer parameter sharing is modeled at the *cost* level by
// the device cost descriptors (its parameter count does not grow with
// depth); the trainable sim-scale network keeps per-layer parameters so the
// depth-heterogeneous algorithms have distinct per-layer tensors to
// aggregate — see DESIGN.md.
#pragma once

#include "models/transformer_lite.h"

namespace mhbench::models {

struct AlbertLiteConfig {
  std::string name = "albert-lite";
  int vocab_size = 64;
  int seq_len = 12;
  int d_model = 16;
  int num_heads = 2;
  int ffn_hidden = 32;
  int num_blocks = 4;
  int num_classes = 5;
  int embed_dim = 8;  // factorized embedding dimension
};

class AlbertLite : public ModelFamily {
 public:
  explicit AlbertLite(AlbertLiteConfig config);

  std::string name() const override { return config_.name; }
  int num_classes() const override { return inner_->num_classes(); }
  Shape sample_shape() const override { return inner_->sample_shape(); }
  int total_blocks() const override { return inner_->total_blocks(); }
  BuiltModel Build(const BuildSpec& spec, Rng& init_rng) const override {
    return inner_->Build(spec, init_rng);
  }

  const AlbertLiteConfig& config() const { return config_; }

 private:
  AlbertLiteConfig config_;
  std::unique_ptr<TransformerLite> inner_;
};

}  // namespace mhbench::models
