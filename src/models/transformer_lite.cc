#include "models/transformer_lite.h"

#include "nn/activation.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "nn/pool.h"

namespace mhbench::models {

TransformerLite::TransformerLite(TransformerLiteConfig config)
    : config_(std::move(config)) {
  MHB_CHECK_GT(config_.vocab_size, 0);
  MHB_CHECK_GT(config_.seq_len, 0);
  MHB_CHECK_GT(config_.d_model, 0);
  MHB_CHECK_GT(config_.num_blocks, 0);
  MHB_CHECK_GT(config_.num_classes, 0);
  MHB_CHECK_EQ(config_.d_model % config_.num_heads, 0);
  MHB_CHECK_GE(config_.factorized_embed_dim, 0);
}

Shape TransformerLite::sample_shape() const { return {config_.seq_len}; }

BuiltModel TransformerLite::Build(const BuildSpec& spec,
                                  Rng& init_rng) const {
  const int d = config_.d_model;
  const std::vector<int> ffn_idx = spec.ChannelIndices(config_.ffn_hidden);
  const int f = static_cast<int>(ffn_idx.size());
  const int kept_blocks = spec.KeptBlocks(config_.num_blocks);

  MappingBuilder mb;

  // Stem: embedding (optionally factorized) + positional embedding.
  auto stem = std::make_unique<nn::Sequential>();
  if (config_.factorized_embed_dim > 0) {
    stem->Add(std::make_unique<nn::Embedding>(config_.vocab_size,
                                              config_.factorized_embed_dim,
                                              init_rng));
    mb.AddEmbedding();
    auto up = std::make_unique<nn::Linear>(config_.factorized_embed_dim, d,
                                           init_rng);
    stem->Add(std::make_unique<Tokenwise>(std::move(up)));
    mb.AddLinear(nullptr, nullptr, true);
  } else {
    stem->Add(
        std::make_unique<nn::Embedding>(config_.vocab_size, d, init_rng));
    mb.AddEmbedding();
  }
  stem->Add(
      std::make_unique<PositionalEmbedding>(config_.seq_len, d, init_rng));
  mb.AddPositional();

  std::vector<nn::ModulePtr> blocks;
  std::vector<std::string> block_names;
  for (int b = 0; b < kept_blocks; ++b) {
    auto attn_body = std::make_unique<nn::Sequential>();
    attn_body->Add(std::make_unique<nn::LayerNorm>(d));
    mb.AddLayerNorm(nullptr);
    attn_body->Add(
        std::make_unique<nn::MultiHeadSelfAttention>(d, config_.num_heads,
                                                     init_rng));
    mb.AddAttention();

    // Slot order must match CollectParams traversal of the finished block:
    // attn LN, attention, ffn LN, ffn linear1, ffn linear2.
    auto ffn_body = std::make_unique<nn::Sequential>();
    ffn_body->Add(std::make_unique<nn::LayerNorm>(d));
    mb.AddLayerNorm(nullptr);
    auto ffn_inner = std::make_unique<nn::Sequential>();
    ffn_inner->Add(std::make_unique<nn::Linear>(
        nn::KaimingNormal({f, d}, d, init_rng), Tensor({f})));
    mb.AddLinear(&ffn_idx, nullptr, true);
    ffn_inner->Add(std::make_unique<nn::Gelu>());
    ffn_inner->Add(std::make_unique<nn::Linear>(
        nn::KaimingNormal({d, f}, f, init_rng), Tensor({d})));
    mb.AddLinear(nullptr, &ffn_idx, true);
    ffn_body->Add(std::make_unique<Tokenwise>(std::move(ffn_inner)));

    auto block = std::make_unique<nn::Sequential>();
    block->Add(std::make_unique<nn::Residual>(std::move(attn_body), nullptr));
    block->Add(std::make_unique<nn::Residual>(std::move(ffn_body), nullptr));
    blocks.push_back(std::move(block));
    block_names.push_back("layer" + std::to_string(b));
  }

  std::vector<int> exits;
  if (spec.multi_head) {
    for (int b = 0; b < kept_blocks; ++b) exits.push_back(b);
  } else {
    exits.push_back(kept_blocks - 1);
  }
  std::vector<nn::ModulePtr> heads;
  std::vector<std::string> head_names;
  for (int e : exits) {
    auto head = std::make_unique<nn::Sequential>();
    head->Add(std::make_unique<nn::LayerNorm>(d));
    mb.AddLayerNorm(nullptr);
    head->Add(std::make_unique<nn::MeanPoolSeq>());
    head->Add(std::make_unique<nn::Linear>(
        nn::KaimingNormal({config_.num_classes, d}, d, init_rng),
        Tensor({config_.num_classes})));
    mb.AddLinear(nullptr, nullptr, true);
    heads.push_back(std::move(head));
    head_names.push_back("head" + std::to_string(e));
  }

  BuiltModel built;
  built.net = std::make_unique<TrunkModel>(
      std::move(stem), std::move(blocks), std::move(exits), std::move(heads),
      std::move(block_names), std::move(head_names));
  built.trunk().set_embedding_layout(TrunkModel::EmbeddingLayout::kSeqFirst);
  built.mapping = mb.Finalize(*built.net);
  return built;
}

}  // namespace mhbench::models
