// ResNet-style residual CNN family (stands in for ResNet-18/34/50/101 in the
// paper's CV experiments).
//
// Structure: conv-bn-relu stem, then `stage_blocks[s]` basic residual blocks
// per stage at `stage_channels[s]` channels (stages after the first
// downsample by 2 and project the skip), a classifier head (GAP + linear) at
// every block exit.  Width slicing keeps a per-stage channel subset; depth
// slicing keeps a block prefix.
#pragma once

#include "models/model_spec.h"

namespace mhbench::models {

struct ResNetLikeConfig {
  std::string name = "resnet-like";
  int in_channels = 3;
  int image_size = 8;   // input is [in_channels, image_size, image_size]
  int num_classes = 10;
  std::vector<int> stage_channels = {8, 16};
  std::vector<int> stage_blocks = {2, 2};
};

class ResNetLike : public ModelFamily {
 public:
  explicit ResNetLike(ResNetLikeConfig config);

  std::string name() const override { return config_.name; }
  int num_classes() const override { return config_.num_classes; }
  Shape sample_shape() const override;
  int total_blocks() const override;
  BuiltModel Build(const BuildSpec& spec, Rng& init_rng) const override;

  const ResNetLikeConfig& config() const { return config_; }

 private:
  ResNetLikeConfig config_;
};

}  // namespace mhbench::models
