// MobileNet-style inverted-residual CNN family (stands in for MobileNetV2 /
// V3 in the paper's CV experiments).
//
// Each block expands channels by `expansion` with a 1x1 conv, applies a 3x3
// conv at the expanded width, and projects back with a 1x1 conv (linear
// bottleneck).  True depthwise (grouped) convolution is replaced by a dense
// 3x3 at the expanded width — the structural knobs the MHFL algorithms
// manipulate (channel groups per stage, block count) are identical; see
// DESIGN.md for the substitution note.
#pragma once

#include "models/model_spec.h"

namespace mhbench::models {

struct MobileNetLikeConfig {
  std::string name = "mobilenet-like";
  int in_channels = 3;
  int image_size = 8;
  int num_classes = 10;
  std::vector<int> stage_channels = {8, 16};
  std::vector<int> stage_blocks = {2, 2};
  int expansion = 2;
};

class MobileNetLike : public ModelFamily {
 public:
  explicit MobileNetLike(MobileNetLikeConfig config);

  std::string name() const override { return config_.name; }
  int num_classes() const override { return config_.num_classes; }
  Shape sample_shape() const override;
  int total_blocks() const override;
  BuiltModel Build(const BuildSpec& spec, Rng& init_rng) const override;

  const MobileNetLikeConfig& config() const { return config_; }

 private:
  MobileNetLikeConfig config_;
};

}  // namespace mhbench::models
