#include "models/index_map.h"

#include <cmath>

namespace mhbench::models {

int ScaledCount(int full, double ratio) {
  MHB_CHECK_GT(full, 0);
  MHB_CHECK_GT(ratio, 0.0);
  MHB_CHECK_LE(ratio, 1.0);
  const int keep = static_cast<int>(std::ceil(ratio * full));
  return std::max(1, std::min(full, keep));
}

std::vector<int> PrefixIndices(int full, int keep) {
  MHB_CHECK_GT(keep, 0);
  MHB_CHECK_LE(keep, full);
  std::vector<int> idx(static_cast<std::size_t>(keep));
  for (int i = 0; i < keep; ++i) idx[static_cast<std::size_t>(i)] = i;
  return idx;
}

std::vector<int> RollingIndices(int full, int keep, int offset) {
  MHB_CHECK_GT(keep, 0);
  MHB_CHECK_LE(keep, full);
  MHB_CHECK_GE(offset, 0);
  std::vector<int> idx(static_cast<std::size_t>(keep));
  for (int i = 0; i < keep; ++i) {
    idx[static_cast<std::size_t>(i)] = (offset + i) % full;
  }
  return idx;
}

void MappingBuilder::Add(ops::DimIndices index) {
  slots_.push_back(std::move(index));
}

void MappingBuilder::AddLinear(const std::vector<int>* out_idx,
                               const std::vector<int>* in_idx, bool bias) {
  Add({MaybeIdx(out_idx), MaybeIdx(in_idx)});
  if (bias) Add({MaybeIdx(out_idx)});
}

void MappingBuilder::AddConv2d(const std::vector<int>* out_idx,
                               const std::vector<int>* in_idx, bool bias) {
  Add({MaybeIdx(out_idx), MaybeIdx(in_idx), std::nullopt, std::nullopt});
  if (bias) Add({MaybeIdx(out_idx)});
}

void MappingBuilder::AddConv1d(const std::vector<int>* out_idx,
                               const std::vector<int>* in_idx, bool bias) {
  // Conv1d stores its weight as [out, in, 1, k].
  AddConv2d(out_idx, in_idx, bias);
}

void MappingBuilder::AddBatchNorm(const std::vector<int>* ch_idx) {
  for (int i = 0; i < 4; ++i) Add({MaybeIdx(ch_idx)});
}

void MappingBuilder::AddLayerNorm(const std::vector<int>* ch_idx) {
  Add({MaybeIdx(ch_idx)});
  Add({MaybeIdx(ch_idx)});
}

void MappingBuilder::AddEmbedding() { Add({std::nullopt, std::nullopt}); }

void MappingBuilder::AddPositional() { Add({std::nullopt, std::nullopt}); }

void MappingBuilder::AddAttention() {
  for (int proj = 0; proj < 4; ++proj) {
    Add({std::nullopt, std::nullopt});
    Add({std::nullopt});
  }
}

ParamMapping MappingBuilder::Finalize(nn::Module& module) const {
  std::vector<nn::NamedParam> params;
  module.CollectParams("", params);
  MHB_CHECK_EQ(params.size(), slots_.size())
      << "mapping slots out of sync with module parameters";
  ParamMapping mapping;
  mapping.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const int nd = params[i].param->value.ndim();
    MHB_CHECK_EQ(static_cast<int>(slots_[i].size()), nd)
        << "slot" << i << "rank mismatch with local param" << params[i].name;
    mapping.push_back({params[i].name, slots_[i]});
  }
  return mapping;
}

}  // namespace mhbench::models
