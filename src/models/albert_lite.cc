#include "models/albert_lite.h"

namespace mhbench::models {

AlbertLite::AlbertLite(AlbertLiteConfig config) : config_(std::move(config)) {
  MHB_CHECK_GT(config_.embed_dim, 0);
  TransformerLiteConfig inner;
  inner.name = config_.name;
  inner.vocab_size = config_.vocab_size;
  inner.seq_len = config_.seq_len;
  inner.d_model = config_.d_model;
  inner.num_heads = config_.num_heads;
  inner.ffn_hidden = config_.ffn_hidden;
  inner.num_blocks = config_.num_blocks;
  inner.num_classes = config_.num_classes;
  inner.factorized_embed_dim = config_.embed_dim;
  inner_ = std::make_unique<TransformerLite>(inner);
}

}  // namespace mhbench::models
