#include "models/efficientnet_like.h"

#include <cmath>

namespace mhbench::models {

EfficientNetLike::EfficientNetLike(EfficientNetLikeConfig config)
    : config_(std::move(config)) {
  MHB_CHECK_GE(config_.compound, 0);
  MHB_CHECK_LE(config_.compound, 4);
  MobileNetLikeConfig inner;
  inner.name = config_.name;
  inner.num_classes = config_.num_classes;
  inner.expansion = 4;  // EfficientNet MBConv expansion (vs 2 in our V2)
  const double width_mult = std::pow(1.1, config_.compound);
  inner.stage_channels = {
      static_cast<int>(std::lround(8 * width_mult)),
      static_cast<int>(std::lround(16 * width_mult)),
  };
  inner.stage_blocks = {1 + config_.compound / 2, 2 + (config_.compound + 1) / 2};
  inner_ = std::make_unique<MobileNetLike>(inner);
}

}  // namespace mhbench::models
