#include "models/googlenet_like.h"

#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "nn/pool.h"

namespace mhbench::models {
namespace {

nn::ModulePtr MakeConv(int in_c, int out_c, int k, int stride, int pad,
                       Rng& rng) {
  return std::make_unique<nn::Conv2d>(
      nn::KaimingNormal({out_c, in_c, k, k}, in_c * k * k, rng), Tensor(),
      stride, pad);
}

// Concatenates per-branch kept indices into the stage's global channel
// layout [branch1 | branch2 | branch3].
std::vector<int> ConcatKept(const std::vector<std::vector<int>>& kept,
                            const std::vector<int>& fulls) {
  std::vector<int> out;
  int offset = 0;
  for (std::size_t b = 0; b < kept.size(); ++b) {
    for (int i : kept[b]) out.push_back(offset + i);
    offset += fulls[b];
  }
  return out;
}

}  // namespace

void GoogleNetLike::SplitBranches(int stage_channels, int& b1, int& b2,
                                  int& b3) {
  MHB_CHECK_GE(stage_channels, 3) << "inception stage needs >= 3 channels";
  b1 = stage_channels / 2;
  b2 = stage_channels / 4;
  b3 = stage_channels - b1 - b2;
}

GoogleNetLike::GoogleNetLike(GoogleNetLikeConfig config)
    : config_(std::move(config)) {
  MHB_CHECK_GT(config_.in_channels, 0);
  MHB_CHECK_GT(config_.num_classes, 0);
  MHB_CHECK_EQ(config_.stage_channels.size(), config_.stage_blocks.size());
  MHB_CHECK(!config_.stage_channels.empty());
  for (int c : config_.stage_channels) MHB_CHECK_GE(c, 4);
}

Shape GoogleNetLike::sample_shape() const {
  return {config_.in_channels, config_.image_size, config_.image_size};
}

int GoogleNetLike::total_blocks() const {
  int n = 0;
  for (int b : config_.stage_blocks) n += b;
  return n;
}

BuiltModel GoogleNetLike::Build(const BuildSpec& spec, Rng& init_rng) const {
  const int num_stages = static_cast<int>(config_.stage_channels.size());

  // Per stage: branch full widths, per-branch kept lists, and the
  // concatenated consumer-side kept set.
  struct StagePlan {
    std::vector<int> fulls;               // {b1, b2, b3}
    std::vector<std::vector<int>> kept;   // per branch
    std::vector<int> concat_kept;         // consumer channel set
  };
  std::vector<StagePlan> plan(static_cast<std::size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    auto& p = plan[static_cast<std::size_t>(s)];
    int b1 = 0, b2 = 0, b3 = 0;
    SplitBranches(config_.stage_channels[static_cast<std::size_t>(s)], b1,
                  b2, b3);
    p.fulls = {b1, b2, b3};
    for (int full : p.fulls) {
      p.kept.push_back(spec.ChannelIndices(full));
    }
    p.concat_kept = ConcatKept(p.kept, p.fulls);
  }
  const int kept_blocks = spec.KeptBlocks(total_blocks());

  MappingBuilder mb;

  // Stem: conv to stage-0's concat layout.
  auto stem = std::make_unique<nn::Sequential>();
  {
    const auto& p0 = plan[0];
    const int c0 = static_cast<int>(p0.concat_kept.size());
    stem->Add(MakeConv(config_.in_channels, c0, 3, 1, 1, init_rng));
    mb.AddConv2d(&p0.concat_kept, nullptr, false);
    stem->Add(std::make_unique<nn::BatchNorm>(c0));
    mb.AddBatchNorm(&p0.concat_kept);
    stem->Add(std::make_unique<nn::ReLU>());
  }

  std::vector<nn::ModulePtr> blocks;
  std::vector<std::string> block_names;
  std::vector<int> block_stage;

  int flat = 0;
  for (int s = 0; s < num_stages && flat < kept_blocks; ++s) {
    const auto su = static_cast<std::size_t>(s);
    const auto& p = plan[su];
    for (int b = 0; b < config_.stage_blocks[su] && flat < kept_blocks;
         ++b, ++flat) {
      const bool reduce = (b == 0 && s > 0);
      auto block = std::make_unique<nn::Sequential>();
      std::vector<int> in_set = reduce ? plan[su - 1].concat_kept
                                       : p.concat_kept;
      if (reduce) {
        // Stride-2 reduction conv from the previous stage's layout into
        // this stage's layout.
        const int in_c = static_cast<int>(in_set.size());
        const int out_c = static_cast<int>(p.concat_kept.size());
        block->Add(MakeConv(in_c, out_c, 3, 2, 1, init_rng));
        mb.AddConv2d(&p.concat_kept, &in_set, false);
        block->Add(std::make_unique<nn::BatchNorm>(out_c));
        mb.AddBatchNorm(&p.concat_kept);
        block->Add(std::make_unique<nn::ReLU>());
        in_set = p.concat_kept;
      }

      // Inception module: three branches on `in_set`.
      const int in_c = static_cast<int>(in_set.size());
      std::vector<nn::ModulePtr> branches;
      // Branch 0: 1x1.
      {
        const auto& kept = p.kept[0];
        auto br = std::make_unique<nn::Sequential>();
        br->Add(MakeConv(in_c, static_cast<int>(kept.size()), 1, 1, 0,
                         init_rng));
        mb.AddConv2d(&kept, &in_set, false);
        br->Add(std::make_unique<nn::BatchNorm>(static_cast<int>(kept.size())));
        mb.AddBatchNorm(&kept);
        br->Add(std::make_unique<nn::ReLU>());
        branches.push_back(std::move(br));
      }
      // Branch 1: 1x1 -> 3x3.
      {
        const auto& kept = p.kept[1];
        const int c = static_cast<int>(kept.size());
        auto br = std::make_unique<nn::Sequential>();
        br->Add(MakeConv(in_c, c, 1, 1, 0, init_rng));
        mb.AddConv2d(&kept, &in_set, false);
        br->Add(std::make_unique<nn::BatchNorm>(c));
        mb.AddBatchNorm(&kept);
        br->Add(std::make_unique<nn::ReLU>());
        br->Add(MakeConv(c, c, 3, 1, 1, init_rng));
        mb.AddConv2d(&kept, &kept, false);
        br->Add(std::make_unique<nn::BatchNorm>(c));
        mb.AddBatchNorm(&kept);
        br->Add(std::make_unique<nn::ReLU>());
        branches.push_back(std::move(br));
      }
      // Branch 2: 1x1 (pool-branch stand-in).
      {
        const auto& kept = p.kept[2];
        auto br = std::make_unique<nn::Sequential>();
        br->Add(MakeConv(in_c, static_cast<int>(kept.size()), 1, 1, 0,
                         init_rng));
        mb.AddConv2d(&kept, &in_set, false);
        br->Add(std::make_unique<nn::BatchNorm>(static_cast<int>(kept.size())));
        mb.AddBatchNorm(&kept);
        br->Add(std::make_unique<nn::ReLU>());
        branches.push_back(std::move(br));
      }
      block->Add(std::make_unique<nn::ConcatBranches>(std::move(branches)));
      blocks.push_back(std::move(block));
      block_names.push_back("s" + std::to_string(s) + "b" + std::to_string(b));
      block_stage.push_back(s);
    }
  }

  std::vector<int> exits;
  if (spec.multi_head) {
    for (int b = 0; b < kept_blocks; ++b) exits.push_back(b);
  } else {
    exits.push_back(kept_blocks - 1);
  }
  std::vector<nn::ModulePtr> heads;
  std::vector<std::string> head_names;
  for (int e : exits) {
    const auto stage =
        static_cast<std::size_t>(block_stage[static_cast<std::size_t>(e)]);
    const auto& kept = plan[stage].concat_kept;
    auto head = std::make_unique<nn::Sequential>();
    head->Add(std::make_unique<nn::GlobalAvgPool2d>());
    head->Add(std::make_unique<nn::Linear>(
        nn::KaimingNormal({config_.num_classes, static_cast<int>(kept.size())},
                          static_cast<int>(kept.size()), init_rng),
        Tensor({config_.num_classes})));
    mb.AddLinear(nullptr, &kept, true);
    heads.push_back(std::move(head));
    head_names.push_back("head" + std::to_string(e));
  }

  BuiltModel built;
  built.net = std::make_unique<TrunkModel>(
      std::move(stem), std::move(blocks), std::move(exits), std::move(heads),
      std::move(block_names), std::move(head_names));
  built.mapping = mb.Finalize(*built.net);
  return built;
}

}  // namespace mhbench::models
