// Module interface for the training stack.
//
// The library uses explicit layer-wise backward passes (no tape autograd):
// each module caches what it needs during Forward and implements the exact
// adjoint in Backward, accumulating parameter gradients.  This keeps the
// stack small, deterministic and easy to verify against numerical gradients
// (see tests/nn/gradient_check_test.cc).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace mhbench::nn {

// A trainable tensor with its gradient accumulator.
struct Parameter {
  Tensor value;
  Tensor grad;

  explicit Parameter(Tensor v) : value(std::move(v)), grad(value.shape()) {}
  Parameter() = default;

  void ZeroGrad() {
    if (!grad.empty()) grad.Fill(0.0f);
  }
};

// A parameter with its hierarchical name ("block2/conv1/weight").
struct NamedParam {
  std::string name;
  Parameter* param = nullptr;
};

class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // Computes the output for `x`.  `train` toggles batch statistics /
  // dropout.  The module caches the activations Backward needs.
  virtual Tensor Forward(const Tensor& x, bool train) = 0;

  // Propagates `grad_out` (gradient of the loss w.r.t. this module's last
  // output) back to the input, accumulating parameter gradients.  Must be
  // called after Forward with matching shapes.
  virtual Tensor Backward(const Tensor& grad_out) = 0;

  // Appends this module's parameters, prefixing names with `prefix`.
  virtual void CollectParams(const std::string& prefix,
                             std::vector<NamedParam>& out) = 0;

  // Zeroes all parameter gradients in this subtree.
  void ZeroGrad();

  // Total number of scalar parameters in this subtree.
  std::size_t NumParams();
};

using ModulePtr = std::unique_ptr<Module>;

// Joins two name components with '/'.
std::string JoinName(const std::string& prefix, const std::string& name);

}  // namespace mhbench::nn
