#include "nn/loss.h"

#include <cmath>

#include "core/error.h"
#include "tensor/ops.h"

namespace mhbench::nn {

double SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int>& labels, Tensor& grad) {
  MHB_CHECK_EQ(logits.ndim(), 2);
  const int n = logits.dim(0), c = logits.dim(1);
  MHB_CHECK_EQ(static_cast<int>(labels.size()), n);
  const Tensor log_probs = ops::LogSoftmaxRows(logits);
  grad = ops::SoftmaxRows(logits);
  double loss = 0.0;
  const Scalar inv_n = 1.0f / static_cast<Scalar>(n);
  for (int i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    MHB_CHECK(y >= 0 && y < c) << "label" << y << "out of range";
    loss -= log_probs[static_cast<std::size_t>(i) * c + y];
    grad[static_cast<std::size_t>(i) * c + y] -= 1.0f;
  }
  grad.Scale(inv_n);
  return loss / n;
}

double Accuracy(const Tensor& logits, const std::vector<int>& labels) {
  MHB_CHECK_EQ(logits.ndim(), 2);
  MHB_CHECK_EQ(labels.size(), static_cast<std::size_t>(logits.dim(0)));
  if (labels.empty()) return 0.0;
  const std::vector<int> pred = ops::ArgmaxRows(logits);
  int correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

Tensor SoftmaxWithTemperature(const Tensor& logits, double temperature) {
  MHB_CHECK_GT(temperature, 0.0);
  Tensor scaled = logits;
  scaled.Scale(static_cast<Scalar>(1.0 / temperature));
  return ops::SoftmaxRows(scaled);
}

double DistillationKL(const Tensor& student_logits,
                      const Tensor& teacher_probs, double temperature,
                      Tensor& grad) {
  MHB_CHECK(student_logits.shape() == teacher_probs.shape());
  MHB_CHECK_GT(temperature, 0.0);
  const int n = student_logits.dim(0), c = student_logits.dim(1);
  Tensor scaled = student_logits;
  scaled.Scale(static_cast<Scalar>(1.0 / temperature));
  const Tensor log_q = ops::LogSoftmaxRows(scaled);
  const Tensor q = ops::SoftmaxRows(scaled);

  // KL(p || q) summed over classes, averaged over batch, times T^2.
  // d/dlogits of that is T * (q - p) / n.
  double loss = 0.0;
  grad = Tensor({n, c});
  const Scalar t_over_n = static_cast<Scalar>(temperature / n);
  for (int i = 0; i < n; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * c;
    for (int j = 0; j < c; ++j) {
      const double p = teacher_probs[base + j];
      if (p > 0) {
        loss += p * (std::log(p) - log_q[base + j]);
      }
      grad[base + j] = (q[base + j] - static_cast<Scalar>(p)) * t_over_n;
    }
  }
  return loss * temperature * temperature / n;
}

double MeanSquaredError(const Tensor& pred, const Tensor& target,
                        Tensor& grad) {
  MHB_CHECK(pred.shape() == target.shape());
  const std::size_t n = pred.numel();
  MHB_CHECK_GT(n, 0u);
  grad = Tensor(pred.shape());
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    loss += d * d;
    grad[i] = static_cast<Scalar>(2.0 * d / static_cast<double>(n));
  }
  return loss / static_cast<double>(n);
}

}  // namespace mhbench::nn
