// Convolution layers (im2col based).
//
// Conv2d operates on [N, C, H, W]; Conv1d on [N, C, L] (implemented as a
// height-1 Conv2d).  Weight layout is [out_c, in_c, kh, kw] so sub-model
// extraction can slice output/input channel dimensions directly.
#pragma once

#include "core/rng.h"
#include "nn/module.h"

namespace mhbench::nn {

class Conv2d : public Module {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride, int pad,
         Rng& rng, bool bias = true);
  Conv2d(Tensor weight, Tensor bias_or_empty, int stride, int pad);
  // Asymmetric padding variant (used by Conv1d to pad only the length axis).
  Conv2d(Tensor weight, Tensor bias_or_empty, int stride, int pad_h,
         int pad_w);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string& prefix,
                     std::vector<NamedParam>& out) override;

  int in_channels() const { return weight_.value.dim(1); }
  int out_channels() const { return weight_.value.dim(0); }
  int kernel_h() const { return weight_.value.dim(2); }
  int kernel_w() const { return weight_.value.dim(3); }
  int stride() const { return stride_; }
  int pad_h() const { return pad_h_; }
  int pad_w() const { return pad_w_; }
  bool has_bias() const { return !bias_.value.empty(); }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  Parameter weight_;  // [out_c, in_c, kh, kw]
  Parameter bias_;    // [out_c] or empty
  int stride_ = 1;
  int pad_h_ = 0;
  int pad_w_ = 0;
  Tensor cached_cols_;      // im2col of last input
  Shape cached_input_shape_;
};

// 1-D convolution over [N, C, L]; wraps Conv2d by inserting a unit height.
class Conv1d : public Module {
 public:
  Conv1d(int in_channels, int out_channels, int kernel, int stride, int pad,
         Rng& rng, bool bias = true);
  Conv1d(Tensor weight /*[out_c, in_c, k]*/, Tensor bias_or_empty, int stride,
         int pad);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string& prefix,
                     std::vector<NamedParam>& out) override;

  int in_channels() const { return conv_.in_channels(); }
  int out_channels() const { return conv_.out_channels(); }

 private:
  Conv2d conv_;
};

}  // namespace mhbench::nn
