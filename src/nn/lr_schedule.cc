#include "nn/lr_schedule.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace mhbench::nn {

double ConstantLr::Multiplier(int /*round*/, int /*total_rounds*/) const {
  return 1.0;
}

StepDecayLr::StepDecayLr(int step, double gamma) : step_(step), gamma_(gamma) {
  MHB_CHECK_GT(step, 0);
  MHB_CHECK_GT(gamma, 0.0);
}

double StepDecayLr::Multiplier(int round, int /*total_rounds*/) const {
  MHB_CHECK_GE(round, 0);
  return std::pow(gamma_, round / step_);
}

CosineLr::CosineLr(double floor) : floor_(floor) {
  MHB_CHECK_GE(floor, 0.0);
  MHB_CHECK_LE(floor, 1.0);
}

double CosineLr::Multiplier(int round, int total_rounds) const {
  MHB_CHECK_GE(round, 0);
  MHB_CHECK_GT(total_rounds, 0);
  const double t = std::min(1.0, static_cast<double>(round) / total_rounds);
  return floor_ + (1.0 - floor_) * 0.5 * (1.0 + std::cos(M_PI * t));
}

std::unique_ptr<LrSchedule> MakeConstantLr() {
  return std::make_unique<ConstantLr>();
}
std::unique_ptr<LrSchedule> MakeStepDecayLr(int step, double gamma) {
  return std::make_unique<StepDecayLr>(step, gamma);
}
std::unique_ptr<LrSchedule> MakeCosineLr(double floor) {
  return std::make_unique<CosineLr>(floor);
}

}  // namespace mhbench::nn
