#include "nn/conv.h"

#include <cstddef>

#include "nn/init.h"
#include "obs/profile.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/scratch.h"

namespace mhbench::nn {
namespace {

// [N*OH*OW, out_c] rows ordered (n, oy, ox) -> [N, out_c, OH, OW].
void RowsToNCHWInto(const Scalar* rows, int n, int oc, int oh, int ow,
                    Scalar* out) {
  std::size_t row = 0;
  for (int b = 0; b < n; ++b) {
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x, ++row) {
        const Scalar* irow = rows + row * static_cast<std::size_t>(oc);
        for (int c = 0; c < oc; ++c) {
          out[((static_cast<std::size_t>(b) * oc + c) * oh + y) * ow + x] =
              irow[c];
        }
      }
    }
  }
}

// Inverse of RowsToNCHWInto.
void NCHWToRowsInto(const Tensor& t, Scalar* rows) {
  const int n = t.dim(0), c = t.dim(1), h = t.dim(2), w = t.dim(3);
  const Scalar* in = t.data().data();
  std::size_t row = 0;
  for (int b = 0; b < n; ++b) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x, ++row) {
        Scalar* orow = rows + row * static_cast<std::size_t>(c);
        for (int ch = 0; ch < c; ++ch) {
          orow[ch] =
              in[((static_cast<std::size_t>(b) * c + ch) * h + y) * w + x];
        }
      }
    }
  }
}

}  // namespace

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int pad, Rng& rng, bool bias)
    : stride_(stride), pad_h_(pad), pad_w_(pad) {
  MHB_CHECK_GT(in_channels, 0);
  MHB_CHECK_GT(out_channels, 0);
  MHB_CHECK_GT(kernel, 0);
  const int fan_in = in_channels * kernel * kernel;
  weight_ = Parameter(KaimingNormal(
      {out_channels, in_channels, kernel, kernel}, fan_in, rng));
  if (bias) bias_ = Parameter(Tensor({out_channels}));
}

Conv2d::Conv2d(Tensor weight, Tensor bias_or_empty, int stride, int pad)
    : Conv2d(std::move(weight), std::move(bias_or_empty), stride, pad, pad) {}

Conv2d::Conv2d(Tensor weight, Tensor bias_or_empty, int stride, int pad_h,
               int pad_w)
    : stride_(stride), pad_h_(pad_h), pad_w_(pad_w) {
  MHB_CHECK_EQ(weight.ndim(), 4);
  if (!bias_or_empty.empty()) {
    MHB_CHECK_EQ(bias_or_empty.ndim(), 1);
    MHB_CHECK_EQ(bias_or_empty.dim(0), weight.dim(0));
    bias_ = Parameter(std::move(bias_or_empty));
  }
  weight_ = Parameter(std::move(weight));
}

Tensor Conv2d::Forward(const Tensor& x, bool /*train*/) {
  obs::ProfileScope profile_scope("conv2d_fwd");
  MHB_CHECK_EQ(x.ndim(), 4);
  MHB_CHECK_EQ(x.dim(1), in_channels());
  cached_input_shape_ = x.shape();
  const int n = x.dim(0);
  const int oc = out_channels();
  const int ickk = in_channels() * kernel_h() * kernel_w();
  const int oh = (x.dim(2) + 2 * pad_h_ - kernel_h()) / stride_ + 1;
  const int ow = (x.dim(3) + 2 * pad_w_ - kernel_w()) / stride_ + 1;
  const int rows_n = n * oh * ow;

  // The column matrix lives in a member tensor so repeated steps with the
  // same geometry reuse the buffer; Backward reads it back.
  const int cols_shape[2] = {rows_n, ickk};
  cached_cols_.ResizeUninitialized(cols_shape);
  ops::Im2ColInto(x, kernel_h(), kernel_w(), stride_, pad_h_, pad_w_,
                  cached_cols_.data().data());

  // rows[N*OH*OW, out_c] = cols · W^T + bias, staged in the scratch arena;
  // the weight tensor [oc, ic, kh, kw] is read as a flat [oc, ickk] matrix.
  kernels::ScratchScope scratch;
  float* rows = scratch.Alloc(static_cast<std::size_t>(rows_n) * oc);
  kernels::Gemm(false, true, rows_n, oc, ickk, cached_cols_.data().data(),
                ickk, weight_.value.data().data(), ickk, 0.0f, rows, oc,
                has_bias() ? bias_.value.data().data() : nullptr);

  Tensor out = Tensor::Uninitialized({n, oc, oh, ow});
  RowsToNCHWInto(rows, n, oc, oh, ow, out.data().data());
  return out;
}

Tensor Conv2d::Backward(const Tensor& grad_out) {
  obs::ProfileScope profile_scope("conv2d_bwd");
  MHB_CHECK(!cached_cols_.empty()) << "Backward before Forward";
  MHB_CHECK_EQ(grad_out.ndim(), 4);
  MHB_CHECK_EQ(grad_out.dim(1), out_channels());
  const int oc = out_channels();
  const int ickk = in_channels() * kernel_h() * kernel_w();
  const int rows_n = cached_cols_.dim(0);

  kernels::ScratchScope scratch;
  float* grows = scratch.Alloc(static_cast<std::size_t>(rows_n) * oc);
  NCHWToRowsInto(grad_out, grows);  // [N*OH*OW, out_c]

  // dW += G^T · cols, accumulated straight into the flat [oc, ickk] view of
  // the weight gradient (beta = 1).
  kernels::Gemm(true, false, oc, ickk, rows_n, grows, oc,
                cached_cols_.data().data(), ickk, 1.0f,
                weight_.grad.data().data(), ickk);
  if (has_bias()) {
    kernels::ColSumAcc(grows, rows_n, oc, oc, bias_.grad.data().data());
  }

  // dcols = G · W, then scatter back to the input shape.
  float* dcols = scratch.Alloc(static_cast<std::size_t>(rows_n) * ickk);
  kernels::Gemm(false, false, rows_n, ickk, oc, grows, oc,
                weight_.value.data().data(), ickk, 0.0f, dcols, ickk);
  Tensor dx(cached_input_shape_);
  ops::Col2ImAcc(dcols, cached_input_shape_, kernel_h(), kernel_w(), stride_,
                 pad_h_, pad_w_, dx.data().data());
  return dx;
}

void Conv2d::CollectParams(const std::string& prefix,
                           std::vector<NamedParam>& out) {
  out.push_back({JoinName(prefix, "weight"), &weight_});
  if (has_bias()) out.push_back({JoinName(prefix, "bias"), &bias_});
}

namespace {
Tensor Unsqueeze1dWeight(Tensor w) {
  MHB_CHECK_EQ(w.ndim(), 3);
  const int oc = w.dim(0), ic = w.dim(1), k = w.dim(2);
  return w.Reshape({oc, ic, 1, k});
}
}  // namespace

Conv1d::Conv1d(int in_channels, int out_channels, int kernel, int stride,
               int pad, Rng& rng, bool bias)
    : conv_(KaimingNormal({out_channels, in_channels, 1, kernel},
                          in_channels * kernel, rng),
            bias ? Tensor({out_channels}) : Tensor(), stride, /*pad_h=*/0,
            pad) {}

Conv1d::Conv1d(Tensor weight, Tensor bias_or_empty, int stride, int pad)
    : conv_(Unsqueeze1dWeight(std::move(weight)), std::move(bias_or_empty),
            stride, /*pad_h=*/0, pad) {}

Tensor Conv1d::Forward(const Tensor& x, bool train) {
  MHB_CHECK_EQ(x.ndim(), 3);  // [N, C, L]
  const int n = x.dim(0), c = x.dim(1), l = x.dim(2);
  const Tensor x4 = x.Reshape({n, c, 1, l});
  Tensor y4 = conv_.Forward(x4, train);  // [N, OC, 1, OL]
  return y4.Reshape({y4.dim(0), y4.dim(1), y4.dim(3)});
}

Tensor Conv1d::Backward(const Tensor& grad_out) {
  MHB_CHECK_EQ(grad_out.ndim(), 3);
  const int n = grad_out.dim(0), c = grad_out.dim(1), l = grad_out.dim(2);
  Tensor gx4 = conv_.Backward(grad_out.Reshape({n, c, 1, l}));
  return gx4.Reshape({gx4.dim(0), gx4.dim(1), gx4.dim(3)});
}

void Conv1d::CollectParams(const std::string& prefix,
                           std::vector<NamedParam>& out) {
  conv_.CollectParams(prefix, out);
}

}  // namespace mhbench::nn
