#include "nn/attention.h"

#include <cmath>

#include "tensor/ops.h"

namespace mhbench::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(int d_model, int heads,
                                               Rng& rng)
    : d_model_(d_model),
      heads_(heads),
      wq_(d_model, d_model, rng),
      wk_(d_model, d_model, rng),
      wv_(d_model, d_model, rng),
      wo_(d_model, d_model, rng) {
  MHB_CHECK_GT(heads, 0);
  MHB_CHECK_EQ(d_model % heads, 0) << "d_model must divide into heads";
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x, bool train) {
  MHB_CHECK_EQ(x.ndim(), 3);
  MHB_CHECK_EQ(x.dim(2), d_model_);
  const int n = x.dim(0), l = x.dim(1), d = d_model_, h = heads_;
  const int dh = d / h;
  cached_n_ = n;
  cached_l_ = l;

  const Tensor x2 = x.Reshape({n * l, d});
  cached_q_ = wq_.Forward(x2, train);
  cached_k_ = wk_.Forward(x2, train);
  cached_v_ = wv_.Forward(x2, train);
  cached_attn_ = Tensor({n, h, l, l});
  cached_concat_ = Tensor({n * l, d});

  const Scalar scale = 1.0f / std::sqrt(static_cast<Scalar>(dh));
  const Scalar* pq = cached_q_.data().data();
  const Scalar* pk = cached_k_.data().data();
  const Scalar* pv = cached_v_.data().data();
  Scalar* pa = cached_attn_.data().data();
  Scalar* po = cached_concat_.data().data();

  std::vector<Scalar> scores(static_cast<std::size_t>(l));
  for (int b = 0; b < n; ++b) {
    for (int hd = 0; hd < h; ++hd) {
      Scalar* attn =
          pa + ((static_cast<std::size_t>(b) * h + hd) * l) * l;
      for (int i = 0; i < l; ++i) {
        const Scalar* qrow =
            pq + (static_cast<std::size_t>(b) * l + i) * d + hd * dh;
        Scalar mx = -1e30f;
        for (int j = 0; j < l; ++j) {
          const Scalar* krow =
              pk + (static_cast<std::size_t>(b) * l + j) * d + hd * dh;
          Scalar s = 0;
          for (int k = 0; k < dh; ++k) s += qrow[k] * krow[k];
          s *= scale;
          scores[static_cast<std::size_t>(j)] = s;
          mx = std::max(mx, s);
        }
        double sum = 0.0;
        for (int j = 0; j < l; ++j) {
          const Scalar e = std::exp(scores[static_cast<std::size_t>(j)] - mx);
          attn[static_cast<std::size_t>(i) * l + j] = e;
          sum += e;
        }
        const Scalar inv = static_cast<Scalar>(1.0 / sum);
        Scalar* orow =
            po + (static_cast<std::size_t>(b) * l + i) * d + hd * dh;
        for (int k = 0; k < dh; ++k) orow[k] = 0;
        for (int j = 0; j < l; ++j) {
          const Scalar a = attn[static_cast<std::size_t>(i) * l + j] * inv;
          attn[static_cast<std::size_t>(i) * l + j] = a;
          const Scalar* vrow =
              pv + (static_cast<std::size_t>(b) * l + j) * d + hd * dh;
          for (int k = 0; k < dh; ++k) orow[k] += a * vrow[k];
        }
      }
    }
  }
  Tensor y2 = wo_.Forward(cached_concat_, train);
  return y2.Reshape({n, l, d});
}

Tensor MultiHeadSelfAttention::Backward(const Tensor& grad_out) {
  MHB_CHECK(!cached_q_.empty()) << "Backward before Forward";
  const int n = cached_n_, l = cached_l_, d = d_model_, h = heads_;
  const int dh = d / h;
  MHB_CHECK(grad_out.shape() == Shape({n, l, d}));

  const Tensor g2 = grad_out.Reshape({n * l, d});
  const Tensor d_concat = wo_.Backward(g2);  // also accumulates dWo

  Tensor dq({n * l, d}), dk({n * l, d}), dv({n * l, d});
  const Scalar scale = 1.0f / std::sqrt(static_cast<Scalar>(dh));

  const Scalar* pq = cached_q_.data().data();
  const Scalar* pk = cached_k_.data().data();
  const Scalar* pv = cached_v_.data().data();
  const Scalar* pa = cached_attn_.data().data();
  const Scalar* pdo = d_concat.data().data();
  Scalar* pdq = dq.data().data();
  Scalar* pdk = dk.data().data();
  Scalar* pdv = dv.data().data();

  std::vector<Scalar> da(static_cast<std::size_t>(l));
  for (int b = 0; b < n; ++b) {
    for (int hd = 0; hd < h; ++hd) {
      const Scalar* attn =
          pa + ((static_cast<std::size_t>(b) * h + hd) * l) * l;
      for (int i = 0; i < l; ++i) {
        const Scalar* dorow =
            pdo + (static_cast<std::size_t>(b) * l + i) * d + hd * dh;
        const Scalar* arow = attn + static_cast<std::size_t>(i) * l;
        // dA_ij = dO_i . V_j ;   dV_j += A_ij * dO_i
        double dot = 0.0;
        for (int j = 0; j < l; ++j) {
          const Scalar* vrow =
              pv + (static_cast<std::size_t>(b) * l + j) * d + hd * dh;
          Scalar s = 0;
          for (int k = 0; k < dh; ++k) s += dorow[k] * vrow[k];
          da[static_cast<std::size_t>(j)] = s;
          dot += static_cast<double>(s) * arow[j];
          Scalar* dvrow =
              pdv + (static_cast<std::size_t>(b) * l + j) * d + hd * dh;
          for (int k = 0; k < dh; ++k) dvrow[k] += arow[j] * dorow[k];
        }
        // Softmax jacobian, then dQ_i += dS_ij * K_j, dK_j += dS_ij * Q_i.
        const Scalar* qrow =
            pq + (static_cast<std::size_t>(b) * l + i) * d + hd * dh;
        Scalar* dqrow =
            pdq + (static_cast<std::size_t>(b) * l + i) * d + hd * dh;
        for (int j = 0; j < l; ++j) {
          const Scalar ds =
              arow[j] *
              (da[static_cast<std::size_t>(j)] - static_cast<Scalar>(dot)) *
              scale;
          const Scalar* krow =
              pk + (static_cast<std::size_t>(b) * l + j) * d + hd * dh;
          Scalar* dkrow =
              pdk + (static_cast<std::size_t>(b) * l + j) * d + hd * dh;
          for (int k = 0; k < dh; ++k) {
            dqrow[k] += ds * krow[k];
            dkrow[k] += ds * qrow[k];
          }
        }
      }
    }
  }

  Tensor dx2 = wq_.Backward(dq);
  dx2.AddInPlace(wk_.Backward(dk));
  dx2.AddInPlace(wv_.Backward(dv));
  return dx2.Reshape({n, l, d});
}

void MultiHeadSelfAttention::CollectParams(const std::string& prefix,
                                           std::vector<NamedParam>& out) {
  wq_.CollectParams(JoinName(prefix, "wq"), out);
  wk_.CollectParams(JoinName(prefix, "wk"), out);
  wv_.CollectParams(JoinName(prefix, "wv"), out);
  wo_.CollectParams(JoinName(prefix, "wo"), out);
}

}  // namespace mhbench::nn
