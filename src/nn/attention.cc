#include "nn/attention.h"

#include <cmath>

#include "obs/profile.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/scratch.h"

namespace mhbench::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(int d_model, int heads,
                                               Rng& rng)
    : d_model_(d_model),
      heads_(heads),
      wq_(d_model, d_model, rng),
      wk_(d_model, d_model, rng),
      wv_(d_model, d_model, rng),
      wo_(d_model, d_model, rng) {
  MHB_CHECK_GT(heads, 0);
  MHB_CHECK_EQ(d_model % heads, 0) << "d_model must divide into heads";
}

// Per-(batch, head) blocks of the packed [N*L, d_model] projections are
// strided sub-matrices (row stride d_model), which the GEMM kernel consumes
// directly — no per-head copies.  The (b, h) blocks tile every output
// exactly once, so all block GEMMs run with beta = 0 into uninitialized
// storage.

Tensor MultiHeadSelfAttention::Forward(const Tensor& x, bool train) {
  obs::ProfileScope profile_scope("attention_fwd");
  MHB_CHECK_EQ(x.ndim(), 3);
  MHB_CHECK_EQ(x.dim(2), d_model_);
  const int n = x.dim(0), l = x.dim(1), d = d_model_, h = heads_;
  const int dh = d / h;
  cached_n_ = n;
  cached_l_ = l;

  const Tensor x2 = x.Reshape({n * l, d});
  cached_q_ = wq_.Forward(x2, train);
  cached_k_ = wk_.Forward(x2, train);
  cached_v_ = wv_.Forward(x2, train);
  cached_attn_ = Tensor::Uninitialized({n, h, l, l});
  cached_concat_ = Tensor::Uninitialized({n * l, d});

  const Scalar scale = 1.0f / std::sqrt(static_cast<Scalar>(dh));
  const Scalar* pq = cached_q_.data().data();
  const Scalar* pk = cached_k_.data().data();
  const Scalar* pv = cached_v_.data().data();
  Scalar* pa = cached_attn_.data().data();
  Scalar* po = cached_concat_.data().data();

  for (int b = 0; b < n; ++b) {
    const std::size_t blk = static_cast<std::size_t>(b) * l * d;
    for (int hd = 0; hd < h; ++hd) {
      const std::size_t off = blk + static_cast<std::size_t>(hd) * dh;
      Scalar* attn = pa + (static_cast<std::size_t>(b) * h + hd) *
                              static_cast<std::size_t>(l) * l;
      // S = Q_blk · K_blk^T (unscaled; the scale folds into the softmax).
      kernels::Gemm(false, true, l, l, dh, pq + off, d, pk + off, d, 0.0f,
                    attn, l);
      for (int i = 0; i < l; ++i) {
        Scalar* arow = attn + static_cast<std::size_t>(i) * l;
        Scalar mx = -1e30f;
        for (int j = 0; j < l; ++j) mx = std::max(mx, arow[j] * scale);
        double sum = 0.0;
        for (int j = 0; j < l; ++j) {
          const Scalar e = std::exp(arow[j] * scale - mx);
          arow[j] = e;
          sum += e;
        }
        const Scalar inv = static_cast<Scalar>(1.0 / sum);
        for (int j = 0; j < l; ++j) arow[j] *= inv;
      }
      // O_blk = A · V_blk.
      kernels::Gemm(false, false, l, dh, l, attn, l, pv + off, d, 0.0f,
                    po + off, d);
    }
  }
  Tensor y2 = wo_.Forward(cached_concat_, train);
  return y2.Reshape({n, l, d});
}

Tensor MultiHeadSelfAttention::Backward(const Tensor& grad_out) {
  obs::ProfileScope profile_scope("attention_bwd");
  MHB_CHECK(!cached_q_.empty()) << "Backward before Forward";
  const int n = cached_n_, l = cached_l_, d = d_model_, h = heads_;
  const int dh = d / h;
  MHB_CHECK(grad_out.shape() == Shape({n, l, d}));

  const Tensor g2 = grad_out.Reshape({n * l, d});
  const Tensor d_concat = wo_.Backward(g2);  // also accumulates dWo

  Tensor dq = Tensor::Uninitialized({n * l, d});
  Tensor dk = Tensor::Uninitialized({n * l, d});
  Tensor dv = Tensor::Uninitialized({n * l, d});
  const Scalar scale = 1.0f / std::sqrt(static_cast<Scalar>(dh));

  const Scalar* pq = cached_q_.data().data();
  const Scalar* pk = cached_k_.data().data();
  const Scalar* pv = cached_v_.data().data();
  const Scalar* pa = cached_attn_.data().data();
  const Scalar* pdo = d_concat.data().data();
  Scalar* pdq = dq.data().data();
  Scalar* pdk = dk.data().data();
  Scalar* pdv = dv.data().data();

  kernels::ScratchScope scratch;
  Scalar* ds = scratch.Alloc(static_cast<std::size_t>(l) * l);

  for (int b = 0; b < n; ++b) {
    const std::size_t blk = static_cast<std::size_t>(b) * l * d;
    for (int hd = 0; hd < h; ++hd) {
      const std::size_t off = blk + static_cast<std::size_t>(hd) * dh;
      const Scalar* attn = pa + (static_cast<std::size_t>(b) * h + hd) *
                                    static_cast<std::size_t>(l) * l;
      // dA = dO · V^T ;  dV = A^T · dO.
      kernels::Gemm(false, true, l, l, dh, pdo + off, d, pv + off, d, 0.0f,
                    ds, l);
      kernels::Gemm(true, false, l, dh, l, attn, l, pdo + off, d, 0.0f,
                    pdv + off, d);
      // Softmax jacobian in place: dS_ij = A_ij (dA_ij - dA_i·A_i) * scale.
      for (int i = 0; i < l; ++i) {
        const Scalar* arow = attn + static_cast<std::size_t>(i) * l;
        Scalar* dsrow = ds + static_cast<std::size_t>(i) * l;
        double dot = 0.0;
        for (int j = 0; j < l; ++j) {
          dot += static_cast<double>(dsrow[j]) * arow[j];
        }
        for (int j = 0; j < l; ++j) {
          dsrow[j] = arow[j] * (dsrow[j] - static_cast<Scalar>(dot)) * scale;
        }
      }
      // dQ = dS · K ;  dK = dS^T · Q.
      kernels::Gemm(false, false, l, dh, l, ds, l, pk + off, d, 0.0f,
                    pdq + off, d);
      kernels::Gemm(true, false, l, dh, l, ds, l, pq + off, d, 0.0f,
                    pdk + off, d);
    }
  }

  Tensor dx2 = wq_.Backward(dq);
  dx2.AddInPlace(wk_.Backward(dk));
  dx2.AddInPlace(wv_.Backward(dv));
  return dx2.Reshape({n, l, d});
}

void MultiHeadSelfAttention::CollectParams(const std::string& prefix,
                                           std::vector<NamedParam>& out) {
  wq_.CollectParams(JoinName(prefix, "wq"), out);
  wk_.CollectParams(JoinName(prefix, "wk"), out);
  wv_.CollectParams(JoinName(prefix, "wv"), out);
  wo_.CollectParams(JoinName(prefix, "wo"), out);
}

}  // namespace mhbench::nn
