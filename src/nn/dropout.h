// Inverted dropout (identity in eval mode).
#pragma once

#include "core/rng.h"
#include "nn/module.h"

namespace mhbench::nn {

class Dropout : public Module {
 public:
  // `rate` in [0, 1); the module owns a forked RNG stream for mask draws.
  Dropout(Scalar rate, Rng& rng);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string&, std::vector<NamedParam>&) override {}

 private:
  Scalar rate_;
  Rng rng_;
  Tensor cached_mask_;  // scaled keep mask; empty when last pass was eval
};

}  // namespace mhbench::nn
