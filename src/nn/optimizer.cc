#include "nn/optimizer.h"

#include <cmath>

namespace mhbench::nn {
namespace {

bool DecayEnabled(const std::string& name, double weight_decay,
                  const std::vector<std::string>& no_decay) {
  if (weight_decay <= 0) return false;
  for (const auto& token : no_decay) {
    if (name.find(token) != std::string::npos) return false;
  }
  return true;
}

}  // namespace

Optimizer::Optimizer(Module& module) {
  module.CollectParams("", params_);
  is_running_stat_.reserve(params_.size());
  for (const auto& p : params_) {
    is_running_stat_.push_back(p.name.find("running_") != std::string::npos);
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.param->ZeroGrad();
}

void Optimizer::ClipGradNorm(double max_norm) {
  MHB_CHECK_GT(max_norm, 0.0);
  double sq = 0.0;
  for (const auto& p : params_) sq += p.param->grad.SquaredL2();
  const double norm = std::sqrt(sq);
  if (norm <= max_norm || norm == 0.0) return;
  const auto scale = static_cast<Scalar>(max_norm / norm);
  for (auto& p : params_) p.param->grad.Scale(scale);
}

Sgd::Sgd(Module& module, SgdOptions options)
    : Optimizer(module), options_(std::move(options)) {
  velocity_.reserve(params_.size());
  decay_enabled_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.emplace_back(p.param->value.shape());
    decay_enabled_.push_back(
        DecayEnabled(p.name, options_.weight_decay, options_.no_decay));
  }
}

void Sgd::Step() {
  const auto lr = static_cast<Scalar>(options_.lr);
  const auto mu = static_cast<Scalar>(options_.momentum);
  const auto wd = static_cast<Scalar>(options_.weight_decay);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    // Running statistics update themselves inside BatchNorm::Forward; the
    // optimizer must not touch them.
    if (is_running_stat_[i]) continue;
    Parameter& p = *params_[i].param;
    Tensor& v = velocity_[i];
    auto pv = p.value.data();
    auto pg = p.grad.data();
    auto vel = v.data();
    const bool decay = decay_enabled_[i];
    for (std::size_t j = 0; j < pv.size(); ++j) {
      Scalar g = pg[j];
      if (decay) g += wd * pv[j];
      vel[j] = mu * vel[j] + g;
      pv[j] -= lr * vel[j];
    }
  }
}

Adam::Adam(Module& module, AdamOptions options)
    : Optimizer(module), options_(std::move(options)) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  decay_enabled_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.param->value.shape());
    v_.emplace_back(p.param->value.shape());
    decay_enabled_.push_back(
        DecayEnabled(p.name, options_.weight_decay, options_.no_decay));
  }
}

void Adam::Step() {
  ++step_;
  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(step_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(step_));
  const double lr = options_.lr;
  const double eps = options_.eps;
  const auto wd = static_cast<Scalar>(options_.weight_decay);

  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (is_running_stat_[i]) continue;
    Parameter& p = *params_[i].param;
    auto pv = p.value.data();
    auto pg = p.grad.data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    const bool decay = decay_enabled_[i];
    for (std::size_t j = 0; j < pv.size(); ++j) {
      const double g = pg[j];
      m[j] = static_cast<Scalar>(b1 * m[j] + (1.0 - b1) * g);
      v[j] = static_cast<Scalar>(b2 * v[j] + (1.0 - b2) * g * g);
      const double mhat = m[j] / bias1;
      const double vhat = v[j] / bias2;
      pv[j] -= static_cast<Scalar>(lr * mhat / (std::sqrt(vhat) + eps));
      if (decay) pv[j] -= static_cast<Scalar>(lr * wd) * pv[j];
    }
  }
}

std::unique_ptr<Optimizer> MakeOptimizer(Module& module,
                                         const OptimizerOptions& options) {
  if (options.kind == OptimizerKind::kAdam) {
    AdamOptions adam;
    adam.lr = options.lr;
    adam.weight_decay = options.weight_decay;
    return std::make_unique<Adam>(module, adam);
  }
  SgdOptions sgd;
  sgd.lr = options.lr;
  sgd.momentum = options.momentum;
  sgd.weight_decay = options.weight_decay;
  return std::make_unique<Sgd>(module, sgd);
}

}  // namespace mhbench::nn
