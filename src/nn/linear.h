// Fully connected layer: y = x W^T + b, weight shape [out, in].
#pragma once

#include "core/rng.h"
#include "nn/module.h"

namespace mhbench::nn {

class Linear : public Module {
 public:
  // `rng` seeds Kaiming initialization; bias is zero-initialized.
  Linear(int in_features, int out_features, Rng& rng, bool bias = true);

  // Constructs with externally provided weights (used by sub-model builders).
  Linear(Tensor weight, Tensor bias_or_empty);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string& prefix,
                     std::vector<NamedParam>& out) override;

  int in_features() const { return weight_.value.dim(1); }
  int out_features() const { return weight_.value.dim(0); }
  bool has_bias() const { return !bias_.value.empty(); }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out] or empty
  Tensor cached_input_;
};

}  // namespace mhbench::nn
