// Normalization layers.
//
// BatchNorm normalizes over the channel dimension (dim 1) of [N, C],
// [N, C, L] or [N, C, H, W] inputs, with running statistics for eval mode.
// In federated use the running statistics travel with the other parameters
// (HeteroFL's "static batch norm" corresponds to aggregating them like
// weights, which is what the param store does).
// LayerNorm normalizes the last dimension (transformer blocks).
#pragma once

#include "nn/module.h"

namespace mhbench::nn {

class BatchNorm : public Module {
 public:
  explicit BatchNorm(int channels, Scalar momentum = 0.1f,
                     Scalar eps = 1e-5f);
  // Constructs from externally provided affine + running tensors (all [C]).
  BatchNorm(Tensor gamma, Tensor beta, Tensor running_mean, Tensor running_var,
            Scalar momentum = 0.1f, Scalar eps = 1e-5f);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string& prefix,
                     std::vector<NamedParam>& out) override;

  int channels() const { return gamma_.value.dim(0); }

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  // Running statistics are exposed as (non-gradient) parameters so the FL
  // layer can ship and aggregate them; their grads stay zero.
  Parameter& running_mean() { return running_mean_; }
  Parameter& running_var() { return running_var_; }

 private:
  Parameter gamma_, beta_;
  Parameter running_mean_, running_var_;
  Scalar momentum_, eps_;

  // Caches from the last training-mode forward.
  Tensor cached_xhat_;
  std::vector<Scalar> cached_std_;  // per channel
  Shape cached_shape_;
  bool cached_train_ = false;
};

class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim, Scalar eps = 1e-5f);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string& prefix,
                     std::vector<NamedParam>& out) override;

  int dim() const { return gamma_.value.dim(0); }

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }

 private:
  Parameter gamma_, beta_;
  Scalar eps_;
  Tensor cached_xhat_;
  std::vector<Scalar> cached_inv_std_;  // per row
};

}  // namespace mhbench::nn
