#include "nn/composite.h"

namespace mhbench::nn {

Sequential::Sequential(std::vector<ModulePtr> modules)
    : modules_(std::move(modules)) {
  for (const auto& m : modules_) MHB_CHECK(m != nullptr);
}

Module& Sequential::Add(ModulePtr m) {
  MHB_CHECK(m != nullptr);
  modules_.push_back(std::move(m));
  return *modules_.back();
}

Tensor Sequential::Forward(const Tensor& x, bool train) {
  Tensor cur = x;
  for (auto& m : modules_) cur = m->Forward(cur, train);
  return cur;
}

Tensor Sequential::Backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

void Sequential::CollectParams(const std::string& prefix,
                               std::vector<NamedParam>& out) {
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    modules_[i]->CollectParams(JoinName(prefix, std::to_string(i)), out);
  }
}

Residual::Residual(ModulePtr body, ModulePtr shortcut_or_null)
    : body_(std::move(body)), shortcut_(std::move(shortcut_or_null)) {
  MHB_CHECK(body_ != nullptr);
}

Tensor Residual::Forward(const Tensor& x, bool train) {
  Tensor y = body_->Forward(x, train);
  if (shortcut_ != nullptr) {
    y.AddInPlace(shortcut_->Forward(x, train));
  } else {
    MHB_CHECK(y.shape() == x.shape())
        << "identity skip needs matching shapes:" << ShapeToString(y.shape())
        << "vs" << ShapeToString(x.shape());
    y.AddInPlace(x);
  }
  return y;
}

Tensor Residual::Backward(const Tensor& grad_out) {
  Tensor gx = body_->Backward(grad_out);
  if (shortcut_ != nullptr) {
    gx.AddInPlace(shortcut_->Backward(grad_out));
  } else {
    gx.AddInPlace(grad_out);
  }
  return gx;
}

void Residual::CollectParams(const std::string& prefix,
                             std::vector<NamedParam>& out) {
  body_->CollectParams(JoinName(prefix, "body"), out);
  if (shortcut_ != nullptr) {
    shortcut_->CollectParams(JoinName(prefix, "shortcut"), out);
  }
}

ConcatBranches::ConcatBranches(std::vector<ModulePtr> branches)
    : branches_(std::move(branches)) {
  MHB_CHECK(!branches_.empty());
  for (const auto& b : branches_) MHB_CHECK(b != nullptr);
}

Tensor ConcatBranches::Forward(const Tensor& x, bool train) {
  std::vector<Tensor> outs;
  outs.reserve(branches_.size());
  cached_channels_.clear();
  int total_c = 0;
  for (auto& b : branches_) {
    outs.push_back(b->Forward(x, train));
    MHB_CHECK_GE(outs.back().ndim(), 2);
    // All branch outputs must agree except on the channel dim.
    Shape got = outs.back().shape();
    Shape first = outs.front().shape();
    got[1] = 0;
    first[1] = 0;
    MHB_CHECK(got == first) << "branch outputs differ beyond the channel dim";
    cached_channels_.push_back(outs.back().dim(1));
    total_c += outs.back().dim(1);
  }
  Shape out_shape = outs.front().shape();
  out_shape[1] = total_c;
  Tensor y(out_shape);
  const int n = out_shape[0];
  const std::size_t spatial =
      outs.front().numel() /
      (static_cast<std::size_t>(n) * outs.front().dim(1));
  Scalar* py = y.data().data();
  for (int b = 0; b < n; ++b) {
    std::size_t ch_base = 0;
    for (std::size_t k = 0; k < outs.size(); ++k) {
      const int ck = cached_channels_[k];
      const Scalar* src = outs[k].data().data() +
                          static_cast<std::size_t>(b) * ck * spatial;
      Scalar* dst = py + (static_cast<std::size_t>(b) * total_c + ch_base) *
                             spatial;
      for (std::size_t e = 0; e < static_cast<std::size_t>(ck) * spatial;
           ++e) {
        dst[e] = src[e];
      }
      ch_base += static_cast<std::size_t>(ck);
    }
  }
  return y;
}

Tensor ConcatBranches::Backward(const Tensor& grad_out) {
  MHB_CHECK(!cached_channels_.empty()) << "Backward before Forward";
  const int n = grad_out.dim(0);
  int total_c = 0;
  for (int c : cached_channels_) total_c += c;
  MHB_CHECK_EQ(grad_out.dim(1), total_c);
  const std::size_t spatial =
      grad_out.numel() / (static_cast<std::size_t>(n) * total_c);

  Tensor gx;
  std::size_t ch_base = 0;
  for (std::size_t k = 0; k < branches_.size(); ++k) {
    const int ck = cached_channels_[k];
    Shape gshape = grad_out.shape();
    gshape[1] = ck;
    Tensor g(gshape);
    for (int b = 0; b < n; ++b) {
      const Scalar* src =
          grad_out.data().data() +
          (static_cast<std::size_t>(b) * total_c + ch_base) * spatial;
      Scalar* dst =
          g.data().data() + static_cast<std::size_t>(b) * ck * spatial;
      for (std::size_t e = 0; e < static_cast<std::size_t>(ck) * spatial;
           ++e) {
        dst[e] = src[e];
      }
    }
    Tensor branch_gx = branches_[k]->Backward(g);
    if (gx.empty()) {
      gx = std::move(branch_gx);
    } else {
      gx.AddInPlace(branch_gx);
    }
    ch_base += static_cast<std::size_t>(ck);
  }
  return gx;
}

void ConcatBranches::CollectParams(const std::string& prefix,
                                   std::vector<NamedParam>& out) {
  for (std::size_t k = 0; k < branches_.size(); ++k) {
    branches_[k]->CollectParams(
        JoinName(prefix, "branch" + std::to_string(k)), out);
  }
}

Tensor Flatten::Forward(const Tensor& x, bool /*train*/) {
  MHB_CHECK_GE(x.ndim(), 2);
  cached_input_shape_ = x.shape();
  const int n = x.dim(0);
  const int rest = static_cast<int>(x.numel() / static_cast<std::size_t>(n));
  return x.Reshape({n, rest});
}

Tensor Flatten::Backward(const Tensor& grad_out) {
  MHB_CHECK(!cached_input_shape_.empty());
  return grad_out.Reshape(cached_input_shape_);
}

}  // namespace mhbench::nn
