#include "nn/linear.h"

#include "nn/init.h"
#include "tensor/ops.h"

namespace mhbench::nn {

Linear::Linear(int in_features, int out_features, Rng& rng, bool bias) {
  MHB_CHECK_GT(in_features, 0);
  MHB_CHECK_GT(out_features, 0);
  weight_ = Parameter(
      KaimingNormal({out_features, in_features}, in_features, rng));
  if (bias) bias_ = Parameter(Tensor({out_features}));
}

Linear::Linear(Tensor weight, Tensor bias_or_empty) {
  MHB_CHECK_EQ(weight.ndim(), 2);
  if (!bias_or_empty.empty()) {
    MHB_CHECK_EQ(bias_or_empty.ndim(), 1);
    MHB_CHECK_EQ(bias_or_empty.dim(0), weight.dim(0));
    bias_ = Parameter(std::move(bias_or_empty));
  }
  weight_ = Parameter(std::move(weight));
}

Tensor Linear::Forward(const Tensor& x, bool /*train*/) {
  MHB_CHECK_EQ(x.ndim(), 2);
  MHB_CHECK_EQ(x.dim(1), in_features());
  cached_input_ = x;
  Tensor y = ops::MatmulTransB(x, weight_.value);  // [n, out]
  if (has_bias()) {
    const int n = y.dim(0), out = y.dim(1);
    for (int i = 0; i < n; ++i) {
      Scalar* row = y.data().data() + static_cast<std::size_t>(i) * out;
      for (int j = 0; j < out; ++j) row[j] += bias_.value[static_cast<std::size_t>(j)];
    }
  }
  return y;
}

Tensor Linear::Backward(const Tensor& grad_out) {
  MHB_CHECK(!cached_input_.empty()) << "Backward before Forward";
  MHB_CHECK_EQ(grad_out.ndim(), 2);
  MHB_CHECK_EQ(grad_out.dim(0), cached_input_.dim(0));
  MHB_CHECK_EQ(grad_out.dim(1), out_features());
  // dW = dY^T X ; dX = dY W ; db = colsum(dY)
  weight_.grad.AddInPlace(ops::MatmulTransA(grad_out, cached_input_));
  if (has_bias()) {
    const int n = grad_out.dim(0), out = grad_out.dim(1);
    for (int i = 0; i < n; ++i) {
      const Scalar* row =
          grad_out.data().data() + static_cast<std::size_t>(i) * out;
      for (int j = 0; j < out; ++j) bias_.grad[static_cast<std::size_t>(j)] += row[j];
    }
  }
  return ops::Matmul(grad_out, weight_.value);
}

void Linear::CollectParams(const std::string& prefix,
                           std::vector<NamedParam>& out) {
  out.push_back({JoinName(prefix, "weight"), &weight_});
  if (has_bias()) out.push_back({JoinName(prefix, "bias"), &bias_});
}

}  // namespace mhbench::nn
