#include "nn/linear.h"

#include "nn/init.h"
#include "obs/profile.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace mhbench::nn {

Linear::Linear(int in_features, int out_features, Rng& rng, bool bias) {
  MHB_CHECK_GT(in_features, 0);
  MHB_CHECK_GT(out_features, 0);
  weight_ = Parameter(
      KaimingNormal({out_features, in_features}, in_features, rng));
  if (bias) bias_ = Parameter(Tensor({out_features}));
}

Linear::Linear(Tensor weight, Tensor bias_or_empty) {
  MHB_CHECK_EQ(weight.ndim(), 2);
  if (!bias_or_empty.empty()) {
    MHB_CHECK_EQ(bias_or_empty.ndim(), 1);
    MHB_CHECK_EQ(bias_or_empty.dim(0), weight.dim(0));
    bias_ = Parameter(std::move(bias_or_empty));
  }
  weight_ = Parameter(std::move(weight));
}

Tensor Linear::Forward(const Tensor& x, bool /*train*/) {
  obs::ProfileScope profile_scope("linear_fwd");
  MHB_CHECK_EQ(x.ndim(), 2);
  MHB_CHECK_EQ(x.dim(1), in_features());
  cached_input_ = x;
  const int n = x.dim(0), in = in_features(), out = out_features();
  // Y[n, out] = X · W^T + bias, with the bias fused into the GEMM epilogue.
  // kernels::Gemm is also the precision seam: under an active
  // kernels::EvalPrecisionGuard (the engine installs one around eval-side
  // calls only) this matmul runs the bf16/int8 eval kernels instead of f32;
  // Backward's gradient GEMMs below are never rerouted because training
  // code paths never hold a guard.
  Tensor y = Tensor::Uninitialized({n, out});
  kernels::Gemm(false, true, n, out, in, x.data().data(), in,
                weight_.value.data().data(), in, 0.0f, y.data().data(), out,
                has_bias() ? bias_.value.data().data() : nullptr);
  return y;
}

Tensor Linear::Backward(const Tensor& grad_out) {
  obs::ProfileScope profile_scope("linear_bwd");
  MHB_CHECK(!cached_input_.empty()) << "Backward before Forward";
  MHB_CHECK_EQ(grad_out.ndim(), 2);
  MHB_CHECK_EQ(grad_out.dim(0), cached_input_.dim(0));
  MHB_CHECK_EQ(grad_out.dim(1), out_features());
  const int n = grad_out.dim(0), in = in_features(), out = out_features();
  // dW += dY^T · X, accumulated directly into the gradient (beta = 1).
  kernels::Gemm(true, false, out, in, n, grad_out.data().data(), out,
                cached_input_.data().data(), in, 1.0f,
                weight_.grad.data().data(), in);
  if (has_bias()) {
    kernels::ColSumAcc(grad_out.data().data(), n, out, out,
                       bias_.grad.data().data());
  }
  // dX = dY · W.
  Tensor dx = Tensor::Uninitialized({n, in});
  kernels::Gemm(false, false, n, in, out, grad_out.data().data(), out,
                weight_.value.data().data(), in, 0.0f, dx.data().data(), in);
  return dx;
}

void Linear::CollectParams(const std::string& prefix,
                           std::vector<NamedParam>& out) {
  out.push_back({JoinName(prefix, "weight"), &weight_});
  if (has_bias()) out.push_back({JoinName(prefix, "bias"), &bias_});
}

}  // namespace mhbench::nn
