#include "nn/activation.h"

#include <cmath>

namespace mhbench::nn {

Tensor ReLU::Forward(const Tensor& x, bool /*train*/) {
  cached_input_ = x;
  Tensor y = x;
  for (auto& v : y.data()) {
    if (v < 0) v = 0;
  }
  return y;
}

Tensor ReLU::Backward(const Tensor& grad_out) {
  MHB_CHECK(grad_out.shape() == cached_input_.shape());
  Tensor gx = grad_out;
  auto in = cached_input_.data();
  auto g = gx.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (in[i] <= 0) g[i] = 0;
  }
  return gx;
}

namespace {
// tanh-approximation GELU and its derivative.
constexpr double kGeluC = 0.7978845608028654;  // sqrt(2/pi)

double GeluValue(double x) {
  const double t = std::tanh(kGeluC * (x + 0.044715 * x * x * x));
  return 0.5 * x * (1.0 + t);
}

double GeluDeriv(double x) {
  const double u = kGeluC * (x + 0.044715 * x * x * x);
  const double t = std::tanh(u);
  const double du = kGeluC * (1.0 + 3.0 * 0.044715 * x * x);
  return 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du;
}
}  // namespace

Tensor Gelu::Forward(const Tensor& x, bool /*train*/) {
  cached_input_ = x;
  Tensor y = x;
  for (auto& v : y.data()) v = static_cast<Scalar>(GeluValue(v));
  return y;
}

Tensor Gelu::Backward(const Tensor& grad_out) {
  MHB_CHECK(grad_out.shape() == cached_input_.shape());
  Tensor gx = grad_out;
  auto in = cached_input_.data();
  auto g = gx.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = static_cast<Scalar>(g[i] * GeluDeriv(in[i]));
  }
  return gx;
}

Tensor Tanh::Forward(const Tensor& x, bool /*train*/) {
  Tensor y = x;
  for (auto& v : y.data()) v = std::tanh(v);
  cached_output_ = y;
  return y;
}

Tensor Tanh::Backward(const Tensor& grad_out) {
  MHB_CHECK(grad_out.shape() == cached_output_.shape());
  Tensor gx = grad_out;
  auto out = cached_output_.data();
  auto g = gx.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] *= (1.0f - out[i] * out[i]);
  }
  return gx;
}

}  // namespace mhbench::nn
