#include "nn/norm.h"

#include <cmath>

#include "obs/profile.h"

namespace mhbench::nn {
namespace {

// Decomposes [N, C, ...] into (batch, channels, spatial) extents.
void SplitNCS(const Shape& shape, int& n, int& c, int& s) {
  MHB_CHECK_GE(static_cast<int>(shape.size()), 2);
  n = shape[0];
  c = shape[1];
  s = 1;
  for (std::size_t d = 2; d < shape.size(); ++d) s *= shape[d];
}

}  // namespace

BatchNorm::BatchNorm(int channels, Scalar momentum, Scalar eps)
    : gamma_(Tensor({channels}, 1.0f)),
      beta_(Tensor({channels})),
      running_mean_(Tensor({channels})),
      running_var_(Tensor({channels}, 1.0f)),
      momentum_(momentum),
      eps_(eps) {
  MHB_CHECK_GT(channels, 0);
}

BatchNorm::BatchNorm(Tensor gamma, Tensor beta, Tensor running_mean,
                     Tensor running_var, Scalar momentum, Scalar eps)
    : gamma_(std::move(gamma)),
      beta_(std::move(beta)),
      running_mean_(std::move(running_mean)),
      running_var_(std::move(running_var)),
      momentum_(momentum),
      eps_(eps) {
  const int c = gamma_.value.dim(0);
  MHB_CHECK_EQ(beta_.value.dim(0), c);
  MHB_CHECK_EQ(running_mean_.value.dim(0), c);
  MHB_CHECK_EQ(running_var_.value.dim(0), c);
}

Tensor BatchNorm::Forward(const Tensor& x, bool train) {
  obs::ProfileScope profile_scope("batchnorm_fwd");
  int n = 0, c = 0, s = 0;
  SplitNCS(x.shape(), n, c, s);
  MHB_CHECK_EQ(c, channels());
  cached_shape_ = x.shape();
  cached_train_ = train;

  const std::size_t m = static_cast<std::size_t>(n) * static_cast<std::size_t>(s);
  Tensor y(x.shape());
  cached_xhat_ = Tensor(x.shape());
  cached_std_.assign(static_cast<std::size_t>(c), 1.0f);

  const Scalar* px = x.data().data();
  Scalar* py = y.data().data();
  Scalar* pxh = cached_xhat_.data().data();

  auto offset = [&](int b, int ch, int sp) {
    return (static_cast<std::size_t>(b) * c + static_cast<std::size_t>(ch)) *
               static_cast<std::size_t>(s) +
           static_cast<std::size_t>(sp);
  };

  for (int ch = 0; ch < c; ++ch) {
    Scalar mean, var;
    if (train) {
      double sum = 0.0;
      for (int b = 0; b < n; ++b) {
        for (int sp = 0; sp < s; ++sp) sum += px[offset(b, ch, sp)];
      }
      mean = static_cast<Scalar>(sum / static_cast<double>(m));
      double vsum = 0.0;
      for (int b = 0; b < n; ++b) {
        for (int sp = 0; sp < s; ++sp) {
          const double d = px[offset(b, ch, sp)] - mean;
          vsum += d * d;
        }
      }
      var = static_cast<Scalar>(vsum / static_cast<double>(m));
      auto chu = static_cast<std::size_t>(ch);
      running_mean_.value[chu] =
          (1 - momentum_) * running_mean_.value[chu] + momentum_ * mean;
      running_var_.value[chu] =
          (1 - momentum_) * running_var_.value[chu] + momentum_ * var;
    } else {
      mean = running_mean_.value[static_cast<std::size_t>(ch)];
      var = running_var_.value[static_cast<std::size_t>(ch)];
    }
    const Scalar stdv = std::sqrt(var + eps_);
    cached_std_[static_cast<std::size_t>(ch)] = stdv;
    const Scalar g = gamma_.value[static_cast<std::size_t>(ch)];
    const Scalar bta = beta_.value[static_cast<std::size_t>(ch)];
    for (int b = 0; b < n; ++b) {
      for (int sp = 0; sp < s; ++sp) {
        const std::size_t o = offset(b, ch, sp);
        const Scalar xh = (px[o] - mean) / stdv;
        pxh[o] = xh;
        py[o] = g * xh + bta;
      }
    }
  }
  return y;
}

Tensor BatchNorm::Backward(const Tensor& grad_out) {
  obs::ProfileScope profile_scope("batchnorm_bwd");
  MHB_CHECK(grad_out.shape() == cached_shape_);
  int n = 0, c = 0, s = 0;
  SplitNCS(cached_shape_, n, c, s);
  const double m = static_cast<double>(n) * s;

  Tensor gx(cached_shape_);
  const Scalar* pg = grad_out.data().data();
  const Scalar* pxh = cached_xhat_.data().data();
  Scalar* pgx = gx.data().data();

  auto offset = [&](int b, int ch, int sp) {
    return (static_cast<std::size_t>(b) * c + static_cast<std::size_t>(ch)) *
               static_cast<std::size_t>(s) +
           static_cast<std::size_t>(sp);
  };

  for (int ch = 0; ch < c; ++ch) {
    const auto chu = static_cast<std::size_t>(ch);
    double sum_g = 0.0, sum_gxh = 0.0;
    for (int b = 0; b < n; ++b) {
      for (int sp = 0; sp < s; ++sp) {
        const std::size_t o = offset(b, ch, sp);
        sum_g += pg[o];
        sum_gxh += static_cast<double>(pg[o]) * pxh[o];
      }
    }
    gamma_.grad[chu] += static_cast<Scalar>(sum_gxh);
    beta_.grad[chu] += static_cast<Scalar>(sum_g);

    const Scalar g = gamma_.value[chu];
    const Scalar inv_std = 1.0f / cached_std_[chu];
    if (cached_train_) {
      // Standard batch-norm backward with batch statistics.
      for (int b = 0; b < n; ++b) {
        for (int sp = 0; sp < s; ++sp) {
          const std::size_t o = offset(b, ch, sp);
          const double term = m * pg[o] - sum_g - pxh[o] * sum_gxh;
          pgx[o] = static_cast<Scalar>(g * inv_std * term / m);
        }
      }
    } else {
      // Eval-mode stats are constants w.r.t. x.
      for (int b = 0; b < n; ++b) {
        for (int sp = 0; sp < s; ++sp) {
          const std::size_t o = offset(b, ch, sp);
          pgx[o] = g * inv_std * pg[o];
        }
      }
    }
  }
  return gx;
}

void BatchNorm::CollectParams(const std::string& prefix,
                              std::vector<NamedParam>& out) {
  out.push_back({JoinName(prefix, "gamma"), &gamma_});
  out.push_back({JoinName(prefix, "beta"), &beta_});
  out.push_back({JoinName(prefix, "running_mean"), &running_mean_});
  out.push_back({JoinName(prefix, "running_var"), &running_var_});
}

LayerNorm::LayerNorm(int dim, Scalar eps)
    : gamma_(Tensor({dim}, 1.0f)), beta_(Tensor({dim})), eps_(eps) {
  MHB_CHECK_GT(dim, 0);
}

Tensor LayerNorm::Forward(const Tensor& x, bool /*train*/) {
  obs::ProfileScope profile_scope("layernorm_fwd");
  MHB_CHECK_GE(x.ndim(), 2);
  const int d = x.dim(x.ndim() - 1);
  MHB_CHECK_EQ(d, dim());
  const std::size_t rows = x.numel() / static_cast<std::size_t>(d);
  Tensor y(x.shape());
  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_.assign(rows, 1.0f);

  const Scalar* px = x.data().data();
  Scalar* py = y.data().data();
  Scalar* pxh = cached_xhat_.data().data();
  for (std::size_t r = 0; r < rows; ++r) {
    const Scalar* xr = px + r * static_cast<std::size_t>(d);
    double sum = 0.0;
    for (int j = 0; j < d; ++j) sum += xr[j];
    const double mean = sum / d;
    double vsum = 0.0;
    for (int j = 0; j < d; ++j) {
      const double diff = xr[j] - mean;
      vsum += diff * diff;
    }
    const double inv_std = 1.0 / std::sqrt(vsum / d + eps_);
    cached_inv_std_[r] = static_cast<Scalar>(inv_std);
    Scalar* yr = py + r * static_cast<std::size_t>(d);
    Scalar* xhr = pxh + r * static_cast<std::size_t>(d);
    for (int j = 0; j < d; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      const Scalar xh = static_cast<Scalar>((xr[j] - mean) * inv_std);
      xhr[j] = xh;
      yr[j] = gamma_.value[ju] * xh + beta_.value[ju];
    }
  }
  return y;
}

Tensor LayerNorm::Backward(const Tensor& grad_out) {
  obs::ProfileScope profile_scope("layernorm_bwd");
  MHB_CHECK(grad_out.shape() == cached_xhat_.shape());
  const int d = dim();
  const std::size_t rows = grad_out.numel() / static_cast<std::size_t>(d);
  Tensor gx(grad_out.shape());
  const Scalar* pg = grad_out.data().data();
  const Scalar* pxh = cached_xhat_.data().data();
  Scalar* pgx = gx.data().data();
  for (std::size_t r = 0; r < rows; ++r) {
    const Scalar* gr = pg + r * static_cast<std::size_t>(d);
    const Scalar* xhr = pxh + r * static_cast<std::size_t>(d);
    Scalar* gxr = pgx + r * static_cast<std::size_t>(d);
    double sum_g = 0.0, sum_gxh = 0.0;
    for (int j = 0; j < d; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      const double gh = static_cast<double>(gr[j]) * gamma_.value[ju];
      sum_g += gh;
      sum_gxh += gh * xhr[j];
      gamma_.grad[ju] += gr[j] * xhr[j];
      beta_.grad[ju] += gr[j];
    }
    const double inv_std = cached_inv_std_[r];
    for (int j = 0; j < d; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      const double gh = static_cast<double>(gr[j]) * gamma_.value[ju];
      gxr[j] = static_cast<Scalar>(
          inv_std * (gh - sum_g / d - xhr[j] * sum_gxh / d));
    }
  }
  return gx;
}

void LayerNorm::CollectParams(const std::string& prefix,
                              std::vector<NamedParam>& out) {
  out.push_back({JoinName(prefix, "gamma"), &gamma_});
  out.push_back({JoinName(prefix, "beta"), &beta_});
}

}  // namespace mhbench::nn
