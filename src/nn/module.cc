#include "nn/module.h"

namespace mhbench::nn {

void Module::ZeroGrad() {
  std::vector<NamedParam> params;
  CollectParams("", params);
  for (auto& p : params) p.param->ZeroGrad();
}

std::size_t Module::NumParams() {
  std::vector<NamedParam> params;
  CollectParams("", params);
  std::size_t n = 0;
  for (auto& p : params) n += p.param->value.numel();
  return n;
}

std::string JoinName(const std::string& prefix, const std::string& name) {
  if (prefix.empty()) return name;
  return prefix + "/" + name;
}

}  // namespace mhbench::nn
