// Learning-rate schedules mapping a federated round index to a multiplier
// of the base learning rate.
#pragma once

#include <memory>

namespace mhbench::nn {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  // Multiplier (typically in (0, 1]) applied to the base LR at `round` of
  // `total_rounds`.
  virtual double Multiplier(int round, int total_rounds) const = 0;
};

class ConstantLr : public LrSchedule {
 public:
  double Multiplier(int round, int total_rounds) const override;
};

// Multiplies by `gamma` every `step` rounds.
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(int step, double gamma);
  double Multiplier(int round, int total_rounds) const override;

 private:
  int step_;
  double gamma_;
};

// Cosine annealing from 1 down to `floor`.
class CosineLr : public LrSchedule {
 public:
  explicit CosineLr(double floor = 0.01);
  double Multiplier(int round, int total_rounds) const override;

 private:
  double floor_;
};

std::unique_ptr<LrSchedule> MakeConstantLr();
std::unique_ptr<LrSchedule> MakeStepDecayLr(int step, double gamma);
std::unique_ptr<LrSchedule> MakeCosineLr(double floor = 0.01);

}  // namespace mhbench::nn
