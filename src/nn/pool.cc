#include "nn/pool.h"

#include "obs/profile.h"

namespace mhbench::nn {

AvgPool2d::AvgPool2d(int kernel) : kernel_(kernel) {
  MHB_CHECK_GT(kernel, 0);
}

Tensor AvgPool2d::Forward(const Tensor& x, bool /*train*/) {
  obs::ProfileScope profile_scope("avgpool2d_fwd");
  MHB_CHECK_EQ(x.ndim(), 4);
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  MHB_CHECK_EQ(h % kernel_, 0);
  MHB_CHECK_EQ(w % kernel_, 0);
  cached_input_shape_ = x.shape();
  const int oh = h / kernel_, ow = w / kernel_;
  Tensor y({n, c, oh, ow});
  const Scalar* px = x.data().data();
  Scalar* py = y.data().data();
  const Scalar inv = 1.0f / static_cast<Scalar>(kernel_ * kernel_);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const Scalar* plane =
          px + (static_cast<std::size_t>(b) * c + ch) * h * w;
      Scalar* oplane =
          py + (static_cast<std::size_t>(b) * c + ch) * oh * ow;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          Scalar acc = 0;
          for (int ky = 0; ky < kernel_; ++ky) {
            for (int kx = 0; kx < kernel_; ++kx) {
              acc += plane[(oy * kernel_ + ky) * w + (ox * kernel_ + kx)];
            }
          }
          oplane[oy * ow + ox] = acc * inv;
        }
      }
    }
  }
  return y;
}

Tensor AvgPool2d::Backward(const Tensor& grad_out) {
  obs::ProfileScope profile_scope("avgpool2d_bwd");
  MHB_CHECK(!cached_input_shape_.empty());
  const int n = cached_input_shape_[0], c = cached_input_shape_[1],
            h = cached_input_shape_[2], w = cached_input_shape_[3];
  const int oh = h / kernel_, ow = w / kernel_;
  MHB_CHECK(grad_out.shape() == Shape({n, c, oh, ow}));
  Tensor gx(cached_input_shape_);
  const Scalar* pg = grad_out.data().data();
  Scalar* pgx = gx.data().data();
  const Scalar inv = 1.0f / static_cast<Scalar>(kernel_ * kernel_);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const Scalar* gplane =
          pg + (static_cast<std::size_t>(b) * c + ch) * oh * ow;
      Scalar* plane = pgx + (static_cast<std::size_t>(b) * c + ch) * h * w;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          const Scalar g = gplane[oy * ow + ox] * inv;
          for (int ky = 0; ky < kernel_; ++ky) {
            for (int kx = 0; kx < kernel_; ++kx) {
              plane[(oy * kernel_ + ky) * w + (ox * kernel_ + kx)] = g;
            }
          }
        }
      }
    }
  }
  return gx;
}

Tensor GlobalAvgPool2d::Forward(const Tensor& x, bool /*train*/) {
  MHB_CHECK_EQ(x.ndim(), 4);
  cached_input_shape_ = x.shape();
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor y({n, c});
  const Scalar* px = x.data().data();
  Scalar* py = y.data().data();
  const Scalar inv = 1.0f / static_cast<Scalar>(h * w);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const Scalar* plane =
          px + (static_cast<std::size_t>(b) * c + ch) * h * w;
      Scalar acc = 0;
      for (int i = 0; i < h * w; ++i) acc += plane[i];
      py[static_cast<std::size_t>(b) * c + ch] = acc * inv;
    }
  }
  return y;
}

Tensor GlobalAvgPool2d::Backward(const Tensor& grad_out) {
  MHB_CHECK(!cached_input_shape_.empty());
  const int n = cached_input_shape_[0], c = cached_input_shape_[1],
            h = cached_input_shape_[2], w = cached_input_shape_[3];
  MHB_CHECK(grad_out.shape() == Shape({n, c}));
  Tensor gx(cached_input_shape_);
  const Scalar* pg = grad_out.data().data();
  Scalar* pgx = gx.data().data();
  const Scalar inv = 1.0f / static_cast<Scalar>(h * w);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const Scalar g = pg[static_cast<std::size_t>(b) * c + ch] * inv;
      Scalar* plane = pgx + (static_cast<std::size_t>(b) * c + ch) * h * w;
      for (int i = 0; i < h * w; ++i) plane[i] = g;
    }
  }
  return gx;
}

Tensor GlobalAvgPool1d::Forward(const Tensor& x, bool /*train*/) {
  MHB_CHECK_EQ(x.ndim(), 3);
  cached_input_shape_ = x.shape();
  const int n = x.dim(0), c = x.dim(1), l = x.dim(2);
  Tensor y({n, c});
  const Scalar* px = x.data().data();
  Scalar* py = y.data().data();
  const Scalar inv = 1.0f / static_cast<Scalar>(l);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const Scalar* row = px + (static_cast<std::size_t>(b) * c + ch) * l;
      Scalar acc = 0;
      for (int i = 0; i < l; ++i) acc += row[i];
      py[static_cast<std::size_t>(b) * c + ch] = acc * inv;
    }
  }
  return y;
}

Tensor GlobalAvgPool1d::Backward(const Tensor& grad_out) {
  MHB_CHECK(!cached_input_shape_.empty());
  const int n = cached_input_shape_[0], c = cached_input_shape_[1],
            l = cached_input_shape_[2];
  MHB_CHECK(grad_out.shape() == Shape({n, c}));
  Tensor gx(cached_input_shape_);
  const Scalar* pg = grad_out.data().data();
  Scalar* pgx = gx.data().data();
  const Scalar inv = 1.0f / static_cast<Scalar>(l);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const Scalar g = pg[static_cast<std::size_t>(b) * c + ch] * inv;
      Scalar* row = pgx + (static_cast<std::size_t>(b) * c + ch) * l;
      for (int i = 0; i < l; ++i) row[i] = g;
    }
  }
  return gx;
}

Tensor MeanPoolSeq::Forward(const Tensor& x, bool /*train*/) {
  MHB_CHECK_EQ(x.ndim(), 3);  // [N, L, D]
  cached_input_shape_ = x.shape();
  const int n = x.dim(0), l = x.dim(1), d = x.dim(2);
  Tensor y({n, d});
  const Scalar* px = x.data().data();
  Scalar* py = y.data().data();
  const Scalar inv = 1.0f / static_cast<Scalar>(l);
  for (int b = 0; b < n; ++b) {
    Scalar* yr = py + static_cast<std::size_t>(b) * d;
    for (int t = 0; t < l; ++t) {
      const Scalar* xr =
          px + (static_cast<std::size_t>(b) * l + t) * d;
      for (int j = 0; j < d; ++j) yr[j] += xr[j];
    }
    for (int j = 0; j < d; ++j) yr[j] *= inv;
  }
  return y;
}

Tensor MeanPoolSeq::Backward(const Tensor& grad_out) {
  MHB_CHECK(!cached_input_shape_.empty());
  const int n = cached_input_shape_[0], l = cached_input_shape_[1],
            d = cached_input_shape_[2];
  MHB_CHECK(grad_out.shape() == Shape({n, d}));
  Tensor gx(cached_input_shape_);
  const Scalar* pg = grad_out.data().data();
  Scalar* pgx = gx.data().data();
  const Scalar inv = 1.0f / static_cast<Scalar>(l);
  for (int b = 0; b < n; ++b) {
    const Scalar* gr = pg + static_cast<std::size_t>(b) * d;
    for (int t = 0; t < l; ++t) {
      Scalar* xr = pgx + (static_cast<std::size_t>(b) * l + t) * d;
      for (int j = 0; j < d; ++j) xr[j] = gr[j] * inv;
    }
  }
  return gx;
}

}  // namespace mhbench::nn
