// Pooling layers.
#pragma once

#include "nn/module.h"

namespace mhbench::nn {

// Average pooling over non-overlapping k x k windows of [N, C, H, W]
// (H and W must be divisible by k).
class AvgPool2d : public Module {
 public:
  explicit AvgPool2d(int kernel);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string&, std::vector<NamedParam>&) override {}

 private:
  int kernel_;
  Shape cached_input_shape_;
};

// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool2d : public Module {
 public:
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string&, std::vector<NamedParam>&) override {}

 private:
  Shape cached_input_shape_;
};

// Global average pooling over the length axis: [N, C, L] -> [N, C].
class GlobalAvgPool1d : public Module {
 public:
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string&, std::vector<NamedParam>&) override {}

 private:
  Shape cached_input_shape_;
};

// Mean over the sequence axis: [N, L, D] -> [N, D] (text classifiers).
class MeanPoolSeq : public Module {
 public:
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string&, std::vector<NamedParam>&) override {}

 private:
  Shape cached_input_shape_;
};

}  // namespace mhbench::nn
