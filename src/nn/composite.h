// Composite modules: Sequential, Residual (skip connection), Flatten.
#pragma once

#include <memory>
#include <vector>

#include "nn/module.h"

namespace mhbench::nn {

class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<ModulePtr> modules);

  // Appends a module; returns a reference to the appended module.
  Module& Add(ModulePtr m);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string& prefix,
                     std::vector<NamedParam>& out) override;

  std::size_t size() const { return modules_.size(); }
  Module& at(std::size_t i) { return *modules_.at(i); }

 private:
  std::vector<ModulePtr> modules_;
};

// y = body(x) + shortcut(x).  A null shortcut means identity (shapes of
// body output and input must then match).
class Residual : public Module {
 public:
  Residual(ModulePtr body, ModulePtr shortcut_or_null);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string& prefix,
                     std::vector<NamedParam>& out) override;

 private:
  ModulePtr body_;
  ModulePtr shortcut_;  // may be null
};

// Runs every branch on the same input and concatenates the outputs along
// the channel dimension (dim 1).  All branch outputs must agree on every
// other dimension.  This is the Inception-block primitive.
class ConcatBranches : public Module {
 public:
  explicit ConcatBranches(std::vector<ModulePtr> branches);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string& prefix,
                     std::vector<NamedParam>& out) override;

  std::size_t num_branches() const { return branches_.size(); }

 private:
  std::vector<ModulePtr> branches_;
  std::vector<int> cached_channels_;  // per-branch channel extents
};

// Collapses all dims after the batch dim: [N, ...] -> [N, prod(...)].
class Flatten : public Module {
 public:
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string&, std::vector<NamedParam>&) override {}

 private:
  Shape cached_input_shape_;
};

}  // namespace mhbench::nn
