// Token embedding: [N, L] integer ids (stored as floats) -> [N, L, D].
#pragma once

#include "core/rng.h"
#include "nn/module.h"

namespace mhbench::nn {

class Embedding : public Module {
 public:
  Embedding(int vocab_size, int dim, Rng& rng);
  explicit Embedding(Tensor table /*[vocab, dim]*/);

  Tensor Forward(const Tensor& ids, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string& prefix,
                     std::vector<NamedParam>& out) override;

  int vocab_size() const { return table_.value.dim(0); }
  int dim() const { return table_.value.dim(1); }

  Parameter& table() { return table_; }

 private:
  Parameter table_;        // [vocab, dim]
  std::vector<int> cached_ids_;
  Shape cached_id_shape_;
};

}  // namespace mhbench::nn
