// Elementwise activations (shape-preserving, any rank).
#pragma once

#include "nn/module.h"

namespace mhbench::nn {

class ReLU : public Module {
 public:
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string&, std::vector<NamedParam>&) override {}

 private:
  Tensor cached_input_;
};

class Gelu : public Module {
 public:
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string&, std::vector<NamedParam>&) override {}

 private:
  Tensor cached_input_;
};

class Tanh : public Module {
 public:
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string&, std::vector<NamedParam>&) override {}

 private:
  Tensor cached_output_;
};

}  // namespace mhbench::nn
