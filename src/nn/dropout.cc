#include "nn/dropout.h"

namespace mhbench::nn {

Dropout::Dropout(Scalar rate, Rng& rng) : rate_(rate), rng_(rng.Fork(0xD09)) {
  MHB_CHECK_GE(rate, 0.0f);
  MHB_CHECK_LT(rate, 1.0f);
}

Tensor Dropout::Forward(const Tensor& x, bool train) {
  if (!train || rate_ == 0.0f) {
    cached_mask_ = Tensor();
    return x;
  }
  cached_mask_ = Tensor(x.shape());
  const Scalar scale = 1.0f / (1.0f - rate_);
  auto mask = cached_mask_.data();
  for (auto& m : mask) {
    m = rng_.Uniform() < rate_ ? 0.0f : scale;
  }
  return x.Mul(cached_mask_);
}

Tensor Dropout::Backward(const Tensor& grad_out) {
  if (cached_mask_.empty()) return grad_out;
  return grad_out.Mul(cached_mask_);
}

}  // namespace mhbench::nn
