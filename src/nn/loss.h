// Loss functions.  Each returns the scalar loss averaged over the batch and
// writes the gradient w.r.t. its first argument into `grad`.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace mhbench::nn {

// Mean softmax cross-entropy of logits [N, C] against integer labels.
// Returns loss; `grad` receives dL/dlogits [N, C].
double SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int>& labels, Tensor& grad);

// Fraction of rows whose argmax equals the label.
double Accuracy(const Tensor& logits, const std::vector<int>& labels);

// Temperature-scaled distillation loss: KL(teacher_probs^T || student^T),
// scaled by T^2 as usual.  `teacher_probs` are probabilities [N, C]
// (already softmaxed at temperature T by the caller or at T=1).
double DistillationKL(const Tensor& student_logits, const Tensor& teacher_probs,
                      double temperature, Tensor& grad);

// Mean squared error between `pred` and `target` (matching shapes),
// averaged over all elements.
double MeanSquaredError(const Tensor& pred, const Tensor& target,
                        Tensor& grad);

// Softmax probabilities of logits at a temperature (helper for distillation
// pipelines: the *teacher* side of DistillationKL).
Tensor SoftmaxWithTemperature(const Tensor& logits, double temperature);

}  // namespace mhbench::nn
