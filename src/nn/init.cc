#include "nn/init.h"

#include <cmath>

namespace mhbench::nn {

Tensor KaimingNormal(Shape shape, int fan_in, Rng& rng) {
  MHB_CHECK_GT(fan_in, 0);
  const auto stddev = static_cast<Scalar>(std::sqrt(2.0 / fan_in));
  return Tensor::Randn(std::move(shape), rng, stddev);
}

Tensor XavierUniform(Shape shape, int fan_in, int fan_out, Rng& rng) {
  MHB_CHECK_GT(fan_in + fan_out, 0);
  const double a = std::sqrt(6.0 / (fan_in + fan_out));
  Tensor t(std::move(shape));
  for (auto& v : t.data()) {
    v = static_cast<Scalar>(rng.Uniform(-a, a));
  }
  return t;
}

}  // namespace mhbench::nn
