#include "nn/embedding.h"

#include <cmath>

#include "obs/profile.h"

namespace mhbench::nn {

Embedding::Embedding(int vocab_size, int dim, Rng& rng) {
  MHB_CHECK_GT(vocab_size, 0);
  MHB_CHECK_GT(dim, 0);
  table_ = Parameter(Tensor::Randn({vocab_size, dim}, rng,
                                   1.0f / std::sqrt(static_cast<float>(dim))));
}

Embedding::Embedding(Tensor table) {
  MHB_CHECK_EQ(table.ndim(), 2);
  table_ = Parameter(std::move(table));
}

Tensor Embedding::Forward(const Tensor& ids, bool /*train*/) {
  obs::ProfileScope profile_scope("embedding_fwd");
  MHB_CHECK_EQ(ids.ndim(), 2);  // [N, L]
  const int n = ids.dim(0), l = ids.dim(1), d = dim();
  cached_id_shape_ = ids.shape();
  cached_ids_.resize(static_cast<std::size_t>(n) * l);
  Tensor out({n, l, d});
  Scalar* po = out.data().data();
  const Scalar* pt = table_.value.data().data();
  for (std::size_t i = 0; i < cached_ids_.size(); ++i) {
    const int id = static_cast<int>(ids[i]);
    MHB_CHECK(id >= 0 && id < vocab_size()) << "token id" << id;
    cached_ids_[i] = id;
    const Scalar* row = pt + static_cast<std::size_t>(id) * d;
    Scalar* orow = po + i * static_cast<std::size_t>(d);
    for (int j = 0; j < d; ++j) orow[j] = row[j];
  }
  return out;
}

Tensor Embedding::Backward(const Tensor& grad_out) {
  obs::ProfileScope profile_scope("embedding_bwd");
  MHB_CHECK_EQ(grad_out.ndim(), 3);
  const int d = dim();
  MHB_CHECK_EQ(grad_out.dim(2), d);
  const Scalar* pg = grad_out.data().data();
  Scalar* pt = table_.grad.data().data();
  for (std::size_t i = 0; i < cached_ids_.size(); ++i) {
    Scalar* row = pt + static_cast<std::size_t>(cached_ids_[i]) * d;
    const Scalar* grow = pg + i * static_cast<std::size_t>(d);
    for (int j = 0; j < d; ++j) row[j] += grow[j];
  }
  // Ids are not differentiable; return a zero gradient of the id shape.
  return Tensor(cached_id_shape_);
}

void Embedding::CollectParams(const std::string& prefix,
                              std::vector<NamedParam>& out) {
  out.push_back({JoinName(prefix, "table"), &table_});
}

}  // namespace mhbench::nn
