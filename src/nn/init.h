// Weight initializers.
#pragma once

#include "core/rng.h"
#include "tensor/tensor.h"

namespace mhbench::nn {

// Kaiming/He normal initialization: N(0, sqrt(2 / fan_in)).
Tensor KaimingNormal(Shape shape, int fan_in, Rng& rng);

// Xavier/Glorot uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
Tensor XavierUniform(Shape shape, int fan_in, int fan_out, Rng& rng);

}  // namespace mhbench::nn
