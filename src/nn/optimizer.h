// Optimizers.  SGD with momentum covers the CNN training recipes; Adam is
// provided for the transformer tasks.  Both share the Optimizer interface
// so the FL layer can switch per configuration.
#pragma once

#include <memory>
#include <vector>

#include "nn/module.h"

namespace mhbench::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one step using accumulated gradients; does not zero them.
  virtual void Step() = 0;

  virtual void set_lr(double lr) = 0;
  virtual double lr() const = 0;

  void ZeroGrad();

  // Clips the global gradient norm to `max_norm` (no-op when below).
  void ClipGradNorm(double max_norm);

 protected:
  // Binds to the parameters of `module`; pointers must outlive this object.
  explicit Optimizer(Module& module);

  std::vector<NamedParam> params_;
  std::vector<bool> is_running_stat_;
};

struct SgdOptions {
  double lr = 0.01;
  double momentum = 0.9;
  double weight_decay = 0.0;
  // Parameters whose name contains one of these substrings are skipped by
  // weight decay (norm affine parameters, running statistics).
  std::vector<std::string> no_decay = {"gamma", "beta", "running_"};
};

class Sgd : public Optimizer {
 public:
  Sgd(Module& module, SgdOptions options);

  void Step() override;
  void set_lr(double lr) override { options_.lr = lr; }
  double lr() const override { return options_.lr; }

 private:
  std::vector<Tensor> velocity_;
  std::vector<bool> decay_enabled_;
  SgdOptions options_;
};

struct AdamOptions {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;  // decoupled (AdamW-style)
  std::vector<std::string> no_decay = {"gamma", "beta", "running_"};
};

class Adam : public Optimizer {
 public:
  Adam(Module& module, AdamOptions options);

  void Step() override;
  void set_lr(double lr) override { options_.lr = lr; }
  double lr() const override { return options_.lr; }

 private:
  std::vector<Tensor> m_, v_;
  std::vector<bool> decay_enabled_;
  AdamOptions options_;
  long step_ = 0;
};

// Factory used by the FL layer.
enum class OptimizerKind { kSgd, kAdam };

struct OptimizerOptions {
  OptimizerKind kind = OptimizerKind::kSgd;
  double lr = 0.01;
  double momentum = 0.9;   // SGD only
  double weight_decay = 0.0;
};

std::unique_ptr<Optimizer> MakeOptimizer(Module& module,
                                         const OptimizerOptions& options);

}  // namespace mhbench::nn
