// Multi-head self-attention over [N, L, D].
//
// Standard scaled dot-product attention with full Q/K/V/O projections.
// Width-heterogeneous transformer variants in this library keep D fixed and
// scale the FFN width, so attention itself is never sliced; it only needs a
// correct forward/backward.
#pragma once

#include "core/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace mhbench::nn {

class MultiHeadSelfAttention : public Module {
 public:
  // `d_model` must be divisible by `heads`.
  MultiHeadSelfAttention(int d_model, int heads, Rng& rng);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string& prefix,
                     std::vector<NamedParam>& out) override;

  int d_model() const { return d_model_; }
  int heads() const { return heads_; }

 private:
  int d_model_;
  int heads_;
  Linear wq_, wk_, wv_, wo_;

  // Caches for backward: flattened [N*L, D] projections and attention
  // probabilities [N, H, L, L].
  Tensor cached_q_, cached_k_, cached_v_, cached_attn_, cached_concat_;
  int cached_n_ = 0, cached_l_ = 0;
};

}  // namespace mhbench::nn
