// Deterministic random number generation.
//
// Every stochastic component of the platform draws from an `Rng` seeded
// explicitly, so that experiments are reproducible bit-for-bit.  The core
// generator is SplitMix64 (fast, decent quality, trivially seedable); the
// class layers the distributions the platform needs on top: uniform,
// gaussian, dirichlet, permutations and weighted choice.
#pragma once

#include <cstdint>
#include <vector>

namespace mhbench {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  // Returns the next raw 64-bit value (SplitMix64).
  std::uint64_t NextU64();

  // Uniform in [0, 1).
  double Uniform();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n).  Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  // Standard normal via Box-Muller (cached pair).
  double Gaussian();
  double Gaussian(double mean, double stddev);

  // Gamma(shape, 1) via Marsaglia-Tsang; used by Dirichlet.
  double Gamma(double shape);

  // Dirichlet(alpha, ..., alpha) of dimension `k`.  Requires alpha > 0.
  std::vector<double> Dirichlet(double alpha, int k);

  // Random permutation of [0, n).
  std::vector<int> Permutation(int n);

  // Samples `k` distinct values from [0, n) (k <= n), in random order.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // Index sampled proportionally to `weights` (all >= 0, sum > 0).
  int WeightedChoice(const std::vector<double>& weights);

  // Derives an independent child generator; `stream` distinguishes children
  // of the same parent state.  Note Fork advances the parent (it consumes
  // one NextU64), which is what makes the stream position checkpointable:
  // restoring a saved State replays subsequent forks identically.
  Rng Fork(std::uint64_t stream);

  // Checkpointing: the complete generator state — the SplitMix64 position
  // plus the Box-Muller gaussian cache.  Restoring a saved State resumes
  // the stream bit-identically.
  struct State {
    std::uint64_t state = 0;
    bool have_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };
  State SaveState() const {
    return {state_, have_cached_gaussian_, cached_gaussian_};
  }
  void RestoreState(const State& s) {
    state_ = s.state;
    have_cached_gaussian_ = s.have_cached_gaussian;
    cached_gaussian_ = s.cached_gaussian;
  }

 private:
  std::uint64_t state_;
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace mhbench
