#include "core/thread_pool.h"

#include <atomic>
#include <chrono>
#include <exception>

#include "core/error.h"

namespace mhbench::core {

namespace {
thread_local bool tl_in_worker = false;
}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  MHB_CHECK_GE(num_workers, 0);
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    MHB_CHECK(!stop_) << "Submit after shutdown";
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::InWorker() { return tl_in_worker; }

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.idle_ns = idle_ns_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::WorkerLoop() {
  tl_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      const auto wait_start = std::chrono::steady_clock::now();
      MutexLock lock(mu_);
      // Explicit wait loop, not a predicate lambda: the guarded reads stay
      // inside this annotated function (see core/mutex.h).
      while (!stop_ && queue_.empty()) cv_.wait(lock.native());
      idle_ns_.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - wait_start)
                  .count()),
          std::memory_order_relaxed);
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    task();  // tasks are noexcept wrappers built by ParallelFor
  }
}

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const int workers = pool == nullptr ? 0 : pool->num_workers();
  if (workers == 0 || n == 1 || ThreadPool::InWorker()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared per-call state: an index dispenser plus completion tracking for
  // the helper tasks.  The caller participates, so completion only needs to
  // count helpers.
  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> abandoned{false};
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t helpers_live = 0;
    std::exception_ptr first_error;
  };
  auto shared = std::make_shared<Shared>();

  auto drain = [n, &fn, shared]() {
    for (;;) {
      if (shared->abandoned.load(std::memory_order_relaxed)) return;
      const std::size_t i =
          shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->mu);
        if (!shared->first_error) {
          shared->first_error = std::current_exception();
        }
        shared->abandoned.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const std::size_t helper_count =
      std::min<std::size_t>(static_cast<std::size_t>(workers), n - 1);
  {
    std::lock_guard<std::mutex> lock(shared->mu);
    shared->helpers_live = helper_count;
  }
  for (std::size_t h = 0; h < helper_count; ++h) {
    pool->Submit([shared, drain] {
      drain();
      std::lock_guard<std::mutex> lock(shared->mu);
      if (--shared->helpers_live == 0) shared->done_cv.notify_all();
    });
  }

  drain();  // the calling thread works too

  std::unique_lock<std::mutex> lock(shared->mu);
  shared->done_cv.wait(lock, [&] { return shared->helpers_live == 0; });
  if (shared->first_error) std::rethrow_exception(shared->first_error);
}

}  // namespace mhbench::core
