// A fixed-size worker pool plus a deterministic parallel-for helper.
//
// The pool is deliberately minimal: tasks are plain std::function<void()>
// jobs consumed from one queue.  All ordering guarantees the FL engine needs
// (bit-identical results vs. serial execution) come from *callers* drawing
// randomness and merging results serially; the pool only provides raw
// concurrency for work that is independent per item.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace mhbench::core {

class ThreadPool {
 public:
  // Spawns `num_workers` worker threads (0 is allowed; the pool is then a
  // no-op and ParallelFor degrades to the calling thread).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task.  Must not be called after destruction has begun.
  void Submit(std::function<void()> task) MHB_EXCLUDES(mu_);

  // True when the calling thread is one of *any* pool's workers.  Nested
  // ParallelFor calls use this to run inline instead of submitting to a
  // queue they are themselves responsible for draining (deadlock guard).
  static bool InWorker();

  // Lifetime utilization counters, maintained by the workers themselves.
  // Cheap enough to keep always-on (two clock reads per dequeue, against
  // tasks that are typically milliseconds of training); the engine
  // snapshots deltas per round into the observability registry.
  struct Stats {
    std::uint64_t tasks_executed = 0;
    std::uint64_t idle_ns = 0;  // summed worker time spent waiting for work
  };
  Stats stats() const;

 private:
  void WorkerLoop();

  Mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_ MHB_GUARDED_BY(mu_);
  bool stop_ MHB_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> idle_ns_{0};
};

// Runs fn(i) for every i in [0, n).  Iterations execute on the pool's
// workers *and* the calling thread; the call returns once all iterations
// have finished.  Runs serially inline when `pool` is null, has no workers,
// n <= 1, or the caller is itself a pool worker (nested-submit guard).
//
// Exception safety: the first exception thrown by any iteration is captured,
// remaining unstarted iterations are abandoned, and the exception is
// rethrown on the calling thread after in-flight iterations drain.
//
// fn must be safe to invoke concurrently for distinct i; no two invocations
// receive the same i.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace mhbench::core
