// A fixed-size worker pool plus a deterministic parallel-for helper.
//
// The pool is deliberately minimal: tasks are plain std::function<void()>
// jobs consumed from one queue.  All ordering guarantees the FL engine needs
// (bit-identical results vs. serial execution) come from *callers* drawing
// randomness and merging results serially; the pool only provides raw
// concurrency for work that is independent per item.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mhbench::core {

class ThreadPool {
 public:
  // Spawns `num_workers` worker threads (0 is allowed; the pool is then a
  // no-op and ParallelFor degrades to the calling thread).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task.  Must not be called after destruction has begun.
  void Submit(std::function<void()> task);

  // True when the calling thread is one of *any* pool's workers.  Nested
  // ParallelFor calls use this to run inline instead of submitting to a
  // queue they are themselves responsible for draining (deadlock guard).
  static bool InWorker();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(i) for every i in [0, n).  Iterations execute on the pool's
// workers *and* the calling thread; the call returns once all iterations
// have finished.  Runs serially inline when `pool` is null, has no workers,
// n <= 1, or the caller is itself a pool worker (nested-submit guard).
//
// Exception safety: the first exception thrown by any iteration is captured,
// remaining unstarted iterations are abandoned, and the exception is
// rethrown on the calling thread after in-flight iterations drain.
//
// fn must be safe to invoke concurrently for distinct i; no two invocations
// receive the same i.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace mhbench::core
