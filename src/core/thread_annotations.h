// Clang thread-safety analysis macros (no-ops on GCC/MSVC).
//
// These wrap clang's -Wthread-safety attributes so the locking contracts
// audited in PR 1 (per-thread sinks merged at serial barriers, the FedEt
// eval mutex, the thread-pool queue) are compiler-checked invariants
// instead of comments: a clang build with `-Wthread-safety
// -Werror=thread-safety` (added automatically when CMake detects clang,
// exercised by `tools/check.sh --wthread-safety`) refuses to compile code
// that touches an MHB_GUARDED_BY field without holding its mutex.
//
// Annotations attach to the *capability type*, so they only bite when used
// with core::Mutex / core::MutexLock (core/mutex.h), not raw std::mutex —
// libstdc++'s std::mutex carries no capability attributes.  Conventions in
// DESIGN.md §5f.
#pragma once

#if defined(__clang__)
#define MHB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MHB_THREAD_ANNOTATION(x)  // not clang: analysis unavailable
#endif

// On a class: instances are a lockable capability ("mutex").
#define MHB_CAPABILITY(x) MHB_THREAD_ANNOTATION(capability(x))

// On a class: RAII object that acquires in its ctor, releases in its dtor.
#define MHB_SCOPED_CAPABILITY MHB_THREAD_ANNOTATION(scoped_lockable)

// On a data member: reads/writes require holding `x`.
#define MHB_GUARDED_BY(x) MHB_THREAD_ANNOTATION(guarded_by(x))

// On a pointer member: the *pointee* is protected by `x`.
#define MHB_PT_GUARDED_BY(x) MHB_THREAD_ANNOTATION(pt_guarded_by(x))

// On a function: caller must hold the capability (e.g. private *Locked()
// helpers called under the lock).
#define MHB_REQUIRES(...) \
  MHB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// On a function: acquires / releases the capability.
#define MHB_ACQUIRE(...) \
  MHB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MHB_RELEASE(...) \
  MHB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// On a function: caller must NOT hold the capability (deadlock guard for
// functions that take the lock themselves).
#define MHB_EXCLUDES(...) MHB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// On a function: returns a reference to a capability-protected object.
#define MHB_RETURN_CAPABILITY(x) MHB_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for functions whose safety argument the analysis cannot see
// (serial-phase accessors, owner-thread-only data).  Every use must carry a
// comment saying why it is safe.
#define MHB_NO_THREAD_SAFETY_ANALYSIS \
  MHB_THREAD_ANNOTATION(no_thread_safety_analysis)
