// Annotated mutex wrappers: std::mutex with clang thread-safety capability
// attributes attached (core/thread_annotations.h), so MHB_GUARDED_BY
// contracts are compiler-enforced under clang and free everywhere else.
//
// Usage mirrors std::mutex + std::lock_guard:
//
//   core::Mutex mu_;
//   int value_ MHB_GUARDED_BY(mu_);
//   void Set(int v) { core::MutexLock lock(mu_); value_ = v; }
//
// Condition variables keep using std::condition_variable through
// MutexLock::native().  Write waits as explicit loops in the annotated
// function —
//
//   while (!ready_) cv_.wait(lock.native());
//
// — not as predicate lambdas: a lambda body is a separate function to the
// (intraprocedural) analysis, so guarded reads inside it would warn.
#pragma once

#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.h"

namespace mhbench::core {

class MHB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MHB_ACQUIRE() { mu_.lock(); }
  void Unlock() MHB_RELEASE() { mu_.unlock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

// RAII lock over a Mutex; holds a std::unique_lock so it can feed
// std::condition_variable::wait via native().
class MHB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MHB_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() MHB_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // For std::condition_variable::wait.  The wait releases and reacquires
  // the underlying mutex, which the analysis cannot see; that is sound for
  // the analysis' purposes because the capability is held again whenever
  // control returns to the annotated function.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace mhbench::core
