// Environment-variable overrides for benchmark presets.
//
// Every bench binary runs with fast defaults; `MHB_*` variables scale the
// experiments up toward the paper's full settings without recompiling.
#pragma once

#include <string>

namespace mhbench {

// Returns the integer value of env var `name`, or `fallback` when the
// variable is unset or unparsable.
int EnvInt(const std::string& name, int fallback);

// Returns the double value of env var `name`, or `fallback`.
double EnvDouble(const std::string& name, double fallback);

// Returns the string value of env var `name`, or `fallback`.
std::string EnvString(const std::string& name, const std::string& fallback);

}  // namespace mhbench
