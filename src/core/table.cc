#include "core/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/error.h"

namespace mhbench {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MHB_CHECK(!header_.empty());
}

void AsciiTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string AsciiTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::Render() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  auto line = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      out << " " << cell << std::string(width[i] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  auto rule = [&] {
    out << "+";
    for (std::size_t i = 0; i < cols; ++i) {
      out << std::string(width[i] + 2, '-') << "+";
    }
    out << "\n";
  };
  rule();
  line(header_);
  rule();
  for (const auto& r : rows_) line(r);
  rule();
  return out.str();
}

AsciiChart::AsciiChart(std::string title, std::string x_label,
                       std::string y_label)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {}

void AsciiChart::AddSeries(std::string name, std::vector<double> ys) {
  series_.emplace_back(std::move(name), std::move(ys));
}

void AsciiChart::SetX(std::vector<double> xs) { xs_ = std::move(xs); }

std::string AsciiChart::Render(int width, int height) const {
  std::ostringstream out;
  out << "# " << title_ << "  (y: " << y_label_ << ", x: " << x_label_
      << ")\n";
  if (series_.empty()) return out.str();

  double y_min = 1e300, y_max = -1e300;
  std::size_t n = 0;
  for (const auto& [name, ys] : series_) {
    for (double y : ys) {
      if (std::isfinite(y)) {
        y_min = std::min(y_min, y);
        y_max = std::max(y_max, y);
      }
    }
    n = std::max(n, ys.size());
  }
  if (n == 0 || y_min > y_max) return out.str();
  if (y_max == y_min) y_max = y_min + 1.0;

  static const char* kMarks = "*o+x#@%&";
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t s = 0; s < series_.size(); ++s) {
    const auto& ys = series_[s].second;
    const char mark = kMarks[s % 8];
    for (std::size_t i = 0; i < ys.size(); ++i) {
      if (!std::isfinite(ys[i])) continue;
      const int col = n <= 1 ? 0
                             : static_cast<int>(static_cast<double>(i) /
                                                (n - 1) * (width - 1));
      const int row =
          static_cast<int>((ys[i] - y_min) / (y_max - y_min) * (height - 1));
      grid[static_cast<std::size_t>(height - 1 - row)]
          [static_cast<std::size_t>(col)] = mark;
    }
  }
  char label[32];
  std::snprintf(label, sizeof(label), "%10.3f |", y_max);
  out << label << grid[0] << "\n";
  for (int r = 1; r + 1 < height; ++r) {
    out << "           |" << grid[static_cast<std::size_t>(r)] << "\n";
  }
  std::snprintf(label, sizeof(label), "%10.3f |", y_min);
  out << label << grid[static_cast<std::size_t>(height - 1)] << "\n";
  out << "           +" << std::string(static_cast<std::size_t>(width), '-')
      << "\n";
  out << "  legend:";
  for (std::size_t s = 0; s < series_.size(); ++s) {
    out << "  " << kMarks[s % 8] << "=" << series_[s].first;
  }
  out << "\n";
  return out.str();
}

}  // namespace mhbench
