// Lightweight leveled logging to stderr.
//
// Verbosity is controlled by `MHB_LOG` (0 = silent, 1 = info (default),
// 2 = debug).  Logging is intentionally minimal: experiment *results* go
// through metrics/report, not the log.
#pragma once

#include <sstream>
#include <string>

namespace mhbench {

enum class LogLevel { kSilent = 0, kInfo = 1, kDebug = 2 };

// Current verbosity (read once from the environment, overridable in tests).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag);
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mhbench

#define MHB_LOG_INFO \
  ::mhbench::internal::LogLine(::mhbench::LogLevel::kInfo, "I")
#define MHB_LOG_DEBUG \
  ::mhbench::internal::LogLine(::mhbench::LogLevel::kDebug, "D")
