// Lightweight leveled logging to stderr.
//
// Verbosity is controlled by `MHB_LOG_LEVEL` (named: silent / error / warn /
// info / debug / trace, or the matching number 0-5); the legacy `MHB_LOG`
// numeric variable (0 = silent, 1 = info, 2 = debug) is still honoured when
// `MHB_LOG_LEVEL` is unset.  Logging is intentionally minimal: experiment
// *results* go through metrics/report, not the log.
//
// Each line is assembled in full and written with a single stdio call, so
// lines from concurrent threads (e.g. engine workers under --threads > 1)
// never interleave mid-line.
#pragma once

#include <sstream>
#include <string>

namespace mhbench {

enum class LogLevel {
  kSilent = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
  kTrace = 5,
};

// Current verbosity (read once from the environment, overridable in tests).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Parses a level name or number ("warn", "3", ...); `fallback` when
// unrecognized.
LogLevel ParseLogLevel(const std::string& text, LogLevel fallback);

namespace internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag);
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mhbench

#define MHB_LOG_ERROR \
  ::mhbench::internal::LogLine(::mhbench::LogLevel::kError, "E")
#define MHB_LOG_WARN \
  ::mhbench::internal::LogLine(::mhbench::LogLevel::kWarn, "W")
#define MHB_LOG_INFO \
  ::mhbench::internal::LogLine(::mhbench::LogLevel::kInfo, "I")
#define MHB_LOG_DEBUG \
  ::mhbench::internal::LogLine(::mhbench::LogLevel::kDebug, "D")
#define MHB_LOG_TRACE \
  ::mhbench::internal::LogLine(::mhbench::LogLevel::kTrace, "T")
