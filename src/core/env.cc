#include "core/env.h"

#include <cstdlib>

namespace mhbench {

int EnvInt(const std::string& name, int fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

double EnvDouble(const std::string& name, double fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

std::string EnvString(const std::string& name, const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

}  // namespace mhbench
