#include "core/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.h"

namespace mhbench {

std::uint64_t Rng::NextU64() {
  // SplitMix64 (Steele, Lea, Flood 2014).
  state_ += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  MHB_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  MHB_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return v % n;
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  MHB_CHECK_GE(stddev, 0.0);
  return mean + stddev * Gaussian();
}

double Rng::Gamma(double shape) {
  MHB_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    const double u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u > 0 ? u : 1e-300, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Gaussian();
    double v = 1.0 + c * x;
    if (v <= 0) continue;
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::Dirichlet(double alpha, int k) {
  MHB_CHECK_GT(alpha, 0.0);
  MHB_CHECK_GT(k, 0);
  std::vector<double> out(static_cast<std::size_t>(k));
  double sum = 0.0;
  for (auto& v : out) {
    v = Gamma(alpha);
    sum += v;
  }
  if (sum <= 0) {  // numerically degenerate draw; fall back to uniform
    std::fill(out.begin(), out.end(), 1.0 / k);
    return out;
  }
  for (auto& v : out) v /= sum;
  return out;
}

std::vector<int> Rng::Permutation(int n) {
  MHB_CHECK_GE(n, 0);
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    const int j = static_cast<int>(UniformInt(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  MHB_CHECK_GE(k, 0);
  MHB_CHECK_LE(k, n);
  std::vector<int> perm = Permutation(n);
  perm.resize(static_cast<std::size_t>(k));
  return perm;
}

int Rng::WeightedChoice(const std::vector<double>& weights) {
  MHB_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    MHB_CHECK_GE(w, 0.0);
    total += w;
  }
  MHB_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::Fork(std::uint64_t stream) {
  // Mix the stream id into a fresh state derived from this generator.
  const std::uint64_t base = NextU64();
  return Rng(base ^ (stream * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
}

}  // namespace mhbench
