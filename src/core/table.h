// ASCII table and series rendering.
//
// Benchmark binaries print paper tables and figure-shaped series with these
// helpers so all outputs share one format.
#pragma once

#include <string>
#include <vector>

namespace mhbench {

// Column-aligned ASCII table.  Rows may be ragged; missing cells are blank.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with `precision` decimals.
  static std::string Num(double v, int precision = 2);

  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Renders one or more named series as an ASCII line chart (for figure-shaped
// bench output).  X values are shared across series.
class AsciiChart {
 public:
  AsciiChart(std::string title, std::string x_label, std::string y_label);

  void AddSeries(std::string name, std::vector<double> ys);
  void SetX(std::vector<double> xs);

  std::string Render(int width = 72, int height = 16) const;

 private:
  std::string title_, x_label_, y_label_;
  std::vector<double> xs_;
  std::vector<std::pair<std::string, std::vector<double>>> series_;
};

}  // namespace mhbench
