// Error handling primitives.
//
// The library throws `mhbench::Error` for violated preconditions and
// invariants.  `MHB_CHECK` is used at API boundaries (always on);
// `MHB_DCHECK` guards internal invariants and compiles out in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mhbench {

// Exception type thrown by all MHB_CHECK failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace internal {

// Collects a failure message and throws `Error` at the end of the full
// expression (glog-style).  Only constructed when a check already failed.
class FatalStream {
 public:
  FatalStream(const char* cond, const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: " << cond;
  }

  FatalStream(const FatalStream&) = delete;
  FatalStream& operator=(const FatalStream&) = delete;

  template <typename T>
  FatalStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

  ~FatalStream() noexcept(false) { throw Error(stream_.str()); }

 private:
  std::ostringstream stream_;
};

// Swallows streamed messages; used by disabled debug checks.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Makes the whole check expression void so `MHB_CHECK(x);` cannot trigger
// -Wunused-value while `MHB_CHECK(x) << msg;` still chains.
struct Voidify {
  void operator&(const FatalStream&) {}
  void operator&(const NullStream&) {}
};

}  // namespace internal
}  // namespace mhbench

#define MHB_CHECK(cond)                        \
  (cond) ? (void)0                             \
         : ::mhbench::internal::Voidify() &    \
               ::mhbench::internal::FatalStream(#cond, __FILE__, __LINE__)

#define MHB_CHECK_EQ(a, b) MHB_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define MHB_CHECK_NE(a, b) MHB_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ")"
#define MHB_CHECK_LT(a, b) MHB_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define MHB_CHECK_LE(a, b) MHB_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define MHB_CHECK_GT(a, b) MHB_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define MHB_CHECK_GE(a, b) MHB_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"

#ifdef NDEBUG
#define MHB_DCHECK(cond) \
  ::mhbench::internal::Voidify() & ::mhbench::internal::NullStream()
#else
#define MHB_DCHECK(cond) MHB_CHECK(cond)
#endif
