#include "core/csv.h"

#include <fstream>
#include <sstream>

#include "core/error.h"

namespace mhbench {
namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string Quote(const std::string& cell) {
  if (!NeedsQuoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  MHB_CHECK(!header_.empty());
}

void CsvWriter::AddRow(const std::vector<std::string>& row) {
  MHB_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(row);
}

void CsvWriter::AddRow(const std::vector<double>& row) {
  MHB_CHECK_EQ(row.size(), header_.size());
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    std::ostringstream s;
    s << v;
    cells.push_back(s.str());
  }
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::ToString() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ",";
      out << Quote(row[i]);
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream f(path);
  MHB_CHECK(f.good()) << "cannot open" << path;
  f << ToString();
  MHB_CHECK(f.good()) << "write failed for" << path;
}

}  // namespace mhbench
