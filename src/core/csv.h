// Minimal CSV writer used by the benchmark harness to dump raw series next
// to the rendered tables (so results can be re-plotted outside the repo).
#pragma once

#include <string>
#include <vector>

namespace mhbench {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(const std::vector<std::string>& row);
  void AddRow(const std::vector<double>& row);

  // Serializes to CSV text (RFC-4180 quoting for cells containing commas,
  // quotes or newlines).
  std::string ToString() const;

  // Writes to `path`; throws mhbench::Error on I/O failure.
  void WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mhbench
