#include "core/logging.h"

#include <cstdio>

#include "core/env.h"

namespace mhbench {
namespace {

LogLevel g_level = static_cast<LogLevel>(EnvInt("MHB_LOG", 1));

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogLine::LogLine(LogLevel level, const char* tag)
    : enabled_(static_cast<int>(level) <= static_cast<int>(GetLogLevel())) {
  if (enabled_) stream_ << "[" << tag << "] ";
}

LogLine::~LogLine() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace internal
}  // namespace mhbench
