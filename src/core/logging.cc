#include "core/logging.h"

#include <cstdio>

#include "core/env.h"

namespace mhbench {
namespace {

LogLevel LevelFromEnv() {
  const std::string named = EnvString("MHB_LOG_LEVEL", "");
  if (!named.empty()) return ParseLogLevel(named, LogLevel::kInfo);
  // Legacy MHB_LOG mapping: 0 silent, 1 info, 2 debug.
  switch (EnvInt("MHB_LOG", 1)) {
    case 0:
      return LogLevel::kSilent;
    case 2:
      return LogLevel::kDebug;
    default:
      return LogLevel::kInfo;
  }
}

LogLevel g_level = LevelFromEnv();

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel ParseLogLevel(const std::string& text, LogLevel fallback) {
  if (text == "silent" || text == "off" || text == "0") return LogLevel::kSilent;
  if (text == "error" || text == "1") return LogLevel::kError;
  if (text == "warn" || text == "warning" || text == "2") return LogLevel::kWarn;
  if (text == "info" || text == "3") return LogLevel::kInfo;
  if (text == "debug" || text == "4") return LogLevel::kDebug;
  if (text == "trace" || text == "5") return LogLevel::kTrace;
  return fallback;
}

namespace internal {

LogLine::LogLine(LogLevel level, const char* tag)
    : enabled_(static_cast<int>(level) <= static_cast<int>(GetLogLevel())) {
  if (enabled_) stream_ << "[" << tag << "] ";
}

LogLine::~LogLine() {
  if (enabled_) {
    stream_ << "\n";
    // One fputs per line: stdio locks the stream, so concurrent engine
    // threads cannot interleave characters within a line.
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace internal
}  // namespace mhbench
