#include "metrics/report.h"

#include <cmath>
#include <sstream>

#include "core/csv.h"
#include "core/table.h"

namespace mhbench::metrics {
namespace {

std::string Tta(double v) {
  if (std::isinf(v)) return "not reached";
  return AsciiTable::Num(v, 1) + " s";
}

}  // namespace

std::string RenderMetricPanel(const std::string& title,
                              const std::vector<MetricBundle>& bundles) {
  std::ostringstream out;
  out << "== " << title << " ==\n";
  AsciiTable top({"Algorithm", "Global acc", "Time-to-acc (target " +
                                   AsciiTable::Num(
                                       bundles.empty()
                                           ? 0.0
                                           : bundles.front().target_accuracy,
                                       3) +
                                   ")"});
  for (const auto& b : bundles) {
    top.AddRow({b.algorithm, AsciiTable::Num(b.global_accuracy, 3),
                Tta(b.time_to_accuracy_s)});
  }
  out << top.Render();
  AsciiTable bottom({"Algorithm", "Stability (var)", "Effectiveness (+acc)"});
  for (const auto& b : bundles) {
    bottom.AddRow({b.algorithm, AsciiTable::Num(b.stability_variance, 4),
                   AsciiTable::Num(b.effectiveness, 3)});
  }
  out << bottom.Render();
  return out.str();
}

std::string RenderCurves(const std::string& title,
                         const std::vector<MetricBundle>& bundles) {
  AsciiChart chart(title, "eval checkpoint", "global accuracy");
  for (const auto& b : bundles) {
    chart.AddSeries(b.algorithm, b.curve_accuracy);
  }
  return chart.Render();
}

std::string ToCsv(const std::vector<MetricBundle>& bundles) {
  CsvWriter csv({"constraint", "task", "algorithm", "global_accuracy",
                 "time_to_accuracy_s", "target_accuracy",
                 "stability_variance", "effectiveness", "total_sim_time_s",
                 "mean_client_accuracy", "clients_selected",
                 "clients_dropped", "straggler_drop_rate"});
  for (const auto& b : bundles) {
    csv.AddRow(std::vector<std::string>{
        b.constraint, b.task, b.algorithm,
        AsciiTable::Num(b.global_accuracy, 4),
        std::isinf(b.time_to_accuracy_s)
            ? "inf"
            : AsciiTable::Num(b.time_to_accuracy_s, 1),
        AsciiTable::Num(b.target_accuracy, 4),
        AsciiTable::Num(b.stability_variance, 6),
        AsciiTable::Num(b.effectiveness, 4),
        AsciiTable::Num(b.total_sim_time_s, 1),
        AsciiTable::Num(b.mean_client_accuracy, 4),
        std::to_string(b.clients_selected), std::to_string(b.clients_dropped),
        AsciiTable::Num(StragglerDropRate(b), 4)});
  }
  return csv.ToString();
}

double StragglerDropRate(const MetricBundle& bundle) {
  if (bundle.clients_selected <= 0) return 0.0;
  return static_cast<double>(bundle.clients_dropped) /
         static_cast<double>(bundle.clients_selected);
}

}  // namespace mhbench::metrics
