// Figure-shaped rendering of metric bundles: per-metric tables, accuracy
// curves, and CSV dumps.
#pragma once

#include <string>
#include <vector>

#include "metrics/recorder.h"

namespace mhbench::metrics {

// Renders the paper's 2x2 metric panel (global accuracy / time-to-accuracy
// on top, stability / effectiveness below) for one task as aligned tables.
std::string RenderMetricPanel(const std::string& title,
                              const std::vector<MetricBundle>& bundles);

// Renders accuracy-vs-simulated-time curves of the given bundles.
std::string RenderCurves(const std::string& title,
                         const std::vector<MetricBundle>& bundles);

// CSV rows (one per bundle) with all four metrics.
std::string ToCsv(const std::vector<MetricBundle>& bundles);

// Fraction of sampled client-rounds dropped as stragglers, derived from the
// bundle's raw counters (0 when nothing was sampled).
double StragglerDropRate(const MetricBundle& bundle);

}  // namespace mhbench::metrics
