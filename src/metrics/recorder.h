// The paper's four evaluation metrics for one (constraint, task, algorithm)
// run, plus the raw curves they derive from.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mhbench::metrics {

struct MetricBundle {
  std::string algorithm;
  std::string task;
  std::string constraint;

  // (i) Global accuracy: final federated model on the shared test set.
  double global_accuracy = 0.0;
  // (ii) Time-to-accuracy: simulated seconds to the common target (+inf if
  // never reached).  Filled by the suite once the common target is known.
  double time_to_accuracy_s = std::numeric_limits<double>::infinity();
  double target_accuracy = 0.0;
  // (iii) Stability: variance of per-device accuracies (lower = stabler).
  double stability_variance = 0.0;
  // (iv) Effectiveness: accuracy gain over the smallest-homogeneous-model
  // FedAvg baseline.  Filled by the suite.
  double effectiveness = 0.0;

  double total_sim_time_s = 0.0;
  double mean_client_accuracy = 0.0;
  // Straggler accounting: raw counters summed over rounds (and repeats),
  // from the engine's observability counters.  Only `clients_dropped` is
  // nonzero when a round deadline was active.  The drop *rate* is derived
  // where it is reported (metrics/report.cc), not stored.
  std::int64_t clients_dropped = 0;
  std::int64_t clients_selected = 0;
  // Accuracy curve with its simulated-time axis.
  std::vector<double> curve_time_s;
  std::vector<double> curve_accuracy;

  // First time on the curve reaching `target`; +inf if never.
  double TimeTo(double target) const;
};

// Common time-to-accuracy target for a set of runs: `fraction` of the best
// final accuracy among them (the paper's pre-set-threshold methodology with
// a target every strong method can reach).
double CommonTarget(const std::vector<MetricBundle>& bundles,
                    double fraction = 0.8);

}  // namespace mhbench::metrics
