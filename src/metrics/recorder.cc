#include "metrics/recorder.h"

#include <algorithm>

#include "core/error.h"

namespace mhbench::metrics {

double MetricBundle::TimeTo(double target) const {
  MHB_CHECK_EQ(curve_time_s.size(), curve_accuracy.size());
  for (std::size_t i = 0; i < curve_accuracy.size(); ++i) {
    if (curve_accuracy[i] >= target) return curve_time_s[i];
  }
  return std::numeric_limits<double>::infinity();
}

double CommonTarget(const std::vector<MetricBundle>& bundles,
                    double fraction) {
  MHB_CHECK(!bundles.empty());
  MHB_CHECK_GT(fraction, 0.0);
  MHB_CHECK_LE(fraction, 1.0);
  double best = 0.0;
  for (const auto& b : bundles) {
    best = std::max(best, b.global_accuracy);
  }
  return best * fraction;
}

}  // namespace mhbench::metrics
