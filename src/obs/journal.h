// Bounded-memory client event journal (DESIGN.md §5j).
//
// The registry's per-client timeline used to be retained in memory for the
// whole run (O(clients x rounds)) and dumped as clients.csv at exit — the
// exact shape that cannot survive FedScale-class fleets.  The journal
// replaces that: at every round barrier the registry drains the round's
// client rows into a ClientJournalWriter, which appends one compact binary
// block to `clients.mhbj` and reuses its write buffer, so obs-layer client
// memory is O(round cohort + write buffer), never O(fleet x rounds).
// `tools/mhb_journal.py csv` converts the stream back into the legacy
// clients.csv schema.
//
// Wire format (little-endian throughout, MHBSNAP-style framing + CRC):
//
//   header   "MHBJRNL1" (8 bytes) | u32 version | f64 sample_rate
//            | u64 sample_seed
//   block*   u64 payload_len | u32 crc32(payload) | payload
//   payload  u32 round | u32 run_len | run bytes | u32 record_count
//            | record*
//   record   i32 client | u32 tier_len | tier bytes | u8 drop_code
//            | f64 sim_compute_s | f64 sim_comm_s | f64 memory_mb
//            | i64 bytes_up | i64 bytes_down | i64 train_mflops
//
// drop_code: 0 = trained, 1 = offline, 2 = straggler.  CRC-32 is the IEEE
// reflected polynomial (0xEDB88320), same convention as fl/checkpoint —
// the implementation is duplicated here because obs layers below fl.
//
// Determinism: the measured wall time is deliberately NOT in the record
// (it lives in the client_wall_us histograms) — every field is a pure
// function of the cost model and the serial phase-1 draws, so journal
// BYTES are bit-identical across --threads and exporter on/off.  Any
// format change bumps kVersion; readers reject other versions outright.
//
// Client sampling: `sample_rate` keeps a deterministic seed-hashed subset
// of clients (JournalSampleClient) — the same clients at any thread count,
// with the decision recorded in the header for provenance.  Rate 1 keeps
// everyone (the paper-grid default).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace mhbench::obs {

// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of `size` bytes — the checksum
// every journal block carries.  Exposed for tests.
std::uint32_t JournalCrc32(const std::uint8_t* data, std::size_t size);

// Deterministic per-client sampling decision: a SplitMix64-style hash of
// (seed, client) mapped to [0, 1) and compared against `rate`.  A pure
// function — the kept subset is identical for any thread count or call
// order.  Rate >= 1 keeps every client; rate <= 0 keeps none.
bool JournalSampleClient(std::uint64_t seed, int client, double rate);

class ClientJournalWriter {
 public:
  static constexpr std::uint32_t kVersion = 1;

  struct Options {
    double sample_rate = 1.0;
    std::uint64_t sample_seed = 0;
  };

  // Creates/truncates `path` and writes the header.  Throws mhbench::Error
  // on I/O failure.
  ClientJournalWriter(const std::string& path, const Options& options);
  ~ClientJournalWriter();

  ClientJournalWriter(const ClientJournalWriter&) = delete;
  ClientJournalWriter& operator=(const ClientJournalWriter&) = delete;

  // Appends one round barrier's client rows as a single block (rows must
  // share one run/round — the registry drains exactly one round at a
  // time).  Rows failing the sampling decision are skipped.  The write
  // buffer is reused across calls; an empty `rows` is a no-op.  Serial
  // phases only (the registry invokes the client-row sink on the barrier
  // thread).  Throws mhbench::Error on I/O failure.
  void Append(const std::vector<Registry::ClientRow>& rows);

  // Flushes and closes the stream.  Idempotent; the destructor calls it.
  void Close();

  std::int64_t blocks_written() const { return blocks_; }
  std::int64_t records_written() const { return records_; }
  // High-water mark of the reusable block buffer: the journal's only
  // per-round allocation, bounded by the largest cohort — the
  // bounded-memory tests assert it stays flat as rounds accumulate.
  std::size_t peak_block_bytes() const { return peak_block_bytes_; }

 private:
  const std::string path_;
  const Options options_;
  std::ofstream out_;
  std::vector<std::uint8_t> buf_;
  std::int64_t blocks_ = 0;
  std::int64_t records_ = 0;
  std::size_t peak_block_bytes_ = 0;
};

// One decoded journal record (round/run denormalized from its block).
struct ClientJournalRecord {
  std::string run;
  int round = 0;
  int client = 0;
  std::string device_tier;
  std::string drop_reason;  // "" (trained), "offline", "straggler"
  double sim_compute_s = 0.0;
  double sim_comm_s = 0.0;
  double memory_mb = 0.0;
  std::int64_t bytes_up = 0;
  std::int64_t bytes_down = 0;
  std::int64_t train_mflops = 0;
};

struct ClientJournalContents {
  std::uint32_t version = 0;
  double sample_rate = 1.0;
  std::uint64_t sample_seed = 0;
  std::vector<ClientJournalRecord> records;
};

// Reads and fully validates a journal: magic, version, every block's frame
// and CRC, every record's bounds.  Throws mhbench::Error on any corruption
// — a flipped bit or truncated tail never yields partial silent data.
ClientJournalContents ReadClientJournal(const std::string& path);

}  // namespace mhbench::obs
