// Minimal blocking-socket HTTP/1.1 server for the live telemetry exporter
// (DESIGN.md §5h).  One listener thread accepts loopback connections,
// parses a GET request line, asks the handler for a response body, writes
// it with Content-Length and closes.  Deliberately tiny: no keep-alive, no
// TLS, no request bodies — the endpoints it serves (/metrics,
// /status.json, /healthz) are read-only snapshots rendered per request.
//
// Threading: the handler runs on the listener thread, concurrently with
// the benchmark.  It must therefore only touch state that is safe to read
// cross-thread (the LiveExporter hands it lock-bounded snapshots); it must
// never write into engine or registry state, which is what keeps the
// exporter incapable of perturbing bit-determinism.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace mhbench::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// Maps a request path ("/metrics") to a response.  Called on the listener
// thread; must be thread-safe and read-only with respect to run state.
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

class HttpServer {
 public:
  // Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts the
  // listener thread.  Throws mhbench::Error when the socket cannot be
  // created or bound.
  HttpServer(int port, HttpHandler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // The bound port (the resolved one when constructed with port 0).
  int port() const { return port_; }

  // Stops accepting and joins the listener thread.  Idempotent.
  void Stop();

 private:
  void Serve();

  int listen_fd_ = -1;
  int port_ = -1;
  HttpHandler handler_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace mhbench::obs
