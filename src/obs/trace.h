// Low-overhead span tracing for the FL engine.
//
// A Tracer collects named, timestamped spans into per-thread buffers (no
// shared lock on the hot path after a thread's first span) and exports them
// as Chrome-tracing JSON (loadable in chrome://tracing or Perfetto) and as
// a JSONL event log.  Spans live on two tracks: the wall clock (pid 1,
// one lane per OS thread) and, when the engine is asked to, the simulated
// clock (pid 2, one lane per client).
//
// A null Tracer* is the disabled state: Span construction, Arg() and End()
// are then branch-only no-ops that allocate nothing, so instrumented code
// needs no #ifdefs.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace mhbench::obs {

// Escapes a string for embedding inside a JSON string literal (quotes,
// backslashes, and control characters; the latter as \u00XX).
std::string JsonEscape(const std::string& s);

struct TraceEvent {
  std::string name;
  std::string cat;
  std::int64_t ts_us = 0;   // start, microseconds since the tracer epoch
  std::int64_t dur_us = 0;  // duration, microseconds
  int pid = 1;              // 1 = wall-clock track, 2 = sim-clock track
  int tid = 0;              // lane: dense thread index (wall) / client (sim)
  // Numeric or string arguments; string values must be pre-escaped by the
  // producer only if they contain JSON-special characters (Export escapes).
  std::vector<std::pair<std::string, std::string>> num_args;
  std::vector<std::pair<std::string, std::string>> str_args;
};

class Tracer {
 public:
  static constexpr int kWallPid = 1;
  static constexpr int kSimPid = 2;

  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Microseconds elapsed since construction (the trace epoch).
  std::int64_t NowUs() const;

  // Appends a finished event.  Thread-safe; events land in the calling
  // thread's buffer.  `e.tid` is ignored for wall-track events (the dense
  // thread index is filled in), honoured for sim-track events.
  void Record(TraceEvent e);

  // Convenience for simulated-clock spans: timestamps are simulated seconds
  // converted to microseconds so trace viewers show the sim timeline.
  void RecordSim(std::string name, std::string cat, double sim_start_s,
                 double sim_dur_s, int lane,
                 std::vector<std::pair<std::string, std::string>> num_args = {});

  // All events recorded so far, merged across threads and sorted by
  // (pid, ts).  Thread-safe, but intended for after the traced workload.
  std::vector<TraceEvent> Snapshot() const;

  std::string ToChromeJson() const;  // JSON array of complete ("X") events
  std::string ToJsonl() const;       // one JSON object per line

  // Writes ToChromeJson()/ToJsonl() to `path`; throws mhbench::Error on
  // I/O failure.
  void WriteChromeJson(const std::string& path) const;
  void WriteJsonl(const std::string& path) const;

 private:
  struct Buffer {
    int tid = 0;
    std::vector<TraceEvent> events;
  };

  // Registers the calling thread on first use.
  Buffer* ThreadBuffer() MHB_EXCLUDES(mu_);

  std::chrono::steady_clock::time_point epoch_;
  // Distinguishes this tracer from an earlier one at the same address, so
  // threads' cached buffer resolutions can never alias across tracers.
  const std::uint64_t generation_;
  // Guards buffers_ (registration + snapshot).  Buffer *contents* are
  // owner-thread-only between barriers, as in obs::Registry.
  mutable core::Mutex mu_;
  std::vector<std::unique_ptr<Buffer>> buffers_ MHB_GUARDED_BY(mu_);
};

// RAII wall-clock span.  Records a complete event on destruction (or End()).
// Constructed against a null tracer it is inert: no clock reads, no
// allocation, no buffer touch.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, const char* name, const char* cat);
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  explicit operator bool() const { return tracer_ != nullptr; }

  // Attach arguments (shown in the trace viewer's detail pane).  No-ops
  // when disabled.
  void Arg(const char* key, std::int64_t value);
  void Arg(const char* key, double value);
  void Arg(const char* key, const std::string& value);

  // Records the event now; further calls are no-ops.
  void End();

 private:
  Tracer* tracer_ = nullptr;
  TraceEvent event_;
};

}  // namespace mhbench::obs
