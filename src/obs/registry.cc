#include "obs/registry.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <utility>

namespace mhbench::obs {

namespace {

struct TlEntry {
  const void* registry = nullptr;
  std::uint64_t generation = 0;
  void* sink = nullptr;
};
thread_local std::vector<TlEntry> tl_sinks;

std::uint64_t NextGeneration() {
  static std::atomic<std::uint64_t> g{1};
  return g.fetch_add(1, std::memory_order_relaxed);
}

// std::bit_width without requiring <bit> (the TSan config builds with
// older language-mode fallbacks elsewhere): position of the highest set
// bit, for v > 0.
int BitWidth(std::uint64_t v) {
  int w = 0;
  while (v != 0) {
    v >>= 1;
    ++w;
  }
  return w;
}

}  // namespace

int Registry::BucketIndex(std::int64_t v) {
  if (v <= 0) return 0;
  return BitWidth(static_cast<std::uint64_t>(v));  // 1..63
}

std::int64_t Registry::BucketLo(int bucket) {
  if (bucket <= 0) return 0;
  return std::int64_t{1} << (bucket - 1);
}

std::int64_t Registry::BucketHi(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= kHistogramBuckets - 1) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return (std::int64_t{1} << bucket) - 1;
}

std::int64_t Registry::HistogramData::count() const {
  std::int64_t n = 0;
  for (const std::int64_t b : buckets) n += b;
  return n;
}

void Registry::HistogramData::Observe(std::int64_t v) {
  if (count() == 0) {
    min = v;
    max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  buckets[static_cast<std::size_t>(BucketIndex(v))] += 1;
  sum += v;
}

void Registry::HistogramData::Merge(const HistogramData& other) {
  if (other.count() == 0) return;
  if (count() == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  sum += other.sum;
}

double Registry::HistogramData::Quantile(double q) const {
  const std::int64_t n = count();
  if (n == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(n);
  std::int64_t seen = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    const std::int64_t in_bucket = buckets[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      // Interpolate within the bucket's [lo, hi] span, then clamp to the
      // observed range so degenerate histograms (single value) are exact.
      const double lo = static_cast<double>(BucketLo(b));
      const double hi = static_cast<double>(BucketHi(b));
      const double frac =
          in_bucket == 0
              ? 0.0
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket);
      double v = lo + frac * (hi - lo);
      v = std::max(v, static_cast<double>(min));
      v = std::min(v, static_cast<double>(max));
      return v;
    }
    seen += in_bucket;
  }
  return static_cast<double>(max);
}

Registry::Registry() : generation_(NextGeneration()) {}
Registry::~Registry() = default;

Registry::CounterId Registry::Counter(const std::string& name) {
  core::MutexLock lock(mu_);
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const CounterId id = names_.size();
  names_.push_back(name);
  ids_.emplace(name, id);
  totals_.push_back(0);
  round_base_.push_back(0);
  return id;
}

Registry::HistogramId Registry::Histogram(const std::string& name) {
  core::MutexLock lock(mu_);
  auto it = hist_ids_.find(name);
  if (it != hist_ids_.end()) return it->second;
  const HistogramId id = hist_names_.size();
  hist_names_.push_back(name);
  hist_ids_.emplace(name, id);
  hist_totals_.emplace_back();
  hist_round_.emplace_back();
  return id;
}

Registry::Sink* Registry::ThreadSink() {
  for (auto& e : tl_sinks) {
    if (e.registry == this && e.generation == generation_) {
      return static_cast<Sink*>(e.sink);
    }
  }
  auto sink = std::make_unique<Sink>();
  Sink* raw = sink.get();
  {
    core::MutexLock lock(mu_);
    sinks_.push_back(std::move(sink));
  }
  tl_sinks.push_back({this, generation_, raw});
  return raw;
}

void Registry::Add(CounterId id, std::int64_t delta) {
  Sink* sink = ThreadSink();
  if (sink->values.size() <= id) sink->values.resize(id + 1, 0);
  sink->values[id] += delta;
}

void Registry::AddNamed(const std::string& name, std::int64_t delta) {
  Add(Counter(name), delta);
}

void Registry::Observe(HistogramId id, std::int64_t value) {
  Sink* sink = ThreadSink();
  if (sink->hists.size() <= id) sink->hists.resize(id + 1);
  sink->hists[id].Observe(value);
}

void Registry::ObserveNamed(const std::string& name, std::int64_t value) {
  Observe(Histogram(name), value);
}

void Registry::SetGauge(const std::string& name, double value) {
  core::MutexLock lock(mu_);
  gauges_[name] = value;
}

void Registry::FlushLocked() {
  for (auto& sink : sinks_) {
    for (std::size_t id = 0; id < sink->values.size(); ++id) {
      totals_[id] += sink->values[id];
      sink->values[id] = 0;
    }
    for (std::size_t id = 0; id < sink->hists.size(); ++id) {
      hist_totals_[id].Merge(sink->hists[id]);
      hist_round_[id].Merge(sink->hists[id]);
      sink->hists[id] = HistogramData{};
    }
  }
}

void Registry::FlushThreadSinks() {
  core::MutexLock lock(mu_);
  FlushLocked();
}

void Registry::EndRound(const std::string& run, int round) {
  std::function<void(const RoundRow&)> sink;
  RoundRow published;
  std::function<void(std::vector<ClientRow>&&)> row_sink;
  std::vector<ClientRow> drained;
  {
    core::MutexLock lock(mu_);
    FlushLocked();
    // Drain the staged client rows unconditionally: with no sink installed
    // they are simply discarded, so staging memory stays bounded by one
    // round's cohort either way.
    drained.swap(client_rows_);
    row_sink = client_row_sink_;
    RoundRow row;
    row.run = run;
    row.round = round;
    for (std::size_t id = 0; id < totals_.size(); ++id) {
      const std::int64_t delta = totals_[id] - round_base_[id];
      if (delta != 0) row.counters[names_[id]] = delta;
      round_base_[id] = totals_[id];
    }
    // Histogram deltas can't be derived by subtraction (min/max aren't
    // invertible), so a per-round accumulator is kept alongside the totals
    // and reset here.
    for (std::size_t id = 0; id < hist_round_.size(); ++id) {
      if (!hist_round_[id].empty()) {
        row.hists[hist_names_[id]] = hist_round_[id];
      }
      hist_round_[id] = HistogramData{};
    }
    row.gauges = std::move(gauges_);
    gauges_.clear();
    sink = round_sink_;
    if (sink) published = row;  // copy: the sink runs outside the lock
    rounds_.push_back(std::move(row));
  }
  if (sink) sink(published);
  if (row_sink && !drained.empty()) row_sink(std::move(drained));
}

void Registry::SetRoundSink(std::function<void(const RoundRow&)> sink) {
  core::MutexLock lock(mu_);
  round_sink_ = std::move(sink);
}

void Registry::SetClientRowSink(
    std::function<void(std::vector<ClientRow>&&)> sink) {
  core::MutexLock lock(mu_);
  client_row_sink_ = std::move(sink);
}

Registry::LiveSnapshot Registry::SnapshotTotals() const {
  LiveSnapshot snap;
  core::MutexLock lock(mu_);
  for (std::size_t id = 0; id < names_.size(); ++id) {
    snap.counters[names_[id]] = totals_[id];
  }
  for (std::size_t id = 0; id < hist_names_.size(); ++id) {
    if (!hist_totals_[id].empty()) {
      snap.hists[hist_names_[id]] = hist_totals_[id];
    }
  }
  snap.rounds_completed = rounds_.size();
  for (const auto& row : rounds_) {
    auto it = row.gauges.find("global_acc");
    if (it != row.gauges.end()) {
      snap.accuracy.emplace_back(row.round, it->second);
    }
  }
  if (!rounds_.empty()) {
    const RoundRow& last = rounds_.back();
    snap.last_round = last.round;
    snap.last_run = last.run;
    snap.last_gauges = last.gauges;
    auto it = last.gauges.find("sim_time_s");
    if (it != last.gauges.end()) snap.sim_time_s = it->second;
  }
  return snap;
}

std::int64_t Registry::Total(const std::string& name) const {
  core::MutexLock lock(mu_);
  auto it = ids_.find(name);
  return it == ids_.end() ? 0 : totals_[it->second];
}

std::map<std::string, std::int64_t> Registry::Totals() const {
  core::MutexLock lock(mu_);
  std::map<std::string, std::int64_t> out;
  for (std::size_t id = 0; id < names_.size(); ++id) {
    out[names_[id]] = totals_[id];
  }
  return out;
}

Registry::HistogramData Registry::HistogramTotals(
    const std::string& name) const {
  core::MutexLock lock(mu_);
  auto it = hist_ids_.find(name);
  return it == hist_ids_.end() ? HistogramData{} : hist_totals_[it->second];
}

std::map<std::string, Registry::HistogramData> Registry::Histograms() const {
  core::MutexLock lock(mu_);
  std::map<std::string, HistogramData> out;
  for (std::size_t id = 0; id < hist_names_.size(); ++id) {
    out[hist_names_[id]] = hist_totals_[id];
  }
  return out;
}

void Registry::ImportTotals(
    const std::map<std::string, std::int64_t>& counters,
    const std::map<std::string, HistogramData>& hists) {
  for (const auto& [name, delta] : counters) {
    const CounterId id = Counter(name);
    core::MutexLock lock(mu_);
    totals_[id] += delta;
    round_base_[id] += delta;
  }
  for (const auto& [name, data] : hists) {
    const HistogramId id = Histogram(name);
    core::MutexLock lock(mu_);
    hist_totals_[id].Merge(data);
  }
}

void Registry::AddClientRow(ClientRow row) {
  core::MutexLock lock(mu_);
  client_rows_.push_back(std::move(row));
}

}  // namespace mhbench::obs
