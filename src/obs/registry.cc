#include "obs/registry.h"

#include <atomic>

namespace mhbench::obs {

namespace {

struct TlEntry {
  const void* registry = nullptr;
  std::uint64_t generation = 0;
  void* sink = nullptr;
};
thread_local std::vector<TlEntry> tl_sinks;

std::uint64_t NextGeneration() {
  static std::atomic<std::uint64_t> g{1};
  return g.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Registry::Registry() : generation_(NextGeneration()) {}
Registry::~Registry() = default;

Registry::CounterId Registry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const CounterId id = names_.size();
  names_.push_back(name);
  ids_.emplace(name, id);
  totals_.push_back(0);
  round_base_.push_back(0);
  return id;
}

Registry::Sink* Registry::ThreadSink() {
  for (auto& e : tl_sinks) {
    if (e.registry == this && e.generation == generation_) {
      return static_cast<Sink*>(e.sink);
    }
  }
  auto sink = std::make_unique<Sink>();
  Sink* raw = sink.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    sinks_.push_back(std::move(sink));
  }
  tl_sinks.push_back({this, generation_, raw});
  return raw;
}

void Registry::Add(CounterId id, std::int64_t delta) {
  Sink* sink = ThreadSink();
  if (sink->values.size() <= id) sink->values.resize(id + 1, 0);
  sink->values[id] += delta;
}

void Registry::AddNamed(const std::string& name, std::int64_t delta) {
  Add(Counter(name), delta);
}

void Registry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void Registry::FlushLocked() {
  for (auto& sink : sinks_) {
    for (std::size_t id = 0; id < sink->values.size(); ++id) {
      totals_[id] += sink->values[id];
      sink->values[id] = 0;
    }
  }
}

void Registry::FlushThreadSinks() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
}

void Registry::EndRound(const std::string& run, int round) {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
  RoundRow row;
  row.run = run;
  row.round = round;
  for (std::size_t id = 0; id < totals_.size(); ++id) {
    const std::int64_t delta = totals_[id] - round_base_[id];
    if (delta != 0) row.counters[names_[id]] = delta;
    round_base_[id] = totals_[id];
  }
  row.gauges = std::move(gauges_);
  gauges_.clear();
  rounds_.push_back(std::move(row));
}

std::int64_t Registry::Total(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(name);
  return it == ids_.end() ? 0 : totals_[it->second];
}

std::map<std::string, std::int64_t> Registry::Totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::int64_t> out;
  for (std::size_t id = 0; id < names_.size(); ++id) {
    out[names_[id]] = totals_[id];
  }
  return out;
}

}  // namespace mhbench::obs
