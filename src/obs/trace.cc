#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/error.h"

namespace mhbench::obs {

namespace {

// Thread-local cache of (tracer -> buffer) resolutions.  A thread touches
// at most a handful of tracers over its lifetime, so a flat vector beats a
// map; entries for destroyed tracers are purged by the tracer's destructor
// generation check (we key on the pointer and a generation counter to stay
// safe against address reuse).
struct TlEntry {
  const void* tracer = nullptr;
  std::uint64_t generation = 0;
  void* buffer = nullptr;
};
thread_local std::vector<TlEntry> tl_buffers;

std::uint64_t NextGeneration() {
  static std::atomic<std::uint64_t> g{1};
  return g.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

Tracer::Tracer()
    : epoch_(std::chrono::steady_clock::now()),
      generation_(NextGeneration()) {}

Tracer::~Tracer() = default;

std::int64_t Tracer::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::Buffer* Tracer::ThreadBuffer() {
  for (auto& e : tl_buffers) {
    if (e.tracer == this && e.generation == generation_) {
      return static_cast<Buffer*>(e.buffer);
    }
  }
  auto buf = std::make_unique<Buffer>();
  Buffer* raw = buf.get();
  {
    core::MutexLock lock(mu_);
    raw->tid = static_cast<int>(buffers_.size());
    buffers_.push_back(std::move(buf));
  }
  tl_buffers.push_back({this, generation_, raw});
  return raw;
}

void Tracer::Record(TraceEvent e) {
  Buffer* buf = ThreadBuffer();
  if (e.pid == kWallPid) e.tid = buf->tid;
  buf->events.push_back(std::move(e));
}

void Tracer::RecordSim(
    std::string name, std::string cat, double sim_start_s, double sim_dur_s,
    int lane, std::vector<std::pair<std::string, std::string>> num_args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.pid = kSimPid;
  e.tid = lane;
  e.ts_us = static_cast<std::int64_t>(sim_start_s * 1e6);
  e.dur_us = static_cast<std::int64_t>(sim_dur_s * 1e6);
  e.num_args = std::move(num_args);
  Record(std::move(e));
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> all;
  {
    core::MutexLock lock(mu_);
    for (const auto& buf : buffers_) {
      all.insert(all.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     return a.ts_us < b.ts_us;
                   });
  return all;
}

namespace {

void AppendEventJson(std::ostringstream& out, const TraceEvent& e) {
  out << "{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\""
      << JsonEscape(e.cat) << "\",\"ph\":\"X\",\"ts\":" << e.ts_us
      << ",\"dur\":" << e.dur_us << ",\"pid\":" << e.pid
      << ",\"tid\":" << e.tid;
  if (!e.num_args.empty() || !e.str_args.empty()) {
    out << ",\"args\":{";
    bool first = true;
    for (const auto& [k, v] : e.num_args) {
      if (!first) out << ",";
      first = false;
      out << "\"" << JsonEscape(k) << "\":" << v;
    }
    for (const auto& [k, v] : e.str_args) {
      if (!first) out << ",";
      first = false;
      out << "\"" << JsonEscape(k) << "\":\"" << JsonEscape(v) << "\"";
    }
    out << "}";
  }
  out << "}";
}

}  // namespace

std::string Tracer::ToChromeJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::ostringstream out;
  out << "[";
  // Name the two tracks so viewers label them.
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kWallPid
      << ",\"args\":{\"name\":\"wall clock\"}},\n";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kSimPid
      << ",\"args\":{\"name\":\"simulated clock\"}}";
  for (const auto& e : events) {
    out << ",\n";
    AppendEventJson(out, e);
  }
  out << "]\n";
  return out.str();
}

std::string Tracer::ToJsonl() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::ostringstream out;
  for (const auto& e : events) {
    AppendEventJson(out, e);
    out << "\n";
  }
  return out.str();
}

namespace {

void WriteFileOrThrow(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f.good()) throw Error("cannot open trace output: " + path);
  f << content;
  if (!f.good()) throw Error("failed writing trace output: " + path);
}

}  // namespace

void Tracer::WriteChromeJson(const std::string& path) const {
  WriteFileOrThrow(path, ToChromeJson());
}

void Tracer::WriteJsonl(const std::string& path) const {
  WriteFileOrThrow(path, ToJsonl());
}

Span::Span(Tracer* tracer, const char* name, const char* cat)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  event_.name = name;
  event_.cat = cat;
  event_.ts_us = tracer_->NowUs();
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    event_ = std::move(other.event_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::Arg(const char* key, std::int64_t value) {
  if (tracer_ == nullptr) return;
  event_.num_args.emplace_back(key, std::to_string(value));
}

void Span::Arg(const char* key, double value) {
  if (tracer_ == nullptr) return;
  std::ostringstream v;
  v << value;
  event_.num_args.emplace_back(key, v.str());
}

void Span::Arg(const char* key, const std::string& value) {
  if (tracer_ == nullptr) return;
  event_.str_args.emplace_back(key, value);
}

void Span::End() {
  if (tracer_ == nullptr) return;
  event_.dur_us = tracer_->NowUs() - event_.ts_us;
  tracer_->Record(std::move(event_));
  tracer_ = nullptr;
}

}  // namespace mhbench::obs
