#include "obs/journal.h"

#include <array>
#include <cstring>

#include "core/error.h"

namespace mhbench::obs {

namespace {

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void PushU8(std::vector<std::uint8_t>& buf, std::uint8_t v) {
  buf.push_back(v);
}

void PushU32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void PushU64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void PushI32(std::vector<std::uint8_t>& buf, std::int32_t v) {
  PushU32(buf, static_cast<std::uint32_t>(v));
}

void PushI64(std::vector<std::uint8_t>& buf, std::int64_t v) {
  PushU64(buf, static_cast<std::uint64_t>(v));
}

void PushF64(std::vector<std::uint8_t>& buf, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PushU64(buf, bits);
}

void PushString(std::vector<std::uint8_t>& buf, const std::string& s) {
  PushU32(buf, static_cast<std::uint32_t>(s.size()));
  buf.insert(buf.end(), s.begin(), s.end());
}

constexpr char kMagic[8] = {'M', 'H', 'B', 'J', 'R', 'N', 'L', '1'};

std::uint8_t DropCode(const std::string& reason) {
  if (reason.empty()) return 0;
  if (reason == "offline") return 1;
  if (reason == "straggler") return 2;
  throw Error("client journal: unknown drop reason '" + reason + "'");
}

const char* DropReason(std::uint8_t code) {
  switch (code) {
    case 0:
      return "";
    case 1:
      return "offline";
    case 2:
      return "straggler";
    default:
      throw Error("client journal: unknown drop code " +
                  std::to_string(code));
  }
}

// Bounds-checked little-endian cursor over the loaded file bytes.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size, const char* what)
      : data_(data), size_(size), what_(what) {}

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }

  const std::uint8_t* Take(std::size_t n) {
    if (n > remaining()) {
      throw Error(std::string("client journal: truncated ") + what_);
    }
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  std::uint8_t U8() { return *Take(1); }

  std::uint32_t U32() {
    const std::uint8_t* p = Take(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }

  std::uint64_t U64() {
    const std::uint8_t* p = Take(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }

  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }

  double F64() {
    const std::uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string String() {
    const std::uint32_t n = U32();
    const std::uint8_t* p = Take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const char* what_;
};

}  // namespace

std::uint32_t JournalCrc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool JournalSampleClient(std::uint64_t seed, int client, double rate) {
  // SplitMix64 finalizer over (seed, client): a high-quality stateless
  // hash, so the kept subset is a pure function of the pair — identical at
  // any thread count, call order, or round.
  std::uint64_t x =
      seed + 0x9E3779B97F4A7C15ull *
                 (static_cast<std::uint64_t>(static_cast<std::uint32_t>(client)) +
                  1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  const double u =
      static_cast<double>(x >> 11) / 9007199254740992.0;  // [0, 1)
  return u < rate;
}

ClientJournalWriter::ClientJournalWriter(const std::string& path,
                                         const Options& options)
    : path_(path), options_(options) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_.good()) throw Error("cannot open client journal " + path);
  buf_.clear();
  buf_.insert(buf_.end(), kMagic, kMagic + sizeof(kMagic));
  PushU32(buf_, kVersion);
  PushF64(buf_, options_.sample_rate);
  PushU64(buf_, options_.sample_seed);
  out_.write(reinterpret_cast<const char*>(buf_.data()),
             static_cast<std::streamsize>(buf_.size()));
  out_.flush();
  if (!out_.good()) throw Error("failed writing client journal " + path);
}

ClientJournalWriter::~ClientJournalWriter() {
  try {
    Close();
  } catch (const Error&) {
    // Destructor must not throw; Close() failures surface when callers
    // close explicitly (the CLI does).
  }
}

void ClientJournalWriter::Append(const std::vector<Registry::ClientRow>& rows) {
  if (rows.empty()) return;
  if (!out_.is_open()) {
    throw Error("client journal " + path_ + " already closed");
  }
  const std::string& run = rows.front().run;
  const int round = rows.front().round;

  buf_.clear();
  // Payload is built first so the frame's length + CRC cover final bytes.
  PushU32(buf_, static_cast<std::uint32_t>(round));
  PushString(buf_, run);
  const std::size_t count_pos = buf_.size();
  PushU32(buf_, 0);  // record_count backpatched below
  std::uint32_t kept = 0;
  for (const auto& row : rows) {
    if (row.run != run || row.round != round) {
      throw Error("client journal: mixed rounds in one barrier drain");
    }
    if (!JournalSampleClient(options_.sample_seed, row.client,
                             options_.sample_rate)) {
      continue;
    }
    ++kept;
    PushI32(buf_, row.client);
    PushString(buf_, row.device_tier);
    PushU8(buf_, DropCode(row.drop_reason));
    PushF64(buf_, row.sim_compute_s);
    PushF64(buf_, row.sim_comm_s);
    PushF64(buf_, row.memory_mb);
    PushI64(buf_, row.bytes_up);
    PushI64(buf_, row.bytes_down);
    PushI64(buf_, row.train_mflops);
  }
  buf_[count_pos + 0] = static_cast<std::uint8_t>(kept & 0xFF);
  buf_[count_pos + 1] = static_cast<std::uint8_t>((kept >> 8) & 0xFF);
  buf_[count_pos + 2] = static_cast<std::uint8_t>((kept >> 16) & 0xFF);
  buf_[count_pos + 3] = static_cast<std::uint8_t>((kept >> 24) & 0xFF);

  std::vector<std::uint8_t> frame;
  frame.reserve(12);
  PushU64(frame, static_cast<std::uint64_t>(buf_.size()));
  PushU32(frame, JournalCrc32(buf_.data(), buf_.size()));
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  out_.write(reinterpret_cast<const char*>(buf_.data()),
             static_cast<std::streamsize>(buf_.size()));
  // Flush per barrier: a killed run keeps every completed round's block.
  out_.flush();
  if (!out_.good()) throw Error("failed writing client journal " + path_);
  ++blocks_;
  records_ += kept;
  peak_block_bytes_ =
      peak_block_bytes_ > buf_.capacity() ? peak_block_bytes_ : buf_.capacity();
}

void ClientJournalWriter::Close() {
  if (!out_.is_open()) return;
  out_.flush();
  const bool ok = out_.good();
  out_.close();
  if (!ok) throw Error("failed writing client journal " + path_);
}

ClientJournalContents ReadClientJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw Error("cannot open client journal " + path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  Cursor header(bytes.data(), bytes.size(), "header");
  const std::uint8_t* magic = header.Take(sizeof(kMagic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw Error("client journal " + path + ": bad magic");
  }
  ClientJournalContents contents;
  contents.version = header.U32();
  if (contents.version != ClientJournalWriter::kVersion) {
    throw Error("client journal " + path + ": unsupported version " +
                std::to_string(contents.version) + " (want " +
                std::to_string(ClientJournalWriter::kVersion) + ")");
  }
  contents.sample_rate = header.F64();
  contents.sample_seed = header.U64();

  std::size_t pos = header.pos();
  while (pos < bytes.size()) {
    Cursor frame(bytes.data() + pos, bytes.size() - pos, "block frame");
    const std::uint64_t payload_len = frame.U64();
    const std::uint32_t crc = frame.U32();
    if (payload_len > frame.remaining()) {
      throw Error("client journal " + path + ": truncated block payload");
    }
    const std::uint8_t* payload = bytes.data() + pos + frame.pos();
    if (JournalCrc32(payload, static_cast<std::size_t>(payload_len)) != crc) {
      throw Error("client journal " + path + ": block CRC mismatch");
    }
    Cursor body(payload, static_cast<std::size_t>(payload_len), "block body");
    const int round = static_cast<int>(body.U32());
    const std::string run = body.String();
    const std::uint32_t count = body.U32();
    for (std::uint32_t i = 0; i < count; ++i) {
      ClientJournalRecord rec;
      rec.run = run;
      rec.round = round;
      rec.client = body.I32();
      rec.device_tier = body.String();
      rec.drop_reason = DropReason(body.U8());
      rec.sim_compute_s = body.F64();
      rec.sim_comm_s = body.F64();
      rec.memory_mb = body.F64();
      rec.bytes_up = body.I64();
      rec.bytes_down = body.I64();
      rec.train_mflops = body.I64();
      contents.records.push_back(std::move(rec));
    }
    if (body.remaining() != 0) {
      throw Error("client journal " + path + ": trailing bytes in block");
    }
    pos += frame.pos() + static_cast<std::size_t>(payload_len);
  }
  return contents;
}

}  // namespace mhbench::obs
