#include "obs/profile.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/trace.h"  // JsonEscape
#include "tensor/gemm.h"
#include "tensor/scratch.h"
#include "tensor/tensor.h"

namespace mhbench::obs {

namespace {

thread_local Profiler* tl_profiler = nullptr;

struct TlEntry {
  const void* profiler = nullptr;
  std::uint64_t generation = 0;
  Profiler::Sink* sink = nullptr;
};
thread_local std::vector<TlEntry> tl_sinks;

std::uint64_t NextGeneration() {
  static std::atomic<std::uint64_t> g{1};
  return g.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Profiler::Profiler() : generation_(NextGeneration()) {}
Profiler::~Profiler() = default;

Profiler* Profiler::Current() { return tl_profiler; }

const char* Profiler::Intern(const std::string& name) {
  core::MutexLock lock(mu_);
  auto it = interned_.find(name);
  if (it != interned_.end()) return it->second;
  interned_storage_.push_back(name);
  const char* p = interned_storage_.back().c_str();
  interned_.emplace(name, p);
  return p;
}

Profiler::Sink* Profiler::ThreadSink() {
  for (auto& e : tl_sinks) {
    if (e.profiler == this && e.generation == generation_) return e.sink;
  }
  auto sink = std::make_unique<Sink>();
  Sink* raw = sink.get();
  {
    core::MutexLock lock(mu_);
    sinks_.push_back(std::move(sink));
  }
  tl_sinks.push_back({this, generation_, raw});
  return raw;
}

void ProfileScope::Enter(Profiler* p, const char* name) {
  profiler_ = p;
  sink_ = p->ThreadSink();
  prev_ = sink_->current;

  // Find-or-create the child of the current node with this name.  Pointer
  // compare: literals and interned names are canonical, so identical names
  // share an address within one binary.
  std::uint32_t found = 0;
  for (std::uint32_t c = sink_->nodes[prev_].first_child; c != 0;
       c = sink_->nodes[c].next_sibling) {
    if (sink_->nodes[c].name == name) {
      found = c;
      break;
    }
  }
  if (found == 0) {
    Profiler::Node node;
    node.name = name;
    node.parent = prev_;
    node.next_sibling = sink_->nodes[prev_].first_child;
    found = static_cast<std::uint32_t>(sink_->nodes.size());
    sink_->nodes.push_back(node);
    sink_->nodes[prev_].first_child = found;
  }
  node_ = found;
  sink_->current = node_;

  kernels::ScratchArena& arena = kernels::ThreadScratch();
  saved_watermark_ =
      arena.ExchangeWatermark(arena.in_use_bytes() / sizeof(float));
  flops0_ = kernels::ThreadGemmFlops();
  allocs0_ = Tensor::ThreadAllocStats().heap_allocs;
  start_ns_ = NowNs();
}

void ProfileScope::Leave() {
  const std::int64_t dt = NowNs() - start_ns_;
  const std::int64_t flops =
      static_cast<std::int64_t>(kernels::ThreadGemmFlops() - flops0_);
  const std::int64_t allocs = static_cast<std::int64_t>(
      Tensor::ThreadAllocStats().heap_allocs - allocs0_);

  kernels::ScratchArena& arena = kernels::ThreadScratch();
  const std::size_t scope_peak_floats = arena.watermark_floats();
  // The parent scope's peak must cover everything seen inside this one.
  arena.ExchangeWatermark(std::max(saved_watermark_, scope_peak_floats));
  const std::int64_t scope_peak_bytes =
      static_cast<std::int64_t>(scope_peak_floats * sizeof(float));

  Profiler::Node& node = sink_->nodes[node_];
  node.count += 1;
  node.wall_ns += dt;
  node.gemm_flops += flops;
  node.heap_allocs += allocs;
  node.scratch_peak_bytes = std::max(node.scratch_peak_bytes,
                                     scope_peak_bytes);
  sink_->nodes[prev_].child_wall_ns += dt;
  sink_->current = prev_;
}

ProfilerThreadGuard::ProfilerThreadGuard(Profiler* profiler)
    : prev_(tl_profiler) {
  tl_profiler = profiler;
}

ProfilerThreadGuard::~ProfilerThreadGuard() { tl_profiler = prev_; }

namespace {

// Merges one sink subtree into the deterministic (name-sorted) build map.
struct BuildNode {
  Profiler::TreeNode stats;
  std::map<std::string, BuildNode> children;
};

void MergeInto(const Profiler::Sink& sink, std::uint32_t idx,
               BuildNode* out) {
  const Profiler::Node& n = sink.nodes[idx];
  out->stats.count += n.count;
  out->stats.wall_ns += n.wall_ns;
  out->stats.child_wall_ns += n.child_wall_ns;
  out->stats.gemm_flops += n.gemm_flops;
  out->stats.heap_allocs += n.heap_allocs;
  out->stats.scratch_peak_bytes =
      std::max(out->stats.scratch_peak_bytes, n.scratch_peak_bytes);
  for (std::uint32_t c = n.first_child; c != 0;
       c = sink.nodes[c].next_sibling) {
    MergeInto(sink, c, &out->children[sink.nodes[c].name]);
  }
}

Profiler::TreeNode Finalize(const std::string& name, const BuildNode& b) {
  Profiler::TreeNode out = b.stats;
  out.name = name;
  out.children.reserve(b.children.size());
  for (const auto& [child_name, child] : b.children) {
    out.children.push_back(Finalize(child_name, child));
  }
  return out;
}

void AccumulateTotals(const Profiler::TreeNode& node,
                      std::map<std::string, Profiler::OpStats>* out) {
  if (!node.name.empty()) {
    Profiler::OpStats& s = (*out)[node.name];
    s.count += node.count;
    s.wall_ns += node.wall_ns;
    s.gemm_flops += node.gemm_flops;
    s.heap_allocs += node.heap_allocs;
    s.scratch_peak_bytes =
        std::max(s.scratch_peak_bytes, node.scratch_peak_bytes);
  }
  for (const auto& c : node.children) AccumulateTotals(c, out);
}

void EmitTreeRows(const Profiler::TreeNode& node, const std::string& path,
                  int depth, bool* first, std::ostringstream* out) {
  if (!node.name.empty()) {
    if (!*first) *out << ",\n";
    *first = false;
    const std::int64_t self_ns = node.wall_ns - node.child_wall_ns;
    *out << "    {\"path\":\"" << JsonEscape(path) << "\",\"name\":\""
         << JsonEscape(node.name) << "\",\"depth\":" << depth
         << ",\"count\":" << node.count
         << ",\"wall_us\":" << node.wall_ns / 1000
         << ",\"self_wall_us\":" << self_ns / 1000
         << ",\"gemm_flops\":" << node.gemm_flops
         << ",\"heap_allocs\":" << node.heap_allocs
         << ",\"scratch_peak_bytes\":" << node.scratch_peak_bytes << "}";
  }
  for (const auto& c : node.children) {
    const std::string child_path =
        node.name.empty() ? c.name : path + "/" + c.name;
    EmitTreeRows(c, child_path, node.name.empty() ? 0 : depth + 1, first,
                 out);
  }
}

}  // namespace

Profiler::TreeNode Profiler::MergedTree() const {
  core::MutexLock lock(mu_);
  BuildNode root;
  for (const auto& sink : sinks_) {
    MergeInto(*sink, 0, &root);
  }
  // The root aggregates sink roots; its own stats stay zero except the
  // child_wall_ns the sinks accumulated, which is meaningless across
  // threads — clear it.
  TreeNode out = Finalize("", root);
  out.count = 0;
  out.wall_ns = 0;
  out.child_wall_ns = 0;
  return out;
}

std::map<std::string, Profiler::OpStats> Profiler::TotalsByName() const {
  std::map<std::string, OpStats> out;
  AccumulateTotals(MergedTree(), &out);
  return out;
}

std::string Profiler::ToJson() const {
  const TreeNode tree = MergedTree();
  const auto totals = TotalsByName();
  std::ostringstream out;
  out << "{\n  \"op_totals\": {";
  bool first = true;
  for (const auto& [name, s] : totals) {
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << JsonEscape(name) << "\": {\"count\":" << s.count
        << ",\"wall_us\":" << s.wall_ns / 1000
        << ",\"gemm_flops\":" << s.gemm_flops
        << ",\"heap_allocs\":" << s.heap_allocs
        << ",\"scratch_peak_bytes\":" << s.scratch_peak_bytes << "}";
  }
  out << "\n  },\n  \"tree\": [\n";
  std::ostringstream rows;
  bool first_row = true;
  EmitTreeRows(tree, "", 0, &first_row, &rows);
  out << rows.str() << "\n  ]\n}\n";
  return out.str();
}

bool Profiler::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToJson();
  return static_cast<bool>(out);
}

}  // namespace mhbench::obs
