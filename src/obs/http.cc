#include "obs/http.h"

#include <cstring>
#include <utility>

#include "core/error.h"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace mhbench::obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

#if !defined(_WIN32)

// Reads until the end of the request head ("\r\n\r\n"), a size cap, EOF or
// the receive timeout; returns what arrived.  The endpoints take no bodies,
// so the head is all that is ever needed.
std::string ReadRequestHead(int fd) {
  std::string req;
  char buf[1024];
  while (req.size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
    if (req.find("\r\n\r\n") != std::string::npos) break;
    if (req.find("\n\n") != std::string::npos) break;  // tolerant clients
  }
  return req;
}

void SendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

#endif  // !defined(_WIN32)

}  // namespace

HttpServer::HttpServer(int port, HttpHandler handler)
    : handler_(std::move(handler)) {
#if defined(_WIN32)
  (void)port;
  throw Error("live telemetry HTTP server is not supported on this platform");
#else
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw Error("http: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never listen externally
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("http: cannot bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("http: listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  thread_ = std::thread([this] { Serve(); });
#endif
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Stop() {
  if (!thread_.joinable()) return;
  stopping_.store(true, std::memory_order_relaxed);
  thread_.join();
}

void HttpServer::Serve() {
#if !defined(_WIN32)
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Bounded poll so Stop() is honored within ~100 ms even when no client
    // ever connects; accept itself never blocks indefinitely.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    timeval tv{};
    tv.tv_sec = 2;  // slow-loris bound: a stuck client cannot wedge the loop
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    const std::string head = ReadRequestHead(client);
    HttpResponse resp;
    const std::size_t line_end = head.find('\n');
    std::string method;
    std::string path;
    if (line_end != std::string::npos) {
      const std::string line = head.substr(0, line_end);
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 =
          sp1 == std::string::npos ? std::string::npos
                                   : line.find(' ', sp1 + 1);
      if (sp1 != std::string::npos && sp2 != std::string::npos) {
        method = line.substr(0, sp1);
        path = line.substr(sp1 + 1, sp2 - sp1 - 1);
        const std::size_t query = path.find('?');
        if (query != std::string::npos) path.resize(query);
      }
    }
    if (method.empty() || path.empty()) {
      resp.status = 400;
      resp.body = "bad request\n";
    } else if (method != "GET" && method != "HEAD") {
      resp.status = 405;
      resp.body = "method not allowed\n";
    } else {
      resp = handler_(path);
      if (method == "HEAD") resp.body.clear();
    }

    std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                      StatusText(resp.status) + "\r\n";
    out += "Content-Type: " + resp.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += resp.body;
    SendAll(client, out);
    ::close(client);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
#endif
}

}  // namespace mhbench::obs
