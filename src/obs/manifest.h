// Run manifests: a reproducibility record for one benchmark run.
//
// WriteRunManifest creates `<dir>/<run_id>/` containing
//   manifest.json — tool, git describe, seed, thread count, flattened
//                   config, counter totals, histogram summaries
//                   (count/sum/min/max/p50/p95/p99), and summary metrics
//   rounds.csv    — one row per (run, round) from the registry's round
//                   snapshots (counter deltas + gauges + per-round
//                   histogram quantiles)
//   clients.csv   — per-client per-round timeline (drop reason, simulated
//                   compute/comm seconds, memory, measured wall ms, bytes)
//                   when the registry collected client rows
//   profile.json  — per-op attribution table when a profiler is supplied
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mhbench::obs {

class Registry;
class Profiler;

struct RunManifest {
  std::string run_id;          // directory name; sanitized by the writer
  std::string tool;            // e.g. "mhbench run"
  std::string git_describe;    // from GitDescribe(), or "unknown"
  std::string created_utc;     // ISO-8601; from IsoTimestampUtc()
  std::uint64_t seed = 0;
  int threads = 1;
  // Flattened configuration, insertion-ordered (task, constraint, rounds,
  // clients, ...).
  std::vector<std::pair<std::string, std::string>> config;
  // Headline results, insertion-ordered (final accuracy, sim time, ...).
  std::vector<std::pair<std::string, double>> metrics;
};

// `git describe --always --dirty` in `repo_dir`; "unknown" when git or the
// repository is unavailable.
std::string GitDescribe(const std::string& repo_dir = ".");

// Current UTC time as "YYYY-MM-DDTHH:MM:SSZ".
std::string IsoTimestampUtc();

// Replaces path-hostile characters in `id` so it is safe as a directory
// name ("/", spaces, ".." and friends become "_").
std::string SanitizeRunId(const std::string& id);

// Writes manifest.json (+ rounds.csv / clients.csv when `registry` is
// non-null and collected rows, + profile.json when `profiler` is non-null)
// under `<dir>/<sanitized run_id>/`; creates directories as needed.
// Returns the run directory.  Throws mhbench::Error on I/O errors.
// Every file lands via a temp file + rename, so a killed run never leaves
// a torn manifest.
std::string WriteRunManifest(const std::string& dir, const RunManifest& m,
                             const Registry* registry,
                             const Profiler* profiler = nullptr);

// Writes `<run_dir>/rounds.csv` from the registry's round rows (atomic
// rewrite: temp file + rename).  No-op while no rounds completed.  Called
// by WriteRunManifest at end of run and, via Registry::SetRoundSink, after
// every round barrier so killed runs keep partial per-round artifacts —
// the column header is the union over all rows, so the file is rewritten
// whole each time rather than appended.  Serial phases only.
void WriteRoundsCsv(const std::string& run_dir, const Registry& registry);

}  // namespace mhbench::obs
