// Run manifests: a reproducibility record for one benchmark run.
//
// WriteRunManifest creates `<dir>/<run_id>/` containing
//   manifest.json — tool, git describe, seed, thread count, flattened
//                   config, counter totals, histogram summaries
//                   (count/sum/min/max/p50/p95/p99), per-tier rollups
//                   (the `<base>@<tier>` entries regrouped by tier), and
//                   summary metrics
//   rounds.csv    — one row per (run, round) from the registry's round
//                   snapshots (counter deltas + gauges + per-round
//                   histogram quantiles)
//   tiers.csv     — one row per (run, round, device tier): the tier-keyed
//                   counter deltas and histogram quantiles split out of
//                   the round rows (DESIGN.md §5j)
//   profile.json  — per-op attribution table when a profiler is supplied
//
// The per-client per-round timeline is no longer retained in memory or
// written here: the registry drains it into the bounded client event
// journal (obs/journal.h, clients.mhbj); `tools/mhb_journal.py csv`
// reconstructs the legacy clients.csv from the journal.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mhbench::obs {

class Registry;
class Profiler;

struct RunManifest {
  std::string run_id;          // directory name; sanitized by the writer
  std::string tool;            // e.g. "mhbench run"
  std::string git_describe;    // from GitDescribe(), or "unknown"
  std::string created_utc;     // ISO-8601; from IsoTimestampUtc()
  std::uint64_t seed = 0;
  int threads = 1;
  // Flattened configuration, insertion-ordered (task, constraint, rounds,
  // clients, ...).
  std::vector<std::pair<std::string, std::string>> config;
  // Headline results, insertion-ordered (final accuracy, sim time, ...).
  std::vector<std::pair<std::string, double>> metrics;
};

// `git describe --always --dirty` in `repo_dir`; "unknown" when git or the
// repository is unavailable.
std::string GitDescribe(const std::string& repo_dir = ".");

// Current UTC time as "YYYY-MM-DDTHH:MM:SSZ".
std::string IsoTimestampUtc();

// Replaces path-hostile characters in `id` so it is safe as a directory
// name ("/", spaces, ".." and friends become "_").
std::string SanitizeRunId(const std::string& id);

// Writes manifest.json (+ rounds.csv / tiers.csv when `registry` is
// non-null and collected rows, + profile.json when `profiler` is non-null)
// under `<dir>/<sanitized run_id>/`; creates directories as needed.
// Returns the run directory.  Throws mhbench::Error on I/O errors.
// Every file lands via a temp file + rename, so a killed run never leaves
// a torn manifest.
std::string WriteRunManifest(const std::string& dir, const RunManifest& m,
                             const Registry* registry,
                             const Profiler* profiler = nullptr);

// Writes `<run_dir>/rounds.csv` from the registry's round rows (atomic
// rewrite: temp file + rename).  No-op while no rounds completed.  Called
// by WriteRunManifest at end of run and, via Registry::SetRoundSink, after
// every round barrier so killed runs keep partial per-round artifacts —
// the column header is the union over all rows, so the file is rewritten
// whole each time rather than appended.  Serial phases only.
void WriteRoundsCsv(const std::string& run_dir, const Registry& registry);

// Writes `<run_dir>/tiers.csv`: one row per (run, round, tier) built by
// splitting the round rows' `<base>@<tier>` counter/histogram entries.
// Same atomic-rewrite and serial-phase contract as WriteRoundsCsv; no-op
// while no tier-keyed entries exist.
void WriteTiersCsv(const std::string& run_dir, const Registry& registry);

}  // namespace mhbench::obs
