// Observability wiring carried through FlConfig into the engine and the
// algorithms.  All pointers are non-owning and may be null; a null field
// disables that collector at zero cost (a branch) in the hot paths.
#pragma once

namespace mhbench::obs {

class Tracer;
class Registry;
class Profiler;
class LiveExporter;
class DetAuditor;

struct ObsConfig {
  // Wall-clock span tracing (round / dispatch / per-client / merge / eval).
  Tracer* tracer = nullptr;
  // Counter + gauge + histogram collection (bytes, FLOPs, drops, latency
  // distributions, pool utilization).
  Registry* registry = nullptr;
  // Per-op profiling (layer fwd/bwd wall time, FLOPs, scratch, allocs).
  // The engine installs it on every thread that runs client work.
  Profiler* profiler = nullptr;
  // Also emit simulated-clock spans (one lane per client) on the tracer's
  // sim track.  Requires `tracer`.
  bool sim_spans = false;
  // Live telemetry (obs/live.h): the engine notifies it at every round
  // barrier (NotifyProgress) and after every checkpoint write
  // (NotifyCheckpoint).  The exporter itself only *reads* registry state,
  // so attaching it cannot change results (DESIGN.md §5h).
  LiveExporter* live = nullptr;
  // Determinism divergence auditor (obs/det_audit.h): the engine records a
  // per-component barrier hash chain at every round barrier.  Read-only
  // over engine state, so attaching it cannot change results
  // (DESIGN.md §5k).
  DetAuditor* det_audit = nullptr;

  bool enabled() const {
    return tracer != nullptr || registry != nullptr || profiler != nullptr ||
           live != nullptr || det_audit != nullptr;
  }
};

}  // namespace mhbench::obs
