// Observability wiring carried through FlConfig into the engine and the
// algorithms.  All pointers are non-owning and may be null; a null field
// disables that collector at zero cost (a branch) in the hot paths.
#pragma once

namespace mhbench::obs {

class Tracer;
class Registry;
class Profiler;

struct ObsConfig {
  // Wall-clock span tracing (round / dispatch / per-client / merge / eval).
  Tracer* tracer = nullptr;
  // Counter + gauge + histogram collection (bytes, FLOPs, drops, latency
  // distributions, pool utilization).
  Registry* registry = nullptr;
  // Per-op profiling (layer fwd/bwd wall time, FLOPs, scratch, allocs).
  // The engine installs it on every thread that runs client work.
  Profiler* profiler = nullptr;
  // Also emit simulated-clock spans (one lane per client) on the tracer's
  // sim track.  Requires `tracer`.
  bool sim_spans = false;

  bool enabled() const {
    return tracer != nullptr || registry != nullptr || profiler != nullptr;
  }
};

}  // namespace mhbench::obs
