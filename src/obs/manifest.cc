#include "obs/manifest.h"

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "core/csv.h"
#include "core/error.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace mhbench::obs {

std::string GitDescribe(const std::string& repo_dir) {
#if defined(_WIN32)
  (void)repo_dir;
  return "unknown";
#else
  const std::string cmd =
      "git -C '" + repo_dir + "' describe --always --dirty 2>/dev/null";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return "unknown";
  char buf[256];
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  const int status = ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  if (status != 0 || out.empty()) return "unknown";
  return out;
#endif
}

std::string IsoTimestampUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string SanitizeRunId(const std::string& id) {
  std::string out;
  out.reserve(id.size());
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    out += ok ? c : '_';
  }
  // ".." (or a bare ".") must not escape the manifest dir.
  if (out.empty() || out.find_first_not_of('.') == std::string::npos) {
    out = "run";
  }
  return out;
}

namespace {

void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << "\"" << JsonEscape(s) << "\"";
}

}  // namespace

std::string WriteRunManifest(const std::string& dir, const RunManifest& m,
                             const Registry* registry) {
  namespace fs = std::filesystem;
  const fs::path run_dir = fs::path(dir) / SanitizeRunId(m.run_id);
  std::error_code ec;
  fs::create_directories(run_dir, ec);
  if (ec) {
    throw Error("cannot create manifest dir " + run_dir.string() + ": " +
                ec.message());
  }

  std::ostringstream json;
  json << "{\n";
  json << "  \"run_id\": ";
  AppendJsonString(json, SanitizeRunId(m.run_id));
  json << ",\n  \"tool\": ";
  AppendJsonString(json, m.tool);
  json << ",\n  \"git_describe\": ";
  AppendJsonString(json, m.git_describe);
  json << ",\n  \"created_utc\": ";
  AppendJsonString(json, m.created_utc);
  json << ",\n  \"seed\": " << m.seed;
  json << ",\n  \"threads\": " << m.threads;
  json << ",\n  \"config\": {";
  for (std::size_t i = 0; i < m.config.size(); ++i) {
    json << (i == 0 ? "\n" : ",\n") << "    ";
    AppendJsonString(json, m.config[i].first);
    json << ": ";
    AppendJsonString(json, m.config[i].second);
  }
  json << "\n  },\n  \"metrics\": {";
  for (std::size_t i = 0; i < m.metrics.size(); ++i) {
    json << (i == 0 ? "\n" : ",\n") << "    ";
    AppendJsonString(json, m.metrics[i].first);
    json << ": " << m.metrics[i].second;
  }
  json << "\n  },\n  \"counters\": {";
  if (registry != nullptr) {
    const auto totals = registry->Totals();
    std::size_t i = 0;
    for (const auto& [name, value] : totals) {
      json << (i++ == 0 ? "\n" : ",\n") << "    ";
      AppendJsonString(json, name);
      json << ": " << value;
    }
  }
  json << "\n  },\n  \"rounds\": " << (registry ? registry->rounds().size() : 0)
       << "\n}\n";

  const fs::path manifest_path = run_dir / "manifest.json";
  {
    std::ofstream f(manifest_path);
    if (!f.good()) throw Error("cannot open " + manifest_path.string());
    f << json.str();
    if (!f.good()) throw Error("failed writing " + manifest_path.string());
  }

  if (registry != nullptr && !registry->rounds().empty()) {
    // Column set: the union of counter and gauge names over all rows, so
    // every row renders the same schema.
    std::set<std::string> counter_cols;
    std::set<std::string> gauge_cols;
    for (const auto& row : registry->rounds()) {
      for (const auto& [k, v] : row.counters) counter_cols.insert(k);
      for (const auto& [k, v] : row.gauges) gauge_cols.insert(k);
    }
    std::vector<std::string> header = {"run", "round"};
    header.insert(header.end(), gauge_cols.begin(), gauge_cols.end());
    header.insert(header.end(), counter_cols.begin(), counter_cols.end());
    CsvWriter csv(header);
    for (const auto& row : registry->rounds()) {
      std::vector<std::string> cells = {row.run, std::to_string(row.round)};
      for (const auto& g : gauge_cols) {
        auto it = row.gauges.find(g);
        std::ostringstream v;
        if (it != row.gauges.end()) v << it->second;
        cells.push_back(v.str());
      }
      for (const auto& c : counter_cols) {
        auto it = row.counters.find(c);
        cells.push_back(
            it == row.counters.end() ? "0" : std::to_string(it->second));
      }
      csv.AddRow(cells);
    }
    const fs::path rounds_path = run_dir / "rounds.csv";
    std::ofstream f(rounds_path);
    if (!f.good()) throw Error("cannot open " + rounds_path.string());
    f << csv.ToString();
    if (!f.good()) throw Error("failed writing " + rounds_path.string());
  }

  return run_dir.string();
}

}  // namespace mhbench::obs
