#include "obs/manifest.h"

#include <cstdint>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "core/csv.h"
#include "core/error.h"
#include "obs/profile.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace mhbench::obs {

std::string GitDescribe(const std::string& repo_dir) {
#if defined(_WIN32)
  (void)repo_dir;
  return "unknown";
#else
  const std::string cmd =
      "git -C '" + repo_dir + "' describe --always --dirty 2>/dev/null";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return "unknown";
  char buf[256];
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  const int status = ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  if (status != 0 || out.empty()) return "unknown";
  return out;
#endif
}

std::string IsoTimestampUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string SanitizeRunId(const std::string& id) {
  std::string out;
  out.reserve(id.size());
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    out += ok ? c : '_';
  }
  // ".." (or a bare ".") must not escape the manifest dir.
  if (out.empty() || out.find_first_not_of('.') == std::string::npos) {
    out = "run";
  }
  return out;
}

namespace {

void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << "\"" << JsonEscape(s) << "\"";
}

std::string FormatDouble(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

// Atomic publish: write to `<path>.tmp`, then rename over `path`.  Readers
// polling the run directory (mhb_watch, the live smoke) never see a torn
// file, and a crash mid-write leaves the previous version intact.
void WriteFileAtomic(const std::filesystem::path& path,
                     const std::string& content) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream f(tmp);
    if (!f.good()) throw Error("cannot open " + tmp.string());
    f << content;
    if (!f.good()) throw Error("failed writing " + tmp.string());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw Error("cannot move " + tmp.string() + " into place: " +
                ec.message());
  }
}

}  // namespace

void WriteRoundsCsv(const std::string& run_dir, const Registry& registry) {
  if (registry.rounds().empty()) return;
  // Column set: the union of counter / gauge / histogram names over all
  // rows, so every row renders the same schema.
  std::set<std::string> counter_cols;
  std::set<std::string> gauge_cols;
  std::set<std::string> hist_cols;
  for (const auto& row : registry.rounds()) {
    for (const auto& [k, v] : row.counters) counter_cols.insert(k);
    for (const auto& [k, v] : row.gauges) gauge_cols.insert(k);
    for (const auto& [k, v] : row.hists) hist_cols.insert(k);
  }
  std::vector<std::string> header = {"run", "round"};
  header.insert(header.end(), gauge_cols.begin(), gauge_cols.end());
  header.insert(header.end(), counter_cols.begin(), counter_cols.end());
  for (const auto& h : hist_cols) {
    header.push_back(h + "_count");
    header.push_back(h + "_p50");
    header.push_back(h + "_p95");
    header.push_back(h + "_p99");
  }
  CsvWriter csv(header);
  for (const auto& row : registry.rounds()) {
    std::vector<std::string> cells = {row.run, std::to_string(row.round)};
    for (const auto& g : gauge_cols) {
      auto it = row.gauges.find(g);
      std::ostringstream v;
      if (it != row.gauges.end()) v << it->second;
      cells.push_back(v.str());
    }
    for (const auto& c : counter_cols) {
      auto it = row.counters.find(c);
      cells.push_back(
          it == row.counters.end() ? "0" : std::to_string(it->second));
    }
    for (const auto& h : hist_cols) {
      auto it = row.hists.find(h);
      if (it == row.hists.end()) {
        cells.push_back("0");
        cells.push_back("");
        cells.push_back("");
        cells.push_back("");
      } else {
        cells.push_back(std::to_string(it->second.count()));
        cells.push_back(FormatDouble(it->second.Quantile(0.50)));
        cells.push_back(FormatDouble(it->second.Quantile(0.95)));
        cells.push_back(FormatDouble(it->second.Quantile(0.99)));
      }
    }
    csv.AddRow(cells);
  }
  WriteFileAtomic(std::filesystem::path(run_dir) / "rounds.csv",
                  csv.ToString());
}

void WriteTiersCsv(const std::string& run_dir, const Registry& registry) {
  // Column set: the union of `<base>@<tier>` bases over all rows; a row is
  // emitted per (run, round, tier) seen in that round's entries.
  std::set<std::string> counter_cols;
  std::set<std::string> hist_cols;
  for (const auto& row : registry.rounds()) {
    for (const auto& [k, v] : row.counters) {
      const auto at = k.find('@');
      if (at != std::string::npos) counter_cols.insert(k.substr(0, at));
    }
    for (const auto& [k, v] : row.hists) {
      const auto at = k.find('@');
      if (at != std::string::npos) hist_cols.insert(k.substr(0, at));
    }
  }
  if (counter_cols.empty() && hist_cols.empty()) return;
  std::vector<std::string> header = {"run", "round", "tier"};
  header.insert(header.end(), counter_cols.begin(), counter_cols.end());
  for (const auto& h : hist_cols) {
    header.push_back(h + "_count");
    header.push_back(h + "_p50");
    header.push_back(h + "_p95");
    header.push_back(h + "_p99");
  }
  CsvWriter csv(header);
  for (const auto& row : registry.rounds()) {
    std::set<std::string> row_tiers;
    for (const auto& [k, v] : row.counters) {
      const auto at = k.find('@');
      if (at != std::string::npos) row_tiers.insert(k.substr(at + 1));
    }
    for (const auto& [k, v] : row.hists) {
      const auto at = k.find('@');
      if (at != std::string::npos) row_tiers.insert(k.substr(at + 1));
    }
    for (const auto& tier : row_tiers) {
      std::vector<std::string> cells = {row.run, std::to_string(row.round),
                                        tier};
      for (const auto& c : counter_cols) {
        auto it = row.counters.find(c + "@" + tier);
        cells.push_back(
            it == row.counters.end() ? "0" : std::to_string(it->second));
      }
      for (const auto& h : hist_cols) {
        auto it = row.hists.find(h + "@" + tier);
        if (it == row.hists.end()) {
          cells.push_back("0");
          cells.push_back("");
          cells.push_back("");
          cells.push_back("");
        } else {
          cells.push_back(std::to_string(it->second.count()));
          cells.push_back(FormatDouble(it->second.Quantile(0.50)));
          cells.push_back(FormatDouble(it->second.Quantile(0.95)));
          cells.push_back(FormatDouble(it->second.Quantile(0.99)));
        }
      }
      csv.AddRow(cells);
    }
  }
  WriteFileAtomic(std::filesystem::path(run_dir) / "tiers.csv",
                  csv.ToString());
}

std::string WriteRunManifest(const std::string& dir, const RunManifest& m,
                             const Registry* registry,
                             const Profiler* profiler) {
  namespace fs = std::filesystem;
  const fs::path run_dir = fs::path(dir) / SanitizeRunId(m.run_id);
  std::error_code ec;
  fs::create_directories(run_dir, ec);
  if (ec) {
    throw Error("cannot create manifest dir " + run_dir.string() + ": " +
                ec.message());
  }

  std::ostringstream json;
  json << "{\n";
  json << "  \"run_id\": ";
  AppendJsonString(json, SanitizeRunId(m.run_id));
  json << ",\n  \"tool\": ";
  AppendJsonString(json, m.tool);
  json << ",\n  \"git_describe\": ";
  AppendJsonString(json, m.git_describe);
  json << ",\n  \"created_utc\": ";
  AppendJsonString(json, m.created_utc);
  json << ",\n  \"seed\": " << m.seed;
  json << ",\n  \"threads\": " << m.threads;
  json << ",\n  \"config\": {";
  for (std::size_t i = 0; i < m.config.size(); ++i) {
    json << (i == 0 ? "\n" : ",\n") << "    ";
    AppendJsonString(json, m.config[i].first);
    json << ": ";
    AppendJsonString(json, m.config[i].second);
  }
  json << "\n  },\n  \"metrics\": {";
  for (std::size_t i = 0; i < m.metrics.size(); ++i) {
    json << (i == 0 ? "\n" : ",\n") << "    ";
    AppendJsonString(json, m.metrics[i].first);
    json << ": " << m.metrics[i].second;
  }
  json << "\n  },\n  \"counters\": {";
  if (registry != nullptr) {
    const auto totals = registry->Totals();
    std::size_t i = 0;
    for (const auto& [name, value] : totals) {
      json << (i++ == 0 ? "\n" : ",\n") << "    ";
      AppendJsonString(json, name);
      json << ": " << value;
    }
  }
  json << "\n  },\n  \"histograms\": {";
  if (registry != nullptr) {
    std::size_t i = 0;
    for (const auto& [name, h] : registry->Histograms()) {
      if (h.empty()) continue;
      json << (i++ == 0 ? "\n" : ",\n") << "    ";
      AppendJsonString(json, name);
      json << ": {\"count\":" << h.count() << ",\"sum\":" << h.sum
           << ",\"min\":" << h.min << ",\"max\":" << h.max
           << ",\"p50\":" << FormatDouble(h.Quantile(0.50))
           << ",\"p95\":" << FormatDouble(h.Quantile(0.95))
           << ",\"p99\":" << FormatDouble(h.Quantile(0.99)) << "}";
    }
  }
  // Per-tier rollups: the `<base>@<tier>` totals regrouped by tier, so
  // report tooling never has to re-split names.  The flat counters /
  // histograms objects above still carry the raw `@` entries — that keeps
  // mhb_diff's exact-counter gate covering the tier dimension for free.
  json << "\n  },\n  \"tiers\": {";
  if (registry != nullptr) {
    std::map<std::string, std::map<std::string, std::int64_t>> tier_counters;
    for (const auto& [name, value] : registry->Totals()) {
      const auto at = name.find('@');
      if (at == std::string::npos) continue;
      tier_counters[name.substr(at + 1)][name.substr(0, at)] = value;
    }
    std::map<std::string, std::map<std::string, Registry::HistogramData>>
        tier_hists;
    for (const auto& [name, h] : registry->Histograms()) {
      const auto at = name.find('@');
      if (at == std::string::npos || h.empty()) continue;
      tier_hists[name.substr(at + 1)][name.substr(0, at)] = h;
    }
    std::set<std::string> tier_names;
    for (const auto& [tier, unused] : tier_counters) tier_names.insert(tier);
    for (const auto& [tier, unused] : tier_hists) tier_names.insert(tier);
    std::size_t i = 0;
    for (const auto& tier : tier_names) {
      json << (i++ == 0 ? "\n" : ",\n") << "    ";
      AppendJsonString(json, tier);
      json << ": {\"counters\": {";
      std::size_t j = 0;
      for (const auto& [name, value] : tier_counters[tier]) {
        json << (j++ == 0 ? "" : ", ");
        AppendJsonString(json, name);
        json << ": " << value;
      }
      json << "}, \"histograms\": {";
      j = 0;
      for (const auto& [name, h] : tier_hists[tier]) {
        json << (j++ == 0 ? "" : ", ");
        AppendJsonString(json, name);
        json << ": {\"count\":" << h.count() << ",\"sum\":" << h.sum
             << ",\"p50\":" << FormatDouble(h.Quantile(0.50))
             << ",\"p95\":" << FormatDouble(h.Quantile(0.95))
             << ",\"p99\":" << FormatDouble(h.Quantile(0.99)) << "}";
      }
      json << "}}";
    }
  }
  json << "\n  },\n  \"rounds\": " << (registry ? registry->rounds().size() : 0)
       << "\n}\n";

  WriteFileAtomic(run_dir / "manifest.json", json.str());

  if (registry != nullptr) {
    WriteRoundsCsv(run_dir.string(), *registry);
    WriteTiersCsv(run_dir.string(), *registry);
  }

  if (profiler != nullptr) {
    const fs::path profile_path = run_dir / "profile.json";
    if (!profiler->WriteJson(profile_path.string())) {
      throw Error("failed writing " + profile_path.string());
    }
  }

  return run_dir.string();
}

}  // namespace mhbench::obs
