#include "obs/det_audit.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/env.h"
#include "core/error.h"

namespace mhbench::obs {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::string Hex(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
  return std::string(buf);
}

}  // namespace

void DetHash::Update(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) h_ = (h_ ^ p[i]) * kFnvPrime;
}

void DetHash::UpdateU64(std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  Update(b, sizeof(b));
}

void DetHash::UpdateI64(std::int64_t v) {
  UpdateU64(static_cast<std::uint64_t>(v));
}

void DetHash::UpdateF64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double is 8 bytes");
  std::memcpy(&bits, &v, sizeof(bits));
  UpdateU64(bits);
}

void DetHash::UpdateString(const std::string& s) {
  UpdateU64(s.size());
  Update(s.data(), s.size());
}

DetAuditor::DetAuditor(std::string path) : path_(std::move(path)) {
  if (!path_.empty()) {
    out_.open(path_, std::ios::out | std::ios::trunc);
    MHB_CHECK(out_.is_open()) << "cannot open det-audit ledger" << path_;
  }
  const std::string inject = EnvString("MHB_DET_AUDIT_INJECT", "");
  if (!inject.empty()) {
    const std::size_t at = inject.find('@');
    inject_component_ = inject.substr(0, at);
    if (at != std::string::npos) {
      inject_round_ = std::atoi(inject.c_str() + at + 1);
    }
  }
}

void DetAuditor::WriteHeader(const std::string& algorithm, std::uint64_t seed,
                             int rounds, int threads) {
  if (!out_.is_open()) return;
  out_ << "{\"det_audit\": 1, \"algorithm\": \"" << algorithm
       << "\", \"seed\": " << seed << ", \"rounds\": " << rounds
       << ", \"threads\": " << threads << "}\n";
  out_.flush();
}

void DetAuditor::RecordRound(
    int round, std::vector<std::pair<std::string, std::uint64_t>> components) {
  if (!inject_component_.empty() && round >= inject_round_) {
    for (auto& [name, hash] : components) {
      if (name == inject_component_) hash ^= 0x9E3779B97F4A7C15ULL;
    }
  }
  DetHash link;
  link.UpdateU64(chain_);
  link.UpdateI64(round);
  for (const auto& [name, hash] : components) {
    link.UpdateString(name);
    link.UpdateU64(hash);
  }
  chain_ = link.value();
  if (out_.is_open()) {
    out_ << "{\"round\": " << round << ", \"chain\": \"" << Hex(chain_)
         << "\", \"components\": {";
    bool first = true;
    for (const auto& [name, hash] : components) {
      if (!first) out_ << ", ";
      first = false;
      out_ << "\"" << name << "\": \"" << Hex(hash) << "\"";
    }
    out_ << "}}\n";
    out_.flush();
  }
  Round entry;
  entry.round = round;
  entry.chain = chain_;
  entry.components = std::move(components);
  rounds_.push_back(std::move(entry));
}

bool DetAuditor::AuditableMetric(const std::string& name) {
  if (name == "pool_tasks") return false;
  if (name.rfind("checkpoint_", 0) == 0) return false;
  const std::size_t at = name.find('@');
  const std::string base =
      at == std::string::npos ? name : name.substr(0, at);
  for (const char* suffix : {"_us", "_ms"}) {
    const std::size_t n = std::strlen(suffix);
    if (base.size() >= n && base.compare(base.size() - n, n, suffix) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace mhbench::obs
