// Scoped per-op profiler: attributes wall time, GEMM FLOPs, scratch-arena
// peak bytes, and tensor heap allocations to a tree of named scopes
// (layer forward/backward, model blocks, train/aggregate phases).
//
// Design mirrors the Tracer/Registry contract:
//   - Strictly no-op when disabled.  A ProfileScope first reads a
//     thread-local Profiler pointer; when it is null (no ProfilerThreadGuard
//     on this thread) the scope is a branch — no clock read, no allocation.
//     The conv fwd+bwd zero-allocation test runs with the profiler off and
//     must keep passing unmodified.
//   - Per-thread sinks, merged serially.  Each thread grows a private node
//     tree (find-or-create child by name-pointer compare — O(children),
//     no hashing, no locks after the thread's first scope).  Export merges
//     the per-thread trees by name at a serial point.
//   - Thread-count-independent attribution.  Every client runs wholly on
//     one thread with a deterministic scope structure, and merge sums
//     commute, so per-op counts and gemm_flops totals are bit-identical
//     across --threads 1/2/4.  Wall time is the only field that isn't.
//
// Scope names must either be string literals (stable for the program's
// lifetime) or come from Profiler::Intern — the hot path compares name
// POINTERS, not contents.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace mhbench::obs {

class Profiler {
 public:
  Profiler();
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // The calling thread's active profiler (null when profiling is off).
  // Installed by ProfilerThreadGuard, read by every ProfileScope.
  static Profiler* Current();

  // Returns a pointer with the profiler's lifetime for a dynamic name
  // (e.g. a model's block name).  The same string always returns the same
  // pointer, so interned names merge with literal names by content at
  // export and compare by pointer on the hot path.  Takes a lock; intern
  // once at setup, not per step.
  const char* Intern(const std::string& name);

  // ---- Merged views (serial phases only; merges all thread sinks) ----

  struct TreeNode {
    std::string name;
    std::int64_t count = 0;
    std::int64_t wall_ns = 0;        // inclusive
    std::int64_t child_wall_ns = 0;  // part of wall_ns spent in children
    std::int64_t gemm_flops = 0;
    std::int64_t heap_allocs = 0;
    std::int64_t scratch_peak_bytes = 0;  // max over entries
    std::vector<TreeNode> children;       // sorted by name (deterministic)
  };
  // Root node ("" name, zero stats) holding every top-level scope.
  TreeNode MergedTree() const;

  struct OpStats {
    std::int64_t count = 0;
    std::int64_t wall_ns = 0;
    std::int64_t gemm_flops = 0;
    std::int64_t heap_allocs = 0;
    std::int64_t scratch_peak_bytes = 0;  // max
  };
  // Flat per-name totals aggregated over every tree position.
  std::map<std::string, OpStats> TotalsByName() const;

  // profile.json: {"op_totals": {...}, "tree": [flame-style rows]}.
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

  // ---- Hot path (called by ProfileScope; not for direct use) ----

  struct Node {
    const char* name = nullptr;
    std::uint32_t parent = 0;
    std::uint32_t first_child = 0;   // 0 = none (node 0 is the root)
    std::uint32_t next_sibling = 0;  // 0 = none
    std::int64_t count = 0;
    std::int64_t wall_ns = 0;
    std::int64_t child_wall_ns = 0;
    std::int64_t gemm_flops = 0;
    std::int64_t heap_allocs = 0;
    std::int64_t scratch_peak_bytes = 0;
  };
  struct Sink {
    std::vector<Node> nodes;       // nodes[0] is the root
    std::uint32_t current = 0;     // innermost open scope
    Sink() : nodes(1) {}
  };

  Sink* ThreadSink() MHB_EXCLUDES(mu_);

 private:
  const std::uint64_t generation_;
  // Guards sink registration and interning.  Sink *contents* are owner-
  // thread-only on the hot path and merged at serial points, so they are
  // deliberately outside the capability (same contract as obs::Registry).
  mutable core::Mutex mu_;
  std::vector<std::unique_ptr<Sink>> sinks_ MHB_GUARDED_BY(mu_);
  std::deque<std::string> interned_storage_ MHB_GUARDED_BY(mu_);
  std::unordered_map<std::string, const char*> interned_ MHB_GUARDED_BY(mu_);
};

// Installs `profiler` as the calling thread's active profiler for the
// guard's lifetime (restores the previous one on destruction).  The engine
// places one on the main thread for the whole run and one inside every
// pooled task, so client work profiles no matter which thread runs it.
// Null is allowed and keeps profiling off.
class ProfilerThreadGuard {
 public:
  explicit ProfilerThreadGuard(Profiler* profiler);
  ~ProfilerThreadGuard();

  ProfilerThreadGuard(const ProfilerThreadGuard&) = delete;
  ProfilerThreadGuard& operator=(const ProfilerThreadGuard&) = delete;

 private:
  Profiler* prev_;
};

// RAII scope.  `name` must outlive the profiler (string literal) or be
// interned.  Nesting must be strict (LIFO), which C++ scoping guarantees.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) {
    if (Profiler* p = Profiler::Current()) Enter(p, name);
  }
  ~ProfileScope() {
    if (profiler_ != nullptr) Leave();
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  void Enter(Profiler* p, const char* name);
  void Leave();

  Profiler* profiler_ = nullptr;
  Profiler::Sink* sink_ = nullptr;
  std::uint32_t node_ = 0;
  std::uint32_t prev_ = 0;
  std::int64_t start_ns_ = 0;
  std::uint64_t flops0_ = 0;
  std::uint64_t allocs0_ = 0;
  std::size_t saved_watermark_ = 0;
};

}  // namespace mhbench::obs
