// Live telemetry exporter (DESIGN.md §5h): a background thread that
// periodically snapshots the obs Registry's *published* state and
//
//   (a) serves it over a loopback HTTP server — `/metrics` (Prometheus
//       text exposition), `/status.json` (round progress, accuracy-curve
//       tail, counters, histogram quantiles, checkpoint info), `/healthz`;
//   (b) appends a heartbeat.jsonl line every N seconds so crashed or
//       killed runs leave a partial progress record next to the manifest;
//   (c) runs a stall watchdog that flags (log + `watchdog_stalls`
//       exporter counter, optional hard exit) when no round barrier has
//       been crossed for a configurable wall-time budget.
//
// Determinism contract: the exporter is strictly READ-ONLY on obs state.
// It reads only through Registry::SnapshotTotals(), which returns flushed
// round-barrier totals under the registry lock and never touches the
// per-thread sinks; it never writes a counter, gauge or histogram into the
// registry (the stall counter lives on the exporter itself precisely so a
// watchdog firing cannot change registry totals); and nothing it computes
// feeds back into engine execution.  Enabling it therefore cannot change
// results, counters or histograms at any --threads — the parallel/resume
// determinism tests run with it attached to enforce exactly that.
//
// Wall-clock use is intentional and confined to this file plus the
// manifest writer's timestamp helper (the lint rules scope the wall-clock
// bans to everything else; see tools/lint_rules.json).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "obs/http.h"
#include "obs/registry.h"

namespace mhbench::obs {

struct LiveConfig {
  // >= 0 starts the HTTP server on 127.0.0.1:<http_port> (0 = ephemeral);
  // -1 disables it.
  int http_port = -1;
  // > 0 appends a JSONL heartbeat line to `heartbeat_path` every this many
  // wall seconds (plus one final line at Stop); <= 0 disables.
  double heartbeat_every_s = 0.0;
  std::string heartbeat_path;
  // > 0 flags a stall when no NotifyProgress arrives for this many wall
  // seconds; <= 0 disables the watchdog.
  double watchdog_stall_s = 0.0;
  // On a stall, terminate the process (after logging) instead of only
  // counting.  For unattended campaigns where a hung run should fail fast.
  bool watchdog_abort = false;
  // Test seam: when set, runs instead of the process exit on an aborting
  // stall.  Invoked on the exporter thread.
  std::function<void()> on_watchdog_abort;
  // Display-only context for /status.json and the heartbeat.
  std::string run_id;
  int rounds_total = 0;  // 0 = unknown
};

class LiveExporter {
 public:
  // Starts the loop thread (heartbeat/watchdog) and, when configured, the
  // HTTP server.  `registry` may be null (endpoints then serve only
  // exporter-local state).  HTTP bind failures are logged and leave
  // http_port() at -1 rather than failing the run: losing telemetry must
  // never lose the benchmark.
  LiveExporter(LiveConfig config, const Registry* registry);
  ~LiveExporter();

  LiveExporter(const LiveExporter&) = delete;
  LiveExporter& operator=(const LiveExporter&) = delete;

  // Stops watchdog + heartbeat + HTTP server and joins their threads.
  // Writes the final heartbeat line.  Idempotent.
  void Stop();

  // The HTTP server's bound port, or -1 when disabled/unavailable.
  int http_port() const;

  // Engine hooks, called from serial round-barrier phases only.
  // NotifyProgress marks round `completed_round` done (resets the
  // watchdog); NotifyCheckpoint records a snapshot written for resumption
  // at `next_round`.
  void NotifyProgress(int completed_round, double sim_time_s)
      MHB_EXCLUDES(mu_);
  void NotifyCheckpoint(int next_round, const std::string& path)
      MHB_EXCLUDES(mu_);

  // Rendered documents — exactly what /metrics and /status.json serve.
  // Thread-safe; also useful for tests and non-HTTP consumers.
  std::string MetricsText() const MHB_EXCLUDES(mu_);
  std::string StatusJson() const MHB_EXCLUDES(mu_);

  // Watchdog / heartbeat observability (exporter-local state; never
  // written into the registry — see the file comment).
  bool stalled() const MHB_EXCLUDES(mu_);
  std::int64_t stall_count() const MHB_EXCLUDES(mu_);
  std::int64_t heartbeat_count() const MHB_EXCLUDES(mu_);

 private:
  using Clock = std::chrono::steady_clock;

  void Loop();
  HttpResponse Handle(const std::string& path) const;
  void CheckWatchdogLocked(Clock::time_point now) MHB_REQUIRES(mu_);
  void WriteHeartbeatLocked(Clock::time_point now) MHB_REQUIRES(mu_);
  std::string MetricsTextLocked() const MHB_REQUIRES(mu_);
  std::string StatusJsonLocked() const MHB_REQUIRES(mu_);

  const LiveConfig config_;
  const Registry* const registry_;  // read-only; may be null
  const Clock::time_point start_;

  mutable core::Mutex mu_;
  std::condition_variable cv_;
  bool stop_ MHB_GUARDED_BY(mu_) = false;
  // Progress state written by the engine at round barriers.
  int last_round_ MHB_GUARDED_BY(mu_) = -1;
  double sim_time_s_ MHB_GUARDED_BY(mu_) = 0.0;
  Clock::time_point last_progress_ MHB_GUARDED_BY(mu_);
  // Watchdog + heartbeat state (exporter-local).
  bool stalled_ MHB_GUARDED_BY(mu_) = false;
  std::int64_t stalls_ MHB_GUARDED_BY(mu_) = 0;
  std::int64_t heartbeats_ MHB_GUARDED_BY(mu_) = 0;
  Clock::time_point last_heartbeat_ MHB_GUARDED_BY(mu_);
  // Checkpoint info for /status.json.
  std::int64_t checkpoints_written_ MHB_GUARDED_BY(mu_) = 0;
  int checkpoint_next_round_ MHB_GUARDED_BY(mu_) = -1;
  std::string checkpoint_path_ MHB_GUARDED_BY(mu_);

  std::thread loop_thread_;
  std::unique_ptr<HttpServer> server_;
};

}  // namespace mhbench::obs
