// Counter/gauge/histogram registry with deterministic parallel aggregation.
//
// Counters are 64-bit integers (bytes, FLOPs, drops, task counts) that may
// be incremented from any thread between round barriers: each thread writes
// into a private sink (no locks, no atomics on the hot path after the
// thread's first Add) and the engine merges all sinks serially at the round
// barrier.  Integer addition is order-independent, so totals are identical
// for any thread count — determinism is untouched.
//
// Histograms are fixed log2-bucketed int64 distributions (latency µs,
// bytes, batch sizes).  Observe() lands in the calling thread's sink like
// counters; bucket counts, sums and min/max all merge with commutative
// operations, so bucket totals are thread-count independent too.  Quantiles
// (p50/p95/p99) are derived from the bucket counts at export time by linear
// interpolation inside the crossing bucket, clamped to the observed
// [min, max] — never tracked online.
//
// Gauges are doubles (simulated time, wall time, accuracy) set only from
// serial phases.
//
// EndRound snapshots the per-round counter deltas, histogram deltas and the
// round's gauges into a row; the manifest writer turns the rows into
// rounds.csv.  AddClientRow (serial phases only) stages the per-client
// per-round timeline; EndRound drains the staged rows into the installed
// client-row sink (obs/journal) — or discards them when no sink is
// installed — so client-row memory is bounded by one round's cohort, never
// O(fleet x rounds).
//
// Tier-keyed rollups (DESIGN.md §5j) are ordinary counters/histograms named
// `<base>@<tier>` (e.g. "clients_trained@mem16g"); '@' never appears in
// untiered names, so exporters can split on it to recover the (base, tier)
// pair while every registry mechanism (sinks, barriers, round rows,
// checkpoint import) applies unchanged.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace mhbench::obs {

class Registry {
 public:
  using CounterId = std::size_t;
  using HistogramId = std::size_t;

  // Bucket 0 holds v <= 0; bucket b in [1, 63] holds v in [2^(b-1), 2^b).
  static constexpr int kHistogramBuckets = 64;

  // Bucket index for a value: 0 for v <= 0, otherwise bit_width(v).
  static int BucketIndex(std::int64_t v);
  // Inclusive lower / upper bound of a bucket (0/0 for bucket 0).
  static std::int64_t BucketLo(int bucket);
  static std::int64_t BucketHi(int bucket);

  // One histogram's merged state.  All fields combine with commutative,
  // associative operations (+, min, max), so merged totals are independent
  // of thread count and merge order.
  struct HistogramData {
    std::array<std::int64_t, kHistogramBuckets> buckets{};
    std::int64_t sum = 0;
    std::int64_t min = 0;  // valid only when count() > 0
    std::int64_t max = 0;  // valid only when count() > 0

    std::int64_t count() const;
    void Observe(std::int64_t v);
    void Merge(const HistogramData& other);
    // q in [0, 1]; linear interpolation within the crossing bucket, clamped
    // to [min, max].  0 when empty.
    double Quantile(double q) const;
    bool empty() const { return count() == 0; }
  };

  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Registers (or looks up) a counter and returns its id.  Thread-safe,
  // but intended for serial setup phases; ids are stable for the
  // registry's lifetime.
  CounterId Counter(const std::string& name);

  // Adds `delta` to the counter.  Safe to call concurrently from any
  // thread; the value lands in the calling thread's sink until the next
  // barrier merge.  Must not race with FlushThreadSinks/EndRound (the
  // engine only merges at round barriers, when no client work is running).
  void Add(CounterId id, std::int64_t delta);

  // Serial convenience: register + add in one call.
  void AddNamed(const std::string& name, std::int64_t delta);

  // Registers (or looks up) a histogram; same threading contract as
  // Counter.  Histogram and counter names are independent namespaces.
  HistogramId Histogram(const std::string& name);

  // Records one observation.  Same threading contract as Add.
  void Observe(HistogramId id, std::int64_t value);

  // Serial convenience: register + observe in one call.
  void ObserveNamed(const std::string& name, std::int64_t value);

  // Sets a gauge for the current round.  Serial phases only.
  void SetGauge(const std::string& name, double value);

  // Merges every thread sink into the global totals.  Serial barrier only.
  void FlushThreadSinks() MHB_EXCLUDES(mu_);

  // Flushes sinks, then snapshots this round's counter/histogram deltas and
  // gauges into a row labelled (`run`, `round`).  Serial barrier only.
  void EndRound(const std::string& run, int round) MHB_EXCLUDES(mu_);

  // Total for a counter (0 if never registered).  Includes only flushed
  // sink contributions.
  std::int64_t Total(const std::string& name) const;
  std::map<std::string, std::int64_t> Totals() const;

  // Merged state of one histogram (empty data if never registered) / all
  // histograms.  Includes only flushed sink contributions.
  HistogramData HistogramTotals(const std::string& name) const;
  std::map<std::string, HistogramData> Histograms() const;

  // Checkpoint restore (fl/checkpoint): folds previously exported counter
  // deltas and histogram state into the whole-run totals.  Counter imports
  // also advance the per-round delta base, and histogram imports skip the
  // per-round accumulator, so imported history never appears in any
  // subsequent EndRound row — resumed runs report whole-campaign totals
  // but only their own rounds.  Serial phases only.
  void ImportTotals(const std::map<std::string, std::int64_t>& counters,
                    const std::map<std::string, HistogramData>& hists)
      MHB_EXCLUDES(mu_);

  struct RoundRow {
    std::string run;  // run label (the engine uses the algorithm name)
    int round = 0;
    std::map<std::string, std::int64_t> counters;  // deltas for this round
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramData> hists;  // this round's observations
  };
  // Lock-free read of guarded state: legal because it is called only from
  // serial phases (manifest export), when no sink writer is live.
  const std::vector<RoundRow>& rounds() const MHB_NO_THREAD_SAFETY_ANALYSIS {
    return rounds_;
  }

  // Installs a callback invoked after every EndRound with the row just
  // published (outside the registry lock, on the barrier thread, so the
  // sink may call back into registry accessors).  The CLI uses it to
  // stream rounds.csv incrementally.  Serial phases only; pass an empty
  // function to uninstall.
  void SetRoundSink(std::function<void(const RoundRow&)> sink)
      MHB_EXCLUDES(mu_);

  // Lock-bounded cross-thread view of the *published* state: flushed
  // counter/histogram totals plus the last completed round's label, gauges
  // and the accuracy-curve points gathered from the round rows.  Reads only
  // mutex-guarded merged state — never the per-thread sinks — so it is safe
  // to call from a background exporter thread while client work is running;
  // it simply cannot observe anything that has not crossed a round barrier
  // yet.  Strictly read-only: the live exporter's determinism contract
  // (DESIGN.md §5h) depends on this being the only registry surface it
  // touches.
  struct LiveSnapshot {
    std::map<std::string, std::int64_t> counters;    // flushed totals
    std::map<std::string, HistogramData> hists;      // flushed, non-empty
    int last_round = -1;                   // -1 before the first EndRound
    std::string last_run;                  // last round row's run label
    std::map<std::string, double> last_gauges;  // last round row's gauges
    std::size_t rounds_completed = 0;      // number of EndRound rows
    double sim_time_s = 0.0;               // last row's sim_time_s gauge
    // (round, global_acc) for every row that carried an evaluation.
    std::vector<std::pair<int, double>> accuracy;
  };
  LiveSnapshot SnapshotTotals() const MHB_EXCLUDES(mu_);

  // One sampled client in one round: the cost model's simulated clock
  // joined with the measured wall time and the round's drop decision.
  struct ClientRow {
    std::string run;
    int round = 0;
    int client = 0;
    std::string device_tier;  // "" = untiered (DESIGN.md §5j taxonomy)
    std::string drop_reason;  // "" (trained), "offline", "straggler"
    double sim_compute_s = 0.0;
    double sim_comm_s = 0.0;
    double memory_mb = 0.0;
    double wall_ms = 0.0;  // measured local-training wall time; 0 if dropped
    std::int64_t bytes_up = 0;
    std::int64_t bytes_down = 0;
    std::int64_t train_mflops = 0;
  };
  // Stages one client's row for the current round.  Serial phases only (the
  // engine appends at the round barrier); EndRound drains the staged rows.
  void AddClientRow(ClientRow row) MHB_EXCLUDES(mu_);

  // Installs the per-round client-row drain, invoked by EndRound with the
  // round's staged rows (outside the registry lock, on the barrier thread).
  // Rows staged while no sink is installed are discarded at the barrier —
  // staging memory is bounded by one round's cohort either way.  The CLI
  // wires this to a ClientJournalWriter.  Serial phases only; pass an empty
  // function to uninstall.
  void SetClientRowSink(std::function<void(std::vector<ClientRow>&&)> sink)
      MHB_EXCLUDES(mu_);

 private:
  struct Sink {
    std::vector<std::int64_t> values;  // indexed by CounterId
    std::vector<HistogramData> hists;  // indexed by HistogramId
  };

  Sink* ThreadSink() MHB_EXCLUDES(mu_);
  void FlushLocked() MHB_REQUIRES(mu_);

  const std::uint64_t generation_;
  // Guards all registration/merge state below.  Sink *contents* are
  // deliberately unguarded: each Sink is written by its owning thread only
  // and read by the serial barrier merge (FlushLocked), which cannot run
  // concurrently with client work by the engine's round-barrier contract.
  mutable core::Mutex mu_;
  std::vector<std::string> names_ MHB_GUARDED_BY(mu_);
  std::unordered_map<std::string, CounterId> ids_ MHB_GUARDED_BY(mu_);
  // Flushed totals, by id.
  std::vector<std::int64_t> totals_ MHB_GUARDED_BY(mu_);
  // Totals at the last EndRound.
  std::vector<std::int64_t> round_base_ MHB_GUARDED_BY(mu_);
  std::vector<std::string> hist_names_ MHB_GUARDED_BY(mu_);
  std::unordered_map<std::string, HistogramId> hist_ids_ MHB_GUARDED_BY(mu_);
  // Flushed, by histogram id.
  std::vector<HistogramData> hist_totals_ MHB_GUARDED_BY(mu_);
  // Since the last EndRound.
  std::vector<HistogramData> hist_round_ MHB_GUARDED_BY(mu_);
  // Current round's gauges.
  std::map<std::string, double> gauges_ MHB_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Sink>> sinks_ MHB_GUARDED_BY(mu_);
  std::vector<RoundRow> rounds_ MHB_GUARDED_BY(mu_);
  // Staged rows for the round in flight; drained (or discarded) by every
  // EndRound, so this never grows past one round's cohort.
  std::vector<ClientRow> client_rows_ MHB_GUARDED_BY(mu_);
  std::function<void(const RoundRow&)> round_sink_ MHB_GUARDED_BY(mu_);
  std::function<void(std::vector<ClientRow>&&)> client_row_sink_
      MHB_GUARDED_BY(mu_);
};

}  // namespace mhbench::obs
