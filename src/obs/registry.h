// Counter/gauge registry with deterministic parallel aggregation.
//
// Counters are 64-bit integers (bytes, FLOPs, drops, task counts) that may
// be incremented from any thread between round barriers: each thread writes
// into a private sink (no locks, no atomics on the hot path after the
// thread's first Add) and the engine merges all sinks serially at the round
// barrier.  Integer addition is order-independent, so totals are identical
// for any thread count — determinism is untouched.
//
// Gauges are doubles (simulated time, wall time, accuracy) set only from
// serial phases.
//
// EndRound snapshots the per-round counter deltas plus the round's gauges
// into a row; the manifest writer turns the rows into rounds.csv.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace mhbench::obs {

class Registry {
 public:
  using CounterId = std::size_t;

  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Registers (or looks up) a counter and returns its id.  Thread-safe,
  // but intended for serial setup phases; ids are stable for the
  // registry's lifetime.
  CounterId Counter(const std::string& name);

  // Adds `delta` to the counter.  Safe to call concurrently from any
  // thread; the value lands in the calling thread's sink until the next
  // barrier merge.  Must not race with FlushThreadSinks/EndRound (the
  // engine only merges at round barriers, when no client work is running).
  void Add(CounterId id, std::int64_t delta);

  // Serial convenience: register + add in one call.
  void AddNamed(const std::string& name, std::int64_t delta);

  // Sets a gauge for the current round.  Serial phases only.
  void SetGauge(const std::string& name, double value);

  // Merges every thread sink into the global totals.  Serial barrier only.
  void FlushThreadSinks();

  // Flushes sinks, then snapshots this round's counter deltas and gauges
  // into a row labelled (`run`, `round`).  Serial barrier only.
  void EndRound(const std::string& run, int round);

  // Total for a counter (0 if never registered).  Includes only flushed
  // sink contributions.
  std::int64_t Total(const std::string& name) const;
  std::map<std::string, std::int64_t> Totals() const;

  struct RoundRow {
    std::string run;  // run label (the engine uses the algorithm name)
    int round = 0;
    std::map<std::string, std::int64_t> counters;  // deltas for this round
    std::map<std::string, double> gauges;
  };
  const std::vector<RoundRow>& rounds() const { return rounds_; }

 private:
  struct Sink {
    std::vector<std::int64_t> values;  // indexed by CounterId
  };

  Sink* ThreadSink();
  void FlushLocked();

  const std::uint64_t generation_;
  mutable std::mutex mu_;  // guards everything below
  std::vector<std::string> names_;
  std::unordered_map<std::string, CounterId> ids_;
  std::vector<std::int64_t> totals_;      // flushed totals, by id
  std::vector<std::int64_t> round_base_;  // totals at the last EndRound
  std::map<std::string, double> gauges_;  // current round's gauges
  std::vector<std::unique_ptr<Sink>> sinks_;
  std::vector<RoundRow> rounds_;
};

}  // namespace mhbench::obs
