// Determinism divergence auditor (DESIGN.md §5k).  Under --det-audit the
// engine computes, at each serial round barrier, a 64-bit FNV-1a hash per
// state component — the root RNG stream, the thread-count-independent
// counter/histogram totals, and the algorithm's SaveState bytes (which
// carry the model parameters per store) — folds them into a running chain,
// and appends one JSON line per round to a det_audit.jsonl ledger.
// tools/mhb_bisect.py diffs two ledgers (e.g. a --threads 1 and a
// --threads 4 run of the same config) and names the first divergent round
// and component, turning a failed bit-determinism sweep from "bits differ
// somewhere" into a one-line localization.
//
// The auditor only *reads* engine state (SaveState is const, totals are
// snapshots), so attaching it cannot change results; smoke_det_audit in
// tools/check.sh asserts manifest counters and journal bytes stay
// bit-identical with the auditor on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace mhbench::obs {

// Incremental 64-bit FNV-1a.  Integers fold little-endian at a fixed
// width, so values hash identically regardless of how the caller chunks
// its updates, and ledgers compare across builds.
class DetHash {
 public:
  void Update(const void* data, std::size_t n);
  void UpdateU64(std::uint64_t v);
  void UpdateI64(std::int64_t v);
  void UpdateF64(double v);  // bit pattern, so -0.0 != 0.0 is visible
  void UpdateString(const std::string& s);  // length-prefixed
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;  // FNV offset basis
};

class DetAuditor {
 public:
  // One ledger row: the per-component hashes of a round barrier plus the
  // chain value after folding them in.  Kept in memory as well as in the
  // ledger file so tests compare rounds without re-parsing JSON.
  struct Round {
    int round = 0;
    std::uint64_t chain = 0;
    std::vector<std::pair<std::string, std::uint64_t>> components;
  };

  // Empty path = in-memory only (tests); otherwise the ledger file is
  // truncated and streamed line by line.  The constructor reads the
  // MHB_DET_AUDIT_INJECT env var ("<component>" or "<component>@<round>"),
  // a deliberate-divergence test seam: the named component's hash is
  // XOR-perturbed from the given round on, so the bisect workflow can be
  // exercised end to end without a real determinism bug.
  explicit DetAuditor(std::string path = std::string());

  // Optional metadata line (written first).  `threads` is metadata only —
  // mhb_bisect.py ignores it when pairing ledgers, which is the point:
  // ledgers from different thread counts must otherwise match.
  void WriteHeader(const std::string& algorithm, std::uint64_t seed,
                   int rounds, int threads);

  // Folds one barrier's component hashes (in the given, fixed order) into
  // the chain and appends the ledger row.  Serial-phase only, like every
  // other barrier-side obs call.
  void RecordRound(
      int round,
      std::vector<std::pair<std::string, std::uint64_t>> components);

  const std::vector<Round>& rounds() const { return rounds_; }
  std::uint64_t chain() const { return chain_; }
  const std::string& path() const { return path_; }

  // Counters/histograms that enter the audit hash.  Excludes the metrics
  // that are legitimately run-dependent: pool_tasks (scheduling), wall-time
  // metrics (*_us / *_ms, tiered or not) and checkpoint_* I/O counters
  // (present only when checkpointing, and offset by one round between a
  // full and a resumed run).  Mirrors the exclusions the determinism
  // sweeps apply to manifest totals.
  static bool AuditableMetric(const std::string& name);

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t chain_ = 14695981039346656037ULL;
  std::vector<Round> rounds_;
  std::string inject_component_;  // empty = seam off
  int inject_round_ = 0;
};

}  // namespace mhbench::obs
