#include "obs/live.h"

#include <algorithm>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "core/error.h"
#include "core/logging.h"
#include "obs/manifest.h"
#include "obs/trace.h"

namespace mhbench::obs {

namespace {

std::string FmtD(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

// Prometheus metric names allow [a-zA-Z0-9_:]; registry counter names are
// already lowercase identifiers, but sanitize defensively.
std::string MetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

// Wall-clock epoch seconds for heartbeat lines.  This is the exporter's
// one legitimate wall-time read outside steady_clock intervals: heartbeat
// records must be correlatable with external logs, and nothing derived
// from it ever reaches engine execution.
std::int64_t UnixSeconds() {
  // mhb-lint: allow(no-time-call) -- heartbeat timestamps are operator telemetry only, never fed back into the simulation
  return static_cast<std::int64_t>(std::time(nullptr));
}

}  // namespace

LiveExporter::LiveExporter(LiveConfig config, const Registry* registry)
    : config_(std::move(config)),
      registry_(registry),
      start_(Clock::now()) {
  {
    core::MutexLock lock(mu_);
    last_progress_ = start_;
    last_heartbeat_ = start_;
  }
  if (config_.http_port >= 0) {
    try {
      server_ = std::make_unique<HttpServer>(
          config_.http_port,
          [this](const std::string& path) { return Handle(path); });
    } catch (const Error& e) {
      // Telemetry must never take the run down with it.
      MHB_LOG_WARN << "live telemetry: HTTP server disabled: " << e.what();
      server_ = nullptr;
    }
  }
  const bool heartbeat =
      config_.heartbeat_every_s > 0 && !config_.heartbeat_path.empty();
  if (heartbeat || config_.watchdog_stall_s > 0) {
    loop_thread_ = std::thread([this] { Loop(); });
  }
}

LiveExporter::~LiveExporter() { Stop(); }

void LiveExporter::Stop() {
  bool was_stopped = false;
  {
    core::MutexLock lock(mu_);
    was_stopped = stop_;
    stop_ = true;
    if (!was_stopped && config_.heartbeat_every_s > 0 &&
        !config_.heartbeat_path.empty()) {
      // Final heartbeat so even sub-interval runs leave a parseable record.
      WriteHeartbeatLocked(Clock::now());
    }
  }
  cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();
  if (server_ != nullptr) server_->Stop();
}

int LiveExporter::http_port() const {
  return server_ != nullptr ? server_->port() : -1;
}

void LiveExporter::NotifyProgress(int completed_round, double sim_time_s) {
  core::MutexLock lock(mu_);
  last_round_ = std::max(last_round_, completed_round);
  sim_time_s_ = sim_time_s;
  last_progress_ = Clock::now();
  if (stalled_) {
    stalled_ = false;
    MHB_LOG_INFO << "watchdog: round progress resumed at round "
                 << completed_round;
  }
}

void LiveExporter::NotifyCheckpoint(int next_round, const std::string& path) {
  core::MutexLock lock(mu_);
  ++checkpoints_written_;
  checkpoint_next_round_ = next_round;
  checkpoint_path_ = path;
}

bool LiveExporter::stalled() const {
  core::MutexLock lock(mu_);
  return stalled_;
}

std::int64_t LiveExporter::stall_count() const {
  core::MutexLock lock(mu_);
  return stalls_;
}

std::int64_t LiveExporter::heartbeat_count() const {
  core::MutexLock lock(mu_);
  return heartbeats_;
}

void LiveExporter::Loop() {
  std::chrono::milliseconds tick(200);
  if (config_.heartbeat_every_s > 0) {
    tick = std::min(tick, std::chrono::milliseconds(std::max(
                              1, static_cast<int>(
                                     config_.heartbeat_every_s * 500))));
  }
  if (config_.watchdog_stall_s > 0) {
    tick = std::min(tick, std::chrono::milliseconds(std::max(
                              1, static_cast<int>(
                                     config_.watchdog_stall_s * 250))));
  }
  tick = std::max(tick, std::chrono::milliseconds(2));

  core::MutexLock lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock.native(), tick);
    if (stop_) break;
    const Clock::time_point now = Clock::now();
    if (config_.watchdog_stall_s > 0) CheckWatchdogLocked(now);
    if (config_.heartbeat_every_s > 0 && !config_.heartbeat_path.empty() &&
        std::chrono::duration<double>(now - last_heartbeat_).count() >=
            config_.heartbeat_every_s) {
      WriteHeartbeatLocked(now);
    }
  }
}

void LiveExporter::CheckWatchdogLocked(Clock::time_point now) {
  const double age =
      std::chrono::duration<double>(now - last_progress_).count();
  if (age <= config_.watchdog_stall_s || stalled_) return;
  stalled_ = true;
  ++stalls_;
  MHB_LOG_WARN << "watchdog: no round-barrier progress for " << age
               << " s (budget " << config_.watchdog_stall_s
               << " s), last completed round " << last_round_;
  if (config_.watchdog_abort) {
    // Terminal heartbeat before the abort: Stop() never runs on this path,
    // so without it the stream's last line predates the stall — flush one
    // carrying stalled=true so post-mortem tooling sees how the run ended.
    if (config_.heartbeat_every_s > 0 && !config_.heartbeat_path.empty()) {
      WriteHeartbeatLocked(now);
    }
    if (config_.on_watchdog_abort) {
      config_.on_watchdog_abort();
    } else {
      MHB_LOG_ERROR << "watchdog: aborting stalled run (--watchdog-abort)";
      std::_Exit(3);
    }
  }
}

void LiveExporter::WriteHeartbeatLocked(Clock::time_point now) {
  const Registry::LiveSnapshot snap = registry_ != nullptr
                                          ? registry_->SnapshotTotals()
                                          : Registry::LiveSnapshot{};
  auto counter = [&](const char* name) -> std::int64_t {
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  std::ostringstream line;
  line << "{\"seq\":" << heartbeats_ << ",\"utc\":\""
       << JsonEscape(IsoTimestampUtc()) << "\",\"unix_s\":" << UnixSeconds()
       << ",\"uptime_s\":"
       << FmtD(std::chrono::duration<double>(now - start_).count())
       << ",\"run_id\":\"" << JsonEscape(config_.run_id) << "\",\"run\":\""
       << JsonEscape(snap.last_run) << "\",\"round\":" << last_round_
       << ",\"rounds_completed\":" << snap.rounds_completed
       << ",\"rounds_total\":" << config_.rounds_total
       << ",\"sim_time_s\":" << FmtD(sim_time_s_)
       << ",\"clients_trained\":" << counter("clients_trained")
       << ",\"bytes_up\":" << counter("bytes_up");
  if (!snap.accuracy.empty()) {
    line << ",\"global_acc\":" << FmtD(snap.accuracy.back().second);
  }
  line << ",\"checkpoints_written\":" << checkpoints_written_
       << ",\"stalled\":" << (stalled_ ? "true" : "false")
       << ",\"watchdog_stalls\":" << stalls_ << "}\n";

  std::ofstream f(config_.heartbeat_path, std::ios::app);
  if (f.good()) {
    f << line.str();
    ++heartbeats_;
    last_heartbeat_ = now;
  } else {
    // Complain once per run at most would need extra state; WARN is cheap
    // at heartbeat cadence and the condition is an operator misconfig.
    MHB_LOG_WARN << "live telemetry: cannot append heartbeat to "
                 << config_.heartbeat_path;
  }
}

std::string LiveExporter::MetricsText() const {
  core::MutexLock lock(mu_);
  return MetricsTextLocked();
}

std::string LiveExporter::MetricsTextLocked() const {
  const Registry::LiveSnapshot snap = registry_ != nullptr
                                          ? registry_->SnapshotTotals()
                                          : Registry::LiveSnapshot{};
  std::ostringstream out;
  out << "# mhbench live telemetry (Prometheus text exposition 0.0.4)\n";
  out << "# TYPE mhb_up gauge\nmhb_up 1\n";
  out << "# TYPE mhb_rounds_completed counter\nmhb_rounds_completed "
      << snap.rounds_completed << "\n";
  out << "# TYPE mhb_last_round gauge\nmhb_last_round " << last_round_
      << "\n";
  out << "# TYPE mhb_sim_time_seconds gauge\nmhb_sim_time_seconds "
      << FmtD(sim_time_s_) << "\n";
  if (!snap.accuracy.empty()) {
    out << "# TYPE mhb_global_accuracy gauge\nmhb_global_accuracy "
        << FmtD(snap.accuracy.back().second) << "\n";
  }
  out << "# TYPE mhb_heartbeats counter\nmhb_heartbeats " << heartbeats_
      << "\n";
  out << "# TYPE mhb_watchdog_stalls counter\nmhb_watchdog_stalls "
      << stalls_ << "\n";
  out << "# TYPE mhb_stalled gauge\nmhb_stalled " << (stalled_ ? 1 : 0)
      << "\n";
  out << "# TYPE mhb_checkpoints_written counter\nmhb_checkpoints_written "
      << checkpoints_written_ << "\n";
  // Tier-keyed registry entries (`<base>@<tier>`, DESIGN.md §5j) render as
  // the base metric with a Prometheus `tier` label; untiered entries render
  // exactly as before.  The snapshot map is name-sorted, so a base and its
  // tier variants are adjacent and the TYPE line dedup below emits one
  // header per metric family.
  std::string last_type;
  auto type_line = [&](const std::string& metric, const char* kind) {
    if (metric != last_type) {
      out << "# TYPE " << metric << " " << kind << "\n";
      last_type = metric;
    }
  };
  for (const auto& [name, value] : snap.counters) {
    const auto at = name.find('@');
    if (at == std::string::npos) {
      const std::string metric = "mhb_counter_" + MetricName(name);
      type_line(metric, "counter");
      out << metric << " " << value << "\n";
    } else {
      const std::string metric =
          "mhb_counter_" + MetricName(name.substr(0, at));
      type_line(metric, "counter");
      out << metric << "{tier=\"" << JsonEscape(name.substr(at + 1))
          << "\"} " << value << "\n";
    }
  }
  last_type.clear();
  for (const auto& [name, h] : snap.hists) {
    const auto at = name.find('@');
    const std::string base = at == std::string::npos ? name : name.substr(0, at);
    const std::string tier =
        at == std::string::npos ? "" : JsonEscape(name.substr(at + 1));
    const std::string metric = "mhb_hist_" + MetricName(base);
    type_line(metric, "summary");
    auto label = [&](const char* quantile) {
      std::string l = "{";
      if (!tier.empty()) l += "tier=\"" + tier + "\",";
      l += "quantile=\"" + std::string(quantile) + "\"}";
      return l;
    };
    const std::string suffix_labels =
        tier.empty() ? "" : "{tier=\"" + tier + "\"}";
    out << metric << label("0.5") << " " << FmtD(h.Quantile(0.50)) << "\n";
    out << metric << label("0.95") << " " << FmtD(h.Quantile(0.95))
        << "\n";
    out << metric << label("0.99") << " " << FmtD(h.Quantile(0.99))
        << "\n";
    out << metric << "_sum" << suffix_labels << " " << h.sum << "\n";
    out << metric << "_count" << suffix_labels << " " << h.count() << "\n";
  }
  return out.str();
}

std::string LiveExporter::StatusJson() const {
  core::MutexLock lock(mu_);
  return StatusJsonLocked();
}

std::string LiveExporter::StatusJsonLocked() const {
  const Registry::LiveSnapshot snap = registry_ != nullptr
                                          ? registry_->SnapshotTotals()
                                          : Registry::LiveSnapshot{};
  const Clock::time_point now = Clock::now();
  std::ostringstream out;
  out << "{\n";
  out << "  \"run_id\": \"" << JsonEscape(config_.run_id) << "\",\n";
  out << "  \"run\": \"" << JsonEscape(snap.last_run) << "\",\n";
  out << "  \"rounds_completed\": " << snap.rounds_completed << ",\n";
  out << "  \"last_round\": " << last_round_ << ",\n";
  out << "  \"rounds_total\": " << config_.rounds_total << ",\n";
  out << "  \"sim_time_s\": " << FmtD(sim_time_s_) << ",\n";
  out << "  \"uptime_s\": "
      << FmtD(std::chrono::duration<double>(now - start_).count()) << ",\n";
  out << "  \"progress_age_s\": "
      << FmtD(std::chrono::duration<double>(now - last_progress_).count())
      << ",\n";
  out << "  \"stalled\": " << (stalled_ ? "true" : "false") << ",\n";
  out << "  \"watchdog_stalls\": " << stalls_ << ",\n";
  out << "  \"heartbeats\": " << heartbeats_ << ",\n";
  // Accuracy-curve tail: the last few evaluated points, oldest first.
  out << "  \"accuracy\": [";
  const std::size_t tail =
      snap.accuracy.size() > 32 ? snap.accuracy.size() - 32 : 0;
  for (std::size_t i = tail; i < snap.accuracy.size(); ++i) {
    out << (i == tail ? "" : ", ") << "[" << snap.accuracy[i].first << ", "
        << FmtD(snap.accuracy[i].second) << "]";
  }
  out << "],\n";
  // Tier-keyed entries (`<base>@<tier>`) are regrouped under "tiers";
  // the flat counters / histograms objects stay tier-free so their schema
  // is unchanged for existing pollers.
  out << "  \"counters\": {";
  {
    std::size_t i = 0;
    for (const auto& [name, value] : snap.counters) {
      if (name.find('@') != std::string::npos) continue;
      out << (i++ == 0 ? "\n" : ",\n") << "    \"" << JsonEscape(name)
          << "\": " << value;
    }
  }
  out << "\n  },\n";
  out << "  \"histograms\": {";
  {
    std::size_t i = 0;
    for (const auto& [name, h] : snap.hists) {
      if (name.find('@') != std::string::npos) continue;
      out << (i++ == 0 ? "\n" : ",\n") << "    \"" << JsonEscape(name)
          << "\": {\"count\":" << h.count() << ",\"sum\":" << h.sum
          << ",\"min\":" << h.min << ",\"max\":" << h.max
          << ",\"p50\":" << FmtD(h.Quantile(0.50))
          << ",\"p95\":" << FmtD(h.Quantile(0.95))
          << ",\"p99\":" << FmtD(h.Quantile(0.99)) << "}";
    }
  }
  out << "\n  },\n";
  out << "  \"tiers\": {";
  {
    std::map<std::string, std::map<std::string, std::int64_t>> tc;
    for (const auto& [name, value] : snap.counters) {
      const auto at = name.find('@');
      if (at == std::string::npos) continue;
      tc[name.substr(at + 1)][name.substr(0, at)] = value;
    }
    std::map<std::string, std::map<std::string, Registry::HistogramData>> th;
    for (const auto& [name, h] : snap.hists) {
      const auto at = name.find('@');
      if (at == std::string::npos) continue;
      th[name.substr(at + 1)][name.substr(0, at)] = h;
    }
    std::set<std::string> tiers;
    for (const auto& [tier, unused] : tc) tiers.insert(tier);
    for (const auto& [tier, unused] : th) tiers.insert(tier);
    std::size_t i = 0;
    for (const auto& tier : tiers) {
      out << (i++ == 0 ? "\n" : ",\n") << "    \"" << JsonEscape(tier)
          << "\": {\"counters\": {";
      std::size_t j = 0;
      for (const auto& [name, value] : tc[tier]) {
        out << (j++ == 0 ? "" : ", ") << "\"" << JsonEscape(name)
            << "\": " << value;
      }
      out << "}, \"histograms\": {";
      j = 0;
      for (const auto& [name, h] : th[tier]) {
        out << (j++ == 0 ? "" : ", ") << "\"" << JsonEscape(name)
            << "\": {\"count\":" << h.count()
            << ",\"p50\":" << FmtD(h.Quantile(0.50))
            << ",\"p95\":" << FmtD(h.Quantile(0.95))
            << ",\"p99\":" << FmtD(h.Quantile(0.99)) << "}";
      }
      out << "}}";
    }
  }
  out << "\n  },\n";
  out << "  \"gauges\": {";
  {
    std::size_t i = 0;
    for (const auto& [name, value] : snap.last_gauges) {
      out << (i++ == 0 ? "\n" : ",\n") << "    \"" << JsonEscape(name)
          << "\": " << FmtD(value);
    }
  }
  out << "\n  },\n";
  out << "  \"checkpoint\": {\"written\": " << checkpoints_written_
      << ", \"next_round\": " << checkpoint_next_round_ << ", \"path\": \""
      << JsonEscape(checkpoint_path_) << "\"}\n";
  out << "}\n";
  return out.str();
}

HttpResponse LiveExporter::Handle(const std::string& path) const {
  HttpResponse resp;
  if (path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = MetricsText();
  } else if (path == "/status.json" || path == "/status") {
    resp.content_type = "application/json";
    resp.body = StatusJson();
  } else if (path == "/healthz") {
    if (stalled()) {
      resp.status = 503;
      resp.body = "stalled\n";
    } else {
      resp.body = "ok\n";
    }
  } else if (path == "/") {
    resp.body = "mhbench live telemetry: /metrics /status.json /healthz\n";
  } else {
    resp.status = 404;
    resp.body = "not found\n";
  }
  return resp;
}

}  // namespace mhbench::obs
