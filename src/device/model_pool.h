// Model pool (paper Figure 3): the measured candidate models a constraint
// case selects from.
//
// For a given algorithm and task, the pool holds every (model, ratio)
// variant with its measured system statistics on a reference device.  The
// constraint builders pick, per client, the largest variant that satisfies
// the client's budget — the paper's "keep the constraint consistent for all
// methods" selection principle.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "device/cost_model.h"

namespace mhbench::device {

struct PoolEntry {
  std::string model;    // paper-scale model name
  int arch_index = 0;   // index into the topology family (0 for primary)
  double ratio = 1.0;   // width/depth ratio for scalable methods
  RoundCost cost;       // on the reference device
};

class ModelPool {
 public:
  // Pool for a width/depth algorithm: the primary model at the ratio
  // ladder.  For topology algorithms: each family member at full size.
  static ModelPool ForAlgorithm(const std::string& algorithm,
                                const PaperTaskDescs& descs,
                                const std::vector<double>& ratio_ladder,
                                const DeviceProfile& reference);

  const std::vector<PoolEntry>& entries() const { return entries_; }

  // Largest entry (by parameter count) whose cost satisfies `fits`;
  // nullopt when nothing fits.
  std::optional<PoolEntry> LargestWhere(
      const std::function<bool(const RoundCost&)>& fits) const;

  // Smallest entry by parameter count (the fallback when nothing fits).
  const PoolEntry& Smallest() const;

 private:
  std::vector<PoolEntry> entries_;  // ascending by params
};

}  // namespace mhbench::device
