// Device-tier taxonomy for cohort observability (DESIGN.md §5j).
//
// The paper reads every MHFL result per device class: the IMA fleet's
// three-tier memory distribution (16 GB GPU / 4 GB GPU / CPU-only).  The
// observability layer rolls client-scoped counters and histograms up by
// the same taxonomy, so a tier is a stable short string derived from the
// sampled device's memory class and GPU presence — nothing else, so the
// mapping is a pure function and tier-keyed totals inherit the registry's
// bit-identical-across-threads contract.
#pragma once

#include <string>

namespace mhbench::device {

// Tier name for a sampled device:
//   "cpu"    — no GPU (the fleet's CPU-only tier)
//   "mem16g" — GPU with >= 4 GiB of device memory (the 16 GB tier)
//   "mem4g"  — any other GPU device (the 4 GB tier)
// Matches the ima_fleet sampler's three memory tiers; synthetic or test
// fleets that never set a tier report as "untiered" at the engine level.
std::string DeviceTierName(double memory_mb, bool has_gpu);

}  // namespace mhbench::device
