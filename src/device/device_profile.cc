#include "device/device_profile.h"

#include "device/calibration.h"

namespace mhbench::device {

DeviceProfile JetsonOrinNx() {
  return {"jetson-orin-nx", DeviceGflops("jetson-orin-nx"), 100.0, 16384.0,
          true};
}

DeviceProfile JetsonTx2Nx() {
  return {"jetson-tx2-nx", DeviceGflops("jetson-tx2-nx"), 100.0, 4096.0,
          true};
}

DeviceProfile JetsonNano() {
  return {"jetson-nano", DeviceGflops("jetson-nano"), 100.0, 4096.0, true};
}

DeviceProfile RaspberryPi4() {
  return {"raspberry-pi-4b", DeviceGflops("raspberry-pi-4b"), 50.0, 2048.0,
          false};
}

}  // namespace mhbench::device
