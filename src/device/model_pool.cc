#include "device/model_pool.h"

#include <algorithm>

#include "core/error.h"

namespace mhbench::device {

ModelPool ModelPool::ForAlgorithm(const std::string& algorithm,
                                  const PaperTaskDescs& descs,
                                  const std::vector<double>& ratio_ladder,
                                  const DeviceProfile& reference) {
  MHB_CHECK(!ratio_ladder.empty());
  ModelPool pool;
  if (AxisOf(algorithm) == ScaleAxis::kFull) {
    for (std::size_t a = 0; a < descs.topology.size(); ++a) {
      CostModel cm(descs.topology[a]);
      PoolEntry e;
      e.model = descs.topology[a].name;
      e.arch_index = static_cast<int>(a);
      e.ratio = 1.0;
      e.cost = cm.Cost(algorithm, 1.0, reference);
      pool.entries_.push_back(std::move(e));
    }
  } else {
    CostModel cm(descs.primary);
    for (double r : ratio_ladder) {
      PoolEntry e;
      e.model = descs.primary.name;
      e.ratio = r;
      e.cost = cm.Cost(algorithm, r, reference);
      pool.entries_.push_back(std::move(e));
    }
  }
  std::sort(pool.entries_.begin(), pool.entries_.end(),
            [](const PoolEntry& a, const PoolEntry& b) {
              return a.cost.params_m < b.cost.params_m;
            });
  return pool;
}

std::optional<PoolEntry> ModelPool::LargestWhere(
    const std::function<bool(const RoundCost&)>& fits) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (fits(it->cost)) return *it;
  }
  return std::nullopt;
}

const PoolEntry& ModelPool::Smallest() const {
  MHB_CHECK(!entries_.empty());
  return entries_.front();
}

}  // namespace mhbench::device
