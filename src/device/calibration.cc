#include "device/calibration.h"

#include <algorithm>

#include "core/error.h"
#include "device/cost_model.h"

namespace mhbench::device {
namespace {

// The paper's Table I: ResNet-101 at x0.5 on Jetson Nano / Orin NX.
// These anchor the fit; everything else extrapolates structurally.
struct TableOneRow {
  const char* method;
  double time_nano_s;
  double time_orin_s;
  double memory_mb;
};
constexpr TableOneRow kTableOne[] = {
    {"sheterofl", 430.24, 212.72, 593.0},
    {"depthfl", 515.93, 254.65, 1220.0},
    {"fedrolex", 465.17, 233.56, 780.0},
    {"fedepth", 450.64, 222.35, 631.0},
};

constexpr double kRoundSamples = 320.0;  // batch 32 x 10 local steps
constexpr double kTrainMultiplier = 3.0;  // forward + 2x backward
constexpr double kMemoryBatch = 32.0;
constexpr double kBaseOverheadMb = 150.0;

struct Fit {
  double gflops_nano = 1.0;
  double gflops_orin = 1.0;
  double time_factor_depthfl = 1.0;
  double time_factor_fedrolex = 1.0;
  double time_factor_fedepth = 1.0;
  double act_factor_width = 1.0;    // sheterofl/fjord/fedavg/fedrolex base
  double act_factor_depthfl = 1.0;
  double act_factor_fedrolex = 1.0;
  double act_factor_fedepth = 1.0;
};

const Fit& GetFit() {
  static const Fit fit = [] {
    Fit f;
    const PaperModelDesc resnet101 = PaperDesc("resnet101");
    const ModelStats width_half =
        ComputeStats(resnet101, ScaleAxis::kWidth, 0.5);
    const ModelStats depth_half =
        ComputeStats(resnet101, ScaleAxis::kDepth, 0.5);

    const double base_flops =
        width_half.flops_fwd * kTrainMultiplier * kRoundSamples;
    // SHeteroFL (factor 1.0) pins the device throughputs.
    f.gflops_nano = base_flops / (kTableOne[0].time_nano_s * 1e9);
    f.gflops_orin = base_flops / (kTableOne[0].time_orin_s * 1e9);

    auto time_factor = [&](const TableOneRow& row, const ModelStats& stats) {
      const double flops = stats.flops_fwd * kTrainMultiplier * kRoundSamples;
      return row.time_nano_s * f.gflops_nano * 1e9 / flops;
    };
    f.time_factor_depthfl = time_factor(kTableOne[1], depth_half);
    f.time_factor_fedrolex = time_factor(kTableOne[2], width_half);
    f.time_factor_fedepth = time_factor(kTableOne[3], depth_half);

    auto act_factor = [&](const TableOneRow& row, const ModelStats& stats) {
      const double weight_mb = stats.params * 3.0 * 4.0 / 1e6;
      const double act_budget_mb =
          row.memory_mb - kBaseOverheadMb - weight_mb;
      MHB_CHECK_GT(act_budget_mb, 0.0)
          << "calibration target infeasible for" << row.method;
      return act_budget_mb * 1e6 /
             (stats.activation_elems * kMemoryBatch * 4.0);
    };
    f.act_factor_width = act_factor(kTableOne[0], width_half);
    f.act_factor_depthfl = act_factor(kTableOne[1], depth_half);
    f.act_factor_fedrolex = act_factor(kTableOne[2], width_half);
    f.act_factor_fedepth = act_factor(kTableOne[3], depth_half);
    return f;
  }();
  return fit;
}

}  // namespace

double RoundSamples() { return kRoundSamples; }
double TrainFlopsMultiplier() { return kTrainMultiplier; }
double MemoryModelBatch() { return kMemoryBatch; }
double BaseMemoryOverheadMb() { return kBaseOverheadMb; }

double MethodTimeFactor(const std::string& algorithm) {
  const Fit& f = GetFit();
  if (algorithm == "depthfl") return f.time_factor_depthfl;
  if (algorithm == "fedrolex") return f.time_factor_fedrolex;
  if (algorithm == "fedepth") return f.time_factor_fedepth;
  // InclusiveFL trains like a plain depth prefix; Fjord/SHeteroFL/FedAvg a
  // plain width prefix; topology methods a plain full model.
  return 1.0;
}

double MethodActivationFactor(const std::string& algorithm) {
  const Fit& f = GetFit();
  if (algorithm == "depthfl") return f.act_factor_depthfl;
  if (algorithm == "fedrolex") return f.act_factor_fedrolex;
  if (algorithm == "fedepth") return f.act_factor_fedepth;
  return f.act_factor_width;
}

double DeviceGflops(const std::string& device_name) {
  const Fit& f = GetFit();
  if (device_name == "jetson-nano") return f.gflops_nano;
  if (device_name == "jetson-orin-nx") return f.gflops_orin;
  // Not anchored by Table I; placed between the Nano and the Orin NX
  // (Table I's measured Orin/Nano training ratio is ~2.02x, so the TX2 NX
  // sits at ~1.5x Nano), Raspberry Pi 4B CPU-only at ~1/6 Nano.
  if (device_name == "jetson-tx2-nx") return f.gflops_nano * 1.5;
  if (device_name == "raspberry-pi-4b") return f.gflops_nano / 6.0;
  throw Error("unknown device: " + device_name);
}

}  // namespace mhbench::device
