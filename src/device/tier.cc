#include "device/tier.h"

namespace mhbench::device {

std::string DeviceTierName(double memory_mb, bool has_gpu) {
  if (!has_gpu) return "cpu";
  // The ima_fleet sampler models the 16 GB tier as 8192 MB usable and the
  // 4 GB tier as 1792 MB usable; split at 4096 MB so either side of the
  // sampler's constants classifies correctly.
  if (memory_mb >= 4096.0) return "mem16g";
  return "mem4g";
}

}  // namespace mhbench::device
