#include "device/cost_model.h"

#include <cmath>

#include "core/error.h"
#include "device/calibration.h"

namespace mhbench::device {
namespace {

// MobileNet/EfficientNet-style descriptors use inverted-residual blocks
// with this expansion; encoded via the name to keep the public struct
// small.
int ExpansionOf(const PaperModelDesc& d) {
  if (d.name.rfind("mobilenet", 0) == 0) return 6;
  if (d.name.rfind("efficientnet", 0) == 0) return 6;
  return 0;
}

// Accumulates conv-layer statistics.
//  - bottleneck: 1x1 (Cin->W) / 3x3 (W->W) / 1x1 (W->Cout), W = Cout/4
//  - expansion > 0 (MobileNet): 1x1 expand, depthwise 3x3, 1x1 project
//  - otherwise basic: 3x3 (Cin->Cout) / 3x3 (Cout->Cout)
struct ConvAccum {
  double params = 0.0;
  double flops = 0.0;
  double acts = 0.0;

  // `spatial` = number of output positions (H*W, or L for 1-D).
  void Conv(double cin, double cout, double k2, double spatial,
            bool depthwise = false) {
    const double weights = depthwise ? cout * k2 : cin * cout * k2;
    params += weights + 2.0 * cout;  // + batch-norm affine
    flops += 2.0 * spatial * weights;
    acts += spatial * cout * 2.0;  // conv output + normalized/activated copy
  }
};

ModelStats CnnStats(const PaperModelDesc& d, ScaleAxis axis, double ratio) {
  int total_blocks = 0;
  for (int b : d.stage_blocks) total_blocks += b;
  const int kept_blocks =
      axis == ScaleAxis::kDepth
          ? std::max(1, static_cast<int>(std::ceil(ratio * total_blocks)))
          : total_blocks;
  const double w = axis == ScaleAxis::kWidth ? ratio : 1.0;
  const int expansion = ExpansionOf(d);

  auto scaled = [&](int channels) {
    return std::max(1.0, std::ceil(w * channels));
  };

  ConvAccum acc;
  const double dims = d.conv1d ? 1.0 : 2.0;
  double spatial = d.conv1d ? d.image_size
                            : static_cast<double>(d.image_size) * d.image_size;
  const double k2 = d.conv1d ? 3.0 : 9.0;

  // Stem: from input channels to the first stage width.
  const double first = scaled(d.stage_channels.front());
  acc.Conv(d.in_channels, first, d.conv1d ? 5.0 : 9.0, spatial);

  double cin = first;
  double last_cout = first;
  int flat = 0;
  for (std::size_t s = 0; s < d.stage_channels.size() && flat < kept_blocks;
       ++s) {
    const double cout = scaled(d.stage_channels[s]);
    for (int b = 0; b < d.stage_blocks[s] && flat < kept_blocks; ++b, ++flat) {
      const bool first_of_stage = (b == 0);
      if (first_of_stage && s > 0) spatial /= std::pow(2.0, dims);
      if (d.inception) {
        // Three-branch Inception module: 1x1, 1x1 -> 3x3, 1x1.
        const double b1 = std::max(1.0, cout / 2.0);
        const double b2 = std::max(1.0, cout / 4.0);
        const double b3 = std::max(1.0, cout - b1 - b2);
        acc.Conv(cin, b1, 1.0, spatial);
        acc.Conv(cin, b2, 1.0, spatial);
        acc.Conv(b2, b2, k2, spatial);
        acc.Conv(cin, b3, 1.0, spatial);
      } else if (d.bottleneck) {
        const double width = std::max(1.0, cout / 4.0);
        acc.Conv(cin, width, 1.0, spatial);
        acc.Conv(width, width, k2, spatial);
        acc.Conv(width, cout, 1.0, spatial);
      } else if (expansion > 0) {
        const double e = expansion * cout;
        acc.Conv(cin, e, 1.0, spatial);
        acc.Conv(e, e, k2, spatial, /*depthwise=*/true);
        acc.Conv(e, cout, 1.0, spatial);
      } else {
        acc.Conv(cin, cout, k2, spatial);
        acc.Conv(cout, cout, k2, spatial);
      }
      if (first_of_stage && s > 0) {
        acc.Conv(cin, cout, 1.0, spatial);  // projection shortcut
      }
      cin = cout;
      last_cout = cout;
    }
  }
  acc.params += last_cout * d.num_classes + d.num_classes;
  acc.flops += 2.0 * last_cout * d.num_classes;
  acc.acts += d.num_classes;

  return {acc.params, acc.flops, acc.acts};
}

ModelStats TransformerStats(const PaperModelDesc& d, ScaleAxis axis,
                            double ratio) {
  const int layers =
      axis == ScaleAxis::kDepth
          ? std::max(1, static_cast<int>(std::ceil(ratio * d.num_layers)))
          : d.num_layers;
  const double f = axis == ScaleAxis::kWidth
                       ? std::max(1.0, std::ceil(ratio * d.ffn_hidden))
                       : d.ffn_hidden;
  const double dm = d.d_model;
  const double seq = d.seq_len;

  // Per-layer: attention (4 d^2 + 4d), FFN (2 d f + d + f), 2 LayerNorms.
  const double layer_params =
      4 * dm * dm + 4 * dm + 2 * dm * f + dm + f + 4 * dm;
  // ALBERT shares one layer's parameters across all executed layers.
  const double param_layers = d.shared_layers ? 1.0 : layers;
  const double params = d.vocab * dm + param_layers * layer_params +
                        dm * d.num_classes + d.num_classes;

  double flops = 2.0 * seq * layer_params * layers;  // projections + FFN
  flops += 4.0 * layers * seq * seq * dm;            // attention scores+mix
  flops += 2.0 * seq * dm;                           // head pooling

  const double acts = layers * seq * (6.0 * dm + f) + seq * dm;
  return {params, flops, acts};
}

}  // namespace

ScaleAxis AxisOf(const std::string& algorithm) {
  if (algorithm == "fjord" || algorithm == "sheterofl" ||
      algorithm == "fedrolex" || algorithm == "fedavg") {
    return ScaleAxis::kWidth;
  }
  if (algorithm == "depthfl" || algorithm == "inclusivefl" ||
      algorithm == "fedepth") {
    return ScaleAxis::kDepth;
  }
  if (algorithm == "fedproto" || algorithm == "fedet") {
    return ScaleAxis::kFull;
  }
  throw Error("unknown algorithm for cost axis: " + algorithm);
}

ModelStats ComputeStats(const PaperModelDesc& desc, ScaleAxis axis,
                        double ratio) {
  MHB_CHECK_GT(ratio, 0.0);
  MHB_CHECK_LE(ratio, 1.0);
  if (desc.d_model > 0) return TransformerStats(desc, axis, ratio);
  MHB_CHECK(!desc.stage_channels.empty()) << "empty descriptor" << desc.name;
  return CnnStats(desc, axis, ratio);
}

CostModel::CostModel(PaperModelDesc desc) : desc_(std::move(desc)) {}

RoundCost CostModel::Cost(const std::string& algorithm, double ratio,
                          const DeviceProfile& dev) const {
  const ScaleAxis axis = AxisOf(algorithm);
  const ModelStats stats =
      axis == ScaleAxis::kFull
          ? ComputeStats(desc_, ScaleAxis::kWidth, 1.0)
          : ComputeStats(desc_, axis, ratio);

  RoundCost cost;
  cost.params_m = stats.params / 1e6;
  cost.gflops_fwd = stats.flops_fwd / 1e9;

  const double train_flops = stats.flops_fwd * TrainFlopsMultiplier() *
                             RoundSamples() * MethodTimeFactor(algorithm);
  cost.train_time_s = train_flops / (dev.gflops * 1e9);

  // Weights + gradients + momentum, batch activations, fixed overhead.
  cost.memory_mb = (stats.params * 3.0 * 4.0 +
                    stats.activation_elems * MemoryModelBatch() * 4.0 *
                        MethodActivationFactor(algorithm)) /
                       1e6 +
                   BaseMemoryOverheadMb();

  cost.comm_mb = 2.0 * stats.params * 4.0 / 1e6;  // upload + download
  cost.comm_time_s = cost.comm_mb * 8.0 / dev.bandwidth_mbps;
  return cost;
}

PaperModelDesc PaperDesc(const std::string& model_name) {
  PaperModelDesc d;
  d.name = model_name;
  if (model_name == "resnet18") {
    d.stage_channels = {64, 128, 256, 512};
    d.stage_blocks = {2, 2, 2, 2};
  } else if (model_name == "resnet34") {
    d.stage_channels = {64, 128, 256, 512};
    d.stage_blocks = {3, 4, 6, 3};
  } else if (model_name == "resnet50") {
    d.stage_channels = {256, 512, 1024, 2048};
    d.stage_blocks = {3, 4, 6, 3};
    d.bottleneck = true;
  } else if (model_name == "resnet101") {
    d.stage_channels = {256, 512, 1024, 2048};
    d.stage_blocks = {3, 4, 23, 3};
    d.bottleneck = true;
  } else if (model_name == "mobilenetv2") {
    d.stage_channels = {24, 32, 64, 160};
    d.stage_blocks = {2, 3, 4, 3};
    d.num_classes = 10;
  } else if (model_name == "mobilenetv3-small") {
    d.stage_channels = {16, 24, 48, 96};
    d.stage_blocks = {1, 2, 3, 2};
    d.num_classes = 10;
  } else if (model_name == "mobilenetv3-large") {
    d.stage_channels = {24, 40, 112, 160};
    d.stage_blocks = {2, 3, 4, 3};
    d.num_classes = 10;
  } else if (model_name == "efficientnet-b0") {
    d.stage_channels = {24, 40, 112, 320};
    d.stage_blocks = {2, 3, 4, 2};
    d.num_classes = 10;
  } else if (model_name == "googlenet") {
    d.stage_channels = {192, 480, 832, 1024};
    d.stage_blocks = {2, 2, 5, 2};
    d.inception = true;
    d.num_classes = 10;
  } else if (model_name == "transformer") {
    d.d_model = 256;
    d.ffn_hidden = 1024;
    d.num_layers = 4;
    d.vocab = 30000;
    d.seq_len = 64;
    d.num_classes = 4;
  } else if (model_name == "albert-base") {
    d.d_model = 768;
    d.ffn_hidden = 3072;
    d.num_layers = 12;
    d.vocab = 30000;
    d.seq_len = 64;
    d.num_classes = 500;
    d.shared_layers = true;
  } else if (model_name == "albert-large") {
    d.d_model = 1024;
    d.ffn_hidden = 4096;
    d.num_layers = 24;
    d.vocab = 30000;
    d.seq_len = 64;
    d.num_classes = 500;
    d.shared_layers = true;
  } else if (model_name == "albert-xxlarge") {
    d.d_model = 4096;
    d.ffn_hidden = 16384;
    d.num_layers = 12;
    d.vocab = 30000;
    d.seq_len = 64;
    d.num_classes = 500;
    d.shared_layers = true;
  } else if (model_name == "har-cnn") {
    d.stage_channels = {64, 128};
    d.stage_blocks = {2, 2};
    d.conv1d = true;
    d.image_size = 128;  // window length
    d.in_channels = 9;
    d.num_classes = 6;
  } else if (model_name == "har-cnn-small") {
    d.stage_channels = {32, 64};
    d.stage_blocks = {1, 1};
    d.conv1d = true;
    d.image_size = 128;
    d.in_channels = 9;
    d.num_classes = 6;
  } else if (model_name == "har-cnn-large") {
    d.stage_channels = {96, 192};
    d.stage_blocks = {2, 2};
    d.conv1d = true;
    d.image_size = 128;
    d.in_channels = 9;
    d.num_classes = 6;
  } else {
    throw Error("unknown paper model: " + model_name);
  }
  return d;
}

PaperTaskDescs PaperDescsForTask(const std::string& task_name) {
  PaperTaskDescs out;
  if (task_name == "cifar100") {
    out.primary = PaperDesc("resnet101");
    out.topology = {PaperDesc("resnet18"), PaperDesc("resnet34"),
                    PaperDesc("resnet50"), PaperDesc("resnet101")};
  } else if (task_name == "cifar10") {
    out.primary = PaperDesc("mobilenetv2");
    out.topology = {PaperDesc("mobilenetv3-small"), PaperDesc("mobilenetv2"),
                    PaperDesc("mobilenetv3-large")};
  } else if (task_name == "agnews") {
    out.primary = PaperDesc("transformer");
    // The paper omits topology heterogeneity on AG-News; a two-member
    // transformer family keeps the builders total.
    PaperModelDesc small = PaperDesc("transformer");
    small.name = "transformer-small";
    small.num_layers = 2;
    out.topology = {small, PaperDesc("transformer")};
  } else if (task_name == "stackoverflow") {
    out.primary = PaperDesc("albert-base");
    out.topology = {PaperDesc("albert-base"), PaperDesc("albert-large"),
                    PaperDesc("albert-xxlarge")};
  } else if (task_name == "harbox" || task_name == "ucihar") {
    out.primary = PaperDesc("har-cnn");
    out.topology = {PaperDesc("har-cnn-small"), PaperDesc("har-cnn"),
                    PaperDesc("har-cnn-large")};
  } else {
    throw Error("unknown task: " + task_name);
  }
  return out;
}

}  // namespace mhbench::device
