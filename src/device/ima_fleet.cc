#include "device/ima_fleet.h"

#include <cmath>

#include "core/error.h"
#include "device/calibration.h"

namespace mhbench::device {

Fleet SampleFleet(const FleetConfig& config) {
  MHB_CHECK_GT(config.num_clients, 0);
  MHB_CHECK_GE(config.p16gb, 0.0);
  MHB_CHECK_GE(config.p4gb, 0.0);
  MHB_CHECK_LE(config.p16gb + config.p4gb, 1.0);
  MHB_CHECK_GE(config.availability_min, 0.0);
  MHB_CHECK_LE(config.availability_max, 1.0);
  MHB_CHECK_LE(config.availability_min, config.availability_max);
  Rng rng(config.seed ^ 0x1A4FEE7ULL);

  const double median_gflops =
      DeviceGflops("jetson-nano") * config.median_gflops_scale;

  Fleet fleet(static_cast<std::size_t>(config.num_clients));
  for (auto& dev : fleet) {
    dev.gflops =
        median_gflops * std::exp(config.compute_sigma * rng.Gaussian());
    dev.bandwidth_mbps = config.median_bandwidth_mbps *
                         std::exp(config.bandwidth_sigma * rng.Gaussian());
    // Memory tiers carry the *effective training budget*: Jetson-class
    // devices share unified memory with the OS and runtime, so only a
    // fraction of the nominal RAM is available to a training process
    // (16 GB -> ~8 GB, 4 GB -> ~1.75 GB, CPU-only -> ~0.7 GB).  These
    // budgets make the memory case bind the way the paper observes.
    const double u = rng.Uniform();
    if (u < config.p16gb) {
      dev.memory_mb = 8192.0;
      dev.has_gpu = true;
    } else if (u < config.p16gb + config.p4gb) {
      dev.memory_mb = 1792.0;
      dev.has_gpu = true;
    } else {
      dev.memory_mb = 704.0;
      dev.has_gpu = false;
      dev.gflops /= 6.0;  // CPU-only training penalty
    }
    dev.availability =
        rng.Uniform(config.availability_min, config.availability_max);
  }
  return fleet;
}

}  // namespace mhbench::device
