// Calibration constants fitted to the paper's Table I measurements
// (ResNet-101 x0.5 on Jetson Nano / Orin NX: parameters, per-round training
// time, memory usage, for SHeteroFL / DepthFL / FedRolex / FeDepth).
//
// The fit anchors the cost model: Table I is reproduced by construction;
// every other (model, ratio, device, method) combination is a structural
// extrapolation through the formulas in cost_model.cc.
#pragma once

#include <string>

namespace mhbench::device {

// Local samples processed per federated round (batch x local steps); the
// unit the per-round training time is defined over.
double RoundSamples();

// Backward pass cost multiple of forward (standard 2x backward + 1x forward).
double TrainFlopsMultiplier();

// Per-method multiplier on training FLOPs (DepthFL's extra heads and mutual
// distillation, FedRolex's scatter bookkeeping, FeDepth's segment-wise
// passes).  1.0 for unknown methods.
double MethodTimeFactor(const std::string& algorithm);

// Per-method multiplier on activation memory (DepthFL keeps every head's
// activations for mutual distillation; FeDepth only backprops one segment).
double MethodActivationFactor(const std::string& algorithm);

// Batch size the memory model assumes.
double MemoryModelBatch();

// Fixed framework overhead (runtime, kernels, CUDA context) in MB.
double BaseMemoryOverheadMb();

// Fitted effective training throughput for the named preset device
// ("jetson-nano", "jetson-orin-nx", "jetson-tx2-nx", "raspberry-pi-4b"),
// in GFLOP/s.
double DeviceGflops(const std::string& device_name);

}  // namespace mhbench::device
