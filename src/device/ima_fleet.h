// Synthetic IMA-style device fleet.
//
// The paper assigns per-client compute, bandwidth and memory constraints
// from the IMA dataset (status of 1000+ real phones, Yang et al. WWW'21)
// and the ScientiaMobile RAM distribution.  Neither is redistributable, so
// the fleet sampler reproduces their documented shape: compute capability
// spread over roughly an order of magnitude (log-normal), long-tailed
// bandwidths, and a three-tier memory distribution (16 GB / 4 GB / no-GPU)
// with real-world-style proportions.
#pragma once

#include <vector>

#include "core/rng.h"

namespace mhbench::device {

struct ClientDevice {
  double gflops = 1.0;
  double bandwidth_mbps = 20.0;
  double memory_mb = 4096.0;
  bool has_gpu = true;
  // Probability the device is online when sampled (state heterogeneity;
  // phones charge/sleep/roam).
  double availability = 1.0;
};

struct FleetConfig {
  int num_clients = 100;
  std::uint64_t seed = 11;
  // Median compute as a fraction of the Jetson Nano's fitted throughput.
  double median_gflops_scale = 1.0;
  // Log-normal sigma of the compute distribution (IMA spans ~10x).
  double compute_sigma = 0.55;
  double median_bandwidth_mbps = 20.0;
  double bandwidth_sigma = 0.8;
  // Memory tier proportions (16 GB GPU / 4 GB GPU / CPU-only), from the
  // ScientiaMobile-style distribution the paper cites.
  double p16gb = 0.2;
  double p4gb = 0.5;  // remainder is CPU-only
  // Per-device availability sampled uniformly from this range.  Defaults
  // to always-online (the paper's main grid does not model state
  // heterogeneity); lower the minimum to study offline devices.
  double availability_min = 1.0;
  double availability_max = 1.0;
};

using Fleet = std::vector<ClientDevice>;

Fleet SampleFleet(const FleetConfig& config);

}  // namespace mhbench::device
