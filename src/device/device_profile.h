// Edge device profiles (the paper's Table III hardware plus the IMA-style
// phone fleet's per-device capabilities).
#pragma once

#include <string>

namespace mhbench::device {

struct DeviceProfile {
  std::string name;
  // Effective training throughput in GFLOP/s (fitted, not peak).
  double gflops = 1.0;
  // Up/down link bandwidth in Mbit/s.
  double bandwidth_mbps = 20.0;
  // Memory available for training, in MB (GPU memory, or a conservative
  // budget for CPU-only devices).
  double memory_mb = 4096.0;
  bool has_gpu = true;
};

// Presets for the paper's measurement devices (Table III + Table I).  The
// gflops values are fitted by device/calibration so that the cost model
// reproduces Table I's measured training times.
DeviceProfile JetsonOrinNx();
DeviceProfile JetsonTx2Nx();
DeviceProfile JetsonNano();
DeviceProfile RaspberryPi4();

}  // namespace mhbench::device
