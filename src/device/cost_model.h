// Analytic cost model over *paper-scale* model descriptors.
//
// The trainable sim-scale networks keep experiments CPU-feasible; system
// costs (parameters, FLOPs, training time, memory, communication) are
// computed here from descriptors of the paper's actual models (ResNet-101,
// MobileNetV2, ALBERT, ...), with per-method factors calibrated against the
// paper's Table I measurements (see device/calibration.h).
#pragma once

#include <string>
#include <vector>

#include "device/device_profile.h"

namespace mhbench::device {

// Axis a heterogeneity method scales the model along.
enum class ScaleAxis { kWidth, kDepth, kFull };

// Which axis each algorithm scales (by registry name; "fedavg" -> width).
ScaleAxis AxisOf(const std::string& algorithm);

struct PaperModelDesc {
  std::string name;
  // CNN fields.
  std::vector<int> stage_channels;  // output channels per stage
  std::vector<int> stage_blocks;
  bool bottleneck = false;  // ResNet-50/101 style (1x1-3x3-1x1, W = C/4)
  bool inception = false;   // GoogLeNet style (1x1 / 1x1-3x3 / 1x1 branches)
  int image_size = 32;
  int in_channels = 3;
  int num_classes = 100;
  bool conv1d = false;  // HAR CNNs operate on 1-D windows
  // Transformer fields (nonzero d_model selects the transformer formulas).
  int d_model = 0;
  int ffn_hidden = 0;
  int num_layers = 0;
  int vocab = 0;
  int seq_len = 0;
  bool shared_layers = false;  // ALBERT cross-layer parameter sharing
};

// Structural statistics of a (possibly scaled) model.
struct ModelStats {
  double params = 0.0;             // scalar parameter count
  double flops_fwd = 0.0;          // forward FLOPs per sample
  double activation_elems = 0.0;   // activation scalars per sample
};

// Params/FLOPs/activations of `desc` scaled along `axis` by `ratio`.
ModelStats ComputeStats(const PaperModelDesc& desc, ScaleAxis axis,
                        double ratio);

// Full system cost of one federated round for one client.
struct RoundCost {
  double params_m = 0.0;        // millions of parameters
  double gflops_fwd = 0.0;      // forward GFLOPs per sample
  double train_time_s = 0.0;    // one round of local training
  double memory_mb = 0.0;       // peak training memory
  double comm_mb = 0.0;         // upload + download payload
  double comm_time_s = 0.0;     // at the device's bandwidth
};

class CostModel {
 public:
  explicit CostModel(PaperModelDesc desc);

  const PaperModelDesc& desc() const { return desc_; }

  // Cost of running `algorithm` at `ratio` of this model on `dev`.
  RoundCost Cost(const std::string& algorithm, double ratio,
                 const DeviceProfile& dev) const;

 private:
  PaperModelDesc desc_;
};

// Paper-scale descriptor registry: "resnet18/34/50/101", "mobilenetv2",
// "mobilenetv3-small", "mobilenetv3-large", "transformer", "albert-base",
// "albert-large", "albert-xxlarge", "har-cnn", "har-cnn-small",
// "har-cnn-large".  Throws for unknown names.
PaperModelDesc PaperDesc(const std::string& model_name);

// Paper-scale models for each benchmark task: the primary (width/depth)
// model and the topology family (smallest first), mirroring Table II.
struct PaperTaskDescs {
  PaperModelDesc primary;
  std::vector<PaperModelDesc> topology;
};
PaperTaskDescs PaperDescsForTask(const std::string& task_name);

}  // namespace mhbench::device
