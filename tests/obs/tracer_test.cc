// Observability layer: span collection/nesting, JSON escaping and export,
// the disabled (null-tracer) zero-cost path, the counter registry's
// per-thread sinks + round snapshots, and the run-manifest writer.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/thread_pool.h"
#include "obs/manifest.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace mhbench::obs {
namespace {

TEST(TracerTest, RecordsNestedSpansWithinParentBounds) {
  Tracer tracer;
  {
    Span parent(&tracer, "parent", "test");
    {
      Span child(&tracer, "child", "test");
      child.Arg("k", static_cast<std::int64_t>(7));
    }
  }
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Events complete in child-first order; look them up by name.
  const auto& child = events[0].name == "child" ? events[0] : events[1];
  const auto& parent = events[0].name == "parent" ? events[0] : events[1];
  ASSERT_EQ(child.name, "child");
  ASSERT_EQ(parent.name, "parent");
  // The child span is contained within the parent's interval.
  EXPECT_LE(parent.ts_us, child.ts_us);
  EXPECT_GE(parent.ts_us + parent.dur_us, child.ts_us + child.dur_us);
  // Same thread -> same lane.
  EXPECT_EQ(parent.tid, child.tid);
  ASSERT_EQ(child.num_args.size(), 1u);
  EXPECT_EQ(child.num_args[0].first, "k");
  EXPECT_EQ(child.num_args[0].second, "7");
}

TEST(TracerTest, JsonEscaping) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(TracerTest, ChromeJsonContainsEscapedNamesAndBothTracks) {
  Tracer tracer;
  {
    Span s(&tracer, "quoted \"name\"", "cat");
    s.Arg("note", std::string("with\nnewline"));
  }
  tracer.RecordSim("sim span", "sim", 1.5, 2.0, 3);
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("quoted \\\"name\\\""), std::string::npos);
  EXPECT_NE(json.find("with\\nnewline"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  // Sim timestamps are simulated seconds in microseconds.
  EXPECT_NE(json.find("\"ts\":1500000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2000000"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(TracerTest, JsonlHasOneObjectPerLine) {
  Tracer tracer;
  { Span a(&tracer, "a", "t"); }
  { Span b(&tracer, "b", "t"); }
  std::istringstream lines(tracer.ToJsonl());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(TracerTest, DisabledSpanIsInert) {
  // The disabled state is a null tracer: construction must not allocate,
  // record, or crash, and all member calls are no-ops.
  Span span(nullptr, "never", "never");
  EXPECT_FALSE(static_cast<bool>(span));
  span.Arg("k", static_cast<std::int64_t>(1));
  span.Arg("d", 2.0);
  span.Arg("s", std::string("x"));
  span.End();
  span.End();  // idempotent

  // A default-constructed span is the same disabled state.
  Span def;
  EXPECT_FALSE(static_cast<bool>(def));

  // A tight loop of disabled spans must complete trivially (zero events
  // anywhere to record them, no tracer to observe them).
  for (int i = 0; i < 100000; ++i) {
    Span s(nullptr, "hot", "loop");
    s.Arg("i", static_cast<std::int64_t>(i));
  }
  SUCCEED();
}

TEST(TracerTest, SpanEndBeforeDestructionRecordsOnce) {
  Tracer tracer;
  Span s(&tracer, "once", "t");
  s.End();
  s.End();
  EXPECT_EQ(tracer.Snapshot().size(), 1u);
}

TEST(TracerTest, ConcurrentSpansLandInDistinctLanes) {
  Tracer tracer;
  core::ThreadPool pool(3);
  core::ParallelFor(&pool, 64, [&](std::size_t i) {
    Span s(&tracer, "work", "mt");
    s.Arg("i", static_cast<std::int64_t>(i));
  });
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 64u);
  for (const auto& e : events) {
    EXPECT_GE(e.tid, 0);
    EXPECT_LT(e.tid, 4);  // 3 workers + the calling thread
  }
}

TEST(RegistryTest, CountersAccumulateAndSnapshotPerRound) {
  Registry reg;
  const auto bytes = reg.Counter("bytes");
  const auto drops = reg.Counter("drops");
  reg.Add(bytes, 100);
  reg.Add(drops, 1);
  reg.SetGauge("acc", 0.5);
  reg.EndRound("alg", 0);
  reg.Add(bytes, 50);
  reg.EndRound("alg", 1);

  EXPECT_EQ(reg.Total("bytes"), 150);
  EXPECT_EQ(reg.Total("drops"), 1);
  EXPECT_EQ(reg.Total("unregistered"), 0);

  const auto& rounds = reg.rounds();
  ASSERT_EQ(rounds.size(), 2u);
  EXPECT_EQ(rounds[0].run, "alg");
  EXPECT_EQ(rounds[0].round, 0);
  EXPECT_EQ(rounds[0].counters.at("bytes"), 100);
  EXPECT_EQ(rounds[0].counters.at("drops"), 1);
  EXPECT_DOUBLE_EQ(rounds[0].gauges.at("acc"), 0.5);
  // Round 1: only the delta, and the gauge was not re-set.
  EXPECT_EQ(rounds[1].counters.at("bytes"), 50);
  EXPECT_EQ(rounds[1].counters.count("drops"), 0u);
  EXPECT_EQ(rounds[1].gauges.count("acc"), 0u);
}

TEST(RegistryTest, PerThreadSinksMergeToOrderIndependentTotals) {
  Registry reg;
  const auto c = reg.Counter("c");
  core::ThreadPool pool(4);
  core::ParallelFor(&pool, 1000, [&](std::size_t i) {
    reg.Add(c, static_cast<std::int64_t>(i));
  });
  reg.FlushThreadSinks();
  EXPECT_EQ(reg.Total("c"), 999 * 1000 / 2);
}

TEST(RegistryTest, CounterRegistrationIsIdempotent) {
  Registry reg;
  EXPECT_EQ(reg.Counter("x"), reg.Counter("x"));
  reg.AddNamed("x", 2);
  reg.AddNamed("x", 3);
  reg.FlushThreadSinks();
  EXPECT_EQ(reg.Total("x"), 5);
}

TEST(ManifestTest, SanitizeRunId) {
  EXPECT_EQ(SanitizeRunId("cifar10-comp_v1.2"), "cifar10-comp_v1.2");
  EXPECT_EQ(SanitizeRunId("a/b c"), "a_b_c");
  EXPECT_EQ(SanitizeRunId(".."), "run");
  EXPECT_EQ(SanitizeRunId(""), "run");
}

TEST(ManifestTest, WritesManifestJsonAndRoundsCsv) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "mhb_manifest_test" /
      std::to_string(::getpid());
  fs::remove_all(dir);

  Registry reg;
  reg.AddNamed("bytes_up", 42);
  reg.SetGauge("sim_time_s", 1.25);
  reg.EndRound("fedavg", 0);
  reg.AddNamed("bytes_up", 8);
  reg.EndRound("fedavg", 1);

  RunManifest m;
  m.run_id = "unit/test run";  // must be sanitized
  m.tool = "tracer_test";
  m.git_describe = "deadbeef";
  m.created_utc = IsoTimestampUtc();
  m.seed = 7;
  m.threads = 2;
  m.config = {{"task", "cifar10"}, {"quote", "needs \"escaping\""}};
  m.metrics = {{"final_accuracy", 0.5}};

  const std::string run_dir = WriteRunManifest(dir.string(), m, &reg);
  EXPECT_NE(run_dir.find("unit_test_run"), std::string::npos);

  std::ifstream manifest(fs::path(run_dir) / "manifest.json");
  ASSERT_TRUE(manifest.good());
  std::stringstream manifest_text;
  manifest_text << manifest.rdbuf();
  const std::string mt = manifest_text.str();
  EXPECT_NE(mt.find("\"seed\": 7"), std::string::npos);
  EXPECT_NE(mt.find("\"threads\": 2"), std::string::npos);
  EXPECT_NE(mt.find("\"git_describe\": \"deadbeef\""), std::string::npos);
  EXPECT_NE(mt.find("needs \\\"escaping\\\""), std::string::npos);
  EXPECT_NE(mt.find("\"bytes_up\": 50"), std::string::npos);
  EXPECT_NE(mt.find("\"rounds\": 2"), std::string::npos);

  std::ifstream rounds(fs::path(run_dir) / "rounds.csv");
  ASSERT_TRUE(rounds.good());
  std::string header, row0, row1;
  ASSERT_TRUE(std::getline(rounds, header));
  ASSERT_TRUE(std::getline(rounds, row0));
  ASSERT_TRUE(std::getline(rounds, row1));
  EXPECT_NE(header.find("run"), std::string::npos);
  EXPECT_NE(header.find("round"), std::string::npos);
  EXPECT_NE(header.find("bytes_up"), std::string::npos);
  EXPECT_NE(header.find("sim_time_s"), std::string::npos);
  EXPECT_NE(row0.find("fedavg"), std::string::npos);
  EXPECT_NE(row0.find("42"), std::string::npos);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace mhbench::obs
