// Per-device-tier cohort rollups (DESIGN.md §5j): tier-keyed counters and
// histograms (`<base>@<tier>` registry names) and the client event journal
// must be bit-identical across thread counts and exporter on/off — the
// tier dimension rides the same per-thread-sink / barrier-merge machinery
// as everything else — and the per-tier totals must exactly partition the
// untiered ones.  Also covers the journal's engine-side contract: one
// block per round barrier, the taxonomy in every record, and per-round
// (not per-run) memory bounds on the drain path.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algorithms/registry.h"
#include "data/tasks.h"
#include "fl/engine.h"
#include "models/zoo.h"
#include "obs/journal.h"
#include "obs/live.h"
#include "obs/obs_config.h"
#include "obs/registry.h"
#include "support/temp_dir.h"

namespace mhbench::obs {
namespace {

constexpr int kClients = 8;
constexpr int kRounds = 4;

// Two clients per taxonomy tier, with the fourth slot left blank to
// exercise the engine's "untiered" fallback; flaky availability and a
// deadline-crossing compute spread make every drop path hit every tier
// family over the run.
std::vector<fl::ClientAssignment> TieredAssignments() {
  std::vector<fl::ClientAssignment> assign =
      fl::UniformCapacityAssignments(kClients, {0.25, 0.5, 0.75, 1.0});
  static const char* const kAssigned[] = {"cpu", "mem4g", "mem16g", ""};
  for (int i = 0; i < kClients; ++i) {
    auto& a = assign[static_cast<std::size_t>(i)];
    // Deliberately co-prime with the tier cycle below, so every tier gets
    // both trainable clients and deadline-crossing stragglers.
    a.system.compute_time_s = 5.0 + 7.0 * (i % 5);  // 5..33 s
    a.system.comm_time_s = 2.0;  // 26 + 2 crosses the 25 s deadline
    a.system.availability = (i % 3 == 0) ? 0.5 : 1.0;
    a.system.comm_mb = 4.0 + i;
    a.system.train_gflops = 1.0 + 0.5 * i;
    a.system.memory_mb = 512.0 * (1 + i % 4);
    a.system.device_tier = kAssigned[i % 4];
  }
  return assign;
}

struct TieredRun {
  fl::RunResult result;
  std::map<std::string, std::int64_t> totals;
  std::map<std::string, Registry::HistogramData> hists;
  std::vector<std::uint8_t> journal_bytes;
  std::int64_t journal_blocks = 0;
  std::size_t journal_peak = 0;
  std::vector<std::size_t> drained_batch_sizes;
  std::string metrics_text;
  std::string status_json;
};

TieredRun RunTiered(const data::Task& task, int threads, bool with_live) {
  const auto tm = models::MakeTaskModels("cifar10");
  auto alg = algorithms::MakeAlgorithm("fedrolex", tm);
  fl::FlConfig cfg;
  cfg.rounds = kRounds;
  cfg.sample_fraction = 0.8;
  cfg.eval_every = 2;
  cfg.eval_max_samples = 96;
  cfg.stability_max_samples = 48;
  cfg.round_deadline_s = 25.0;
  cfg.num_threads = threads;

  const testsupport::TempDir dir = testsupport::MakeTempDir();
  Registry registry;
  ClientJournalWriter::Options jopts;
  jopts.sample_seed = 7;
  ClientJournalWriter journal(dir.File("clients.mhbj"), jopts);
  TieredRun out;
  registry.SetClientRowSink([&](std::vector<Registry::ClientRow>&& rows) {
    out.drained_batch_sizes.push_back(rows.size());
    journal.Append(rows);
  });

  ObsConfig obs;
  obs.registry = &registry;
  std::unique_ptr<LiveExporter> live;
  if (with_live) {
    LiveConfig lcfg;
    lcfg.http_port = 0;  // ephemeral loopback server, polled by nobody —
                         // attaching it alone must not change a byte
    lcfg.heartbeat_every_s = 0.02;
    lcfg.heartbeat_path = dir.File("heartbeat.jsonl");
    lcfg.watchdog_stall_s = 120.0;
    lcfg.run_id = "tier-rollup";
    lcfg.rounds_total = cfg.rounds;
    live = std::make_unique<LiveExporter>(lcfg, &registry);
    obs.live = live.get();
  }
  cfg.obs = obs;

  fl::FlEngine engine(task, cfg, TieredAssignments(), *alg);
  out.result = engine.Run();
  if (live != nullptr) {
    out.metrics_text = live->MetricsText();
    out.status_json = live->StatusJson();
    live->Stop();
    EXPECT_EQ(live->stall_count(), 0);
  }
  registry.SetClientRowSink(nullptr);
  journal.Close();
  out.journal_blocks = journal.blocks_written();
  out.journal_peak = journal.peak_block_bytes();
  out.totals = registry.Totals();
  out.hists = registry.Histograms();

  std::ifstream in(dir.File("clients.mhbj"), std::ios::binary);
  EXPECT_TRUE(in.good());
  out.journal_bytes.assign((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  return out;
}

const char* const kTierNames[] = {"cpu", "mem4g", "mem16g", "untiered"};

TEST(TierRollupTest, TotalsAndJournalBitIdenticalAcrossThreadsAndExporter) {
  data::TaskConfig tcfg;
  tcfg.train_samples = 240;
  tcfg.test_samples = 120;
  tcfg.num_clients = kClients;
  const data::Task task = data::MakeTask("cifar10", tcfg);

  const TieredRun ref = RunTiered(task, 1, true);
  ASSERT_FALSE(ref.journal_bytes.empty());
  EXPECT_EQ(ref.journal_blocks, kRounds);
  // The scenario exercises tiers and drop paths for real.
  EXPECT_GT(ref.totals.at("clients_trained@cpu"), 0);
  EXPECT_GT(ref.totals.at("clients_trained@untiered"), 0);
  EXPECT_GT(ref.totals.at("clients_dropped"), 0);
  EXPECT_GT(ref.totals.at("clients_offline"), 0);

  auto comparable_totals = [](const TieredRun& r) {
    auto totals = r.totals;
    totals.erase("pool_tasks");  // helper-task count tracks the pool size
    return totals;
  };
  // Deterministic histograms only: client_wall_us (untiered and per-tier)
  // is measured wall time, legitimately different every run.
  auto comparable_hists = [](const TieredRun& r) {
    std::map<std::string, std::pair<std::int64_t, std::int64_t>> h;
    for (const auto& [name, data] : r.hists) {
      if (name.rfind("client_wall_us", 0) == 0) continue;
      h[name] = {data.count(), data.sum};
    }
    return h;
  };

  for (const int threads : {2, 4}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    const TieredRun run = RunTiered(task, threads, true);
    EXPECT_EQ(run.result.final_accuracy, ref.result.final_accuracy);
    EXPECT_EQ(run.result.total_sim_time_s, ref.result.total_sim_time_s);
    EXPECT_EQ(comparable_totals(run), comparable_totals(ref));
    EXPECT_EQ(comparable_hists(run), comparable_hists(ref));
    EXPECT_EQ(run.journal_bytes, ref.journal_bytes)
        << "journal bytes diverged at num_threads=" << threads;
  }

  const TieredRun no_exporter = RunTiered(task, 1, false);
  EXPECT_EQ(comparable_totals(no_exporter), comparable_totals(ref));
  EXPECT_EQ(no_exporter.journal_bytes, ref.journal_bytes)
      << "attaching the live exporter changed the journal bytes";
}

TEST(TierRollupTest, TierRollupsExactlyPartitionTheUntieredTotals) {
  data::TaskConfig tcfg;
  tcfg.train_samples = 240;
  tcfg.test_samples = 120;
  tcfg.num_clients = kClients;
  const data::Task task = data::MakeTask("cifar10", tcfg);
  const TieredRun run = RunTiered(task, 2, false);

  for (const char* base : {"clients_selected", "clients_offline",
                           "clients_dropped", "clients_trained", "bytes_up",
                           "bytes_down", "train_mflops"}) {
    std::int64_t tier_sum = 0;
    for (const char* tier : kTierNames) {
      tier_sum += run.totals.at(std::string(base) + "@" + tier);
    }
    EXPECT_EQ(tier_sum, run.totals.at(base))
        << "per-tier " << base << " rollups do not partition the total";
  }
  // Every tier was actually selected at some point over the run.
  for (const char* tier : kTierNames) {
    EXPECT_GT(run.totals.at(std::string("clients_selected@") + tier), 0)
        << tier;
  }

  // Deterministic histograms partition the same way (count and sum; the
  // buckets follow because both sides observe identical value streams).
  for (const char* base : {"client_bytes_up", "client_train_mflops"}) {
    std::int64_t count_sum = 0, value_sum = 0;
    for (const char* tier : kTierNames) {
      const auto& h = run.hists.at(std::string(base) + "@" + tier);
      count_sum += h.count();
      value_sum += h.sum;
    }
    EXPECT_EQ(count_sum, run.hists.at(base).count()) << base;
    EXPECT_EQ(value_sum, run.hists.at(base).sum) << base;
  }
}

TEST(TierRollupTest, ExporterSurfacesCarryTierRollups) {
  data::TaskConfig tcfg;
  tcfg.train_samples = 240;
  tcfg.test_samples = 120;
  tcfg.num_clients = kClients;
  const data::Task task = data::MakeTask("cifar10", tcfg);
  const TieredRun run = RunTiered(task, 2, true);

  // /metrics: tier-keyed entries render as a Prometheus `tier` label on
  // the base family, untiered entries keep their label-free form, and each
  // family gets exactly one TYPE header.
  EXPECT_NE(run.metrics_text.find("mhb_counter_clients_trained{tier=\"cpu\"}"),
            std::string::npos)
      << run.metrics_text;
  EXPECT_NE(run.metrics_text.find("mhb_counter_bytes_up{tier=\"mem16g\"}"),
            std::string::npos);
  EXPECT_NE(run.metrics_text.find(
                "mhb_hist_client_bytes_up{tier=\"mem4g\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(run.metrics_text.find("\nmhb_counter_bytes_up "),
            std::string::npos)
      << "untiered rendering must be unchanged";
  const std::string type_line = "# TYPE mhb_counter_bytes_up counter\n";
  const std::size_t first = run.metrics_text.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(run.metrics_text.find(type_line, first + 1), std::string::npos)
      << "duplicate TYPE header for a tiered metric family";
  EXPECT_EQ(run.metrics_text.find('@'), std::string::npos)
      << "raw @-names leaked into the Prometheus exposition";

  // /status.json: flat counters/histograms stay tier-free (schema
  // stability for existing pollers); the rollups live under "tiers".
  EXPECT_NE(run.status_json.find("\"tiers\": {"), std::string::npos)
      << run.status_json;
  EXPECT_NE(run.status_json.find("\"cpu\": {\"counters\": {"),
            std::string::npos);
  EXPECT_NE(run.status_json.find("\"mem16g\""), std::string::npos);
  EXPECT_EQ(run.status_json.find('@'), std::string::npos)
      << "raw @-names leaked into /status.json";
}

TEST(TierRollupTest, JournalCarriesTheTaxonomyAndDrainsEveryBarrier) {
  data::TaskConfig tcfg;
  tcfg.train_samples = 240;
  tcfg.test_samples = 120;
  tcfg.num_clients = kClients;
  const data::Task task = data::MakeTask("cifar10", tcfg);
  const TieredRun run = RunTiered(task, 2, false);

  // One drain per round barrier, each bounded by the round's cohort — the
  // registry never accumulates rows across rounds.
  ASSERT_EQ(run.drained_batch_sizes.size(), static_cast<std::size_t>(kRounds));
  std::size_t journaled = 0;
  for (const std::size_t batch : run.drained_batch_sizes) {
    EXPECT_GT(batch, 0u);
    EXPECT_LE(batch, static_cast<std::size_t>(kClients));
    journaled += batch;
  }
  EXPECT_EQ(run.journal_blocks, kRounds);
  // The reusable block buffer is the journal's only per-round state; for
  // this fleet it stays a few hundred bytes no matter how many rounds ran.
  EXPECT_LT(run.journal_peak, 4096u);

  const testsupport::TempDir dir = testsupport::MakeTempDir();
  const std::string path = dir.File("replay.mhbj");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(run.journal_bytes.data()),
              static_cast<std::streamsize>(run.journal_bytes.size()));
    ASSERT_TRUE(out.good());
  }
  const ClientJournalContents contents = ReadClientJournal(path);
  ASSERT_EQ(contents.records.size(), journaled);

  // Every record carries a taxonomy tier, and the journal's drop ledger
  // reconciles exactly with the tier-keyed counter rollups.
  const std::set<std::string> known(std::begin(kTierNames),
                                    std::end(kTierNames));
  std::map<std::string, std::int64_t> trained, offline, straggler;
  for (const auto& rec : contents.records) {
    ASSERT_TRUE(known.count(rec.device_tier) != 0u) << rec.device_tier;
    if (rec.drop_reason.empty()) {
      ++trained[rec.device_tier];
    } else if (rec.drop_reason == "offline") {
      ++offline[rec.device_tier];
    } else {
      ASSERT_EQ(rec.drop_reason, "straggler");
      ++straggler[rec.device_tier];
    }
  }
  for (const char* tier : kTierNames) {
    EXPECT_EQ(trained[tier],
              run.totals.at(std::string("clients_trained@") + tier))
        << tier;
    EXPECT_EQ(offline[tier],
              run.totals.at(std::string("clients_offline@") + tier))
        << tier;
    EXPECT_EQ(straggler[tier],
              run.totals.at(std::string("clients_dropped@") + tier))
        << tier;
  }
}

}  // namespace
}  // namespace mhbench::obs
