// Contract tests for the determinism divergence auditor (obs/det_audit.h,
// DESIGN.md §5k): the FNV-1a hash is pinned against independently computed
// values (ledgers must compare across builds), the chain folds rounds in
// order, the ledger file carries one parseable JSON line per round, the
// metric filter excludes exactly the run-dependent metrics, and the
// MHB_DET_AUDIT_INJECT seam perturbs the named component from the named
// round on — and nothing else.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/det_audit.h"
#include "support/temp_dir.h"

namespace mhbench::obs {
namespace {

// Reference one-shot FNV-1a 64, written independently of DetHash.
std::uint64_t Fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const std::uint8_t b : bytes) h = (h ^ b) * 1099511628211ULL;
  return h;
}

TEST(DetHashTest, MatchesReferenceFnv1a) {
  // Known-answer: FNV-1a 64 of "a" is a published constant.
  DetHash h;
  h.Update("a", 1);
  EXPECT_EQ(h.value(), 0xaf63dc4c8601ec8cULL);

  DetHash empty;
  EXPECT_EQ(empty.value(), 14695981039346656037ULL);  // offset basis

  const std::vector<std::uint8_t> bytes = {0x00, 0xff, 0x10, 0x20, 0x7f};
  DetHash bulk;
  bulk.Update(bytes.data(), bytes.size());
  EXPECT_EQ(bulk.value(), Fnv1a(bytes));
}

TEST(DetHashTest, ChunkingDoesNotMatter) {
  DetHash one;
  one.Update("determinism", 11);
  DetHash two;
  two.Update("deter", 5);
  two.Update("minism", 6);
  EXPECT_EQ(one.value(), two.value());
}

TEST(DetHashTest, IntegersFoldLittleEndianFixedWidth) {
  DetHash h;
  h.UpdateU64(0x0123456789abcdefULL);
  std::vector<std::uint8_t> le = {0xef, 0xcd, 0xab, 0x89,
                                  0x67, 0x45, 0x23, 0x01};
  EXPECT_EQ(h.value(), Fnv1a(le));

  // Width is fixed: 1 hashes as 8 bytes, not as a varint.
  DetHash small;
  small.UpdateU64(1);
  std::vector<std::uint8_t> one = {1, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(small.value(), Fnv1a(one));
}

TEST(DetHashTest, StringsAreLengthPrefixed) {
  // ("ab", "c") must not collide with ("a", "bc").
  DetHash h1;
  h1.UpdateString("ab");
  h1.UpdateString("c");
  DetHash h2;
  h2.UpdateString("a");
  h2.UpdateString("bc");
  EXPECT_NE(h1.value(), h2.value());
}

TEST(DetHashTest, DoubleHashesBitPattern) {
  DetHash pos;
  pos.UpdateF64(0.0);
  DetHash neg;
  neg.UpdateF64(-0.0);
  EXPECT_NE(pos.value(), neg.value());
}

std::vector<std::pair<std::string, std::uint64_t>> SampleComponents(
    std::uint64_t salt) {
  return {{"rng", 0x1111 ^ salt}, {"model", 0x2222 ^ salt},
          {"counters", 0x3333 ^ salt}, {"hists", 0x4444 ^ salt}};
}

TEST(DetAuditorTest, ChainFoldsRoundsInOrder) {
  DetAuditor a;  // in-memory only
  a.RecordRound(0, SampleComponents(0));
  a.RecordRound(1, SampleComponents(1));
  ASSERT_EQ(a.rounds().size(), 2u);
  EXPECT_EQ(a.rounds()[0].round, 0);
  EXPECT_EQ(a.rounds()[1].round, 1);
  EXPECT_EQ(a.rounds()[1].chain, a.chain());
  EXPECT_NE(a.rounds()[0].chain, a.rounds()[1].chain);

  // Same rows in the same order reproduce the same chain...
  DetAuditor b;
  b.RecordRound(0, SampleComponents(0));
  b.RecordRound(1, SampleComponents(1));
  EXPECT_EQ(a.chain(), b.chain());

  // ...and swapping the rounds changes it.
  DetAuditor c;
  c.RecordRound(0, SampleComponents(1));
  c.RecordRound(1, SampleComponents(0));
  EXPECT_NE(a.chain(), c.chain());
}

TEST(DetAuditorTest, LedgerFileHasHeaderAndOneRowPerRound) {
  testsupport::TempDir dir = testsupport::MakeTempDir();
  const std::string path = dir.File("det_audit.jsonl");
  {
    DetAuditor a(path);
    a.WriteHeader("sheterofl", 7, 2, 4);
    a.RecordRound(0, SampleComponents(0));
    a.RecordRound(1, SampleComponents(1));
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"det_audit\": 1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"algorithm\": \"sheterofl\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"seed\": 7"), std::string::npos);
  EXPECT_NE(lines[0].find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(lines[1].find("\"round\": 0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"rng\": \"0x"), std::string::npos);
  EXPECT_NE(lines[2].find("\"round\": 1"), std::string::npos);
  EXPECT_NE(lines[2].find("\"chain\": \"0x"), std::string::npos);
}

TEST(DetAuditorTest, AuditableMetricExcludesRunDependentNames) {
  // In: result-bearing counters, including tiered variants.
  EXPECT_TRUE(DetAuditor::AuditableMetric("bytes_up"));
  EXPECT_TRUE(DetAuditor::AuditableMetric("straggler_drops"));
  EXPECT_TRUE(DetAuditor::AuditableMetric("train_mflops@tier=mid"));
  // Out: pool scheduling, wall-clock, checkpoint I/O.
  EXPECT_FALSE(DetAuditor::AuditableMetric("pool_tasks"));
  EXPECT_FALSE(DetAuditor::AuditableMetric("client_wall_us"));
  EXPECT_FALSE(DetAuditor::AuditableMetric("round_wall_ms"));
  EXPECT_FALSE(DetAuditor::AuditableMetric("client_wall_us@tier=low"));
  EXPECT_FALSE(DetAuditor::AuditableMetric("checkpoint_write_bytes"));
  // The suffix rule reads the base name, not the tier tag.
  EXPECT_TRUE(DetAuditor::AuditableMetric("bytes_up@tier=us"));
}

TEST(DetAuditorTest, InjectSeamPerturbsNamedComponentFromNamedRound) {
  ::setenv("MHB_DET_AUDIT_INJECT", "rng@1", 1);
  DetAuditor injected;  // reads the env var at construction
  ::unsetenv("MHB_DET_AUDIT_INJECT");
  DetAuditor clean;

  for (int r = 0; r < 3; ++r) {
    injected.RecordRound(r, SampleComponents(r));
    clean.RecordRound(r, SampleComponents(r));
  }
  ASSERT_EQ(injected.rounds().size(), 3u);
  for (int r = 0; r < 3; ++r) {
    const auto& ic = injected.rounds()[r].components;
    const auto& cc = clean.rounds()[r].components;
    ASSERT_EQ(ic.size(), cc.size());
    for (std::size_t k = 0; k < ic.size(); ++k) {
      EXPECT_EQ(ic[k].first, cc[k].first);
      const bool perturbed = ic[k].first == "rng" && r >= 1;
      EXPECT_EQ(ic[k].second != cc[k].second, perturbed)
          << "round " << r << " component " << ic[k].first;
    }
  }
  // Round 0 predates the inject round, so even its chain matches.
  EXPECT_EQ(injected.rounds()[0].chain, clean.rounds()[0].chain);
  EXPECT_NE(injected.rounds()[1].chain, clean.rounds()[1].chain);
}

TEST(DetAuditorTest, InjectWithoutRoundDefaultsToRoundZero) {
  ::setenv("MHB_DET_AUDIT_INJECT", "model", 1);
  DetAuditor injected;
  ::unsetenv("MHB_DET_AUDIT_INJECT");
  DetAuditor clean;
  injected.RecordRound(0, SampleComponents(0));
  clean.RecordRound(0, SampleComponents(0));
  EXPECT_NE(injected.rounds()[0].chain, clean.rounds()[0].chain);
}

}  // namespace
}  // namespace mhbench::obs
