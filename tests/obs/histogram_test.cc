#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/thread_pool.h"
#include "obs/registry.h"

namespace mhbench::obs {
namespace {

TEST(HistogramBucketTest, BoundariesArePowersOfTwo) {
  // Bucket 0 holds everything <= 0; bucket b holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Registry::BucketIndex(std::numeric_limits<std::int64_t>::min()),
            0);
  EXPECT_EQ(Registry::BucketIndex(-1), 0);
  EXPECT_EQ(Registry::BucketIndex(0), 0);
  EXPECT_EQ(Registry::BucketIndex(1), 1);
  EXPECT_EQ(Registry::BucketIndex(2), 2);
  EXPECT_EQ(Registry::BucketIndex(3), 2);
  EXPECT_EQ(Registry::BucketIndex(4), 3);
  EXPECT_EQ(Registry::BucketIndex(1023), 10);
  EXPECT_EQ(Registry::BucketIndex(1024), 11);
  EXPECT_EQ(Registry::BucketIndex(std::numeric_limits<std::int64_t>::max()),
            63);
  for (int b = 1; b < 63; ++b) {
    const std::int64_t lo = Registry::BucketLo(b);
    const std::int64_t hi = Registry::BucketHi(b);
    EXPECT_EQ(Registry::BucketIndex(lo), b) << "lo of bucket " << b;
    EXPECT_EQ(Registry::BucketIndex(hi), b) << "hi of bucket " << b;
    EXPECT_EQ(Registry::BucketIndex(hi + 1), b + 1);
  }
}

TEST(HistogramDataTest, ObserveTracksCountSumMinMax) {
  Registry::HistogramData h;
  EXPECT_TRUE(h.empty());
  for (const std::int64_t v : {5, 1, 9, 9, 3}) h.Observe(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum, 27);
  EXPECT_EQ(h.min, 1);
  EXPECT_EQ(h.max, 9);
}

TEST(HistogramDataTest, MergeIsAssociativeAndCommutative) {
  auto fill = [](std::initializer_list<std::int64_t> vs) {
    Registry::HistogramData h;
    for (const std::int64_t v : vs) h.Observe(v);
    return h;
  };
  const auto a = fill({1, 100, 7});
  const auto b = fill({3});
  const auto c = fill({50000, 2, 2});

  Registry::HistogramData ab_c = a;
  ab_c.Merge(b);
  ab_c.Merge(c);
  Registry::HistogramData a_bc = b;
  a_bc.Merge(c);
  a_bc.Merge(a);

  EXPECT_EQ(ab_c.buckets, a_bc.buckets);
  EXPECT_EQ(ab_c.sum, a_bc.sum);
  EXPECT_EQ(ab_c.min, a_bc.min);
  EXPECT_EQ(ab_c.max, a_bc.max);
  EXPECT_DOUBLE_EQ(ab_c.Quantile(0.5), a_bc.Quantile(0.5));

  Registry::HistogramData with_empty = a;
  with_empty.Merge(Registry::HistogramData{});
  EXPECT_EQ(with_empty.buckets, a.buckets);
  EXPECT_EQ(with_empty.min, a.min);
}

TEST(HistogramDataTest, QuantilesClampToObservedRange) {
  Registry::HistogramData h;
  h.Observe(42);
  // A single observation must report itself at every quantile.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 42.0);

  Registry::HistogramData many;
  for (std::int64_t v = 1; v <= 1000; ++v) many.Observe(v);
  const double p50 = many.Quantile(0.5);
  EXPECT_GE(p50, many.min);
  EXPECT_LE(p50, many.max);
  EXPECT_LE(many.Quantile(0.5), many.Quantile(0.95));
  EXPECT_LE(many.Quantile(0.95), many.Quantile(0.99));
}

// The tentpole determinism contract: per-thread sinks merged at the barrier
// must give bucket totals (and therefore quantiles) that do not depend on
// how observations were spread over threads.
TEST(HistogramRegistryTest, TotalsIdenticalAcrossThreadCounts) {
  std::vector<std::int64_t> values;
  for (std::int64_t i = 0; i < 500; ++i) values.push_back((i * 37) % 6000);

  auto run = [&values](int threads) {
    Registry reg;
    const Registry::HistogramId id = reg.Histogram("lat_us");
    core::ThreadPool pool(threads);
    core::ParallelFor(&pool, values.size(), [&](std::size_t i) {
      reg.Observe(id, values[i]);
    });
    reg.EndRound("run", 0);
    return reg.HistogramTotals("lat_us");
  };

  const Registry::HistogramData h1 = run(1);
  for (const int threads : {2, 4}) {
    const Registry::HistogramData hn = run(threads);
    EXPECT_EQ(h1.buckets, hn.buckets) << threads << " threads";
    EXPECT_EQ(h1.sum, hn.sum);
    EXPECT_EQ(h1.min, hn.min);
    EXPECT_EQ(h1.max, hn.max);
    EXPECT_DOUBLE_EQ(h1.Quantile(0.5), hn.Quantile(0.5));
    EXPECT_DOUBLE_EQ(h1.Quantile(0.95), hn.Quantile(0.95));
    EXPECT_DOUBLE_EQ(h1.Quantile(0.99), hn.Quantile(0.99));
  }
}

TEST(HistogramRegistryTest, RoundRowsCarryPerRoundDeltas) {
  Registry reg;
  const Registry::HistogramId id = reg.Histogram("bytes");
  reg.Observe(id, 100);
  reg.Observe(id, 300);
  reg.EndRound("run", 0);
  reg.Observe(id, 7);
  reg.EndRound("run", 1);

  const std::vector<Registry::RoundRow>& rows = reg.rounds();
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[0].hists.count("bytes"), 1u);
  EXPECT_EQ(rows[0].hists.at("bytes").count(), 2);
  EXPECT_EQ(rows[0].hists.at("bytes").sum, 400);
  // Round 1 starts fresh: min/max reflect only the new observation.
  ASSERT_EQ(rows[1].hists.count("bytes"), 1u);
  EXPECT_EQ(rows[1].hists.at("bytes").count(), 1);
  EXPECT_EQ(rows[1].hists.at("bytes").min, 7);
  EXPECT_EQ(rows[1].hists.at("bytes").max, 7);
  // The cumulative totals still span both rounds.
  const Registry::HistogramData total = reg.HistogramTotals("bytes");
  EXPECT_EQ(total.count(), 3);
  EXPECT_EQ(total.min, 7);
  EXPECT_EQ(total.max, 300);
}

}  // namespace
}  // namespace mhbench::obs
