#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/thread_pool.h"
#include "obs/profile.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace mhbench::obs {
namespace {

TEST(ProfileScopeTest, InertWithoutThreadGuard) {
  // No ProfilerThreadGuard installed: scopes must not record anywhere,
  // even while a profiler object exists.
  Profiler profiler;
  {
    ProfileScope outer("outer");
    ProfileScope inner("inner");
  }
  EXPECT_EQ(Profiler::Current(), nullptr);
  EXPECT_TRUE(profiler.TotalsByName().empty());
  EXPECT_TRUE(profiler.MergedTree().children.empty());
}

TEST(ProfilerTest, NestedScopesBuildATree) {
  Profiler profiler;
  {
    ProfilerThreadGuard guard(&profiler);
    for (int i = 0; i < 3; ++i) {
      ProfileScope train("train");
      {
        ProfileScope fwd("forward");
      }
      {
        ProfileScope bwd("backward");
      }
    }
    ProfileScope other("other");
  }

  const Profiler::TreeNode root = profiler.MergedTree();
  ASSERT_EQ(root.children.size(), 2u);  // sorted by name
  EXPECT_EQ(root.children[0].name, "other");
  EXPECT_EQ(root.children[1].name, "train");
  const Profiler::TreeNode& train = root.children[1];
  EXPECT_EQ(train.count, 3);
  ASSERT_EQ(train.children.size(), 2u);
  EXPECT_EQ(train.children[0].name, "backward");
  EXPECT_EQ(train.children[0].count, 3);
  EXPECT_EQ(train.children[1].name, "forward");
  // Inclusive time covers the children; self time is never negative.
  EXPECT_GE(train.wall_ns, train.child_wall_ns);
  EXPECT_GE(train.child_wall_ns,
            train.children[0].wall_ns + train.children[1].wall_ns);
}

TEST(ProfilerTest, TotalsByNameFoldTreePositions) {
  Profiler profiler;
  {
    ProfilerThreadGuard guard(&profiler);
    {
      ProfileScope a("phase_a");
      ProfileScope shared("shared");
    }
    {
      ProfileScope b("phase_b");
      ProfileScope shared("shared");
    }
  }
  const std::map<std::string, Profiler::OpStats> totals =
      profiler.TotalsByName();
  ASSERT_EQ(totals.count("shared"), 1u);
  // "shared" appears under two parents; the flat view folds both.
  EXPECT_EQ(totals.at("shared").count, 2);
  EXPECT_EQ(totals.at("phase_a").count, 1);
}

TEST(ProfilerTest, AttributesGemmFlopsToTheEnclosingScope) {
  Profiler profiler;
  const Tensor a(Shape{8, 8}, 1.0f);
  const Tensor b(Shape{8, 8}, 2.0f);
  {
    ProfilerThreadGuard guard(&profiler);
    ProfileScope scope("matmul");
    (void)ops::Matmul(a, b);
  }
  const auto totals = profiler.TotalsByName();
  ASSERT_EQ(totals.count("matmul"), 1u);
  EXPECT_EQ(totals.at("matmul").gemm_flops, 2ll * 8 * 8 * 8);
}

TEST(ProfilerTest, MergesPerThreadSinksByName) {
  Profiler profiler;
  core::ThreadPool pool(4);
  core::ParallelFor(&pool, 16, [&profiler](std::size_t) {
    ProfilerThreadGuard guard(&profiler);
    ProfileScope work("work");
    ProfileScope step("step");
  });
  const auto totals = profiler.TotalsByName();
  ASSERT_EQ(totals.count("work"), 1u);
  EXPECT_EQ(totals.at("work").count, 16);
  EXPECT_EQ(totals.at("step").count, 16);
  const Profiler::TreeNode root = profiler.MergedTree();
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].count, 16);
  ASSERT_EQ(root.children[0].children.size(), 1u);
  EXPECT_EQ(root.children[0].children[0].name, "step");
}

TEST(ProfilerTest, InternedNamesMergeWithLiterals) {
  Profiler profiler;
  const std::string dynamic = std::string("blo") + "ck0";
  const char* interned = profiler.Intern(dynamic);
  EXPECT_EQ(interned, profiler.Intern("block0"));  // stable pointer
  {
    ProfilerThreadGuard guard(&profiler);
    {
      ProfileScope s(interned);
    }
    {
      ProfileScope s("block0");
    }
  }
  const auto totals = profiler.TotalsByName();
  ASSERT_EQ(totals.count("block0"), 1u);
  EXPECT_EQ(totals.at("block0").count, 2);
}

TEST(ProfilerTest, JsonHasOpTotalsAndTreeRows) {
  Profiler profiler;
  {
    ProfilerThreadGuard guard(&profiler);
    ProfileScope outer("outer");
    ProfileScope inner("inner");
  }
  const std::string json = profiler.ToJson();
  EXPECT_NE(json.find("\"op_totals\""), std::string::npos);
  EXPECT_NE(json.find("\"tree\""), std::string::npos);
  EXPECT_NE(json.find("\"outer/inner\""), std::string::npos);
  EXPECT_NE(json.find("\"self_wall_us\""), std::string::npos);
}

}  // namespace
}  // namespace mhbench::obs
