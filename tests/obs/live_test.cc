// Live telemetry exporter (obs/live.h, DESIGN.md §5h): rendering goldens,
// HTTP endpoint behavior, heartbeat JSONL, the stall watchdog, and — the
// part that matters most — proof that polling the exporter from a
// background thread during a real engine run perturbs neither results nor
// counter totals at any thread count.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/registry.h"
#include "data/tasks.h"
#include "fl/engine.h"
#include "models/zoo.h"
#include "obs/live.h"
#include "obs/manifest.h"
#include "obs/registry.h"
#include "support/temp_dir.h"

namespace mhbench::obs {
namespace {

// Polls `pred` until true or the deadline passes.  Telemetry timing tests
// use generous deadlines with tiny configured intervals, so they pass fast
// on a healthy machine and stay robust on a loaded CI box.
bool WaitFor(const std::function<bool()>& pred, double timeout_s = 10.0) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// Minimal blocking HTTP client for the loopback server under test: sends
// the raw request bytes, reads to EOF (the server always closes).
std::string RawRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect to 127.0.0.1:" << port << " failed";
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(int port, const std::string& path) {
  return RawRequest(port, "GET " + path +
                              " HTTP/1.1\r\nHost: t\r\nConnection: "
                              "close\r\n\r\n");
}

// A registry carrying one flushed round with known counters, a histogram
// and gauges — the fixture behind the rendering goldens.
void FillRegistry(Registry* reg) {
  reg->AddNamed("bytes_up", 1500);
  reg->AddNamed("clients_trained", 3);
  for (int i = 0; i < 3; ++i) reg->ObserveNamed("lat_us", 100);
  reg->SetGauge("global_acc", 0.5);
  reg->SetGauge("sim_time_s", 12.5);
  reg->EndRound("fedavg", 0);
}

TEST(RegistrySnapshotTest, SeesOnlyFlushedState) {
  Registry reg;
  const Registry::CounterId id = reg.Counter("bytes_up");
  reg.Add(id, 999);

  // Nothing has crossed a barrier: the snapshot must not see the sink.
  Registry::LiveSnapshot snap = reg.SnapshotTotals();
  EXPECT_EQ(snap.counters.at("bytes_up"), 0);
  EXPECT_EQ(snap.last_round, -1);
  EXPECT_EQ(snap.rounds_completed, 0u);
  EXPECT_TRUE(snap.accuracy.empty());

  reg.SetGauge("global_acc", 0.25);
  reg.SetGauge("sim_time_s", 3.5);
  reg.EndRound("fedavg", 0);
  snap = reg.SnapshotTotals();
  EXPECT_EQ(snap.counters.at("bytes_up"), 999);
  EXPECT_EQ(snap.last_round, 0);
  EXPECT_EQ(snap.last_run, "fedavg");
  EXPECT_EQ(snap.rounds_completed, 1u);
  EXPECT_DOUBLE_EQ(snap.sim_time_s, 3.5);
  ASSERT_EQ(snap.accuracy.size(), 1u);
  EXPECT_EQ(snap.accuracy[0].first, 0);
  EXPECT_DOUBLE_EQ(snap.accuracy[0].second, 0.25);

  // Rounds without an evaluation add no accuracy point.
  reg.Add(id, 1);
  reg.EndRound("fedavg", 1);
  snap = reg.SnapshotTotals();
  EXPECT_EQ(snap.counters.at("bytes_up"), 1000);
  EXPECT_EQ(snap.last_round, 1);
  EXPECT_EQ(snap.rounds_completed, 2u);
  EXPECT_EQ(snap.accuracy.size(), 1u);
}

TEST(RegistrySnapshotTest, RoundSinkStreamsPublishedRows) {
  Registry reg;
  std::vector<Registry::RoundRow> seen;
  std::vector<std::size_t> rounds_visible_in_sink;
  reg.SetRoundSink([&](const Registry::RoundRow& row) {
    seen.push_back(row);
    // The sink runs outside the registry lock, so it may call back into
    // serial-phase accessors — exactly what the rounds.csv streamer does.
    rounds_visible_in_sink.push_back(reg.rounds().size());
  });

  reg.AddNamed("bytes_up", 10);
  reg.EndRound("fedavg", 0);
  reg.AddNamed("bytes_up", 5);
  reg.EndRound("fedavg", 1);
  reg.SetRoundSink(nullptr);
  reg.EndRound("fedavg", 2);  // uninstalled: not streamed

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].round, 0);
  EXPECT_EQ(seen[0].counters.at("bytes_up"), 10);
  EXPECT_EQ(seen[1].round, 1);
  EXPECT_EQ(seen[1].counters.at("bytes_up"), 5);
  EXPECT_EQ(rounds_visible_in_sink, (std::vector<std::size_t>{1u, 2u}));
}

TEST(RegistrySnapshotTest, StreamedRoundsCsvMatchesFinalRewrite) {
  const testsupport::TempDir dir = testsupport::MakeTempDir();
  Registry reg;
  reg.SetRoundSink([&](const Registry::RoundRow&) {
    WriteRoundsCsv(dir.path, reg);
  });
  reg.AddNamed("bytes_up", 10);
  reg.SetGauge("global_acc", 0.5);
  reg.EndRound("fedavg", 0);
  reg.AddNamed("bytes_up", 7);
  reg.EndRound("fedavg", 1);
  reg.SetRoundSink(nullptr);

  std::ifstream streamed_f(dir.File("rounds.csv"));
  std::stringstream streamed;
  streamed << streamed_f.rdbuf();
  ASSERT_FALSE(streamed.str().empty());

  // The end-of-run rewrite must be byte-identical to the last streamed
  // state: streaming only changes when the file appears, not what it says.
  const testsupport::TempDir dir2 = testsupport::MakeTempDir();
  WriteRoundsCsv(dir2.path, reg);
  std::ifstream final_f(dir2.File("rounds.csv"));
  std::stringstream final_s;
  final_s << final_f.rdbuf();
  EXPECT_EQ(streamed.str(), final_s.str());
}

TEST(LiveExporterTest, MetricsTextGolden) {
  Registry reg;
  FillRegistry(&reg);
  LiveConfig cfg;  // no HTTP, no heartbeat, no watchdog: render only
  LiveExporter live(cfg, &reg);
  live.NotifyProgress(0, 12.5);

  const std::string want =
      "# mhbench live telemetry (Prometheus text exposition 0.0.4)\n"
      "# TYPE mhb_up gauge\nmhb_up 1\n"
      "# TYPE mhb_rounds_completed counter\nmhb_rounds_completed 1\n"
      "# TYPE mhb_last_round gauge\nmhb_last_round 0\n"
      "# TYPE mhb_sim_time_seconds gauge\nmhb_sim_time_seconds 12.5\n"
      "# TYPE mhb_global_accuracy gauge\nmhb_global_accuracy 0.5\n"
      "# TYPE mhb_heartbeats counter\nmhb_heartbeats 0\n"
      "# TYPE mhb_watchdog_stalls counter\nmhb_watchdog_stalls 0\n"
      "# TYPE mhb_stalled gauge\nmhb_stalled 0\n"
      "# TYPE mhb_checkpoints_written counter\nmhb_checkpoints_written 0\n"
      "# TYPE mhb_counter_bytes_up counter\nmhb_counter_bytes_up 1500\n"
      "# TYPE mhb_counter_clients_trained counter\n"
      "mhb_counter_clients_trained 3\n"
      "# TYPE mhb_hist_lat_us summary\n"
      "mhb_hist_lat_us{quantile=\"0.5\"} 100\n"
      "mhb_hist_lat_us{quantile=\"0.95\"} 100\n"
      "mhb_hist_lat_us{quantile=\"0.99\"} 100\n"
      "mhb_hist_lat_us_sum 300\n"
      "mhb_hist_lat_us_count 3\n";
  EXPECT_EQ(live.MetricsText(), want);
}

TEST(LiveExporterTest, StatusJsonCarriesTheSchema) {
  Registry reg;
  FillRegistry(&reg);
  LiveConfig cfg;
  cfg.run_id = "cifar100-none-fedavg-seed7";
  cfg.rounds_total = 8;
  LiveExporter live(cfg, &reg);
  live.NotifyProgress(0, 12.5);
  live.NotifyCheckpoint(1, "checkpoints/round1.mhbsnap");

  const std::string json = live.StatusJson();
  EXPECT_NE(json.find("\"run_id\": \"cifar100-none-fedavg-seed7\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"run\": \"fedavg\""), std::string::npos);
  EXPECT_NE(json.find("\"rounds_completed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"last_round\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"rounds_total\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"sim_time_s\": 12.5"), std::string::npos);
  EXPECT_NE(json.find("\"stalled\": false"), std::string::npos);
  EXPECT_NE(json.find("\"watchdog_stalls\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"accuracy\": [[0, 0.5]]"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_up\": 1500"), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\": {\"count\":3,\"sum\":300"),
            std::string::npos);
  EXPECT_NE(json.find("\"global_acc\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint\": {\"written\": 1, \"next_round\": 1, "
                      "\"path\": \"checkpoints/round1.mhbsnap\"}"),
            std::string::npos);
}

TEST(LiveExporterTest, NullRegistryServesExporterLocalState) {
  LiveConfig cfg;
  cfg.run_id = "bare";
  LiveExporter live(cfg, nullptr);
  live.NotifyProgress(2, 7.0);
  EXPECT_NE(live.MetricsText().find("mhb_last_round 2"), std::string::npos);
  EXPECT_NE(live.StatusJson().find("\"run_id\": \"bare\""),
            std::string::npos);
}

TEST(LiveExporterTest, HttpEndpointsServeTelemetry) {
  Registry reg;
  FillRegistry(&reg);
  LiveConfig cfg;
  cfg.http_port = 0;  // ephemeral
  LiveExporter live(cfg, &reg);
  ASSERT_GT(live.http_port(), 0);
  const int port = live.http_port();

  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("mhb_counter_bytes_up 1500"), std::string::npos);

  const std::string status = HttpGet(port, "/status.json");
  EXPECT_NE(status.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(status.find("application/json"), std::string::npos);
  EXPECT_NE(status.find("\"rounds_completed\": 1"), std::string::npos);

  const std::string health = HttpGet(port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  EXPECT_NE(HttpGet(port, "/nope").find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(RawRequest(port, "POST /metrics HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
  EXPECT_NE(RawRequest(port, "complete garbage\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);

  // HEAD: headers only, no body payload after the blank line.
  const std::string head =
      RawRequest(port, "HEAD /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos);
  const std::size_t blank = head.find("\r\n\r\n");
  ASSERT_NE(blank, std::string::npos);
  EXPECT_EQ(head.substr(blank + 4), "");

  live.Stop();
  live.Stop();  // idempotent
}

TEST(LiveExporterTest, HeartbeatAppendsParseableJsonl) {
  const testsupport::TempDir dir = testsupport::MakeTempDir();
  Registry reg;
  FillRegistry(&reg);
  LiveConfig cfg;
  cfg.heartbeat_every_s = 0.02;
  cfg.heartbeat_path = dir.File("heartbeat.jsonl");
  cfg.run_id = "hb-run";
  cfg.rounds_total = 4;
  LiveExporter live(cfg, &reg);
  live.NotifyProgress(0, 12.5);
  ASSERT_TRUE(WaitFor([&] { return live.heartbeat_count() >= 2; }))
      << "no heartbeats after 10 s";
  live.Stop();
  const std::int64_t written = live.heartbeat_count();

  std::ifstream f(cfg.heartbeat_path);
  ASSERT_TRUE(f.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(f, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(written));
  ASSERT_GE(lines.size(), 3u);  // >= 2 periodic + the final line at Stop
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    // Shape: one JSON object per line, monotone seq, the agreed keys.
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"seq\":" + std::to_string(i)), std::string::npos)
        << line;
    for (const char* key :
         {"\"utc\":", "\"unix_s\":", "\"uptime_s\":", "\"run_id\":\"hb-run\"",
          "\"round\":", "\"rounds_completed\":", "\"rounds_total\":4",
          "\"sim_time_s\":", "\"clients_trained\":", "\"bytes_up\":",
          "\"checkpoints_written\":", "\"stalled\":false",
          "\"watchdog_stalls\":0"}) {
      EXPECT_NE(line.find(key), std::string::npos)
          << "missing " << key << " in: " << line;
    }
  }
}

TEST(LiveWatchdogTest, FiresOnStallAndRecoversOnProgress) {
  LiveConfig cfg;
  cfg.watchdog_stall_s = 0.05;
  LiveExporter live(cfg, nullptr);
  ASSERT_TRUE(WaitFor([&] { return live.stalled(); }))
      << "watchdog never fired on an artificial stall";
  EXPECT_EQ(live.stall_count(), 1);
  EXPECT_NE(live.MetricsText().find("mhb_stalled 1"), std::string::npos);
  EXPECT_NE(live.StatusJson().find("\"stalled\": true"), std::string::npos);

  live.NotifyProgress(0, 1.0);
  EXPECT_FALSE(live.stalled());
  // A second stall after recovery counts again.
  ASSERT_TRUE(WaitFor([&] { return live.stall_count() >= 2; }));
  live.Stop();
}

TEST(LiveWatchdogTest, HealthzReports503WhileStalled) {
  LiveConfig cfg;
  cfg.watchdog_stall_s = 0.05;
  cfg.http_port = 0;
  LiveExporter live(cfg, nullptr);
  ASSERT_GT(live.http_port(), 0);
  ASSERT_TRUE(WaitFor([&] { return live.stalled(); }));
  const std::string health = HttpGet(live.http_port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 503"), std::string::npos) << health;
  EXPECT_NE(health.find("stalled"), std::string::npos);
}

TEST(LiveWatchdogTest, SilentOnHealthyRun) {
  LiveConfig cfg;
  cfg.watchdog_stall_s = 0.2;
  LiveExporter live(cfg, nullptr);
  for (int i = 0; i < 10; ++i) {
    live.NotifyProgress(i, i * 1.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_FALSE(live.stalled());
  EXPECT_EQ(live.stall_count(), 0);
}

TEST(LiveWatchdogTest, AbortSeamRunsInsteadOfProcessExit) {
  std::atomic<int> aborts{0};
  LiveConfig cfg;
  cfg.watchdog_stall_s = 0.05;
  cfg.watchdog_abort = true;
  cfg.on_watchdog_abort = [&aborts] { ++aborts; };
  LiveExporter live(cfg, nullptr);
  ASSERT_TRUE(WaitFor([&] { return aborts.load() >= 1; }))
      << "abort hook never invoked";
  live.Stop();
  EXPECT_GE(live.stall_count(), 1);
}

TEST(LiveWatchdogTest, AbortFlushesATerminalHeartbeatLine) {
  const testsupport::TempDir dir = testsupport::MakeTempDir();
  std::atomic<int> aborts{0};
  LiveConfig cfg;
  cfg.watchdog_stall_s = 0.05;
  cfg.watchdog_abort = true;
  cfg.on_watchdog_abort = [&aborts] { ++aborts; };
  cfg.heartbeat_every_s = 1000.0;  // periodic beat never fires in-test
  cfg.heartbeat_path = dir.File("heartbeat.jsonl");
  cfg.run_id = "abort-run";
  LiveExporter live(cfg, nullptr);
  ASSERT_TRUE(WaitFor([&] { return aborts.load() >= 1; }))
      << "abort hook never invoked";

  // The dying breath: before the abort path hands over to the hook (in
  // production: process exit), the watchdog flushes one heartbeat line
  // already marked stalled, so a killed campaign's last on-disk record
  // says why it died rather than just going silent.
  std::ifstream f(cfg.heartbeat_path);
  ASSERT_TRUE(f.good()) << "no heartbeat file after watchdog abort";
  std::vector<std::string> lines;
  for (std::string line; std::getline(f, line);) lines.push_back(line);
  ASSERT_GE(lines.size(), 1u);
  EXPECT_NE(lines.front().find("\"stalled\":true"), std::string::npos)
      << lines.front();
  EXPECT_NE(lines.front().find("\"run_id\":\"abort-run\""), std::string::npos)
      << lines.front();
  live.Stop();
}

// Tier-keyed registry entries (`<base>@<tier>`, DESIGN.md §5j) and how the
// two HTTP surfaces present them: /metrics folds the tier into a Prometheus
// label on the base family (one TYPE header per family, untiered lines
// byte-identical to the tier-free world — MetricsTextGolden above still
// pins that); /status.json keeps its flat counters/histograms maps
// tier-free and regroups the rollups under a "tiers" object.
TEST(LiveExporterTest, TierKeyedEntriesRenderAsLabelsAndStatusTiers) {
  Registry reg;
  reg.AddNamed("bytes_up", 1500);
  reg.AddNamed("bytes_up@cpu", 500);
  reg.AddNamed("bytes_up@mem4g", 1000);
  reg.ObserveNamed("lat_us@cpu", 100);
  reg.EndRound("fedavg", 0);
  LiveConfig cfg;
  LiveExporter live(cfg, &reg);

  const std::string metrics = live.MetricsText();
  EXPECT_NE(metrics.find("# TYPE mhb_counter_bytes_up counter\n"
                         "mhb_counter_bytes_up 1500\n"
                         "mhb_counter_bytes_up{tier=\"cpu\"} 500\n"
                         "mhb_counter_bytes_up{tier=\"mem4g\"} 1000\n"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("# TYPE mhb_hist_lat_us summary\n"
                         "mhb_hist_lat_us{tier=\"cpu\",quantile=\"0.5\"} 100"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("mhb_hist_lat_us_sum{tier=\"cpu\"} 100"),
            std::string::npos);
  EXPECT_NE(metrics.find("mhb_hist_lat_us_count{tier=\"cpu\"} 1"),
            std::string::npos);
  EXPECT_EQ(metrics.find('@'), std::string::npos)
      << "raw @-names leaked into the Prometheus exposition";

  const std::string status = live.StatusJson();
  EXPECT_NE(status.find("\"bytes_up\": 1500"), std::string::npos) << status;
  EXPECT_EQ(status.find('@'), std::string::npos)
      << "flat /status.json maps must stay tier-free";
  EXPECT_NE(status.find("\"tiers\": {"), std::string::npos);
  EXPECT_NE(status.find("\"cpu\": {\"counters\": {\"bytes_up\": 500}, "
                        "\"histograms\": {\"lat_us\": {\"count\":1"),
            std::string::npos)
      << status;
  EXPECT_NE(status.find("\"mem4g\": {\"counters\": {\"bytes_up\": 1000}"),
            std::string::npos)
      << status;
}

// The contract the whole subsystem exists to honor: a real engine run with
// the exporter attached — HTTP server up, heartbeats on, watchdog armed,
// and a poller thread hammering every surface concurrently with training —
// produces results and counter totals bit-identical to the bare run, at
// every thread count.  Under TSan this also proves the snapshot path is
// race-free against the engine's barrier flushes.
TEST(LiveDeterminismTest, PollingExporterDoesNotPerturbEngineRuns) {
  data::TaskConfig tcfg;
  tcfg.train_samples = 120;
  tcfg.test_samples = 60;
  tcfg.num_clients = 4;
  const data::Task task = data::MakeTask("cifar10", tcfg);

  auto run = [&task](int threads, const obs::ObsConfig& obs) {
    const auto tm = models::MakeTaskModels("cifar10");
    auto alg = algorithms::MakeAlgorithm("fedavg", tm);
    fl::FlConfig cfg;
    cfg.rounds = 2;
    cfg.sample_fraction = 1.0;
    cfg.eval_every = 1;
    cfg.eval_max_samples = 48;
    cfg.stability_max_samples = 24;
    cfg.num_threads = threads;
    cfg.obs = obs;
    fl::FlEngine engine(task, cfg,
                        fl::UniformCapacityAssignments(4, {0.5, 1.0}), *alg);
    return engine.Run();
  };

  const fl::RunResult bare = run(1, {});

  std::map<std::string, std::int64_t> reference_totals;
  for (const int threads : {1, 2, 4}) {
    const testsupport::TempDir dir = testsupport::MakeTempDir();
    Registry registry;
    LiveConfig lcfg;
    lcfg.http_port = 0;
    lcfg.heartbeat_every_s = 0.01;
    lcfg.heartbeat_path = dir.File("heartbeat.jsonl");
    lcfg.watchdog_stall_s = 60.0;  // armed but must stay silent
    lcfg.run_id = "live-determinism";
    lcfg.rounds_total = 2;
    LiveExporter live(lcfg, &registry);
    ASSERT_GT(live.http_port(), 0);

    obs::ObsConfig obs;
    obs.registry = &registry;
    obs.live = &live;

    std::atomic<bool> done{false};
    std::atomic<int> polls{0};
    std::thread poller([&] {
      while (!done.load()) {
        live.MetricsText();
        live.StatusJson();
        HttpGet(live.http_port(), "/metrics");
        HttpGet(live.http_port(), "/status.json");
        registry.SnapshotTotals();
        ++polls;
      }
    });

    const fl::RunResult result = run(threads, obs);
    done.store(true);
    poller.join();
    live.Stop();

    EXPECT_GT(polls.load(), 0);
    EXPECT_EQ(live.stall_count(), 0);
    EXPECT_GE(live.heartbeat_count(), 1);  // final heartbeat at minimum

    // Bit-identical results...
    EXPECT_EQ(bare.final_accuracy, result.final_accuracy);
    EXPECT_EQ(bare.total_sim_time_s, result.total_sim_time_s);
    EXPECT_EQ(bare.total_participations, result.total_participations);
    ASSERT_EQ(bare.curve.size(), result.curve.size());
    for (std::size_t i = 0; i < bare.curve.size(); ++i) {
      EXPECT_EQ(bare.curve[i].global_acc, result.curve[i].global_acc);
      EXPECT_EQ(bare.curve[i].sim_time_s, result.curve[i].sim_time_s);
    }
    // ...and thread-count-independent totals with the exporter attached.
    auto totals = registry.Totals();
    totals.erase("pool_tasks");  // helper-task count tracks the pool size
    EXPECT_GT(totals.at("clients_trained"), 0);
    if (threads == 1) {
      reference_totals = totals;
    } else {
      EXPECT_EQ(totals, reference_totals)
          << "exporter perturbed totals at num_threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace mhbench::obs
