// Wire-format contract tests for the bounded-memory client event journal
// (obs/journal.h, DESIGN.md §5j), mirroring the snapshot format suite: the
// byte layout is pinned by a hand-assembled golden (built with independent
// little-endian helpers and a bit-at-a-time reference CRC), and the reader
// must reject EVERY single-bit corruption and EVERY truncation — a flipped
// bit or a torn tail may never yield silently-wrong client telemetry.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/error.h"
#include "obs/journal.h"
#include "obs/registry.h"
#include "support/temp_dir.h"

namespace mhbench::obs {
namespace {

// Reference CRC-32 (IEEE 802.3, reflected 0xEDB88320), bit-at-a-time — an
// implementation independent of the table-driven one under test.
std::uint32_t BitwiseCrc32(const std::vector<std::uint8_t>& data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    crc ^= byte;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

// Independent little-endian byte builders for the golden layout.
template <typename T>
void PushLe(std::vector<std::uint8_t>& out, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void PushF64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PushLe<std::uint64_t>(out, bits);
}

void PushStr(std::vector<std::uint8_t>& out, const std::string& s) {
  PushLe<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::vector<std::uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

Registry::ClientRow MakeRow(const std::string& run, int round, int client,
                            const std::string& tier,
                            const std::string& drop_reason) {
  Registry::ClientRow row;
  row.run = run;
  row.round = round;
  row.client = client;
  row.device_tier = tier;
  row.drop_reason = drop_reason;
  return row;
}

// The example stream every structural test reuses: two round barriers with
// all three drop codes, distinct tiers, and a non-zero wall_ms on the
// trained row — which must NOT appear anywhere in the bytes.
const std::uint64_t kSeed = 42;

std::vector<Registry::ClientRow> ExampleRound1() {
  std::vector<Registry::ClientRow> rows;
  Registry::ClientRow a = MakeRow("fedavg", 1, 0, "cpu", "");
  a.sim_compute_s = 5.5;
  a.sim_comm_s = 2.0;
  a.memory_mb = 512.0;
  a.wall_ms = 3.25;  // measured wall time: histogram-only, never journaled
  a.bytes_up = 1000;
  a.bytes_down = 2000;
  a.train_mflops = 77;
  rows.push_back(a);
  Registry::ClientRow b = MakeRow("fedavg", 1, 1, "mem4g", "offline");
  b.memory_mb = 2048.0;
  rows.push_back(b);
  return rows;
}

std::vector<Registry::ClientRow> ExampleRound2() {
  std::vector<Registry::ClientRow> rows;
  Registry::ClientRow c = MakeRow("fedavg", 2, 2, "mem16g", "straggler");
  c.sim_compute_s = 26.0;
  c.sim_comm_s = 2.0;
  c.memory_mb = 8192.0;
  rows.push_back(c);
  return rows;
}

std::vector<std::uint8_t> WriteExampleJournal(const std::string& path) {
  ClientJournalWriter::Options opts;
  opts.sample_rate = 1.0;
  opts.sample_seed = kSeed;
  ClientJournalWriter writer(path, opts);
  writer.Append(ExampleRound1());
  writer.Append(ExampleRound2());
  writer.Close();
  return ReadFileBytes(path);
}

void PushRecord(std::vector<std::uint8_t>& out, const Registry::ClientRow& r,
                std::uint8_t drop_code) {
  PushLe<std::uint32_t>(out, static_cast<std::uint32_t>(r.client));
  PushStr(out, r.device_tier);
  out.push_back(drop_code);
  PushF64(out, r.sim_compute_s);
  PushF64(out, r.sim_comm_s);
  PushF64(out, r.memory_mb);
  PushLe<std::uint64_t>(out, static_cast<std::uint64_t>(r.bytes_up));
  PushLe<std::uint64_t>(out, static_cast<std::uint64_t>(r.bytes_down));
  PushLe<std::uint64_t>(out, static_cast<std::uint64_t>(r.train_mflops));
}

void PushBlock(std::vector<std::uint8_t>& out, int round,
               const std::string& run,
               const std::vector<std::uint8_t>& records,
               std::uint32_t record_count) {
  std::vector<std::uint8_t> payload;
  PushLe<std::uint32_t>(payload, static_cast<std::uint32_t>(round));
  PushStr(payload, run);
  PushLe<std::uint32_t>(payload, record_count);
  payload.insert(payload.end(), records.begin(), records.end());
  PushLe<std::uint64_t>(out, payload.size());
  PushLe<std::uint32_t>(out, BitwiseCrc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t> GoldenExampleBytes() {
  std::vector<std::uint8_t> want;
  const char magic[] = "MHBJRNL1";
  want.insert(want.end(), magic, magic + 8);
  PushLe<std::uint32_t>(want, 1);  // version
  PushF64(want, 1.0);              // sample_rate
  PushLe<std::uint64_t>(want, kSeed);

  const auto r1 = ExampleRound1();
  std::vector<std::uint8_t> recs1;
  PushRecord(recs1, r1[0], 0);
  PushRecord(recs1, r1[1], 1);
  PushBlock(want, 1, "fedavg", recs1, 2);

  const auto r2 = ExampleRound2();
  std::vector<std::uint8_t> recs2;
  PushRecord(recs2, r2[0], 2);
  PushBlock(want, 2, "fedavg", recs2, 1);
  return want;
}

// Corruption oracle: true iff `bytes`, written to disk, read back as
// exactly the pristine example stream — header meta AND every record field.
// Header meta matters: sample_rate/seed are outside the block CRCs, so a
// flip there must be caught by the value comparison instead.
bool SurvivesIntact(const std::vector<std::uint8_t>& bytes,
                    const std::string& probe_path) {
  WriteFileBytes(probe_path, bytes);
  ClientJournalContents got;
  try {
    got = ReadClientJournal(probe_path);
  } catch (const Error&) {
    return false;
  }
  if (got.version != 1 || got.sample_rate != 1.0 || got.sample_seed != kSeed) {
    return false;
  }
  std::vector<Registry::ClientRow> expect = ExampleRound1();
  for (const auto& r : ExampleRound2()) expect.push_back(r);
  if (got.records.size() != expect.size()) return false;
  for (std::size_t i = 0; i < expect.size(); ++i) {
    const ClientJournalRecord& g = got.records[i];
    const Registry::ClientRow& e = expect[i];
    if (g.run != e.run || g.round != e.round || g.client != e.client ||
        g.device_tier != e.device_tier || g.drop_reason != e.drop_reason ||
        g.sim_compute_s != e.sim_compute_s || g.sim_comm_s != e.sim_comm_s ||
        g.memory_mb != e.memory_mb || g.bytes_up != e.bytes_up ||
        g.bytes_down != e.bytes_down || g.train_mflops != e.train_mflops) {
      return false;
    }
  }
  return true;
}

TEST(JournalCrcTest, MatchesKnownAnswerAndBitwiseReference) {
  // The canonical CRC-32 check value.
  const std::string check = "123456789";
  EXPECT_EQ(JournalCrc32(reinterpret_cast<const std::uint8_t*>(check.data()),
                         check.size()),
            0xCBF43926u);

  std::vector<std::uint8_t> data;
  EXPECT_EQ(JournalCrc32(data.data(), 0), BitwiseCrc32(data));
  for (int i = 0; i < 300; ++i) {
    data.push_back(static_cast<std::uint8_t>((i * 37 + 11) & 0xFF));
    EXPECT_EQ(JournalCrc32(data.data(), data.size()), BitwiseCrc32(data))
        << "length " << data.size();
  }
}

TEST(JournalSamplingTest, IsAPureFunctionWithExactEdgeRates) {
  for (int client = 0; client < 64; ++client) {
    // Rate >= 1 keeps everyone, rate <= 0 keeps no one, exactly.
    EXPECT_TRUE(JournalSampleClient(7, client, 1.0));
    EXPECT_TRUE(JournalSampleClient(7, client, 1.5));
    EXPECT_FALSE(JournalSampleClient(7, client, 0.0));
    EXPECT_FALSE(JournalSampleClient(7, client, -1.0));
    // Same (seed, client, rate) -> same answer, always.
    EXPECT_EQ(JournalSampleClient(7, client, 0.5),
              JournalSampleClient(7, client, 0.5));
  }

  // The hash behaves like a uniform draw: a 0.5 rate keeps roughly half of
  // a large fleet, and different seeds select different subsets.
  int kept = 0;
  bool seeds_differ = false;
  for (int client = 0; client < 10000; ++client) {
    if (JournalSampleClient(7, client, 0.5)) ++kept;
    if (JournalSampleClient(7, client, 0.5) !=
        JournalSampleClient(8, client, 0.5)) {
      seeds_differ = true;
    }
  }
  EXPECT_GT(kept, 4500);
  EXPECT_LT(kept, 5500);
  EXPECT_TRUE(seeds_differ);
}

TEST(JournalFormatTest, RoundTripsTheExampleStream) {
  const testsupport::TempDir dir = testsupport::MakeTempDir();
  const std::string path = dir.File("clients.mhbj");
  {
    ClientJournalWriter::Options opts;
    opts.sample_rate = 1.0;
    opts.sample_seed = kSeed;
    ClientJournalWriter writer(path, opts);
    writer.Append(ExampleRound1());
    writer.Append(ExampleRound2());
    EXPECT_EQ(writer.blocks_written(), 2);
    EXPECT_EQ(writer.records_written(), 3);
    writer.Close();
    writer.Close();  // idempotent
  }
  EXPECT_TRUE(SurvivesIntact(ReadFileBytes(path), dir.File("probe.mhbj")));
}

TEST(JournalFormatTest, GoldenByteLayout) {
  const testsupport::TempDir dir = testsupport::MakeTempDir();
  const std::vector<std::uint8_t> bytes =
      WriteExampleJournal(dir.File("clients.mhbj"));
  EXPECT_EQ(bytes, GoldenExampleBytes());
}

TEST(JournalFormatTest, EveryByteFlipIsDetected) {
  const testsupport::TempDir dir = testsupport::MakeTempDir();
  const std::vector<std::uint8_t> good =
      WriteExampleJournal(dir.File("clients.mhbj"));
  const std::string probe = dir.File("probe.mhbj");
  ASSERT_TRUE(SurvivesIntact(good, probe));

  for (std::size_t i = 0; i < good.size(); ++i) {
    for (const std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      std::vector<std::uint8_t> bad = good;
      bad[i] ^= mask;
      EXPECT_FALSE(SurvivesIntact(bad, probe))
          << "flip of byte " << i << " (mask 0x" << std::hex
          << static_cast<int>(mask) << ") went undetected";
    }
  }
}

TEST(JournalFormatTest, EveryTruncationIsDetected) {
  const testsupport::TempDir dir = testsupport::MakeTempDir();
  const std::vector<std::uint8_t> good =
      WriteExampleJournal(dir.File("clients.mhbj"));
  const std::string probe = dir.File("probe.mhbj");

  // Every proper prefix either throws (torn header/frame/payload) or parses
  // to fewer records than the pristine stream — never to silently-complete
  // data.  A prefix ending exactly on a block boundary is VALID (that is
  // the crash-recovery contract: every flushed barrier survives), which is
  // why the oracle compares contents instead of expecting a throw.
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_FALSE(SurvivesIntact(
        std::vector<std::uint8_t>(good.begin(),
                                  good.begin() + static_cast<long>(n)),
        probe))
        << "truncation to " << n << " bytes went undetected";
  }
}

TEST(JournalFormatTest, TrailingGarbageThrows) {
  const testsupport::TempDir dir = testsupport::MakeTempDir();
  std::vector<std::uint8_t> bytes =
      WriteExampleJournal(dir.File("clients.mhbj"));
  bytes.push_back(0x00);  // half-started frame after the last block
  const std::string probe = dir.File("probe.mhbj");
  WriteFileBytes(probe, bytes);
  EXPECT_THROW(ReadClientJournal(probe), Error);
}

TEST(JournalFormatTest, BadMagicThrows) {
  const testsupport::TempDir dir = testsupport::MakeTempDir();
  std::vector<std::uint8_t> bytes =
      WriteExampleJournal(dir.File("clients.mhbj"));
  bytes[0] = 'X';
  const std::string probe = dir.File("probe.mhbj");
  WriteFileBytes(probe, bytes);
  EXPECT_THROW(ReadClientJournal(probe), Error);
}

TEST(JournalFormatTest, CrossVersionIsRejected) {
  const testsupport::TempDir dir = testsupport::MakeTempDir();
  const std::vector<std::uint8_t> good =
      WriteExampleJournal(dir.File("clients.mhbj"));
  const std::string probe = dir.File("probe.mhbj");
  for (const std::uint32_t version : {0u, 2u, 0xFFFFFFFFu}) {
    std::vector<std::uint8_t> bad = good;
    for (std::size_t i = 0; i < 4; ++i) {
      bad[8 + i] = static_cast<std::uint8_t>((version >> (8 * i)) & 0xFF);
    }
    WriteFileBytes(probe, bad);
    EXPECT_THROW(ReadClientJournal(probe), Error) << "version " << version;
  }
}

TEST(JournalWriterTest, MixedRoundsOrRunsInOneDrainThrow) {
  const testsupport::TempDir dir = testsupport::MakeTempDir();
  ClientJournalWriter writer(dir.File("clients.mhbj"), {});
  std::vector<Registry::ClientRow> mixed_round = ExampleRound1();
  mixed_round.push_back(MakeRow("fedavg", 2, 5, "cpu", ""));
  EXPECT_THROW(writer.Append(mixed_round), Error);
  std::vector<Registry::ClientRow> mixed_run = ExampleRound1();
  mixed_run.push_back(MakeRow("fedprox", 1, 5, "cpu", ""));
  EXPECT_THROW(writer.Append(mixed_run), Error);
}

TEST(JournalWriterTest, UnknownDropReasonThrows) {
  const testsupport::TempDir dir = testsupport::MakeTempDir();
  ClientJournalWriter writer(dir.File("clients.mhbj"), {});
  EXPECT_THROW(
      writer.Append({MakeRow("fedavg", 1, 0, "cpu", "rage-quit")}), Error);
}

TEST(JournalWriterTest, AppendAfterCloseThrowsAndEmptyAppendIsANoOp) {
  const testsupport::TempDir dir = testsupport::MakeTempDir();
  const std::string path = dir.File("clients.mhbj");
  ClientJournalWriter writer(path, {});
  writer.Append({});  // no rows staged this round: nothing written
  EXPECT_EQ(writer.blocks_written(), 0);
  writer.Close();
  EXPECT_THROW(writer.Append(ExampleRound1()), Error);
  // The header alone is a valid, empty journal.
  const ClientJournalContents contents = ReadClientJournal(path);
  EXPECT_TRUE(contents.records.empty());
}

TEST(JournalWriterTest, SamplingKeepsExactlyTheHashedSubset) {
  const testsupport::TempDir dir = testsupport::MakeTempDir();
  const std::string path = dir.File("clients.mhbj");
  ClientJournalWriter::Options opts;
  opts.sample_rate = 0.5;
  opts.sample_seed = 123;

  std::vector<Registry::ClientRow> rows;
  std::vector<int> want_kept;
  for (int client = 0; client < 40; ++client) {
    rows.push_back(MakeRow("fedavg", 1, client, "cpu", ""));
    if (JournalSampleClient(opts.sample_seed, client, opts.sample_rate)) {
      want_kept.push_back(client);
    }
  }
  ASSERT_GT(want_kept.size(), 0u);
  ASSERT_LT(want_kept.size(), rows.size());

  {
    ClientJournalWriter writer(path, opts);
    writer.Append(rows);
    EXPECT_EQ(writer.records_written(),
              static_cast<std::int64_t>(want_kept.size()));
    writer.Close();
  }
  const ClientJournalContents contents = ReadClientJournal(path);
  EXPECT_EQ(contents.sample_rate, 0.5);
  EXPECT_EQ(contents.sample_seed, 123u);
  std::vector<int> got_kept;
  for (const auto& rec : contents.records) got_kept.push_back(rec.client);
  EXPECT_EQ(got_kept, want_kept);
}

TEST(JournalWriterTest, PeakBlockBytesStaysFlatAsRoundsAccumulate) {
  const testsupport::TempDir dir = testsupport::MakeTempDir();
  ClientJournalWriter writer(dir.File("clients.mhbj"), {});

  auto cohort = [](int round) {
    std::vector<Registry::ClientRow> rows;
    for (int client = 0; client < 32; ++client) {
      rows.push_back(MakeRow("fedavg", round, client, "mem4g",
                             client % 4 == 0 ? "offline" : ""));
    }
    return rows;
  };

  writer.Append(cohort(1));
  const std::size_t peak_after_first = writer.peak_block_bytes();
  EXPECT_GT(peak_after_first, 0u);
  for (int round = 2; round <= 64; ++round) writer.Append(cohort(round));

  // The write buffer is the journal's only per-round state: 64 identical
  // cohorts must not grow it past the first round's high-water mark.
  EXPECT_EQ(writer.peak_block_bytes(), peak_after_first);
  EXPECT_EQ(writer.blocks_written(), 64);
  EXPECT_EQ(writer.records_written(), 64 * 32);
}

}  // namespace
}  // namespace mhbench::obs
