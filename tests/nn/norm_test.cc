#include "nn/norm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "grad_check.h"

namespace mhbench::nn {
namespace {

TEST(BatchNormTest, NormalizesTrainingBatch) {
  Rng rng(1);
  BatchNorm bn(3);
  const Tensor x = Tensor::Randn({16, 3, 4, 4}, rng, 5.0f);
  const Tensor y = bn.Forward(x, true);
  // Per-channel mean ~0, var ~1.
  const int n = 16, c = 3, s = 16;
  for (int ch = 0; ch < c; ++ch) {
    double sum = 0, sq = 0;
    for (int b = 0; b < n; ++b) {
      for (int i = 0; i < s; ++i) {
        const Scalar v =
            y[(static_cast<std::size_t>(b) * c + ch) * s + i];
        sum += v;
        sq += v * v;
      }
    }
    const double mean = sum / (n * s);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / (n * s) - mean * mean, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, RunningStatsConverge) {
  Rng rng(2);
  BatchNorm bn(2, /*momentum=*/0.5f);
  // Feed batches with known channel means (3, -1).
  for (int step = 0; step < 30; ++step) {
    Tensor x({8, 2, 2, 2});
    for (int b = 0; b < 8; ++b) {
      for (int i = 0; i < 4; ++i) {
        x[(static_cast<std::size_t>(b) * 2 + 0) * 4 + i] =
            3.0f + static_cast<Scalar>(rng.Gaussian()) * 0.1f;
        x[(static_cast<std::size_t>(b) * 2 + 1) * 4 + i] =
            -1.0f + static_cast<Scalar>(rng.Gaussian()) * 0.1f;
      }
    }
    bn.Forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean().value[0], 3.0, 0.1);
  EXPECT_NEAR(bn.running_mean().value[1], -1.0, 0.1);
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  BatchNorm bn(1);
  bn.running_mean().value[0] = 2.0f;
  bn.running_var().value[0] = 4.0f;
  Tensor x({1, 1, 1, 2}, std::vector<Scalar>{2.0f, 4.0f});
  const Tensor y = bn.Forward(x, false);
  EXPECT_NEAR(y[0], 0.0f, 1e-4);
  EXPECT_NEAR(y[1], (4.0 - 2.0) / std::sqrt(4.0 + 1e-5), 1e-4);
}

TEST(BatchNormTest, AffineParametersApplied) {
  BatchNorm bn(1);
  bn.gamma().value[0] = 2.0f;
  bn.beta().value[0] = 10.0f;
  bn.running_mean().value[0] = 0.0f;
  bn.running_var().value[0] = 1.0f;
  Tensor x({1, 1, 1, 1}, std::vector<Scalar>{1.0f});
  const Tensor y = bn.Forward(x, false);
  EXPECT_NEAR(y[0], 12.0f, 1e-3);
}

TEST(BatchNormTest, GradientCheckTrainMode) {
  Rng rng(3);
  BatchNorm bn(2);
  const Tensor x = Tensor::Randn({6, 2, 3, 3}, rng);
  testing::GradCheckOptions opts;
  opts.tolerance = 5e-2f;
  testing::ExpectGradientsClose(bn, x, rng, opts);
}

TEST(BatchNormTest, GradientCheckEvalMode) {
  Rng rng(4);
  BatchNorm bn(2);
  const Tensor x = Tensor::Randn({3, 2, 2, 2}, rng);
  testing::GradCheckOptions opts;
  opts.train = false;
  testing::ExpectGradientsClose(bn, x, rng, opts);
}

TEST(BatchNormTest, WorksOn2dInput) {
  Rng rng(5);
  BatchNorm bn(4);
  const Tensor x = Tensor::Randn({8, 4}, rng);
  const Tensor y = bn.Forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(BatchNormTest, CollectsRunningStatsAsParams) {
  BatchNorm bn(2);
  std::vector<NamedParam> params;
  bn.CollectParams("bn", params);
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[2].name, "bn/running_mean");
  EXPECT_EQ(params[3].name, "bn/running_var");
}

TEST(LayerNormTest, NormalizesRows) {
  Rng rng(6);
  LayerNorm ln(8);
  const Tensor x = Tensor::Randn({4, 8}, rng, 3.0f);
  const Tensor y = ln.Forward(x, true);
  for (int i = 0; i < 4; ++i) {
    double sum = 0, sq = 0;
    for (int j = 0; j < 8; ++j) {
      sum += y.at({i, j});
      sq += static_cast<double>(y.at({i, j})) * y.at({i, j});
    }
    EXPECT_NEAR(sum / 8, 0.0, 1e-4);
    EXPECT_NEAR(sq / 8, 1.0, 1e-2);
  }
}

TEST(LayerNormTest, WorksOnRank3) {
  Rng rng(7);
  LayerNorm ln(4);
  const Tensor x = Tensor::Randn({2, 3, 4}, rng);
  EXPECT_EQ(ln.Forward(x, true).shape(), x.shape());
}

TEST(LayerNormTest, GradientCheck) {
  Rng rng(8);
  LayerNorm ln(5);
  const Tensor x = Tensor::Randn({3, 5}, rng);
  testing::GradCheckOptions opts;
  opts.tolerance = 5e-2f;
  testing::ExpectGradientsClose(ln, x, rng, opts);
}

TEST(LayerNormTest, DimMismatchThrows) {
  LayerNorm ln(4);
  Tensor x({2, 5});
  EXPECT_THROW(ln.Forward(x, true), Error);
}

}  // namespace
}  // namespace mhbench::nn
