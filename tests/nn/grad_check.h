// Shared numerical-gradient checking helper for module tests.
//
// Defines L(x) = sum_i c_i * Forward(x)_i with fixed random coefficients c,
// runs the module's Backward with grad_out = c, and compares both input and
// parameter gradients against central finite differences.
#pragma once

#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/module.h"

namespace mhbench::nn::testing {

struct GradCheckOptions {
  float epsilon = 1e-2f;
  float tolerance = 2e-2f;  // relative-ish tolerance on gradients
  bool train = true;
  bool check_params = true;
  // Check at most this many coordinates per tensor (spread evenly); keeps
  // large layers fast.
  int max_coords = 24;
};

inline void ExpectGradientsClose(Module& module, const Tensor& input,
                                 Rng& rng, const GradCheckOptions& opts = {}) {
  Tensor coeffs;
  {
    const Tensor y = module.Forward(input, opts.train);
    coeffs = Tensor::Randn(y.shape(), rng);
  }
  auto loss_at = [&](const Tensor& x) -> double {
    const Tensor y = module.Forward(x, opts.train);
    double l = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) {
      l += static_cast<double>(coeffs[i]) * y[i];
    }
    return l;
  };

  // Analytic gradients.
  module.ZeroGrad();
  module.Forward(input, opts.train);
  const Tensor grad_input = module.Backward(coeffs);
  ASSERT_EQ(grad_input.shape(), input.shape());

  // Numerical input gradient.
  Tensor x = input;
  const std::size_t n = x.numel();
  const std::size_t stride_in =
      std::max<std::size_t>(1, n / static_cast<std::size_t>(opts.max_coords));
  for (std::size_t i = 0; i < n; i += stride_in) {
    const Scalar orig = x[i];
    x[i] = orig + opts.epsilon;
    const double lp = loss_at(x);
    x[i] = orig - opts.epsilon;
    const double lm = loss_at(x);
    x[i] = orig;
    const double num = (lp - lm) / (2.0 * opts.epsilon);
    EXPECT_NEAR(grad_input[i], num,
                opts.tolerance * std::max(1.0, std::abs(num)))
        << "input coord " << i;
  }

  if (!opts.check_params) return;

  std::vector<NamedParam> params;
  module.CollectParams("", params);
  for (auto& np : params) {
    if (np.name.find("running_") != std::string::npos) continue;
    Tensor& v = np.param->value;
    const Tensor& g = np.param->grad;
    const std::size_t m = v.numel();
    const std::size_t stride =
        std::max<std::size_t>(1, m / static_cast<std::size_t>(opts.max_coords));
    for (std::size_t i = 0; i < m; i += stride) {
      const Scalar orig = v[i];
      v[i] = orig + opts.epsilon;
      const double lp = loss_at(input);
      v[i] = orig - opts.epsilon;
      const double lm = loss_at(input);
      v[i] = orig;
      const double num = (lp - lm) / (2.0 * opts.epsilon);
      EXPECT_NEAR(g[i], num, opts.tolerance * std::max(1.0, std::abs(num)))
          << "param " << np.name << " coord " << i;
    }
  }
}

}  // namespace mhbench::nn::testing
