#include "nn/conv.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "grad_check.h"

namespace mhbench::nn {
namespace {

TEST(Conv2dTest, IdentityKernel) {
  // 1x1 kernel with weight 1 on a single channel is the identity.
  Conv2d conv(Tensor({1, 1, 1, 1}, {1.0f}), Tensor(), 1, 0);
  Rng rng(1);
  const Tensor x = Tensor::Randn({2, 1, 4, 4}, rng);
  EXPECT_TRUE(conv.Forward(x, true).AllClose(x));
}

TEST(Conv2dTest, KnownSum3x3) {
  // All-ones 3x3 kernel with pad 1 computes neighborhood sums.
  Conv2d conv(Tensor({1, 1, 3, 3}, 1.0f), Tensor(), 1, 1);
  Tensor x({1, 1, 2, 2}, std::vector<Scalar>{1, 2, 3, 4});
  const Tensor y = conv.Forward(x, true);
  // Every output = sum of all in-window pixels; corners see all 4 pixels
  // minus those outside.  For 2x2 all-window-covered: each output = 10 when
  // window covers everything; here (0,0) window covers pixels {1,2,3,4}.
  EXPECT_TRUE(y.AllClose(Tensor({1, 1, 2, 2}, std::vector<Scalar>{10, 10, 10, 10})));
}

TEST(Conv2dTest, BiasApplied) {
  Conv2d conv(Tensor({1, 1, 1, 1}, {0.0f}), Tensor::FromVector({3.0f}), 1, 0);
  Tensor x({1, 1, 2, 2});
  const Tensor y = conv.Forward(x, true);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y[i], 3.0f);
}

TEST(Conv2dTest, OutputShapeStride2) {
  Rng rng(2);
  Conv2d conv(3, 8, 3, 2, 1, rng);
  const Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  const Tensor y = conv.Forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 8, 4, 4}));
}

TEST(Conv2dTest, InputChannelMismatchThrows) {
  Rng rng(3);
  Conv2d conv(3, 4, 3, 1, 1, rng);
  Tensor x({1, 2, 4, 4});
  EXPECT_THROW(conv.Forward(x, true), Error);
}

TEST(Conv2dTest, GradientCheck) {
  Rng rng(4);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  const Tensor x = Tensor::Randn({2, 2, 4, 4}, rng);
  testing::ExpectGradientsClose(conv, x, rng);
}

TEST(Conv2dTest, GradientCheckStride2NoBias) {
  Rng rng(5);
  Conv2d conv(2, 2, 3, 2, 1, rng, /*bias=*/false);
  const Tensor x = Tensor::Randn({1, 2, 6, 6}, rng);
  testing::ExpectGradientsClose(conv, x, rng);
}

TEST(Conv1dTest, ShapeAndGradient) {
  Rng rng(6);
  Conv1d conv(2, 4, 3, 1, 1, rng);
  const Tensor x = Tensor::Randn({2, 2, 8}, rng);
  const Tensor y = conv.Forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 4, 8}));
  testing::ExpectGradientsClose(conv, x, rng);
}

TEST(Conv1dTest, StrideReducesLength) {
  Rng rng(7);
  Conv1d conv(1, 1, 3, 2, 1, rng);
  const Tensor x = Tensor::Randn({1, 1, 8}, rng);
  EXPECT_EQ(conv.Forward(x, true).shape(), Shape({1, 1, 4}));
}

TEST(Conv2dTest, ParamNames) {
  Rng rng(8);
  Conv2d conv(1, 1, 1, 1, 0, rng);
  std::vector<NamedParam> params;
  conv.CollectParams("conv1", params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "conv1/weight");
  EXPECT_EQ(params[1].name, "conv1/bias");
}

}  // namespace
}  // namespace mhbench::nn
