#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/linear.h"
#include "nn/norm.h"

namespace mhbench::nn {
namespace {

TEST(SgdTest, PlainStepMovesAgainstGradient) {
  Linear lin(Tensor({1, 1}, {1.0f}), Tensor());
  SgdOptions opts;
  opts.lr = 0.1;
  opts.momentum = 0.0;
  Sgd sgd(lin, opts);
  lin.weight().grad[0] = 2.0f;
  sgd.Step();
  EXPECT_NEAR(lin.weight().value[0], 1.0f - 0.1f * 2.0f, 1e-6);
}

TEST(SgdTest, MomentumAccumulates) {
  Linear lin(Tensor({1, 1}, {0.0f}), Tensor());
  SgdOptions opts;
  opts.lr = 1.0;
  opts.momentum = 0.5;
  Sgd sgd(lin, opts);
  lin.weight().grad[0] = 1.0f;
  sgd.Step();  // v = 1, w = -1
  EXPECT_NEAR(lin.weight().value[0], -1.0f, 1e-6);
  sgd.Step();  // v = 1.5, w = -2.5 (grad still 1 from not zeroing)
  EXPECT_NEAR(lin.weight().value[0], -2.5f, 1e-6);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Linear lin(Tensor({1, 1}, {10.0f}), Tensor());
  SgdOptions opts;
  opts.lr = 0.1;
  opts.momentum = 0.0;
  opts.weight_decay = 0.1;
  Sgd sgd(lin, opts);
  // zero gradient: only decay acts
  sgd.Step();
  EXPECT_NEAR(lin.weight().value[0], 10.0f - 0.1f * (0.1f * 10.0f), 1e-5);
}

TEST(SgdTest, NoDecayOnNormParams) {
  BatchNorm bn(1);
  bn.gamma().value[0] = 5.0f;
  SgdOptions opts;
  opts.lr = 0.1;
  opts.momentum = 0.0;
  opts.weight_decay = 1.0;
  Sgd sgd(bn, opts);
  sgd.Step();
  EXPECT_NEAR(bn.gamma().value[0], 5.0f, 1e-6);
}

TEST(SgdTest, RunningStatsNeverTouched) {
  BatchNorm bn(1);
  bn.running_mean().value[0] = 3.0f;
  bn.running_mean().grad[0] = 100.0f;  // would move it if treated as param
  SgdOptions opts;
  opts.lr = 1.0;
  Sgd sgd(bn, opts);
  sgd.Step();
  EXPECT_NEAR(bn.running_mean().value[0], 3.0f, 1e-6);
}

TEST(SgdTest, ZeroGradClears) {
  Linear lin(Tensor({1, 1}, {1.0f}), Tensor());
  Sgd sgd(lin, {});
  lin.weight().grad[0] = 5.0f;
  sgd.ZeroGrad();
  EXPECT_EQ(lin.weight().grad[0], 0.0f);
}

TEST(SgdTest, ClipGradNorm) {
  Linear lin(Tensor({1, 2}, std::vector<Scalar>{0, 0}), Tensor());
  Sgd sgd(lin, {});
  lin.weight().grad[0] = 3.0f;
  lin.weight().grad[1] = 4.0f;  // norm 5
  sgd.ClipGradNorm(1.0);
  const double norm = std::sqrt(lin.weight().grad.SquaredL2());
  EXPECT_NEAR(norm, 1.0, 1e-5);
  // Below the max it is a no-op.
  sgd.ClipGradNorm(10.0);
  EXPECT_NEAR(std::sqrt(lin.weight().grad.SquaredL2()), 1.0, 1e-5);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 via gradient 2(w - 3).
  Linear lin(Tensor({1, 1}, {0.0f}), Tensor());
  SgdOptions opts;
  opts.lr = 0.1;
  opts.momentum = 0.9;
  Sgd sgd(lin, opts);
  for (int i = 0; i < 200; ++i) {
    sgd.ZeroGrad();
    lin.weight().grad[0] = 2.0f * (lin.weight().value[0] - 3.0f);
    sgd.Step();
  }
  EXPECT_NEAR(lin.weight().value[0], 3.0f, 1e-3);
}

}  // namespace
}  // namespace mhbench::nn
