#include "nn/pool.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "grad_check.h"

namespace mhbench::nn {
namespace {

TEST(AvgPool2dTest, AveragesWindows) {
  AvgPool2d pool(2);
  Tensor x({1, 1, 2, 2}, std::vector<Scalar>{1, 2, 3, 4});
  const Tensor y = pool.Forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_NEAR(y[0], 2.5f, 1e-6);
}

TEST(AvgPool2dTest, RequiresDivisibleExtents) {
  AvgPool2d pool(2);
  Tensor x({1, 1, 3, 2});
  EXPECT_THROW(pool.Forward(x, true), Error);
}

TEST(AvgPool2dTest, GradientCheck) {
  Rng rng(1);
  AvgPool2d pool(2);
  const Tensor x = Tensor::Randn({2, 3, 4, 4}, rng);
  testing::ExpectGradientsClose(pool, x, rng);
}

TEST(GlobalAvgPool2dTest, Averages) {
  GlobalAvgPool2d pool;
  Tensor x({1, 2, 2, 2}, std::vector<Scalar>{1, 2, 3, 4, 10, 10, 10, 10});
  const Tensor y = pool.Forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 2}));
  EXPECT_NEAR(y[0], 2.5f, 1e-6);
  EXPECT_NEAR(y[1], 10.0f, 1e-6);
}

TEST(GlobalAvgPool2dTest, GradientCheck) {
  Rng rng(2);
  GlobalAvgPool2d pool;
  const Tensor x = Tensor::Randn({2, 2, 3, 3}, rng);
  testing::ExpectGradientsClose(pool, x, rng);
}

TEST(GlobalAvgPool1dTest, ShapeAndGradient) {
  Rng rng(3);
  GlobalAvgPool1d pool;
  const Tensor x = Tensor::Randn({2, 4, 6}, rng);
  EXPECT_EQ(pool.Forward(x, true).shape(), Shape({2, 4}));
  testing::ExpectGradientsClose(pool, x, rng);
}

TEST(MeanPoolSeqTest, AveragesOverSequence) {
  MeanPoolSeq pool;
  Tensor x({1, 2, 2}, std::vector<Scalar>{1, 2, 3, 4});
  const Tensor y = pool.Forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 2}));
  EXPECT_NEAR(y[0], 2.0f, 1e-6);
  EXPECT_NEAR(y[1], 3.0f, 1e-6);
}

TEST(MeanPoolSeqTest, GradientCheck) {
  Rng rng(4);
  MeanPoolSeq pool;
  const Tensor x = Tensor::Randn({2, 3, 4}, rng);
  testing::ExpectGradientsClose(pool, x, rng);
}

}  // namespace
}  // namespace mhbench::nn
