// End-to-end learning sanity: small networks must fit simple synthetic
// tasks, which validates forward/backward/optimizer working together.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/activation.h"
#include "nn/composite.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/norm.h"
#include "nn/optimizer.h"
#include "nn/pool.h"

namespace mhbench::nn {
namespace {

// Two Gaussian blobs in 2-D; returns (inputs [n,2], labels).
void MakeBlobs(int n, Rng& rng, Tensor& x, std::vector<int>& y) {
  x = Tensor({n, 2});
  y.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.UniformInt(2));
    const double cx = cls == 0 ? -1.5 : 1.5;
    x.at({i, 0}) = static_cast<Scalar>(rng.Gaussian(cx, 0.6));
    x.at({i, 1}) = static_cast<Scalar>(rng.Gaussian(-cx, 0.6));
    y[static_cast<std::size_t>(i)] = cls;
  }
}

TEST(TrainingTest, MlpLearnsBlobs) {
  Rng rng(1);
  Sequential net;
  net.Add(std::make_unique<Linear>(2, 16, rng));
  net.Add(std::make_unique<ReLU>());
  net.Add(std::make_unique<Linear>(16, 2, rng));
  SgdOptions opts;
  opts.lr = 0.1;
  Sgd sgd(net, opts);

  Tensor x;
  std::vector<int> y;
  MakeBlobs(128, rng, x, y);
  double final_acc = 0;
  for (int epoch = 0; epoch < 60; ++epoch) {
    sgd.ZeroGrad();
    const Tensor logits = net.Forward(x, true);
    Tensor grad;
    SoftmaxCrossEntropy(logits, y, grad);
    net.Backward(grad);
    sgd.Step();
    final_acc = Accuracy(net.Forward(x, false), y);
  }
  EXPECT_GT(final_acc, 0.95);
}

TEST(TrainingTest, LossDecreasesMonotonicallyEarly) {
  Rng rng(2);
  Sequential net;
  net.Add(std::make_unique<Linear>(2, 8, rng));
  net.Add(std::make_unique<Tanh>());
  net.Add(std::make_unique<Linear>(8, 2, rng));
  SgdOptions opts;
  opts.lr = 0.05;
  opts.momentum = 0.0;
  Sgd sgd(net, opts);
  Tensor x;
  std::vector<int> y;
  MakeBlobs(64, rng, x, y);
  Tensor grad;
  double prev = 1e9;
  for (int i = 0; i < 10; ++i) {
    sgd.ZeroGrad();
    const double loss = SoftmaxCrossEntropy(net.Forward(x, true), y, grad);
    net.Backward(grad);
    sgd.Step();
    EXPECT_LT(loss, prev + 1e-6);
    prev = loss;
  }
}

TEST(TrainingTest, SmallCnnLearnsPatterns) {
  // Class 0: bright top half; class 1: bright bottom half.
  Rng rng(3);
  const int n = 64;
  Tensor x({n, 1, 4, 4});
  std::vector<int> y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.UniformInt(2));
    y[static_cast<std::size_t>(i)] = cls;
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) {
        const bool bright = (cls == 0) ? r < 2 : r >= 2;
        x.at({i, 0, r, c}) =
            static_cast<Scalar>(rng.Gaussian(bright ? 1.0 : -1.0, 0.3));
      }
    }
  }
  Sequential net;
  net.Add(std::make_unique<Conv2d>(1, 4, 3, 1, 1, rng, false));
  net.Add(std::make_unique<BatchNorm>(4));
  net.Add(std::make_unique<ReLU>());
  net.Add(std::make_unique<GlobalAvgPool2d>());
  net.Add(std::make_unique<Linear>(4, 2, rng));
  SgdOptions opts;
  opts.lr = 0.1;
  Sgd sgd(net, opts);
  for (int epoch = 0; epoch < 40; ++epoch) {
    sgd.ZeroGrad();
    Tensor grad;
    SoftmaxCrossEntropy(net.Forward(x, true), y, grad);
    net.Backward(grad);
    sgd.Step();
  }
  EXPECT_GT(Accuracy(net.Forward(x, false), y), 0.9);
}

}  // namespace
}  // namespace mhbench::nn
