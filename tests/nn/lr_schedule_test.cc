#include "nn/lr_schedule.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace mhbench::nn {
namespace {

TEST(LrScheduleTest, ConstantIsOne) {
  ConstantLr lr;
  EXPECT_DOUBLE_EQ(lr.Multiplier(0, 100), 1.0);
  EXPECT_DOUBLE_EQ(lr.Multiplier(99, 100), 1.0);
}

TEST(LrScheduleTest, StepDecay) {
  StepDecayLr lr(10, 0.5);
  EXPECT_DOUBLE_EQ(lr.Multiplier(0, 100), 1.0);
  EXPECT_DOUBLE_EQ(lr.Multiplier(9, 100), 1.0);
  EXPECT_DOUBLE_EQ(lr.Multiplier(10, 100), 0.5);
  EXPECT_DOUBLE_EQ(lr.Multiplier(25, 100), 0.25);
}

TEST(LrScheduleTest, StepDecayValidation) {
  EXPECT_THROW(StepDecayLr(0, 0.5), Error);
  EXPECT_THROW(StepDecayLr(5, 0.0), Error);
  StepDecayLr lr(5, 0.5);
  EXPECT_THROW(lr.Multiplier(-1, 10), Error);
}

TEST(LrScheduleTest, CosineEndpoints) {
  CosineLr lr(0.1);
  EXPECT_NEAR(lr.Multiplier(0, 100), 1.0, 1e-9);
  EXPECT_NEAR(lr.Multiplier(100, 100), 0.1, 1e-9);
  // Midpoint is the average of floor and 1.
  EXPECT_NEAR(lr.Multiplier(50, 100), 0.55, 1e-9);
}

TEST(LrScheduleTest, CosineMonotoneDecreasing) {
  CosineLr lr(0.01);
  double prev = 2.0;
  for (int r = 0; r <= 50; r += 5) {
    const double m = lr.Multiplier(r, 50);
    EXPECT_LT(m, prev);
    prev = m;
  }
}

TEST(LrScheduleTest, CosineValidation) {
  EXPECT_THROW(CosineLr(-0.1), Error);
  EXPECT_THROW(CosineLr(1.1), Error);
  CosineLr lr(0.1);
  EXPECT_THROW(lr.Multiplier(0, 0), Error);
}

TEST(LrScheduleTest, Factories) {
  EXPECT_DOUBLE_EQ(MakeConstantLr()->Multiplier(3, 10), 1.0);
  EXPECT_DOUBLE_EQ(MakeStepDecayLr(2, 0.1)->Multiplier(2, 10), 0.1);
  EXPECT_NEAR(MakeCosineLr(0.0)->Multiplier(10, 10), 0.0, 1e-9);
}

}  // namespace
}  // namespace mhbench::nn
