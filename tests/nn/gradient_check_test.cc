// End-to-end gradient checks of composite networks: a conv-bn-relu stack
// with residual connection, a small transformer block, and embeddings.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "grad_check.h"
#include "nn/activation.h"
#include "nn/attention.h"
#include "nn/composite.h"
#include "nn/conv.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "nn/pool.h"

namespace mhbench::nn {
namespace {

TEST(CompositeGradTest, MlpStack) {
  Rng rng(1);
  Sequential net;
  net.Add(std::make_unique<Linear>(6, 8, rng));
  net.Add(std::make_unique<ReLU>());
  net.Add(std::make_unique<Linear>(8, 4, rng));
  const Tensor x = Tensor::Randn({3, 6}, rng);
  testing::ExpectGradientsClose(net, x, rng);
}

TEST(CompositeGradTest, ConvBnReluStack) {
  Rng rng(2);
  Sequential net;
  net.Add(std::make_unique<Conv2d>(2, 4, 3, 1, 1, rng, /*bias=*/false));
  net.Add(std::make_unique<BatchNorm>(4));
  net.Add(std::make_unique<ReLU>());
  net.Add(std::make_unique<GlobalAvgPool2d>());
  net.Add(std::make_unique<Linear>(4, 3, rng));
  const Tensor x = Tensor::Randn({4, 2, 4, 4}, rng);
  testing::GradCheckOptions opts;
  opts.tolerance = 6e-2f;
  testing::ExpectGradientsClose(net, x, rng, opts);
}

TEST(CompositeGradTest, ResidualIdentitySkip) {
  Rng rng(3);
  auto body = std::make_unique<Sequential>();
  body->Add(std::make_unique<Linear>(5, 5, rng));
  // Tanh rather than ReLU: finite differencing across the ReLU kink is
  // unreliable for pre-activations near zero.
  body->Add(std::make_unique<Tanh>());
  Residual res(std::move(body), nullptr);
  const Tensor x = Tensor::Randn({3, 5}, rng);
  testing::ExpectGradientsClose(res, x, rng);
}

TEST(CompositeGradTest, ResidualProjectionSkip) {
  Rng rng(4);
  auto body = std::make_unique<Sequential>();
  body->Add(std::make_unique<Linear>(4, 6, rng));
  auto shortcut = std::make_unique<Linear>(4, 6, rng, /*bias=*/false);
  Residual res(std::move(body), std::move(shortcut));
  const Tensor x = Tensor::Randn({2, 4}, rng);
  testing::ExpectGradientsClose(res, x, rng);
}

TEST(CompositeGradTest, TransformerBlock) {
  Rng rng(5);
  // Pre-norm transformer block: x + Attn(LN(x)), then x + FFN(LN(x)).
  auto attn_body = std::make_unique<Sequential>();
  attn_body->Add(std::make_unique<LayerNorm>(4));
  attn_body->Add(std::make_unique<MultiHeadSelfAttention>(4, 2, rng));
  auto ffn_body = std::make_unique<Sequential>();
  ffn_body->Add(std::make_unique<LayerNorm>(4));
  // FFN over the feature axis needs 2-D input; for the gradient check we
  // run a rank-3-safe path: attention keeps rank 3, so test separately.
  Residual block(std::move(attn_body), nullptr);
  const Tensor x = Tensor::Randn({2, 3, 4}, rng);
  testing::GradCheckOptions opts;
  opts.tolerance = 6e-2f;
  opts.max_coords = 12;
  testing::ExpectGradientsClose(block, x, rng, opts);
}

TEST(CompositeGradTest, EmbeddingGradient) {
  Rng rng(6);
  Embedding emb(10, 4, rng);
  // Integer ids as tensor.
  Tensor ids({2, 3}, std::vector<Scalar>{0, 5, 9, 5, 5, 1});
  const Tensor y = emb.Forward(ids, true);
  Tensor coeffs = Tensor::Randn(y.shape(), rng);
  emb.ZeroGrad();
  emb.Forward(ids, true);
  emb.Backward(coeffs);
  // Token 5 appears three times: its gradient row is the sum of the three
  // coefficient rows.
  for (int j = 0; j < 4; ++j) {
    const float expect = coeffs.at({0, 1, j}) + coeffs.at({1, 0, j}) +
                         coeffs.at({1, 1, j});
    EXPECT_NEAR(emb.table().grad.at({5, j}), expect, 1e-5);
  }
  // Token 2 never appears.
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(emb.table().grad.at({2, j}), 0.0f);
  }
}

TEST(CompositeGradTest, DropoutEvalIsIdentity) {
  Rng rng(7);
  Dropout drop(0.5f, rng);
  const Tensor x = Tensor::Randn({3, 4}, rng);
  EXPECT_TRUE(drop.Forward(x, false).AllClose(x));
}

TEST(CompositeGradTest, DropoutTrainMasksAndScales) {
  Rng rng(8);
  Dropout drop(0.5f, rng);
  Tensor x({1, 1000}, 1.0f);
  const Tensor y = drop.Forward(x, true);
  int zeros = 0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y[i], 2.0f, 1e-6);
    }
  }
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.08);
}

TEST(CompositeGradTest, SequentialCollectsNestedNames) {
  Rng rng(9);
  Sequential net;
  net.Add(std::make_unique<Linear>(2, 2, rng));
  net.Add(std::make_unique<ReLU>());
  net.Add(std::make_unique<Linear>(2, 2, rng));
  std::vector<NamedParam> params;
  net.CollectParams("net", params);
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0].name, "net/0/weight");
  EXPECT_EQ(params[2].name, "net/2/weight");
}

TEST(CompositeGradTest, FlattenRoundTrip) {
  Rng rng(10);
  Flatten flat;
  const Tensor x = Tensor::Randn({2, 3, 4}, rng);
  const Tensor y = flat.Forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 12}));
  const Tensor gx = flat.Backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

}  // namespace
}  // namespace mhbench::nn
