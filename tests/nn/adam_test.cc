#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/activation.h"
#include "nn/composite.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/norm.h"
#include "nn/optimizer.h"

namespace mhbench::nn {
namespace {

TEST(AdamTest, FirstStepIsSignedLr) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  Linear lin(Tensor({1, 2}, std::vector<Scalar>{0, 0}), Tensor());
  AdamOptions opts;
  opts.lr = 0.1;
  Adam adam(lin, opts);
  lin.weight().grad[0] = 5.0f;
  lin.weight().grad[1] = -0.01f;
  adam.Step();
  EXPECT_NEAR(lin.weight().value[0], -0.1f, 1e-4);
  EXPECT_NEAR(lin.weight().value[1], 0.1f, 1e-4);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Linear lin(Tensor({1, 1}, {0.0f}), Tensor());
  AdamOptions opts;
  opts.lr = 0.05;
  Adam adam(lin, opts);
  for (int i = 0; i < 500; ++i) {
    adam.ZeroGrad();
    lin.weight().grad[0] = 2.0f * (lin.weight().value[0] - 3.0f);
    adam.Step();
  }
  EXPECT_NEAR(lin.weight().value[0], 3.0f, 1e-2);
}

TEST(AdamTest, AdaptsToGradientScale) {
  // Two coordinates with wildly different gradient scales should move at
  // comparable speed (the point of Adam).
  Linear lin(Tensor({1, 2}, std::vector<Scalar>{0, 0}), Tensor());
  AdamOptions opts;
  opts.lr = 0.01;
  Adam adam(lin, opts);
  for (int i = 0; i < 50; ++i) {
    adam.ZeroGrad();
    lin.weight().grad[0] = 100.0f;
    lin.weight().grad[1] = 0.001f;
    adam.Step();
  }
  const double moved0 = std::abs(lin.weight().value[0]);
  const double moved1 = std::abs(lin.weight().value[1]);
  EXPECT_GT(moved1, 0.3 * moved0);
}

TEST(AdamTest, RunningStatsUntouched) {
  BatchNorm bn(1);
  bn.running_mean().value[0] = 3.0f;
  bn.running_mean().grad[0] = 100.0f;
  AdamOptions opts;
  opts.lr = 1.0;
  Adam adam(bn, opts);
  adam.Step();
  EXPECT_NEAR(bn.running_mean().value[0], 3.0f, 1e-6);
}

TEST(AdamTest, NoDecayOnNormParams) {
  BatchNorm bn(1);
  bn.gamma().value[0] = 5.0f;
  AdamOptions opts;
  opts.lr = 0.1;
  opts.weight_decay = 1.0;
  Adam adam(bn, opts);
  adam.Step();  // zero gradient, decay skipped on gamma
  EXPECT_NEAR(bn.gamma().value[0], 5.0f, 1e-6);
}

TEST(AdamTest, TrainsMlpFasterThanPlainSgdOnIllConditioned) {
  // Blobs with a large feature-scale imbalance: adaptive step sizes help.
  Rng rng(1);
  auto make_net = [&](std::uint64_t seed) {
    Rng r(seed);
    auto net = std::make_unique<Sequential>();
    net->Add(std::make_unique<Linear>(2, 16, r));
    net->Add(std::make_unique<ReLU>());
    net->Add(std::make_unique<Linear>(16, 2, r));
    return net;
  };
  Tensor x({64, 2});
  std::vector<int> y(64);
  for (int i = 0; i < 64; ++i) {
    const int cls = static_cast<int>(rng.UniformInt(2));
    y[static_cast<std::size_t>(i)] = cls;
    x.at({i, 0}) = static_cast<Scalar>(rng.Gaussian(cls ? 40.0 : -40.0, 8.0));
    x.at({i, 1}) = static_cast<Scalar>(rng.Gaussian(cls ? -.05 : .05, 0.02));
  }
  auto run = [&](OptimizerKind kind) {
    auto net = make_net(7);
    OptimizerOptions oo;
    oo.kind = kind;
    oo.lr = kind == OptimizerKind::kAdam ? 0.01 : 0.0005;  // stable SGD lr
    oo.momentum = 0.0;
    auto opt = MakeOptimizer(*net, oo);
    double acc = 0;
    for (int e = 0; e < 30; ++e) {
      opt->ZeroGrad();
      Tensor grad;
      SoftmaxCrossEntropy(net->Forward(x, true), y, grad);
      net->Backward(grad);
      opt->Step();
      acc = Accuracy(net->Forward(x, false), y);
    }
    return acc;
  };
  EXPECT_GE(run(OptimizerKind::kAdam) + 1e-9, run(OptimizerKind::kSgd));
}

TEST(MakeOptimizerTest, FactoryDispatch) {
  Rng rng(2);
  Linear lin(2, 2, rng);
  OptimizerOptions oo;
  oo.kind = OptimizerKind::kAdam;
  auto adam = MakeOptimizer(lin, oo);
  EXPECT_NE(dynamic_cast<Adam*>(adam.get()), nullptr);
  oo.kind = OptimizerKind::kSgd;
  auto sgd = MakeOptimizer(lin, oo);
  EXPECT_NE(dynamic_cast<Sgd*>(sgd.get()), nullptr);
  EXPECT_DOUBLE_EQ(sgd->lr(), oo.lr);
  sgd->set_lr(0.5);
  EXPECT_DOUBLE_EQ(sgd->lr(), 0.5);
}

}  // namespace
}  // namespace mhbench::nn
