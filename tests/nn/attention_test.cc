#include "nn/attention.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "grad_check.h"

namespace mhbench::nn {
namespace {

TEST(AttentionTest, OutputShape) {
  Rng rng(1);
  MultiHeadSelfAttention attn(8, 2, rng);
  const Tensor x = Tensor::Randn({2, 5, 8}, rng);
  EXPECT_EQ(attn.Forward(x, true).shape(), Shape({2, 5, 8}));
}

TEST(AttentionTest, RejectsIndivisibleHeads) {
  Rng rng(2);
  EXPECT_THROW(MultiHeadSelfAttention(7, 2, rng), Error);
}

TEST(AttentionTest, SingleTokenActsLikeProjection) {
  // With L = 1 attention weights are trivially 1, so the layer reduces to
  // Wo(Wv(x)).
  Rng rng(3);
  MultiHeadSelfAttention attn(4, 1, rng);
  const Tensor x = Tensor::Randn({1, 1, 4}, rng);
  const Tensor y1 = attn.Forward(x, true);
  const Tensor y2 = attn.Forward(x, true);
  EXPECT_TRUE(y1.AllClose(y2));
}

TEST(AttentionTest, PermutationEquivariance) {
  // Self-attention without positional encoding commutes with permutations
  // of the sequence axis.
  Rng rng(4);
  MultiHeadSelfAttention attn(4, 2, rng);
  Tensor x = Tensor::Randn({1, 3, 4}, rng);
  const Tensor y = attn.Forward(x, true);
  // Swap tokens 0 and 2 in the input.
  Tensor xp = x;
  for (int j = 0; j < 4; ++j) {
    std::swap(xp[static_cast<std::size_t>(j)],
              xp[static_cast<std::size_t>(2 * 4 + j)]);
  }
  const Tensor yp = attn.Forward(xp, true);
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(y[static_cast<std::size_t>(j)],
                yp[static_cast<std::size_t>(2 * 4 + j)], 1e-4);
    EXPECT_NEAR(y[static_cast<std::size_t>(2 * 4 + j)],
                yp[static_cast<std::size_t>(j)], 1e-4);
  }
}

TEST(AttentionTest, GradientCheck) {
  Rng rng(5);
  MultiHeadSelfAttention attn(4, 2, rng);
  const Tensor x = Tensor::Randn({2, 3, 4}, rng);
  testing::GradCheckOptions opts;
  opts.tolerance = 5e-2f;
  opts.max_coords = 16;
  testing::ExpectGradientsClose(attn, x, rng, opts);
}

TEST(AttentionTest, ParamNamesIncludeAllProjections) {
  Rng rng(6);
  MultiHeadSelfAttention attn(4, 2, rng);
  std::vector<NamedParam> params;
  attn.CollectParams("attn", params);
  EXPECT_EQ(params.size(), 8u);  // 4 projections x (weight, bias)
  EXPECT_EQ(params[0].name, "attn/wq/weight");
}

}  // namespace
}  // namespace mhbench::nn
