#include "nn/activation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "grad_check.h"

namespace mhbench::nn {
namespace {

TEST(ReluTest, ClampsNegatives) {
  ReLU relu;
  Tensor x = Tensor::FromVector({-1, 0, 2});
  EXPECT_TRUE(relu.Forward(x, true).AllClose(Tensor::FromVector({0, 0, 2})));
}

TEST(ReluTest, GradientMasksNegatives) {
  ReLU relu;
  Tensor x = Tensor::FromVector({-1, 2});
  relu.Forward(x, true);
  const Tensor g = relu.Backward(Tensor::FromVector({5, 5}));
  EXPECT_TRUE(g.AllClose(Tensor::FromVector({0, 5})));
}

TEST(ReluTest, GradientCheck) {
  Rng rng(1);
  ReLU relu;
  // Shift away from 0 to avoid the kink.
  Tensor x = Tensor::Randn({4, 6}, rng);
  for (auto& v : x.data()) {
    if (std::abs(v) < 0.1f) v += 0.5f;
  }
  testing::ExpectGradientsClose(relu, x, rng);
}

TEST(GeluTest, KnownValues) {
  Gelu gelu;
  Tensor x = Tensor::FromVector({0.0f});
  EXPECT_NEAR(gelu.Forward(x, true)[0], 0.0f, 1e-6);
  Tensor big = Tensor::FromVector({10.0f});
  EXPECT_NEAR(gelu.Forward(big, true)[0], 10.0f, 1e-3);
  Tensor neg = Tensor::FromVector({-10.0f});
  EXPECT_NEAR(gelu.Forward(neg, true)[0], 0.0f, 1e-3);
}

TEST(GeluTest, GradientCheck) {
  Rng rng(2);
  Gelu gelu;
  const Tensor x = Tensor::Randn({3, 5}, rng);
  testing::ExpectGradientsClose(gelu, x, rng);
}

TEST(TanhTest, KnownValuesAndGradient) {
  Tanh tanh;
  Tensor x = Tensor::FromVector({0.0f, 100.0f});
  const Tensor y = tanh.Forward(x, true);
  EXPECT_NEAR(y[0], 0.0f, 1e-6);
  EXPECT_NEAR(y[1], 1.0f, 1e-5);
  Rng rng(3);
  const Tensor x2 = Tensor::Randn({4, 4}, rng);
  testing::ExpectGradientsClose(tanh, x2, rng);
}

}  // namespace
}  // namespace mhbench::nn
