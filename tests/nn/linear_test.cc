#include "nn/linear.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "grad_check.h"

namespace mhbench::nn {
namespace {

TEST(LinearTest, ForwardKnownValues) {
  // y = x W^T + b with W = [[1,2],[3,4]], b = [10, 20].
  Linear lin(Tensor({2, 2}, std::vector<Scalar>{1, 2, 3, 4}),
             Tensor::FromVector({10, 20}));
  Tensor x({1, 2}, std::vector<Scalar>{1, 1});
  const Tensor y = lin.Forward(x, true);
  EXPECT_TRUE(y.AllClose(Tensor({1, 2}, std::vector<Scalar>{13, 27})));
}

TEST(LinearTest, NoBiasVariant) {
  Linear lin(Tensor({1, 2}, std::vector<Scalar>{2, 3}), Tensor());
  EXPECT_FALSE(lin.has_bias());
  Tensor x({1, 2}, std::vector<Scalar>{1, 1});
  EXPECT_TRUE(lin.Forward(x, true).AllClose(Tensor({1, 1}, {5.0f})));
}

TEST(LinearTest, ShapesValidated) {
  Rng rng(1);
  Linear lin(3, 4, rng);
  EXPECT_EQ(lin.in_features(), 3);
  EXPECT_EQ(lin.out_features(), 4);
  Tensor bad({2, 5});
  EXPECT_THROW(lin.Forward(bad, true), Error);
}

TEST(LinearTest, GradientCheck) {
  Rng rng(2);
  Linear lin(4, 3, rng);
  const Tensor x = Tensor::Randn({5, 4}, rng);
  testing::ExpectGradientsClose(lin, x, rng);
}

TEST(LinearTest, GradientCheckNoBias) {
  Rng rng(3);
  Linear lin(3, 2, rng, /*bias=*/false);
  const Tensor x = Tensor::Randn({4, 3}, rng);
  testing::ExpectGradientsClose(lin, x, rng);
}

TEST(LinearTest, GradAccumulatesAcrossBackwards) {
  Rng rng(4);
  Linear lin(2, 2, rng);
  const Tensor x = Tensor::Randn({3, 2}, rng);
  const Tensor g = Tensor::Randn({3, 2}, rng);
  lin.Forward(x, true);
  lin.Backward(g);
  const Tensor after_one = lin.weight().grad;
  lin.Forward(x, true);
  lin.Backward(g);
  Tensor doubled = after_one;
  doubled.Scale(2.0f);
  EXPECT_TRUE(lin.weight().grad.AllClose(doubled, 1e-4f));
}

TEST(LinearTest, CollectParamsNames) {
  Rng rng(5);
  Linear lin(2, 2, rng);
  std::vector<NamedParam> params;
  lin.CollectParams("fc", params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "fc/weight");
  EXPECT_EQ(params[1].name, "fc/bias");
}

TEST(LinearTest, BackwardBeforeForwardThrows) {
  Rng rng(6);
  Linear lin(2, 2, rng);
  Tensor g({1, 2});
  EXPECT_THROW(lin.Backward(g), Error);
}

}  // namespace
}  // namespace mhbench::nn
