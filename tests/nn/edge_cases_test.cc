// Edge cases and cross-checks across the nn substrate.
#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/activation.h"
#include "nn/attention.h"
#include "nn/composite.h"
#include "nn/conv.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/norm.h"

namespace mhbench::nn {
namespace {

TEST(EdgeCaseTest, EmptySequentialIsIdentity) {
  Sequential net;
  Rng rng(1);
  const Tensor x = Tensor::Randn({2, 3}, rng);
  EXPECT_TRUE(net.Forward(x, true).AllClose(x));
  EXPECT_TRUE(net.Backward(x).AllClose(x));
}

TEST(EdgeCaseTest, BatchSizeOneBatchNormTrain) {
  // One sample with spatial extent: batch stats still well defined.
  Rng rng(2);
  BatchNorm bn(2);
  const Tensor x = Tensor::Randn({1, 2, 4, 4}, rng);
  const Tensor y = bn.Forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y[i]));
  }
}

TEST(EdgeCaseTest, EmbeddingRejectsOutOfVocabIds) {
  Rng rng(3);
  Embedding emb(8, 4, rng);
  Tensor bad({1, 2}, std::vector<Scalar>{0, 8});
  EXPECT_THROW(emb.Forward(bad, true), Error);
  Tensor neg({1, 1}, std::vector<Scalar>{-1});
  EXPECT_THROW(emb.Forward(neg, true), Error);
}

TEST(EdgeCaseTest, SingleHeadAttentionMatchesMultiHeadShapes) {
  Rng rng(4);
  MultiHeadSelfAttention one(8, 1, rng);
  MultiHeadSelfAttention four(8, 4, rng);
  const Tensor x = Tensor::Randn({2, 3, 8}, rng);
  EXPECT_EQ(one.Forward(x, true).shape(), four.Forward(x, true).shape());
}

TEST(EdgeCaseTest, CrossEntropySingleClass) {
  // Degenerate single-class problem: loss 0, gradient 0.
  Tensor logits({3, 1}, 5.0f);
  Tensor grad;
  EXPECT_NEAR(SoftmaxCrossEntropy(logits, {0, 0, 0}, grad), 0.0, 1e-6);
  EXPECT_LT(grad.MaxAbs(), 1e-6f);
}

TEST(EdgeCaseTest, AccuracyEmptyBatchIsZero) {
  Tensor logits({1, 2});
  // Single wrong prediction (argmax ties -> picks 0).
  EXPECT_DOUBLE_EQ(Accuracy(logits, {1}), 0.0);
}

TEST(EdgeCaseTest, Conv1x1ActsAsPerPixelLinear) {
  Rng rng(5);
  // A 1x1 conv and a tokenwise linear with the same weights must agree.
  const Tensor w = Tensor::Randn({3, 2, 1, 1}, rng);
  Conv2d conv(w, Tensor(), 1, 0);
  const Tensor x = Tensor::Randn({1, 2, 4, 4}, rng);
  const Tensor y = conv.Forward(x, true);
  // Check one pixel by hand.
  for (int oc = 0; oc < 3; ++oc) {
    const float expect = w.at({oc, 0, 0, 0}) * x.at({0, 0, 2, 1}) +
                         w.at({oc, 1, 0, 0}) * x.at({0, 1, 2, 1});
    EXPECT_NEAR(y.at({0, oc, 2, 1}), expect, 1e-5);
  }
}

TEST(EdgeCaseTest, ResidualShapeMismatchThrows) {
  Rng rng(6);
  auto body = std::make_unique<Linear>(3, 4, rng);  // changes width
  Residual res(std::move(body), nullptr);           // identity skip
  const Tensor x = Tensor::Randn({2, 3}, rng);
  EXPECT_THROW(res.Forward(x, true), Error);
}

TEST(EdgeCaseTest, ConcatBranchMismatchedSpatialThrows) {
  Rng rng(7);
  std::vector<ModulePtr> branches;
  branches.push_back(std::make_unique<Conv2d>(1, 2, 3, 1, 1, rng));  // 8x8
  branches.push_back(std::make_unique<Conv2d>(1, 2, 3, 2, 1, rng));  // 4x4
  ConcatBranches cat(std::move(branches));
  const Tensor x = Tensor::Randn({1, 1, 8, 8}, rng);
  EXPECT_THROW(cat.Forward(x, true), Error);
}

TEST(EdgeCaseTest, ZeroGradResetsEntireTree) {
  Rng rng(8);
  Sequential net;
  net.Add(std::make_unique<Linear>(2, 4, rng));
  net.Add(std::make_unique<ReLU>());
  net.Add(std::make_unique<Linear>(4, 2, rng));
  const Tensor x = Tensor::Randn({3, 2}, rng);
  Tensor grad;
  SoftmaxCrossEntropy(net.Forward(x, true), {0, 1, 0}, grad);
  net.Backward(grad);
  net.ZeroGrad();
  std::vector<NamedParam> params;
  net.CollectParams("", params);
  for (auto& p : params) {
    EXPECT_EQ(p.param->grad.MaxAbs(), 0.0f) << p.name;
  }
}

TEST(EdgeCaseTest, NumParamsCountsEverything) {
  Rng rng(9);
  Sequential net;
  net.Add(std::make_unique<Linear>(3, 4, rng));       // 16
  net.Add(std::make_unique<BatchNorm>(4));            // 16 (incl. running)
  net.Add(std::make_unique<Linear>(4, 2, rng, false));  // 8
  EXPECT_EQ(net.NumParams(), 16u + 16u + 8u);
}

}  // namespace
}  // namespace mhbench::nn
