#include "nn/loss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "tensor/ops.h"

namespace mhbench::nn {
namespace {

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  Tensor logits({2, 4});  // all zeros -> uniform
  Tensor grad;
  const double loss = SoftmaxCrossEntropy(logits, {0, 3}, grad);
  EXPECT_NEAR(loss, std::log(4.0), 1e-5);
}

TEST(CrossEntropyTest, PerfectPredictionLowLoss) {
  Tensor logits({1, 3}, std::vector<Scalar>{100, 0, 0});
  Tensor grad;
  EXPECT_NEAR(SoftmaxCrossEntropy(logits, {0}, grad), 0.0, 1e-5);
}

TEST(CrossEntropyTest, GradientMatchesFiniteDifference) {
  Rng rng(1);
  Tensor logits = Tensor::Randn({3, 5}, rng);
  const std::vector<int> labels = {1, 4, 0};
  Tensor grad;
  SoftmaxCrossEntropy(logits, labels, grad);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); i += 3) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    Tensor g;
    const double num =
        (SoftmaxCrossEntropy(lp, labels, g) - SoftmaxCrossEntropy(lm, labels, g)) /
        (2 * eps);
    EXPECT_NEAR(grad[i], num, 1e-3);
  }
}

TEST(CrossEntropyTest, GradientRowsSumToZero) {
  Rng rng(2);
  Tensor logits = Tensor::Randn({4, 6}, rng);
  Tensor grad;
  SoftmaxCrossEntropy(logits, {0, 1, 2, 3}, grad);
  for (int i = 0; i < 4; ++i) {
    double sum = 0;
    for (int j = 0; j < 6; ++j) sum += grad.at({i, j});
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(CrossEntropyTest, InvalidLabelThrows) {
  Tensor logits({1, 3});
  Tensor grad;
  EXPECT_THROW(SoftmaxCrossEntropy(logits, {3}, grad), Error);
  EXPECT_THROW(SoftmaxCrossEntropy(logits, {-1}, grad), Error);
}

TEST(AccuracyTest, CountsCorrectRows) {
  Tensor logits({3, 2}, std::vector<Scalar>{1, 0, 0, 1, 1, 0});
  EXPECT_NEAR(Accuracy(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
}

TEST(DistillationTest, MatchingDistributionsZeroLoss) {
  Rng rng(3);
  Tensor logits = Tensor::Randn({2, 4}, rng);
  const Tensor probs = SoftmaxWithTemperature(logits, 2.0);
  Tensor grad;
  const double loss = DistillationKL(logits, probs, 2.0, grad);
  EXPECT_NEAR(loss, 0.0, 1e-5);
  EXPECT_LT(grad.MaxAbs(), 1e-4f);
}

TEST(DistillationTest, GradientMatchesFiniteDifference) {
  Rng rng(4);
  Tensor student = Tensor::Randn({2, 3}, rng);
  Tensor teacher_logits = Tensor::Randn({2, 3}, rng);
  const Tensor teacher = SoftmaxWithTemperature(teacher_logits, 3.0);
  Tensor grad;
  DistillationKL(student, teacher, 3.0, grad);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < student.numel(); ++i) {
    Tensor sp = student, sm = student;
    sp[i] += eps;
    sm[i] -= eps;
    Tensor g;
    const double num = (DistillationKL(sp, teacher, 3.0, g) -
                        DistillationKL(sm, teacher, 3.0, g)) /
                       (2 * eps);
    EXPECT_NEAR(grad[i], num, 2e-3);
  }
}

TEST(DistillationTest, PullsStudentTowardTeacher) {
  // One gradient step should reduce the loss.
  Rng rng(5);
  Tensor student = Tensor::Randn({4, 5}, rng);
  const Tensor teacher =
      SoftmaxWithTemperature(Tensor::Randn({4, 5}, rng), 1.0);
  Tensor grad;
  const double before = DistillationKL(student, teacher, 1.0, grad);
  student.AxpyInPlace(-1.0f, grad);
  Tensor g2;
  const double after = DistillationKL(student, teacher, 1.0, g2);
  EXPECT_LT(after, before);
}

TEST(MseTest, KnownValueAndGradient) {
  Tensor pred = Tensor::FromVector({1, 2});
  Tensor target = Tensor::FromVector({0, 0});
  Tensor grad;
  EXPECT_NEAR(MeanSquaredError(pred, target, grad), 2.5, 1e-6);
  EXPECT_TRUE(grad.AllClose(Tensor::FromVector({1.0f, 2.0f})));
}

TEST(SoftmaxTemperatureTest, HighTemperatureFlattens) {
  Tensor logits({1, 2}, std::vector<Scalar>{2, 0});
  const Tensor p1 = SoftmaxWithTemperature(logits, 1.0);
  const Tensor p10 = SoftmaxWithTemperature(logits, 10.0);
  EXPECT_GT(p1[0] - p1[1], p10[0] - p10[1]);
}

}  // namespace
}  // namespace mhbench::nn
