#include "fl/server.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "models/zoo.h"

namespace mhbench::fl {
namespace {

TEST(GlobalModelTest, SeedsStoreFromFullMultiHeadModel) {
  Rng rng(1);
  const auto tm = models::MakeTaskModels("cifar100");
  GlobalModel gm(tm.primary, rng);
  // Store must contain every head any depth client would reference.
  const int total = tm.primary->total_blocks();
  for (int b = 0; b < total; ++b) {
    EXPECT_TRUE(gm.store().Has("head" + std::to_string(b) + "/1/weight")) << b;
  }
}

TEST(GlobalModelTest, LogitsShapeAndDeterminism) {
  Rng rng(2);
  const auto tm = models::MakeTaskModels("cifar10");
  GlobalModel gm(tm.primary, rng);
  Rng xr(3);
  const Tensor x = Tensor::Randn({4, 3, 8, 8}, xr);
  const Tensor a = gm.Logits(x);
  const Tensor b = gm.Logits(x);
  EXPECT_EQ(a.shape(), Shape({4, 10}));
  EXPECT_TRUE(a.AllClose(b));
}

TEST(GlobalModelTest, StoreEditsPropagateToLogits) {
  Rng rng(4);
  const auto tm = models::MakeTaskModels("cifar10");
  GlobalModel gm(tm.primary, rng);
  Rng xr(5);
  const Tensor x = Tensor::Randn({2, 3, 8, 8}, xr);
  const Tensor before = gm.Logits(x);
  // Zero the deepest head's weights: logits become the bias alone.
  const std::string head =
      "head" + std::to_string(tm.primary->total_blocks() - 1);
  gm.store().GetMutable(head + "/1/weight").Fill(0.0f);
  gm.store().GetMutable(head + "/1/bias").Fill(0.0f);
  const Tensor after = gm.Logits(x);
  EXPECT_FALSE(after.AllClose(before));
  EXPECT_NEAR(after.MaxAbs(), 0.0f, 1e-6);
}

TEST(GlobalModelTest, EnsembleAveragesHeads) {
  Rng rng(6);
  const auto tm = models::MakeTaskModels("cifar10");
  GlobalModel gm(tm.primary, rng);
  Rng xr(7);
  const Tensor x = Tensor::Randn({2, 3, 8, 8}, xr);
  const Tensor ens = gm.EnsembleLogits(x);
  EXPECT_EQ(ens.shape(), Shape({2, 10}));
  // Manually average head outputs through the synced trunk.
  auto& trunk = gm.SyncedTrunk();
  auto logits = trunk.ForwardHeads(x, false);
  Tensor mean = logits.front();
  for (std::size_t h = 1; h < logits.size(); ++h) mean.AddInPlace(logits[h]);
  mean.Scale(1.0f / static_cast<Scalar>(logits.size()));
  EXPECT_TRUE(ens.AllClose(mean, 1e-4f));
}

}  // namespace
}  // namespace mhbench::fl
