// The tentpole invariant of the parallel round executor: for every
// heterogeneity level, multi-threaded execution produces a RunResult
// bit-identical to the serial reference engine — same accuracy curve, same
// simulated clock, same per-client accuracies, same offline/straggler
// counters — because all order-sensitive randomness is drawn serially and
// staged updates merge in dispatch order.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "algorithms/registry.h"
#include "data/tasks.h"
#include "fl/engine.h"
#include "models/zoo.h"
#include "obs/det_audit.h"
#include "obs/live.h"
#include "obs/profile.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "support/temp_dir.h"

namespace mhbench::fl {
namespace {

struct Case {
  std::string algorithm;
  std::string task;
};

class ParallelDeterminismTest : public ::testing::TestWithParam<Case> {};

// Every algorithm in the zoo: the homogeneous baseline, the width family
// (static and rolling ladders, Fjord's stochastic draws from the per-client
// Rng in ClientSpec — which catches any shift of the forked streams), the
// depth family (DepthFL's ucihar transformer path included), and both
// topology methods (personal prototype models; shared distillation group
// models on the eval path).
INSTANTIATE_TEST_SUITE_P(
    Levels, ParallelDeterminismTest,
    ::testing::ValuesIn(std::vector<Case>{
        {"fedavg", "cifar10"},
        {"fjord", "cifar10"},
        {"sheterofl", "cifar10"},
        {"fedrolex", "cifar10"},
        {"depthfl", "ucihar"},
        {"inclusivefl", "cifar10"},
        {"fedepth", "cifar10"},
        {"fedproto", "cifar10"},
        {"fedet", "cifar10"},
    }),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.algorithm;
    });

// Assignments exercising every skip path: a capacity ladder, flaky devices
// (availability < 1 -> offline skips), and a compute-time spread crossing
// the round deadline (-> straggler drops).
std::vector<ClientAssignment> HeterogeneousAssignments(int n) {
  std::vector<ClientAssignment> assign =
      UniformCapacityAssignments(n, {0.25, 0.5, 0.75, 1.0});
  for (int i = 0; i < n; ++i) {
    auto& a = assign[static_cast<std::size_t>(i)];
    a.arch_index = i;  // topology diversity for fedproto/fedet
    a.system.compute_time_s = 5.0 + 7.0 * (i % 4);  // 5..26 s
    a.system.comm_time_s = 2.0;
    a.system.availability = (i % 3 == 0) ? 0.5 : 1.0;
    // Telemetry-only fields (never feed back into the simulated clock):
    // give the counters something non-zero to aggregate.
    a.system.comm_mb = 4.0 + i;
    a.system.train_gflops = 1.0 + 0.5 * i;
    // Device-tier taxonomy (DESIGN.md §5j): the tier-keyed `<base>@<tier>`
    // rollups land in the same Totals() maps the instrumented sweep below
    // compares, so per-tier determinism is enforced for every algorithm.
    a.system.device_tier =
        (i % 3 == 0) ? "cpu" : (i % 3 == 1) ? "mem4g" : "mem16g";
  }
  return assign;
}

RunResult RunWithThreads(const Case& c, const data::Task& task,
                         int num_threads, obs::ObsConfig obs = {}) {
  const auto tm = models::MakeTaskModels(c.task);
  auto alg = algorithms::MakeAlgorithm(c.algorithm, tm);

  FlConfig cfg;
  cfg.rounds = 4;
  cfg.sample_fraction = 0.8;  // most of the population, every round
  cfg.eval_every = 2;
  cfg.eval_max_samples = 96;
  cfg.stability_max_samples = 48;
  cfg.round_deadline_s = 25.0;  // compute 26 + comm 2 exceeds it
  cfg.num_threads = num_threads;

  // Every run in this suite — the serial reference included — carries the
  // live exporter with HTTP server, heartbeat and watchdog all enabled, so
  // the bit-identity assertions below double as proof that live telemetry
  // cannot perturb any algorithm at any thread count (obs/live.h).
  const auto live_dir = testsupport::MakeTempDir();
  obs::LiveConfig lcfg;
  lcfg.http_port = 0;  // ephemeral
  lcfg.heartbeat_every_s = 0.05;
  lcfg.heartbeat_path = live_dir.File("heartbeat.jsonl");
  lcfg.watchdog_stall_s = 120.0;  // armed; must never fire on a live run
  lcfg.run_id = c.algorithm + "-parallel-determinism";
  lcfg.rounds_total = cfg.rounds;
  obs::LiveExporter live(lcfg, obs.registry);
  obs.live = &live;
  cfg.obs = obs;

  FlEngine engine(task, cfg, HeterogeneousAssignments(6), *alg);
  RunResult result = engine.Run();
  live.Stop();
  EXPECT_EQ(live.stall_count(), 0) << "watchdog fired on a healthy run";
  return result;
}

// Bit-identical comparison: exact double equality, field by field.
void ExpectIdentical(const RunResult& serial, const RunResult& parallel,
                     int threads) {
  SCOPED_TRACE("num_threads=" + std::to_string(threads));
  EXPECT_EQ(serial.final_accuracy, parallel.final_accuracy);
  EXPECT_EQ(serial.total_sim_time_s, parallel.total_sim_time_s);
  EXPECT_EQ(serial.straggler_drops, parallel.straggler_drops);
  EXPECT_EQ(serial.offline_skips, parallel.offline_skips);
  EXPECT_EQ(serial.total_participations, parallel.total_participations);

  ASSERT_EQ(serial.curve.size(), parallel.curve.size());
  for (std::size_t i = 0; i < serial.curve.size(); ++i) {
    EXPECT_EQ(serial.curve[i].round, parallel.curve[i].round);
    EXPECT_EQ(serial.curve[i].sim_time_s, parallel.curve[i].sim_time_s);
    EXPECT_EQ(serial.curve[i].global_acc, parallel.curve[i].global_acc);
  }

  ASSERT_EQ(serial.client_accuracies.size(),
            parallel.client_accuracies.size());
  for (std::size_t i = 0; i < serial.client_accuracies.size(); ++i) {
    EXPECT_EQ(serial.client_accuracies[i], parallel.client_accuracies[i])
        << "client " << i;
  }
}

TEST_P(ParallelDeterminismTest, BitIdenticalAcrossThreadCounts) {
  const Case c = GetParam();
  data::TaskConfig tcfg;
  tcfg.train_samples = 240;
  tcfg.test_samples = 120;
  tcfg.num_clients = 6;
  const data::Task task = data::MakeTask(c.task, tcfg);

  const RunResult serial = RunWithThreads(c, task, 1);

  // The scenario must actually exercise the skip paths it claims to cover.
  EXPECT_GT(serial.offline_skips, 0) << "availability<1 never skipped";
  EXPECT_GT(serial.straggler_drops, 0) << "deadline never dropped";
  EXPECT_FALSE(serial.curve.empty());
  EXPECT_EQ(serial.client_accuracies.size(), 6u);

  ExpectIdentical(serial, RunWithThreads(c, task, 2), 2);
  ExpectIdentical(serial, RunWithThreads(c, task, 4), 4);
}

// Observability must be pure observation: with a tracer + counter registry
// attached (including sim-clock spans), every thread count still produces a
// RunResult bit-identical to the uninstrumented serial reference, and the
// counter totals themselves are identical across thread counts (per-thread
// sinks merge commutative int64 additions at the round barrier).
TEST(ParallelDeterminismTest, InstrumentedRunsStayBitIdentical) {
  data::TaskConfig tcfg;
  tcfg.train_samples = 240;
  tcfg.test_samples = 120;
  tcfg.num_clients = 6;
  const data::Task task = data::MakeTask("cifar10", tcfg);
  const Case c{"fedrolex", "cifar10"};

  const RunResult bare = RunWithThreads(c, task, 1);

  std::map<std::string, std::int64_t> reference_totals;
  for (const int threads : {1, 2, 4}) {
    obs::Tracer tracer;
    obs::Registry registry;
    obs::ObsConfig obs;
    obs.tracer = &tracer;
    obs.registry = &registry;
    obs.sim_spans = true;
    const RunResult traced = RunWithThreads(c, task, threads, obs);
    ExpectIdentical(bare, traced, threads);

    // Spans were actually collected on both clocks.
    const auto events = tracer.Snapshot();
    EXPECT_FALSE(events.empty());
    bool has_wall = false, has_sim = false;
    for (const auto& e : events) {
      if (e.pid == obs::Tracer::kWallPid) has_wall = true;
      if (e.pid == obs::Tracer::kSimPid) has_sim = true;
    }
    EXPECT_TRUE(has_wall);
    EXPECT_TRUE(has_sim);

    // Counter totals are thread-count independent.  Wall-clock gauges
    // (wall_ms, pool idle) legitimately differ, and pool_tasks counts
    // helper tasks (a function of the worker count), so drop it too.
    auto totals = registry.Totals();
    totals.erase("pool_tasks");
    EXPECT_GT(totals.at("clients_trained"), 0);
    EXPECT_GT(totals.at("bytes_up"), 0);
    EXPECT_GT(totals.at("clients_dropped"), 0);
    EXPECT_GT(totals.at("gemm_flops"), 0);
    // The tier-keyed rollups are present and partition the untiered total
    // (tier_rollup_test covers the full contract; this sweep proves it
    // holds under every algorithm in the zoo).
    EXPECT_EQ(totals.at("clients_trained@cpu") +
                  totals.at("clients_trained@mem4g") +
                  totals.at("clients_trained@mem16g"),
              totals.at("clients_trained"));
    if (threads == 1) {
      reference_totals = totals;
    } else {
      EXPECT_EQ(totals, reference_totals)
          << "counter totals diverged at num_threads=" << threads;
    }
    EXPECT_EQ(registry.rounds().size(), 4u);
  }
}

// Kernel-layer observability on a conv model: sheterofl/cifar10 trains
// ResNet-like sub-models, so every client step runs im2col + packed GEMM
// through the per-thread scratch arenas.  The exact gemm_flops count (an
// integer, 2*m*n*k per call) and all metrics must be bit-identical at 1, 2,
// and 4 threads — the kernels are single-threaded per client, so thread
// count must not leak into either results or work accounting.
TEST(ParallelDeterminismTest, KernelCountersDeterministicOnConvModel) {
  data::TaskConfig tcfg;
  tcfg.train_samples = 240;
  tcfg.test_samples = 120;
  tcfg.num_clients = 6;
  const data::Task task = data::MakeTask("cifar10", tcfg);
  const Case c{"sheterofl", "cifar10"};

  RunResult reference;
  std::int64_t reference_flops = 0;
  for (const int threads : {1, 2, 4}) {
    obs::Registry registry;
    obs::ObsConfig obs;
    obs.registry = &registry;
    const RunResult result = RunWithThreads(c, task, threads, obs);
    const std::int64_t flops = registry.Totals().at("gemm_flops");
    EXPECT_GT(flops, 0);
    if (threads == 1) {
      reference = result;
      reference_flops = flops;
    } else {
      ExpectIdentical(reference, result, threads);
      EXPECT_EQ(flops, reference_flops)
          << "gemm flop accounting diverged at num_threads=" << threads;
    }
  }
}

// Per-op profiler determinism: every client runs wholly on one thread with
// a deterministic scope structure, so the merged per-op counts and GEMM
// FLOP attributions must be bit-identical across thread counts.  Wall time
// and heap allocations are excluded (clock noise; per-thread tensor pools
// warm up independently), and attaching the profiler must not perturb the
// training results.  Histogram bucket totals get the same guarantee: the
// observed values are simulated/deterministic quantities per client.
TEST(ParallelDeterminismTest, ProfilerAttributionDeterministicAcrossThreads) {
  data::TaskConfig tcfg;
  tcfg.train_samples = 240;
  tcfg.test_samples = 120;
  tcfg.num_clients = 6;
  const data::Task task = data::MakeTask("cifar10", tcfg);
  const Case c{"sheterofl", "cifar10"};

  const RunResult bare = RunWithThreads(c, task, 1);

  std::map<std::string, std::int64_t> ref_counts;
  std::map<std::string, std::int64_t> ref_flops;
  obs::Registry::HistogramData ref_bytes_hist;
  for (const int threads : {1, 2, 4}) {
    obs::Registry registry;
    obs::Profiler profiler;
    obs::ObsConfig obs;
    obs.registry = &registry;
    obs.profiler = &profiler;
    const RunResult profiled = RunWithThreads(c, task, threads, obs);
    ExpectIdentical(bare, profiled, threads);

    std::map<std::string, std::int64_t> counts;
    std::map<std::string, std::int64_t> flops;
    for (const auto& [name, stats] : profiler.TotalsByName()) {
      counts[name] = stats.count;
      flops[name] = stats.gemm_flops;
    }
    ASSERT_GT(counts.size(), 0u);
    EXPECT_GT(counts.at("local_train"), 0);
    EXPECT_GT(counts.at("conv2d_fwd"), 0);
    EXPECT_GT(flops.at("conv2d_fwd"), 0);
    // Layer scopes nest inside forward/backward which nest inside the
    // per-client scope: the forward count can't exceed its parent-level op.
    EXPECT_GE(counts.at("forward"), counts.at("local_train"));

    const obs::Registry::HistogramData bytes_hist =
        registry.HistogramTotals("client_bytes_up");
    EXPECT_GT(bytes_hist.count(), 0);
    if (threads == 1) {
      ref_counts = counts;
      ref_flops = flops;
      ref_bytes_hist = bytes_hist;
    } else {
      EXPECT_EQ(counts, ref_counts)
          << "per-op counts diverged at num_threads=" << threads;
      EXPECT_EQ(flops, ref_flops)
          << "per-op FLOP attribution diverged at num_threads=" << threads;
      EXPECT_EQ(bytes_hist.buckets, ref_bytes_hist.buckets)
          << "histogram buckets diverged at num_threads=" << threads;
      EXPECT_EQ(bytes_hist.sum, ref_bytes_hist.sum);
      EXPECT_EQ(bytes_hist.min, ref_bytes_hist.min);
      EXPECT_EQ(bytes_hist.max, ref_bytes_hist.max);
    }
  }
}

// FlConfig::threaded_gemm routes kernel macro-tile parallelism to the
// engine pool during serial phases (aggregation, global eval).  The tile
// ownership map makes it a pure wall-time knob, so runs with it forced on
// at any thread count must be bit-identical to the serial reference with
// it off.  Reduced-precision eval (FlConfig::eval_precision) changes eval
// numbers — deterministically — so it gets its own reference, which must
// likewise be thread-count and threaded-gemm independent.
TEST(ParallelDeterminismTest, ThreadedGemmAndEvalPrecisionStayBitIdentical) {
  data::TaskConfig tcfg;
  tcfg.train_samples = 240;
  tcfg.test_samples = 120;
  tcfg.num_clients = 6;
  const data::Task task = data::MakeTask("cifar10", tcfg);

  const auto run = [&](int threads, bool threaded_gemm,
                       kernels::EvalPrecision precision) {
    const auto tm = models::MakeTaskModels("cifar10");
    auto alg = algorithms::MakeAlgorithm("sheterofl", tm);
    FlConfig cfg;
    cfg.rounds = 2;
    cfg.sample_fraction = 0.8;
    cfg.eval_every = 1;
    cfg.eval_max_samples = 96;
    cfg.stability_max_samples = 48;
    cfg.round_deadline_s = 25.0;
    cfg.num_threads = threads;
    cfg.threaded_gemm = threaded_gemm;
    cfg.eval_precision = precision;
    FlEngine engine(task, cfg, HeterogeneousAssignments(6), *alg);
    return engine.Run();
  };

  const RunResult reference = run(1, false, kernels::EvalPrecision::kF32);
  ExpectIdentical(reference, run(1, true, kernels::EvalPrecision::kF32), 1);
  ExpectIdentical(reference, run(2, true, kernels::EvalPrecision::kF32), 2);
  ExpectIdentical(reference, run(4, true, kernels::EvalPrecision::kF32), 4);

  const RunResult bf16 = run(1, false, kernels::EvalPrecision::kBf16);
  ExpectIdentical(bf16, run(4, true, kernels::EvalPrecision::kBf16), 4);
  const RunResult int8 = run(1, false, kernels::EvalPrecision::kInt8);
  ExpectIdentical(int8, run(4, true, kernels::EvalPrecision::kInt8), 4);
}

// Determinism auditor ledger (obs/det_audit.h, DESIGN.md §5k): on a conv
// algorithm the per-round component hashes — RNG stream, algorithm
// SaveState bytes, auditable counter/histogram totals — and the running
// chain must be identical at 1, 2 and 4 threads.  This is the in-process
// version of the contract mhb_bisect.py checks between ledger files, and
// it subsumes the RunResult comparison: the model hash covers every
// parameter byte, not just the eval-time accuracy summary.
TEST(ParallelDeterminismTest, AuditLedgerIdenticalAcrossThreadCounts) {
  data::TaskConfig tcfg;
  tcfg.train_samples = 240;
  tcfg.test_samples = 120;
  tcfg.num_clients = 6;
  const data::Task task = data::MakeTask("cifar10", tcfg);
  const Case c{"sheterofl", "cifar10"};

  std::vector<obs::DetAuditor::Round> reference;
  for (const int threads : {1, 2, 4}) {
    obs::Registry registry;
    obs::DetAuditor audit;  // in-memory ledger
    obs::ObsConfig obs;
    obs.registry = &registry;
    obs.det_audit = &audit;
    RunWithThreads(c, task, threads, obs);
    ASSERT_EQ(audit.rounds().size(), 4u);
    // Each round actually audited something: the counter component moves
    // away from the empty-hash once clients train.
    EXPECT_NE(audit.rounds()[0].components[2].second,
              obs::DetHash().value());
    if (threads == 1) {
      reference = audit.rounds();
      continue;
    }
    for (std::size_t r = 0; r < reference.size(); ++r) {
      SCOPED_TRACE("num_threads=" + std::to_string(threads) + " round " +
                   std::to_string(r));
      EXPECT_EQ(audit.rounds()[r].chain, reference[r].chain);
      ASSERT_EQ(audit.rounds()[r].components.size(),
                reference[r].components.size());
      for (std::size_t k = 0; k < reference[r].components.size(); ++k) {
        EXPECT_EQ(audit.rounds()[r].components[k].first,
                  reference[r].components[k].first);
        EXPECT_EQ(audit.rounds()[r].components[k].second,
                  reference[r].components[k].second)
            << "component " << reference[r].components[k].first;
      }
    }
  }
}

// The refactor must not have changed the serial reference itself: two
// serial runs of the same seed agree (guards the phase-1 draw order).
TEST(ParallelDeterminismTest, SerialRunIsReproducible) {
  data::TaskConfig tcfg;
  tcfg.train_samples = 240;
  tcfg.test_samples = 120;
  tcfg.num_clients = 6;
  const data::Task task = data::MakeTask("cifar10", tcfg);
  const Case c{"sheterofl", "cifar10"};
  const RunResult a = RunWithThreads(c, task, 1);
  const RunResult b = RunWithThreads(c, task, 1);
  ExpectIdentical(a, b, 1);
}

}  // namespace
}  // namespace mhbench::fl
