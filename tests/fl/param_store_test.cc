#include "fl/param_store.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "models/zoo.h"

namespace mhbench::fl {
namespace {

TEST(ParamStoreTest, FromModuleSnapshotsAllParams) {
  Rng rng(1);
  const auto tm = models::MakeTaskModels("cifar100");
  models::BuildSpec spec;
  spec.multi_head = true;
  auto built = tm.primary->Build(spec, rng);
  ParamStore store = ParamStore::FromModule(*built.net);
  std::vector<nn::NamedParam> params;
  built.net->CollectParams("", params);
  EXPECT_EQ(store.size(), params.size());
  EXPECT_EQ(store.TotalParams(), built.net->NumParams());
  EXPECT_EQ(store.TotalBytes(), built.net->NumParams() * 4);
}

TEST(ParamStoreTest, GetUnknownThrows) {
  ParamStore store;
  EXPECT_THROW(store.Get("nope"), Error);
  EXPECT_THROW(store.GetMutable("nope"), Error);
  EXPECT_FALSE(store.Has("nope"));
}

TEST(ParamStoreTest, SetAndGet) {
  ParamStore store;
  store.Set("w", Tensor::FromVector({1, 2, 3}));
  EXPECT_TRUE(store.Has("w"));
  EXPECT_TRUE(store.Get("w").AllClose(Tensor::FromVector({1, 2, 3})));
}

TEST(ParamStoreTest, LoadIntoSubModelGathersSlices) {
  Rng rng(2);
  const auto tm = models::MakeTaskModels("cifar100");
  models::BuildSpec full_spec;
  full_spec.multi_head = true;
  auto global = tm.primary->Build(full_spec, rng);
  ParamStore store = ParamStore::FromModule(*global.net);

  models::BuildSpec half;
  half.width_ratio = 0.5;
  auto sub = tm.primary->Build(half, rng);
  store.LoadInto(*sub.net, sub.mapping);

  // Every loaded tensor equals the gather of the same-named global tensor.
  std::vector<nn::NamedParam> params;
  sub.net->CollectParams("", params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor expect =
        ops::GatherDims(store.Get(sub.mapping[i].name), sub.mapping[i].index);
    EXPECT_TRUE(params[i].param->value.AllClose(expect, 0.0f))
        << sub.mapping[i].name;
  }
}

TEST(ParamStoreTest, RoundTripLoadStore) {
  Rng rng(3);
  const auto tm = models::MakeTaskModels("cifar10");
  auto built = tm.primary->Build(models::BuildSpec{}, rng);
  ParamStore store = ParamStore::FromModule(*built.net);
  // Perturb module, write back, reload: store must follow.
  std::vector<nn::NamedParam> params;
  built.net->CollectParams("", params);
  params[0].param->value.Fill(42.0f);
  store.StoreFrom(*built.net);
  EXPECT_EQ(store.Get(params[0].name)[0], 42.0f);
}

TEST(ParamStoreTest, NamesSorted) {
  ParamStore store;
  store.Set("b", Tensor({1}));
  store.Set("a", Tensor({1}));
  const auto names = store.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

}  // namespace
}  // namespace mhbench::fl
