#include "fl/param_store.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "models/zoo.h"

namespace mhbench::fl {
namespace {

TEST(ParamStoreTest, FromModuleSnapshotsAllParams) {
  Rng rng(1);
  const auto tm = models::MakeTaskModels("cifar100");
  models::BuildSpec spec;
  spec.multi_head = true;
  auto built = tm.primary->Build(spec, rng);
  ParamStore store = ParamStore::FromModule(*built.net);
  std::vector<nn::NamedParam> params;
  built.net->CollectParams("", params);
  EXPECT_EQ(store.size(), params.size());
  EXPECT_EQ(store.TotalParams(), built.net->NumParams());
  EXPECT_EQ(store.TotalBytes(), built.net->NumParams() * 4);
}

TEST(ParamStoreTest, GetUnknownThrows) {
  ParamStore store;
  EXPECT_THROW(store.Get("nope"), Error);
  EXPECT_THROW(store.GetMutable("nope"), Error);
  EXPECT_FALSE(store.Has("nope"));
}

TEST(ParamStoreTest, SetAndGet) {
  ParamStore store;
  store.Set("w", Tensor::FromVector({1, 2, 3}));
  EXPECT_TRUE(store.Has("w"));
  EXPECT_TRUE(store.Get("w").AllClose(Tensor::FromVector({1, 2, 3})));
}

TEST(ParamStoreTest, LoadIntoSubModelGathersSlices) {
  Rng rng(2);
  const auto tm = models::MakeTaskModels("cifar100");
  models::BuildSpec full_spec;
  full_spec.multi_head = true;
  auto global = tm.primary->Build(full_spec, rng);
  ParamStore store = ParamStore::FromModule(*global.net);

  models::BuildSpec half;
  half.width_ratio = 0.5;
  auto sub = tm.primary->Build(half, rng);
  store.LoadInto(*sub.net, sub.mapping);

  // Every loaded tensor equals the gather of the same-named global tensor.
  std::vector<nn::NamedParam> params;
  sub.net->CollectParams("", params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor expect =
        ops::GatherDims(store.Get(sub.mapping[i].name), sub.mapping[i].index);
    EXPECT_TRUE(params[i].param->value.AllClose(expect, 0.0f))
        << sub.mapping[i].name;
  }
}

TEST(ParamStoreTest, RoundTripLoadStore) {
  Rng rng(3);
  const auto tm = models::MakeTaskModels("cifar10");
  auto built = tm.primary->Build(models::BuildSpec{}, rng);
  ParamStore store = ParamStore::FromModule(*built.net);
  // Perturb module, write back, reload: store must follow.
  std::vector<nn::NamedParam> params;
  built.net->CollectParams("", params);
  params[0].param->value.Fill(42.0f);
  store.StoreFrom(*built.net);
  EXPECT_EQ(store.Get(params[0].name)[0], 42.0f);
}

TEST(ParamStoreTest, NamesSorted) {
  ParamStore store;
  store.Set("b", Tensor({1}));
  store.Set("a", Tensor({1}));
  const auto names = store.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(ParamStoreTest, LoadAllRestoresEveryParam) {
  Rng rng(4);
  const auto tm = models::MakeTaskModels("cifar10");
  auto built = tm.primary->Build(models::BuildSpec{}, rng);
  const ParamStore store = ParamStore::FromModule(*built.net);
  std::vector<nn::NamedParam> params;
  built.net->CollectParams("", params);
  for (auto& p : params) p.param->value.Fill(-7.0f);
  store.LoadAll(*built.net);
  for (const auto& p : params) {
    EXPECT_TRUE(p.param->value.AllClose(store.Get(p.name), 0.0f)) << p.name;
  }
}

TEST(ParamStoreTest, LoadAllMissingParamThrows) {
  Rng rng(5);
  const auto tm = models::MakeTaskModels("cifar10");
  auto built = tm.primary->Build(models::BuildSpec{}, rng);
  ParamStore store;  // empty: every lookup misses
  EXPECT_THROW(store.LoadAll(*built.net), Error);
}

TEST(ParamStoreTest, LoadAllShapeMismatchThrows) {
  Rng rng(6);
  const auto tm = models::MakeTaskModels("cifar10");
  auto built = tm.primary->Build(models::BuildSpec{}, rng);
  ParamStore store = ParamStore::FromModule(*built.net);
  std::vector<nn::NamedParam> params;
  built.net->CollectParams("", params);
  store.Set(params[0].name, Tensor({1, 1}));  // wrong shape
  EXPECT_THROW(store.LoadAll(*built.net), Error);
}

// Negative paths of the Deserialize wire parser: every malformed prefix
// must throw instead of constructing a partial store.
TEST(ParamStoreDeserializeTest, TruncatedCountHeaderThrows) {
  const std::vector<std::uint8_t> two_bytes = {0x01, 0x00};
  EXPECT_THROW(ParamStore::Deserialize(two_bytes), Error);
}

TEST(ParamStoreDeserializeTest, CountOverrunThrows) {
  // Header promises 1000 entries; no payload follows.
  std::vector<std::uint8_t> bytes = {0xE8, 0x03, 0x00, 0x00};
  EXPECT_THROW(ParamStore::Deserialize(bytes), Error);
}

TEST(ParamStoreDeserializeTest, ImplausibleNameLengthThrows) {
  // count=1, then name_len=100000 (> the 4096 guard) with no name bytes —
  // must hit the guard, not try to allocate/read 100000 bytes.
  std::vector<std::uint8_t> bytes = {0x01, 0x00, 0x00, 0x00,
                                     0xA0, 0x86, 0x01, 0x00};
  EXPECT_THROW(ParamStore::Deserialize(bytes), Error);
}

TEST(ParamStoreDeserializeTest, TruncatedMidNameThrows) {
  // count=1, name_len=8, only 3 name bytes present.
  std::vector<std::uint8_t> bytes = {0x01, 0x00, 0x00, 0x00,
                                     0x08, 0x00, 0x00, 0x00, 'a', 'b', 'c'};
  EXPECT_THROW(ParamStore::Deserialize(bytes), Error);
}

TEST(ParamStoreDeserializeTest, TruncatedMidTensorThrows) {
  ParamStore store;
  store.Set("w", Tensor({4, 4}));
  auto bytes = store.Serialize();
  // Chop into the tensor payload (keep the count + name intact).
  bytes.resize(bytes.size() - 17);
  EXPECT_THROW(ParamStore::Deserialize(bytes), Error);
}

TEST(ParamStoreDeserializeTest, EveryTruncationThrows) {
  ParamStore store;
  store.Set("w", Tensor::FromVector({1, 2, 3}));
  store.Set("x/y", Tensor({2, 2}, 0.5f));
  const auto bytes = store.Serialize();
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(n));
    EXPECT_THROW(ParamStore::Deserialize(prefix), Error) << "prefix " << n;
  }
}

}  // namespace
}  // namespace mhbench::fl
