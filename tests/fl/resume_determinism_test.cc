// The checkpoint/resume contract: for every algorithm in the zoo,
// `run 2k rounds` and `run k rounds, snapshot, resume k rounds` produce
// bit-identical RunResults — same accuracy curve, same simulated clock,
// same skip counters, same counter/histogram totals — at 1, 2, and 4
// worker threads, and the resumed run's own end-of-run snapshot matches
// the uninterrupted run's byte for byte.  Plus the reject paths: resuming
// into a mismatched config, a foreign version, or a corrupted file must
// throw instead of silently diverging.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "algorithms/registry.h"
#include "data/tasks.h"
#include "fl/checkpoint.h"
#include "fl/engine.h"
#include "models/zoo.h"
#include "obs/det_audit.h"
#include "obs/live.h"
#include "obs/registry.h"
#include "support/temp_dir.h"

namespace mhbench::fl {
namespace {

struct Case {
  std::string algorithm;
  std::string task;
};

class ResumeDeterminismTest : public ::testing::TestWithParam<Case> {};

// Every algorithm must round-trip its full persistent state: the shared
// store family, InclusiveFl's pre-round copy, FedProto's personal models +
// prototypes, FedEt's group models + server ensemble.
INSTANTIATE_TEST_SUITE_P(
    Algorithms, ResumeDeterminismTest,
    ::testing::ValuesIn(std::vector<Case>{
        {"fedavg", "cifar10"},
        {"fjord", "cifar10"},
        {"sheterofl", "cifar10"},
        {"fedrolex", "cifar10"},
        {"depthfl", "ucihar"},
        {"inclusivefl", "cifar10"},
        {"fedepth", "cifar10"},
        {"fedproto", "cifar10"},
        {"fedet", "cifar10"},
    }),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.algorithm;
    });

// Same scenario as the parallel determinism suite: a capacity ladder with
// flaky devices (offline skips) and a compute spread crossing the round
// deadline (straggler drops), so the resumed half replays every skip path.
std::vector<ClientAssignment> HeterogeneousAssignments(int n) {
  std::vector<ClientAssignment> assign =
      UniformCapacityAssignments(n, {0.25, 0.5, 0.75, 1.0});
  for (int i = 0; i < n; ++i) {
    auto& a = assign[static_cast<std::size_t>(i)];
    a.arch_index = i;
    a.system.compute_time_s = 5.0 + 7.0 * (i % 4);
    a.system.comm_time_s = 2.0;
    a.system.availability = (i % 3 == 0) ? 0.5 : 1.0;
    a.system.comm_mb = 4.0 + i;
    a.system.train_gflops = 1.0 + 0.5 * i;
  }
  return assign;
}

struct RunSpec {
  int num_threads = 1;
  int checkpoint_every = 0;
  std::string checkpoint_dir;
  std::string resume_path;
  obs::Registry* registry = nullptr;
  obs::DetAuditor* det_audit = nullptr;
};

RunResult RunCase(const Case& c, const data::Task& task, const RunSpec& spec) {
  const auto tm = models::MakeTaskModels(c.task);
  auto alg = algorithms::MakeAlgorithm(c.algorithm, tm);

  FlConfig cfg;
  cfg.rounds = 4;
  cfg.sample_fraction = 0.8;
  cfg.eval_every = 2;
  cfg.eval_max_samples = 96;
  cfg.stability_max_samples = 48;
  cfg.round_deadline_s = 25.0;
  cfg.num_threads = spec.num_threads;
  cfg.checkpoint_every = spec.checkpoint_every;
  if (!spec.checkpoint_dir.empty()) cfg.checkpoint_dir = spec.checkpoint_dir;
  cfg.resume_path = spec.resume_path;
  cfg.obs.registry = spec.registry;
  cfg.obs.det_audit = spec.det_audit;

  // Live telemetry rides along on every run (HTTP + heartbeat + armed
  // watchdog): the bit-identity and totals assertions below then also
  // prove the exporter cannot perturb checkpoint/resume at any thread
  // count (obs/live.h).
  const auto live_dir = testsupport::MakeTempDir();
  obs::LiveConfig lcfg;
  lcfg.http_port = 0;  // ephemeral
  lcfg.heartbeat_every_s = 0.05;
  lcfg.heartbeat_path = live_dir.File("heartbeat.jsonl");
  lcfg.watchdog_stall_s = 120.0;  // armed; must never fire on a live run
  lcfg.run_id = c.algorithm + "-resume-determinism";
  lcfg.rounds_total = cfg.rounds;
  obs::LiveExporter live(lcfg, spec.registry);
  cfg.obs.live = &live;

  FlEngine engine(task, cfg, HeterogeneousAssignments(6), *alg);
  RunResult result = engine.Run();
  live.Stop();
  EXPECT_EQ(live.stall_count(), 0) << "watchdog fired on a healthy run";
  return result;
}

// Bit-identical comparison: exact double equality, field by field.
void ExpectIdentical(const RunResult& want, const RunResult& got,
                     const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(want.final_accuracy, got.final_accuracy);
  EXPECT_EQ(want.total_sim_time_s, got.total_sim_time_s);
  EXPECT_EQ(want.straggler_drops, got.straggler_drops);
  EXPECT_EQ(want.offline_skips, got.offline_skips);
  EXPECT_EQ(want.total_participations, got.total_participations);

  ASSERT_EQ(want.curve.size(), got.curve.size());
  for (std::size_t i = 0; i < want.curve.size(); ++i) {
    EXPECT_EQ(want.curve[i].round, got.curve[i].round);
    EXPECT_EQ(want.curve[i].sim_time_s, got.curve[i].sim_time_s);
    EXPECT_EQ(want.curve[i].global_acc, got.curve[i].global_acc);
  }

  ASSERT_EQ(want.client_accuracies.size(), got.client_accuracies.size());
  for (std::size_t i = 0; i < want.client_accuracies.size(); ++i) {
    EXPECT_EQ(want.client_accuracies[i], got.client_accuracies[i])
        << "client " << i;
  }
}

// Counter totals with the run-shape-dependent entries removed: pool_tasks
// counts helper tasks (a function of the worker count), and the
// checkpoint_* instrumentation differs between runs that snapshot/resume
// and the uninterrupted reference (asserted separately below).
std::map<std::string, std::int64_t> DeterministicTotals(
    const obs::Registry& reg) {
  auto totals = reg.Totals();
  totals.erase("pool_tasks");
  for (auto it = totals.begin(); it != totals.end();) {
    it = it->first.rfind("checkpoint_", 0) == 0 ? totals.erase(it)
                                                : std::next(it);
  }
  return totals;
}

TEST_P(ResumeDeterminismTest, ResumeIsBitIdentical) {
  const Case c = GetParam();
  data::TaskConfig tcfg;
  tcfg.train_samples = 240;
  tcfg.test_samples = 120;
  tcfg.num_clients = 6;
  const data::Task task = data::MakeTask(c.task, tcfg);
  const auto dir = testsupport::MakeTempDir();

  // A: the uninterrupted serial reference, counters attached.
  obs::Registry reg_full;
  RunSpec full_spec;
  full_spec.registry = &reg_full;
  const RunResult full = RunCase(c, task, full_spec);
  // The scenario must actually exercise the skip paths it claims to cover.
  EXPECT_GT(full.offline_skips, 0) << "availability<1 never skipped";
  EXPECT_GT(full.straggler_drops, 0) << "deadline never dropped";
  ASSERT_FALSE(full.curve.empty());
  const auto full_totals = DeterministicTotals(reg_full);

  // B: same run, snapshotting every 2 rounds.  Writing snapshots must be
  // pure observation — results and counters unchanged.
  obs::Registry reg_ckpt;
  RunSpec ckpt_spec;
  ckpt_spec.registry = &reg_ckpt;
  ckpt_spec.checkpoint_every = 2;
  ckpt_spec.checkpoint_dir = dir.File("ckpt");
  const RunResult ckpt = RunCase(c, task, ckpt_spec);
  ExpectIdentical(full, ckpt, "checkpointing run");
  EXPECT_EQ(DeterministicTotals(reg_ckpt), full_totals);

  // The snapshot writes themselves are instrumented (fl/checkpoint.cc):
  // two snapshots with a positive byte count and wall write time, and the
  // uninterrupted reference never registered any checkpoint counter.
  EXPECT_EQ(reg_full.Total("checkpoint_writes"), 0);
  EXPECT_EQ(reg_ckpt.Total("checkpoint_writes"), 2);
  EXPECT_GT(reg_ckpt.Total("checkpoint_bytes"), 0);
  EXPECT_GT(reg_ckpt.Total("checkpoint_write_us"), 0);

  const std::string mid = ckpt_spec.checkpoint_dir + "/round_000002.mhbsnap";
  const std::string end = ckpt_spec.checkpoint_dir + "/round_000004.mhbsnap";
  ASSERT_TRUE(std::filesystem::exists(mid));
  ASSERT_TRUE(std::filesystem::exists(end));
  const SnapshotReader end_snap = SnapshotReader::FromFile(end);

  // C: resume the second half from the mid-run snapshot at 1/2/4 threads.
  std::int64_t resumed_ckpt_bytes = 0;
  for (const int threads : {1, 2, 4}) {
    obs::Registry reg_resumed;
    RunSpec resume_spec;
    resume_spec.registry = &reg_resumed;
    resume_spec.num_threads = threads;
    resume_spec.resume_path = mid;
    resume_spec.checkpoint_every = 2;
    resume_spec.checkpoint_dir = dir.File("resume_t" + std::to_string(threads));
    const RunResult resumed = RunCase(c, task, resume_spec);
    ExpectIdentical(full, resumed,
                    "resumed num_threads=" + std::to_string(threads));

    // Counter totals restore + replay to exactly the uninterrupted totals.
    EXPECT_EQ(DeterministicTotals(reg_resumed), full_totals)
        << "counter totals diverged at num_threads=" << threads;

    // Checkpoint instrumentation: one snapshot written by the resumed half
    // (round 4), the restore read counted, and the written byte count —
    // unlike the wall-clock write time — identical at every thread count
    // (the snapshot obs section includes zero deltas precisely so its size
    // cannot depend on which counters a given pool shape touched).
    EXPECT_EQ(reg_resumed.Total("checkpoint_writes"), 1);
    EXPECT_GT(reg_resumed.Total("checkpoint_read_bytes"), 0);
    EXPECT_GT(reg_resumed.Total("checkpoint_write_us"), 0);
    if (threads == 1) {
      resumed_ckpt_bytes = reg_resumed.Total("checkpoint_bytes");
      EXPECT_GT(resumed_ckpt_bytes, 0);
    } else {
      EXPECT_EQ(reg_resumed.Total("checkpoint_bytes"), resumed_ckpt_bytes)
          << "checkpoint size diverged at num_threads=" << threads;
    }

    // Deterministic histograms too (client_wall_us is wall-clock noise and
    // is deliberately excluded from the contract).
    for (const char* name : {"client_bytes_up", "client_train_mflops"}) {
      SCOPED_TRACE(name);
      const auto want = reg_full.HistogramTotals(name);
      const auto got = reg_resumed.HistogramTotals(name);
      EXPECT_EQ(got.buckets, want.buckets);
      EXPECT_EQ(got.sum, want.sum);
      EXPECT_EQ(got.min, want.min);
      EXPECT_EQ(got.max, want.max);
    }

    // The resumed run snapshots round 4 itself; its learned state must be
    // byte-identical to the uninterrupted run's round-4 snapshot.
    const SnapshotReader resumed_snap = SnapshotReader::FromFile(
        resume_spec.checkpoint_dir + "/round_000004.mhbsnap");
    EXPECT_EQ(resumed_snap.SectionPayload("engine"),
              end_snap.SectionPayload("engine"))
        << "engine section diverged at num_threads=" << threads;
    EXPECT_EQ(resumed_snap.SectionPayload("algorithm"),
              end_snap.SectionPayload("algorithm"))
        << "algorithm section diverged at num_threads=" << threads;
  }
}

// Determinism auditor across resume (obs/det_audit.h, DESIGN.md §5k): on a
// conv algorithm, the per-round component hashes the resumed half records
// must equal the uninterrupted run's at the same rounds, at 1, 2 and 4
// threads.  Per-component, not the chain: the chain folds from round 0 and
// a resumed ledger legitimately starts at the restored round.  Auditable
// totals deliberately exclude checkpoint_* counters — they differ by
// construction between a snapshotting and a plain run — which this test
// exercises for real, unlike the thread-sweep where both runs checkpoint
// identically.
TEST(ResumeDeterminismTest, AuditComponentsMatchAcrossResume) {
  const Case c{"sheterofl", "cifar10"};
  data::TaskConfig tcfg;
  tcfg.train_samples = 240;
  tcfg.test_samples = 120;
  tcfg.num_clients = 6;
  const data::Task task = data::MakeTask(c.task, tcfg);
  const auto dir = testsupport::MakeTempDir();

  // Uninterrupted reference, snapshotting at round 2 so the halves below
  // have something to resume from.
  obs::Registry reg_full;
  obs::DetAuditor audit_full;
  RunSpec full_spec;
  full_spec.registry = &reg_full;
  full_spec.det_audit = &audit_full;
  full_spec.checkpoint_every = 2;
  full_spec.checkpoint_dir = dir.File("ckpt");
  RunCase(c, task, full_spec);
  ASSERT_EQ(audit_full.rounds().size(), 4u);
  const std::string mid = full_spec.checkpoint_dir + "/round_000002.mhbsnap";
  ASSERT_TRUE(std::filesystem::exists(mid));

  for (const int threads : {1, 2, 4}) {
    obs::Registry reg_resumed;
    obs::DetAuditor audit_resumed;
    RunSpec resume_spec;
    resume_spec.registry = &reg_resumed;
    resume_spec.det_audit = &audit_resumed;
    resume_spec.num_threads = threads;
    resume_spec.resume_path = mid;
    RunCase(c, task, resume_spec);
    // The resumed half records exactly rounds 2 and 3.
    ASSERT_EQ(audit_resumed.rounds().size(), 2u);
    for (const auto& got : audit_resumed.rounds()) {
      SCOPED_TRACE("num_threads=" + std::to_string(threads) + " round " +
                   std::to_string(got.round));
      const auto& want =
          audit_full.rounds()[static_cast<std::size_t>(got.round)];
      ASSERT_EQ(want.round, got.round);
      ASSERT_EQ(want.components.size(), got.components.size());
      for (std::size_t k = 0; k < want.components.size(); ++k) {
        EXPECT_EQ(want.components[k].first, got.components[k].first);
        EXPECT_EQ(want.components[k].second, got.components[k].second)
            << "component " << want.components[k].first;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Reject paths: a snapshot that does not match the run configuration, or
// whose bytes are damaged, must throw from Run() instead of resuming.

// One small sheterofl snapshot shared per test (cheap config: 4 uniform
// clients, 2 rounds, snapshot after round 1).
struct RejectFixture {
  testsupport::TempDir dir = testsupport::MakeTempDir();
  data::Task task;
  std::string snap_path;

  RejectFixture() {
    data::TaskConfig tcfg;
    tcfg.train_samples = 160;
    tcfg.test_samples = 80;
    tcfg.num_clients = 4;
    task = data::MakeTask("cifar10", tcfg);
    Run("sheterofl", /*resume_path=*/"", /*checkpoint=*/true);
    snap_path = dir.path + "/ckpt/round_000001.mhbsnap";
    EXPECT_TRUE(std::filesystem::exists(snap_path));
  }

  RunResult Run(const std::string& algorithm, const std::string& resume_path,
                bool checkpoint, int rounds = 2, std::uint64_t seed = 1) {
    const auto tm = models::MakeTaskModels("cifar10");
    auto alg = algorithms::MakeAlgorithm(algorithm, tm);
    FlConfig cfg;
    cfg.seed = seed;
    cfg.rounds = rounds;
    cfg.sample_fraction = 1.0;
    cfg.eval_every = 2;
    cfg.eval_max_samples = 80;
    cfg.stability_max_samples = 20;
    cfg.checkpoint_every = checkpoint ? 1 : 0;
    cfg.checkpoint_dir = dir.path + "/ckpt";
    cfg.resume_path = resume_path;
    FlEngine engine(task, cfg, UniformCapacityAssignments(4, {1.0}), *alg);
    return engine.Run();
  }

  // Writes a mutated copy of the snapshot and returns its path.
  std::string Mutated(const std::string& name,
                      const std::vector<std::uint8_t>& bytes) const {
    const std::string path = dir.File(name);
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  std::vector<std::uint8_t> SnapshotBytes() const {
    std::ifstream in(snap_path, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
  }
};

TEST(ResumeRejectTest, WrongAlgorithmRejected) {
  RejectFixture f;
  EXPECT_THROW(f.Run("fedavg", f.snap_path, false), Error);
}

TEST(ResumeRejectTest, WrongSeedRejected) {
  RejectFixture f;
  EXPECT_THROW(f.Run("sheterofl", f.snap_path, false, 2, /*seed=*/7), Error);
}

TEST(ResumeRejectTest, FewerRoundsThanSnapshotRejected) {
  RejectFixture f;
  // The snapshot's next round is 1; a run configured to end before that
  // (rounds=0) would have to rewind history and must be rejected.
  EXPECT_THROW(f.Run("sheterofl", f.snap_path, false, /*rounds=*/0), Error);
}

TEST(ResumeRejectTest, ResumeAtFinalRoundIsANoOpRun) {
  RejectFixture f;
  // next_round == rounds: legal, trains nothing, still evaluates.
  const RunResult r = f.Run("sheterofl", f.snap_path, false, /*rounds=*/1);
  EXPECT_GE(r.final_accuracy, 0.0);
}

TEST(ResumeRejectTest, ForeignVersionRejected) {
  RejectFixture f;
  for (const std::uint32_t version : {0u, 2u, 0xFFFFFFFFu}) {
    auto bytes = f.SnapshotBytes();
    ASSERT_GE(bytes.size(), 12u);
    std::memcpy(bytes.data() + 8, &version, sizeof(version));
    const std::string path =
        f.Mutated("ver_" + std::to_string(version) + ".mhbsnap", bytes);
    EXPECT_THROW(f.Run("sheterofl", path, false), Error)
        << "version " << version;
  }
}

TEST(ResumeRejectTest, CorruptedBytesRejected) {
  RejectFixture f;
  const auto bytes = f.SnapshotBytes();
  ASSERT_GT(bytes.size(), 64u);
  // Sample positions across the whole file (header, name tables, payloads);
  // the exhaustive every-byte sweep lives in snapshot_format_test.
  const std::size_t step = bytes.size() / 7 + 1;
  for (std::size_t pos = 0; pos < bytes.size(); pos += step) {
    auto mutated = bytes;
    mutated[pos] ^= 0x01;
    const std::string path =
        f.Mutated("flip_" + std::to_string(pos) + ".mhbsnap", mutated);
    EXPECT_THROW(f.Run("sheterofl", path, false), Error) << "byte " << pos;
  }
}

TEST(ResumeRejectTest, TruncatedFileRejected) {
  RejectFixture f;
  auto bytes = f.SnapshotBytes();
  bytes.resize(bytes.size() / 2);
  const std::string path = f.Mutated("truncated.mhbsnap", bytes);
  EXPECT_THROW(f.Run("sheterofl", path, false), Error);
}

TEST(ResumeRejectTest, MissingFileRejected) {
  RejectFixture f;
  EXPECT_THROW(f.Run("sheterofl", f.dir.File("absent.mhbsnap"), false), Error);
}

}  // namespace
}  // namespace mhbench::fl
