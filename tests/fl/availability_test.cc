// State heterogeneity: devices that are sometimes offline when sampled.
#include <gtest/gtest.h>

#include "algorithms/registry.h"
#include "constraints/computation_limited.h"
#include "data/tasks.h"
#include "device/ima_fleet.h"
#include "fl/engine.h"
#include "models/zoo.h"

namespace mhbench::fl {
namespace {

TEST(AvailabilityTest, DefaultFleetAlwaysOnline) {
  device::FleetConfig cfg;
  cfg.num_clients = 50;
  const device::Fleet fleet = device::SampleFleet(cfg);
  for (const auto& d : fleet) {
    EXPECT_DOUBLE_EQ(d.availability, 1.0);
  }
}

TEST(AvailabilityTest, RangeSampled) {
  device::FleetConfig cfg;
  cfg.num_clients = 200;
  cfg.availability_min = 0.5;
  cfg.availability_max = 0.9;
  const device::Fleet fleet = device::SampleFleet(cfg);
  double lo = 1.0, hi = 0.0;
  for (const auto& d : fleet) {
    EXPECT_GE(d.availability, 0.5);
    EXPECT_LE(d.availability, 0.9);
    lo = std::min(lo, d.availability);
    hi = std::max(hi, d.availability);
  }
  EXPECT_LT(lo, 0.6);
  EXPECT_GT(hi, 0.8);
}

TEST(AvailabilityTest, InvalidRangeThrows) {
  device::FleetConfig cfg;
  cfg.availability_min = 0.9;
  cfg.availability_max = 0.5;
  EXPECT_THROW(device::SampleFleet(cfg), Error);
  cfg.availability_min = -0.1;
  cfg.availability_max = 1.0;
  EXPECT_THROW(device::SampleFleet(cfg), Error);
}

TEST(AvailabilityTest, ConstraintBuilderPropagates) {
  device::FleetConfig cfg;
  cfg.num_clients = 20;
  cfg.availability_min = 0.6;
  cfg.availability_max = 0.8;
  const device::Fleet fleet = device::SampleFleet(cfg);
  const auto built =
      constraints::BuildComputationLimited("sheterofl", "cifar10", fleet);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_DOUBLE_EQ(built.assignments[i].system.availability,
                     fleet[i].availability);
  }
}

TEST(AvailabilityTest, OfflineClientsSkipRounds) {
  data::TaskConfig tcfg;
  tcfg.train_samples = 160;
  tcfg.test_samples = 80;
  tcfg.num_clients = 4;
  const data::Task task = data::MakeTask("cifar10", tcfg);
  const auto tm = models::MakeTaskModels("cifar10");
  auto alg = algorithms::MakeAlgorithm("fedavg", tm);
  std::vector<ClientAssignment> assignments(4);
  for (auto& a : assignments) a.system.availability = 0.5;
  FlConfig cfg;
  cfg.rounds = 20;
  cfg.sample_fraction = 1.0;
  cfg.eval_every = 20;
  cfg.eval_max_samples = 40;
  cfg.stability_max_samples = 20;
  FlEngine engine(task, cfg, assignments, *alg);
  const RunResult r = engine.Run();
  EXPECT_EQ(r.total_participations, 80);
  // ~50% of client-rounds skipped; allow wide slack for the small sample.
  EXPECT_GT(r.offline_skips, 20);
  EXPECT_LT(r.offline_skips, 60);
  EXPECT_EQ(r.straggler_drops, 0);
}

TEST(AvailabilityTest, AlwaysOnlineConsumesNoRandomness) {
  // availability == 1.0 must not consume RNG draws, so runs with and
  // without the feature compiled-in remain bit-identical.
  data::TaskConfig tcfg;
  tcfg.train_samples = 120;
  tcfg.test_samples = 60;
  tcfg.num_clients = 3;
  const data::Task task = data::MakeTask("cifar10", tcfg);
  const auto tm = models::MakeTaskModels("cifar10");
  FlConfig cfg;
  cfg.rounds = 3;
  cfg.sample_fraction = 1.0;
  cfg.eval_every = 3;
  cfg.eval_max_samples = 60;
  cfg.stability_max_samples = 20;
  auto run = [&](double availability) {
    auto alg = algorithms::MakeAlgorithm("sheterofl", tm);
    std::vector<ClientAssignment> assignments(3);
    for (auto& a : assignments) a.system.availability = availability;
    FlEngine engine(task, cfg, assignments, *alg);
    return engine.Run().final_accuracy;
  };
  EXPECT_DOUBLE_EQ(run(1.0), run(1.0));
  // Lower availability changes the trajectory (clients skip).
  EXPECT_NE(run(1.0), run(0.3));
}

}  // namespace
}  // namespace mhbench::fl
