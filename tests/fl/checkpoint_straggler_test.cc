// Checkpointing (ParamStore serialization) and the engine's synchronous
// round deadline (straggler dropping) + LR schedules.
#include <gtest/gtest.h>

#include "algorithms/registry.h"
#include "data/tasks.h"
#include "fl/engine.h"
#include "fl/param_store.h"
#include "models/zoo.h"
#include "support/temp_dir.h"

namespace mhbench::fl {
namespace {

TEST(CheckpointTest, SerializeRoundTrip) {
  Rng rng(1);
  const auto tm = models::MakeTaskModels("cifar10");
  auto built = tm.primary->Build(models::BuildSpec{}, rng);
  const ParamStore store = ParamStore::FromModule(*built.net);
  const auto bytes = store.Serialize();
  const ParamStore restored = ParamStore::Deserialize(bytes);
  EXPECT_EQ(restored.size(), store.size());
  for (const auto& name : store.Names()) {
    ASSERT_TRUE(restored.Has(name)) << name;
    EXPECT_TRUE(restored.Get(name).AllClose(store.Get(name), 0.0f)) << name;
  }
}

TEST(CheckpointTest, FileRoundTrip) {
  ParamStore store;
  store.Set("a/weight", Tensor({2, 3}, 1.5f));
  store.Set("b/bias", Tensor::FromVector({1, 2, 3}));
  // Unique per-test dir: a fixed name under TempDir() collides under
  // `ctest -j` when another binary's test round-trips concurrently.
  const auto dir = testsupport::MakeTempDir();
  const std::string path = dir.File("mhb_ckpt.bin");
  store.SaveFile(path);
  const ParamStore restored = ParamStore::LoadFile(path);
  EXPECT_TRUE(restored.Get("a/weight").AllClose(store.Get("a/weight")));
  EXPECT_TRUE(restored.Get("b/bias").AllClose(store.Get("b/bias")));
}

TEST(CheckpointTest, CorruptedBufferThrows) {
  ParamStore store;
  store.Set("w", Tensor({4}));
  auto bytes = store.Serialize();
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(ParamStore::Deserialize(bytes), Error);
  bytes.clear();
  EXPECT_THROW(ParamStore::Deserialize(bytes), Error);
}

TEST(CheckpointTest, TrailingGarbageThrows) {
  ParamStore store;
  store.Set("w", Tensor({4}));
  auto bytes = store.Serialize();
  bytes.push_back(0xAB);
  EXPECT_THROW(ParamStore::Deserialize(bytes), Error);
}

TEST(CheckpointTest, MissingFileThrows) {
  EXPECT_THROW(ParamStore::LoadFile("/nonexistent/ckpt.bin"), Error);
}

struct EngineFixture {
  data::Task task;
  models::TaskModels tm;
  std::vector<ClientAssignment> assignments;
  FlConfig cfg;

  EngineFixture() {
    data::TaskConfig tcfg;
    tcfg.train_samples = 160;
    tcfg.test_samples = 80;
    tcfg.num_clients = 4;
    task = data::MakeTask("cifar10", tcfg);
    tm = models::MakeTaskModels("cifar10");
    assignments = UniformCapacityAssignments(4, {1.0});
    cfg.rounds = 4;
    cfg.sample_fraction = 1.0;
    cfg.eval_every = 4;
    cfg.eval_max_samples = 80;
    cfg.stability_max_samples = 20;
  }
};

TEST(StragglerTest, SlowClientsAreDropped) {
  EngineFixture f;
  // Clients 0/1 fast, clients 2/3 slow.
  f.assignments[0].system.compute_time_s = 10;
  f.assignments[1].system.compute_time_s = 10;
  f.assignments[2].system.compute_time_s = 100;
  f.assignments[3].system.compute_time_s = 100;
  f.cfg.round_deadline_s = 50;
  auto alg = algorithms::MakeAlgorithm("fedavg", f.tm);
  FlEngine engine(f.task, f.cfg, f.assignments, *alg);
  const RunResult r = engine.Run();
  EXPECT_EQ(r.total_participations, 16);  // 4 clients x 4 rounds
  EXPECT_EQ(r.straggler_drops, 8);        // the two slow clients each round
  // The server waits out the deadline each round.
  EXPECT_DOUBLE_EQ(r.total_sim_time_s, 4 * 50.0);
}

TEST(StragglerTest, NoDeadlineNoDrops) {
  EngineFixture f;
  f.assignments[0].system.compute_time_s = 1000;
  auto alg = algorithms::MakeAlgorithm("fedavg", f.tm);
  FlEngine engine(f.task, f.cfg, f.assignments, *alg);
  const RunResult r = engine.Run();
  EXPECT_EQ(r.straggler_drops, 0);
}

TEST(StragglerTest, AllDroppedStillRuns) {
  EngineFixture f;
  for (auto& a : f.assignments) a.system.compute_time_s = 100;
  f.cfg.round_deadline_s = 1.0;
  auto alg = algorithms::MakeAlgorithm("sheterofl", f.tm);
  FlEngine engine(f.task, f.cfg, f.assignments, *alg);
  const RunResult r = engine.Run();  // no client ever contributes
  EXPECT_EQ(r.straggler_drops, r.total_participations);
  EXPECT_GE(r.final_accuracy, 0.0);  // evaluates the untouched init model
}

TEST(LrScheduleEngineTest, MultiplierKinds) {
  EngineFixture f;
  auto alg = algorithms::MakeAlgorithm("fedavg", f.tm);
  f.cfg.lr_schedule = LrScheduleKind::kCosine;
  f.cfg.lr_cosine_floor = 0.1;
  FlEngine engine(f.task, f.cfg, f.assignments, *alg);
  const auto& ctx = engine.context();
  EXPECT_NEAR(ctx.LrMultiplier(0), 1.0, 1e-9);
  EXPECT_LT(ctx.LrMultiplier(3), 1.0);
  EXPECT_DOUBLE_EQ(ctx.LrMultiplier(-1), 1.0);
  EXPECT_NEAR(ctx.local_options(0).lr, f.cfg.lr, 1e-9);
  EXPECT_LT(ctx.local_options(3).lr, f.cfg.lr);
}

TEST(LrScheduleEngineTest, StepDecayInEngine) {
  EngineFixture f;
  auto alg = algorithms::MakeAlgorithm("fedavg", f.tm);
  f.cfg.lr_schedule = LrScheduleKind::kStepDecay;
  f.cfg.lr_step = 2;
  f.cfg.lr_gamma = 0.5;
  FlEngine engine(f.task, f.cfg, f.assignments, *alg);
  EXPECT_DOUBLE_EQ(engine.context().LrMultiplier(1), 1.0);
  EXPECT_DOUBLE_EQ(engine.context().LrMultiplier(2), 0.5);
  // And the run completes.
  EXPECT_GE(engine.Run().final_accuracy, 0.0);
}

}  // namespace
}  // namespace mhbench::fl
