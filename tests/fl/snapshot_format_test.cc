// Wire-format contract of the snapshot subsystem (fl/checkpoint.h):
// golden byte layout, CRC vectors, round-trips, and exhaustive
// corruption/truncation fuzzing — every flipped byte and every truncated
// prefix must be detected, never decoded approximately.
#include "fl/checkpoint.h"

#include <cstring>

#include <gtest/gtest.h>

#include "core/error.h"
#include "support/temp_dir.h"

namespace mhbench::fl {
namespace {

// Independent bit-at-a-time CRC-32 (IEEE, reflected 0xEDB88320) so the
// golden test does not trust the table-driven implementation under test.
std::uint32_t BitwiseCrc32(const std::vector<std::uint8_t>& data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) {
    crc ^= b;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

template <typename T>
void PushLe(std::vector<std::uint8_t>& out, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(
        (static_cast<std::uint64_t>(v) >> (8 * i)) & 0xFF));
  }
}

void PushF64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PushLe(out, bits);
}

TEST(Crc32Test, KnownAnswerVector) {
  // The standard CRC-32 check value.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, MatchesBitwiseReference) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 300; ++i) {
    data.push_back(static_cast<std::uint8_t>((i * 37 + 11) & 0xFF));
  }
  EXPECT_EQ(Crc32(data.data(), data.size()), BitwiseCrc32(data));
}

// A snapshot exercising every primitive, shared by the golden-layout,
// round-trip and fuzz tests.
SnapshotWriter ExampleWriter() {
  SnapshotWriter w;
  w.BeginSection("alpha");
  w.WriteU8(0x5A);
  w.WriteU32(0xDEAD0001u);
  w.WriteI32(-2);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI64(-5);
  w.WriteF64(1.5);
  w.WriteString("hi");
  w.WriteBytes({0xCA, 0xFE});
  w.WriteTensor(Tensor::FromVector({1, 2, 3}));
  w.EndSection();
  w.BeginSection("beta");
  w.WriteU32(7);
  w.EndSection();
  return w;
}

// Reads back every value ExampleWriter wrote; returns false if anything
// throws or mismatches (the fuzz oracle: a corrupted snapshot must never
// read back intact).
bool SurvivesIntact(const std::vector<std::uint8_t>& bytes) {
  try {
    SnapshotReader r{std::vector<std::uint8_t>(bytes)};
    if (r.version() != kSnapshotVersion) return false;
    if (r.SectionNames() != std::vector<std::string>({"alpha", "beta"})) {
      return false;
    }
    r.EnterSection("alpha");
    if (r.ReadU8() != 0x5A) return false;
    if (r.ReadU32() != 0xDEAD0001u) return false;
    if (r.ReadI32() != -2) return false;
    if (r.ReadU64() != 0x0123456789ABCDEFull) return false;
    if (r.ReadI64() != -5) return false;
    if (r.ReadF64() != 1.5) return false;
    if (r.ReadString() != "hi") return false;
    if (r.ReadBytes() != std::vector<std::uint8_t>({0xCA, 0xFE})) {
      return false;
    }
    const Tensor t = r.ReadTensor();
    if (!t.AllClose(Tensor::FromVector({1, 2, 3}), 0.0f)) return false;
    r.ExpectSectionEnd();
    r.EnterSection("beta");
    if (r.ReadU32() != 7u) return false;
    r.ExpectSectionEnd();
    return true;
  } catch (const Error&) {
    return false;
  }
}

TEST(SnapshotFormatTest, GoldenByteLayout) {
  // Hand-assemble the expected wire bytes for a two-section snapshot and
  // require the writer to produce them exactly.  This test IS the format
  // contract: if it fails, kSnapshotVersion must be bumped.
  std::vector<std::uint8_t> alpha;
  PushLe<std::uint8_t>(alpha, 0x5A);
  PushLe<std::uint32_t>(alpha, 0xDEAD0001u);
  PushLe<std::uint32_t>(alpha, static_cast<std::uint32_t>(-2));
  PushLe<std::uint64_t>(alpha, 0x0123456789ABCDEFull);
  PushLe<std::uint64_t>(alpha, static_cast<std::uint64_t>(-5));
  PushF64(alpha, 1.5);
  PushLe<std::uint32_t>(alpha, 2);  // string length
  alpha.push_back('h');
  alpha.push_back('i');
  PushLe<std::uint64_t>(alpha, 2);  // bytes length
  alpha.push_back(0xCA);
  alpha.push_back(0xFE);
  // SerializeTensor blob: i32 ndim, i32 extents, raw float32 data.
  PushLe<std::uint32_t>(alpha, 1);  // ndim
  PushLe<std::uint32_t>(alpha, 3);  // extent
  for (const float f : {1.0f, 2.0f, 3.0f}) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &f, sizeof(bits));
    PushLe(alpha, bits);
  }
  std::vector<std::uint8_t> beta;
  PushLe<std::uint32_t>(beta, 7);

  std::vector<std::uint8_t> expect;
  for (const char c : {'M', 'H', 'B', 'S', 'N', 'A', 'P', '1'}) {
    expect.push_back(static_cast<std::uint8_t>(c));
  }
  PushLe<std::uint32_t>(expect, kSnapshotVersion);
  PushLe<std::uint32_t>(expect, 2);  // section count
  const auto push_section = [&](const std::string& name,
                                const std::vector<std::uint8_t>& payload) {
    PushLe<std::uint32_t>(expect, static_cast<std::uint32_t>(name.size()));
    for (const char c : name) expect.push_back(static_cast<std::uint8_t>(c));
    PushLe<std::uint64_t>(expect, payload.size());
    PushLe<std::uint32_t>(expect, BitwiseCrc32(payload));
    expect.insert(expect.end(), payload.begin(), payload.end());
  };
  push_section("alpha", alpha);
  push_section("beta", beta);

  EXPECT_EQ(ExampleWriter().Finish(), expect);
}

TEST(SnapshotFormatTest, RoundTripReadsBack) {
  EXPECT_TRUE(SurvivesIntact(ExampleWriter().Finish()));
}

TEST(SnapshotFormatTest, FileRoundTrip) {
  const auto dir = testsupport::MakeTempDir();
  const std::string path = dir.File("snap.mhbsnap");
  ExampleWriter().WriteFile(path);
  SnapshotReader r = SnapshotReader::FromFile(path);
  r.EnterSection("beta");
  EXPECT_EQ(r.ReadU32(), 7u);
  r.ExpectSectionEnd();
}

TEST(SnapshotFormatTest, MissingFileThrows) {
  EXPECT_THROW(SnapshotReader::FromFile("/nonexistent/snap.mhbsnap"), Error);
}

TEST(SnapshotFormatTest, EveryByteFlipIsDetected) {
  const std::vector<std::uint8_t> bytes = ExampleWriter().Finish();
  ASSERT_TRUE(SurvivesIntact(bytes));
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::vector<std::uint8_t> corrupted = bytes;
    corrupted[pos] ^= 0x01;
    EXPECT_FALSE(SurvivesIntact(corrupted)) << "flip at byte " << pos;
    corrupted[pos] = bytes[pos] ^ 0x80;
    EXPECT_FALSE(SurvivesIntact(corrupted)) << "high flip at byte " << pos;
  }
}

TEST(SnapshotFormatTest, EveryTruncationThrows) {
  const std::vector<std::uint8_t> bytes = ExampleWriter().Finish();
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    std::vector<std::uint8_t> prefix(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(n));
    EXPECT_THROW(SnapshotReader{std::move(prefix)}, Error) << "prefix " << n;
  }
}

TEST(SnapshotFormatTest, TrailingGarbageThrows) {
  std::vector<std::uint8_t> bytes = ExampleWriter().Finish();
  bytes.push_back(0x00);
  EXPECT_THROW(SnapshotReader{std::move(bytes)}, Error);
}

TEST(SnapshotFormatTest, BadMagicThrows) {
  std::vector<std::uint8_t> bytes = ExampleWriter().Finish();
  bytes[0] = 'X';
  EXPECT_THROW(SnapshotReader{std::move(bytes)}, Error);
}

TEST(SnapshotFormatTest, CrossVersionIsRejected) {
  // No in-place migration: version-1 readers reject both older and newer
  // snapshots (the version word is bytes [8, 12)).
  for (const std::uint32_t other : {0u, 2u, 0xFFFFFFFFu}) {
    std::vector<std::uint8_t> bytes = ExampleWriter().Finish();
    std::memcpy(bytes.data() + 8, &other, sizeof(other));
    EXPECT_THROW(SnapshotReader{std::move(bytes)}, Error) << other;
  }
}

TEST(SnapshotFormatTest, DuplicateSectionNameIsRejected) {
  // The writer refuses to create one...
  SnapshotWriter w;
  w.BeginSection("dup");
  w.EndSection();
  EXPECT_THROW(w.BeginSection("dup"), Error);
  // ...and the reader refuses to parse a hand-crafted one.
  std::vector<std::uint8_t> payload;
  PushLe<std::uint32_t>(payload, 1);
  std::vector<std::uint8_t> bytes;
  for (const char c : {'M', 'H', 'B', 'S', 'N', 'A', 'P', '1'}) {
    bytes.push_back(static_cast<std::uint8_t>(c));
  }
  PushLe<std::uint32_t>(bytes, kSnapshotVersion);
  PushLe<std::uint32_t>(bytes, 2);
  for (int rep = 0; rep < 2; ++rep) {
    PushLe<std::uint32_t>(bytes, 3);
    for (const char c : {'d', 'u', 'p'}) {
      bytes.push_back(static_cast<std::uint8_t>(c));
    }
    PushLe<std::uint64_t>(bytes, payload.size());
    PushLe<std::uint32_t>(bytes, BitwiseCrc32(payload));
    bytes.insert(bytes.end(), payload.begin(), payload.end());
  }
  EXPECT_THROW(SnapshotReader{std::move(bytes)}, Error);
}

TEST(SnapshotFormatTest, ReadPastSectionEndThrows) {
  SnapshotReader r{ExampleWriter().Finish()};
  r.EnterSection("beta");
  EXPECT_EQ(r.ReadU32(), 7u);
  EXPECT_THROW(r.ReadU8(), Error);
}

TEST(SnapshotFormatTest, LeftoverBytesFailSectionEnd) {
  SnapshotReader r{ExampleWriter().Finish()};
  r.EnterSection("beta");  // 4 unread payload bytes
  EXPECT_THROW(r.ExpectSectionEnd(), Error);
}

TEST(SnapshotFormatTest, UnknownSectionThrows) {
  SnapshotReader r{ExampleWriter().Finish()};
  EXPECT_FALSE(r.HasSection("gamma"));
  EXPECT_TRUE(r.HasSection("alpha"));
  EXPECT_THROW(r.EnterSection("gamma"), Error);
  EXPECT_THROW(r.SectionPayload("gamma"), Error);
}

TEST(SnapshotFormatTest, WriterMisuseThrows) {
  SnapshotWriter w;
  EXPECT_THROW(w.WriteU8(1), Error);      // write outside a section
  EXPECT_THROW(w.EndSection(), Error);    // end without begin
  w.BeginSection("a");
  EXPECT_THROW(w.BeginSection("b"), Error);  // nested begin
  EXPECT_THROW(w.Finish(), Error);           // finish with open section
}

TEST(SnapshotFormatTest, SectionPayloadIsExactBytes) {
  SnapshotWriter w;
  w.BeginSection("s");
  w.WriteU32(0x11223344u);
  w.EndSection();
  SnapshotReader r{w.Finish()};
  EXPECT_EQ(r.SectionPayload("s"),
            std::vector<std::uint8_t>({0x44, 0x33, 0x22, 0x11}));
}

}  // namespace
}  // namespace mhbench::fl
