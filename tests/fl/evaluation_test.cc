#include "fl/evaluation.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace mhbench::fl {
namespace {

data::Dataset TwoClassDataset(int n) {
  data::Dataset ds;
  ds.num_classes = 2;
  ds.features = Tensor({n, 1});
  ds.labels.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ds.features[static_cast<std::size_t>(i)] = i % 2 == 0 ? -1.0f : 1.0f;
    ds.labels[static_cast<std::size_t>(i)] = i % 2;
  }
  return ds;
}

// Perfect classifier on the dataset above.
Tensor PerfectLogits(const Tensor& x) {
  Tensor logits({x.dim(0), 2});
  for (int i = 0; i < x.dim(0); ++i) {
    logits.at({i, 0}) = -x[static_cast<std::size_t>(i)];
    logits.at({i, 1}) = x[static_cast<std::size_t>(i)];
  }
  return logits;
}

TEST(EvaluationTest, PerfectClassifierScoresOne) {
  const auto ds = TwoClassDataset(100);
  EXPECT_DOUBLE_EQ(EvaluateAccuracy(PerfectLogits, ds), 1.0);
}

TEST(EvaluationTest, InvertedClassifierScoresZero) {
  const auto ds = TwoClassDataset(100);
  auto inverted = [](const Tensor& x) {
    Tensor l = PerfectLogits(x);
    l.Scale(-1.0f);
    return l;
  };
  EXPECT_DOUBLE_EQ(EvaluateAccuracy(inverted, ds), 0.0);
}

TEST(EvaluationTest, MaxSamplesLimitsEvaluation) {
  auto ds = TwoClassDataset(100);
  // Corrupt labels beyond the first 10 samples; with max_samples=10 the
  // corruption is invisible.
  for (std::size_t i = 10; i < 100; ++i) ds.labels[i] = 1 - ds.labels[i];
  EXPECT_DOUBLE_EQ(EvaluateAccuracy(PerfectLogits, ds, 10), 1.0);
  EXPECT_LT(EvaluateAccuracy(PerfectLogits, ds), 0.2);
}

TEST(EvaluationTest, BatchBoundariesDoNotChangeResult) {
  const auto ds = TwoClassDataset(37);  // prime-ish, forces a partial batch
  const double a = EvaluateAccuracy(PerfectLogits, ds, 0, 8);
  const double b = EvaluateAccuracy(PerfectLogits, ds, 0, 37);
  const double c = EvaluateAccuracy(PerfectLogits, ds, 0, 5);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_DOUBLE_EQ(b, c);
}

TEST(EvaluationTest, EmptyDatasetThrows) {
  data::Dataset ds;
  ds.num_classes = 2;
  EXPECT_THROW(EvaluateAccuracy(PerfectLogits, ds), Error);
}

}  // namespace
}  // namespace mhbench::fl
