#include "fl/aggregator.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/linear.h"

namespace mhbench::fl {
namespace {

// A one-parameter "model" for aggregation math checks.
struct Fixture {
  ParamStore store;
  Fixture() { store.Set("weight", Tensor({4, 4}, 0.0f)); }

  // Builds a linear holding `value` on rows `rows` (all 4 columns).
  static std::pair<std::unique_ptr<nn::Linear>, models::ParamMapping>
  ClientModel(const std::vector<int>& rows, float value) {
    auto lin = std::make_unique<nn::Linear>(
        Tensor({static_cast<int>(rows.size()), 4}, value), Tensor());
    models::ParamMapping mapping = {
        {"weight", {rows, std::nullopt}},
    };
    return {std::move(lin), mapping};
  }
};

TEST(MaskedAveragerTest, SingleClientOverwritesItsSlice) {
  Fixture f;
  MaskedAverager avg;
  auto [m, map] = Fixture::ClientModel({0, 1}, 3.0f);
  avg.Accumulate(*m, map, 10.0, f.store);
  avg.ApplyTo(f.store);
  const Tensor& w = f.store.Get("weight");
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(w.at({0, j}), 3.0f);
    EXPECT_EQ(w.at({1, j}), 3.0f);
    EXPECT_EQ(w.at({2, j}), 0.0f);  // untouched rows keep old values
    EXPECT_EQ(w.at({3, j}), 0.0f);
  }
}

TEST(MaskedAveragerTest, OverlapAveragedNonOverlapKept) {
  Fixture f;
  MaskedAverager avg;
  auto [m1, map1] = Fixture::ClientModel({0, 1}, 2.0f);
  auto [m2, map2] = Fixture::ClientModel({1, 2}, 6.0f);
  avg.Accumulate(*m1, map1, 1.0, f.store);
  avg.Accumulate(*m2, map2, 1.0, f.store);
  avg.ApplyTo(f.store);
  const Tensor& w = f.store.Get("weight");
  EXPECT_EQ(w.at({0, 0}), 2.0f);  // only client 1
  EXPECT_EQ(w.at({1, 0}), 4.0f);  // both: (2+6)/2
  EXPECT_EQ(w.at({2, 0}), 6.0f);  // only client 2
  EXPECT_EQ(w.at({3, 0}), 0.0f);  // nobody
}

TEST(MaskedAveragerTest, WeightedAverage) {
  Fixture f;
  MaskedAverager avg;
  auto [m1, map1] = Fixture::ClientModel({0}, 1.0f);
  auto [m2, map2] = Fixture::ClientModel({0}, 4.0f);
  avg.Accumulate(*m1, map1, 3.0, f.store);
  avg.Accumulate(*m2, map2, 1.0, f.store);
  avg.ApplyTo(f.store);
  // (3*1 + 1*4) / 4 = 1.75
  EXPECT_NEAR(f.store.Get("weight").at({0, 0}), 1.75f, 1e-6);
}

TEST(MaskedAveragerTest, ApplyClearsAccumulator) {
  Fixture f;
  MaskedAverager avg;
  auto [m, map] = Fixture::ClientModel({0}, 1.0f);
  avg.Accumulate(*m, map, 1.0, f.store);
  avg.ApplyTo(f.store);
  EXPECT_TRUE(avg.empty());
  EXPECT_THROW(avg.ApplyTo(f.store), Error);
}

TEST(MaskedAveragerTest, RejectsNonPositiveWeight) {
  Fixture f;
  MaskedAverager avg;
  auto [m, map] = Fixture::ClientModel({0}, 1.0f);
  EXPECT_THROW(avg.Accumulate(*m, map, 0.0, f.store), Error);
}

TEST(MaskedAveragerTest, IdempotentOnIdenticalClients) {
  // Averaging k identical clients equals any one of them.
  Fixture f;
  MaskedAverager avg;
  for (int k = 0; k < 5; ++k) {
    auto [m, map] = Fixture::ClientModel({0, 1, 2, 3}, 7.0f);
    avg.Accumulate(*m, map, 2.0, f.store);
  }
  avg.ApplyTo(f.store);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(f.store.Get("weight")[i], 7.0f, 1e-5);
  }
}

}  // namespace
}  // namespace mhbench::fl
