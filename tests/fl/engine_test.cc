#include "fl/engine.h"

#include <cmath>

#include <gtest/gtest.h>

#include "algorithms/registry.h"
#include "data/tasks.h"
#include "models/zoo.h"

namespace mhbench::fl {
namespace {

data::Task SmallTask(const std::string& name = "cifar10") {
  data::TaskConfig cfg;
  cfg.train_samples = 240;
  cfg.test_samples = 120;
  cfg.num_clients = 6;
  return data::MakeTask(name, cfg);
}

FlConfig FastConfig(int rounds = 10) {
  FlConfig cfg;
  cfg.rounds = rounds;
  cfg.sample_fraction = 0.5;
  cfg.eval_every = rounds;  // evaluate once at the end
  cfg.eval_max_samples = 120;
  cfg.stability_max_samples = 60;
  return cfg;
}

TEST(FlEngineTest, FedAvgLearnsAboveChance) {
  const data::Task task = SmallTask();
  const auto tm = models::MakeTaskModels("cifar10");
  auto alg = algorithms::MakeAlgorithm("fedavg", tm);
  FlEngine engine(task, FastConfig(12), {}, *alg);
  const RunResult result = engine.Run();
  // 10 classes -> chance 0.1.
  EXPECT_GT(result.final_accuracy, 0.3);
  EXPECT_EQ(static_cast<int>(result.client_accuracies.size()), 6);
}

TEST(FlEngineTest, DeterministicAcrossRuns) {
  const data::Task task = SmallTask();
  const auto tm = models::MakeTaskModels("cifar10");
  auto run_once = [&]() {
    auto alg = algorithms::MakeAlgorithm("sheterofl", tm);
    std::vector<ClientAssignment> assign =
        UniformCapacityAssignments(6, {0.25, 0.5, 1.0});
    FlEngine engine(task, FastConfig(4), assign, *alg);
    return engine.Run().final_accuracy;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(FlEngineTest, SimulatedClockAdvancesByMaxClientTime) {
  const data::Task task = SmallTask();
  const auto tm = models::MakeTaskModels("cifar10");
  auto alg = algorithms::MakeAlgorithm("fedavg", tm);
  std::vector<ClientAssignment> assign(6);
  for (auto& a : assign) {
    a.system.compute_time_s = 10.0;
    a.system.comm_time_s = 5.0;
  }
  FlConfig cfg = FastConfig(3);
  cfg.sample_fraction = 0.5;
  FlEngine engine(task, cfg, assign, *alg);
  const RunResult result = engine.Run();
  EXPECT_DOUBLE_EQ(result.total_sim_time_s, 3 * 15.0);
}

TEST(FlEngineTest, TimeToAccuracyInfWhenNeverReached) {
  RunResult r;
  r.curve = {{0, 10.0, 0.2}, {1, 20.0, 0.5}};
  EXPECT_DOUBLE_EQ(r.TimeToAccuracy(0.4), 20.0);
  EXPECT_DOUBLE_EQ(r.TimeToAccuracy(0.1), 10.0);
  EXPECT_TRUE(std::isinf(r.TimeToAccuracy(0.9)));
}

TEST(FlEngineTest, StabilityVarianceMath) {
  RunResult r;
  r.client_accuracies = {0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(r.StabilityVariance(), 0.0);
  r.client_accuracies = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(r.StabilityVariance(), 0.25);
  EXPECT_DOUBLE_EQ(r.MeanClientAccuracy(), 0.5);
}

TEST(FlEngineTest, NaturalTaskUsesUserPartition) {
  data::TaskConfig cfg;
  cfg.train_samples = 300;
  cfg.test_samples = 100;
  cfg.num_clients = 8;
  const data::Task task = data::MakeTask("ucihar", cfg);
  EXPECT_TRUE(task.natural);
  const auto tm = models::MakeTaskModels("ucihar");
  auto alg = algorithms::MakeAlgorithm("fedavg", tm);
  FlEngine engine(task, FastConfig(3), {}, *alg);
  // Clients == users with data (some users may have no samples).
  EXPECT_LE(engine.context().num_clients(), 8);
  EXPECT_GT(engine.context().num_clients(), 0);
  const RunResult result = engine.Run();
  EXPECT_GE(result.final_accuracy, 0.0);
}

TEST(FlEngineTest, DirichletPartitionRuns) {
  const data::Task task = SmallTask();
  const auto tm = models::MakeTaskModels("cifar10");
  auto alg = algorithms::MakeAlgorithm("fedavg", tm);
  FlConfig cfg = FastConfig(3);
  cfg.partition = PartitionKind::kDirichlet;
  cfg.dirichlet_alpha = 0.5;
  FlEngine engine(task, cfg, {}, *alg);
  EXPECT_GE(engine.Run().final_accuracy, 0.0);
}

TEST(FlEngineTest, AssignmentCountMismatchThrows) {
  const data::Task task = SmallTask();
  const auto tm = models::MakeTaskModels("cifar10");
  auto alg = algorithms::MakeAlgorithm("fedavg", tm);
  std::vector<ClientAssignment> assign(2);  // 6 clients expected
  EXPECT_THROW(FlEngine(task, FastConfig(2), assign, *alg), Error);
}

TEST(UniformCapacityTest, CyclesCapacities) {
  const auto a = UniformCapacityAssignments(5, {0.25, 1.0});
  ASSERT_EQ(a.size(), 5u);
  EXPECT_DOUBLE_EQ(a[0].capacity, 0.25);
  EXPECT_DOUBLE_EQ(a[1].capacity, 1.0);
  EXPECT_DOUBLE_EQ(a[4].capacity, 0.25);
}

}  // namespace
}  // namespace mhbench::fl
