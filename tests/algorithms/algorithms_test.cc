// Every MHFL algorithm must run end-to-end on a small heterogeneous
// population and learn above chance.
#include <gtest/gtest.h>

#include "algorithms/registry.h"
#include "data/tasks.h"
#include "fl/engine.h"
#include "models/zoo.h"

namespace mhbench::algorithms {
namespace {

struct Case {
  std::string algorithm;
  std::string task;
};

std::ostream& operator<<(std::ostream& os, const Case& c) {
  return os << c.algorithm << "_on_" << c.task;
}

class AlgorithmRunTest : public ::testing::TestWithParam<Case> {};

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (const auto& info : AllAlgorithms()) {
    cases.push_back({info.name, "cifar10"});
  }
  // Cross-domain smoke coverage for a representative per level.
  cases.push_back({"sheterofl", "agnews"});
  cases.push_back({"depthfl", "ucihar"});
  cases.push_back({"fedrolex", "harbox"});
  cases.push_back({"fedavg", "stackoverflow"});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    All, AlgorithmRunTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.algorithm + "_" + info.param.task;
    });

TEST_P(AlgorithmRunTest, RunsAndLearns) {
  const Case c = GetParam();
  data::TaskConfig tcfg;
  tcfg.train_samples = 240;
  tcfg.test_samples = 120;
  tcfg.num_clients = 6;
  const data::Task task = data::MakeTask(c.task, tcfg);
  const auto tm = models::MakeTaskModels(c.task);

  AlgorithmOptions opts;
  opts.fedavg_ratio = 0.5;
  auto alg = MakeAlgorithm(c.algorithm, tm, opts);
  EXPECT_EQ(alg->name(), c.algorithm);

  std::vector<fl::ClientAssignment> assign =
      fl::UniformCapacityAssignments(6, RatioLadder());
  for (std::size_t i = 0; i < assign.size(); ++i) {
    assign[i].arch_index = static_cast<int>(i);  // topology diversity
  }

  fl::FlConfig cfg;
  cfg.rounds = 10;
  cfg.sample_fraction = 0.5;
  cfg.eval_every = 10;
  cfg.eval_max_samples = 120;
  cfg.stability_max_samples = 48;
  fl::FlEngine engine(task, cfg, assign, *alg);
  const fl::RunResult result = engine.Run();

  const double chance = 1.0 / task.train.num_classes;
  // All algorithms must clear chance on these easy synthetic tasks within
  // 10 rounds.  The margin is modest because slow starters (FedProto's
  // stateful from-scratch clients, Fjord's width subsampling) only pull
  // clearly ahead after ~15 rounds; the benches cover long-run behaviour.
  EXPECT_GT(result.final_accuracy, chance + 0.04)
      << c.algorithm << " on " << c.task;
  EXPECT_EQ(result.client_accuracies.size(),
            static_cast<std::size_t>(engine.context().num_clients()));
  for (double acc : result.client_accuracies) {
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
  }
}

TEST(RegistryTest, AllNamesConstructible) {
  const auto tm = models::MakeTaskModels("cifar10");
  for (const auto& info : AllAlgorithms()) {
    EXPECT_NE(MakeAlgorithm(info.name, tm), nullptr) << info.name;
  }
}

TEST(RegistryTest, UnknownNameThrows) {
  const auto tm = models::MakeTaskModels("cifar10");
  EXPECT_THROW(MakeAlgorithm("fedsgd", tm), Error);
  EXPECT_THROW(LevelOf("fedsgd"), Error);
}

TEST(RegistryTest, LevelsMatchPaperTable) {
  EXPECT_EQ(LevelOf("fjord"), HeteroLevel::kWidth);
  EXPECT_EQ(LevelOf("sheterofl"), HeteroLevel::kWidth);
  EXPECT_EQ(LevelOf("fedrolex"), HeteroLevel::kWidth);
  EXPECT_EQ(LevelOf("fedepth"), HeteroLevel::kDepth);
  EXPECT_EQ(LevelOf("inclusivefl"), HeteroLevel::kDepth);
  EXPECT_EQ(LevelOf("depthfl"), HeteroLevel::kDepth);
  EXPECT_EQ(LevelOf("fedproto"), HeteroLevel::kTopology);
  EXPECT_EQ(LevelOf("fedet"), HeteroLevel::kTopology);
  EXPECT_EQ(LevelOf("fedavg"), HeteroLevel::kHomogeneous);
}

TEST(RegistryTest, RatioLadderMatchesPaper) {
  EXPECT_EQ(RatioLadder(), (std::vector<double>{0.25, 0.5, 0.75, 1.0}));
}

}  // namespace
}  // namespace mhbench::algorithms
