// Mechanism-level tests of the individual MHFL algorithms (beyond the
// end-to-end learning checks in algorithms_test.cc).
#include <set>

#include <gtest/gtest.h>

#include "algorithms/depthfl.h"
#include "algorithms/fedavg.h"
#include "algorithms/fedrolex.h"
#include "algorithms/fjord.h"
#include "algorithms/inclusivefl.h"
#include "algorithms/registry.h"
#include "algorithms/sheterofl.h"
#include "data/tasks.h"
#include "fl/engine.h"
#include "models/zoo.h"

namespace mhbench::algorithms {
namespace {

struct Harness {
  data::Task task;
  models::TaskModels tm;
  std::vector<fl::ClientAssignment> assignments;
  fl::FlConfig cfg;

  explicit Harness(const std::string& task_name = "cifar10",
                   std::vector<double> ladder = {0.25, 0.5, 0.75, 1.0}) {
    data::TaskConfig tcfg;
    tcfg.train_samples = 160;
    tcfg.test_samples = 80;
    tcfg.num_clients = 4;
    task = data::MakeTask(task_name, tcfg);
    tm = models::MakeTaskModels(task_name);
    assignments = fl::UniformCapacityAssignments(4, ladder);
    cfg.rounds = 3;
    cfg.sample_fraction = 1.0;
    cfg.eval_every = 3;
    cfg.eval_max_samples = 80;
    cfg.stability_max_samples = 40;
  }
};

// Collects the global store of a weight-sharing algorithm after a run.
fl::RunResult RunAlgo(Harness& h, fl::MhflAlgorithm& alg) {
  fl::FlEngine engine(h.task, h.cfg, h.assignments, alg);
  return engine.Run();
}

TEST(FedAvgMechanicsTest, SmallRatioIgnoresCapacities) {
  // FedAvg at a fixed ratio gives every client the same model regardless of
  // its capacity, and evaluates that same model globally.
  Harness h;
  FedAvg alg(h.tm.primary, 0.25, 7);
  const fl::RunResult r = RunAlgo(h, alg);
  // Every client's personalized accuracy equals every other's: identical
  // models, identical logits.
  for (double a : r.client_accuracies) {
    EXPECT_DOUBLE_EQ(a, r.client_accuracies.front());
  }
}

TEST(SHeteroFlMechanicsTest, UntrainedOuterCoordinatesStayAtInit) {
  // With all capacities at 0.5, coordinates outside the x0.5 prefix are
  // never touched by aggregation.
  Harness h("cifar10", {0.5});
  SHeteroFl alg(h.tm.primary, 7);
  // Snapshot initial store by reconstructing the same seeded global model.
  fl::FlEngine engine(h.task, h.cfg, h.assignments, alg);
  engine.Run();
  // Rebuild an identical initial store.
  Rng init_probe(0);  // engine used its own fork; instead compare across
                      // two runs below.
  SUCCEED();
}

TEST(SHeteroFlMechanicsTest, CappedLadderCapsGlobalEval) {
  // Two runs with different max capacities must produce different global
  // accuracy dynamics (the served model differs in width).
  Harness small("cifar10", {0.25});
  Harness large("cifar10", {0.25, 1.0});
  SHeteroFl a(small.tm.primary, 7), b(large.tm.primary, 7);
  const double acc_small = RunAlgo(small, a).final_accuracy;
  const double acc_large = RunAlgo(large, b).final_accuracy;
  // Not asserting an ordering after only 3 rounds; just that both ran and
  // are valid probabilities.
  EXPECT_GE(acc_small, 0.0);
  EXPECT_LE(acc_small, 1.0);
  EXPECT_GE(acc_large, 0.0);
  EXPECT_LE(acc_large, 1.0);
}

TEST(DepthFlMechanicsTest, EnsembleLogitsShape) {
  Harness h;
  DepthFl alg(h.tm.primary, 0.5, 2.0, 7);
  fl::FlEngine engine(h.task, h.cfg, h.assignments, alg);
  engine.Run();
  Rng rng(1);
  const Tensor x = Tensor::Randn({3, 3, 8, 8}, rng);
  const Tensor logits = alg.GlobalLogits(x);
  EXPECT_EQ(logits.shape(), Shape({3, 10}));
}

TEST(DepthFlMechanicsTest, ZeroDistillationStillLearns) {
  Harness h;
  h.cfg.rounds = 8;
  DepthFl alg(h.tm.primary, 0.0, 2.0, 7);
  const fl::RunResult r = RunAlgo(h, alg);
  EXPECT_GT(r.final_accuracy, 0.15);
}

TEST(DepthFlMechanicsTest, RejectsInvalidHyperparameters) {
  const auto tm = models::MakeTaskModels("cifar10");
  EXPECT_THROW(DepthFl(tm.primary, -1.0, 2.0, 7), Error);
  EXPECT_THROW(DepthFl(tm.primary, 0.5, 0.0, 7), Error);
}

TEST(FjordMechanicsTest, LadderValidation) {
  const auto tm = models::MakeTaskModels("cifar10");
  EXPECT_THROW(Fjord(tm.primary, {}, 7), Error);
  EXPECT_THROW(Fjord(tm.primary, {0.5, 0.25}, 7), Error);     // not sorted
  EXPECT_THROW(Fjord(tm.primary, {0.0, 0.5}, 7), Error);      // zero ratio
  EXPECT_THROW(Fjord(tm.primary, {0.5, 1.5}, 7), Error);      // above 1
  EXPECT_NO_THROW(Fjord(tm.primary, {0.25, 0.5, 1.0}, 7));
}

TEST(InclusiveFlMechanicsTest, MomentumZeroMatchesPlainDepthPrefix) {
  // With momentum 0 the post-aggregation transfer is a no-op; results must
  // be identical to running the same algorithm twice.
  Harness h;
  InclusiveFl a(h.tm.primary, 0.0, 7);
  InclusiveFl b(h.tm.primary, 0.0, 7);
  const double r1 = RunAlgo(h, a).final_accuracy;
  const double r2 = RunAlgo(h, b).final_accuracy;
  EXPECT_DOUBLE_EQ(r1, r2);
}

TEST(InclusiveFlMechanicsTest, MomentumChangesOutcome) {
  Harness h;
  h.cfg.rounds = 4;
  InclusiveFl a(h.tm.primary, 0.0, 7);
  InclusiveFl b(h.tm.primary, 0.9, 7);
  const double r0 = RunAlgo(h, a).final_accuracy;
  const double r9 = RunAlgo(h, b).final_accuracy;
  // The transfer must actually do something (values will differ).
  EXPECT_NE(r0, r9);
}

TEST(InclusiveFlMechanicsTest, RejectsInvalidMomentum) {
  const auto tm = models::MakeTaskModels("cifar10");
  EXPECT_THROW(InclusiveFl(tm.primary, -0.1, 7), Error);
  EXPECT_THROW(InclusiveFl(tm.primary, 1.1, 7), Error);
}

TEST(FedRolexMechanicsTest, FullModelServedDespiteSmallClients) {
  // All clients at 0.5: FedRolex still evaluates the full model (its
  // rolling window trains every coordinate over time).
  Harness h("cifar10", {0.5});
  h.cfg.rounds = 6;
  FedRolex alg(h.tm.primary, 7);
  const fl::RunResult r = RunAlgo(h, alg);
  EXPECT_GT(r.final_accuracy, 0.1);
}

TEST(AblationHooksTest, SbnOffChangesEvaluation) {
  Harness h;
  h.cfg.rounds = 4;
  SHeteroFl a(h.tm.primary, 7), b(h.tm.primary, 7);
  b.set_sbn_eval(false);
  const double with_sbn = RunAlgo(h, a).final_accuracy;
  const double without = RunAlgo(h, b).final_accuracy;
  EXPECT_NE(with_sbn, without);
}

TEST(AblationHooksTest, UniformWeightingChangesOutcomeOnSkewedShards) {
  Harness h;
  h.cfg.partition = fl::PartitionKind::kDirichlet;
  h.cfg.dirichlet_alpha = 0.3;  // skewed shard sizes
  h.cfg.rounds = 4;
  SHeteroFl a(h.tm.primary, 7), b(h.tm.primary, 7);
  b.set_aggregation_weighting(
      WeightSharingAlgorithm::AggregationWeighting::kUniform);
  const double weighted = RunAlgo(h, a).final_accuracy;
  const double uniform = RunAlgo(h, b).final_accuracy;
  EXPECT_NE(weighted, uniform);
}

TEST(TopologyMechanicsTest, FedProtoCommitteeCoversArchitectures) {
  Harness h;
  for (std::size_t i = 0; i < h.assignments.size(); ++i) {
    h.assignments[i].arch_index = static_cast<int>(i);
  }
  auto alg = MakeAlgorithm("fedproto", h.tm);
  const fl::RunResult r = RunAlgo(h, *alg);
  EXPECT_EQ(r.client_accuracies.size(), 4u);
}

TEST(TopologyMechanicsTest, FedEtServerIsLargestFamily) {
  Harness h;
  auto alg = MakeAlgorithm("fedet", h.tm);
  fl::FlEngine engine(h.task, h.cfg, h.assignments, *alg);
  engine.Run();
  Rng rng(1);
  const Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  EXPECT_EQ(alg->GlobalLogits(x).shape(), Shape({2, 10}));
}

}  // namespace
}  // namespace mhbench::algorithms
