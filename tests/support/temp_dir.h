// Unique per-test temporary directories.
//
// ::testing::TempDir() is shared across every test binary, so fixed file
// names under it collide when ctest runs test binaries in parallel (-j).
// MakeTempDir() returns a fresh mkdtemp-created directory seeded with the
// current test's name; the RAII wrapper removes the whole tree on scope
// exit, so tests never leak files into later runs either.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <string>
#include <system_error>

#include <gtest/gtest.h>

namespace mhbench::testsupport {

struct TempDir {
  std::string path;

  explicit TempDir(std::string p) : path(std::move(p)) {}
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);  // best-effort cleanup
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  std::string File(const std::string& name) const { return path + "/" + name; }
};

inline TempDir MakeTempDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string tag = info != nullptr
                        ? std::string(info->test_suite_name()) + "_" +
                              info->name()
                        : std::string("mhb_test");
  for (char& c : tag) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  std::string tmpl = ::testing::TempDir() + tag + ".XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr) << "mkdtemp failed for " << tmpl;
  return TempDir(made != nullptr ? std::string(made) : tmpl);
}

}  // namespace mhbench::testsupport
