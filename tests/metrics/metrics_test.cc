#include <cmath>

#include <gtest/gtest.h>

#include "core/error.h"

#include "metrics/recorder.h"
#include "metrics/report.h"

namespace mhbench::metrics {
namespace {

MetricBundle MakeBundle(const std::string& name, double acc) {
  MetricBundle b;
  b.algorithm = name;
  b.task = "cifar10";
  b.constraint = "computation";
  b.global_accuracy = acc;
  b.curve_time_s = {10, 20, 30};
  b.curve_accuracy = {acc * 0.5, acc * 0.8, acc};
  return b;
}

TEST(MetricBundleTest, TimeToTarget) {
  const MetricBundle b = MakeBundle("a", 0.5);
  EXPECT_DOUBLE_EQ(b.TimeTo(0.2), 10.0);
  EXPECT_DOUBLE_EQ(b.TimeTo(0.45), 30.0);
  EXPECT_TRUE(std::isinf(b.TimeTo(0.6)));
}

TEST(MetricBundleTest, StragglerDropRateGuardsZeroSelected) {
  // A run where no client was ever selected (e.g. zero rounds, or an
  // availability model that kept everyone offline) must report 0, not NaN.
  MetricBundle b = MakeBundle("a", 0.5);
  b.clients_selected = 0;
  b.clients_dropped = 0;
  EXPECT_DOUBLE_EQ(StragglerDropRate(b), 0.0);
  b.clients_dropped = 3;  // inconsistent input still must not divide by zero
  EXPECT_DOUBLE_EQ(StragglerDropRate(b), 0.0);
  b.clients_selected = 10;
  EXPECT_DOUBLE_EQ(StragglerDropRate(b), 0.3);
}

TEST(CommonTargetTest, FractionOfBest) {
  const std::vector<MetricBundle> bundles = {MakeBundle("a", 0.4),
                                             MakeBundle("b", 0.6)};
  EXPECT_NEAR(CommonTarget(bundles, 0.5), 0.3, 1e-9);
  EXPECT_NEAR(CommonTarget(bundles, 1.0), 0.6, 1e-9);
  EXPECT_THROW(CommonTarget({}, 0.5), Error);
  EXPECT_THROW(CommonTarget(bundles, 0.0), Error);
}

TEST(ReportTest, PanelContainsAllAlgorithms) {
  std::vector<MetricBundle> bundles = {MakeBundle("sheterofl", 0.5),
                                       MakeBundle("depthfl", 0.45)};
  bundles[0].time_to_accuracy_s = 120.0;
  bundles[1].time_to_accuracy_s =
      std::numeric_limits<double>::infinity();
  const std::string panel = RenderMetricPanel("test panel", bundles);
  EXPECT_NE(panel.find("sheterofl"), std::string::npos);
  EXPECT_NE(panel.find("depthfl"), std::string::npos);
  EXPECT_NE(panel.find("not reached"), std::string::npos);
  EXPECT_NE(panel.find("120.0 s"), std::string::npos);
}

TEST(ReportTest, CurvesRenderLegend) {
  const std::vector<MetricBundle> bundles = {MakeBundle("fjord", 0.3)};
  const std::string out = RenderCurves("curves", bundles);
  EXPECT_NE(out.find("fjord"), std::string::npos);
}

TEST(ReportTest, CsvHasHeaderAndRows) {
  std::vector<MetricBundle> bundles = {MakeBundle("a", 0.5),
                                       MakeBundle("b", 0.4)};
  bundles[0].time_to_accuracy_s =
      std::numeric_limits<double>::infinity();
  const std::string csv = ToCsv(bundles);
  EXPECT_NE(csv.find("constraint,task,algorithm"), std::string::npos);
  EXPECT_NE(csv.find("inf"), std::string::npos);
  // Header + 2 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

}  // namespace
}  // namespace mhbench::metrics
