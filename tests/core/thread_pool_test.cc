#include "core/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace mhbench::core {
namespace {

TEST(ThreadPoolTest, EmptyRangeCallsNothing) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SingleItemRunsInline) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  ParallelFor(&pool, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, NullPoolRunsSerially) {
  std::vector<int> counts(16, 0);
  ParallelFor(nullptr, counts.size(),
              [&](std::size_t i) { ++counts[i]; });
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  ParallelFor(&pool, kN, [&](std::size_t i) { ++counts[i]; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, MoreThreadsThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> counts(3);
  ParallelFor(&pool, 3, [&](std::size_t i) { ++counts[i]; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> calls{0};
    ParallelFor(&pool, 17, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 17);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 100,
                  [&](std::size_t i) {
                    if (i == 5) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool must survive an aborted call.
  std::atomic<int> calls{0};
  ParallelFor(&pool, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPoolTest, ExceptionAbandonsRemainingWork) {
  ThreadPool pool(2);
  std::atomic<int> started{0};
  try {
    ParallelFor(&pool, 100000, [&](std::size_t) {
      ++started;
      throw std::runtime_error("first failure stops the range");
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error&) {
  }
  // Far fewer iterations ran than the range holds (in-flight ones drain).
  EXPECT_LT(started.load(), 1000);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_calls{0};
  // Inner calls from worker threads must run inline instead of submitting
  // to the queue they drain themselves (the deadlock guard).
  ParallelFor(&pool, 4, [&](std::size_t) {
    ParallelFor(&pool, 4, [&](std::size_t) { ++inner_calls; });
  });
  EXPECT_EQ(inner_calls.load(), 16);
}

TEST(ThreadPoolTest, ZeroWorkerPoolDegradesToCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  std::vector<int> counts(5, 0);
  ParallelFor(&pool, counts.size(), [&](std::size_t i) { ++counts[i]; });
  for (int c : counts) EXPECT_EQ(c, 1);
}

}  // namespace
}  // namespace mhbench::core
