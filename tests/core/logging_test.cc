#include "core/logging.h"

#include <gtest/gtest.h>

namespace mhbench {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kSilent);
  EXPECT_EQ(GetLogLevel(), LogLevel::kSilent);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SilentSuppressesOutput) {
  // No crash and no observable side effect beyond stderr; this exercises
  // the disabled path of the log-line builder.
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kSilent);
  MHB_LOG_INFO << "this must not appear " << 42;
  MHB_LOG_DEBUG << "nor this " << 3.14;
  SetLogLevel(original);
  SUCCEED();
}

TEST(LoggingTest, EnabledPathStreamsValues) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  MHB_LOG_DEBUG << "debug line " << 1 << " " << 2.5 << " " << "str";
  SetLogLevel(original);
  SUCCEED();
}

}  // namespace
}  // namespace mhbench
