#include "core/env.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace mhbench {
namespace {

TEST(EnvTest, FallbackWhenUnset) {
  unsetenv("MHB_TEST_UNSET");
  EXPECT_EQ(EnvInt("MHB_TEST_UNSET", 7), 7);
  EXPECT_DOUBLE_EQ(EnvDouble("MHB_TEST_UNSET", 1.5), 1.5);
  EXPECT_EQ(EnvString("MHB_TEST_UNSET", "x"), "x");
}

TEST(EnvTest, ParsesValues) {
  setenv("MHB_TEST_INT", "42", 1);
  setenv("MHB_TEST_DBL", "2.25", 1);
  setenv("MHB_TEST_STR", "hello", 1);
  EXPECT_EQ(EnvInt("MHB_TEST_INT", 0), 42);
  EXPECT_DOUBLE_EQ(EnvDouble("MHB_TEST_DBL", 0), 2.25);
  EXPECT_EQ(EnvString("MHB_TEST_STR", ""), "hello");
  unsetenv("MHB_TEST_INT");
  unsetenv("MHB_TEST_DBL");
  unsetenv("MHB_TEST_STR");
}

TEST(EnvTest, FallbackOnGarbage) {
  setenv("MHB_TEST_BAD", "not-a-number", 1);
  EXPECT_EQ(EnvInt("MHB_TEST_BAD", 3), 3);
  EXPECT_DOUBLE_EQ(EnvDouble("MHB_TEST_BAD", 0.5), 0.5);
  unsetenv("MHB_TEST_BAD");
}

TEST(EnvTest, FallbackOnTrailingJunk) {
  setenv("MHB_TEST_JUNK", "42abc", 1);
  EXPECT_EQ(EnvInt("MHB_TEST_JUNK", 3), 3);
  unsetenv("MHB_TEST_JUNK");
}

}  // namespace
}  // namespace mhbench
