#include "core/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "core/error.h"

namespace mhbench {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(10), 10u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(5);
  const int n = 20000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.03);
}

TEST(RngTest, GammaMean) {
  Rng rng(9);
  const double shape = 2.5;
  const int n = 30000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Gamma(shape);
  // Gamma(k, 1) has mean k.
  EXPECT_NEAR(sum / n, shape, 0.07);
}

TEST(RngTest, GammaSmallShapePositive) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.Gamma(0.3), 0.0);
  }
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(13);
  for (double alpha : {0.1, 0.5, 1.0, 5.0}) {
    const auto p = rng.Dirichlet(alpha, 10);
    EXPECT_EQ(p.size(), 10u);
    const double sum = std::accumulate(p.begin(), p.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (double v : p) EXPECT_GE(v, 0.0);
  }
}

TEST(RngTest, DirichletConcentration) {
  // Small alpha -> spiky; large alpha -> flat.  Compare max component.
  Rng rng(17);
  double spiky_max = 0, flat_max = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    auto a = rng.Dirichlet(0.1, 10);
    auto b = rng.Dirichlet(50.0, 10);
    spiky_max += *std::max_element(a.begin(), a.end());
    flat_max += *std::max_element(b.begin(), b.end());
  }
  EXPECT_GT(spiky_max / trials, flat_max / trials + 0.2);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(21);
  const auto perm = rng.Permutation(50);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  const auto s = rng.SampleWithoutReplacement(100, 10);
  EXPECT_EQ(s.size(), 10u);
  std::set<int> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 10u);
  for (int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleAllIsPermutation) {
  Rng rng(23);
  const auto s = rng.SampleWithoutReplacement(10, 10);
  std::set<int> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, WeightedChoiceRespectsZeros) {
  Rng rng(29);
  const std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedChoice(w), 1);
  }
}

TEST(RngTest, WeightedChoiceProportional) {
  Rng rng(31);
  const std::vector<double> w = {1.0, 3.0};
  int count1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.WeightedChoice(w) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent(1);
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

// ---------------------------------------------------------------------------
// Golden sequences.  The parallel engine's determinism guarantee rests on
// these exact draws: phase 1 of every round consumes SampleWithoutReplacement,
// per-client Uniform availability draws and per-client Forks in a fixed serial
// order.  Any change to the generator silently invalidates all recorded
// results, so the values themselves are pinned here.

TEST(RngGoldenTest, NextU64Sequence) {
  Rng rng(42);
  EXPECT_EQ(rng.NextU64(), 13679457532755275413ull);
  EXPECT_EQ(rng.NextU64(), 2949826092126892291ull);
  EXPECT_EQ(rng.NextU64(), 5139283748462763858ull);
  EXPECT_EQ(rng.NextU64(), 6349198060258255764ull);
  EXPECT_EQ(rng.NextU64(), 701532786141963250ull);
}

TEST(RngGoldenTest, UniformSequence) {
  Rng rng(7);
  EXPECT_EQ(rng.Uniform(), 0.38982974839127149);
  EXPECT_EQ(rng.Uniform(), 0.016788294528156111);
  EXPECT_EQ(rng.Uniform(), 0.90076068060688341);
  EXPECT_EQ(rng.Uniform(), 0.58293029302807808);
}

TEST(RngGoldenTest, ForkStreamsAndParentAdvance) {
  // Fork consumes one parent draw, so fork ORDER matters: the engine relies
  // on forking survivors serially.  Same stream id after an advance yields a
  // different child (ForkC != ForkA).
  Rng parent(1);
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(1);
  Rng c = parent.Fork(0);
  EXPECT_EQ(a.NextU64(), 2569293373224866520ull);
  EXPECT_EQ(b.NextU64(), 12544609088445459266ull);
  EXPECT_EQ(c.NextU64(), 15138301343510825807ull);
  EXPECT_EQ(parent.NextU64(), 8196980753821780235ull);
}

TEST(RngGoldenTest, SampleWithoutReplacementSequence) {
  // The engine's client-sampling draw (and its order) per round.
  Rng rng(23);
  EXPECT_EQ(rng.SampleWithoutReplacement(10, 4),
            (std::vector<int>{3, 5, 8, 0}));
  // A full-population sample is a permutation; also golden-pinned.
  EXPECT_EQ(rng.SampleWithoutReplacement(6, 6),
            (std::vector<int>{2, 1, 0, 3, 4, 5}));
}

TEST(RngTest, ChecksInvalidArguments) {
  Rng rng(1);
  EXPECT_THROW(rng.UniformInt(0), Error);
  EXPECT_THROW(rng.Dirichlet(0.0, 5), Error);
  EXPECT_THROW(rng.Gamma(-1.0), Error);
  EXPECT_THROW(rng.WeightedChoice({}), Error);
  EXPECT_THROW(rng.WeightedChoice({0.0, 0.0}), Error);
  EXPECT_THROW(rng.SampleWithoutReplacement(3, 4), Error);
}

}  // namespace
}  // namespace mhbench
