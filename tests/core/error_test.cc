#include "core/error.h"

#include <gtest/gtest.h>

namespace mhbench {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  MHB_CHECK(true);
  MHB_CHECK(1 + 1 == 2) << "never evaluated";
  SUCCEED();
}

TEST(CheckTest, FailingCheckThrowsWithLocation) {
  try {
    MHB_CHECK(false) << "context" << 42;
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("error_test.cc"), std::string::npos);
    EXPECT_NE(what.find("check failed"), std::string::npos);
    EXPECT_NE(what.find("context"), std::string::npos);
    EXPECT_NE(what.find("42"), std::string::npos);
  }
}

TEST(CheckTest, ComparisonMacrosIncludeValues) {
  try {
    const int a = 3, b = 5;
    MHB_CHECK_EQ(a, b);
    FAIL();
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3"), std::string::npos);
    EXPECT_NE(what.find("5"), std::string::npos);
  }
}

TEST(CheckTest, AllComparisonMacros) {
  MHB_CHECK_EQ(2, 2);
  MHB_CHECK_NE(2, 3);
  MHB_CHECK_LT(2, 3);
  MHB_CHECK_LE(2, 2);
  MHB_CHECK_GT(3, 2);
  MHB_CHECK_GE(3, 3);
  EXPECT_THROW(MHB_CHECK_NE(2, 2), Error);
  EXPECT_THROW(MHB_CHECK_LT(3, 2), Error);
  EXPECT_THROW(MHB_CHECK_GE(2, 3), Error);
}

TEST(CheckTest, MessageOnlyBuiltOnFailure) {
  // The streamed expression must not be evaluated when the check passes.
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return "x";
  };
  MHB_CHECK(true) << count();
  EXPECT_EQ(evaluations, 0);
  EXPECT_THROW(MHB_CHECK(false) << count(), Error);
  EXPECT_EQ(evaluations, 1);
}

TEST(DcheckTest, BehaviourMatchesBuildType) {
#ifdef NDEBUG
  MHB_DCHECK(false) << "compiled out";
  SUCCEED();
#else
  EXPECT_THROW(MHB_DCHECK(false) << "live", Error);
#endif
}

}  // namespace
}  // namespace mhbench
