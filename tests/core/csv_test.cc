#include "core/csv.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace mhbench {
namespace {

TEST(CsvTest, BasicRoundTrip) {
  CsvWriter w({"a", "b"});
  w.AddRow(std::vector<std::string>{"1", "2"});
  w.AddRow(std::vector<double>{3.5, 4.5});
  EXPECT_EQ(w.ToString(), "a,b\n1,2\n3.5,4.5\n");
}

TEST(CsvTest, QuotesSpecialCharacters) {
  CsvWriter w({"x"});
  w.AddRow(std::vector<std::string>{"hello, world"});
  w.AddRow(std::vector<std::string>{"say \"hi\""});
  const std::string out = w.ToString();
  EXPECT_NE(out.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(CsvTest, RejectsMismatchedRowWidth) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.AddRow(std::vector<std::string>{"only-one"}), Error);
}

TEST(CsvTest, WriteFileFailsOnBadPath) {
  CsvWriter w({"a"});
  EXPECT_THROW(w.WriteFile("/nonexistent-dir/x.csv"), Error);
}

}  // namespace
}  // namespace mhbench
