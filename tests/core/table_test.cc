#include "core/table.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mhbench {
namespace {

TEST(AsciiTableTest, RendersHeaderAndRows) {
  AsciiTable t({"Method", "Acc"});
  t.AddRow({"FedAvg", "0.91"});
  t.AddRow({"SHeteroFL", "0.94"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("Method"), std::string::npos);
  EXPECT_NE(out.find("SHeteroFL"), std::string::npos);
  EXPECT_NE(out.find("0.94"), std::string::npos);
}

TEST(AsciiTableTest, HandlesRaggedRows) {
  AsciiTable t({"a", "b", "c"});
  t.AddRow({"1"});
  t.AddRow({"1", "2", "3", "4"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("4"), std::string::npos);
}

TEST(AsciiTableTest, NumFormatsPrecision) {
  EXPECT_EQ(AsciiTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::Num(3.14159, 4), "3.1416");
  EXPECT_EQ(AsciiTable::Num(10.0, 0), "10");
}

TEST(AsciiChartTest, RendersSeriesAndLegend) {
  AsciiChart c("Accuracy vs round", "round", "acc");
  c.AddSeries("fedavg", {0.1, 0.5, 0.8});
  c.AddSeries("hetero", {0.2, 0.6, 0.9});
  const std::string out = c.Render(40, 8);
  EXPECT_NE(out.find("Accuracy vs round"), std::string::npos);
  EXPECT_NE(out.find("fedavg"), std::string::npos);
  EXPECT_NE(out.find("hetero"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChartTest, EmptySeriesDoesNotCrash) {
  AsciiChart c("t", "x", "y");
  EXPECT_FALSE(c.Render().empty());
}

TEST(AsciiChartTest, ConstantSeries) {
  AsciiChart c("t", "x", "y");
  c.AddSeries("flat", {1.0, 1.0, 1.0});
  EXPECT_FALSE(c.Render(20, 5).empty());
}

TEST(AsciiChartTest, IgnoresNonFiniteValues) {
  AsciiChart c("t", "x", "y");
  c.AddSeries("s", {1.0, std::nan(""), 2.0});
  const std::string out = c.Render(20, 5);
  EXPECT_FALSE(out.empty());
}

}  // namespace
}  // namespace mhbench
