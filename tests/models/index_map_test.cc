#include "models/index_map.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/linear.h"

namespace mhbench::models {
namespace {

TEST(ScaledCountTest, CeilAndClamp) {
  EXPECT_EQ(ScaledCount(8, 1.0), 8);
  EXPECT_EQ(ScaledCount(8, 0.5), 4);
  EXPECT_EQ(ScaledCount(8, 0.75), 6);
  EXPECT_EQ(ScaledCount(8, 0.25), 2);
  EXPECT_EQ(ScaledCount(8, 0.01), 1);  // never zero
  EXPECT_EQ(ScaledCount(3, 0.5), 2);   // ceil
}

TEST(ScaledCountTest, InvalidArgsThrow) {
  EXPECT_THROW(ScaledCount(0, 0.5), Error);
  EXPECT_THROW(ScaledCount(4, 0.0), Error);
  EXPECT_THROW(ScaledCount(4, 1.5), Error);
}

TEST(PrefixIndicesTest, Sequence) {
  EXPECT_EQ(PrefixIndices(8, 3), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(PrefixIndices(3, 3), (std::vector<int>{0, 1, 2}));
  EXPECT_THROW(PrefixIndices(2, 3), Error);
  EXPECT_THROW(PrefixIndices(2, 0), Error);
}

TEST(PrefixIndicesTest, NestednessProperty) {
  // Smaller prefixes are strict subsets of larger ones (HeteroFL's key
  // invariant).
  const auto small = PrefixIndices(16, 4);
  const auto large = PrefixIndices(16, 12);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i], large[i]);
  }
}

TEST(RollingIndicesTest, WrapsAround) {
  EXPECT_EQ(RollingIndices(4, 3, 2), (std::vector<int>{2, 3, 0}));
  EXPECT_EQ(RollingIndices(4, 4, 1), (std::vector<int>{1, 2, 3, 0}));
  EXPECT_EQ(RollingIndices(4, 2, 0), (std::vector<int>{0, 1}));
}

TEST(RollingIndicesTest, CoversAllChannelsOverFullCycle) {
  // Over `full` consecutive offsets, every channel is selected at least
  // keep times in total (FedRolex's coverage property).
  const int full = 8, keep = 3;
  std::vector<int> counts(full, 0);
  for (int offset = 0; offset < full; ++offset) {
    for (int i : RollingIndices(full, keep, offset)) {
      counts[static_cast<std::size_t>(i)]++;
    }
  }
  for (int c : counts) EXPECT_EQ(c, keep);
}

TEST(MappingBuilderTest, FinalizeZipsWithModuleParams) {
  Rng rng(1);
  nn::Linear lin(4, 3, rng);
  MappingBuilder mb;
  std::vector<int> out_idx = {0, 1, 2};
  mb.AddLinear(&out_idx, nullptr, true);
  const ParamMapping m = mb.Finalize(lin);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].name, "weight");
  EXPECT_EQ(m[1].name, "bias");
  ASSERT_TRUE(m[0].index[0].has_value());
  EXPECT_FALSE(m[0].index[1].has_value());
}

TEST(MappingBuilderTest, SlotCountMismatchThrows) {
  Rng rng(2);
  nn::Linear lin(4, 3, rng);
  MappingBuilder mb;
  mb.Add({std::nullopt, std::nullopt});  // only one slot for two params
  EXPECT_THROW(mb.Finalize(lin), Error);
}

TEST(MappingBuilderTest, RankMismatchThrows) {
  Rng rng(3);
  nn::Linear lin(4, 3, rng, /*bias=*/false);
  MappingBuilder mb;
  mb.Add({std::nullopt});  // rank 1 slot for rank 2 weight
  EXPECT_THROW(mb.Finalize(lin), Error);
}

}  // namespace
}  // namespace mhbench::models
