// Property-style sweeps of the sub-model slicing machinery across every
// family and ratio combination (parameterized gtest).
#include <map>
#include <tuple>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "fl/param_store.h"
#include "models/zoo.h"
#include "tensor/ops.h"

namespace mhbench::models {
namespace {

using Param = std::tuple<std::string, double>;  // (task, ratio)

class SlicingSweep : public ::testing::TestWithParam<Param> {};

std::vector<Param> AllCombos() {
  std::vector<Param> out;
  for (const auto& task : AllTaskNames()) {
    for (double r : {0.25, 0.5, 0.75, 1.0}) {
      out.emplace_back(task, r);
    }
  }
  return out;
}

// NOTE: no commas at the macro's brace level (the preprocessor would split
// them), hence std::get instead of structured bindings here.
INSTANTIATE_TEST_SUITE_P(
    All, SlicingSweep, ::testing::ValuesIn(AllCombos()),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::get<0>(info.param) + "_r" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

// Loading a sub-model from the store and scattering it back must be the
// identity on the selected coordinates (dispatch/upload round trip).
TEST_P(SlicingSweep, DispatchUploadRoundTrip) {
  const auto& [task, ratio] = GetParam();
  Rng rng(11);
  const TaskModels tm = MakeTaskModels(task);
  BuildSpec full;
  full.multi_head = true;
  auto global = tm.primary->Build(full, rng);
  fl::ParamStore store = fl::ParamStore::FromModule(*global.net);
  const fl::ParamStore original = store;

  BuildSpec spec;
  spec.width_ratio = ratio;
  spec.depth_ratio = ratio;
  auto sub = tm.primary->Build(spec, rng);
  store.LoadInto(*sub.net, sub.mapping);

  // Scatter the (unchanged) sub-model back; the store must be unchanged.
  std::vector<nn::NamedParam> params;
  sub.net->CollectParams("", params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& target = store.GetMutable(sub.mapping[i].name);
    ops::ScatterAssignDims(target, params[i].param->value,
                           sub.mapping[i].index);
  }
  for (const auto& name : store.Names()) {
    EXPECT_TRUE(store.Get(name).AllClose(original.Get(name), 0.0f)) << name;
  }
}

// Prefix sub-models are nested: the ratio-r sub-model's parameters are a
// sub-tensor of the ratio-r' model for r < r' (HeteroFL's invariant).
TEST_P(SlicingSweep, PrefixNestedness) {
  const auto& [task, ratio] = GetParam();
  if (ratio >= 1.0) GTEST_SKIP() << "needs a strictly larger sibling";
  Rng rng(12);
  const TaskModels tm = MakeTaskModels(task);
  BuildSpec full_spec;
  full_spec.multi_head = true;
  auto global = tm.primary->Build(full_spec, rng);
  fl::ParamStore store = fl::ParamStore::FromModule(*global.net);

  BuildSpec small_spec, large_spec;
  small_spec.width_ratio = ratio;
  large_spec.width_ratio = 1.0;
  auto small = tm.primary->Build(small_spec, rng);
  auto large = tm.primary->Build(large_spec, rng);
  store.LoadInto(*small.net, small.mapping);
  store.LoadInto(*large.net, large.mapping);

  std::vector<nn::NamedParam> sp, lp;
  small.net->CollectParams("", sp);
  large.net->CollectParams("", lp);
  std::map<std::string, nn::Parameter*> large_by_name;
  for (auto& p : lp) large_by_name[p.name] = p.param;

  for (std::size_t i = 0; i < sp.size(); ++i) {
    auto it = large_by_name.find(sp[i].name);
    ASSERT_NE(it, large_by_name.end()) << sp[i].name;
    // The small tensor equals the gather of the large one at the small
    // model's indices (indices into the global == indices into the full
    // local model for prefix slicing).
    const Tensor expect =
        ops::GatherDims(it->second->value, small.mapping[i].index);
    EXPECT_TRUE(sp[i].param->value.AllClose(expect, 0.0f)) << sp[i].name;
  }
}

// Multi-head builds expose exactly one logits tensor per kept block, all
// with the class dimension.
TEST_P(SlicingSweep, MultiHeadExitsConsistent) {
  const auto& [task, ratio] = GetParam();
  Rng rng(13);
  const TaskModels tm = MakeTaskModels(task);
  BuildSpec spec;
  spec.depth_ratio = ratio;
  spec.multi_head = true;
  auto built = tm.primary->Build(spec, rng);
  auto& trunk = built.trunk();
  EXPECT_EQ(trunk.num_heads(), trunk.num_blocks());

  Shape in = tm.primary->sample_shape();
  in.insert(in.begin(), 2);
  Tensor x(in);
  if (in.size() == 2) {  // token ids
    for (auto& v : x.data()) v = 1.0f;
  }
  const auto logits = trunk.ForwardHeads(x, false);
  for (const auto& l : logits) {
    EXPECT_EQ(l.shape(), Shape({2, tm.primary->num_classes()}));
  }
}

// Deterministic builds: the same spec and seed produce identical params.
TEST_P(SlicingSweep, BuildDeterminism) {
  const auto& [task, ratio] = GetParam();
  const TaskModels tm = MakeTaskModels(task);
  BuildSpec spec;
  spec.width_ratio = ratio;
  Rng r1(77), r2(77);
  auto a = tm.primary->Build(spec, r1);
  auto b = tm.primary->Build(spec, r2);
  std::vector<nn::NamedParam> pa, pb;
  a.net->CollectParams("", pa);
  b.net->CollectParams("", pb);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].param->value.AllClose(pb[i].param->value, 0.0f));
  }
}

}  // namespace
}  // namespace mhbench::models
