// Cross-family structural tests: every family must build at every
// width/depth ratio, produce correctly shaped logits, and yield a parameter
// mapping that gathers consistently from the full model's tensors.
#include <map>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "models/zoo.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace mhbench::models {
namespace {

Tensor MakeInput(const ModelFamily& fam, int batch, Rng& rng) {
  Shape shape = fam.sample_shape();
  shape.insert(shape.begin(), batch);
  if (shape.size() == 2) {
    // Token ids.
    Tensor ids(shape);
    for (auto& v : ids.data()) {
      v = static_cast<Scalar>(rng.UniformInt(16));
    }
    return ids;
  }
  return Tensor::Randn(shape, rng, 1.0f);
}

class AllFamiliesTest
    : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Tasks, AllFamiliesTest,
                         ::testing::ValuesIn(AllTaskNames()));

TEST_P(AllFamiliesTest, FullBuildForwardShape) {
  Rng rng(1);
  const TaskModels tm = MakeTaskModels(GetParam());
  for (const FamilyPtr& fam :
       std::vector<FamilyPtr>{tm.primary, tm.topology.front(),
                              tm.topology.back()}) {
    BuildSpec spec;
    BuiltModel m = fam->Build(spec, rng);
    const Tensor x = MakeInput(*fam, 3, rng);
    const Tensor logits = m.net->Forward(x, true);
    EXPECT_EQ(logits.shape(), Shape({3, fam->num_classes()}))
        << fam->name();
  }
}

TEST_P(AllFamiliesTest, WidthRatiosBuildAndForward) {
  Rng rng(2);
  const TaskModels tm = MakeTaskModels(GetParam());
  for (double r : {0.25, 0.5, 0.75, 1.0}) {
    BuildSpec spec;
    spec.width_ratio = r;
    BuiltModel m = tm.primary->Build(spec, rng);
    const Tensor x = MakeInput(*tm.primary, 2, rng);
    const Tensor logits = m.net->Forward(x, false);
    EXPECT_EQ(logits.dim(1), tm.primary->num_classes());
  }
}

TEST_P(AllFamiliesTest, DepthRatiosKeepBlocks) {
  Rng rng(3);
  const TaskModels tm = MakeTaskModels(GetParam());
  const int total = tm.primary->total_blocks();
  for (double r : {0.25, 0.5, 0.75, 1.0}) {
    BuildSpec spec;
    spec.depth_ratio = r;
    BuiltModel m = tm.primary->Build(spec, rng);
    auto& trunk = m.trunk();
    EXPECT_LE(trunk.num_blocks(), total);
    EXPECT_GE(trunk.num_blocks(), 1);
    const Tensor x = MakeInput(*tm.primary, 2, rng);
    EXPECT_EQ(m.net->Forward(x, false).dim(1), tm.primary->num_classes());
  }
  // Full depth keeps everything.
  BuildSpec full;
  EXPECT_EQ(tm.primary->Build(full, rng).trunk().num_blocks(), total);
}

TEST_P(AllFamiliesTest, WidthParamsShrink) {
  Rng rng(4);
  const TaskModels tm = MakeTaskModels(GetParam());
  BuildSpec full;
  BuildSpec half;
  half.width_ratio = 0.5;
  const std::size_t pf = tm.primary->Build(full, rng).net->NumParams();
  const std::size_t ph = tm.primary->Build(half, rng).net->NumParams();
  EXPECT_LT(ph, pf) << tm.primary->name();
}

TEST_P(AllFamiliesTest, MultiHeadHasHeadPerBlock) {
  Rng rng(5);
  const TaskModels tm = MakeTaskModels(GetParam());
  BuildSpec spec;
  spec.multi_head = true;
  BuiltModel m = tm.primary->Build(spec, rng);
  auto& trunk = m.trunk();
  EXPECT_EQ(trunk.num_heads(), trunk.num_blocks());
  const Tensor x = MakeInput(*tm.primary, 2, rng);
  const auto logits = trunk.ForwardHeads(x, true);
  EXPECT_EQ(static_cast<int>(logits.size()), trunk.num_heads());
  for (const auto& l : logits) {
    EXPECT_EQ(l.shape(), Shape({2, tm.primary->num_classes()}));
  }
}

// Sub-model parameters gathered from the full model's tensors must match
// the shapes of the sub-model's own parameters, and names must resolve.
TEST_P(AllFamiliesTest, MappingGathersFromGlobal) {
  Rng rng(6);
  const TaskModels tm = MakeTaskModels(GetParam());
  BuildSpec full_spec;
  full_spec.multi_head = true;  // global model holds every head
  BuiltModel global = tm.primary->Build(full_spec, rng);
  std::map<std::string, Tensor> store;
  {
    std::vector<nn::NamedParam> params;
    global.net->CollectParams("", params);
    for (auto& p : params) store[p.name] = p.param->value;
  }
  for (double r : {0.25, 0.5, 1.0}) {
    BuildSpec spec;
    spec.width_ratio = r;
    spec.depth_ratio = r;
    BuiltModel sub = tm.primary->Build(spec, rng);
    std::vector<nn::NamedParam> params;
    sub.net->CollectParams("", params);
    ASSERT_EQ(params.size(), sub.mapping.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      const auto& slice = sub.mapping[i];
      EXPECT_EQ(params[i].name, slice.name);
      auto it = store.find(slice.name);
      ASSERT_NE(it, store.end())
          << "global store missing " << slice.name << " (" << GetParam()
          << ", r=" << r << ")";
      const Tensor gathered = ops::GatherDims(it->second, slice.index);
      EXPECT_EQ(gathered.shape(), params[i].param->value.shape())
          << slice.name;
    }
  }
}

TEST_P(AllFamiliesTest, RollingOffsetsStayValid) {
  Rng rng(7);
  const TaskModels tm = MakeTaskModels(GetParam());
  for (int offset : {0, 1, 7, 100}) {
    BuildSpec spec;
    spec.width_ratio = 0.5;
    spec.rolling = true;
    spec.width_offset = offset;
    BuiltModel m = tm.primary->Build(spec, rng);
    const Tensor x = MakeInput(*tm.primary, 2, rng);
    EXPECT_EQ(m.net->Forward(x, false).dim(1), tm.primary->num_classes());
  }
}

TEST_P(AllFamiliesTest, SubModelTrainsOneStep) {
  Rng rng(8);
  const TaskModels tm = MakeTaskModels(GetParam());
  BuildSpec spec;
  spec.width_ratio = 0.5;
  BuiltModel m = tm.primary->Build(spec, rng);
  nn::SgdOptions opts;
  opts.lr = 0.05;
  nn::Sgd sgd(*m.net, opts);
  const Tensor x = MakeInput(*tm.primary, 4, rng);
  std::vector<int> y = {0, 1, 0, 1};
  sgd.ZeroGrad();
  Tensor grad;
  const double l0 = nn::SoftmaxCrossEntropy(m.net->Forward(x, true), y, grad);
  m.net->Backward(grad);
  sgd.Step();
  Tensor grad2;
  const double l1 = nn::SoftmaxCrossEntropy(m.net->Forward(x, true), y, grad2);
  EXPECT_LT(l1, l0 + 0.05) << tm.primary->name();
}

TEST(TrunkModelTest, MultiHeadBackwardTrainsAllHeads) {
  Rng rng(9);
  const TaskModels tm = MakeTaskModels("cifar100");
  BuildSpec spec;
  spec.multi_head = true;
  BuiltModel m = tm.primary->Build(spec, rng);
  auto& trunk = m.trunk();
  const Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  std::vector<int> y = {0, 1};
  auto logits = trunk.ForwardHeads(x, true);
  std::vector<Tensor> grads(logits.size());
  for (std::size_t h = 0; h < logits.size(); ++h) {
    nn::SoftmaxCrossEntropy(logits[h], y, grads[h]);
  }
  trunk.ZeroGrad();
  trunk.BackwardHeads(grads);
  // Every head's linear layer must have received gradient.
  std::vector<nn::NamedParam> params;
  trunk.CollectParams("", params);
  int heads_with_grad = 0;
  for (auto& p : params) {
    if (p.name.find("head") != std::string::npos &&
        p.name.find("weight") != std::string::npos &&
        p.param->grad.MaxAbs() > 0) {
      ++heads_with_grad;
    }
  }
  EXPECT_EQ(heads_with_grad, trunk.num_heads());
}

TEST(TrunkModelTest, PartialHeadGradientsSkipMissing) {
  Rng rng(10);
  const TaskModels tm = MakeTaskModels("cifar100");
  BuildSpec spec;
  spec.multi_head = true;
  BuiltModel m = tm.primary->Build(spec, rng);
  auto& trunk = m.trunk();
  const Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  auto logits = trunk.ForwardHeads(x, true);
  std::vector<Tensor> grads(logits.size());  // all empty except the first
  grads[0] = Tensor(logits[0].shape(), 1.0f);
  trunk.ZeroGrad();
  trunk.BackwardHeads(grads);
  std::vector<nn::NamedParam> params;
  trunk.CollectParams("", params);
  for (auto& p : params) {
    if (p.name.find("head0/") != std::string::npos &&
        p.name.find("weight") != std::string::npos) {
      EXPECT_GT(p.param->grad.MaxAbs(), 0.0f);
    }
    // Deeper heads got no gradient.
    if (p.name.find("head3/") != std::string::npos) {
      EXPECT_EQ(p.param->grad.MaxAbs(), 0.0f);
    }
  }
}

TEST(TrunkModelTest, CapturesEmbedding) {
  Rng rng(11);
  const TaskModels tm = MakeTaskModels("cifar10");
  BuildSpec spec;
  BuiltModel m = tm.primary->Build(spec, rng);
  auto& trunk = m.trunk();
  trunk.set_capture_embedding(true);
  const Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  trunk.ForwardHeads(x, false);
  EXPECT_FALSE(trunk.last_embedding().empty());
  EXPECT_EQ(trunk.last_embedding().dim(0), 2);
}

TEST(ZooTest, UnknownTaskThrows) {
  EXPECT_THROW(MakeTaskModels("imagenet"), Error);
  EXPECT_THROW(TaskNumClasses("imagenet"), Error);
}

TEST(ZooTest, TopologyFamiliesDiffer) {
  const TaskModels tm = MakeTaskModels("cifar100");
  Rng rng(12);
  BuildSpec spec;
  std::vector<std::size_t> sizes;
  for (const auto& fam : tm.topology) {
    sizes.push_back(fam->Build(spec, rng).net->NumParams());
  }
  // Smallest-first ordering.
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_LE(sizes[i - 1], sizes[i]);
  }
  EXPECT_LT(sizes.front(), sizes.back());
}

}  // namespace
}  // namespace mhbench::models
