// Tests for the extended CV families (GoogLeNet/EfficientNet analogues)
// and the ConcatBranches primitive they rely on.
#include <map>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "fl/param_store.h"
#include "models/efficientnet_like.h"
#include "models/googlenet_like.h"
#include "models/zoo.h"
#include "nn/activation.h"
#include "nn/composite.h"
#include "nn/linear.h"
#include "tensor/ops.h"

namespace mhbench::models {
namespace {

TEST(ConcatBranchesTest, ConcatenatesAlongChannels) {
  using namespace nn;
  std::vector<ModulePtr> branches;
  // Two "branches" that scale the input by different constants via 1x1
  // linear layers on [N, C] input.
  branches.push_back(std::make_unique<Linear>(
      Tensor({2, 3}, std::vector<Scalar>{1, 0, 0, 0, 1, 0}), Tensor()));
  branches.push_back(std::make_unique<Linear>(
      Tensor({1, 3}, std::vector<Scalar>{0, 0, 2}), Tensor()));
  ConcatBranches cat(std::move(branches));
  Tensor x({1, 3}, std::vector<Scalar>{10, 20, 30});
  const Tensor y = cat.Forward(x, true);
  EXPECT_TRUE(y.AllClose(Tensor({1, 3}, std::vector<Scalar>{10, 20, 60})));
}

TEST(ConcatBranchesTest, BackwardSplitsGradients) {
  using namespace nn;
  Rng rng(1);
  std::vector<ModulePtr> branches;
  branches.push_back(std::make_unique<Linear>(3, 2, rng));
  branches.push_back(std::make_unique<Linear>(3, 4, rng));
  ConcatBranches cat(std::move(branches));
  const Tensor x = Tensor::Randn({5, 3}, rng);
  const Tensor y = cat.Forward(x, true);
  EXPECT_EQ(y.shape(), Shape({5, 6}));
  const Tensor g = Tensor::Randn(y.shape(), rng);
  const Tensor gx = cat.Backward(g);
  EXPECT_EQ(gx.shape(), x.shape());
  // Numerical check on one input coordinate.
  Tensor coeff = g;
  auto loss = [&](const Tensor& in) {
    ConcatBranches* c = &cat;
    const Tensor out = c->Forward(in, true);
    double l = 0;
    for (std::size_t i = 0; i < out.numel(); ++i) {
      l += static_cast<double>(coeff[i]) * out[i];
    }
    return l;
  };
  Tensor xp = x, xm = x;
  xp[0] += 1e-2f;
  xm[0] -= 1e-2f;
  const double num = (loss(xp) - loss(xm)) / 2e-2;
  EXPECT_NEAR(gx[0], num, 2e-2 * std::max(1.0, std::abs(num)));
}

TEST(ConcatBranchesTest, ParamNamesPerBranch) {
  using namespace nn;
  Rng rng(2);
  std::vector<ModulePtr> branches;
  branches.push_back(std::make_unique<Linear>(2, 2, rng));
  branches.push_back(std::make_unique<Linear>(2, 2, rng));
  ConcatBranches cat(std::move(branches));
  std::vector<NamedParam> params;
  cat.CollectParams("blk", params);
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0].name, "blk/branch0/weight");
  EXPECT_EQ(params[2].name, "blk/branch1/weight");
}

TEST(GoogleNetLikeTest, SplitBranchesSumsToStage) {
  for (int s : {4, 8, 15, 16, 33}) {
    int b1 = 0, b2 = 0, b3 = 0;
    GoogleNetLike::SplitBranches(s, b1, b2, b3);
    EXPECT_EQ(b1 + b2 + b3, s);
    EXPECT_GT(b1, 0);
    EXPECT_GT(b2, 0);
    EXPECT_GT(b3, 0);
  }
}

TEST(GoogleNetLikeTest, BuildsAndForwardsAllRatios) {
  Rng rng(3);
  GoogleNetLike fam(GoogleNetLikeConfig{});
  for (double r : {0.25, 0.5, 0.75, 1.0}) {
    BuildSpec spec;
    spec.width_ratio = r;
    auto built = fam.Build(spec, rng);
    const Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
    EXPECT_EQ(built.net->Forward(x, true).shape(), Shape({2, 10})) << r;
  }
}

TEST(GoogleNetLikeTest, MappingGathersFromGlobal) {
  Rng rng(4);
  GoogleNetLike fam(GoogleNetLikeConfig{});
  BuildSpec full;
  full.multi_head = true;
  auto global = fam.Build(full, rng);
  fl::ParamStore store = fl::ParamStore::FromModule(*global.net);
  for (double r : {0.25, 0.5}) {
    BuildSpec spec;
    spec.width_ratio = r;
    auto sub = fam.Build(spec, rng);
    // Must not throw and must produce exactly matching shapes.
    store.LoadInto(*sub.net, sub.mapping);
    const Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
    EXPECT_EQ(sub.net->Forward(x, false).dim(1), 10);
  }
}

TEST(GoogleNetLikeTest, DepthSlicingKeepsBlocks) {
  Rng rng(5);
  GoogleNetLike fam(GoogleNetLikeConfig{});
  BuildSpec spec;
  spec.depth_ratio = 0.5;
  auto built = fam.Build(spec, rng);
  EXPECT_EQ(built.trunk().num_blocks(), 2);  // of 4
  const Tensor x = Tensor::Randn({1, 3, 8, 8}, rng);
  EXPECT_EQ(built.net->Forward(x, false).dim(1), 10);
}

TEST(GoogleNetLikeTest, TrainsOneStep) {
  Rng rng(6);
  GoogleNetLike fam(GoogleNetLikeConfig{});
  auto built = fam.Build(BuildSpec{}, rng);
  const Tensor x = Tensor::Randn({4, 3, 8, 8}, rng);
  const Tensor logits = built.net->Forward(x, true);
  Tensor grad(logits.shape(), 0.1f);
  built.net->ZeroGrad();
  built.net->Backward(grad);
  std::vector<nn::NamedParam> params;
  built.net->CollectParams("", params);
  int with_grad = 0;
  for (auto& p : params) {
    if (p.name.find("running_") == std::string::npos &&
        p.param->grad.MaxAbs() > 0) {
      ++with_grad;
    }
  }
  EXPECT_GT(with_grad, 10);
}

TEST(EfficientNetLikeTest, CompoundScalingGrows) {
  std::size_t prev = 0;
  Rng rng(7);
  for (int compound : {0, 2, 4}) {
    EfficientNetLikeConfig cfg;
    cfg.compound = compound;
    EfficientNetLike fam(cfg);
    const std::size_t params = fam.Build(BuildSpec{}, rng).net->NumParams();
    EXPECT_GT(params, prev) << compound;
    prev = params;
  }
}

TEST(EfficientNetLikeTest, ForwardShape) {
  Rng rng(8);
  EfficientNetLike fam(EfficientNetLikeConfig{});
  auto built = fam.Build(BuildSpec{}, rng);
  const Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  EXPECT_EQ(built.net->Forward(x, true).shape(), Shape({2, 10}));
}

TEST(MixedCvFamiliesTest, FourDistinctArchitectures) {
  const auto fams = MakeMixedCvFamilies(10);
  ASSERT_EQ(fams.size(), 4u);
  Rng rng(9);
  std::map<std::string, std::size_t> sizes;
  for (const auto& f : fams) {
    sizes[f->name()] = f->Build(BuildSpec{}, rng).net->NumParams();
    EXPECT_EQ(f->num_classes(), 10);
  }
  EXPECT_EQ(sizes.size(), 4u);  // distinct names
  EXPECT_TRUE(sizes.count("googlenet-like"));
  EXPECT_TRUE(sizes.count("efficientnet-like"));
}

}  // namespace
}  // namespace mhbench::models
