// Cross-module consistency: the data generators' sample geometry must match
// the model families' expected input shapes, and class counts must agree
// everywhere (zoo, tasks, cost descriptors).
#include <gtest/gtest.h>

#include "data/tasks.h"
#include "device/cost_model.h"
#include "models/zoo.h"

namespace mhbench {
namespace {

class GeometryTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllTasks, GeometryTest,
                         ::testing::ValuesIn(models::AllTaskNames()));

TEST_P(GeometryTest, SampleShapeMatchesEveryFamily) {
  data::TaskConfig cfg;
  cfg.train_samples = 40;
  cfg.test_samples = 20;
  cfg.num_clients = 4;
  const data::Task task = data::MakeTask(GetParam(), cfg);
  const models::TaskModels tm = models::MakeTaskModels(GetParam());

  EXPECT_EQ(task.train.sample_shape(), tm.primary->sample_shape());
  for (const auto& fam : tm.topology) {
    EXPECT_EQ(task.train.sample_shape(), fam->sample_shape())
        << fam->name();
  }
}

TEST_P(GeometryTest, ClassCountsAgree) {
  data::TaskConfig cfg;
  cfg.train_samples = 40;
  cfg.test_samples = 20;
  cfg.num_clients = 4;
  const data::Task task = data::MakeTask(GetParam(), cfg);
  const models::TaskModels tm = models::MakeTaskModels(GetParam());
  EXPECT_EQ(task.train.num_classes, models::TaskNumClasses(GetParam()));
  EXPECT_EQ(tm.primary->num_classes(), task.train.num_classes);
  for (const auto& fam : tm.topology) {
    EXPECT_EQ(fam->num_classes(), task.train.num_classes) << fam->name();
  }
}

TEST_P(GeometryTest, ModelsForwardRealTaskBatches) {
  data::TaskConfig cfg;
  cfg.train_samples = 40;
  cfg.test_samples = 20;
  cfg.num_clients = 4;
  const data::Task task = data::MakeTask(GetParam(), cfg);
  const models::TaskModels tm = models::MakeTaskModels(GetParam());
  const std::vector<int> idx = {0, 1, 2};
  const Tensor x = task.train.GatherFeatures(idx);
  Rng rng(1);
  for (const auto& fam : tm.topology) {
    auto built = fam->Build(models::BuildSpec{}, rng);
    const Tensor logits = built.net->Forward(x, false);
    EXPECT_EQ(logits.shape(), Shape({3, task.train.num_classes}))
        << fam->name();
  }
}

TEST_P(GeometryTest, CostDescriptorTopologyCountMatchesZoo) {
  // The paper-scale cost descriptors must mirror the sim-scale zoo's
  // topology family size — constraint builders index both with the same
  // arch_index.
  const models::TaskModels tm = models::MakeTaskModels(GetParam());
  const device::PaperTaskDescs descs = device::PaperDescsForTask(GetParam());
  EXPECT_EQ(tm.topology.size(), descs.topology.size());
}

TEST_P(GeometryTest, TopologyFamilyParamOrderingMatchesCostOrdering) {
  // Smallest-first in the zoo must correspond to smallest-first in the
  // paper-scale descriptors, so "largest arch that fits" agrees.
  const models::TaskModels tm = models::MakeTaskModels(GetParam());
  const device::PaperTaskDescs descs = device::PaperDescsForTask(GetParam());
  Rng rng(2);
  double prev_sim = 0, prev_paper = 0;
  for (std::size_t a = 0; a < tm.topology.size(); ++a) {
    const double sim =
        static_cast<double>(tm.topology[a]->Build(models::BuildSpec{}, rng)
                                .net->NumParams());
    const double paper =
        device::ComputeStats(descs.topology[a], device::ScaleAxis::kWidth,
                             1.0)
            .params;
    EXPECT_GE(sim, prev_sim) << GetParam() << " arch " << a;
    EXPECT_GE(paper, prev_paper) << GetParam() << " arch " << a;
    prev_sim = sim;
    prev_paper = paper;
  }
}

}  // namespace
}  // namespace mhbench
