#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace mhbench {
namespace {

TEST(ShapeTest, NumelProduct) {
  EXPECT_EQ(ShapeNumel({2, 3, 4}), 24u);
  EXPECT_EQ(ShapeNumel({5}), 5u);
  EXPECT_EQ(ShapeNumel({}), 0u);
}

TEST(ShapeTest, RejectsNonPositiveExtent) {
  EXPECT_THROW(ShapeNumel({2, 0}), Error);
  EXPECT_THROW(ShapeNumel({-1}), Error);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FillConstructor) {
  Tensor t({4}, 2.5f);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(TensorTest, FromVector) {
  Tensor t = Tensor::FromVector({1, 2, 3});
  EXPECT_EQ(t.ndim(), 1);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t[1], 2.0f);
}

TEST(TensorTest, VectorSizeMustMatchShape) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<Scalar>{1, 2, 3}), Error);
}

TEST(TensorTest, MultiIndexAccess) {
  Tensor t({2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_EQ(t.at({1, 2}), 7.0f);
  EXPECT_EQ(t[5], 7.0f);  // row-major: 1*3 + 2
}

TEST(TensorTest, OffsetRowMajor) {
  Tensor t({2, 3, 4});
  const int idx[] = {1, 2, 3};
  EXPECT_EQ(t.Offset(std::span<const int>(idx, 3)), 1u * 12 + 2u * 4 + 3u);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({2, 3});
  EXPECT_EQ(r.at({1, 0}), 4.0f);
  EXPECT_THROW(t.Reshape({4}), Error);
}

TEST(TensorTest, ValueSemanticsDeepCopy) {
  Tensor a({2}, 1.0f);
  Tensor b = a;
  b[0] = 99.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(TensorTest, ElementwiseOps) {
  Tensor a = Tensor::FromVector({1, 2, 3});
  Tensor b = Tensor::FromVector({4, 5, 6});
  EXPECT_TRUE(a.Add(b).AllClose(Tensor::FromVector({5, 7, 9})));
  EXPECT_TRUE(b.Sub(a).AllClose(Tensor::FromVector({3, 3, 3})));
  EXPECT_TRUE(a.Mul(b).AllClose(Tensor::FromVector({4, 10, 18})));
}

TEST(TensorTest, InPlaceOpsRequireMatchingShape) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a.AddInPlace(b), Error);
  EXPECT_THROW(a.SubInPlace(b), Error);
  EXPECT_THROW(a.MulInPlace(b), Error);
  EXPECT_THROW(a.AxpyInPlace(1.0f, b), Error);
}

TEST(TensorTest, Axpy) {
  Tensor a = Tensor::FromVector({1, 1});
  Tensor b = Tensor::FromVector({2, 4});
  a.AxpyInPlace(0.5f, b);
  EXPECT_TRUE(a.AllClose(Tensor::FromVector({2, 3})));
}

TEST(TensorTest, ScaleAndFill) {
  Tensor a = Tensor::FromVector({1, 2});
  a.Scale(3.0f);
  EXPECT_TRUE(a.AllClose(Tensor::FromVector({3, 6})));
  a.Fill(0.5f);
  EXPECT_TRUE(a.AllClose(Tensor::FromVector({0.5, 0.5})));
}

TEST(TensorTest, Reductions) {
  Tensor a = Tensor::FromVector({1, -2, 3});
  EXPECT_DOUBLE_EQ(a.Sum(), 2.0);
  EXPECT_NEAR(a.Mean(), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(a.MaxAbs(), 3.0f);
  EXPECT_DOUBLE_EQ(a.SquaredL2(), 14.0);
}

TEST(TensorTest, AllCloseToleranceAndShape) {
  Tensor a = Tensor::FromVector({1.0f, 2.0f});
  Tensor b = Tensor::FromVector({1.0f, 2.0001f});
  EXPECT_TRUE(a.AllClose(b, 1e-3f));
  EXPECT_FALSE(a.AllClose(b, 1e-6f));
  EXPECT_FALSE(a.AllClose(Tensor({2, 1}, std::vector<Scalar>{1, 2})));
}

TEST(TensorTest, RandnStatistics) {
  Rng rng(1);
  Tensor t = Tensor::Randn({10000}, rng, 2.0f);
  EXPECT_NEAR(t.Mean(), 0.0, 0.1);
  EXPECT_NEAR(t.SquaredL2() / 10000.0, 4.0, 0.3);
}

TEST(TensorTest, EmptyTensor) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
  EXPECT_EQ(t.ndim(), 0);
}

}  // namespace
}  // namespace mhbench
