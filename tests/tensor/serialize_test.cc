#include "tensor/serialize.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace mhbench {
namespace {

TEST(SerializeTest, RoundTrip) {
  Rng rng(1);
  Tensor t = Tensor::Randn({3, 4, 2}, rng);
  const auto bytes = SerializeTensor(t);
  std::size_t off = 0;
  const Tensor u = DeserializeTensor(bytes, off);
  EXPECT_EQ(off, bytes.size());
  EXPECT_TRUE(u.AllClose(t, 0.0f));
}

TEST(SerializeTest, SizePrediction) {
  Tensor t({5, 7});
  EXPECT_EQ(SerializeTensor(t).size(), SerializedTensorBytes(t));
  // 4 (ndim) + 2*4 (extents) + 35*4 (data).
  EXPECT_EQ(SerializedTensorBytes(t), 4u + 8u + 140u);
}

TEST(SerializeTest, MultipleTensorsInOneBuffer) {
  Tensor a = Tensor::FromVector({1, 2});
  Tensor b = Tensor::FromVector({3});
  auto bytes = SerializeTensor(a);
  const auto more = SerializeTensor(b);
  bytes.insert(bytes.end(), more.begin(), more.end());
  std::size_t off = 0;
  EXPECT_TRUE(DeserializeTensor(bytes, off).AllClose(a));
  EXPECT_TRUE(DeserializeTensor(bytes, off).AllClose(b));
  EXPECT_EQ(off, bytes.size());
}

TEST(SerializeTest, TruncatedBufferThrows) {
  Tensor t({4, 4});
  auto bytes = SerializeTensor(t);
  bytes.resize(bytes.size() - 8);
  std::size_t off = 0;
  EXPECT_THROW(DeserializeTensor(bytes, off), Error);
}

TEST(SerializeTest, GarbageHeaderThrows) {
  std::vector<std::uint8_t> bytes = {0xFF, 0xFF, 0xFF, 0x7F};  // ndim huge
  std::size_t off = 0;
  EXPECT_THROW(DeserializeTensor(bytes, off), Error);
}

}  // namespace
}  // namespace mhbench
