#include <optional>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "tensor/ops.h"

namespace mhbench {
namespace {

using ops::DimIndices;

TEST(GatherDimsTest, SelectRowsOfMatrix) {
  Tensor m({3, 2}, std::vector<Scalar>{1, 2, 3, 4, 5, 6});
  DimIndices idx = {std::vector<int>{0, 2}, std::nullopt};
  const Tensor g = ops::GatherDims(m, idx);
  EXPECT_TRUE(g.AllClose(Tensor({2, 2}, std::vector<Scalar>{1, 2, 5, 6})));
}

TEST(GatherDimsTest, SelectRowsAndCols) {
  Tensor m({3, 3}, std::vector<Scalar>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  DimIndices idx = {std::vector<int>{1, 2}, std::vector<int>{0, 2}};
  EXPECT_TRUE(ops::GatherDims(m, idx).AllClose(
      Tensor({2, 2}, std::vector<Scalar>{4, 6, 7, 9})));
}

TEST(GatherDimsTest, IdentityWhenAllAbsent) {
  Rng rng(1);
  Tensor t = Tensor::Randn({2, 3, 4}, rng);
  DimIndices idx(3, std::nullopt);
  EXPECT_TRUE(ops::GatherDims(t, idx).AllClose(t));
}

TEST(GatherDimsTest, NonContiguousAndReordered) {
  Tensor v = Tensor::FromVector({10, 20, 30, 40});
  DimIndices idx = {std::vector<int>{3, 0}};
  EXPECT_TRUE(
      ops::GatherDims(v, idx).AllClose(Tensor::FromVector({40, 10})));
}

TEST(GatherDimsTest, Rank4ConvWeightSlicing) {
  // Slice out-channels {1} and in-channels {0, 2} of a [2, 3, 1, 1] weight.
  Tensor w({2, 3, 1, 1}, std::vector<Scalar>{1, 2, 3, 4, 5, 6});
  DimIndices idx = {std::vector<int>{1}, std::vector<int>{0, 2}, std::nullopt,
                    std::nullopt};
  EXPECT_TRUE(ops::GatherDims(w, idx).AllClose(
      Tensor({1, 2, 1, 1}, std::vector<Scalar>{4, 6})));
}

TEST(GatherDimsTest, OutOfRangeIndexThrows) {
  Tensor v = Tensor::FromVector({1, 2});
  DimIndices idx = {std::vector<int>{2}};
  EXPECT_THROW(ops::GatherDims(v, idx), Error);
  DimIndices neg = {std::vector<int>{-1}};
  EXPECT_THROW(ops::GatherDims(v, neg), Error);
}

TEST(GatherDimsTest, WrongArityThrows) {
  Tensor v({2, 2});
  DimIndices idx = {std::nullopt};
  EXPECT_THROW(ops::GatherDims(v, idx), Error);
}

TEST(ScatterAddTest, AccumulatesIntoSelection) {
  Tensor dst({3}, 0.0f);
  Tensor src = Tensor::FromVector({5, 7});
  DimIndices idx = {std::vector<int>{0, 2}};
  ops::ScatterAddDims(dst, src, idx);
  ops::ScatterAddDims(dst, src, idx);
  EXPECT_TRUE(dst.AllClose(Tensor::FromVector({10, 0, 14})));
}

TEST(ScatterAssignTest, OverwritesSelection) {
  Tensor dst({3}, 1.0f);
  Tensor src = Tensor::FromVector({5, 7});
  DimIndices idx = {std::vector<int>{0, 2}};
  ops::ScatterAssignDims(dst, src, idx);
  EXPECT_TRUE(dst.AllClose(Tensor::FromVector({5, 1, 7})));
}

TEST(ScatterTest, ShapeMismatchThrows) {
  Tensor dst({3});
  Tensor src({3});  // selection is 2 elements, src has 3
  DimIndices idx = {std::vector<int>{0, 2}};
  EXPECT_THROW(ops::ScatterAddDims(dst, src, idx), Error);
}

TEST(ScatterCountTest, CountsSelections) {
  Tensor counts({2, 2}, 0.0f);
  DimIndices idx = {std::vector<int>{0}, std::nullopt};
  ops::ScatterCountDims(counts, idx);
  DimIndices idx2 = {std::nullopt, std::vector<int>{1}};
  ops::ScatterCountDims(counts, idx2);
  EXPECT_TRUE(counts.AllClose(Tensor({2, 2}, std::vector<Scalar>{1, 2, 0, 1})));
}

TEST(GatherScatterTest, RoundTripRestoresSelection) {
  // Gather then scatter-assign back is the identity on selected coords.
  Rng rng(2);
  Tensor t = Tensor::Randn({4, 5}, rng);
  DimIndices idx = {std::vector<int>{1, 3}, std::vector<int>{0, 2, 4}};
  const Tensor g = ops::GatherDims(t, idx);
  Tensor t2 = t;
  ops::ScatterAssignDims(t2, g, idx);
  EXPECT_TRUE(t2.AllClose(t));
}

TEST(GatherScatterTest, AdjointProperty) {
  // <Gather(x), y> == <x, ScatterAdd(0, y)> when indices are unique.
  Rng rng(3);
  Tensor x = Tensor::Randn({5, 4}, rng);
  DimIndices idx = {std::vector<int>{0, 2, 4}, std::vector<int>{1, 3}};
  const Tensor gx = ops::GatherDims(x, idx);
  Tensor y = Tensor::Randn(gx.shape(), rng);
  Tensor sy({5, 4});
  ops::ScatterAddDims(sy, y, idx);
  double lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < gx.numel(); ++i) lhs += static_cast<double>(gx[i]) * y[i];
  for (std::size_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * sy[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

}  // namespace
}  // namespace mhbench
