#include "tensor/ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace mhbench {
namespace {

TEST(MatmulTest, SmallKnownProduct) {
  // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
  Tensor a({2, 2}, std::vector<Scalar>{1, 2, 3, 4});
  Tensor b({2, 2}, std::vector<Scalar>{5, 6, 7, 8});
  EXPECT_TRUE(ops::Matmul(a, b).AllClose(
      Tensor({2, 2}, std::vector<Scalar>{19, 22, 43, 50})));
}

TEST(MatmulTest, RectangularShapes) {
  Tensor a({2, 3}, std::vector<Scalar>{1, 0, 2, 0, 1, 1});
  Tensor b({3, 1}, std::vector<Scalar>{1, 2, 3});
  EXPECT_TRUE(ops::Matmul(a, b).AllClose(
      Tensor({2, 1}, std::vector<Scalar>{7, 5})));
}

TEST(MatmulTest, DimensionMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  EXPECT_THROW(ops::Matmul(a, b), Error);
}

TEST(MatmulTest, TransBEquivalence) {
  Rng rng(1);
  Tensor a = Tensor::Randn({4, 5}, rng);
  Tensor b = Tensor::Randn({3, 5}, rng);
  const Tensor expect = ops::Matmul(a, ops::Transpose2d(b));
  EXPECT_TRUE(ops::MatmulTransB(a, b).AllClose(expect, 1e-4f));
}

TEST(MatmulTest, TransAEquivalence) {
  Rng rng(2);
  Tensor a = Tensor::Randn({4, 5}, rng);
  Tensor b = Tensor::Randn({4, 3}, rng);
  const Tensor expect = ops::Matmul(ops::Transpose2d(a), b);
  EXPECT_TRUE(ops::MatmulTransA(a, b).AllClose(expect, 1e-4f));
}

TEST(Transpose2dTest, InvolutionProperty) {
  Rng rng(3);
  Tensor a = Tensor::Randn({3, 7}, rng);
  EXPECT_TRUE(ops::Transpose2d(ops::Transpose2d(a)).AllClose(a));
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(4);
  Tensor logits = Tensor::Randn({5, 8}, rng, 3.0f);
  const Tensor p = ops::SoftmaxRows(logits);
  for (int i = 0; i < 5; ++i) {
    double sum = 0;
    for (int j = 0; j < 8; ++j) sum += p.at({i, j});
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, InvariantToShift) {
  Tensor a({1, 3}, std::vector<Scalar>{1, 2, 3});
  Tensor b({1, 3}, std::vector<Scalar>{101, 102, 103});
  EXPECT_TRUE(ops::SoftmaxRows(a).AllClose(ops::SoftmaxRows(b), 1e-5f));
}

TEST(SoftmaxTest, LargeLogitsStable) {
  Tensor a({1, 2}, std::vector<Scalar>{1000.0f, 0.0f});
  const Tensor p = ops::SoftmaxRows(a);
  EXPECT_NEAR(p[0], 1.0, 1e-6);
  EXPECT_NEAR(p[1], 0.0, 1e-6);
}

TEST(LogSoftmaxTest, MatchesLogOfSoftmax) {
  Rng rng(5);
  Tensor logits = Tensor::Randn({3, 6}, rng);
  const Tensor lp = ops::LogSoftmaxRows(logits);
  const Tensor p = ops::SoftmaxRows(logits);
  for (std::size_t i = 0; i < lp.numel(); ++i) {
    EXPECT_NEAR(lp[i], std::log(p[i]), 1e-4);
  }
}

TEST(ArgmaxTest, PicksMaxPerRow) {
  Tensor t({2, 3}, std::vector<Scalar>{1, 5, 2, 9, 0, 3});
  const auto idx = ops::ArgmaxRows(t);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Im2ColTest, IdentityKernelNoPad) {
  // 1x1 kernel, stride 1, no pad: columns are just the pixels.
  Tensor x({1, 2, 2, 2}, std::vector<Scalar>{1, 2, 3, 4, 5, 6, 7, 8});
  const Tensor cols = ops::Im2Col(x, 1, 1, 1, 0);
  EXPECT_EQ(cols.dim(0), 4);
  EXPECT_EQ(cols.dim(1), 2);
  // Row (oy=0, ox=0): channels (1, 5).
  EXPECT_EQ(cols.at({0, 0}), 1.0f);
  EXPECT_EQ(cols.at({0, 1}), 5.0f);
  // Row (oy=1, ox=1): channels (4, 8).
  EXPECT_EQ(cols.at({3, 0}), 4.0f);
  EXPECT_EQ(cols.at({3, 1}), 8.0f);
}

TEST(Im2ColTest, PaddingProducesZeros) {
  Tensor x({1, 1, 1, 1}, std::vector<Scalar>{5});
  const Tensor cols = ops::Im2Col(x, 3, 3, 1, 1);
  EXPECT_EQ(cols.dim(0), 1);
  EXPECT_EQ(cols.dim(1), 9);
  // Center element of the 3x3 window is the pixel, everything else zero.
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(cols[static_cast<std::size_t>(i)], i == 4 ? 5.0f : 0.0f);
  }
}

TEST(Im2ColTest, OutputSizeWithStride) {
  Tensor x({2, 3, 8, 8});
  const Tensor cols = ops::Im2Col(x, 3, 3, 2, 1);
  // OH = OW = (8 + 2 - 3)/2 + 1 = 4.
  EXPECT_EQ(cols.dim(0), 2 * 4 * 4);
  EXPECT_EQ(cols.dim(1), 3 * 9);
}

TEST(Col2ImTest, AdjointOfIm2Col) {
  // <Im2Col(x), y> == <x, Col2Im(y)> for random x, y (adjoint property).
  Rng rng(6);
  const Shape xshape = {2, 3, 6, 6};
  Tensor x = Tensor::Randn(xshape, rng);
  const Tensor cx = ops::Im2Col(x, 3, 3, 2, 1);
  Tensor y = Tensor::Randn(cx.shape(), rng);
  const Tensor cty = ops::Col2Im(y, xshape, 3, 3, 2, 1);
  double lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < cx.numel(); ++i) lhs += static_cast<double>(cx[i]) * y[i];
  for (std::size_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * cty[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

}  // namespace
}  // namespace mhbench
